// Chaos + adversarial-traffic walkthrough: a 12-node staged Tai Chi rollout
// that takes a node crash mid-rollout, converges anyway, and is then hit by
// a spoofed-source DDoS flood — which the SLO monitor pins to one victim
// node and the packet-path sketches attribute to the attacker flows.
//
// The run, in order:
//   1. 12 baseline nodes under the Fig. 3 mix at 4x density (fleet breaches).
//   2. Staged rollout (2 -> 6 -> 12 nodes on Tai Chi), gated on the SLO.
//   3. Mid-rollout, the chaos engine power-losses node03 — already running
//      Tai Chi — and reboots it 60 ms later. The rollout (a node-lifecycle
//      listener) re-enables Tai Chi on the fresh Testbed, so the node
//      rejoins its wave and the rollout still converges.
//   4. Once the fleet is converged, a volumetric flood from spoofed
//      TEST-NET-2 sources (198.51.100.x) opens up on node00. The flood eats
//      the DP idle Tai Chi donates to the control plane, node00's VM-startup
//      tail rises over the fleet's, and the hotspot report names the attack
//      flows — out of constant-space sketches, no per-flow table anywhere.
//
//   $ ./examples/chaos_demo
#include <cstdio>
#include <memory>

#include "src/fleet/cluster.h"
#include "src/fleet/rollout.h"
#include "src/fleet/slo_monitor.h"
#include "src/scenario/chaos.h"
#include "src/scenario/generators.h"
#include "src/scenario/library.h"
#include "src/scenario/scenario.h"
#include "src/sim/table.h"

using namespace taichi;

namespace {
constexpr int kNodes = 12;
constexpr int kDensity = 4;
// The flood opens after the rollout has converged (~3.0 s of simulated
// time), so the attack hits a healthy Tai Chi fleet, not a mid-gate one.
const sim::Duration kFloodAt = sim::Millis(3000);
}  // namespace

int main() {
  std::printf("Chaos demo: mid-rollout crash + DDoS flood on a 12-node fleet\n\n");

  const scenario::Fig3Mix mix = scenario::Fig3DensityMix(kDensity);
  fleet::ClusterConfig ccfg;
  ccfg.num_nodes = kNodes;
  ccfg.seed = 7;
  ccfg.epoch = sim::Millis(5);
  ccfg.threads = 4;  // Thread count never changes what the simulation computes.
  ccfg.node.mode = exp::Mode::kBaseline;
  ccfg.tweak = mix.tweak;
  fleet::Cluster cluster(ccfg);

  // Fig. 3 mix plus the spoofed flood at node00, armed for t=3.0 s.
  scenario::DdosConfig acfg;
  acfg.load = mix.load;
  acfg.targets = {0};
  acfg.attackers = 12;
  acfg.utilization = 0.50;
  acfg.size_bytes = 512;
  acfg.start_after = kFloodAt;
  scenario::DdosSource source(acfg);

  // Scripted chaos: crash node03 at t=1.5 s — inside wave 1's settle, when
  // node03 is already running Tai Chi — and reboot it 60 ms later.
  scenario::ChaosConfig chcfg;
  chcfg.script = {
      {sim::Millis(1500), 3, scenario::ChaosAction::Kind::kCrash, 0, 0, 0},
      {sim::Millis(1560), 3, scenario::ChaosAction::Kind::kRestart, 0, 0, 0},
  };
  scenario::ChaosEngine chaos(&cluster, chcfg);
  chaos.AddListener(&source);

  source.Start(cluster);
  chaos.Arm();

  // Phase 1: the whole fleet on the baseline.
  cluster.RunFor(sim::Millis(300));

  // Phase 2: the staged rollout, with the crash landing mid-flight.
  fleet::RolloutConfig rcfg;
  rcfg.waves = {2, 6, kNodes};
  rcfg.settle = sim::Millis(600);
  rcfg.soak = sim::Millis(300);
  fleet::Rollout rollout(&cluster, rcfg);
  // The rollout listens for lifecycle events through the same chaos path as
  // the traffic source: a restarted enabled-set node gets Tai Chi back.
  chaos.AddListener(&rollout);
  rollout.Start();
  const sim::SimTime deadline = cluster.Now() + sim::Seconds(5);
  while (rollout.state() == fleet::Rollout::State::kSoaking && cluster.Now() < deadline) {
    cluster.RunFor(sim::Millis(50));
  }

  std::printf("--- rollout (with a crash at 1500 ms) ---\n");
  for (const fleet::Rollout::Event& e : rollout.history()) {
    std::printf("  [%8.1f ms] %s\n", sim::ToSeconds(e.at) * 1e3, e.what.c_str());
  }
  for (const scenario::ChaosEngine::Fired& f : chaos.fired()) {
    std::printf("  [%8.1f ms] chaos: %s node%02d\n", sim::ToSeconds(f.at) * 1e3,
                scenario::ToString(f.kind), f.node);
  }
  std::printf("rollout %s; %zu/%d nodes up\n\n",
              rollout.state() == fleet::Rollout::State::kDone ? "converged" : "DID NOT CONVERGE",
              cluster.alive_count(), kNodes);

  // Phase 3: the flood hits the converged fleet. Watch p90 in 200 ms
  // windows: the victim is <10% of fleet samples, so the fleet value stays
  // anchored by the healthy nodes while node00's own p90 climbs — the
  // contrast the hotspot rule keys on.
  fleet::SloConfig slo;
  slo.threshold = 100.0;
  slo.percentile = 90.0;
  slo.min_samples = 10;
  slo.hotspot_factor = 1.3;
  slo.heavy_hitters = 8;
  fleet::SloMonitor monitor(&cluster, slo);
  if (cluster.Now() < kFloodAt) {
    cluster.RunFor(kFloodAt - cluster.Now());
  }
  monitor.Observe();  // Reset the window: samples from here on see the flood.

  for (int w = 0; w < 3; ++w) {
    cluster.RunFor(sim::Millis(200));
    const fleet::SloMonitor::Report r = monitor.Observe();
    std::printf("--- window %d @ %.0f ms: fleet p90 %.1f ms (%zu samples) ---\n", w,
                sim::ToSeconds(r.at) * 1e3, r.fleet_value, r.total_samples);
    if (r.hotspots.empty()) {
      std::printf("  no hotspots\n");
    }
    for (int id : r.hotspots) {
      const fleet::SloMonitor::NodeStat& n = r.nodes[static_cast<size_t>(id)];
      std::printf("  HOTSPOT %s: p90 %.1f ms vs fleet %.1f ms\n",
                  cluster.node_name(static_cast<size_t>(id)).c_str(), n.value, r.fleet_value);
      sim::Table t({"Heavy flow on its DP tap", "KB", "pkts", "share", ""});
      for (const fleet::SloMonitor::HeavyFlow& f : n.heavy) {
        t.AddRow({f.key.ToString(), sim::Table::Num(static_cast<double>(f.bytes) / 1e3, 1),
                  std::to_string(f.packets), sim::Table::Num(100.0 * f.share, 1) + "%",
                  scenario::IsAttackFlow(f) ? "<< attack range" : ""});
      }
      t.Print();
    }
  }

  source.Stop(cluster);
  chaos.Disarm();
  return 0;
}
