// The Figure 4 story: why naive co-scheduling of CP tasks with DP services
// causes millisecond latency spikes, and how Tai Chi's preemptible vCPU
// contexts eliminate them.
//
// Three nodes run the same workload — light ping traffic plus CP tasks that
// enter multi-millisecond non-preemptible kernel routines (driver spinlock
// sections):
//   1. baseline      — static partition, CP never touches DP CPUs (control);
//   2. naive         — CP tasks co-scheduled onto DP CPUs by the OS;
//   3. taichi        — CP tasks in vCPUs, preempted at us scale by VM-exits.
#include <cstdio>

#include "src/cp/cp_profiles.h"
#include "src/exp/runners.h"
#include "src/exp/testbed.h"
#include "src/sim/table.h"

using namespace taichi;

namespace {

sim::Summary RunNode(exp::Mode mode, const char* label) {
  exp::TestbedConfig cfg;
  cfg.mode = mode;
  cfg.seed = 11;
  exp::Testbed bed(cfg);

  // CP tasks with frequent long non-preemptible routines (Fig. 5 mixture,
  // biased long to make the spike obvious).
  cp::CpWorkProfile profile;
  profile.user_compute_mean = sim::Micros(200);
  profile.short_routine_prob = 0.5;  // Half the routines are 1-67 ms.
  for (int i = 0; i < 6; ++i) {
    bed.kernel().Spawn("cp_heavy_" + std::to_string(i),
                       cp::MakeCpTask(profile, /*iterations=*/0, 400 + i),
                       bed.cp_task_cpus());
  }
  bed.sim().RunFor(sim::Millis(5));

  exp::PingRunner ping(&bed);
  sim::Summary rtt = ping.Run(1000, sim::Micros(500));
  std::printf("  %-28s min %6.1f  avg %7.1f  p99 %8.1f  max %9.1f us\n", label,
              rtt.min(), rtt.mean(), rtt.Percentile(99), rtt.max());
  return rtt;
}

}  // namespace

int main() {
  std::printf("Latency-spike demo (Fig. 4): ping RTT under CP kernel routines\n\n");
  sim::Summary base = RunNode(exp::Mode::kBaseline, "static partition (control)");
  sim::Summary naive = RunNode(exp::Mode::kNaiveCosched, "naive co-scheduling");
  sim::Summary taichi = RunNode(exp::Mode::kTaiChi, "Tai Chi");

  std::printf(
      "\nnaive co-scheduling max is %.0fx the baseline max: a CP task inside a\n"
      "non-preemptible routine holds the DP CPU for milliseconds (T2-T3 in\n"
      "Fig. 4). Tai Chi stays within %.1fx of baseline because VM-exits split\n"
      "those routines at microsecond scale.\n",
      naive.max() / base.max(), taichi.max() / base.max());
  return 0;
}
