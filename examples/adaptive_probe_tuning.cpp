// Watch the workload probes adapt (§4.3).
//
// Drives phases of contrasting data-plane load against a Tai Chi node and
// samples the adaptive state: the empty-poll yield threshold N per DP CPU
// and the per-CPU vCPU time slice. Quiet phases drive N down and slices up
// (donate aggressively); bursty phases drive N up and slices back to 50 us.
//
//   $ ./examples/adaptive_probe_tuning
#include <cstdio>

#include "src/exp/runners.h"
#include "src/exp/testbed.h"

using namespace taichi;

namespace {

void SampleState(exp::Testbed& bed, const char* phase) {
  auto& probe = bed.taichi()->sw_probe();
  auto& sched = bed.taichi()->scheduler();
  // DP CPU 0 is representative; all DP CPUs adapt independently.
  std::printf("%-22s N=%5u  slice=%6s  switches=%6llu  probe-preempts=%6llu  fp-yields=%llu\n",
              phase, probe.yield_threshold(0),
              sim::FormatDuration(sched.current_slice(0)).c_str(),
              static_cast<unsigned long long>(sched.switches()),
              static_cast<unsigned long long>(sched.probe_preemptions()),
              static_cast<unsigned long long>(probe.false_positives()));
}

}  // namespace

int main() {
  std::printf("Adaptive workload-probe tuning demo\n\n");
  exp::TestbedConfig cfg;
  cfg.mode = exp::Mode::kTaiChi;
  cfg.seed = 5;
  // Keep the control plane hungry so every donation opportunity is used.
  cfg.monitors.count = 12;
  cfg.monitors.period_mean = sim::Micros(300);
  cfg.monitors.user_work_mean = sim::Micros(80);
  exp::Testbed bed(cfg);
  bed.SpawnBackgroundCp();
  bed.sim().RunFor(sim::Millis(5));
  SampleState(bed, "initial");

  // Phase 1: dead-quiet data plane for 200 ms.
  bed.sim().RunFor(sim::Millis(200));
  SampleState(bed, "after quiet phase");

  // Phase 2: sustained near-peak traffic for 200 ms.
  bed.StartBackgroundLoad(bed.RateForUtilization(0.85, 512), 512,
                          dp::OpenLoopConfig::Process::kPoisson);
  bed.sim().RunFor(sim::Millis(200));
  SampleState(bed, "after busy phase");
  bed.StopBackgroundLoad();

  // Phase 3: quiet again; the probe re-learns idleness.
  bed.sim().RunFor(sim::Millis(200));
  SampleState(bed, "quiet again");

  std::printf(
      "\nThe yield threshold N shrinks under sustained idleness (donate sooner),\n"
      "grows after false-positive yields (stop thrashing), and the vCPU slice\n"
      "doubles while the DP stays idle, snapping back to 50 us when the\n"
      "hardware probe reclaims the CPU (§4.1, §4.3).\n");
  return 0;
}
