// Tour of the fleet layer: placement, staged rollout, SLO monitoring.
//
// Builds a 4-node cluster at 4x instance density, admits tenant workloads
// through the placer, drives the fleet traffic mix, then rolls Tai Chi out
// canary-first while the SLO monitor watches the VM-startup latency. Pass a
// path to also capture a merged per-node Chrome trace:
//
//   $ ./examples/fleet_demo [trace.json]
#include <cstdio>
#include <string>

#include "src/fleet/cluster.h"
#include "src/fleet/load_gen.h"
#include "src/fleet/placer.h"
#include "src/fleet/rollout.h"
#include "src/fleet/slo_monitor.h"

using namespace taichi;

namespace {
constexpr int kNodes = 4;
constexpr int kDensity = 4;

void PrintReport(const fleet::Cluster& cluster, const fleet::SloMonitor::Report& r,
                 const char* phase) {
  std::printf("%-18s fleet p99 %6.1f ms (%zu samples)%s\n", phase, r.fleet_value,
              r.total_samples, r.fleet_breach ? "  ** SLO BREACH **" : "");
  for (size_t i = 0; i < r.nodes.size(); ++i) {
    if (r.nodes[i].samples > 0) {
      std::printf("  %s: p99 %6.1f ms%s%s\n", cluster.node_name(i).c_str(), r.nodes[i].value,
                  r.nodes[i].breach ? " breach" : "", r.nodes[i].hotspot ? " HOTSPOT" : "");
    }
  }
}
}  // namespace

int main(int argc, char** argv) {
  std::printf("Fleet layer demo: %d nodes at %dx density\n\n", kNodes, kDensity);

  fleet::ClusterConfig ccfg;
  ccfg.num_nodes = kNodes;
  ccfg.seed = 7;
  ccfg.enable_trace = argc > 1;
  ccfg.trace_capacity = 1 << 12;
  ccfg.tweak = [](int, exp::TestbedConfig& cfg) {
    cfg.vm_startup.devices_per_vm = 6 * kDensity;
    cfg.monitors.count = 6 * kDensity;
  };
  fleet::Cluster cluster(ccfg);

  // 1. Placement: admit tenant bundles against per-node capacity.
  std::printf("--- placement (least-loaded) ---\n");
  fleet::Placer placer(cluster.size(), fleet::NodeCapacity{}, fleet::PlacePolicy::kLeastLoaded);
  for (int t = 0; t < 6; ++t) {
    fleet::WorkloadSpec spec;
    spec.tenant = "tenant-" + std::to_string(t);
    spec.vms = 8;
    spec.dp_util = 0.6;
    spec.cp_load = 10.0;
    fleet::Placement p = placer.Place(spec);
    if (p.admitted) {
      std::printf("  %s -> %s (load %.2f)\n", spec.tenant.c_str(),
                  cluster.node_name(static_cast<size_t>(p.node)).c_str(),
                  placer.LoadScore(static_cast<size_t>(p.node)));
    } else {
      std::printf("  %s REFUSED: %s\n", spec.tenant.c_str(), p.reason.c_str());
    }
  }

  // 2. Fleet load: Fig. 3 DP mix + a VM-startup stream the static CP
  // partition cannot sustain at this density.
  fleet::LoadGenConfig lcfg;
  lcfg.vm_arrival_rate_per_sec = 30.0 * kDensity;
  fleet::LoadGen load(&cluster, lcfg);
  load.Start();

  fleet::SloConfig slo;
  slo.threshold = 100.0;  // SmartNIC share of the 160 ms startup SLO.
  fleet::SloMonitor monitor(&cluster, slo);

  std::printf("\n--- baseline fleet ---\n");
  cluster.RunFor(sim::Millis(300));
  PrintReport(cluster, monitor.Observe(), "before rollout:");

  // 3. Staged rollout, canary-first, gated on the SLO.
  std::printf("\n--- staged rollout ---\n");
  fleet::RolloutConfig rcfg;
  rcfg.waves = {1, kNodes};
  rcfg.settle = sim::Millis(400);
  rcfg.soak = sim::Millis(200);
  rcfg.slo = slo;
  fleet::Rollout rollout(&cluster, rcfg);
  rollout.Start();
  while (rollout.state() == fleet::Rollout::State::kSoaking &&
         cluster.Now() < sim::Seconds(4)) {
    cluster.RunFor(sim::Millis(50));
  }
  for (const fleet::Rollout::Event& e : rollout.history()) {
    std::printf("  [%7.1f ms] %s\n", sim::ToSeconds(e.at) * 1e3, e.what.c_str());
  }

  std::printf("\n--- converged fleet ---\n");
  monitor.Observe();  // Window reset: judge post-rollout samples only.
  cluster.RunFor(sim::Millis(300));
  PrintReport(cluster, monitor.Observe(), "after rollout:");
  load.Stop();

  if (argc > 1) {
    if (cluster.WriteMergedTrace(argv[1])) {
      std::printf("\nmerged Chrome trace -> %s (chrome://tracing)\n", argv[1]);
    }
  }
  return 0;
}
