// Flight-recorder demo: run a Fig. 12-style CP/DP mix with the unified
// observability layer attached, then export the last 64Ki events as Chrome
// trace JSON (open in chrome://tracing or https://ui.perfetto.dev) plus a
// full metrics snapshot.
//
//   $ ./examples/trace_capture
//   $ ls trace.json metrics.json
#include <cstdio>
#include <map>

#include "src/cp/synth_cp.h"
#include "src/exp/runners.h"
#include "src/exp/testbed.h"
#include "src/obs/observability.h"

using namespace taichi;

int main() {
  std::printf("Tai Chi trace capture: bursty DP load + CP burst, fully traced\n\n");

  // 1. Build a Tai Chi node and attach the observability layer before any
  //    workload starts, so the trace covers the whole run.
  exp::TestbedConfig cfg;
  cfg.mode = exp::Mode::kTaiChi;
  cfg.seed = 7;
  exp::Testbed bed(cfg);

  // Sized to hold the full run (the default 64Ki-event ring keeps only the
  // last ~10 ms of this mix).
  obs::Observability obs(/*trace_capacity=*/1 << 20);
  obs.trace.set_enabled(true);
  bed.AttachObservability(&obs);

  // 2. The Fig. 12 regime: production-shaped bursty DP traffic (~30% average
  //    utilization) with the monitor fleet, a VM startup, and a burst of
  //    synth_cp device-management work stealing idle DP cycles.
  bed.StartBackgroundBurstyLoad(0.30, 512);
  bed.SpawnBackgroundCp();
  bed.device_manager().StartVm(bed.cp_task_cpus());
  bed.sim().RunFor(sim::Millis(20));

  cp::SynthCpConfig scfg;
  scfg.task_demand = sim::Millis(10);  // Short tasks keep the capture compact.
  scfg.iterations = 10;
  cp::SynthCpBenchmark synth(&bed.kernel(), scfg, 99);
  synth.RegisterMetrics(obs.metrics);
  synth.Launch(8, bed.cp_task_cpus());

  exp::PingRunner ping(&bed);
  sim::Summary rtt = ping.Run(200, sim::Micros(100));

  while (!synth.AllDone()) {
    bed.sim().RunFor(sim::Millis(10));
  }
  const sim::SimTime end = bed.sim().Now();

  // 3. Export. The tracer is a bounded flight recorder: the files hold the
  //    most recent window of the run.
  if (!obs.trace.WriteChromeJson("trace.json") ||
      !obs.metrics.Snapshot(end).WriteFile("metrics.json")) {
    return 1;
  }

  // 4. Report what was captured.
  std::printf("simulated %.1f ms; ping RTT avg %.1f us\n", sim::ToMicros(end) / 1000.0,
              rtt.mean());
  std::printf("trace.json:   %zu events buffered (%llu emitted, %llu overwritten)\n",
              obs.trace.size(), static_cast<unsigned long long>(obs.trace.total_emitted()),
              static_cast<unsigned long long>(obs.trace.overwritten()));
  std::printf("metrics.json: %zu metrics registered\n\n", obs.metrics.size());

  std::map<int32_t, size_t> per_track;
  for (const obs::TraceEvent& e : obs.trace.Events()) {
    ++per_track[e.track];
  }
  std::printf("%-16s %s\n", "track", "buffered events");
  for (const auto& [track, count] : per_track) {
    std::string label = "track " + std::to_string(track);
    auto it = obs.trace.track_names().find(track);
    if (it != obs.trace.track_names().end()) {
      label = it->second;
    }
    std::printf("%-16s %zu\n", label.c_str(), count);
  }

  std::printf("\nOpen trace.json in https://ui.perfetto.dev to see vCPU episodes\n"
              "slot into DP idle gaps while IRQs, IPIs and lock activity line up\n"
              "across CPU tracks.\n");
  return 0;
}
