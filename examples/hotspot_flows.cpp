// Flow observability walkthrough: who is burning the DP cycles behind a
// hotspot?
//
// Builds a 3-node cluster, skews the background traffic so one node carries
// far more flows than the rest, and lets the SLO monitor flag the hotspot.
// The interesting part is the attribution: every flow named below comes out
// of the constant-space sketches on the packet path (count-min + space-saving
// heavy hitters + HyperLogLog) — there is no exact per-flow table anywhere,
// so this works unchanged at millions of flows.
//
//   $ ./examples/hotspot_flows
#include <cstdio>

#include "src/fleet/cluster.h"
#include "src/fleet/slo_monitor.h"
#include "src/sim/table.h"

using namespace taichi;

namespace {

void PrintHeavy(const char* title, const std::vector<fleet::SloMonitor::HeavyFlow>& heavy) {
  std::printf("%s\n", title);
  sim::Table t({"Flow", "KB", "pkts", "share"});
  for (const fleet::SloMonitor::HeavyFlow& f : heavy) {
    t.AddRow({f.key.ToString(), sim::Table::Num(static_cast<double>(f.bytes) / 1e3, 1),
              std::to_string(f.packets), sim::Table::Num(100.0 * f.share, 1) + "%"});
  }
  t.Print();
}

}  // namespace

int main() {
  std::printf("Hotspot flow attribution from packet-path sketches\n\n");

  fleet::ClusterConfig ccfg;
  ccfg.num_nodes = 3;
  ccfg.seed = 11;
  // Node 2 runs a heavier DP mix than its peers: more distinct flows and a
  // flatter skew, so its load is spread across many medium flows with a few
  // clear elephants on top.
  ccfg.tweak = [](int node, exp::TestbedConfig& cfg) {
    if (node == 2) {
      cfg.background_flow_count = 512;
      cfg.background_flow_skew = 1.1;
    } else {
      cfg.background_flow_count = 64;
      cfg.background_flow_skew = 1.5;
    }
  };
  fleet::Cluster cluster(ccfg);

  // Production-shaped bursty traffic per node; the per-node flow profile
  // from the tweak above shapes the 5-tuples each source synthesizes.
  for (size_t i = 0; i < cluster.size(); ++i) {
    cluster.node(i).StartBackgroundBurstyLoad(i == 2 ? 0.6 : 0.3, 1024);
  }
  cluster.RunFor(sim::Millis(50));

  // Per-node flow telemetry straight from the taps.
  std::printf("--- per-node DP taps after 50 ms ---\n");
  for (size_t i = 0; i < cluster.size(); ++i) {
    const obs::FlowMonitor& dp = cluster.node(i).flow_dp();
    std::printf("  %s: ~%.0f distinct flows, %llu packets, %llu heavy-table evictions\n",
                cluster.node_name(i).c_str(), dp.DistinctFlows(),
                static_cast<unsigned long long>(dp.total_packets()),
                static_cast<unsigned long long>(dp.topk().evictions()));
  }

  // An SLO hotspot on node 2 (synthesized latency samples — the point here
  // is the flow attribution, not the latency model).
  sim::Summary lat[3];
  for (size_t i = 0; i < cluster.size(); ++i) {
    cluster.observability(i).metrics.AddSummary("demo.lat_ms", &lat[i]);
  }
  for (int s = 0; s < 8; ++s) {
    lat[0].Add(10);
    lat[1].Add(12);
    lat[2].Add(55);  // Node 2 is 4-5x the fleet median: a hotspot.
  }
  fleet::SloConfig slo;
  slo.metric = "demo.lat_ms";
  slo.percentile = 50.0;
  slo.threshold = 100.0;
  slo.min_samples = 4;
  slo.heavy_hitters = 4;
  fleet::SloMonitor monitor(&cluster, slo);
  fleet::SloMonitor::Report r = monitor.Observe();

  std::printf("\n--- hotspot report ---\n");
  for (int id : r.hotspots) {
    std::printf("hotspot: %s (p50 %.1f ms vs fleet %.1f ms)\n",
                cluster.node_name(static_cast<size_t>(id)).c_str(),
                r.nodes[static_cast<size_t>(id)].value, r.fleet_value);
    PrintHeavy("top flows on its DP tap:", r.nodes[static_cast<size_t>(id)].heavy);
  }
  if (!r.fleet_heavy.empty()) {
    PrintHeavy("\nfleet-wide heavy flows (merged sketches):", r.fleet_heavy);
  }

  for (size_t i = 0; i < cluster.size(); ++i) {
    cluster.node(i).StopBackgroundLoad();
  }
  return 0;
}
