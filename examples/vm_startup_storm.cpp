// VM startup storm: the paper's headline control-plane scenario (§6.6).
//
// A high-density node receives a burst of VM-creation requests. Device
// management CP tasks provision virtio devices under driver locks while the
// data plane keeps serving traffic. Compare how the static partition and
// Tai Chi absorb the storm.
//
//   $ ./examples/vm_startup_storm [num_vms] [density]
#include <cstdio>
#include <cstdlib>

#include "src/exp/runners.h"
#include "src/exp/testbed.h"
#include "src/sim/table.h"

using namespace taichi;

int main(int argc, char** argv) {
  int num_vms = argc > 1 ? std::atoi(argv[1]) : 40;
  int density = argc > 2 ? std::atoi(argv[2]) : 4;
  std::printf("VM startup storm: %d VMs at %dx instance density\n\n", num_vms, density);

  sim::Table t({"Mode", "avg (ms)", "p99 (ms)", "max (ms)", "vCPU switches"});
  for (exp::Mode mode : {exp::Mode::kBaseline, exp::Mode::kTaiChi}) {
    exp::TestbedConfig cfg;
    cfg.mode = mode;
    cfg.seed = 21;
    cfg.vm_startup.devices_per_vm = 6 * density;
    cfg.monitors.count = 6 * density;
    exp::Testbed bed(cfg);
    exp::VmStartupResult r = exp::RunVmStartupStorm(&bed, num_vms,
                                                    /*arrival_rate_per_sec=*/50.0 * density,
                                                    /*dp_utilization=*/0.25);
    t.AddRow({exp::ToString(mode), sim::Table::Num(r.startup_ms.mean(), 1),
              sim::Table::Num(r.startup_ms.Percentile(99), 1),
              sim::Table::Num(r.startup_ms.max(), 1),
              std::to_string(bed.taichi() ? bed.taichi()->scheduler().switches() : 0)});
  }
  t.Print();
  std::printf(
      "\nTai Chi turns idle data-plane cycles into device-provisioning capacity:\n"
      "the same storm completes several times faster at high density (§6.6).\n");
  return 0;
}
