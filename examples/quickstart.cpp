// Quickstart: bring up a simulated SmartNIC, install Tai Chi, run mixed
// data-plane traffic and control-plane work, and print what the framework
// did. Start here to learn the public API.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "src/exp/runners.h"
#include "src/exp/testbed.h"
#include "src/sim/table.h"

using namespace taichi;

int main() {
  std::printf("Tai Chi quickstart: 12-CPU SmartNIC, 8 DP + 4 CP, 8 vCPUs\n\n");

  // 1. Build the node. Mode::kTaiChi assembles the machine (CPUs, APIC,
  //    programmable accelerator with the hardware workload probe), the
  //    SmartNIC OS, the poll-mode DP services, and the Tai Chi framework:
  //    vCPU pool + unified IPI orchestrator + vCPU scheduler + software
  //    workload probe.
  exp::TestbedConfig cfg;
  cfg.mode = exp::Mode::kTaiChi;
  cfg.seed = 7;
  exp::Testbed bed(cfg);

  std::printf("CPUs: %d total, DP pCPUs %s, CP pCPUs %s\n", bed.kernel().num_cpus(),
              bed.dp_cpu_set().ToString().c_str(), bed.cp_pcpu_set().ToString().c_str());
  std::printf("CP tasks are affined to %s (vCPUs registered as native CPUs)\n\n",
              bed.cp_task_cpus().ToString().c_str());

  // 2. Background: bursty production-like DP traffic at ~25% average
  //    utilization plus the standard CP monitor fleet.
  bed.StartBackgroundBurstyLoad(0.25, 512);
  bed.SpawnBackgroundCp();
  bed.sim().RunFor(sim::Millis(50));

  // 3. Launch a burst of control-plane work: 12 concurrent 50 ms tasks that
  //    enter non-preemptible kernel routines, like real device management.
  cp::SynthCpBenchmark synth(&bed.kernel(), cp::SynthCpConfig{}, 99);
  synth.Launch(12, bed.cp_task_cpus());

  // 4. Meanwhile, verify data-plane latency with a ping probe.
  exp::PingRunner ping(&bed);
  sim::Summary rtt = ping.Run(500, sim::Millis(1));

  while (!synth.AllDone()) {
    bed.sim().RunFor(sim::Millis(10));
  }

  // 5. Report.
  sim::Table t({"Metric", "Value"});
  t.AddRow({"CP tasks completed", std::to_string(synth.done())});
  t.AddRow({"CP avg execution", sim::Table::Num(synth.exec_time_ms().mean(), 1) + " ms"});
  t.AddRow({"ping RTT avg / max",
            sim::Table::Num(rtt.mean(), 1) + " / " + sim::Table::Num(rtt.max(), 1) + " us"});
  const auto& sched = bed.taichi()->scheduler();
  t.AddRow({"pCPU->vCPU switches", std::to_string(sched.switches())});
  t.AddRow({"HW-probe preemptions", std::to_string(sched.probe_preemptions())});
  t.AddRow({"slice-expiry exits", std::to_string(sched.slice_expirations())});
  t.AddRow({"lock-context rescues", std::to_string(sched.lock_rescues())});
  t.AddRow({"IPIs routed by orchestrator", std::to_string(bed.taichi()->orchestrator().routed())});
  t.Print();

  std::printf(
      "\nIdle DP cycles ran the CP burst on vCPUs while the hardware probe kept\n"
      "ping latency at baseline levels — the Tai Chi trade in one run.\n");
  return 0;
}
