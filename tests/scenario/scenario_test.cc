// Scenario engine tests: the TCPT trace format, record -> replay fidelity,
// chaos injection determinism, and the end-to-end DDoS detection story.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/fleet/cluster.h"
#include "src/scenario/chaos.h"
#include "src/scenario/generators.h"
#include "src/scenario/library.h"
#include "src/scenario/scenario.h"
#include "src/scenario/trace_format.h"

namespace taichi {
namespace {

fleet::ClusterConfig SmallCluster(int nodes, uint64_t seed) {
  fleet::ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.seed = seed;
  cfg.epoch = sim::Millis(5);
  cfg.node.mode = exp::Mode::kTaiChi;
  return cfg;
}

scenario::PacketRecord MakeRecord(sim::SimTime t, uint16_t node) {
  scenario::PacketRecord rec;
  rec.time = t;
  rec.node = node;
  rec.queue = 3;
  rec.pkt.id = 0x1122334455667788ull;
  rec.pkt.kind = hw::IoKind::kNetTx;
  rec.pkt.size_bytes = 1500;
  rec.pkt.flow = 0xfeedbeefull;
  rec.pkt.user_tag = 0xabcdefull;
  rec.pkt.dp_cost_hint = 250;
  rec.pkt.flow_key.src_ip = 0x0a000001;
  rec.pkt.flow_key.dst_ip = 0xc6336405;  // 198.51.100.5.
  rec.pkt.flow_key.src_port = 1029;
  rec.pkt.flow_key.dst_port = 53;
  rec.pkt.flow_key.proto = 17;
  return rec;
}

// --- TCPT wire format --------------------------------------------------------

TEST(PacketTrace, SerializeParseRoundTripPreservesEveryField) {
  scenario::PacketTrace trace;
  trace.node_count = 4;
  trace.records.push_back(MakeRecord(sim::Micros(10), 0));
  trace.records.push_back(MakeRecord(sim::Micros(10), 2));
  trace.records.push_back(MakeRecord(sim::Micros(11), 1));

  const std::string bytes = trace.Serialize();
  EXPECT_EQ(bytes.size(), scenario::kPacketTraceHeaderBytes +
                              trace.records.size() * scenario::kPacketTraceRecordBytes);

  scenario::PacketTrace parsed;
  ASSERT_TRUE(scenario::PacketTrace::Parse(bytes, &parsed));
  EXPECT_EQ(parsed.node_count, trace.node_count);
  ASSERT_EQ(parsed.records.size(), trace.records.size());
  for (size_t i = 0; i < trace.records.size(); ++i) {
    EXPECT_TRUE(parsed.records[i] == trace.records[i]) << "record " << i;
  }
  // Re-serializing the parse reproduces the bytes: the format is canonical.
  EXPECT_EQ(parsed.Serialize(), bytes);
}

TEST(PacketTrace, ParseRejectsCorruptInput) {
  scenario::PacketTrace trace;
  trace.node_count = 1;
  trace.records.push_back(MakeRecord(sim::Micros(5), 0));
  const std::string good = trace.Serialize();

  scenario::PacketTrace out;
  out.node_count = 77;  // Sentinel: a failed parse must leave `out` untouched.

  std::string bad = good;
  bad[0] ^= 0x01;  // Magic.
  EXPECT_FALSE(scenario::PacketTrace::Parse(bad, &out));

  bad = good;
  bad[4] = 9;  // Version.
  EXPECT_FALSE(scenario::PacketTrace::Parse(bad, &out));

  bad = good;
  bad[12] = 1;  // Reserved header word must be zero.
  EXPECT_FALSE(scenario::PacketTrace::Parse(bad, &out));

  // Truncation: drop the last byte.
  EXPECT_FALSE(scenario::PacketTrace::Parse(
      std::string_view(good.data(), good.size() - 1), &out));

  bad = good;
  bad[scenario::kPacketTraceHeaderBytes + 59] = 1;  // Record pad must be zero.
  EXPECT_FALSE(scenario::PacketTrace::Parse(bad, &out));

  bad = good;
  bad[scenario::kPacketTraceHeaderBytes + 56] = 7;  // Invalid IoKind.
  EXPECT_FALSE(scenario::PacketTrace::Parse(bad, &out));

  EXPECT_EQ(out.node_count, 77u);
  EXPECT_TRUE(out.records.empty());
  // The pristine bytes still parse.
  EXPECT_TRUE(scenario::PacketTrace::Parse(good, &out));
}

// --- Record -> replay --------------------------------------------------------

TEST(PacketTrace, ReplayedRunReRecordsByteIdentically) {
  // Record a short live run, replay the trace into a fresh same-shape
  // cluster while re-recording, and require the re-recorded trace to equal
  // the original byte for byte — the format's (and the replayer's)
  // correctness contract.
  scenario::ScenarioOptions opts;
  opts.nodes = 2;
  opts.density = 1;
  opts.seed = 99;
  opts.observed = sim::Millis(60);

  std::string original;
  {
    scenario::ScenarioSpec spec = scenario::BuildScenario("baseline", opts);
    ASSERT_FALSE(spec.name.empty());
    scenario::ScenarioRunner runner(std::move(spec));
    scenario::PacketTraceRecorder recorder(&runner.cluster());
    recorder.Attach();
    runner.Run();
    const scenario::PacketTrace trace = recorder.Finish();
    ASSERT_GT(trace.records.size(), 1000u);
    original = trace.Serialize();
  }

  std::string replayed;
  {
    scenario::PacketTrace trace;
    ASSERT_TRUE(scenario::PacketTrace::Parse(original, &trace));
    scenario::ScenarioSpec spec = scenario::BuildScenario("baseline", opts);
    spec.expect = scenario::ScenarioExpectations{};
    spec.expect.min_fleet_samples = 0;
    auto* raw = new scenario::PacketTraceReplayer(std::move(trace));
    spec.make_source = [raw](fleet::Cluster&) -> std::unique_ptr<scenario::TrafficSource> {
      return std::unique_ptr<scenario::TrafficSource>(raw);
    };
    scenario::ScenarioRunner runner(std::move(spec));
    scenario::PacketTraceRecorder recorder(&runner.cluster());
    recorder.Attach();
    runner.Run();
    EXPECT_EQ(raw->dropped_late(), 0u);
    EXPECT_GT(raw->injected(), 1000u);
    replayed = recorder.Finish().Serialize();
  }

  EXPECT_EQ(original.size(), replayed.size());
  EXPECT_TRUE(original == replayed) << "re-recorded replay diverged from the original trace";
}

// --- Cluster crash / restart -------------------------------------------------

TEST(ClusterChaos, CrashAndRestartKeepTheFleetStepping) {
  fleet::Cluster cluster(SmallCluster(3, 21));
  cluster.RunFor(sim::Millis(20));
  EXPECT_EQ(cluster.alive_count(), 3u);
  EXPECT_EQ(cluster.incarnation(1), 1u);

  cluster.CrashNode(1);
  EXPECT_FALSE(cluster.alive(1));
  EXPECT_EQ(cluster.alive_count(), 2u);
  // The fleet keeps stepping with a dead member.
  cluster.RunFor(sim::Millis(20));

  exp::Testbed* fresh = cluster.RestartNode(1);
  ASSERT_NE(fresh, nullptr);
  EXPECT_TRUE(cluster.alive(1));
  EXPECT_EQ(cluster.alive_count(), 3u);
  EXPECT_EQ(cluster.incarnation(1), 2u);
  // The reboot caught the node up to the fleet clock before rejoining.
  EXPECT_EQ(fresh->sim().Now(), cluster.Now());
  const sim::SimTime before = cluster.Now();
  cluster.RunFor(sim::Millis(20));
  EXPECT_GE(cluster.Now(), before + sim::Millis(20));
}

TEST(ClusterChaos, ScriptedChaosFiresAtEpochBoundaries) {
  fleet::Cluster cluster(SmallCluster(3, 22));
  scenario::ChaosConfig cfg;
  cfg.script = {
      {sim::Millis(10), 2, scenario::ChaosAction::Kind::kCrash, 0, 0, 0},
      {sim::Millis(30), 2, scenario::ChaosAction::Kind::kRestart, 0, 0, 0},
  };
  scenario::ChaosEngine chaos(&cluster, cfg);
  chaos.Arm();

  cluster.RunFor(sim::Millis(20));
  EXPECT_EQ(chaos.crashes(), 1);
  EXPECT_FALSE(cluster.alive(2));

  cluster.RunFor(sim::Millis(20));
  EXPECT_EQ(chaos.restarts(), 1);
  EXPECT_TRUE(cluster.alive(2));
  EXPECT_EQ(cluster.alive_count(), 3u);

  ASSERT_EQ(chaos.fired().size(), 2u);
  EXPECT_EQ(chaos.fired()[0].kind, scenario::ChaosAction::Kind::kCrash);
  EXPECT_EQ(chaos.fired()[1].kind, scenario::ChaosAction::Kind::kRestart);
  chaos.Disarm();
}

// --- Determinism -------------------------------------------------------------

TEST(ScenarioDeterminism, CrashChurnVerdictIsByteIdenticalAcrossThreads) {
  // Same seed + same script must give the same faults, the same recoveries
  // and the same verdict bytes whether nodes step serially or on 4 threads.
  scenario::ScenarioOptions opts;
  opts.nodes = 6;
  opts.density = 2;
  opts.seed = 5;  // This seed injects 2 crashes at this scale (deterministic).
  opts.observed = sim::Millis(300);

  std::string json[2];
  int crashes = 0;
  for (int run = 0; run < 2; ++run) {
    opts.threads = run == 0 ? 1 : 4;
    scenario::ScenarioRunner runner(scenario::BuildScenario("crash-churn", opts));
    scenario::ScenarioVerdict v = runner.Run();
    json[run] = v.ToJson();
    crashes = v.crashes;
  }
  EXPECT_TRUE(json[0] == json[1]) << "t1:\n" << json[0] << "t4:\n" << json[1];
  // Vacuity guard: this seed does inject faults (deterministically, so this
  // can never flake).
  EXPECT_GT(crashes, 0);
}

TEST(ScenarioDeterminism, AutopilotVerdictIsByteIdenticalAcrossThreads) {
  // The autopilot's decision loop mutates cross-node state (placer books,
  // Tai Chi enables, migrations) from its epoch hook; every decision — and
  // therefore the verdict JSON embedding the decision log — must come out
  // byte-identical whether nodes step serially or on 4 threads.
  scenario::ScenarioOptions opts;
  opts.nodes = 6;
  opts.observed = sim::Millis(800);

  std::string json[2];
  uint64_t decisions = 0;
  for (int run = 0; run < 2; ++run) {
    opts.threads = run == 0 ? 1 : 4;
    scenario::ScenarioRunner runner(scenario::BuildScenario("autopilot-overload", opts));
    scenario::ScenarioVerdict v = runner.Run();
    json[run] = v.ToJson();
    decisions = v.autopilot.enables + v.autopilot.sheds + v.autopilot.migrations;
  }
  EXPECT_TRUE(json[0] == json[1]) << "t1:\n" << json[0] << "t4:\n" << json[1];
  // Vacuity guard: the surge deterministically drives the controller to act.
  EXPECT_GT(decisions, 0u);
}

// --- End-to-end detection story ----------------------------------------------

TEST(ScenarioLibrary, DdosScenarioFlagsVictimAndNamesAttackFlows) {
  scenario::ScenarioOptions opts;
  opts.threads = 4;
  opts.observed = sim::Millis(400);
  scenario::ScenarioRunner runner(scenario::BuildScenario("ddos", opts));
  scenario::ScenarioVerdict v = runner.Run();
  EXPECT_GT(v.hotspot_windows, 0u);
  EXPECT_GT(v.attributed_windows, 0u);
  EXPECT_TRUE(v.pass) << v.ToJson();

  // The flood overflowed the victim's rx descriptor ring, the drops are
  // attributed to the victim node, and they surface in the verdict JSON —
  // regression for the era when rx drops were counted nowhere.
  EXPECT_GT(v.rx_ring_drops, 0u);
  ASSERT_FALSE(v.node_rx_ring_drops.empty());
  EXPECT_GT(v.node_rx_ring_drops[0], 0u);  // Node 0 is the configured victim.
  for (size_t i = 1; i < v.node_rx_ring_drops.size(); ++i) {
    EXPECT_EQ(v.node_rx_ring_drops[i], 0u) << "unexpected drops on bystander " << i;
  }
  const std::string json = v.ToJson();
  EXPECT_NE(json.find("\"rx\""), std::string::npos);
  EXPECT_NE(json.find("\"ring_drops\""), std::string::npos);
  EXPECT_NE(json.find("\"per_node_ring_drops\""), std::string::npos);

  // The verdict's attribution is backed by actual attack-range flows in the
  // hotspot node's heavy-hitter list.
  bool named = false;
  for (const fleet::SloMonitor::Report& r : runner.window_reports()) {
    for (int id : r.hotspots) {
      for (const fleet::SloMonitor::HeavyFlow& f : r.nodes[static_cast<size_t>(id)].heavy) {
        named = named || scenario::IsAttackFlow(f);
      }
    }
  }
  EXPECT_TRUE(named);
}

TEST(ScenarioLibrary, UnknownScenarioNameIsRejected) {
  scenario::ScenarioOptions opts;
  scenario::ScenarioSpec spec = scenario::BuildScenario("no-such-scenario", opts);
  EXPECT_TRUE(spec.name.empty());
}

}  // namespace
}  // namespace taichi
