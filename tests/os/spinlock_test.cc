#include "src/os/spinlock.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/os/behaviors.h"
#include "src/os/kernel.h"

namespace taichi::os {
namespace {

class SpinlockTest : public ::testing::Test {
 protected:
  SpinlockTest() {
    hw::MachineConfig mcfg;
    mcfg.num_cpus = 4;
    machine_ = std::make_unique<hw::Machine>(&sim_, mcfg);
    kernel_ = std::make_unique<Kernel>(&sim_, machine_.get(), KernelConfig{});
  }

  Task* SpawnLocker(const char* name, KernelSpinlock* lock, sim::Duration hold,
                    CpuId cpu) {
    return kernel_->Spawn(name,
                          std::make_unique<ScriptBehavior>(std::vector<Action>{
                              Action::LockAcquire(lock),
                              Action::KernelSection(hold),
                              Action::LockRelease(lock)}),
                          CpuSet::Of({cpu}));
  }

  sim::Simulation sim_;
  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<Kernel> kernel_;
};

TEST_F(SpinlockTest, UncontendedAcquireRelease) {
  KernelSpinlock lock("l");
  Task* t = SpawnLocker("a", &lock, sim::Millis(1), 0);
  sim_.RunFor(sim::Millis(5));
  EXPECT_EQ(t->state(), TaskState::kExited);
  EXPECT_FALSE(lock.held());
  EXPECT_EQ(lock.acquisitions(), 1u);
  EXPECT_EQ(lock.contentions(), 0u);
  ASSERT_EQ(lock.hold_time_us().count(), 1u);
  EXPECT_GE(lock.hold_time_us().mean(), 1000.0);
}

TEST_F(SpinlockTest, ContendedWaiterSpinsThenAcquires) {
  KernelSpinlock lock("l");
  Task* first = SpawnLocker("first", &lock, sim::Millis(2), 0);
  sim_.RunFor(sim::Micros(100));
  Task* second = SpawnLocker("second", &lock, sim::Millis(1), 1);
  sim_.RunFor(sim::Millis(10));
  EXPECT_EQ(first->state(), TaskState::kExited);
  EXPECT_EQ(second->state(), TaskState::kExited);
  EXPECT_EQ(lock.acquisitions(), 2u);
  EXPECT_EQ(lock.contentions(), 1u);
  // The waiter spun roughly until the holder's 2 ms section ended.
  EXPECT_GT(second->lock_spin_time(), sim::Millis(1));
  EXPECT_GT(second->exited_at(), sim::Millis(3));
}

TEST_F(SpinlockTest, FifoHandoffAmongWaiters) {
  KernelSpinlock lock("l");
  std::vector<Task*> tasks;
  tasks.push_back(SpawnLocker("t0", &lock, sim::Millis(1), 0));
  sim_.RunFor(sim::Micros(50));
  tasks.push_back(SpawnLocker("t1", &lock, sim::Millis(1), 1));
  sim_.RunFor(sim::Micros(50));
  tasks.push_back(SpawnLocker("t2", &lock, sim::Millis(1), 2));
  sim_.RunFor(sim::Millis(10));
  for (Task* t : tasks) {
    EXPECT_EQ(t->state(), TaskState::kExited);
  }
  // Arrival order preserved.
  EXPECT_LT(tasks[0]->exited_at(), tasks[1]->exited_at());
  EXPECT_LT(tasks[1]->exited_at(), tasks[2]->exited_at());
}

TEST_F(SpinlockTest, SpinningTaskIsNonPreemptible) {
  KernelSpinlock lock("l");
  SpawnLocker("holder", &lock, sim::Millis(5), 0);
  sim_.RunFor(sim::Micros(100));
  Task* waiter = SpawnLocker("waiter", &lock, sim::Millis(1), 1);
  sim_.RunFor(sim::Micros(200));
  EXPECT_TRUE(waiter->spinning());
  EXPECT_TRUE(waiter->non_preemptible());
  // A high-priority task on the waiter's CPU must wait out the spin.
  Task* high = kernel_->Spawn("high",
                              std::make_unique<ScriptBehavior>(std::vector<Action>{
                                  Action::Compute(sim::Micros(10))}),
                              CpuSet::Of({1}), Priority::kHigh);
  sim_.RunFor(sim::Millis(20));
  EXPECT_EQ(high->state(), TaskState::kExited);
  EXPECT_GT(high->exited_at(), sim::Millis(4));  // Blocked by spin + hold.
}

TEST_F(SpinlockTest, HolderOnSameCpuAsWaiterWouldDeadlockButDifferentCpusDont) {
  // Holder on CPU 0, waiter on CPU 1 — progress guaranteed.
  KernelSpinlock lock("l");
  Task* a = SpawnLocker("a", &lock, sim::Millis(1), 0);
  Task* b = SpawnLocker("b", &lock, sim::Millis(1), 1);
  sim_.RunFor(sim::Millis(10));
  EXPECT_EQ(a->state(), TaskState::kExited);
  EXPECT_EQ(b->state(), TaskState::kExited);
}

TEST_F(SpinlockTest, LockHoldersResistTickPreemption) {
  KernelSpinlock lock("l");
  // Locker holds for 10 ms on CPU 0 while an equal-priority compute task
  // waits; RR would normally switch at the 3 ms slice, but the lock holder
  // is non-preemptible.
  Task* locker = SpawnLocker("locker", &lock, sim::Millis(10), 0);
  sim_.RunFor(sim::Micros(10));
  Task* other = kernel_->Spawn("other",
                               std::make_unique<ScriptBehavior>(std::vector<Action>{
                                   Action::Compute(sim::Millis(1))}),
                               CpuSet::Of({0}));
  sim_.RunFor(sim::Millis(8));
  EXPECT_EQ(other->state(), TaskState::kRunnable);  // Still waiting.
  sim_.RunFor(sim::Millis(10));
  EXPECT_EQ(locker->state(), TaskState::kExited);
  EXPECT_EQ(other->state(), TaskState::kExited);
}

}  // namespace
}  // namespace taichi::os
