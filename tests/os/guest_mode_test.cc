// Tests the hybrid-virtualization mechanics: lending a physical CPU to a
// virtual CPU, freezing/resuming host work, and the exit paths Tai Chi's
// vCPU scheduler builds on.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/os/behaviors.h"
#include "src/os/kernel.h"

namespace taichi::os {
namespace {

class GuestModeTest : public ::testing::Test {
 protected:
  GuestModeTest() {
    hw::MachineConfig mcfg;
    mcfg.num_cpus = 2;
    machine_ = std::make_unique<hw::Machine>(&sim_, mcfg);
    kernel_ = std::make_unique<Kernel>(&sim_, machine_.get(), KernelConfig{});
    vcpu_ = kernel_->RegisterCpu(CpuKind::kVirtual, 100);
    kernel_->OnlineCpu(vcpu_);
    sim_.RunFor(sim::Millis(1));
    EXPECT_TRUE(kernel_->cpu_online(vcpu_));
  }

  sim::Simulation sim_;
  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<Kernel> kernel_;
  CpuId vcpu_ = kInvalidCpu;
};

TEST_F(GuestModeTest, VcpuTaskRunsOnlyWhileBacked) {
  Task* t = kernel_->Spawn("cp",
                           std::make_unique<ScriptBehavior>(std::vector<Action>{
                               Action::Compute(sim::Millis(1))}),
                           CpuSet::Of({vcpu_}));
  sim_.RunFor(sim::Millis(10));
  // Unbacked vCPU: zero progress.
  EXPECT_NE(t->state(), TaskState::kExited);
  EXPECT_EQ(t->cpu_time(), 0u);

  kernel_->EnterGuest(0, vcpu_);
  sim_.RunFor(sim::Millis(5));
  EXPECT_EQ(t->state(), TaskState::kExited);
}

TEST_F(GuestModeTest, HostTaskFrozenDuringGuestAndResumes) {
  Task* host = kernel_->Spawn("host",
                              std::make_unique<ScriptBehavior>(std::vector<Action>{
                                  Action::Compute(sim::Millis(4))}),
                              CpuSet::Of({0}));
  kernel_->Spawn("cp",
                 std::make_unique<LoopBehavior>(std::vector<Action>{
                     Action::Compute(sim::Millis(1))}),
                 CpuSet::Of({vcpu_}));
  sim_.RunFor(sim::Millis(1));
  sim::Duration host_time_before = kernel_->TaskCpuTime(*host);

  // Lend CPU 0 to the vCPU for 2 ms.
  kernel_->EnterGuest(0, vcpu_);
  sim_.RunFor(sim::Millis(2));
  kernel_->ExitGuest(0, GuestExitReason::kForced);
  sim_.RunFor(sim::Micros(10));

  // Host made no progress while lent.
  EXPECT_LE(kernel_->TaskCpuTime(*host) - host_time_before, sim::Micros(100));
  sim_.RunFor(sim::Millis(10));
  EXPECT_EQ(host->state(), TaskState::kExited);
  // Total compute is still 4 ms of CPU time (plus switch overhead).
  EXPECT_GE(host->cpu_time(), sim::Millis(4));
}

TEST_F(GuestModeTest, GuestExitHandlerReceivesReason) {
  std::vector<GuestExitReason> reasons;
  kernel_->set_guest_exit_handler(
      [&](CpuId pcpu, CpuId vcpu, const GuestExitInfo& info) {
        reasons.push_back(info.reason);
        EXPECT_EQ(vcpu, vcpu_);
        kernel_->ResumeHost(pcpu);
      });
  kernel_->Spawn("cp",
                 std::make_unique<LoopBehavior>(std::vector<Action>{
                     Action::Compute(sim::Millis(1))}),
                 CpuSet::Of({vcpu_}));
  kernel_->EnterGuest(0, vcpu_);
  sim_.RunFor(sim::Millis(1));
  kernel_->ExitGuest(0, GuestExitReason::kPreemptionTimer);
  sim_.RunFor(sim::Millis(1));
  ASSERT_EQ(reasons.size(), 1u);
  EXPECT_EQ(reasons[0], GuestExitReason::kPreemptionTimer);
}

TEST_F(GuestModeTest, ExternalInterruptForcesExit) {
  GuestExitInfo seen{};
  bool exited = false;
  kernel_->set_guest_exit_handler(
      [&](CpuId pcpu, CpuId, const GuestExitInfo& info) {
        seen = info;
        exited = true;
        kernel_->ResumeHost(pcpu);
      });
  kernel_->Spawn("cp",
                 std::make_unique<LoopBehavior>(std::vector<Action>{
                     Action::Compute(sim::Millis(10))}),
                 CpuSet::Of({vcpu_}));
  kernel_->EnterGuest(0, vcpu_);
  sim_.RunFor(sim::Millis(1));
  // A hardware IRQ (e.g. the workload probe) hits physical CPU 0.
  machine_->apic().Send(hw::kInvalidApicId, 0, hw::IrqVector::kDpWorkload);
  sim_.RunFor(sim::Millis(1));
  EXPECT_TRUE(exited);
  EXPECT_EQ(seen.reason, GuestExitReason::kExternalInterrupt);
  EXPECT_EQ(seen.vector, hw::IrqVector::kDpWorkload);
}

TEST_F(GuestModeTest, ExitPreemptsVcpuMidKernelSection) {
  // The decisive property (§3.4): VM-exits split even non-preemptible
  // routines at microsecond granularity.
  Task* cp = kernel_->Spawn("cp",
                            std::make_unique<ScriptBehavior>(std::vector<Action>{
                                Action::KernelSection(sim::Millis(10)),
                                Action::Compute(sim::Micros(1))}),
                            CpuSet::Of({vcpu_}));
  kernel_->EnterGuest(0, vcpu_);
  sim_.RunFor(sim::Millis(2));
  EXPECT_TRUE(cp->non_preemptible());
  kernel_->ExitGuest(0, GuestExitReason::kExternalInterrupt);
  sim_.RunFor(sim::Micros(100));
  EXPECT_FALSE(kernel_->cpu_backed(vcpu_));
  // Task is frozen mid-section, still non-preemptible, with partial progress.
  EXPECT_TRUE(cp->non_preemptible());
  EXPECT_GT(cp->cpu_time(), sim::Millis(1));
  EXPECT_LT(cp->cpu_time(), sim::Millis(3));

  // Re-enter on the other physical CPU: the section finishes there.
  kernel_->EnterGuest(1, vcpu_);
  sim_.RunFor(sim::Millis(20));
  EXPECT_EQ(cp->state(), TaskState::kExited);
}

TEST_F(GuestModeTest, HaltHandlerFiresWhenVcpuIdles) {
  CpuId halted = kInvalidCpu;
  kernel_->set_guest_halt_handler([&](CpuId v) {
    halted = v;
    CpuId backer = kernel_->backer_of(v);
    if (backer != kInvalidCpu) {
      kernel_->ExitGuest(backer, GuestExitReason::kHalt);
    }
  });
  kernel_->Spawn("short",
                 std::make_unique<ScriptBehavior>(std::vector<Action>{
                     Action::Compute(sim::Micros(100))}),
                 CpuSet::Of({vcpu_}));
  kernel_->EnterGuest(0, vcpu_);
  sim_.RunFor(sim::Millis(1));
  EXPECT_EQ(halted, vcpu_);
  EXPECT_FALSE(kernel_->cpu_backed(vcpu_));
  EXPECT_EQ(kernel_->guest_of(0), kInvalidCpu);
}

TEST_F(GuestModeTest, GuestTimeAccountedAsLent) {
  kernel_->Spawn("cp",
                 std::make_unique<LoopBehavior>(std::vector<Action>{
                     Action::Compute(sim::Millis(1))}),
                 CpuSet::Of({vcpu_}));
  kernel_->EnterGuest(0, vcpu_);
  sim_.RunFor(sim::Millis(5));
  kernel_->ExitGuest(0, GuestExitReason::kForced);
  sim_.RunFor(sim::Millis(1));
  CpuAccounting pacct = kernel_->GetAccounting(0);
  EXPECT_GT(pacct.guest_lent, sim::Millis(4));
  CpuAccounting vacct = kernel_->GetAccounting(vcpu_);
  EXPECT_GT(vacct.busy, sim::Millis(4));
}

TEST_F(GuestModeTest, EntryAndExitCostsAreCharged) {
  kernel_->Spawn("cp",
                 std::make_unique<LoopBehavior>(std::vector<Action>{
                     Action::Compute(sim::Millis(1))}),
                 CpuSet::Of({vcpu_}));
  sim::SimTime start = sim_.Now();
  bool resumed = false;
  kernel_->set_guest_exit_handler([&](CpuId pcpu, CpuId, const GuestExitInfo&) {
    kernel_->ResumeHost(pcpu);
    resumed = true;
  });
  kernel_->EnterGuest(0, vcpu_);
  sim_.RunFor(sim::Micros(1));
  // Entry cost not yet elapsed: vCPU not backed yet.
  EXPECT_FALSE(kernel_->cpu_backed(vcpu_));
  sim_.RunFor(sim::Micros(10));
  EXPECT_TRUE(kernel_->cpu_backed(vcpu_));
  kernel_->ExitGuest(0, GuestExitReason::kForced);
  EXPECT_FALSE(resumed);  // Exit cost pending.
  sim_.RunFor(sim::Micros(10));
  EXPECT_TRUE(resumed);
  EXPECT_GT(sim_.Now(), start);
}

TEST_F(GuestModeTest, WakeIpiToLentPcpuForcesGuestExit) {
  // A task waking onto a lent pCPU sends a resched IPI, which VM-exits the
  // guest; the default exit handler resumes the host, which runs the task.
  // This is exactly how hardware behaves and why Tai Chi installs its own
  // exit handler to re-enter vCPUs when appropriate.
  kernel_->Spawn("cp",
                 std::make_unique<LoopBehavior>(std::vector<Action>{
                     Action::Compute(sim::Millis(1))}),
                 CpuSet::Of({vcpu_}));
  kernel_->EnterGuest(0, vcpu_);
  sim_.RunFor(sim::Millis(1));
  EXPECT_EQ(kernel_->guest_of(0), vcpu_);
  sim::SimTime spawn_time = sim_.Now();
  Task* host = kernel_->Spawn("host",
                              std::make_unique<ScriptBehavior>(std::vector<Action>{
                                  Action::Compute(sim::Micros(10))}),
                              CpuSet::Of({0}));
  sim_.RunFor(sim::Millis(1));
  EXPECT_EQ(kernel_->guest_of(0), kInvalidCpu);
  EXPECT_EQ(host->state(), TaskState::kExited);
  // The exit happened within microseconds of the wake, not after the vCPU's
  // 1 ms compute chunks.
  EXPECT_LT(host->exited_at(), spawn_time + sim::Micros(100));
}

}  // namespace
}  // namespace taichi::os
