#include <gtest/gtest.h>

#include "src/os/types.h"

namespace taichi::os {
namespace {

TEST(CpuSetTest, AllCoversRange) {
  CpuSet s = CpuSet::All(12);
  EXPECT_EQ(s.count(), 12);
  EXPECT_TRUE(s.Test(0));
  EXPECT_TRUE(s.Test(11));
  EXPECT_FALSE(s.Test(12));
}

TEST(CpuSetTest, RangeIsHalfOpen) {
  CpuSet s = CpuSet::Range(4, 8);
  EXPECT_EQ(s.count(), 4);
  EXPECT_FALSE(s.Test(3));
  EXPECT_TRUE(s.Test(4));
  EXPECT_TRUE(s.Test(7));
  EXPECT_FALSE(s.Test(8));
}

TEST(CpuSetTest, OfAndSetClear) {
  CpuSet s = CpuSet::Of({1, 5, 9});
  EXPECT_EQ(s.count(), 3);
  s.Clear(5);
  EXPECT_FALSE(s.Test(5));
  s.Set(5);
  EXPECT_TRUE(s.Test(5));
}

TEST(CpuSetTest, UnionIntersection) {
  CpuSet a = CpuSet::Range(0, 4);
  CpuSet b = CpuSet::Range(2, 6);
  EXPECT_EQ((a | b).count(), 6);
  EXPECT_EQ((a & b).count(), 2);
}

TEST(CpuSetTest, EmptyAndToString) {
  CpuSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.ToString(), "{}");
  EXPECT_EQ(CpuSet::Of({2, 3}).ToString(), "{2,3}");
}

TEST(CpuSetTest, All64) {
  CpuSet s = CpuSet::All(64);
  EXPECT_EQ(s.count(), 64);
}

}  // namespace
}  // namespace taichi::os
