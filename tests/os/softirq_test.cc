#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/os/behaviors.h"
#include "src/os/kernel.h"

namespace taichi::os {
namespace {

class SoftirqTest : public ::testing::Test {
 protected:
  SoftirqTest() {
    hw::MachineConfig mcfg;
    mcfg.num_cpus = 2;
    machine_ = std::make_unique<hw::Machine>(&sim_, mcfg);
    kernel_ = std::make_unique<Kernel>(&sim_, machine_.get(), KernelConfig{});
  }

  sim::Simulation sim_;
  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<Kernel> kernel_;
};

TEST_F(SoftirqTest, RunsOnIdleCpu) {
  std::vector<CpuId> ran_on;
  kernel_->RegisterSoftirq(0, [&](CpuId c) { ran_on.push_back(c); });
  kernel_->RaiseSoftirq(1, 0);
  sim_.RunFor(sim::Micros(10));
  ASSERT_EQ(ran_on.size(), 1u);
  EXPECT_EQ(ran_on[0], 1);
  EXPECT_EQ(kernel_->softirqs_run(), 1u);
}

TEST_F(SoftirqTest, InterruptsPreemptibleCompute) {
  sim::SimTime ran_at = 0;
  kernel_->RegisterSoftirq(0, [&](CpuId) { ran_at = sim_.Now(); });
  kernel_->Spawn("busy",
                 std::make_unique<ScriptBehavior>(std::vector<Action>{
                     Action::Compute(sim::Millis(50))}),
                 CpuSet::Of({0}));
  sim_.RunFor(sim::Millis(1));
  kernel_->RaiseSoftirq(0, 0);
  sim_.RunFor(sim::Millis(1));
  // Ran promptly, not after the 50 ms compute.
  EXPECT_GT(ran_at, 0u);
  EXPECT_LT(ran_at, sim::Millis(2));
}

TEST_F(SoftirqTest, DeferredAcrossKernelSection) {
  sim::SimTime ran_at = 0;
  kernel_->RegisterSoftirq(0, [&](CpuId) { ran_at = sim_.Now(); });
  kernel_->Spawn("kern",
                 std::make_unique<ScriptBehavior>(std::vector<Action>{
                     Action::KernelSection(sim::Millis(5)),
                     Action::Compute(sim::Millis(1))}),
                 CpuSet::Of({0}));
  sim_.RunFor(sim::Micros(100));
  kernel_->RaiseSoftirq(0, 0);
  sim_.RunFor(sim::Millis(10));
  // Could not run inside the non-preemptible routine.
  EXPECT_GE(ran_at, sim::Millis(5));
}

TEST_F(SoftirqTest, MultipleSoftirqsDrainInNumberOrder) {
  std::vector<int> order;
  kernel_->RegisterSoftirq(0, [&](CpuId) { order.push_back(0); });
  kernel_->RegisterSoftirq(3, [&](CpuId) { order.push_back(3); });
  kernel_->RaiseSoftirq(0, 3);
  kernel_->RaiseSoftirq(0, 0);
  sim_.RunFor(sim::Micros(10));
  EXPECT_EQ(order, (std::vector<int>{0, 3}));
}

TEST_F(SoftirqTest, ComputeResumesAfterSoftirq) {
  kernel_->RegisterSoftirq(0, [](CpuId) {});
  Task* t = kernel_->Spawn("busy",
                           std::make_unique<ScriptBehavior>(std::vector<Action>{
                               Action::Compute(sim::Millis(2))}),
                           CpuSet::Of({0}));
  sim_.RunFor(sim::Micros(500));
  kernel_->RaiseSoftirq(0, 0);
  sim_.RunFor(sim::Millis(5));
  EXPECT_EQ(t->state(), TaskState::kExited);
  EXPECT_GE(t->cpu_time(), sim::Millis(2));
}

}  // namespace
}  // namespace taichi::os
