#include "src/os/kernel.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/os/behaviors.h"

namespace taichi::os {
namespace {

class KernelTest : public ::testing::Test {
 protected:
  KernelTest() {
    hw::MachineConfig mcfg;
    mcfg.num_cpus = 4;
    machine_ = std::make_unique<hw::Machine>(&sim_, mcfg);
    kernel_ = std::make_unique<Kernel>(&sim_, machine_.get(), KernelConfig{});
  }

  sim::Simulation sim_;
  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<Kernel> kernel_;
};

TEST_F(KernelTest, PhysicalCpusBootOnline) {
  EXPECT_EQ(kernel_->num_cpus(), 4);
  for (CpuId c = 0; c < 4; ++c) {
    EXPECT_TRUE(kernel_->cpu_online(c));
    EXPECT_TRUE(kernel_->cpu_backed(c));
    EXPECT_EQ(kernel_->cpu_kind(c), CpuKind::kPhysical);
  }
}

TEST_F(KernelTest, SingleTaskRunsToCompletion) {
  Task* t = kernel_->Spawn(
      "worker", std::make_unique<ScriptBehavior>(std::vector<Action>{
                    Action::Compute(sim::Millis(5))}),
      CpuSet::Of({0}));
  sim_.RunFor(sim::Millis(10));
  EXPECT_EQ(t->state(), TaskState::kExited);
  EXPECT_GE(t->cpu_time(), sim::Millis(5));
  EXPECT_GE(t->exited_at(), sim::Millis(5));
}

TEST_F(KernelTest, TaskExitHandlerFires) {
  int exits = 0;
  kernel_->set_task_exit_handler([&](Task&) { ++exits; });
  kernel_->Spawn("a",
                 std::make_unique<ScriptBehavior>(std::vector<Action>{
                     Action::Compute(sim::Micros(10))}),
                 CpuSet::Of({0}));
  sim_.RunFor(sim::Millis(1));
  EXPECT_EQ(exits, 1);
}

TEST_F(KernelTest, TwoTasksTimeShareOneCpu) {
  // Both should make progress despite sharing CPU 0 (round-robin slices).
  Task* a = kernel_->Spawn("a",
                           std::make_unique<ScriptBehavior>(std::vector<Action>{
                               Action::Compute(sim::Millis(10))}),
                           CpuSet::Of({0}));
  Task* b = kernel_->Spawn("b",
                           std::make_unique<ScriptBehavior>(std::vector<Action>{
                               Action::Compute(sim::Millis(10))}),
                           CpuSet::Of({0}));
  sim_.RunFor(sim::Millis(15));
  // Neither finished at the halfway-ish mark alone; both ran.
  EXPECT_GT(a->cpu_time(), sim::Millis(3));
  EXPECT_GT(b->cpu_time(), sim::Millis(3));
  sim_.RunFor(sim::Millis(15));
  EXPECT_EQ(a->state(), TaskState::kExited);
  EXPECT_EQ(b->state(), TaskState::kExited);
}

TEST_F(KernelTest, TasksSpreadAcrossIdleCpus) {
  std::vector<Task*> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back(kernel_->Spawn(
        "t" + std::to_string(i),
        std::make_unique<ScriptBehavior>(std::vector<Action>{
            Action::Compute(sim::Millis(2))}),
        CpuSet::All(4)));
  }
  sim_.RunFor(sim::Millis(3));
  // With 4 idle CPUs and 4 tasks, all finish in one round: no time sharing.
  for (Task* t : tasks) {
    EXPECT_EQ(t->state(), TaskState::kExited);
  }
}

TEST_F(KernelTest, HigherPriorityWakePreemptsMidCompute) {
  Task* low = kernel_->Spawn("low",
                             std::make_unique<ScriptBehavior>(std::vector<Action>{
                                 Action::Compute(sim::Millis(50))}),
                             CpuSet::Of({0}), Priority::kNormal);
  sim_.RunFor(sim::Micros(100));
  EXPECT_EQ(low->state(), TaskState::kRunning);
  Task* high = kernel_->Spawn("high",
                              std::make_unique<ScriptBehavior>(std::vector<Action>{
                                  Action::Compute(sim::Micros(50))}),
                              CpuSet::Of({0}), Priority::kHigh);
  // The high task should finish long before the low task's 50 ms compute.
  sim_.RunFor(sim::Millis(1));
  EXPECT_EQ(high->state(), TaskState::kExited);
  EXPECT_EQ(low->state(), TaskState::kRunning);
  // Preemption latency is microseconds, not milliseconds.
  EXPECT_LT(high->exited_at(), sim::Millis(1));
}

TEST_F(KernelTest, KernelSectionDefersPreemption) {
  // A task inside a 5 ms non-preemptible routine delays even a high-priority
  // wake until the routine ends — the Fig. 4 latency spike.
  kernel_->Spawn("cp",
                 std::make_unique<ScriptBehavior>(std::vector<Action>{
                     Action::KernelSection(sim::Millis(5)),
                     Action::Compute(sim::Millis(50))}),
                 CpuSet::Of({0}), Priority::kNormal);
  sim_.RunFor(sim::Micros(100));
  Task* high = kernel_->Spawn("dp",
                              std::make_unique<ScriptBehavior>(std::vector<Action>{
                                  Action::Compute(sim::Micros(10))}),
                              CpuSet::Of({0}), Priority::kHigh);
  sim_.RunFor(sim::Millis(20));
  EXPECT_EQ(high->state(), TaskState::kExited);
  // Could not start until the kernel section finished at ~5 ms.
  EXPECT_GT(high->exited_at(), sim::Millis(4));
  EXPECT_LT(high->exited_at(), sim::Millis(7));
}

TEST_F(KernelTest, NonPreemptTracerObservesEpisodes) {
  std::vector<sim::Duration> episodes;
  kernel_->set_nonpreempt_tracer(
      [&](const Task&, sim::Duration d) { episodes.push_back(d); });
  kernel_->Spawn("cp",
                 std::make_unique<ScriptBehavior>(std::vector<Action>{
                     Action::KernelSection(sim::Millis(3)),
                     Action::Compute(sim::Micros(10)),
                     Action::KernelSection(sim::Millis(1))}),
                 CpuSet::Of({0}));
  sim_.RunFor(sim::Millis(10));
  ASSERT_EQ(episodes.size(), 2u);
  EXPECT_GE(episodes[0], sim::Millis(3));
  EXPECT_GE(episodes[1], sim::Millis(1));
  EXPECT_LT(episodes[1], sim::Millis(2));
}

TEST_F(KernelTest, SleepBlocksAndResumes) {
  Task* t = kernel_->Spawn("sleeper",
                           std::make_unique<ScriptBehavior>(std::vector<Action>{
                               Action::Compute(sim::Micros(10)),
                               Action::Sleep(sim::Millis(5)),
                               Action::Compute(sim::Micros(10))}),
                           CpuSet::Of({0}));
  sim_.RunFor(sim::Millis(1));
  EXPECT_EQ(t->state(), TaskState::kSleeping);
  sim_.RunFor(sim::Millis(10));
  EXPECT_EQ(t->state(), TaskState::kExited);
  EXPECT_GE(t->exited_at(), sim::Millis(5));
}

TEST_F(KernelTest, BlockWaitsForKick) {
  Task* t = kernel_->Spawn("blocker",
                           std::make_unique<ScriptBehavior>(std::vector<Action>{
                               Action::Block(),
                               Action::Compute(sim::Micros(10))}),
                           CpuSet::Of({0}));
  sim_.RunFor(sim::Millis(50));
  EXPECT_EQ(t->state(), TaskState::kBlocked);
  kernel_->KickTask(t);
  sim_.RunFor(sim::Millis(1));
  EXPECT_EQ(t->state(), TaskState::kExited);
}

TEST_F(KernelTest, BoundedBusyPollTimesOut) {
  ActionResult seen{};
  auto behavior = std::make_unique<LambdaBehavior>(
      [&seen](Kernel&, Task&, const ActionResult& last) -> Action {
        if (last.type == Action::Type::kNone) {
          return Action::BusyPoll(sim::Micros(40));
        }
        seen = last;
        return Action::Exit();
      });
  kernel_->Spawn("poller", std::move(behavior), CpuSet::Of({0}));
  sim_.RunFor(sim::Millis(1));
  EXPECT_EQ(seen.type, Action::Type::kBusyPoll);
  EXPECT_TRUE(seen.busy_poll_timeout);
}

TEST_F(KernelTest, KickEndsBusyPollEarly) {
  ActionResult seen{};
  Task* t = kernel_->Spawn(
      "poller",
      std::make_unique<LambdaBehavior>(
          [&seen](Kernel&, Task&, const ActionResult& last) -> Action {
            if (last.type == Action::Type::kNone) {
              return Action::BusyPoll(sim::Millis(100));
            }
            seen = last;
            return Action::Exit();
          }),
      CpuSet::Of({0}));
  sim_.RunFor(sim::Micros(100));
  kernel_->KickTask(t);
  sim_.RunFor(sim::Micros(100));
  EXPECT_EQ(t->state(), TaskState::kExited);
  EXPECT_FALSE(seen.busy_poll_timeout);
  EXPECT_LT(t->exited_at(), sim::Millis(1));
}

TEST_F(KernelTest, UnboundedBusyPollCountsAsBusy) {
  kernel_->Spawn("poller",
                 std::make_unique<LambdaBehavior>(
                     [](Kernel&, Task&, const ActionResult&) -> Action {
                       return Action::BusyPoll();  // Forever.
                     }),
                 CpuSet::Of({0}));
  sim_.RunFor(sim::Millis(10));
  CpuAccounting acct = kernel_->GetAccounting(0);
  EXPECT_GT(acct.busy, sim::Millis(9));
}

TEST_F(KernelTest, AffinityConfinesExecution) {
  Task* t = kernel_->Spawn("pinned",
                           std::make_unique<ScriptBehavior>(std::vector<Action>{
                               Action::Compute(sim::Millis(1))}),
                           CpuSet::Of({2}));
  sim_.RunFor(sim::Millis(5));
  EXPECT_EQ(t->state(), TaskState::kExited);
  EXPECT_EQ(t->cpu(), 2);
  EXPECT_GT(kernel_->GetAccounting(2).busy, 0u);
  EXPECT_EQ(kernel_->GetAccounting(0).busy, 0u);
}

TEST_F(KernelTest, IdleCpuStealsQueuedWork) {
  // Pin a hog to CPU 0, then queue two more tasks that allow CPU 0 and 1.
  kernel_->Spawn("hog",
                 std::make_unique<LoopBehavior>(std::vector<Action>{
                     Action::Compute(sim::Millis(1))}),
                 CpuSet::Of({0}));
  sim_.RunFor(sim::Micros(10));
  // Saturate CPU 1 momentarily so initial placement prefers... instead simply
  // enqueue both on CPU 0 by pinning placement through load: spawn both while
  // CPU 1 busy.
  Task* h1 = kernel_->Spawn("h1",
                            std::make_unique<ScriptBehavior>(std::vector<Action>{
                                Action::Compute(sim::Millis(3))}),
                            CpuSet::Of({1}));
  Task* stealable = kernel_->Spawn(
      "stealable",
      std::make_unique<ScriptBehavior>(std::vector<Action>{
          Action::Compute(sim::Millis(1))}),
      CpuSet::Of({1, 2}));
  sim_.RunFor(sim::Millis(2));
  // CPU 2 was idle and should have stolen the stealable task instead of it
  // waiting behind h1 on CPU 1. (Placement may have put it on 2 directly,
  // which is equally fine — the point is it finishes quickly.)
  EXPECT_EQ(stealable->state(), TaskState::kExited);
  EXPECT_EQ(h1->state(), TaskState::kRunning);
}

TEST_F(KernelTest, HotplugVirtualCpuComesOnlineViaBootIpi) {
  CpuId v = kernel_->RegisterCpu(CpuKind::kVirtual, 100);
  EXPECT_FALSE(kernel_->cpu_online(v));
  kernel_->OnlineCpu(v);
  sim_.RunFor(sim::Millis(1));
  EXPECT_TRUE(kernel_->cpu_online(v));
  EXPECT_FALSE(kernel_->cpu_backed(v));  // vCPUs stay unbacked until placed.
}

TEST_F(KernelTest, AccountingSumsToElapsed) {
  kernel_->Spawn("t",
                 std::make_unique<ScriptBehavior>(std::vector<Action>{
                     Action::Compute(sim::Millis(2))}),
                 CpuSet::Of({1}));
  sim_.RunFor(sim::Millis(10));
  CpuAccounting acct = kernel_->GetAccounting(1);
  EXPECT_EQ(acct.busy + acct.idle + acct.guest_lent, sim::Millis(10));
  EXPECT_GE(acct.busy, sim::Millis(2));
}

TEST_F(KernelTest, YieldRotatesEqualPriorityTasks) {
  // Two loopers that yield after each unit of work should interleave tightly.
  auto make = [&](const char* name) {
    return kernel_->Spawn(name,
                          std::make_unique<LoopBehavior>(
                              std::vector<Action>{Action::Compute(sim::Micros(100)),
                                                  Action::Yield()},
                              /*iterations=*/50),
                          CpuSet::Of({3}));
  };
  Task* a = make("a");
  Task* b = make("b");
  sim_.RunFor(sim::Millis(60));
  EXPECT_EQ(a->state(), TaskState::kExited);
  EXPECT_EQ(b->state(), TaskState::kExited);
  // With strict alternation they finish within ~one iteration of each other.
  sim::Duration gap = a->exited_at() < b->exited_at() ? b->exited_at() - a->exited_at()
                                                      : a->exited_at() - b->exited_at();
  EXPECT_LT(gap, sim::Millis(1));
}

TEST_F(KernelTest, ContextSwitchesAreCounted) {
  kernel_->Spawn("a",
                 std::make_unique<ScriptBehavior>(std::vector<Action>{
                     Action::Compute(sim::Micros(1))}),
                 CpuSet::Of({0}));
  kernel_->Spawn("b",
                 std::make_unique<ScriptBehavior>(std::vector<Action>{
                     Action::Compute(sim::Micros(1))}),
                 CpuSet::Of({0}));
  sim_.RunFor(sim::Millis(1));
  EXPECT_GE(kernel_->context_switches(), 2u);
}

}  // namespace
}  // namespace taichi::os
