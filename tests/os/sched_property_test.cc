// Property-based scheduler tests: random workloads driven across random
// seeds must preserve the kernel's core invariants.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/os/behaviors.h"
#include "src/os/kernel.h"
#include "src/sim/random.h"

namespace taichi::os {
namespace {

struct Env {
  explicit Env(uint64_t seed, uint32_t cpus = 4) : sim(seed) {
    hw::MachineConfig mcfg;
    mcfg.num_cpus = cpus;
    machine = std::make_unique<hw::Machine>(&sim, mcfg);
    kernel = std::make_unique<Kernel>(&sim, machine.get(), KernelConfig{});
  }
  sim::Simulation sim;
  std::unique_ptr<hw::Machine> machine;
  std::unique_ptr<Kernel> kernel;
};

// Random mixes of compute/kernel-section/sleep/yield tasks.
class RandomWorkloadTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomWorkloadTest, AccountingConservesTime) {
  Env env(GetParam());
  sim::Rng rng(GetParam() * 31 + 7);
  for (int i = 0; i < 12; ++i) {
    std::vector<Action> body;
    int steps = 1 + static_cast<int>(rng.UniformInt(0, 4));
    for (int s = 0; s < steps; ++s) {
      switch (rng.UniformInt(0, 3)) {
        case 0:
          body.push_back(Action::Compute(rng.UniformDuration(sim::Micros(10), sim::Millis(2))));
          break;
        case 1:
          body.push_back(
              Action::KernelSection(rng.UniformDuration(sim::Micros(5), sim::Millis(1))));
          break;
        case 2:
          body.push_back(Action::Sleep(rng.UniformDuration(sim::Micros(50), sim::Millis(1))));
          break;
        default:
          body.push_back(Action::Yield());
          break;
      }
    }
    CpuSet affinity;
    affinity.Set(static_cast<CpuId>(rng.UniformInt(0, 3)));
    affinity.Set(static_cast<CpuId>(rng.UniformInt(0, 3)));
    env.kernel->Spawn("t" + std::to_string(i),
                      std::make_unique<LoopBehavior>(body, 1 + rng.UniformInt(0, 20)),
                      affinity,
                      static_cast<Priority>(rng.UniformInt(0, 2)));
  }
  const sim::Duration kWindow = sim::Millis(250);
  env.sim.RunFor(kWindow);
  for (CpuId c = 0; c < env.kernel->num_cpus(); ++c) {
    CpuAccounting acct = env.kernel->GetAccounting(c);
    EXPECT_EQ(acct.busy + acct.idle + acct.guest_lent, kWindow)
        << "CPU " << c << " lost time";
  }
}

TEST_P(RandomWorkloadTest, FiniteTasksAllExitWithFullCpuTime) {
  Env env(GetParam() ^ 0x9999);
  sim::Rng rng(GetParam() * 17 + 3);
  struct Expect {
    Task* task;
    sim::Duration min_cpu;
  };
  std::vector<Expect> expectations;
  for (int i = 0; i < 10; ++i) {
    sim::Duration demand = rng.UniformDuration(sim::Micros(100), sim::Millis(5));
    int chunks = 1 + static_cast<int>(rng.UniformInt(0, 7));
    std::vector<Action> script;
    for (int c = 0; c < chunks; ++c) {
      script.push_back(Action::Compute(demand / chunks));
    }
    Task* t = env.kernel->Spawn("w" + std::to_string(i),
                                std::make_unique<ScriptBehavior>(script), CpuSet::All(4));
    expectations.push_back({t, demand / chunks * chunks});
  }
  env.sim.RunFor(sim::Seconds(2));
  for (const Expect& e : expectations) {
    EXPECT_EQ(e.task->state(), TaskState::kExited);
    EXPECT_GE(e.task->cpu_time(), e.min_cpu);
  }
}

TEST_P(RandomWorkloadTest, SpinlockMutualExclusionUnderContention) {
  Env env(GetParam() ^ 0x5555);
  KernelSpinlock lock("shared");
  sim::Rng rng(GetParam() + 1);
  int contenders = 2 + static_cast<int>(rng.UniformInt(0, 2));
  std::vector<Task*> tasks;
  for (int i = 0; i < contenders; ++i) {
    tasks.push_back(env.kernel->Spawn(
        "locker" + std::to_string(i),
        std::make_unique<LoopBehavior>(
            std::vector<Action>{Action::Compute(rng.UniformDuration(sim::Micros(5),
                                                                    sim::Micros(100))),
                                Action::LockAcquire(&lock),
                                Action::KernelSection(rng.UniformDuration(sim::Micros(10),
                                                                          sim::Micros(300))),
                                Action::LockRelease(&lock)},
            /*iterations=*/20),
        CpuSet::Of({static_cast<CpuId>(i % 4)})));
  }
  env.sim.RunFor(sim::Seconds(2));
  for (Task* t : tasks) {
    EXPECT_EQ(t->state(), TaskState::kExited);
  }
  EXPECT_FALSE(lock.held());
  EXPECT_EQ(lock.acquisitions(), static_cast<uint64_t>(contenders) * 20u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkloadTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// Guest-mode stress: random lend/reclaim cycles must never lose work.
class GuestStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GuestStressTest, RandomLendReclaimPreservesWork) {
  Env env(GetParam(), 2);
  CpuId vcpu = env.kernel->RegisterCpu(CpuKind::kVirtual, 200);
  env.kernel->OnlineCpu(vcpu);
  env.sim.RunFor(sim::Millis(1));

  // Total demand 10 ms split into mixed segments, some non-preemptible.
  Task* t = env.kernel->Spawn(
      "guest_work",
      std::make_unique<LoopBehavior>(
          std::vector<Action>{Action::Compute(sim::Micros(400)),
                              Action::KernelSection(sim::Micros(600))},
          /*iterations=*/10),
      CpuSet::Of({vcpu}));

  sim::Rng rng(GetParam() * 7 + 5);
  // Random lend/reclaim cycles on pCPU 0 until the task completes.
  for (int round = 0; round < 400 && t->state() != TaskState::kExited; ++round) {
    if (env.kernel->guest_of(0) == kInvalidCpu && env.kernel->CpuInHostMode(0) &&
        !env.kernel->cpu_backed(vcpu)) {
      env.kernel->EnterGuest(0, vcpu);
    }
    env.sim.RunFor(rng.UniformDuration(sim::Micros(20), sim::Micros(500)));
    if (env.kernel->guest_of(0) == vcpu) {
      env.kernel->ExitGuest(0, GuestExitReason::kForced);
    }
    env.sim.RunFor(rng.UniformDuration(sim::Micros(5), sim::Micros(100)));
  }
  EXPECT_EQ(t->state(), TaskState::kExited);
  // Exactly 10 iterations of 1 ms each (plus dispatch overheads).
  EXPECT_GE(t->cpu_time(), sim::Millis(10));
  EXPECT_LT(t->cpu_time(), sim::Millis(11));
  // Backing is consistent at the end.
  EXPECT_EQ(env.kernel->guest_entries(), env.kernel->guest_exits());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GuestStressTest, ::testing::Values(2, 4, 6, 10, 12, 19));

}  // namespace
}  // namespace taichi::os
