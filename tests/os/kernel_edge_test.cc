// Edge cases of the kernel's scheduling and IPI paths.
#include <gtest/gtest.h>

#include <memory>

#include "src/os/behaviors.h"
#include "src/os/kernel.h"

namespace taichi::os {
namespace {

class KernelEdgeTest : public ::testing::Test {
 protected:
  KernelEdgeTest() {
    hw::MachineConfig mcfg;
    mcfg.num_cpus = 4;
    machine_ = std::make_unique<hw::Machine>(&sim_, mcfg);
    kernel_ = std::make_unique<Kernel>(&sim_, machine_.get(), KernelConfig{});
  }

  sim::Simulation sim_;
  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<Kernel> kernel_;
};

TEST_F(KernelEdgeTest, ThreePriorityLevelsStrictlyOrdered) {
  // Fill CPU 0 with a low task, then add normal and high; completion order
  // must be high, normal, low.
  std::vector<std::string> order;
  kernel_->set_task_exit_handler([&](Task& t) { order.push_back(t.name()); });
  auto mk = [&](const char* name, Priority p) {
    kernel_->Spawn(name,
                   std::make_unique<ScriptBehavior>(std::vector<Action>{
                       Action::Compute(sim::Millis(2))}),
                   CpuSet::Of({0}), p);
  };
  mk("low", Priority::kLow);
  sim_.RunFor(sim::Micros(10));
  mk("normal", Priority::kNormal);
  mk("high", Priority::kHigh);
  sim_.RunFor(sim::Millis(20));
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "high");
  EXPECT_EQ(order[1], "normal");
  EXPECT_EQ(order[2], "low");
}

TEST_F(KernelEdgeTest, DoubleWakeIsNoop) {
  Task* t = kernel_->Spawn("blocker",
                           std::make_unique<ScriptBehavior>(std::vector<Action>{
                               Action::Block(), Action::Compute(sim::Micros(10))}),
                           CpuSet::Of({0}));
  sim_.RunFor(sim::Millis(1));
  kernel_->Wake(t);
  kernel_->Wake(t);  // Second wake must not double-enqueue.
  sim_.RunFor(sim::Millis(1));
  EXPECT_EQ(t->state(), TaskState::kExited);
  EXPECT_EQ(kernel_->runnable_count(0), 0u);
}

TEST_F(KernelEdgeTest, KickOnRunningComputeTaskIsHarmless) {
  Task* t = kernel_->Spawn("worker",
                           std::make_unique<ScriptBehavior>(std::vector<Action>{
                               Action::Compute(sim::Millis(2))}),
                           CpuSet::Of({0}));
  sim_.RunFor(sim::Micros(100));
  kernel_->KickTask(t);  // Not polling, not blocked: no-op.
  sim_.RunFor(sim::Millis(5));
  EXPECT_EQ(t->state(), TaskState::kExited);
  EXPECT_GE(t->cpu_time(), sim::Millis(2));
}

TEST_F(KernelEdgeTest, ZeroDurationComputeCompletes) {
  Task* t = kernel_->Spawn("zero",
                           std::make_unique<ScriptBehavior>(std::vector<Action>{
                               Action::Compute(0), Action::Compute(sim::Micros(1))}),
                           CpuSet::Of({0}));
  sim_.RunFor(sim::Millis(1));
  EXPECT_EQ(t->state(), TaskState::kExited);
}

TEST_F(KernelEdgeTest, StealRespectsAffinity) {
  // Queue two tasks behind a hog on CPU 0; only the one allowing CPU 1 may
  // be stolen there.
  kernel_->Spawn("hog",
                 std::make_unique<LoopBehavior>(std::vector<Action>{
                     Action::Compute(sim::Millis(5))}),
                 CpuSet::Of({0}));
  sim_.RunFor(sim::Micros(10));
  Task* pinned = kernel_->Spawn("pinned",
                                std::make_unique<ScriptBehavior>(std::vector<Action>{
                                    Action::Compute(sim::Micros(100))}),
                                CpuSet::Of({0}));
  Task* movable = kernel_->Spawn("movable",
                                 std::make_unique<ScriptBehavior>(std::vector<Action>{
                                     Action::Compute(sim::Micros(100))}),
                                 CpuSet::Of({0, 1}));
  sim_.RunFor(sim::Millis(2));
  EXPECT_EQ(movable->state(), TaskState::kExited);
  EXPECT_NE(movable->cpu(), 0);
  EXPECT_EQ(pinned->state(), TaskState::kRunnable);  // Still stuck behind the hog.
}

TEST_F(KernelEdgeTest, DefaultRouterDeliversToVirtualDest) {
  // Without an orchestrator, the default route still functions for tests.
  CpuId v = kernel_->RegisterCpu(CpuKind::kVirtual, 300);
  kernel_->OnlineCpu(v);
  sim_.RunFor(sim::Millis(1));
  EXPECT_TRUE(kernel_->cpu_online(v));
  kernel_->SendIpi(0, v, IpiType::kResched);  // Pends on the unbacked vCPU.
  sim_.RunFor(sim::Millis(1));
  EXPECT_TRUE(kernel_->CpuHasWork(v) || kernel_->runnable_count(v) == 0);
}

TEST_F(KernelEdgeTest, TickRoundRobinsEqualPriority) {
  Task* a = kernel_->Spawn("a",
                           std::make_unique<ScriptBehavior>(std::vector<Action>{
                               Action::Compute(sim::Millis(9))}),
                           CpuSet::Of({2}));
  Task* b = kernel_->Spawn("b",
                           std::make_unique<ScriptBehavior>(std::vector<Action>{
                               Action::Compute(sim::Millis(9))}),
                           CpuSet::Of({2}));
  // After 10 ms both have run (RR slices), neither is done.
  sim_.RunFor(sim::Millis(10));
  EXPECT_GT(kernel_->TaskCpuTime(*a), sim::Millis(2));
  EXPECT_GT(kernel_->TaskCpuTime(*b), sim::Millis(2));
  EXPECT_NE(a->state(), TaskState::kExited);
  EXPECT_NE(b->state(), TaskState::kExited);
}

TEST_F(KernelEdgeTest, IdleHandlerFiresOnIdlePhysicalCpu) {
  std::vector<CpuId> idled;
  kernel_->set_idle_handler([&](CpuId c) { idled.push_back(c); });
  Task* t = kernel_->Spawn("short",
                           std::make_unique<ScriptBehavior>(std::vector<Action>{
                               Action::Compute(sim::Micros(100))}),
                           CpuSet::Of({3}));
  sim_.RunFor(sim::Millis(1));
  EXPECT_EQ(t->state(), TaskState::kExited);
  ASSERT_FALSE(idled.empty());
  EXPECT_EQ(idled.front(), 3);
}

}  // namespace
}  // namespace taichi::os
