// Live affinity changes (sched_setaffinity model) across all task states.
#include <gtest/gtest.h>

#include <memory>

#include "src/os/behaviors.h"
#include "src/os/kernel.h"

namespace taichi::os {
namespace {

class AffinityTest : public ::testing::Test {
 protected:
  AffinityTest() {
    hw::MachineConfig mcfg;
    mcfg.num_cpus = 4;
    machine_ = std::make_unique<hw::Machine>(&sim_, mcfg);
    kernel_ = std::make_unique<Kernel>(&sim_, machine_.get(), KernelConfig{});
  }

  sim::Simulation sim_;
  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<Kernel> kernel_;
};

TEST_F(AffinityTest, RunningTaskMigratesMidCompute) {
  Task* t = kernel_->Spawn("long",
                           std::make_unique<ScriptBehavior>(std::vector<Action>{
                               Action::Compute(sim::Millis(20))}),
                           CpuSet::Of({0}));
  sim_.RunFor(sim::Millis(2));
  EXPECT_EQ(t->cpu(), 0);
  kernel_->SetTaskAffinity(t, CpuSet::Of({2}));
  sim_.RunFor(sim::Millis(1));
  EXPECT_EQ(t->cpu(), 2);
  EXPECT_EQ(t->state(), TaskState::kRunning);
  sim_.RunFor(sim::Millis(30));
  EXPECT_EQ(t->state(), TaskState::kExited);
  // No work was lost across the migration.
  EXPECT_GE(t->cpu_time(), sim::Millis(20));
}

TEST_F(AffinityTest, NonPreemptibleTaskMigratesAtSectionEnd) {
  Task* t = kernel_->Spawn("kern",
                           std::make_unique<ScriptBehavior>(std::vector<Action>{
                               Action::KernelSection(sim::Millis(5)),
                               Action::Compute(sim::Millis(1))}),
                           CpuSet::Of({0}));
  sim_.RunFor(sim::Millis(1));
  kernel_->SetTaskAffinity(t, CpuSet::Of({3}));
  sim_.RunFor(sim::Millis(2));
  EXPECT_EQ(t->cpu(), 0);  // Still pinned by the kernel section.
  sim_.RunFor(sim::Millis(20));
  EXPECT_EQ(t->state(), TaskState::kExited);
  EXPECT_EQ(t->cpu(), 3);  // Finished its compute on the new CPU.
}

TEST_F(AffinityTest, QueuedTaskMovesImmediately) {
  // Occupy CPU 0 with a hog, queue a task behind it, then re-affine it.
  kernel_->Spawn("hog",
                 std::make_unique<LoopBehavior>(std::vector<Action>{
                     Action::Compute(sim::Millis(1))}),
                 CpuSet::Of({0}));
  sim_.RunFor(sim::Micros(100));
  Task* queued = kernel_->Spawn("queued",
                                std::make_unique<ScriptBehavior>(std::vector<Action>{
                                    Action::Compute(sim::Micros(100))}),
                                CpuSet::Of({0}));
  EXPECT_EQ(queued->state(), TaskState::kRunnable);
  kernel_->SetTaskAffinity(queued, CpuSet::Of({1}));
  sim_.RunFor(sim::Millis(1));
  EXPECT_EQ(queued->state(), TaskState::kExited);
  EXPECT_EQ(queued->cpu(), 1);
}

TEST_F(AffinityTest, SleepingTaskPlacedOnWake) {
  Task* t = kernel_->Spawn("sleeper",
                           std::make_unique<ScriptBehavior>(std::vector<Action>{
                               Action::Sleep(sim::Millis(5)),
                               Action::Compute(sim::Micros(100))}),
                           CpuSet::Of({0}));
  sim_.RunFor(sim::Millis(1));
  EXPECT_EQ(t->state(), TaskState::kSleeping);
  kernel_->SetTaskAffinity(t, CpuSet::Of({2}));
  sim_.RunFor(sim::Millis(10));
  EXPECT_EQ(t->state(), TaskState::kExited);
  EXPECT_EQ(t->cpu(), 2);
}

TEST_F(AffinityTest, NoopWhenCurrentCpuStillAllowed) {
  Task* t = kernel_->Spawn("stay",
                           std::make_unique<ScriptBehavior>(std::vector<Action>{
                               Action::Compute(sim::Millis(5))}),
                           CpuSet::Of({1}));
  sim_.RunFor(sim::Millis(1));
  uint64_t switches = kernel_->context_switches();
  kernel_->SetTaskAffinity(t, CpuSet::Of({1, 2}));
  sim_.RunFor(sim::Micros(100));
  EXPECT_EQ(t->cpu(), 1);
  EXPECT_EQ(kernel_->context_switches(), switches);  // No migration churn.
}

}  // namespace
}  // namespace taichi::os
