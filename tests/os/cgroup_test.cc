#include "src/os/cgroup.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/os/behaviors.h"

namespace taichi::os {
namespace {

class CgroupTest : public ::testing::Test {
 protected:
  CgroupTest() {
    hw::MachineConfig mcfg;
    mcfg.num_cpus = 4;
    machine_ = std::make_unique<hw::Machine>(&sim_, mcfg);
    kernel_ = std::make_unique<Kernel>(&sim_, machine_.get(), KernelConfig{});
  }

  std::unique_ptr<Behavior> Spinner() {
    return std::make_unique<LoopBehavior>(std::vector<Action>{
        Action::Compute(sim::Micros(100)), Action::Yield()});
  }

  sim::Simulation sim_;
  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<Kernel> kernel_;
};

TEST_F(CgroupTest, SpawnInheritsGroupCpus) {
  CpuGroup group(kernel_.get(), "cp", CpuSet::Of({2, 3}));
  Task* t = group.Spawn("member", Spinner());
  EXPECT_EQ(t->affinity(), CpuSet::Of({2, 3}));
  sim_.RunFor(sim::Millis(5));
  EXPECT_TRUE(t->cpu() == 2 || t->cpu() == 3);
}

TEST_F(CgroupTest, AttachRebindsExistingTask) {
  Task* t = kernel_->Spawn("free", Spinner(), CpuSet::Of({0}));
  sim_.RunFor(sim::Millis(2));
  EXPECT_EQ(t->cpu(), 0);
  CpuGroup group(kernel_.get(), "cp", CpuSet::Of({3}));
  group.Attach(t);
  sim_.RunFor(sim::Millis(5));
  EXPECT_EQ(t->cpu(), 3);
  EXPECT_EQ(group.size(), 1u);
}

TEST_F(CgroupTest, DetachRestoresOriginalAffinity) {
  Task* t = kernel_->Spawn("free", Spinner(), CpuSet::Of({0, 1}));
  CpuGroup group(kernel_.get(), "cp", CpuSet::Of({3}));
  group.Attach(t);
  sim_.RunFor(sim::Millis(2));
  group.Detach(t);
  EXPECT_EQ(t->affinity(), CpuSet::Of({0, 1}));
  sim_.RunFor(sim::Millis(5));
  EXPECT_TRUE(t->cpu() == 0 || t->cpu() == 1);
  EXPECT_EQ(group.size(), 0u);
}

TEST_F(CgroupTest, SetCpusMigratesAllMembersLive) {
  CpuGroup group(kernel_.get(), "cp", CpuSet::Of({0, 1}));
  std::vector<Task*> members;
  for (int i = 0; i < 4; ++i) {
    members.push_back(group.Spawn("m" + std::to_string(i), Spinner()));
  }
  sim_.RunFor(sim::Millis(5));
  group.SetCpus(CpuSet::Of({2, 3}));
  sim_.RunFor(sim::Millis(10));
  for (Task* t : members) {
    EXPECT_TRUE(t->cpu() == 2 || t->cpu() == 3) << t->name() << " on " << t->cpu();
  }
  // The old CPUs drain to idle.
  EXPECT_EQ(kernel_->runnable_count(0), 0u);
  EXPECT_EQ(kernel_->current_task(0), nullptr);
}

TEST_F(CgroupTest, DetachUnknownTaskIsNoop) {
  CpuGroup group(kernel_.get(), "cp", CpuSet::Of({0}));
  Task* t = kernel_->Spawn("outsider", Spinner(), CpuSet::Of({1}));
  group.Detach(t);  // Must not crash or change affinity.
  EXPECT_EQ(t->affinity(), CpuSet::Of({1}));
}

}  // namespace
}  // namespace taichi::os
