#include "src/sim/inline_callback.h"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <utility>

namespace taichi::sim {
namespace {

TEST(InlineCallbackTest, DefaultIsEmpty) {
  InlineCallback cb;
  EXPECT_FALSE(static_cast<bool>(cb));
  InlineCallback null_cb(nullptr);
  EXPECT_FALSE(static_cast<bool>(null_cb));
}

TEST(InlineCallbackTest, InvokesCapturedLambda) {
  int hits = 0;
  InlineCallback cb([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(cb));
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallbackTest, MoveTransfersOwnership) {
  int hits = 0;
  InlineCallback a([&hits] { ++hits; });
  InlineCallback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  InlineCallback c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallbackTest, MoveOnlyCaptureWorks) {
  // std::function cannot hold this; the event queue must.
  auto owned = std::make_unique<int>(41);
  int result = 0;
  InlineCallback cb([p = std::move(owned), &result] { result = *p + 1; });
  InlineCallback moved(std::move(cb));
  moved();
  EXPECT_EQ(result, 42);
}

TEST(InlineCallbackTest, NonTrivialCaptureDestroyedExactlyOnce) {
  auto tracked = std::make_shared<int>(7);
  std::weak_ptr<int> watch = tracked;
  {
    InlineCallback cb([keep = std::move(tracked)] { (void)*keep; });
    EXPECT_EQ(watch.use_count(), 1);
    InlineCallback moved(std::move(cb));
    EXPECT_EQ(watch.use_count(), 1);  // Moved, not copied.
    moved();
    EXPECT_EQ(watch.use_count(), 1);  // Invocation does not destroy.
  }
  EXPECT_TRUE(watch.expired());
}

TEST(InlineCallbackTest, AssignNullptrDestroysCapture) {
  auto tracked = std::make_shared<int>(1);
  std::weak_ptr<int> watch = tracked;
  InlineCallback cb([keep = std::move(tracked)] { (void)keep; });
  cb = nullptr;
  EXPECT_FALSE(static_cast<bool>(cb));
  EXPECT_TRUE(watch.expired());
}

TEST(InlineCallbackTest, OversizedCaptureFallsBackToHeapAndStillWorks) {
  // Exceeds kInlineBytes: must heap-box, and moves must transfer the box.
  std::array<uint64_t, 32> big{};
  static_assert(sizeof(big) > InlineCallback::kInlineBytes);
  big[0] = 5;
  big[31] = 37;
  uint64_t sum = 0;
  InlineCallback cb([big, &sum] { sum = big[0] + big[31]; });
  InlineCallback moved(std::move(cb));
  EXPECT_FALSE(static_cast<bool>(cb));
  moved();
  EXPECT_EQ(sum, 42u);
}

TEST(InlineCallbackTest, OversizedNonTrivialCaptureDestroyedExactlyOnce) {
  auto tracked = std::make_shared<int>(3);
  std::weak_ptr<int> watch = tracked;
  {
    std::array<uint64_t, 32> pad{};
    InlineCallback cb([keep = std::move(tracked), pad] { (void)*keep; (void)pad; });
    EXPECT_EQ(watch.use_count(), 1);
    InlineCallback moved(std::move(cb));
    moved();
    EXPECT_EQ(watch.use_count(), 1);
  }
  EXPECT_TRUE(watch.expired());
}

TEST(InlineCallbackTest, HotPathCapturesStayInline) {
  // The captures the simulator schedules millions of times per second must
  // fit the inline buffer; this is the compile-time contract behind the
  // zero-allocation guarantee (see bench_micro's allocation hook).
  struct PacketShapedCapture {
    void* self;
    unsigned char packet[80];  // sizeof(hw::IoPacket), FlowKey included
    uint32_t queue;
    uint64_t now;
  };
  static_assert(sizeof(PacketShapedCapture) <= InlineCallback::kInlineBytes);
  struct KernelShapedCapture {
    void* self;
    int id;
    bool timeout;
  };
  static_assert(sizeof(KernelShapedCapture) <= InlineCallback::kInlineBytes);
}

TEST(InlineCallbackTest, SelfRescheduleStyleReuse) {
  // The repeating-timer pattern: invoke, move back, invoke again.
  int hits = 0;
  InlineCallback slot([&hits] { ++hits; });
  for (int i = 0; i < 3; ++i) {
    InlineCallback fired(std::move(slot));
    fired();
    slot = std::move(fired);
  }
  EXPECT_EQ(hits, 3);
}

}  // namespace
}  // namespace taichi::sim
