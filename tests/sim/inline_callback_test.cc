#include "src/sim/inline_callback.h"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <utility>

namespace taichi::sim {
namespace {

TEST(InlineCallbackTest, DefaultIsEmpty) {
  InlineCallback cb;
  EXPECT_FALSE(static_cast<bool>(cb));
  InlineCallback null_cb(nullptr);
  EXPECT_FALSE(static_cast<bool>(null_cb));
}

TEST(InlineCallbackTest, InvokesCapturedLambda) {
  int hits = 0;
  InlineCallback cb([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(cb));
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallbackTest, MoveTransfersOwnership) {
  int hits = 0;
  InlineCallback a([&hits] { ++hits; });
  InlineCallback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  InlineCallback c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallbackTest, MoveOnlyCaptureWorks) {
  // std::function cannot hold this; the event queue must.
  auto owned = std::make_unique<int>(41);
  int result = 0;
  InlineCallback cb([p = std::move(owned), &result] { result = *p + 1; });
  InlineCallback moved(std::move(cb));
  moved();
  EXPECT_EQ(result, 42);
}

TEST(InlineCallbackTest, NonTrivialCaptureDestroyedExactlyOnce) {
  auto tracked = std::make_shared<int>(7);
  std::weak_ptr<int> watch = tracked;
  {
    InlineCallback cb([keep = std::move(tracked)] { (void)*keep; });
    EXPECT_EQ(watch.use_count(), 1);
    InlineCallback moved(std::move(cb));
    EXPECT_EQ(watch.use_count(), 1);  // Moved, not copied.
    moved();
    EXPECT_EQ(watch.use_count(), 1);  // Invocation does not destroy.
  }
  EXPECT_TRUE(watch.expired());
}

TEST(InlineCallbackTest, AssignNullptrDestroysCapture) {
  auto tracked = std::make_shared<int>(1);
  std::weak_ptr<int> watch = tracked;
  InlineCallback cb([keep = std::move(tracked)] { (void)keep; });
  cb = nullptr;
  EXPECT_FALSE(static_cast<bool>(cb));
  EXPECT_TRUE(watch.expired());
}

TEST(InlineCallbackTest, OversizedCaptureFallsBackToHeapAndStillWorks) {
  // Exceeds kInlineBytes: must heap-box, and moves must transfer the box.
  std::array<uint64_t, 32> big{};
  static_assert(sizeof(big) > InlineCallback::kInlineBytes);
  big[0] = 5;
  big[31] = 37;
  uint64_t sum = 0;
  InlineCallback cb([big, &sum] { sum = big[0] + big[31]; });
  InlineCallback moved(std::move(cb));
  EXPECT_FALSE(static_cast<bool>(cb));
  moved();
  EXPECT_EQ(sum, 42u);
}

TEST(InlineCallbackTest, OversizedNonTrivialCaptureDestroyedExactlyOnce) {
  auto tracked = std::make_shared<int>(3);
  std::weak_ptr<int> watch = tracked;
  {
    std::array<uint64_t, 32> pad{};
    InlineCallback cb([keep = std::move(tracked), pad] { (void)*keep; (void)pad; });
    EXPECT_EQ(watch.use_count(), 1);
    InlineCallback moved(std::move(cb));
    moved();
    EXPECT_EQ(watch.use_count(), 1);
  }
  EXPECT_TRUE(watch.expired());
}

TEST(InlineCallbackTest, HotPathCapturesStayInline) {
  // The captures the simulator schedules millions of times per second must
  // fit the inline buffer; this is the compile-time contract behind the
  // zero-allocation guarantee (see bench_micro's allocation hook). Since the
  // packet arena landed, hot captures carry a 4-byte handle instead of an
  // 80-byte IoPacket copy, which is what lets kInlineBytes stay at 48.
  struct HandleShapedCapture {
    void* self;
    uint32_t queue;
    uint32_t handle;
    uint64_t now;
  };
  static_assert(sizeof(HandleShapedCapture) <= InlineCallback::kInlineBytes);
  struct KernelShapedCapture {
    void* self;
    int id;
    bool timeout;
  };
  static_assert(sizeof(KernelShapedCapture) <= InlineCallback::kInlineBytes);
}

TEST(InlineFunctionTest, CarriesArgumentsAndReturnValue) {
  InlineFunction<int(int, int)> add([](int a, int b) { return a + b; });
  ASSERT_TRUE(static_cast<bool>(add));
  EXPECT_EQ(add(19, 23), 42);
}

TEST(InlineFunctionTest, BatchSinkShapedSignature) {
  // The DP batch-sink shape: pointer + count + timestamp, stateful capture.
  uint64_t total = 0;
  InlineFunction<void(const uint32_t*, size_t, uint64_t)> sink(
      [&total](const uint32_t* batch, size_t count, uint64_t ts) {
        for (size_t i = 0; i < count; ++i) {
          total += batch[i];
        }
        total += ts;
      });
  const uint32_t batch[3] = {1, 2, 3};
  sink(batch, 3, 100);
  EXPECT_EQ(total, 106u);
}

TEST(InlineFunctionTest, MovePreservesNonVoidSignature) {
  auto boxed = std::make_unique<int>(7);
  InlineFunction<int()> f([p = std::move(boxed)] { return *p * 6; });
  InlineFunction<int()> g(std::move(f));
  EXPECT_FALSE(static_cast<bool>(f));
  EXPECT_EQ(g(), 42);
}

TEST(FunctionRefTest, BindsLambdasFunctorsAndStaysTwoWords) {
  // The non-owning view the hot paths pass instead of std::function: it must
  // bind any callable by reference, stay trivially copyable, and never grow
  // past an object pointer + an invoke pointer.
  static_assert(sizeof(FunctionRef<void(size_t)>) <= 2 * sizeof(void*));
  static_assert(std::is_trivially_copyable_v<FunctionRef<void(size_t)>>);

  int sum = 0;
  auto lambda = [&sum](size_t i) { sum += static_cast<int>(i); };
  FunctionRef<void(size_t)> ref = lambda;
  EXPECT_TRUE(static_cast<bool>(ref));
  ref(40);
  ref(2);
  EXPECT_EQ(sum, 42);

  struct Doubler {
    int operator()(int x) const { return 2 * x; }
  };
  Doubler d;
  FunctionRef<int(int)> dref = d;
  EXPECT_EQ(dref(21), 42);

  // Copies alias the same underlying callable.
  FunctionRef<void(size_t)> copy = ref;
  copy(8);
  EXPECT_EQ(sum, 50);
}

TEST(FunctionRefTest, DefaultConstructedIsFalse) {
  FunctionRef<void()> empty;
  EXPECT_FALSE(static_cast<bool>(empty));
}

TEST(InlineCallbackTest, SelfRescheduleStyleReuse) {
  // The repeating-timer pattern: invoke, move back, invoke again.
  int hits = 0;
  InlineCallback slot([&hits] { ++hits; });
  for (int i = 0; i < 3; ++i) {
    InlineCallback fired(std::move(slot));
    fired();
    slot = std::move(fired);
  }
  EXPECT_EQ(hits, 3);
}

}  // namespace
}  // namespace taichi::sim
