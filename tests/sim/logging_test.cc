// Pluggable log sink: messages reach the installed backend fully formatted
// (no time prefix, no newline), level filtering happens before the sink,
// and nullptr restores the stderr default.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "src/sim/logging.h"

namespace taichi::sim {
namespace {

LogLevel g_seen_level = LogLevel::kTrace;
SimTime g_seen_time = 0;
std::string g_seen_message;
int g_calls = 0;

void CaptureSink(LogLevel level, SimTime now, const char* message) {
  g_seen_level = level;
  g_seen_time = now;
  g_seen_message = message;
  ++g_calls;
}

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = GetLogLevel();
    g_calls = 0;
    g_seen_message.clear();
  }
  void TearDown() override {
    SetLogSink(nullptr);
    SetLogLevel(saved_level_);
  }
  LogLevel saved_level_;
};

TEST_F(LoggingTest, SinkReceivesFormattedMessage) {
  // With the default stderr sink active, installing returns nullptr.
  EXPECT_EQ(SetLogSink(&CaptureSink), nullptr);
  SetLogLevel(LogLevel::kInfo);
  TAICHI_INFO(12345, "hello %d %s", 42, "world");
  ASSERT_EQ(g_calls, 1);
  EXPECT_EQ(g_seen_message, "hello 42 world");  // No prefix, no newline.
  EXPECT_EQ(g_seen_level, LogLevel::kInfo);
  EXPECT_EQ(g_seen_time, 12345u);
}

TEST_F(LoggingTest, LevelFilterRunsBeforeSink) {
  SetLogSink(&CaptureSink);
  SetLogLevel(LogLevel::kWarn);
  TAICHI_DEBUG(1, "dropped");
  TAICHI_INFO(2, "dropped too");
  EXPECT_EQ(g_calls, 0);
  TAICHI_ERROR(3, "kept");
  EXPECT_EQ(g_calls, 1);
  EXPECT_EQ(g_seen_message, "kept");
}

TEST_F(LoggingTest, InstallReturnsPreviousSinkAndNullRestoresDefault) {
  SetLogSink(&CaptureSink);
  // Replacing a custom sink hands it back so embedders can chain/restore.
  EXPECT_EQ(SetLogSink(nullptr), &CaptureSink);
  // Default restored: a second install reports "default was active" again.
  EXPECT_EQ(SetLogSink(&CaptureSink), nullptr);
}

TEST_F(LoggingTest, OverlongMessageTruncatesInsteadOfAllocating) {
  SetLogSink(&CaptureSink);
  SetLogLevel(LogLevel::kInfo);
  const std::string big(2000, 'x');
  TAICHI_INFO(0, "%s", big.c_str());
  ASSERT_EQ(g_calls, 1);
  // vsnprintf into the 1024-byte stack buffer: 1023 chars + NUL.
  EXPECT_EQ(g_seen_message.size(), 1023u);
  EXPECT_EQ(g_seen_message, std::string(1023, 'x'));
}

}  // namespace
}  // namespace taichi::sim
