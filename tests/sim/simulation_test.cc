#include "src/sim/simulation.h"

#include <gtest/gtest.h>

namespace taichi::sim {
namespace {

TEST(SimulationTest, ClockAdvancesWithEvents) {
  Simulation sim;
  SimTime seen = 0;
  sim.Schedule(Micros(5), [&] { seen = sim.Now(); });
  sim.Run();
  EXPECT_EQ(seen, Micros(5));
  EXPECT_EQ(sim.Now(), Micros(5));
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(Micros(1), [&] { ++fired; });
  sim.Schedule(Micros(10), [&] { ++fired; });
  sim.RunUntil(Micros(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), Micros(5));
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, RunForAdvancesRelative) {
  Simulation sim;
  sim.Schedule(Millis(2), [] {});
  sim.RunFor(Millis(1));
  EXPECT_EQ(sim.Now(), Millis(1));
  sim.RunFor(Millis(1));
  EXPECT_EQ(sim.Now(), Millis(2));
}

TEST(SimulationTest, NestedSchedulingWorks) {
  Simulation sim;
  std::vector<SimTime> times;
  sim.Schedule(10, [&] {
    times.push_back(sim.Now());
    sim.Schedule(10, [&] { times.push_back(sim.Now()); });
  });
  sim.Run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 20}));
}

TEST(SimulationTest, StopHaltsTheLoop) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(1, [&] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(2, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  sim.Run();  // Resumes.
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, CancelledEventsDoNotRun) {
  Simulation sim;
  bool ran = false;
  EventId id = sim.Schedule(5, [&] { ran = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(SimulationTest, EventsExecutedCounts) {
  Simulation sim;
  for (int i = 0; i < 7; ++i) {
    sim.Schedule(i, [] {});
  }
  sim.Run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(SimulationTest, SameSeedIsDeterministic) {
  auto run = [](uint64_t seed) {
    Simulation sim(seed);
    std::vector<uint64_t> draws;
    for (int i = 0; i < 8; ++i) {
      draws.push_back(sim.rng().Next());
    }
    return draws;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(SimulationTest, ZeroDelayEventRunsAtCurrentTime) {
  Simulation sim;
  SimTime when = 1;
  sim.Schedule(0, [&] { when = sim.Now(); });
  sim.Run();
  EXPECT_EQ(when, 0u);
}

TEST(DurationTest, UnitHelpers) {
  EXPECT_EQ(Micros(1), 1000u);
  EXPECT_EQ(Millis(1), 1000u * 1000u);
  EXPECT_EQ(Seconds(1), 1000u * 1000u * 1000u);
  EXPECT_EQ(MicrosF(2.7), 2700u);
  EXPECT_DOUBLE_EQ(ToMicros(2700), 2.7);
  EXPECT_DOUBLE_EQ(ToMillis(Millis(67)), 67.0);
}

TEST(DurationTest, FormatDuration) {
  EXPECT_EQ(FormatDuration(500), "500ns");
  EXPECT_EQ(FormatDuration(MicrosF(2.7)), "2.70us");
  EXPECT_EQ(FormatDuration(Millis(67)), "67.00ms");
  EXPECT_EQ(FormatDuration(Seconds(2)), "2.000s");
}

}  // namespace
}  // namespace taichi::sim
