#include "src/sim/simulation.h"

#include <gtest/gtest.h>

namespace taichi::sim {
namespace {

TEST(SimulationTest, ClockAdvancesWithEvents) {
  Simulation sim;
  SimTime seen = 0;
  sim.Schedule(Micros(5), [&] { seen = sim.Now(); });
  sim.Run();
  EXPECT_EQ(seen, Micros(5));
  EXPECT_EQ(sim.Now(), Micros(5));
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(Micros(1), [&] { ++fired; });
  sim.Schedule(Micros(10), [&] { ++fired; });
  sim.RunUntil(Micros(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), Micros(5));
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, RunForAdvancesRelative) {
  Simulation sim;
  sim.Schedule(Millis(2), [] {});
  sim.RunFor(Millis(1));
  EXPECT_EQ(sim.Now(), Millis(1));
  sim.RunFor(Millis(1));
  EXPECT_EQ(sim.Now(), Millis(2));
}

TEST(SimulationTest, NestedSchedulingWorks) {
  Simulation sim;
  std::vector<SimTime> times;
  sim.Schedule(10, [&] {
    times.push_back(sim.Now());
    sim.Schedule(10, [&] { times.push_back(sim.Now()); });
  });
  sim.Run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 20}));
}

TEST(SimulationTest, StopHaltsTheLoop) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(1, [&] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(2, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  sim.Run();  // Resumes.
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, CancelledEventsDoNotRun) {
  Simulation sim;
  bool ran = false;
  EventId id = sim.Schedule(5, [&] { ran = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(SimulationTest, EventsExecutedCounts) {
  Simulation sim;
  for (int i = 0; i < 7; ++i) {
    sim.Schedule(i, [] {});
  }
  sim.Run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(SimulationTest, SameSeedIsDeterministic) {
  auto run = [](uint64_t seed) {
    Simulation sim(seed);
    std::vector<uint64_t> draws;
    for (int i = 0; i < 8; ++i) {
      draws.push_back(sim.rng().Next());
    }
    return draws;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(SimulationTest, ZeroDelayEventRunsAtCurrentTime) {
  Simulation sim;
  SimTime when = 1;
  sim.Schedule(0, [&] { when = sim.Now(); });
  sim.Run();
  EXPECT_EQ(when, 0u);
}

TEST(SimulationTest, ScheduleRepeatingFiresEveryPeriodUntilCancelled) {
  Simulation sim;
  std::vector<SimTime> fires;
  EventId id = sim.ScheduleRepeating(Micros(10), [&] { fires.push_back(sim.Now()); });
  sim.RunFor(Micros(35));
  EXPECT_EQ(fires, (std::vector<SimTime>{Micros(10), Micros(20), Micros(30)}));
  EXPECT_TRUE(sim.IsPending(id));
  EXPECT_TRUE(sim.Cancel(id));
  sim.RunFor(Micros(100));
  EXPECT_EQ(fires.size(), 3u);  // Dead after Cancel.
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulationTest, ScheduleRepeatingWithFirstDelay) {
  Simulation sim;
  std::vector<SimTime> fires;
  EventId id = sim.ScheduleRepeating(Micros(3), Micros(10), [&] {
    fires.push_back(sim.Now());
  });
  sim.RunFor(Micros(25));
  EXPECT_EQ(fires, (std::vector<SimTime>{Micros(3), Micros(13), Micros(23)}));
  sim.Cancel(id);
}

TEST(SimulationTest, RepeatingEventCanCancelItself) {
  Simulation sim;
  int hits = 0;
  EventId id = kInvalidEventId;
  id = sim.ScheduleRepeating(Micros(1), [&] {
    if (++hits == 3) {
      sim.Cancel(id);
    }
  });
  sim.RunFor(Millis(1));
  EXPECT_EQ(hits, 3);
  EXPECT_FALSE(sim.IsPending(id));
}

TEST(SimulationTest, RepeatingEventCanRescheduleItself) {
  // The arrival-process pattern: a repeating event that re-keys itself with
  // a freshly drawn gap at the end of each callback.
  Simulation sim;
  std::vector<SimTime> fires;
  EventId id = kInvalidEventId;
  Duration gap = Micros(1);
  id = sim.ScheduleRepeating(gap, gap, [&] {
    fires.push_back(sim.Now());
    gap *= 2;
    sim.Reschedule(id, gap);
  });
  sim.RunFor(Micros(16));
  // 1, +2 -> 3, +4 -> 7, +8 -> 15: doubling gaps, one slot, one closure.
  EXPECT_EQ(fires, (std::vector<SimTime>{Micros(1), Micros(3), Micros(7), Micros(15)}));
  sim.Cancel(id);
}

TEST(SimulationTest, RescheduleDefersAPendingEvent) {
  Simulation sim;
  SimTime fired_at = 0;
  EventId id = sim.Schedule(Micros(5), [&] { fired_at = sim.Now(); });
  EXPECT_TRUE(sim.Reschedule(id, Micros(50)));
  sim.Run();
  EXPECT_EQ(fired_at, Micros(50));
  EXPECT_FALSE(sim.Reschedule(id, Micros(1)));  // Already fired.
}

TEST(SimulationTest, AtInThePastDies) {
  Simulation sim;
  sim.Schedule(Micros(10), [] {});
  sim.RunFor(Micros(10));
  ASSERT_EQ(sim.Now(), Micros(10));
  // Scheduling behind the clock is a model bug: TAICHI_ERROR + assert.
  EXPECT_DEATH(sim.At(Micros(5), [] {}), "schedule into the past");
}

TEST(SimulationTest, AtNowIsFine) {
  Simulation sim;
  sim.Schedule(Micros(2), [] {});
  sim.RunFor(Micros(2));
  bool ran = false;
  sim.At(Micros(2), [&] { ran = true; });
  sim.Run();
  EXPECT_TRUE(ran);
}

TEST(SimulationTest, ShrinkEventPoolReleasesBurstMemory) {
  Simulation sim;
  std::vector<EventId> burst;
  for (int i = 0; i < 4096; ++i) {
    burst.push_back(sim.Schedule(Micros(1) + i, [] {}));
  }
  for (EventId id : burst) {
    sim.Cancel(id);
  }
  const size_t before = sim.event_pool_slots();
  sim.ShrinkEventPool();
  EXPECT_LT(sim.event_pool_slots(), before);
  // The queue still works after shrinking.
  bool ran = false;
  sim.Schedule(Micros(1), [&] { ran = true; });
  sim.Run();
  EXPECT_TRUE(ran);
}

TEST(DurationTest, UnitHelpers) {
  EXPECT_EQ(Micros(1), 1000u);
  EXPECT_EQ(Millis(1), 1000u * 1000u);
  EXPECT_EQ(Seconds(1), 1000u * 1000u * 1000u);
  EXPECT_EQ(MicrosF(2.7), 2700u);
  EXPECT_DOUBLE_EQ(ToMicros(2700), 2.7);
  EXPECT_DOUBLE_EQ(ToMillis(Millis(67)), 67.0);
}

TEST(DurationTest, FormatDuration) {
  EXPECT_EQ(FormatDuration(500), "500ns");
  EXPECT_EQ(FormatDuration(MicrosF(2.7)), "2.70us");
  EXPECT_EQ(FormatDuration(Millis(67)), "67.00ms");
  EXPECT_EQ(FormatDuration(Seconds(2)), "2.000s");
}

}  // namespace
}  // namespace taichi::sim
