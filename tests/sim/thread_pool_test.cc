#include "src/sim/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace taichi::sim {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, BarriersBeforeReturning) {
  ThreadPool pool(4);
  // Every fn(i) writes its slot; after ParallelFor returns, all writes must
  // be visible to the caller — that is the epoch-hook contract.
  std::vector<uint64_t> out(512, 0);
  pool.ParallelFor(out.size(), [&](size_t i) { out[i] = i * i; });
  for (size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], i * i);
  }
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1);
  int sum = 0;
  pool.ParallelFor(10, [&](size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPoolTest, ClampsNonPositiveThreadCounts) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.threads(), 1);
  ThreadPool neg(-3);
  EXPECT_EQ(neg.threads(), 1);
}

TEST(ThreadPoolTest, HandlesEmptyAndTinyJobs) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  // The fleet calls ParallelFor once per epoch, thousands of times per run;
  // job-generation bookkeeping must not wedge or drop workers.
  ThreadPool pool(3);
  std::atomic<uint64_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(17, [&](size_t i) { total.fetch_add(i + 1); });
  }
  EXPECT_EQ(total.load(), 200u * (17u * 18u / 2u));
}

TEST(ThreadPoolTest, ParallelResultMatchesSerialResult) {
  // The determinism contract in miniature: independent per-index outputs are
  // identical whatever the thread count.
  auto run = [](int threads) {
    ThreadPool pool(threads);
    std::vector<uint64_t> out(256);
    pool.ParallelFor(out.size(), [&](size_t i) {
      uint64_t x = i + 1;
      for (int k = 0; k < 1000; ++k) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
      }
      out[i] = x;
    });
    return out;
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(ThreadPoolTest, ShardStripesCoverLargeIndexSpacesExactlyOnce) {
  // n far above the thread count: every stripe owner plus the steal path
  // must together claim each index exactly once, including when n is not a
  // multiple of the thread count.
  ThreadPool pool(5);
  for (size_t n : {4u, 5u, 6u, 97u, 4096u}) {
    std::vector<std::atomic<int>> hits(n);
    pool.ParallelFor(n, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, StealingDrainsAnUnbalancedJob) {
  // One stripe carries nearly all the work (index 0 is slow, the rest are
  // instant): the other participants must steal through it rather than idle,
  // and the barrier still holds every write.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(hits.size(), [&](size_t i) {
    if (i == 0) {
      volatile uint64_t x = 1;
      for (int k = 0; k < 2000000; ++k) {
        x = x * 6364136223846793005ULL + 1;
      }
    }
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForBindsAnyCallableThroughFunctionRef) {
  // ParallelFor takes a FunctionRef: mutable lambdas with captures and plain
  // function objects must both bind without copies or allocation.
  ThreadPool pool(2);
  struct Functor {
    std::atomic<uint64_t>* sum;
    void operator()(size_t i) const { sum->fetch_add(i); }
  };
  std::atomic<uint64_t> sum{0};
  Functor f{&sum};
  pool.ParallelFor(100, f);
  EXPECT_EQ(sum.load(), 4950u);
}

}  // namespace
}  // namespace taichi::sim
