#include "src/sim/table.h"

#include <gtest/gtest.h>

namespace taichi::sim {
namespace {

TEST(TableTest, RendersAlignedColumns) {
  Table t({"Mechanism", "Avg (us)"});
  t.AddRow({"Baseline", "30"});
  t.AddRow({"Tai Chi", "30"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("| Mechanism | Avg (us) |"), std::string::npos);
  EXPECT_NE(out.find("| Baseline  | 30       |"), std::string::npos);
}

TEST(TableTest, ShortRowsPadEmptyCells) {
  Table t({"A", "B"});
  t.AddRow({"x"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("| x |   |"), std::string::npos);
}

TEST(TableTest, NumFormatsDigits) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(3.0, 0), "3");
}

TEST(TableTest, NumWithDeltaShowsPercent) {
  EXPECT_EQ(Table::NumWithDelta(99.0, 100.0, 1), "99.0 (-1.00%)");
  EXPECT_EQ(Table::NumWithDelta(102.0, 100.0, 0), "102 (+2.00%)");
  EXPECT_EQ(Table::NumWithDelta(5.0, 0.0, 1), "5.0");
}

TEST(TableTest, HeaderSeparatorPresent) {
  Table t({"h"});
  t.AddRow({"v"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("|---"), std::string::npos);
}

}  // namespace
}  // namespace taichi::sim
