#include "src/sim/random.h"

#include <gtest/gtest.h>

#include <cmath>

namespace taichi::sim {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng r(5);
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = r.UniformInt(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RngTest, UniformIntSingleton) {
  Rng r(5);
  EXPECT_EQ(r.UniformInt(7, 7), 7u);
}

TEST(RngTest, ExponentialMeanConverges) {
  Rng r(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += r.Exponential(50.0);
  }
  EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(RngTest, NormalMoments) {
  Rng r(13);
  double sum = 0;
  double sum_sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double v = r.Normal(10.0, 3.0);
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(RngTest, BoundedParetoStaysInBounds) {
  Rng r(17);
  for (int i = 0; i < 20000; ++i) {
    double v = r.BoundedPareto(1.0, 67.0, 1.2);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 67.0 + 1e-9);
  }
}

TEST(RngTest, BoundedParetoIsHeavyTailedButMostlySmall) {
  // Matches the Fig. 5 shape requirement: most long routines are short
  // (1-5 ms band) but a tail reaches the upper bound region.
  Rng r(19);
  int small = 0;
  int large = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double v = r.BoundedPareto(1.0, 67.0, 1.6);
    if (v <= 5.0) {
      ++small;
    }
    if (v > 30.0) {
      ++large;
    }
  }
  EXPECT_GT(small, n * 0.85);
  EXPECT_GT(large, 10);
}

TEST(RngTest, BernoulliEdges) {
  Rng r(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.Bernoulli(0.0));
    EXPECT_TRUE(r.Bernoulli(1.0));
  }
}

TEST(RngTest, ExpDurationNeverZero) {
  Rng r(29);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(r.ExpDuration(3), 1u);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng b = a.Fork();
  // The fork and parent should not produce identical streams.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, LogNormalMeanRoughlyMatches) {
  Rng r(37);
  double sum = 0;
  const int n = 300000;
  for (int i = 0; i < n; ++i) {
    sum += r.LogNormal(20.0, 0.5);
  }
  EXPECT_NEAR(sum / n, 20.0, 0.5);
}

}  // namespace
}  // namespace taichi::sim
