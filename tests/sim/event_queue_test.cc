#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace taichi::sim {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(30, [&] { order.push_back(3); });
  q.Schedule(10, [&] { order.push_back(1); });
  q.Schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) {
    q.PopNext().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    q.PopNext().fn();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  EventId id = q.Schedule(10, [&] { fired = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelIsIdempotent) {
  EventQueue q;
  EventId id = q.Schedule(10, [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueTest, CancelAfterFireReturnsFalse) {
  EventQueue q;
  EventId id = q.Schedule(10, [] {});
  q.PopNext().fn();
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueTest, CancelInvalidIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(kInvalidEventId));
  EXPECT_FALSE(q.Cancel(12345));
}

TEST(EventQueueTest, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(10, [&] { order.push_back(1); });
  EventId mid = q.Schedule(20, [&] { order.push_back(2); });
  q.Schedule(30, [&] { order.push_back(3); });
  q.Cancel(mid);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) {
    q.PopNext().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  EventId early = q.Schedule(10, [] {});
  q.Schedule(20, [] {});
  q.Cancel(early);
  EXPECT_EQ(q.NextTime(), 20u);
}

TEST(EventQueueTest, IsPendingTracksLifecycle) {
  EventQueue q;
  EventId id = q.Schedule(10, [] {});
  EXPECT_TRUE(q.IsPending(id));
  q.PopNext();
  EXPECT_FALSE(q.IsPending(id));
}

TEST(EventQueueTest, TotalScheduledCounts) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(i, [] {});
  }
  EXPECT_EQ(q.total_scheduled(), 5u);
}

TEST(EventQueueTest, TotalScheduledCountsCancelledAndFired) {
  EventQueue q;
  EventId a = q.Schedule(1, [] {});
  q.Schedule(2, [] {});
  q.Cancel(a);
  q.PopNext();
  // Cancelling and firing never un-count an allocation, and slot reuse must
  // not double-count: the next schedule is event #3.
  EXPECT_EQ(q.total_scheduled(), 2u);
  q.Schedule(3, [] {});
  EXPECT_EQ(q.total_scheduled(), 3u);
}

TEST(EventQueueTest, StaleIdAfterSlotReuseDoesNotTouchNewEvent) {
  EventQueue q;
  EventId old_id = q.Schedule(10, [] {});
  ASSERT_TRUE(q.Cancel(old_id));
  // The freed slot is recycled for the next event; the stale id must not
  // alias it.
  bool fired = false;
  EventId new_id = q.Schedule(20, [&] { fired = true; });
  EXPECT_NE(old_id, new_id);
  EXPECT_FALSE(q.IsPending(old_id));
  EXPECT_TRUE(q.IsPending(new_id));
  EXPECT_FALSE(q.Cancel(old_id));
  ASSERT_EQ(q.size(), 1u);
  q.PopNext().fn();
  EXPECT_TRUE(fired);
}

TEST(EventQueueTest, SlotGenerationSurvivesManyReuses) {
  EventQueue q;
  EventId first = q.Schedule(1, [] {});
  q.Cancel(first);
  // Drive many alloc/free cycles through the same slot; every retired id
  // must stay dead.
  std::vector<EventId> retired{first};
  for (int i = 0; i < 1000; ++i) {
    EventId id = q.Schedule(static_cast<SimTime>(i), [] {});
    EXPECT_TRUE(q.IsPending(id));
    q.Cancel(id);
    retired.push_back(id);
  }
  for (EventId id : retired) {
    EXPECT_FALSE(q.IsPending(id));
    EXPECT_FALSE(q.Cancel(id));
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, FifoOrderAtEqualTimesSurvivesInterleavedCancels) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 16; ++i) {
    ids.push_back(q.Schedule(7, [&order, i] { order.push_back(i); }));
  }
  // Cancel the odd ones; the evens must still fire in insertion order.
  for (int i = 1; i < 16; i += 2) {
    EXPECT_TRUE(q.Cancel(ids[static_cast<size_t>(i)]));
  }
  // Reschedule at the same timestamp: new events sort after all survivors.
  q.Schedule(7, [&order] { order.push_back(100); });
  while (!q.empty()) {
    q.PopNext().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 2, 4, 6, 8, 10, 12, 14, 100}));
}

TEST(EventQueueTest, CancelRescheduleChurnKeepsQueueConsistent) {
  // The idle-poll pattern: standing timers constantly cancelled and pushed
  // out. Sizes and pop order must stay exact through heavy slot recycling.
  EventQueue q;
  std::vector<EventId> ids;
  uint64_t seed = 7;
  SimTime t = 0;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(q.Schedule(++t, [] {}));
  }
  for (int round = 0; round < 5000; ++round) {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    size_t victim = seed % ids.size();
    EXPECT_TRUE(q.Cancel(ids[victim]));
    EXPECT_FALSE(q.IsPending(ids[victim]));
    ids[victim] = q.Schedule(++t, [] {});
    EXPECT_EQ(q.size(), ids.size());
  }
  EXPECT_EQ(q.total_scheduled(), 64u + 5000u);
  SimTime last = 0;
  size_t popped = 0;
  while (!q.empty()) {
    auto fired = q.PopNext();
    EXPECT_GT(fired.when, last);  // All distinct times here.
    last = fired.when;
    ++popped;
  }
  EXPECT_EQ(popped, ids.size());
}

TEST(EventQueueTest, RescheduleMovesEventLater) {
  EventQueue q;
  std::vector<int> order;
  EventId a = q.Schedule(10, [&] { order.push_back(1); });
  q.Schedule(20, [&] { order.push_back(2); });
  EXPECT_TRUE(q.Reschedule(a, 30));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_TRUE(q.IsPending(a));  // Same id stays valid: no generation bump.
  while (!q.empty()) {
    q.PopNext().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(EventQueueTest, RescheduleMovesEventEarlier) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(20, [&] { order.push_back(2); });
  EventId late = q.Schedule(30, [&] { order.push_back(1); });
  EXPECT_TRUE(q.Reschedule(late, 10));
  EXPECT_EQ(q.NextTime(), 10u);
  while (!q.empty()) {
    q.PopNext().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueueTest, RescheduleToEqualTimeOrdersAfterExistingEvents) {
  // The contract that keeps Cancel+Schedule -> Reschedule conversions
  // byte-identical: a re-keyed event gets a fresh seq, so at an equal
  // timestamp it fires after everything already scheduled there — exactly
  // where a newly scheduled replacement would land.
  EventQueue q;
  std::vector<int> order;
  EventId first = q.Schedule(5, [&] { order.push_back(0); });
  for (int i = 1; i <= 3; ++i) {
    q.Schedule(5, [&order, i] { order.push_back(i); });
  }
  EXPECT_TRUE(q.Reschedule(first, 5));
  while (!q.empty()) {
    q.PopNext().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 0}));
}

TEST(EventQueueTest, RescheduleDeadIdReturnsFalse) {
  EventQueue q;
  EventId fired = q.Schedule(1, [] {});
  q.PopNext();
  EXPECT_FALSE(q.Reschedule(fired, 10));
  EventId cancelled = q.Schedule(2, [] {});
  q.Cancel(cancelled);
  EXPECT_FALSE(q.Reschedule(cancelled, 10));
  EXPECT_FALSE(q.Reschedule(kInvalidEventId, 10));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, RepeatingEventFiresAtEveryPeriodWithOneId) {
  EventQueue q;
  int hits = 0;
  EventId id = q.ScheduleRepeating(10, 10, [&] { ++hits; });
  std::vector<SimTime> times;
  for (int i = 0; i < 4; ++i) {
    ASSERT_FALSE(q.empty());
    EventQueue::Fired fired = q.PopNext();
    EXPECT_TRUE(fired.repeating);
    EXPECT_EQ(fired.id, id);
    times.push_back(fired.when);
    fired.fn();
    q.RestoreRepeating(fired.id, std::move(fired.fn));
  }
  EXPECT_EQ(hits, 4);
  EXPECT_EQ(times, (std::vector<SimTime>{10, 20, 30, 40}));
  EXPECT_TRUE(q.IsPending(id));
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, RepeatingReKeySeqIsAssignedAtPop) {
  // The re-key happens at pop, BEFORE the callback body runs: the next
  // firing orders ahead of events the callback schedules at the same time.
  // That matches a loop that re-arms at the top of its callback (the kernel
  // tick re-armed before any preemption scheduling).
  EventQueue q;
  std::vector<int> order;
  EventId rep = q.ScheduleRepeating(10, 10, [&] { order.push_back(0); });
  EventQueue::Fired fired = q.PopNext();  // Fires at 10; re-keyed to 20.
  fired.fn();
  q.Schedule(20, [&] { order.push_back(1); });  // Scheduled "inside" the callback.
  q.RestoreRepeating(fired.id, std::move(fired.fn));
  fired = q.PopNext();
  EXPECT_EQ(fired.when, 20u);
  EXPECT_EQ(fired.id, rep);  // The repeating event's earlier seq wins.
  fired.fn();
  q.Cancel(rep);
  q.PopNext().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 0, 1}));
}

TEST(EventQueueTest, RescheduleAtBottomRestoresSelfRescheduleOrder) {
  // A loop that used to re-arm at the BOTTOM of its callback (arrival
  // processes) keeps its old equal-time order by ending the callback with
  // Reschedule: the fresh seq lands after the callback's own schedules,
  // exactly where the old self-Schedule's seq landed.
  EventQueue q;
  std::vector<int> order;
  EventId rep = q.ScheduleRepeating(10, 10, [&] { order.push_back(0); });
  EventQueue::Fired fired = q.PopNext();  // Fires at 10; re-keyed to 20.
  fired.fn();
  q.Schedule(20, [&] { order.push_back(1); });  // The callback's side effect.
  EXPECT_TRUE(q.Reschedule(rep, 20));           // Bottom re-arm, fresh seq.
  q.RestoreRepeating(fired.id, std::move(fired.fn));
  fired = q.PopNext();
  EXPECT_EQ(fired.when, 20u);
  fired.fn();  // The one-shot now fires first...
  fired = q.PopNext();
  EXPECT_EQ(fired.id, rep);  // ...and the repeating event after it.
  fired.fn();
  q.Cancel(rep);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0}));
}

TEST(EventQueueTest, CancelDuringOwnCallbackEndsRepeatingCycle) {
  EventQueue q;
  int hits = 0;
  EventId id = kInvalidEventId;
  id = q.ScheduleRepeating(5, 5, [&] {
    ++hits;
    if (hits == 2) {
      EXPECT_TRUE(q.Cancel(id));
    }
  });
  for (int rounds = 0; rounds < 10 && !q.empty(); ++rounds) {
    EventQueue::Fired fired = q.PopNext();
    fired.fn();
    q.RestoreRepeating(fired.id, std::move(fired.fn));
  }
  EXPECT_EQ(hits, 2);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.IsPending(id));
}

TEST(EventQueueTest, RescheduleDuringOwnCallbackOverridesPeriod) {
  EventQueue q;
  std::vector<SimTime> fire_times;
  EventId id = kInvalidEventId;
  id = q.ScheduleRepeating(10, 10, [&] {
    // fire_times is recorded before the callback runs, so size()==2 means
    // this is the second firing (at t=20).
    if (fire_times.size() == 2) {
      EXPECT_TRUE(q.Reschedule(id, fire_times.back() + 100));
    }
  });
  for (int i = 0; i < 3; ++i) {
    EventQueue::Fired fired = q.PopNext();
    fire_times.push_back(fired.when);
    fired.fn();
    q.RestoreRepeating(fired.id, std::move(fired.fn));
  }
  q.Cancel(id);
  // Second firing pushed the third out to 20 + 100.
  EXPECT_EQ(fire_times, (std::vector<SimTime>{10, 20, 120}));
}

TEST(EventQueueTest, ShrinkToFitReleasesTrailingSlotsAndKeepsLiveOnes) {
  EventQueue q;
  // A survivor in the low slot range: shrink must not disturb it. (Scheduled
  // first so the burst occupies the trailing slots the trim can release.)
  bool survivor_fired = false;
  EventId survivor = q.Schedule(50, [&] { survivor_fired = true; });
  std::vector<EventId> burst;
  for (int i = 0; i < 2000; ++i) {
    burst.push_back(q.Schedule(static_cast<SimTime>(100 + i), [] {}));
  }
  for (EventId id : burst) {
    EXPECT_TRUE(q.Cancel(id));
  }
  const size_t before = q.slot_count();
  ASSERT_GE(before, 2000u);
  q.ShrinkToFit();
  EXPECT_LT(q.slot_count(), before);
  EXPECT_TRUE(q.IsPending(survivor));
  q.PopNext().fn();
  EXPECT_TRUE(survivor_fired);
}

TEST(EventQueueTest, ShrinkToFitSkipsBusyOrSmallQueues) {
  EventQueue q;
  for (int i = 0; i < 64; ++i) {
    q.Schedule(static_cast<SimTime>(i), [] {});
  }
  const size_t small = q.slot_count();
  q.ShrinkToFit();  // Below the size floor: no-op.
  EXPECT_EQ(q.slot_count(), small);

  for (int i = 64; i < 2000; ++i) {
    q.Schedule(static_cast<SimTime>(i), [] {});
  }
  const size_t busy = q.slot_count();
  q.ShrinkToFit();  // Mostly pending: no-op.
  EXPECT_EQ(q.slot_count(), busy);
}

TEST(EventQueueTest, StaleIdsStayDeadAcrossShrinkAndRegrow) {
  EventQueue q;
  std::vector<EventId> retired;
  for (int i = 0; i < 1500; ++i) {
    EventId id = q.Schedule(static_cast<SimTime>(i), [] {});
    q.Cancel(id);
    retired.push_back(id);
  }
  q.ShrinkToFit();
  // Regrow over the dropped indices: generation floor keeps old ids dead.
  std::vector<EventId> fresh;
  for (int i = 0; i < 1500; ++i) {
    fresh.push_back(q.Schedule(static_cast<SimTime>(i), [] {}));
  }
  for (EventId id : retired) {
    EXPECT_FALSE(q.IsPending(id));
    EXPECT_FALSE(q.Cancel(id));
    EXPECT_FALSE(q.Reschedule(id, 1));
  }
  for (EventId id : fresh) {
    EXPECT_TRUE(q.IsPending(id));
  }
}

TEST(EventQueueTest, AutoShrinkReclaimsBurstHighWaterMark) {
  // Nobody calls ShrinkToFit() here: after a burst drains, the queue's own
  // periodic pop check must return the slot-table memory while a standing
  // repeating timer keeps running.
  EventQueue q;
  bool survivor_fired = false;
  q.Schedule(1, [&] { survivor_fired = true; });  // Slot 0.
  std::vector<EventId> burst;
  for (int i = 0; i < 6000; ++i) {
    burst.push_back(q.Schedule(static_cast<SimTime>(1000000 + i), [] {}));
  }
  // Cancel in reverse so the free-list head lands on the lowest burst slot:
  // the ticker below then reuses slot 1 and the whole tail stays trimmable.
  for (auto it = burst.rbegin(); it != burst.rend(); ++it) {
    EXPECT_TRUE(q.Cancel(*it));
  }
  int ticks = 0;
  EventId ticker = q.ScheduleRepeating(2, 1, [&] { ++ticks; });
  const size_t high_water = q.slot_count();
  ASSERT_GE(high_water, 6000u);

  for (uint32_t i = 0; i <= EventQueue::kAutoShrinkPopInterval; ++i) {
    EventQueue::Fired fired = q.PopNext();
    fired.fn();
    if (fired.repeating) {
      q.RestoreRepeating(fired.id, std::move(fired.fn));
    }
  }
  EXPECT_TRUE(survivor_fired);
  EXPECT_LT(q.slot_count(), high_water);
  EXPECT_LE(q.slot_count(), 2u);
  // The standing timer survived the shrink: same id, still firing.
  EXPECT_TRUE(q.IsPending(ticker));
  EXPECT_EQ(ticks, static_cast<int>(EventQueue::kAutoShrinkPopInterval));
  EventQueue::Fired next = q.PopNext();
  next.fn();
  EXPECT_EQ(ticks, static_cast<int>(EventQueue::kAutoShrinkPopInterval) + 1);
}

TEST(EventQueueTest, MoveOnlyCaptureSchedules) {
  EventQueue q;
  auto owned = std::make_unique<int>(41);
  int got = 0;
  q.Schedule(1, [p = std::move(owned), &got] { got = *p + 1; });
  q.PopNext().fn();
  EXPECT_EQ(got, 42);
}


// ---- Calendar front-end ------------------------------------------------------
//
// Everything below exercises the bucketed calendar that engages above the
// standing-population threshold. The load-bearing contract: pop order is the
// exact (time, seq) order the heap produces — the calendar is invisible to
// every consumer except the profiler.

TEST(CalendarQueueTest, EngagesAtThresholdAndDisengagesWhenDrained) {
  EventQueue q;
  q.set_calendar_engage_threshold(256);
  EXPECT_EQ(q.calendar_engage_threshold(), 256u);
  for (int i = 0; i < 255; ++i) {
    q.Schedule(static_cast<SimTime>(1000 + i), [] {});
  }
  EXPECT_FALSE(q.calendar_engaged());
  q.Schedule(2000, [] {});  // The 256th standing event flips it.
  EXPECT_TRUE(q.calendar_engaged());
  EXPECT_EQ(q.calendar_engages(), 1u);
  // Drain below threshold/4 and let the explicit shrink disengage it.
  while (q.size() > 32) {
    q.PopNext();
  }
  q.ShrinkToFit();
  EXPECT_FALSE(q.calendar_engaged());
  // The survivors still pop in exact order.
  SimTime last = 0;
  while (!q.empty()) {
    EventQueue::Fired fired = q.PopNext();
    EXPECT_GE(fired.when, last);
    last = fired.when;
  }
}

TEST(CalendarQueueTest, ZeroThresholdDisablesAndDisengages) {
  EventQueue q;
  q.set_calendar_engage_threshold(128);
  for (int i = 0; i < 512; ++i) {
    q.Schedule(static_cast<SimTime>(i * 3), [] {});
  }
  ASSERT_TRUE(q.calendar_engaged());
  q.set_calendar_engage_threshold(0);  // Heap-only mode: disengages live.
  EXPECT_FALSE(q.calendar_engaged());
  SimTime last = 0;
  size_t popped = 0;
  while (!q.empty()) {
    EventQueue::Fired fired = q.PopNext();
    EXPECT_GE(fired.when, last);
    last = fired.when;
    ++popped;
  }
  EXPECT_EQ(popped, 512u);
}

TEST(CalendarQueueTest, LoweringThresholdBelowPopulationEngagesImmediately) {
  EventQueue q;
  q.set_calendar_engage_threshold(0);
  for (int i = 0; i < 300; ++i) {
    q.Schedule(static_cast<SimTime>(i), [] {});
  }
  EXPECT_FALSE(q.calendar_engaged());
  q.set_calendar_engage_threshold(100);
  EXPECT_TRUE(q.calendar_engaged());
}

TEST(CalendarQueueTest, EqualTimesKeepInsertionOrderWhileEngaged) {
  EventQueue q;
  q.set_calendar_engage_threshold(64);
  std::vector<int> order;
  for (int i = 0; i < 500; ++i) {
    q.Schedule(7, [&order, i] { order.push_back(i); });
  }
  ASSERT_TRUE(q.calendar_engaged());
  while (!q.empty()) {
    q.PopNext().fn();
  }
  ASSERT_EQ(order.size(), 500u);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(CalendarQueueTest, CancelInsideCursorBucketSkipsTombstones) {
  EventQueue q;
  q.set_calendar_engage_threshold(64);
  std::vector<EventId> ids;
  for (int i = 0; i < 256; ++i) {
    ids.push_back(q.Schedule(static_cast<SimTime>(10 + i % 4), [] {}));
  }
  ASSERT_TRUE(q.calendar_engaged());
  // Pop one so the cursor bucket is sorted, then tombstone entries inside it
  // (and a spread of entries elsewhere).
  EXPECT_EQ(q.PopNext().when, 10u);
  size_t cancelled = 0;
  for (size_t i = 0; i < ids.size(); i += 3) {
    if (q.Cancel(ids[i])) {
      ++cancelled;
    }
  }
  SimTime last = 0;
  size_t popped = 1;
  while (!q.empty()) {
    EventQueue::Fired fired = q.PopNext();
    EXPECT_GE(fired.when, last);
    last = fired.when;
    ++popped;
  }
  EXPECT_EQ(popped, 256u - cancelled);
}

TEST(CalendarQueueTest, RepeatingTimersCycleThroughWheelRotations) {
  // Standing timers whose re-keys land past the current window force
  // repeated RotateWheel calls; the fire sequence must stay exact.
  EventQueue q;
  q.set_calendar_engage_threshold(128);
  constexpr int kTimers = 256;
  constexpr SimTime kPeriod = 1000;
  std::vector<int> hits(kTimers, 0);
  for (int i = 0; i < kTimers; ++i) {
    q.ScheduleRepeating(static_cast<SimTime>(1 + i * kPeriod / kTimers), kPeriod,
                        [&hits, i] { ++hits[static_cast<size_t>(i)]; });
  }
  ASSERT_TRUE(q.calendar_engaged());
  SimTime last = 0;
  for (int pops = 0; pops < kTimers * 50; ++pops) {
    EventQueue::Fired fired = q.PopNext();
    EXPECT_GE(fired.when, last);
    last = fired.when;
    fired.fn();
    q.RestoreRepeating(fired.id, std::move(fired.fn));
  }
  for (int i = 0; i < kTimers; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)], 50) << "timer " << i;
  }
  EXPECT_TRUE(q.calendar_engaged());
  EXPECT_EQ(q.size(), static_cast<size_t>(kTimers));
}

TEST(CalendarQueueTest, FarFutureSentinelDoesNotStarveTheWindow) {
  // One event parked at the far horizon (a deadline sentinel) must not
  // stretch the bucket width so far that the dense population degenerates
  // into one bucket.
  EventQueue q;
  q.set_calendar_engage_threshold(128);
  q.Schedule(static_cast<SimTime>(1) << 60, [] {});  // The sentinel.
  for (int i = 0; i < 1024; ++i) {
    q.Schedule(static_cast<SimTime>(100 + i), [] {});
  }
  ASSERT_TRUE(q.calendar_engaged());
  SimTime last = 0;
  for (int i = 0; i < 1024; ++i) {
    EventQueue::Fired fired = q.PopNext();
    EXPECT_GE(fired.when, last);
    last = fired.when;
  }
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.PopNext().when, static_cast<SimTime>(1) << 60);
}

// Randomized mirror harness: every operation lands on a heap-only queue and
// a calendar-engaging queue; both must pop the identical (when, marker)
// sequence through engage, rotation, and disengage boundaries.
class MirrorHarness {
 public:
  explicit MirrorHarness(size_t threshold) {
    heap_.set_calendar_engage_threshold(0);
    cal_.set_calendar_engage_threshold(threshold);
  }

  void Schedule(SimTime when) {
    const int marker = next_marker_++;
    EventId h = heap_.Schedule(when, [] {});
    EventId c = cal_.Schedule(when, [] {});
    live_.push_back({h, c, marker, false});
  }

  void ScheduleRepeating(SimTime first, Duration period) {
    const int marker = next_marker_++;
    EventId h = heap_.ScheduleRepeating(first, period, [] {});
    EventId c = cal_.ScheduleRepeating(first, period, [] {});
    live_.push_back({h, c, marker, true});
  }

  void CancelAt(size_t idx) {
    Entry& e = live_[idx % live_.size()];
    EXPECT_EQ(heap_.Cancel(e.heap_id), cal_.Cancel(e.cal_id));
    live_[idx % live_.size()] = live_.back();
    live_.pop_back();
  }

  void RescheduleAt(size_t idx, SimTime when) {
    Entry& e = live_[idx % live_.size()];
    EXPECT_EQ(heap_.Reschedule(e.heap_id, when), cal_.Reschedule(e.cal_id, when));
  }

  // Pops one event from both queues and checks they agree on time AND
  // identity (same marker). Returns false when both are empty.
  bool PopOne() {
    EXPECT_EQ(heap_.empty(), cal_.empty());
    EXPECT_EQ(heap_.size(), cal_.size());
    if (heap_.empty()) {
      return false;
    }
    EXPECT_EQ(heap_.NextTime(), cal_.NextTime());
    EventQueue::Fired h = heap_.PopNext();
    EventQueue::Fired c = cal_.PopNext();
    EXPECT_EQ(h.when, c.when);
    EXPECT_EQ(h.repeating, c.repeating);
    const size_t hi = FindLive(h.id, /*heap=*/true);
    const size_t ci = FindLive(c.id, /*heap=*/false);
    EXPECT_EQ(hi, ci) << "queues popped different events at t=" << h.when;
    if (h.repeating) {
      heap_.RestoreRepeating(h.id, std::move(h.fn));
      cal_.RestoreRepeating(c.id, std::move(c.fn));
    } else if (hi < live_.size() && hi == ci) {
      live_[hi] = live_.back();
      live_.pop_back();
    }
    return true;
  }

  void ShrinkBoth() {
    heap_.ShrinkToFit();
    cal_.ShrinkToFit();
  }

  EventQueue& cal() { return cal_; }
  size_t live_count() const { return live_.size(); }

 private:
  struct Entry {
    EventId heap_id;
    EventId cal_id;
    int marker;
    bool repeating;
  };

  size_t FindLive(EventId id, bool heap) const {
    for (size_t i = 0; i < live_.size(); ++i) {
      if ((heap ? live_[i].heap_id : live_[i].cal_id) == id) {
        return i;
      }
    }
    ADD_FAILURE() << "popped id not in live set";
    return static_cast<size_t>(-1);
  }

  EventQueue heap_;
  EventQueue cal_;
  std::vector<Entry> live_;
  int next_marker_ = 0;
};

TEST(CalendarQueueTest, RandomChurnMatchesHeapAcrossEngageAndDisengage) {
  MirrorHarness m(512);
  uint64_t seed = 0x5eed;
  auto rnd = [&seed] {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    return seed >> 16;
  };
  SimTime now = 0;

  // Phase 1: grow well past the threshold with mixed churn. Times cluster
  // near `now` with occasional far outliers, so inserts land in the cursor
  // bucket, later buckets, and the overflow heap.
  for (int i = 0; i < 4000; ++i) {
    const uint64_t r = rnd();
    const SimTime when = now + 1 + (r % 997) * (r % 31 == 0 ? 1000 : 1);
    if (r % 17 == 0 && m.live_count() > 0) {
      m.CancelAt(rnd());
    } else if (r % 23 == 0 && m.live_count() > 0) {
      m.RescheduleAt(rnd(), when);
    } else if (r % 41 == 0) {
      m.ScheduleRepeating(when - now, 1 + r % 300);
    } else {
      m.Schedule(when);
    }
    if (r % 5 == 0) {
      m.PopOne();
    }
  }
  EXPECT_TRUE(m.cal().calendar_engaged());
  EXPECT_GE(m.cal().calendar_engages(), 1u);

  // Phase 2: drain with interleaved churn and periodic shrink checks until
  // both queues are empty. Repeating events are cancelled as encountered so
  // the drain terminates.
  int pops = 0;
  while (m.live_count() > 0 || m.PopOne()) {
    const uint64_t r = rnd();
    if (m.live_count() > 0 && r % 3 == 0) {
      m.CancelAt(rnd());
    }
    if (!m.PopOne()) {
      break;
    }
    if (++pops % 512 == 0) {
      m.ShrinkBoth();
    }
  }
  EXPECT_FALSE(m.cal().calendar_engaged());  // Drained + shrunk: disengaged.
}

TEST(EventQueueTest, StressManyEventsStayOrdered) {
  EventQueue q;
  // Pseudo-random times; verify nondecreasing pop order.
  uint64_t seed = 42;
  for (int i = 0; i < 10000; ++i) {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    q.Schedule(seed % 1000, [] {});
  }
  SimTime last = 0;
  while (!q.empty()) {
    auto fired = q.PopNext();
    EXPECT_GE(fired.when, last);
    last = fired.when;
  }
}

}  // namespace
}  // namespace taichi::sim
