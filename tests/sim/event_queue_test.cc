#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace taichi::sim {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(30, [&] { order.push_back(3); });
  q.Schedule(10, [&] { order.push_back(1); });
  q.Schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) {
    q.PopNext().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    q.PopNext().fn();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  EventId id = q.Schedule(10, [&] { fired = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelIsIdempotent) {
  EventQueue q;
  EventId id = q.Schedule(10, [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueTest, CancelAfterFireReturnsFalse) {
  EventQueue q;
  EventId id = q.Schedule(10, [] {});
  q.PopNext().fn();
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueTest, CancelInvalidIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(kInvalidEventId));
  EXPECT_FALSE(q.Cancel(12345));
}

TEST(EventQueueTest, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(10, [&] { order.push_back(1); });
  EventId mid = q.Schedule(20, [&] { order.push_back(2); });
  q.Schedule(30, [&] { order.push_back(3); });
  q.Cancel(mid);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) {
    q.PopNext().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  EventId early = q.Schedule(10, [] {});
  q.Schedule(20, [] {});
  q.Cancel(early);
  EXPECT_EQ(q.NextTime(), 20u);
}

TEST(EventQueueTest, IsPendingTracksLifecycle) {
  EventQueue q;
  EventId id = q.Schedule(10, [] {});
  EXPECT_TRUE(q.IsPending(id));
  q.PopNext();
  EXPECT_FALSE(q.IsPending(id));
}

TEST(EventQueueTest, TotalScheduledCounts) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(i, [] {});
  }
  EXPECT_EQ(q.total_scheduled(), 5u);
}

TEST(EventQueueTest, StressManyEventsStayOrdered) {
  EventQueue q;
  // Pseudo-random times; verify nondecreasing pop order.
  uint64_t seed = 42;
  for (int i = 0; i < 10000; ++i) {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    q.Schedule(seed % 1000, [] {});
  }
  SimTime last = 0;
  while (!q.empty()) {
    auto fired = q.PopNext();
    EXPECT_GE(fired.when, last);
    last = fired.when;
  }
}

}  // namespace
}  // namespace taichi::sim
