#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace taichi::sim {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(30, [&] { order.push_back(3); });
  q.Schedule(10, [&] { order.push_back(1); });
  q.Schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) {
    q.PopNext().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    q.PopNext().fn();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  EventId id = q.Schedule(10, [&] { fired = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelIsIdempotent) {
  EventQueue q;
  EventId id = q.Schedule(10, [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueTest, CancelAfterFireReturnsFalse) {
  EventQueue q;
  EventId id = q.Schedule(10, [] {});
  q.PopNext().fn();
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueTest, CancelInvalidIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(kInvalidEventId));
  EXPECT_FALSE(q.Cancel(12345));
}

TEST(EventQueueTest, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(10, [&] { order.push_back(1); });
  EventId mid = q.Schedule(20, [&] { order.push_back(2); });
  q.Schedule(30, [&] { order.push_back(3); });
  q.Cancel(mid);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) {
    q.PopNext().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  EventId early = q.Schedule(10, [] {});
  q.Schedule(20, [] {});
  q.Cancel(early);
  EXPECT_EQ(q.NextTime(), 20u);
}

TEST(EventQueueTest, IsPendingTracksLifecycle) {
  EventQueue q;
  EventId id = q.Schedule(10, [] {});
  EXPECT_TRUE(q.IsPending(id));
  q.PopNext();
  EXPECT_FALSE(q.IsPending(id));
}

TEST(EventQueueTest, TotalScheduledCounts) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(i, [] {});
  }
  EXPECT_EQ(q.total_scheduled(), 5u);
}

TEST(EventQueueTest, TotalScheduledCountsCancelledAndFired) {
  EventQueue q;
  EventId a = q.Schedule(1, [] {});
  q.Schedule(2, [] {});
  q.Cancel(a);
  q.PopNext();
  // Cancelling and firing never un-count an allocation, and slot reuse must
  // not double-count: the next schedule is event #3.
  EXPECT_EQ(q.total_scheduled(), 2u);
  q.Schedule(3, [] {});
  EXPECT_EQ(q.total_scheduled(), 3u);
}

TEST(EventQueueTest, StaleIdAfterSlotReuseDoesNotTouchNewEvent) {
  EventQueue q;
  EventId old_id = q.Schedule(10, [] {});
  ASSERT_TRUE(q.Cancel(old_id));
  // The freed slot is recycled for the next event; the stale id must not
  // alias it.
  bool fired = false;
  EventId new_id = q.Schedule(20, [&] { fired = true; });
  EXPECT_NE(old_id, new_id);
  EXPECT_FALSE(q.IsPending(old_id));
  EXPECT_TRUE(q.IsPending(new_id));
  EXPECT_FALSE(q.Cancel(old_id));
  ASSERT_EQ(q.size(), 1u);
  q.PopNext().fn();
  EXPECT_TRUE(fired);
}

TEST(EventQueueTest, SlotGenerationSurvivesManyReuses) {
  EventQueue q;
  EventId first = q.Schedule(1, [] {});
  q.Cancel(first);
  // Drive many alloc/free cycles through the same slot; every retired id
  // must stay dead.
  std::vector<EventId> retired{first};
  for (int i = 0; i < 1000; ++i) {
    EventId id = q.Schedule(static_cast<SimTime>(i), [] {});
    EXPECT_TRUE(q.IsPending(id));
    q.Cancel(id);
    retired.push_back(id);
  }
  for (EventId id : retired) {
    EXPECT_FALSE(q.IsPending(id));
    EXPECT_FALSE(q.Cancel(id));
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, FifoOrderAtEqualTimesSurvivesInterleavedCancels) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 16; ++i) {
    ids.push_back(q.Schedule(7, [&order, i] { order.push_back(i); }));
  }
  // Cancel the odd ones; the evens must still fire in insertion order.
  for (int i = 1; i < 16; i += 2) {
    EXPECT_TRUE(q.Cancel(ids[static_cast<size_t>(i)]));
  }
  // Reschedule at the same timestamp: new events sort after all survivors.
  q.Schedule(7, [&order] { order.push_back(100); });
  while (!q.empty()) {
    q.PopNext().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 2, 4, 6, 8, 10, 12, 14, 100}));
}

TEST(EventQueueTest, CancelRescheduleChurnKeepsQueueConsistent) {
  // The idle-poll pattern: standing timers constantly cancelled and pushed
  // out. Sizes and pop order must stay exact through heavy slot recycling.
  EventQueue q;
  std::vector<EventId> ids;
  uint64_t seed = 7;
  SimTime t = 0;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(q.Schedule(++t, [] {}));
  }
  for (int round = 0; round < 5000; ++round) {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    size_t victim = seed % ids.size();
    EXPECT_TRUE(q.Cancel(ids[victim]));
    EXPECT_FALSE(q.IsPending(ids[victim]));
    ids[victim] = q.Schedule(++t, [] {});
    EXPECT_EQ(q.size(), ids.size());
  }
  EXPECT_EQ(q.total_scheduled(), 64u + 5000u);
  SimTime last = 0;
  size_t popped = 0;
  while (!q.empty()) {
    auto fired = q.PopNext();
    EXPECT_GT(fired.when, last);  // All distinct times here.
    last = fired.when;
    ++popped;
  }
  EXPECT_EQ(popped, ids.size());
}

TEST(EventQueueTest, StressManyEventsStayOrdered) {
  EventQueue q;
  // Pseudo-random times; verify nondecreasing pop order.
  uint64_t seed = 42;
  for (int i = 0; i < 10000; ++i) {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    q.Schedule(seed % 1000, [] {});
  }
  SimTime last = 0;
  while (!q.empty()) {
    auto fired = q.PopNext();
    EXPECT_GE(fired.when, last);
    last = fired.when;
  }
}

}  // namespace
}  // namespace taichi::sim
