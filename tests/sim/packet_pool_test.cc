#include "src/sim/packet_pool.h"

#include <gtest/gtest.h>

#include <vector>

namespace taichi::sim {
namespace {

hw::IoPacket Pkt(uint64_t id) {
  hw::IoPacket p;
  p.id = id;
  return p;
}

TEST(PacketPoolTest, AllocStoresAndGetReturnsPacket) {
  PacketPool pool(4);
  PacketHandle h = pool.Alloc(Pkt(7));
  ASSERT_NE(h, kInvalidPacketHandle);
  EXPECT_EQ(pool.Get(h).id, 7u);
  EXPECT_EQ(pool.in_use(), 1u);
  pool.Free(h);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(PacketPoolTest, RecycleBumpsGeneration) {
  PacketPool pool(2);
  PacketHandle first = pool.Alloc(Pkt(1));
  const uint32_t idx = PacketPool::IndexOf(first);
  const uint32_t gen = PacketPool::GenerationOf(first);
  pool.Free(first);
  // LIFO free-list: the same slot comes straight back, one generation later.
  PacketHandle second = pool.Alloc(Pkt(2));
  EXPECT_EQ(PacketPool::IndexOf(second), idx);
  EXPECT_EQ(PacketPool::GenerationOf(second), (gen + 1) & PacketPool::kGenerationMask);
  EXPECT_NE(first, second);
  EXPECT_EQ(pool.Get(second).id, 2u);
}

TEST(PacketPoolTest, ExhaustionReturnsSentinelAndCounts) {
  PacketPool pool(2);
  PacketHandle a = pool.Alloc(Pkt(1));
  PacketHandle b = pool.Alloc(Pkt(2));
  ASSERT_NE(a, kInvalidPacketHandle);
  ASSERT_NE(b, kInvalidPacketHandle);
  EXPECT_EQ(pool.Alloc(Pkt(3)), kInvalidPacketHandle);
  EXPECT_EQ(pool.Alloc(Pkt(4)), kInvalidPacketHandle);
  EXPECT_EQ(pool.exhausted(), 2u);
  EXPECT_EQ(pool.in_use(), 2u);
  // Freeing makes the slot allocatable again.
  pool.Free(a);
  EXPECT_NE(pool.Alloc(Pkt(5)), kInvalidPacketHandle);
  EXPECT_EQ(pool.exhausted(), 2u);
}

TEST(PacketPoolTest, ManyRecyclesNeverYieldSentinel) {
  // Drive one slot through every generation value twice: the bump must skip
  // the pattern that would collide with kInvalidPacketHandle.
  PacketPool pool(1);
  for (uint32_t i = 0; i < 2 * (PacketPool::kGenerationMask + 1); ++i) {
    PacketHandle h = pool.Alloc(Pkt(i));
    ASSERT_NE(h, kInvalidPacketHandle);
    EXPECT_EQ(pool.Get(h).id, i);
    pool.Free(h);
  }
}

TEST(PacketPoolDeathTest, StaleHandleGetDies) {
  // Use-after-free must fail loudly, not read the slot's next tenant.
  PacketPool pool(4);
  PacketHandle h = pool.Alloc(Pkt(1));
  pool.Free(h);
  PacketHandle reused = pool.Alloc(Pkt(2));
  ASSERT_EQ(PacketPool::IndexOf(reused), PacketPool::IndexOf(h));
  EXPECT_DEATH({ (void)pool.Get(h); }, "stale");
}

TEST(PacketPoolDeathTest,SentinelGetDies) {
  PacketPool pool(4);
  EXPECT_DEATH({ (void)pool.Get(kInvalidPacketHandle); }, "stale");
}

TEST(PacketPoolDeathTest,DoubleFreeDies) {
  PacketPool pool(4);
  PacketHandle h = pool.Alloc(Pkt(1));
  pool.Free(h);
  EXPECT_DEATH({ pool.Free(h); }, "stale");
}

TEST(PacketPoolTest, DeterministicHandleSequence) {
  // Two pools walked through the same alloc/free script hand out identical
  // handles — the property that keeps serial and parallel fleet runs
  // byte-identical (each node owns its pool, so per-node histories match).
  auto script = [](PacketPool& pool) {
    std::vector<PacketHandle> trace;
    std::vector<PacketHandle> live;
    for (uint64_t round = 0; round < 50; ++round) {
      for (uint64_t i = 0; i < 6; ++i) {
        PacketHandle h = pool.Alloc(Pkt(round * 6 + i));
        trace.push_back(h);
        if (h != kInvalidPacketHandle) live.push_back(h);
      }
      // Free every other live handle, oldest first.
      std::vector<PacketHandle> keep;
      for (size_t i = 0; i < live.size(); ++i) {
        if (i % 2 == 0) {
          pool.Free(live[i]);
        } else {
          keep.push_back(live[i]);
        }
      }
      live.swap(keep);
    }
    return trace;
  };
  PacketPool a(16);
  PacketPool b(16);
  EXPECT_EQ(script(a), script(b));
}

TEST(PacketPoolTest, CapacityClampedToMax) {
  PacketPool pool(0);  // Degenerate request still yields a usable pool.
  EXPECT_GE(pool.capacity(), 1u);
  PacketHandle h = pool.Alloc(Pkt(1));
  EXPECT_NE(h, kInvalidPacketHandle);
}

}  // namespace
}  // namespace taichi::sim
