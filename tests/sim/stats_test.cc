#include "src/sim/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace taichi::sim {
namespace {

TEST(SummaryTest, BasicMoments) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
}

TEST(SummaryTest, MdevMatchesPingDefinition) {
  Summary s;
  for (double v : {10.0, 20.0}) {
    s.Add(v);
  }
  // Mean 15, |10-15| + |20-15| = 10, / 2 = 5.
  EXPECT_DOUBLE_EQ(s.mdev(), 5.0);
}

TEST(SummaryTest, StddevSample) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
}

TEST(SummaryTest, StddevIsStableWhenMeanDwarfsSpread) {
  // Regression: the sum-of-squares formula cancels catastrophically here —
  // with samples 1e9 + {0,1,2}, sum_sq - sum^2/n loses all significant
  // digits in double precision and the old code returned 0 (or garbage).
  // Welford's update keeps the exact answer, stddev({0,1,2}) = 1.
  Summary s;
  for (double v : {1e9, 1e9 + 1.0, 1e9 + 2.0}) {
    s.Add(v);
  }
  EXPECT_NEAR(s.stddev(), 1.0, 1e-6);
  // mdev has always been computed directly; the two must now agree in scale.
  EXPECT_NEAR(s.mdev(), 2.0 / 3.0, 1e-6);
}

TEST(SummaryTest, StddevMatchesDirectComputation) {
  Summary s;
  uint64_t seed = 9;
  double direct_sum = 0;
  std::vector<double> vals;
  for (int i = 0; i < 1000; ++i) {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    double v = 50.0 + static_cast<double>(seed % 1000) / 100.0;
    vals.push_back(v);
    direct_sum += v;
    s.Add(v);
  }
  const double mean = direct_sum / static_cast<double>(vals.size());
  double acc = 0;
  for (double v : vals) {
    acc += (v - mean) * (v - mean);
  }
  const double direct = std::sqrt(acc / static_cast<double>(vals.size() - 1));
  EXPECT_NEAR(s.stddev(), direct, 1e-9);
}

TEST(SummaryTest, SortedSamplesSharedWithPercentileCache) {
  Summary s;
  for (double v : {3.0, 1.0, 2.0}) {
    s.Add(v);
  }
  const std::vector<double>& sorted = s.SortedSamples();
  EXPECT_EQ(sorted, (std::vector<double>{1.0, 2.0, 3.0}));
  // Adding invalidates and rebuilds.
  s.Add(0.5);
  EXPECT_DOUBLE_EQ(s.SortedSamples().front(), 0.5);
}

TEST(SummaryTest, PercentileExactOrderStatistics) {
  Summary s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(i);
  }
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
  EXPECT_NEAR(s.Percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.Percentile(99), 99.01, 0.01);
}

TEST(SummaryTest, PercentileSingleSample) {
  Summary s;
  s.Add(42.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(s.Percentile(99.9), 42.0);
}

TEST(SummaryTest, AddAfterPercentileInvalidatesCache) {
  Summary s;
  s.Add(1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 1.0);
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 10.0);
}

TEST(SummaryTest, ClearResets) {
  Summary s;
  s.Add(5.0);
  s.Clear();
  EXPECT_TRUE(s.empty());
  s.Add(7.0);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
}

TEST(HistogramTest, BinningAndEdges) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-1.0);   // Underflow.
  h.Add(0.0);    // Bin 0.
  h.Add(9.999);  // Bin 9.
  h.Add(10.0);   // Overflow (hi is exclusive).
  h.Add(5.5);    // Bin 5.
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(5), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(5), 6.0);
}

TEST(CdfBuilderTest, FractionBelow) {
  CdfBuilder cdf;
  for (int i = 1; i <= 100; ++i) {
    cdf.Add(i);
  }
  EXPECT_DOUBLE_EQ(cdf.FractionBelow(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.FractionBelow(50), 0.5);
  EXPECT_DOUBLE_EQ(cdf.FractionBelow(1000), 1.0);
}

TEST(CdfBuilderTest, FractionBelowIsInclusiveAndHandlesDuplicates) {
  // x == a sample value counts that sample (<=), including all duplicates —
  // the binary-search rewrite must preserve the old counting semantics.
  CdfBuilder cdf;
  for (double v : {1.0, 2.0, 2.0, 2.0, 3.0}) {
    cdf.Add(v);
  }
  EXPECT_DOUBLE_EQ(cdf.FractionBelow(2.0), 0.8);
  EXPECT_DOUBLE_EQ(cdf.FractionBelow(1.999), 0.2);
  EXPECT_DOUBLE_EQ(cdf.FractionBelow(1.0), 0.2);
  EXPECT_DOUBLE_EQ(cdf.FractionBelow(0.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.FractionBelow(3.0), 1.0);
  // Queries interleaved with Adds see the refreshed sorted cache.
  cdf.Add(0.5);
  EXPECT_DOUBLE_EQ(cdf.FractionBelow(0.5), 1.0 / 6.0);
}

TEST(CdfBuilderTest, QuantileInverse) {
  CdfBuilder cdf;
  for (int i = 1; i <= 1000; ++i) {
    cdf.Add(i);
  }
  EXPECT_NEAR(cdf.Quantile(0.9968), 997.0, 1.5);
}

TEST(CounterTest, IncAndReset) {
  Counter c;
  c.Inc();
  c.Inc(4);
  EXPECT_EQ(c.value(), 5u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

}  // namespace
}  // namespace taichi::sim
