#include "src/sim/stats.h"

#include <gtest/gtest.h>

namespace taichi::sim {
namespace {

TEST(SummaryTest, BasicMoments) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
}

TEST(SummaryTest, MdevMatchesPingDefinition) {
  Summary s;
  for (double v : {10.0, 20.0}) {
    s.Add(v);
  }
  // Mean 15, |10-15| + |20-15| = 10, / 2 = 5.
  EXPECT_DOUBLE_EQ(s.mdev(), 5.0);
}

TEST(SummaryTest, StddevSample) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
}

TEST(SummaryTest, PercentileExactOrderStatistics) {
  Summary s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(i);
  }
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
  EXPECT_NEAR(s.Percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.Percentile(99), 99.01, 0.01);
}

TEST(SummaryTest, PercentileSingleSample) {
  Summary s;
  s.Add(42.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(s.Percentile(99.9), 42.0);
}

TEST(SummaryTest, AddAfterPercentileInvalidatesCache) {
  Summary s;
  s.Add(1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 1.0);
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 10.0);
}

TEST(SummaryTest, ClearResets) {
  Summary s;
  s.Add(5.0);
  s.Clear();
  EXPECT_TRUE(s.empty());
  s.Add(7.0);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
}

TEST(HistogramTest, BinningAndEdges) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-1.0);   // Underflow.
  h.Add(0.0);    // Bin 0.
  h.Add(9.999);  // Bin 9.
  h.Add(10.0);   // Overflow (hi is exclusive).
  h.Add(5.5);    // Bin 5.
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(5), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(5), 6.0);
}

TEST(CdfBuilderTest, FractionBelow) {
  CdfBuilder cdf;
  for (int i = 1; i <= 100; ++i) {
    cdf.Add(i);
  }
  EXPECT_DOUBLE_EQ(cdf.FractionBelow(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.FractionBelow(50), 0.5);
  EXPECT_DOUBLE_EQ(cdf.FractionBelow(1000), 1.0);
}

TEST(CdfBuilderTest, QuantileInverse) {
  CdfBuilder cdf;
  for (int i = 1; i <= 1000; ++i) {
    cdf.Add(i);
  }
  EXPECT_NEAR(cdf.Quantile(0.9968), 997.0, 1.5);
}

TEST(CounterTest, IncAndReset) {
  Counter c;
  c.Inc();
  c.Inc(4);
  EXPECT_EQ(c.value(), 5u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

}  // namespace
}  // namespace taichi::sim
