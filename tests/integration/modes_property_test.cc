// Mode-parameterized properties: every scheduling mode must complete
// canonical workloads, conserve CPU time, and be bit-deterministic.
#include <gtest/gtest.h>

#include <memory>

#include "src/exp/runners.h"
#include "src/exp/testbed.h"

namespace taichi::exp {
namespace {

class ModeTest : public ::testing::TestWithParam<Mode> {
 protected:
  std::unique_ptr<Testbed> Bed(uint64_t seed = 17) {
    TestbedConfig cfg;
    cfg.mode = GetParam();
    cfg.seed = seed;
    return std::make_unique<Testbed>(cfg);
  }
};

TEST_P(ModeTest, PingCompletesWithSaneRtt) {
  auto bed = Bed();
  bed->SpawnBackgroundCp();
  bed->sim().RunFor(sim::Millis(2));
  PingRunner ping(bed.get());
  sim::Summary rtt = ping.Run(100, sim::Millis(1));
  ASSERT_EQ(rtt.count(), 100u);
  EXPECT_GT(rtt.min(), 15.0);
  EXPECT_LT(rtt.mean(), 20000.0);  // Even naive co-scheduling stays finite.
}

TEST_P(ModeTest, RrProducesTransactions) {
  auto bed = Bed();
  RrConfig rcfg;
  rcfg.connections = 16;
  RrRunner rr(bed.get(), rcfg);
  RrResult r = rr.Run(sim::Millis(40), sim::Millis(10));
  EXPECT_GT(r.txn_per_sec, 1000.0);
  EXPECT_GT(r.txn_latency_us.count(), 0u);
}

TEST_P(ModeTest, FioProducesIops) {
  auto bed = Bed();
  FioRunner fio(bed.get(), FioConfig{});
  FioResult r = fio.Run(sim::Millis(40), sim::Millis(10));
  EXPECT_GT(r.iops, 10000.0);
}

TEST_P(ModeTest, CpuAccountingConserved) {
  auto bed = Bed();
  bed->SpawnBackgroundCp();
  bed->StartBackgroundBurstyLoad(0.2, 512);
  // Baseline snapshot: accounting accumulates since CPU online, which
  // predates this window (e.g. vCPU bring-up in the constructor).
  std::vector<os::CpuAccounting> before;
  for (os::CpuId c = 0; c < bed->kernel().num_cpus(); ++c) {
    before.push_back(bed->kernel().GetAccounting(c));
  }
  sim::SimTime t0 = bed->sim().Now();
  bed->sim().RunFor(sim::Millis(200));
  sim::Duration elapsed = bed->sim().Now() - t0;
  for (os::CpuId c = 0; c < bed->kernel().num_cpus(); ++c) {
    if (bed->kernel().cpu_kind(c) != os::CpuKind::kPhysical) {
      continue;  // vCPU accounting only covers backed intervals.
    }
    os::CpuAccounting acct = bed->kernel().GetAccounting(c);
    sim::Duration total = acct.busy + acct.idle + acct.guest_lent -
                          (before[c].busy + before[c].idle + before[c].guest_lent);
    EXPECT_EQ(total, elapsed) << "cpu " << c;
  }
}

TEST_P(ModeTest, SameSeedIsDeterministic) {
  auto run = [this] {
    auto bed = Bed(99);
    bed->SpawnBackgroundCp();
    RrConfig rcfg;
    rcfg.connections = 8;
    RrRunner rr(bed.get(), rcfg);
    RrResult r = rr.Run(sim::Millis(30), sim::Millis(5));
    return std::make_tuple(r.txn_per_sec, bed->sim().events_executed(),
                           bed->kernel().context_switches());
  };
  EXPECT_EQ(run(), run());
}

TEST_P(ModeTest, SynthCpAlwaysCompletes) {
  auto bed = Bed();
  SynthCpResult r = RunSynthCp(bed.get(), 8, 0.2);
  EXPECT_EQ(r.exec_time_ms.count(), 8u);
  EXPECT_GT(r.exec_time_ms.min(), 49.0);  // Demand floor: 50 ms each.
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ModeTest,
    ::testing::Values(Mode::kBaseline, Mode::kNaiveCosched, Mode::kTaiChi,
                      Mode::kTaiChiNoHwProbe, Mode::kTaiChiVdp, Mode::kType2),
    [](const ::testing::TestParamInfo<Mode>& param_info) {
      std::string name = ToString(param_info.param);
      for (char& ch : name) {
        if (ch == '-') {
          ch = '_';
        }
      }
      return name;
    });

}  // namespace
}  // namespace taichi::exp
