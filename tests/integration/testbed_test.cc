// End-to-end integration: the full SmartNIC stack per scheduling mode.
#include <gtest/gtest.h>

#include <memory>

#include "src/exp/runners.h"
#include "src/exp/testbed.h"

namespace taichi::exp {
namespace {

TestbedConfig BaseConfig(Mode mode, uint64_t seed = 42) {
  TestbedConfig cfg;
  cfg.mode = mode;
  cfg.seed = seed;
  return cfg;
}

TEST(TestbedTest, TopologyMatchesTable4) {
  Testbed bed(BaseConfig(Mode::kBaseline));
  EXPECT_EQ(bed.kernel().num_cpus(), 12);
  EXPECT_EQ(bed.active_dp_cpus().size(), 8u);
  EXPECT_EQ(bed.cp_pcpu_set().count(), 4);
  EXPECT_EQ(bed.cp_task_cpus().count(), 4);  // Static partition.
}

TEST(TestbedTest, TaiChiAddsVcpusToControlPlane) {
  Testbed bed(BaseConfig(Mode::kTaiChi));
  ASSERT_NE(bed.taichi(), nullptr);
  // 8 vCPUs + 4 CP pCPUs.
  EXPECT_EQ(bed.cp_task_cpus().count(), 12);
  // All vCPUs online after bring-up.
  for (const auto& v : bed.taichi()->pool().vcpus()) {
    EXPECT_TRUE(bed.kernel().cpu_online(v.cpu));
  }
}

TEST(TestbedTest, Type2StealsDataPlaneCpus) {
  Testbed bed(BaseConfig(Mode::kType2));
  EXPECT_EQ(bed.active_dp_cpus().size(), 6u);  // 8 - 2 emulation CPUs.
}

TEST(TestbedTest, BaselinePingRttLandsNearTable5) {
  Testbed bed(BaseConfig(Mode::kBaseline));
  PingRunner ping(&bed);
  sim::Summary rtt = ping.Run(200, sim::Millis(1));
  ASSERT_EQ(rtt.count(), 200u);
  // Table 5 baseline: min 26, avg 30, max 38 us. Allow generous bands.
  EXPECT_GT(rtt.min(), 20.0);
  EXPECT_LT(rtt.min(), 32.0);
  EXPECT_GT(rtt.mean(), 24.0);
  EXPECT_LT(rtt.mean(), 40.0);
  EXPECT_LT(rtt.max(), 50.0);
}

TEST(TestbedTest, TaiChiStealsIdleCyclesForSynthCp) {
  // With 30% DP utilization, Tai Chi must finish 16 concurrent 50 ms tasks
  // substantially faster than the 4-CPU static baseline.
  auto run = [](Mode mode) {
    Testbed bed(BaseConfig(mode));
    return RunSynthCp(&bed, /*concurrency=*/16, /*dp_utilization=*/0.3);
  };
  SynthCpResult base = run(Mode::kBaseline);
  SynthCpResult taichi = run(Mode::kTaiChi);
  ASSERT_EQ(base.exec_time_ms.count(), 16u);
  ASSERT_EQ(taichi.exec_time_ms.count(), 16u);
  EXPECT_LT(taichi.exec_time_ms.mean(), base.exec_time_ms.mean() * 0.7);
}

TEST(TestbedTest, TaiChiKeepsPingRttNearBaseline) {
  // Sustained CP pressure so vCPUs regularly occupy the DP CPUs (the
  // regime where the HW probe matters, §6.4).
  auto run = [](Mode mode) {
    TestbedConfig cfg = BaseConfig(mode);
    cfg.monitors.count = 12;
    cfg.monitors.period_mean = sim::Micros(300);
    cfg.monitors.user_work_mean = sim::Micros(60);
    Testbed bed(cfg);
    bed.SpawnBackgroundCp();
    bed.sim().RunFor(sim::Millis(5));
    PingRunner ping(&bed);
    return ping.Run(300, sim::Millis(1));
  };
  sim::Summary base = run(Mode::kBaseline);
  sim::Summary taichi = run(Mode::kTaiChi);
  sim::Summary no_probe = run(Mode::kTaiChiNoHwProbe);
  // With the HW probe, Tai Chi stays within a few percent of baseline.
  EXPECT_LT(taichi.mean(), base.mean() * 1.10);
  EXPECT_LT(taichi.max(), base.max() * 1.3);
  // Without it, vCPU residency inflates the tail dramatically (Table 5).
  EXPECT_GT(no_probe.max(), taichi.max() * 1.5);
  EXPECT_GT(no_probe.mean(), taichi.mean() + 1.0);
}

TEST(TestbedTest, FioClosedLoopProducesIops) {
  Testbed bed(BaseConfig(Mode::kBaseline));
  FioRunner fio(&bed, FioConfig{});
  FioResult result = fio.Run(sim::Millis(100), sim::Millis(20));
  EXPECT_GT(result.iops, 50000.0);
  EXPECT_GT(result.io_latency_us.mean(), 70.0);  // At least the backend.
}

TEST(TestbedTest, StreamSaturatesDataPlane) {
  Testbed bed(BaseConfig(Mode::kBaseline));
  StreamConfig scfg;
  scfg.per_cpu_offered_pps = 2.0e6;  // Well above per-CPU capacity.
  StreamRunner stream(&bed, scfg);
  StreamResult result = stream.Run(sim::Millis(50), sim::Millis(20));
  // Per-CPU capacity is roughly 1 / (0.9us + 1400B * 0.05ns) ~= 1.03 Mpps.
  double per_cpu = result.delivered_pps / 8.0;
  EXPECT_GT(per_cpu, 0.7e6);
  EXPECT_LT(per_cpu, 1.3e6);
}

TEST(TestbedTest, RrClosedLoopCountsTransactions) {
  Testbed bed(BaseConfig(Mode::kBaseline));
  RrConfig rcfg;
  rcfg.connections = 32;
  RrRunner rr(&bed, rcfg);
  RrResult result = rr.Run(sim::Millis(100), sim::Millis(20));
  EXPECT_GT(result.txn_per_sec, 100000.0);
  EXPECT_NEAR(result.rx_pps, result.tx_pps, result.rx_pps * 0.05);
}

TEST(TestbedTest, VmStartupStormCompletes) {
  Testbed bed(BaseConfig(Mode::kBaseline));
  VmStartupResult result = RunVmStartupStorm(&bed, /*num_vms=*/20,
                                             /*arrival_rate_per_sec=*/200,
                                             /*dp_utilization=*/0.2);
  ASSERT_EQ(result.startup_ms.count(), 20u);
  EXPECT_GT(result.startup_ms.mean(), 1.0);
}

TEST(TestbedTest, EnableTaiChiDuringDrainDies) {
  // Re-enabling while the previous disable is still draining would install
  // a second framework on vCPUs the drain poll is about to destroy.
  Testbed bed(BaseConfig(Mode::kBaseline));
  bed.EnableTaiChi();
  bed.sim().RunFor(sim::Millis(5));  // vCPU bring-up completes.
  ASSERT_TRUE(bed.taichi_enabled());
  bed.DisableTaiChi();
  ASSERT_TRUE(bed.taichi_draining());
  EXPECT_DEATH(bed.EnableTaiChi(), "still draining");
}

TEST(TestbedTest, SetDpBoostRoundTripNarrowsAndWidensCpAffinity) {
  Testbed bed(BaseConfig(Mode::kBaseline));
  bed.EnableTaiChi();
  bed.sim().RunFor(sim::Millis(5));
  ASSERT_TRUE(bed.taichi_enabled());
  const int widened = bed.cp_task_cpus().count();
  EXPECT_GT(widened, bed.cp_pcpu_set().count());

  // Boost on: donations pause, CP falls back to the static partition.
  bed.SetDpBoost(true);
  EXPECT_TRUE(bed.dp_boost());
  EXPECT_EQ(bed.cp_task_cpus().count(), bed.cp_pcpu_set().count());

  // Boost off: the probes re-attach and CP affinity widens again.
  bed.SetDpBoost(false);
  EXPECT_FALSE(bed.dp_boost());
  EXPECT_EQ(bed.cp_task_cpus().count(), widened);

  // A disable supersedes any boost.
  bed.SetDpBoost(true);
  ASSERT_TRUE(bed.dp_boost());
  bed.DisableTaiChi();
  EXPECT_FALSE(bed.dp_boost());
  bed.sim().RunFor(sim::Millis(5));  // The drain completes.
  EXPECT_FALSE(bed.taichi_draining());
  EXPECT_FALSE(bed.taichi_enabled());
}

}  // namespace
}  // namespace taichi::exp
