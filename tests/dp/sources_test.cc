#include "src/dp/sources.h"

#include <gtest/gtest.h>

#include <array>

#include "src/sim/packet_pool.h"

namespace taichi::dp {
namespace {

class SourcesTest : public ::testing::Test {
 protected:
  SourcesTest() : accel_(&sim_, {}) {
    accel_.set_pool(&pool_);
    queue_ = accel_.AddQueue(0);
  }

  sim::Simulation sim_;
  sim::PacketPool pool_{8192};
  hw::Accelerator accel_;
  uint32_t queue_ = 0;
};

TEST_F(SourcesTest, PoissonRateConverges) {
  OpenLoopConfig cfg;
  cfg.rate_pps = 100000;
  OpenLoopSource src(&sim_, &accel_, queue_, cfg, 1);
  src.Start();
  sim_.RunFor(sim::Seconds(1));
  EXPECT_NEAR(static_cast<double>(src.injected()), 100000.0, 3000.0);
}

TEST_F(SourcesTest, ConstantRateIsExact) {
  OpenLoopConfig cfg;
  cfg.rate_pps = 10000;
  cfg.process = OpenLoopConfig::Process::kConstant;
  OpenLoopSource src(&sim_, &accel_, queue_, cfg, 1);
  src.Start();
  sim_.RunFor(sim::Seconds(1));
  EXPECT_NEAR(static_cast<double>(src.injected()), 10000.0, 2.0);
}

TEST_F(SourcesTest, MmppAveragesBetweenStates) {
  OpenLoopConfig cfg;
  cfg.rate_pps = 10000;
  cfg.process = OpenLoopConfig::Process::kMmpp;
  cfg.burst_multiplier = 10.0;
  cfg.burst_mean = sim::Millis(5);
  cfg.calm_mean = sim::Millis(5);
  OpenLoopSource src(&sim_, &accel_, queue_, cfg, 1);
  src.Start();
  sim_.RunFor(sim::Seconds(2));
  double rate = static_cast<double>(src.injected()) / 2.0;
  // Expected mean: 50/50 duty between 10k and 100k = 55k pps.
  EXPECT_GT(rate, 35000.0);
  EXPECT_LT(rate, 75000.0);
}

TEST_F(SourcesTest, StopHaltsInjection) {
  OpenLoopConfig cfg;
  cfg.rate_pps = 100000;
  OpenLoopSource src(&sim_, &accel_, queue_, cfg, 1);
  src.Start();
  sim_.RunFor(sim::Millis(100));
  src.Stop();
  uint64_t at_stop = src.injected();
  sim_.RunFor(sim::Millis(100));
  EXPECT_EQ(src.injected(), at_stop);
}

TEST_F(SourcesTest, DeliveryStatsTrackLatency) {
  OpenLoopConfig cfg;
  OpenLoopSource src(&sim_, &accel_, queue_, cfg, 1);
  hw::IoPacket pkt;
  pkt.created = 0;
  sim_.RunFor(sim::Micros(25));
  src.OnDelivered(pkt, sim_.Now());
  EXPECT_EQ(src.delivered(), 1u);
  EXPECT_NEAR(src.latency_us().mean(), 25.0, 0.01);
}

TEST_F(SourcesTest, PacketsCarryConfiguredIdentity) {
  OpenLoopConfig cfg;
  cfg.rate_pps = 1e6;
  cfg.size_bytes = 777;
  cfg.flow = 3;
  cfg.user_tag = 0xabc;
  cfg.kind = hw::IoKind::kNetTx;
  OpenLoopSource src(&sim_, &accel_, queue_, cfg, 1);
  src.Start();
  sim_.RunFor(sim::Millis(1));
  ASSERT_GT(accel_.ring(queue_).size(), 0u);
  std::array<sim::PacketHandle, 1> out;
  ASSERT_EQ(accel_.ring(queue_).PopBurst(1, out.data()), 1u);
  const hw::IoPacket& pkt = pool_.Get(out[0]);
  EXPECT_EQ(pkt.size_bytes, 777u);
  EXPECT_EQ(pkt.flow, 3u);
  EXPECT_EQ(pkt.user_tag, 0xabcu);
  EXPECT_EQ(pkt.kind, hw::IoKind::kNetTx);
}

TEST_F(SourcesTest, SameSeedDeterministic) {
  auto run = [this](uint64_t seed) {
    OpenLoopConfig cfg;
    cfg.rate_pps = 50000;
    sim::Simulation local(seed);
    sim::PacketPool pool(8192);
    hw::Accelerator accel(&local, {});
    accel.set_pool(&pool);
    uint32_t q = accel.AddQueue(0);
    OpenLoopSource src(&local, &accel, q, cfg, seed);
    src.Start();
    local.RunFor(sim::Millis(100));
    return src.injected();
  };
  EXPECT_EQ(run(9), run(9));
}

}  // namespace
}  // namespace taichi::dp
