#include "src/dp/poll_service.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/hw/machine.h"
#include "src/os/behaviors.h"
#include "src/sim/packet_pool.h"

namespace taichi::dp {
namespace {

class PollServiceTest : public ::testing::Test {
 protected:
  PollServiceTest() {
    hw::MachineConfig mcfg;
    mcfg.num_cpus = 2;
    machine_ = std::make_unique<hw::Machine>(&sim_, mcfg);
    kernel_ = std::make_unique<os::Kernel>(&sim_, machine_.get(), os::KernelConfig{});
  }

  PollService* MakeService(YieldPolicy policy, PollServiceConfig cfg = {}) {
    service_ = std::make_unique<PollService>(0, cfg, policy);
    service_->set_pool(&pool_);
    service_->AttachRing(&ring_);
    service_->set_sink([this](const sim::PacketHandle* batch, size_t count, sim::SimTime t) {
      for (size_t i = 0; i < count; ++i) {
        delivered_.push_back({pool_.Get(batch[i]), t});
        pool_.Free(batch[i]);
      }
    });
    os::Task* task = kernel_->Spawn("dp", std::make_unique<os::BehaviorRef>(service_.get()),
                                    os::CpuSet::Of({0}), os::Priority::kHigh);
    service_->BindTask(kernel_.get(), task);
    return service_.get();
  }

  void PushTo(hw::DescriptorRing& ring, uint64_t id, uint32_t bytes = 64,
              uint64_t dp_cost_hint = 0) {
    hw::IoPacket pkt;
    pkt.id = id;
    pkt.size_bytes = bytes;
    pkt.dp_cost_hint = dp_cost_hint;
    pkt.ring_push = sim_.Now();
    sim::PacketHandle h = pool_.Alloc(pkt);
    ASSERT_NE(h, sim::kInvalidPacketHandle);
    ring.Push(h);
  }

  void Push(uint64_t id, uint32_t bytes = 64) { PushTo(ring_, id, bytes); }

  sim::Simulation sim_;
  sim::PacketPool pool_{1024};
  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<os::Kernel> kernel_;
  hw::DescriptorRing ring_;
  std::unique_ptr<PollService> service_;
  std::vector<std::pair<hw::IoPacket, sim::SimTime>> delivered_;
};

TEST_F(PollServiceTest, ProcessesAndDeliversPackets) {
  PollService* svc = MakeService(YieldPolicy::kBusyPoll);
  sim_.RunFor(sim::Micros(10));
  Push(1);
  Push(2);
  sim_.RunFor(sim::Micros(50));
  ASSERT_EQ(delivered_.size(), 2u);
  EXPECT_EQ(delivered_[0].first.id, 1u);
  EXPECT_EQ(delivered_[1].first.id, 2u);
  EXPECT_EQ(svc->packets_processed(), 2u);
  EXPECT_GT(svc->work_time(), 0u);
  EXPECT_EQ(pool_.in_use(), 0u);  // Every slot returned after delivery.
}

TEST_F(PollServiceTest, ProcessingCostScalesWithBytes) {
  PollServiceConfig cfg;
  cfg.per_packet_base_cost = sim::Nanos(1000);
  cfg.ns_per_byte = 1.0;
  PollService* svc = MakeService(YieldPolicy::kBusyPoll, cfg);
  sim_.RunFor(sim::Micros(10));
  Push(1, 64);
  sim_.RunFor(sim::Millis(1));
  sim::Duration small = svc->work_time();
  Push(2, 1400);
  sim_.RunFor(sim::Millis(1));
  sim::Duration big = svc->work_time() - small;
  EXPECT_GT(big, small);
  EXPECT_NEAR(static_cast<double>(big), 1000.0 + 1400.0, 50.0);
}

TEST_F(PollServiceTest, DpCostHintAddsWork) {
  PollService* svc = MakeService(YieldPolicy::kBusyPoll);
  sim_.RunFor(sim::Micros(10));
  PushTo(ring_, 9, 64, /*dp_cost_hint=*/5000);
  sim_.RunFor(sim::Millis(1));
  EXPECT_GE(svc->work_time(), 5000u);
}

TEST_F(PollServiceTest, BurstBounded) {
  PollServiceConfig cfg;
  cfg.burst_size = 4;
  MakeService(YieldPolicy::kBusyPoll, cfg);
  sim_.RunFor(sim::Micros(10));
  for (uint64_t i = 0; i < 10; ++i) {
    Push(i);
  }
  sim_.RunFor(sim::Millis(1));
  EXPECT_EQ(delivered_.size(), 10u);  // All processed across bursts.
}

TEST_F(PollServiceTest, VirtTaxInflatesWork) {
  PollServiceConfig plain_cfg;
  PollService* svc = MakeService(YieldPolicy::kBusyPoll, plain_cfg);
  sim_.RunFor(sim::Micros(10));
  Push(1);
  sim_.RunFor(sim::Millis(1));
  sim::Duration plain = svc->work_time();

  delivered_.clear();
  PollServiceConfig taxed_cfg;
  taxed_cfg.virt_work_tax = 0.10;
  // Fresh kernel state: new service on CPU 1.
  auto taxed = std::make_unique<PollService>(1, taxed_cfg, YieldPolicy::kBusyPoll);
  hw::DescriptorRing ring2;
  taxed->set_pool(&pool_);
  taxed->AttachRing(&ring2);
  os::Task* task = kernel_->Spawn("dp2", std::make_unique<os::BehaviorRef>(taxed.get()),
                                  os::CpuSet::Of({1}), os::Priority::kHigh);
  taxed->BindTask(kernel_.get(), task);
  sim_.RunFor(sim::Micros(10));
  PushTo(ring2, 1);
  sim_.RunFor(sim::Millis(1));
  EXPECT_NEAR(static_cast<double>(taxed->work_time()), static_cast<double>(plain) * 1.10,
              static_cast<double>(plain) * 0.02);
}

TEST_F(PollServiceTest, IsIdleTracksRings) {
  PollService* svc = MakeService(YieldPolicy::kBusyPoll);
  EXPECT_TRUE(svc->IsIdle());
  Push(1);
  EXPECT_FALSE(svc->IsIdle());
  sim_.RunFor(sim::Millis(1));
  EXPECT_TRUE(svc->IsIdle());
}

TEST_F(PollServiceTest, QueueDelayMeasured) {
  PollService* svc = MakeService(YieldPolicy::kBusyPoll);
  sim_.RunFor(sim::Micros(10));
  Push(1);
  sim_.RunFor(sim::Millis(1));
  ASSERT_EQ(svc->queue_delay_us().count(), 1u);
  // Picked up promptly by the busy poller.
  EXPECT_LT(svc->queue_delay_us().mean(), 5.0);
}

TEST_F(PollServiceTest, BlockOnIdlePolicySleepsAndWakes) {
  PollService* svc = MakeService(YieldPolicy::kBlockOnIdle);
  sim_.RunFor(sim::Millis(5));
  // After the empty-poll threshold the service blocks.
  EXPECT_EQ(svc->task()->state(), os::TaskState::kBlocked);
  EXPECT_GT(svc->yields(), 0u);
  Push(1);
  sim_.RunFor(sim::Millis(1));
  EXPECT_EQ(delivered_.size(), 1u);
}

TEST_F(PollServiceTest, BusyPollPolicyNeverBlocks) {
  PollService* svc = MakeService(YieldPolicy::kBusyPoll);
  sim_.RunFor(sim::Millis(5));
  EXPECT_EQ(svc->task()->state(), os::TaskState::kRunning);
  os::CpuAccounting acct = kernel_->GetAccounting(0);
  EXPECT_GT(acct.busy, sim::Millis(4));
}

TEST_F(PollServiceTest, RoundRobinGatherServesAllRingsUnderOverload) {
  // Regression for the rx-ring starvation bug: the gather loop used to drain
  // rings_[0] to exhaustion before touching later rings, so under sustained
  // overload ring 1 never made progress. With the round-robin cursor,
  // alternating bursts start on alternating rings.
  PollService* svc = MakeService(YieldPolicy::kBusyPoll);
  hw::DescriptorRing ring2;
  svc->AttachRing(&ring2);
  sim_.RunFor(sim::Micros(10));
  // Both rings hold far more than the bursts the run below can process
  // (~4 bursts of 32 at ~900 ns/packet in 120 us), so a starving gather
  // would deliver exclusively ring-0 ids.
  for (uint64_t i = 0; i < 200; ++i) {
    PushTo(ring_, i);
    PushTo(ring2, 1000 + i);
  }
  sim_.RunFor(sim::Micros(120));
  size_t from_ring0 = 0;
  size_t from_ring1 = 0;
  for (const auto& [pkt, t] : delivered_) {
    (pkt.id < 1000 ? from_ring0 : from_ring1)++;
  }
  ASSERT_GT(delivered_.size(), 0u);
  EXPECT_GT(from_ring0, 0u);
  EXPECT_GT(from_ring1, 0u);
  // The cursor alternates start rings, so neither ring gets more than one
  // burst of headway over the other.
  EXPECT_LE(from_ring0 > from_ring1 ? from_ring0 - from_ring1 : from_ring1 - from_ring0,
            32u);
}

TEST_F(PollServiceTest, PollutionSurchargeDecaysExactlyToZero) {
  // Regression for the pollution-accounting bug: the old code decremented
  // pollution_remaining_ via a lossy integer cast of the charged amount, so
  // fractional base costs under-decremented the budget and over-charged the
  // surcharge across bursts. Walk the decay to zero with base 10.5 ns and
  // check the exact per-burst costs:
  //   bursts 1-9:  charged 10.5, cost = trunc(10.5 + 10.5)      = 21 ns
  //   burst 10:    charged  5.5, cost = trunc(10.5 + 5.5)       = 16 ns
  //   bursts 11+:  budget exhausted, cost = trunc(10.5)         = 10 ns
  // Total for 12 packets: 9*21 + 16 + 2*10 = 225 ns. The lossy decrement
  // (10 per burst instead of 10.5) yields 229 ns.
  PollServiceConfig cfg;
  cfg.per_packet_base_cost = sim::Nanos(10);
  cfg.ns_per_byte = 0.5;
  cfg.pollution_max_factor = 1.0;
  cfg.pollution_decay = sim::Nanos(100);
  PollService* svc = MakeService(YieldPolicy::kBusyPoll, cfg);
  sim_.RunFor(sim::Micros(10));  // Task dispatched: dispatched_once_ armed.
  // A re-dispatch after the first one marks the working set cold.
  svc->OnScheduledIn(*kernel_, *svc->task());
  for (uint64_t i = 0; i < 12; ++i) {
    Push(i, /*bytes=*/1);  // base = 10 + 0.5 * 1 = 10.5 ns.
    sim_.RunFor(sim::Micros(5));  // One single-packet burst at a time.
  }
  EXPECT_EQ(delivered_.size(), 12u);
  EXPECT_EQ(svc->work_time(), 225);
}

}  // namespace
}  // namespace taichi::dp
