#include "src/dp/poll_service.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/hw/machine.h"
#include "src/os/behaviors.h"

namespace taichi::dp {
namespace {

class PollServiceTest : public ::testing::Test {
 protected:
  PollServiceTest() {
    hw::MachineConfig mcfg;
    mcfg.num_cpus = 2;
    machine_ = std::make_unique<hw::Machine>(&sim_, mcfg);
    kernel_ = std::make_unique<os::Kernel>(&sim_, machine_.get(), os::KernelConfig{});
  }

  PollService* MakeService(YieldPolicy policy, PollServiceConfig cfg = {}) {
    service_ = std::make_unique<PollService>(0, cfg, policy);
    service_->AttachRing(&ring_);
    service_->set_sink([this](const hw::IoPacket& pkt, sim::SimTime t) {
      delivered_.push_back({pkt, t});
    });
    os::Task* task = kernel_->Spawn("dp", std::make_unique<os::BehaviorRef>(service_.get()),
                                    os::CpuSet::Of({0}), os::Priority::kHigh);
    service_->BindTask(kernel_.get(), task);
    return service_.get();
  }

  void Push(uint64_t id, uint32_t bytes = 64) {
    hw::IoPacket pkt;
    pkt.id = id;
    pkt.size_bytes = bytes;
    pkt.ring_push = sim_.Now();
    ring_.Push(pkt);
  }

  sim::Simulation sim_;
  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<os::Kernel> kernel_;
  hw::DescriptorRing ring_;
  std::unique_ptr<PollService> service_;
  std::vector<std::pair<hw::IoPacket, sim::SimTime>> delivered_;
};

TEST_F(PollServiceTest, ProcessesAndDeliversPackets) {
  PollService* svc = MakeService(YieldPolicy::kBusyPoll);
  sim_.RunFor(sim::Micros(10));
  Push(1);
  Push(2);
  sim_.RunFor(sim::Micros(50));
  ASSERT_EQ(delivered_.size(), 2u);
  EXPECT_EQ(delivered_[0].first.id, 1u);
  EXPECT_EQ(delivered_[1].first.id, 2u);
  EXPECT_EQ(svc->packets_processed(), 2u);
  EXPECT_GT(svc->work_time(), 0u);
}

TEST_F(PollServiceTest, ProcessingCostScalesWithBytes) {
  PollServiceConfig cfg;
  cfg.per_packet_base_cost = sim::Nanos(1000);
  cfg.ns_per_byte = 1.0;
  PollService* svc = MakeService(YieldPolicy::kBusyPoll, cfg);
  sim_.RunFor(sim::Micros(10));
  Push(1, 64);
  sim_.RunFor(sim::Millis(1));
  sim::Duration small = svc->work_time();
  Push(2, 1400);
  sim_.RunFor(sim::Millis(1));
  sim::Duration big = svc->work_time() - small;
  EXPECT_GT(big, small);
  EXPECT_NEAR(static_cast<double>(big), 1000.0 + 1400.0, 50.0);
}

TEST_F(PollServiceTest, DpCostHintAddsWork) {
  PollService* svc = MakeService(YieldPolicy::kBusyPoll);
  sim_.RunFor(sim::Micros(10));
  hw::IoPacket pkt;
  pkt.id = 9;
  pkt.size_bytes = 64;
  pkt.dp_cost_hint = 5000;
  pkt.ring_push = sim_.Now();
  ring_.Push(pkt);
  sim_.RunFor(sim::Millis(1));
  EXPECT_GE(svc->work_time(), 5000u);
}

TEST_F(PollServiceTest, BurstBounded) {
  PollServiceConfig cfg;
  cfg.burst_size = 4;
  MakeService(YieldPolicy::kBusyPoll, cfg);
  sim_.RunFor(sim::Micros(10));
  for (uint64_t i = 0; i < 10; ++i) {
    Push(i);
  }
  sim_.RunFor(sim::Millis(1));
  EXPECT_EQ(delivered_.size(), 10u);  // All processed across bursts.
}

TEST_F(PollServiceTest, VirtTaxInflatesWork) {
  PollServiceConfig plain_cfg;
  PollService* svc = MakeService(YieldPolicy::kBusyPoll, plain_cfg);
  sim_.RunFor(sim::Micros(10));
  Push(1);
  sim_.RunFor(sim::Millis(1));
  sim::Duration plain = svc->work_time();

  delivered_.clear();
  PollServiceConfig taxed_cfg;
  taxed_cfg.virt_work_tax = 0.10;
  // Fresh kernel state: new service on CPU 1.
  auto taxed = std::make_unique<PollService>(1, taxed_cfg, YieldPolicy::kBusyPoll);
  hw::DescriptorRing ring2;
  taxed->AttachRing(&ring2);
  taxed->set_sink([](const hw::IoPacket&, sim::SimTime) {});
  os::Task* task = kernel_->Spawn("dp2", std::make_unique<os::BehaviorRef>(taxed.get()),
                                  os::CpuSet::Of({1}), os::Priority::kHigh);
  taxed->BindTask(kernel_.get(), task);
  sim_.RunFor(sim::Micros(10));
  hw::IoPacket pkt;
  pkt.id = 1;
  pkt.size_bytes = 64;
  pkt.ring_push = sim_.Now();
  ring2.Push(pkt);
  sim_.RunFor(sim::Millis(1));
  EXPECT_NEAR(static_cast<double>(taxed->work_time()), static_cast<double>(plain) * 1.10,
              static_cast<double>(plain) * 0.02);
}

TEST_F(PollServiceTest, IsIdleTracksRings) {
  PollService* svc = MakeService(YieldPolicy::kBusyPoll);
  EXPECT_TRUE(svc->IsIdle());
  Push(1);
  EXPECT_FALSE(svc->IsIdle());
  sim_.RunFor(sim::Millis(1));
  EXPECT_TRUE(svc->IsIdle());
}

TEST_F(PollServiceTest, QueueDelayMeasured) {
  PollService* svc = MakeService(YieldPolicy::kBusyPoll);
  sim_.RunFor(sim::Micros(10));
  Push(1);
  sim_.RunFor(sim::Millis(1));
  ASSERT_EQ(svc->queue_delay_us().count(), 1u);
  // Picked up promptly by the busy poller.
  EXPECT_LT(svc->queue_delay_us().mean(), 5.0);
}

TEST_F(PollServiceTest, BlockOnIdlePolicySleepsAndWakes) {
  PollService* svc = MakeService(YieldPolicy::kBlockOnIdle);
  sim_.RunFor(sim::Millis(5));
  // After the empty-poll threshold the service blocks.
  EXPECT_EQ(svc->task()->state(), os::TaskState::kBlocked);
  EXPECT_GT(svc->yields(), 0u);
  Push(1);
  sim_.RunFor(sim::Millis(1));
  EXPECT_EQ(delivered_.size(), 1u);
}

TEST_F(PollServiceTest, BusyPollPolicyNeverBlocks) {
  PollService* svc = MakeService(YieldPolicy::kBusyPoll);
  sim_.RunFor(sim::Millis(5));
  EXPECT_EQ(svc->task()->state(), os::TaskState::kRunning);
  os::CpuAccounting acct = kernel_->GetAccounting(0);
  EXPECT_GT(acct.busy, sim::Millis(4));
}

}  // namespace
}  // namespace taichi::dp
