#include "src/hw/accelerator.h"

#include <gtest/gtest.h>

#include <array>

#include "src/sim/packet_pool.h"
#include "src/sim/simulation.h"

namespace taichi::hw {
namespace {

IoPacket Pkt(uint64_t id, sim::SimTime created) {
  IoPacket p;
  p.id = id;
  p.created = created;
  return p;
}

class AcceleratorTest : public ::testing::Test {
 protected:
  sim::PacketPool pool_{64};
};

TEST_F(AcceleratorTest, PublishesAfterPreprocessingWindow) {
  sim::Simulation s;
  AcceleratorConfig cfg;
  Accelerator acc(&s, cfg);
  acc.set_pool(&pool_);
  uint32_t q = acc.AddQueue(/*dest_cpu=*/0);
  acc.Ingress(q, Pkt(1, s.Now()));
  s.Run();
  ASSERT_EQ(acc.ring(q).size(), 1u);
  std::array<sim::PacketHandle, 1> out{};
  ASSERT_EQ(acc.ring(q).PopBurst(1, out.data()), 1u);
  // 2.7 us preprocess + 0.5 us transfer = 3.2 us (Fig. 6).
  EXPECT_EQ(pool_.Get(out[0]).ring_push, sim::MicrosF(3.2));
}

TEST_F(AcceleratorTest, PipelinesBackToBackPackets) {
  sim::Simulation s;
  AcceleratorConfig cfg;
  cfg.per_packet_gap = sim::Nanos(100);
  Accelerator acc(&s, cfg);
  acc.set_pool(&pool_);
  uint32_t q = acc.AddQueue(0);
  acc.Ingress(q, Pkt(1, 0));
  acc.Ingress(q, Pkt(2, 0));
  s.Run();
  std::array<sim::PacketHandle, 8> out;
  size_t n = acc.ring(q).PopBurst(out.size(), out.data());
  ASSERT_EQ(n, 2u);
  // Second packet starts 100 ns later, not 3.2 us later.
  EXPECT_EQ(pool_.Get(out[1]).ring_push - pool_.Get(out[0]).ring_push, sim::Nanos(100));
}

TEST_F(AcceleratorTest, ProbeConsultedBeforePreprocessing) {
  sim::Simulation s;
  Apic apic(&s, 1);
  sim::SimTime irq_at = 0;
  apic.RegisterHandler(0, [&](IrqVector, ApicId) { irq_at = s.Now(); });
  HwWorkloadProbe probe(&s, &apic, {0});
  probe.SetState(0, CpuProbeState::kVState);

  Accelerator acc(&s, {});
  acc.set_pool(&pool_);
  acc.set_probe(&probe);
  uint32_t q = acc.AddQueue(0);
  s.Schedule(sim::Micros(10), [&] { acc.Ingress(q, Pkt(1, s.Now())); });
  s.Run();
  // The IRQ beats the packet's ring publication by the preprocessing window.
  EXPECT_EQ(irq_at, sim::Micros(10) + sim::Nanos(1));
  EXPECT_EQ(acc.packets_published(), 1u);
}

TEST_F(AcceleratorTest, QueuesAreIndependent) {
  sim::Simulation s;
  Accelerator acc(&s, {});
  acc.set_pool(&pool_);
  uint32_t q0 = acc.AddQueue(0);
  uint32_t q1 = acc.AddQueue(5);
  acc.Ingress(q0, Pkt(1, 0));
  acc.Ingress(q1, Pkt(2, 0));
  s.Run();
  EXPECT_EQ(acc.ring(q0).size(), 1u);
  EXPECT_EQ(acc.ring(q1).size(), 1u);
  EXPECT_EQ(acc.dest_cpu(q1), 5u);
}

TEST_F(AcceleratorTest, ResidencyStatRecordsWindow) {
  sim::Simulation s;
  Accelerator acc(&s, {});
  acc.set_pool(&pool_);
  uint32_t q = acc.AddQueue(0);
  acc.Ingress(q, Pkt(1, 0));
  s.Run();
  ASSERT_EQ(acc.residency_us().count(), 1u);
  EXPECT_NEAR(acc.residency_us().mean(), 3.2, 1e-9);
}

TEST_F(AcceleratorTest, SetDestCpuRehomesQueue) {
  sim::Simulation s;
  Accelerator acc(&s, {});
  acc.set_pool(&pool_);
  uint32_t q = acc.AddQueue(0);
  acc.SetDestCpu(q, 3);
  EXPECT_EQ(acc.dest_cpu(q), 3u);
}

TEST_F(AcceleratorTest, PoolExhaustionCountsAsDrop) {
  // A pool with room for 2 packets: the third arrival is shed before the
  // pipeline and shows up in pool_drops(), not as a published packet.
  sim::Simulation s;
  sim::PacketPool tiny(2);
  Accelerator acc(&s, {});
  acc.set_pool(&tiny);
  uint32_t q = acc.AddQueue(0);
  acc.Ingress(q, Pkt(1, 0));
  acc.Ingress(q, Pkt(2, 0));
  acc.Ingress(q, Pkt(3, 0));  // Arena exhausted.
  EXPECT_EQ(acc.pool_drops(), 1u);
  EXPECT_EQ(acc.packets_ingressed(), 3u);  // Still offered load.
  s.Run();
  EXPECT_EQ(acc.packets_published(), 2u);
  EXPECT_EQ(tiny.exhausted(), 1u);
}

TEST_F(AcceleratorTest, RingOverflowFreesSlotBackToPool) {
  // Ring capacity 1: the second publish overflows; its arena slot must be
  // reclaimed or the pool leaks under sustained overload.
  sim::Simulation s;
  AcceleratorConfig cfg;
  cfg.ring_capacity = 1;
  Accelerator acc(&s, cfg);
  acc.set_pool(&pool_);
  uint32_t q = acc.AddQueue(0);
  acc.Ingress(q, Pkt(1, 0));
  acc.Ingress(q, Pkt(2, 0));
  s.Run();
  EXPECT_EQ(acc.ring_drops(), 1u);
  EXPECT_EQ(acc.packets_published(), 1u);
  EXPECT_EQ(pool_.in_use(), 1u);  // Only the packet still sitting in the ring.
}

}  // namespace
}  // namespace taichi::hw
