#include "src/hw/accelerator.h"

#include <gtest/gtest.h>

#include "src/sim/simulation.h"

namespace taichi::hw {
namespace {

IoPacket Pkt(uint64_t id, sim::SimTime created) {
  IoPacket p;
  p.id = id;
  p.created = created;
  return p;
}

TEST(AcceleratorTest, PublishesAfterPreprocessingWindow) {
  sim::Simulation s;
  AcceleratorConfig cfg;
  Accelerator acc(&s, cfg);
  uint32_t q = acc.AddQueue(/*dest_cpu=*/0);
  acc.Ingress(q, Pkt(1, s.Now()));
  s.Run();
  ASSERT_EQ(acc.ring(q).size(), 1u);
  std::vector<IoPacket> out;
  acc.ring(q).PopBurst(1, std::back_inserter(out));
  // 2.7 us preprocess + 0.5 us transfer = 3.2 us (Fig. 6).
  EXPECT_EQ(out[0].ring_push, sim::MicrosF(3.2));
}

TEST(AcceleratorTest, PipelinesBackToBackPackets) {
  sim::Simulation s;
  AcceleratorConfig cfg;
  cfg.per_packet_gap = sim::Nanos(100);
  Accelerator acc(&s, cfg);
  uint32_t q = acc.AddQueue(0);
  acc.Ingress(q, Pkt(1, 0));
  acc.Ingress(q, Pkt(2, 0));
  s.Run();
  std::vector<IoPacket> out;
  acc.ring(q).PopBurst(8, std::back_inserter(out));
  ASSERT_EQ(out.size(), 2u);
  // Second packet starts 100 ns later, not 3.2 us later.
  EXPECT_EQ(out[1].ring_push - out[0].ring_push, sim::Nanos(100));
}

TEST(AcceleratorTest, ProbeConsultedBeforePreprocessing) {
  sim::Simulation s;
  Apic apic(&s, 1);
  sim::SimTime irq_at = 0;
  apic.RegisterHandler(0, [&](IrqVector, ApicId) { irq_at = s.Now(); });
  HwWorkloadProbe probe(&s, &apic, {0});
  probe.SetState(0, CpuProbeState::kVState);

  Accelerator acc(&s, {});
  acc.set_probe(&probe);
  uint32_t q = acc.AddQueue(0);
  s.Schedule(sim::Micros(10), [&] { acc.Ingress(q, Pkt(1, s.Now())); });
  s.Run();
  // The IRQ beats the packet's ring publication by the preprocessing window.
  EXPECT_EQ(irq_at, sim::Micros(10) + sim::Nanos(1));
  EXPECT_EQ(acc.packets_published(), 1u);
}

TEST(AcceleratorTest, QueuesAreIndependent) {
  sim::Simulation s;
  Accelerator acc(&s, {});
  uint32_t q0 = acc.AddQueue(0);
  uint32_t q1 = acc.AddQueue(5);
  acc.Ingress(q0, Pkt(1, 0));
  acc.Ingress(q1, Pkt(2, 0));
  s.Run();
  EXPECT_EQ(acc.ring(q0).size(), 1u);
  EXPECT_EQ(acc.ring(q1).size(), 1u);
  EXPECT_EQ(acc.dest_cpu(q1), 5u);
}

TEST(AcceleratorTest, ResidencyStatRecordsWindow) {
  sim::Simulation s;
  Accelerator acc(&s, {});
  uint32_t q = acc.AddQueue(0);
  acc.Ingress(q, Pkt(1, 0));
  s.Run();
  ASSERT_EQ(acc.residency_us().count(), 1u);
  EXPECT_NEAR(acc.residency_us().mean(), 3.2, 1e-9);
}

TEST(AcceleratorTest, SetDestCpuRehomesQueue) {
  sim::Simulation s;
  Accelerator acc(&s, {});
  uint32_t q = acc.AddQueue(0);
  acc.SetDestCpu(q, 3);
  EXPECT_EQ(acc.dest_cpu(q), 3u);
}

}  // namespace
}  // namespace taichi::hw
