#include "src/hw/apic.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulation.h"

namespace taichi::hw {
namespace {

TEST(ApicTest, DeliversAfterLatency) {
  sim::Simulation s;
  Apic apic(&s, sim::Nanos(400));
  sim::SimTime delivered_at = 0;
  apic.RegisterHandler(1, [&](IrqVector, ApicId) { delivered_at = s.Now(); });
  apic.Send(0, 1, IrqVector::kResched);
  s.Run();
  EXPECT_EQ(delivered_at, sim::Nanos(400));
}

TEST(ApicTest, PassesVectorAndSource) {
  sim::Simulation s;
  Apic apic(&s, 1);
  IrqVector seen_vec = IrqVector::kTimer;
  ApicId seen_from = 0;
  apic.RegisterHandler(7, [&](IrqVector v, ApicId from) {
    seen_vec = v;
    seen_from = from;
  });
  apic.Send(3, 7, IrqVector::kDpWorkload);
  s.Run();
  EXPECT_EQ(seen_vec, IrqVector::kDpWorkload);
  EXPECT_EQ(seen_from, 3u);
}

TEST(ApicTest, DropsWhenNoHandler) {
  sim::Simulation s;
  Apic apic(&s, 1);
  apic.Send(0, 99, IrqVector::kResched);
  s.Run();
  EXPECT_EQ(apic.sent_count(), 1u);
  EXPECT_EQ(apic.dropped_count(), 1u);
}

TEST(ApicTest, UnregisterStopsDelivery) {
  sim::Simulation s;
  Apic apic(&s, 1);
  int hits = 0;
  apic.RegisterHandler(2, [&](IrqVector, ApicId) { ++hits; });
  apic.Send(0, 2, IrqVector::kResched);
  s.Run();
  apic.UnregisterHandler(2);
  apic.Send(0, 2, IrqVector::kResched);
  s.Run();
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(apic.dropped_count(), 1u);
}

TEST(ApicTest, HandlerRegisteredAtSendButRemovedAtDeliveryDrops) {
  sim::Simulation s;
  Apic apic(&s, sim::Micros(1));
  int hits = 0;
  apic.RegisterHandler(4, [&](IrqVector, ApicId) { ++hits; });
  apic.Send(0, 4, IrqVector::kResched);
  s.Schedule(sim::Nanos(500), [&] { apic.UnregisterHandler(4); });
  s.Run();
  EXPECT_EQ(hits, 0);
}

TEST(ApicTest, ManyIpisAllDelivered) {
  sim::Simulation s;
  Apic apic(&s, 10);
  int hits = 0;
  apic.RegisterHandler(0, [&](IrqVector, ApicId) { ++hits; });
  for (int i = 0; i < 1000; ++i) {
    apic.Send(1, 0, IrqVector::kResched);
  }
  s.Run();
  EXPECT_EQ(hits, 1000);
}

}  // namespace
}  // namespace taichi::hw
