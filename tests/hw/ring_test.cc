#include "src/hw/ring.h"

#include <gtest/gtest.h>

#include <vector>

namespace taichi::hw {
namespace {

IoPacket Pkt(uint64_t id) {
  IoPacket p;
  p.id = id;
  return p;
}

TEST(DescriptorRingTest, FifoOrder) {
  DescriptorRing ring;
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(ring.Push(Pkt(i)));
  }
  std::vector<IoPacket> out;
  EXPECT_EQ(ring.PopBurst(32, std::back_inserter(out)), 5u);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i].id, i);
  }
}

TEST(DescriptorRingTest, BurstBounded) {
  DescriptorRing ring;
  for (uint64_t i = 0; i < 100; ++i) {
    ring.Push(Pkt(i));
  }
  std::vector<IoPacket> out;
  EXPECT_EQ(ring.PopBurst(32, std::back_inserter(out)), 32u);
  EXPECT_EQ(ring.size(), 68u);
}

TEST(DescriptorRingTest, DropsWhenFull) {
  DescriptorRing ring(2);
  EXPECT_TRUE(ring.Push(Pkt(1)));
  EXPECT_TRUE(ring.Push(Pkt(2)));
  EXPECT_FALSE(ring.Push(Pkt(3)));
  EXPECT_EQ(ring.drops(), 1u);
  EXPECT_EQ(ring.size(), 2u);
}

TEST(DescriptorRingTest, WatcherFiresOnEveryPush) {
  DescriptorRing ring;
  int notified = 0;
  ring.set_watcher([&] { ++notified; });
  ring.Push(Pkt(1));
  ring.Push(Pkt(2));
  EXPECT_EQ(notified, 2);
}

TEST(DescriptorRingTest, WatcherNotFiredOnDrop) {
  DescriptorRing ring(1);
  int notified = 0;
  ring.set_watcher([&] { ++notified; });
  ring.Push(Pkt(1));
  ring.Push(Pkt(2));  // Dropped.
  EXPECT_EQ(notified, 1);
}

TEST(DescriptorRingTest, EmptyBurstReturnsZero) {
  DescriptorRing ring;
  std::vector<IoPacket> out;
  EXPECT_EQ(ring.PopBurst(32, std::back_inserter(out)), 0u);
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace taichi::hw
