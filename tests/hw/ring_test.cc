#include "src/hw/ring.h"

#include <gtest/gtest.h>

#include <array>

#include "src/sim/packet_pool.h"

namespace taichi::hw {
namespace {

// Handles are opaque descriptors to the ring; plain integers exercise the
// FIFO/watcher logic without needing a pool.
TEST(DescriptorRingTest, FifoOrder) {
  DescriptorRing ring;
  for (uint32_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(ring.Push(i));
  }
  std::array<sim::PacketHandle, 32> out;
  EXPECT_EQ(ring.PopBurst(out.size(), out.data()), 5u);
  for (uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i], i);
  }
}

TEST(DescriptorRingTest, BurstBounded) {
  DescriptorRing ring;
  for (uint32_t i = 0; i < 100; ++i) {
    ring.Push(i);
  }
  std::array<sim::PacketHandle, 32> out;
  EXPECT_EQ(ring.PopBurst(out.size(), out.data()), 32u);
  EXPECT_EQ(ring.size(), 68u);
}

TEST(DescriptorRingTest, DropsWhenFull) {
  DescriptorRing ring(2);
  EXPECT_TRUE(ring.Push(1));
  EXPECT_TRUE(ring.Push(2));
  EXPECT_FALSE(ring.Push(3));
  EXPECT_EQ(ring.drops(), 1u);
  EXPECT_EQ(ring.size(), 2u);
}

TEST(DescriptorRingTest, CapacityEnforcedAcrossWrap) {
  // A non-power-of-two capacity still drops at exactly `capacity` even after
  // head/tail wrap around the backing power-of-two buffer.
  DescriptorRing ring(3);
  std::array<sim::PacketHandle, 4> out;
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(ring.Push(1));
    EXPECT_TRUE(ring.Push(2));
    EXPECT_TRUE(ring.Push(3));
    EXPECT_FALSE(ring.Push(4));
    EXPECT_EQ(ring.PopBurst(out.size(), out.data()), 3u);
  }
  EXPECT_EQ(ring.drops(), 10u);
}

TEST(DescriptorRingTest, WatcherFiresOnEveryPush) {
  DescriptorRing ring;
  int notified = 0;
  ring.set_watcher([&] { ++notified; });
  ring.Push(1);
  ring.Push(2);
  EXPECT_EQ(notified, 2);
}

TEST(DescriptorRingTest, WatcherNotFiredOnDrop) {
  DescriptorRing ring(1);
  int notified = 0;
  ring.set_watcher([&] { ++notified; });
  ring.Push(1);
  ring.Push(2);  // Dropped.
  EXPECT_EQ(notified, 1);
}

TEST(DescriptorRingTest, EmptyBurstReturnsZero) {
  DescriptorRing ring;
  std::array<sim::PacketHandle, 32> out;
  EXPECT_EQ(ring.PopBurst(out.size(), out.data()), 0u);
  EXPECT_TRUE(ring.empty());
}

TEST(DescriptorRingTest, CarriesPoolHandlesRoundTrip) {
  // End-to-end with a real pool: what goes in by handle comes out pointing
  // at the same packet.
  sim::PacketPool pool(8);
  DescriptorRing ring;
  IoPacket p;
  p.id = 42;
  p.size_bytes = 1500;
  const sim::PacketHandle h = pool.Alloc(p);
  ASSERT_NE(h, sim::kInvalidPacketHandle);
  EXPECT_TRUE(ring.Push(h));
  std::array<sim::PacketHandle, 4> out;
  ASSERT_EQ(ring.PopBurst(out.size(), out.data()), 1u);
  EXPECT_EQ(out[0], h);
  EXPECT_EQ(pool.Get(out[0]).id, 42u);
  EXPECT_EQ(pool.Get(out[0]).size_bytes, 1500u);
  pool.Free(out[0]);
}

}  // namespace
}  // namespace taichi::hw
