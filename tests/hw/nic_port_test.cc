#include "src/hw/nic_port.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/packet_pool.h"
#include "src/sim/simulation.h"

namespace taichi::hw {
namespace {

sim::PacketHandle MakePacket(sim::PacketPool& pool, uint32_t size_bytes) {
  IoPacket p;
  p.size_bytes = size_bytes;
  sim::PacketHandle h = pool.Alloc(p);
  EXPECT_NE(h, sim::kInvalidPacketHandle);
  return h;
}

TEST(NicPortTest, DeliversAfterSerializationAndWire) {
  sim::Simulation s;
  sim::PacketPool pool(16);
  NicPortConfig cfg;
  cfg.bandwidth_gbps = 100.0;  // 1500 B -> 120 ns.
  cfg.wire_latency = sim::Micros(2);
  NicPort nic(&s, cfg);
  nic.set_pool(&pool);
  sim::SimTime arrived = 0;
  nic.set_sink([&](sim::PacketHandle h) {
    arrived = s.Now();
    pool.Free(h);
  });
  nic.Transmit(MakePacket(pool, 1500));
  s.Run();
  EXPECT_EQ(arrived, sim::Nanos(120) + sim::Micros(2));
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(NicPortTest, BackToBackPacketsQueueOnLink) {
  sim::Simulation s;
  sim::PacketPool pool(16);
  NicPortConfig cfg;
  cfg.bandwidth_gbps = 100.0;
  cfg.wire_latency = 0;
  NicPort nic(&s, cfg);
  nic.set_pool(&pool);
  std::vector<sim::SimTime> arrivals;
  nic.set_sink([&](sim::PacketHandle h) {
    arrivals.push_back(s.Now());
    pool.Free(h);
  });
  nic.Transmit(MakePacket(pool, 1500));
  nic.Transmit(MakePacket(pool, 1500));
  s.Run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[1] - arrivals[0], sim::Nanos(120));
}

TEST(NicPortTest, CountsBytesAndPackets) {
  sim::Simulation s;
  sim::PacketPool pool(16);
  NicPort nic(&s, {});
  nic.set_pool(&pool);
  nic.set_sink([&](sim::PacketHandle h) { pool.Free(h); });
  nic.Transmit(MakePacket(pool, 64));
  nic.Transmit(MakePacket(pool, 64));
  s.Run();
  EXPECT_EQ(nic.transmitted(), 2u);
  EXPECT_EQ(nic.bytes_transmitted(), 128u);
}

TEST(NicPortTest, NoSinkReclaimsSlot) {
  // Without a sink the packet leaves the simulated world; the port must hand
  // the slot back instead of leaking it.
  sim::Simulation s;
  sim::PacketPool pool(16);
  NicPort nic(&s, {});
  nic.set_pool(&pool);
  nic.Transmit(MakePacket(pool, 64));
  s.Run();
  EXPECT_EQ(nic.transmitted(), 1u);
  EXPECT_EQ(pool.in_use(), 0u);
}

}  // namespace
}  // namespace taichi::hw
