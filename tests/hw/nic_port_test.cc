#include "src/hw/nic_port.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulation.h"

namespace taichi::hw {
namespace {

TEST(NicPortTest, DeliversAfterSerializationAndWire) {
  sim::Simulation s;
  NicPortConfig cfg;
  cfg.bandwidth_gbps = 100.0;  // 1500 B -> 120 ns.
  cfg.wire_latency = sim::Micros(2);
  NicPort nic(&s, cfg);
  sim::SimTime arrived = 0;
  nic.set_sink([&](const IoPacket&) { arrived = s.Now(); });
  IoPacket p;
  p.size_bytes = 1500;
  nic.Transmit(p);
  s.Run();
  EXPECT_EQ(arrived, sim::Nanos(120) + sim::Micros(2));
}

TEST(NicPortTest, BackToBackPacketsQueueOnLink) {
  sim::Simulation s;
  NicPortConfig cfg;
  cfg.bandwidth_gbps = 100.0;
  cfg.wire_latency = 0;
  NicPort nic(&s, cfg);
  std::vector<sim::SimTime> arrivals;
  nic.set_sink([&](const IoPacket&) { arrivals.push_back(s.Now()); });
  IoPacket p;
  p.size_bytes = 1500;
  nic.Transmit(p);
  nic.Transmit(p);
  s.Run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[1] - arrivals[0], sim::Nanos(120));
}

TEST(NicPortTest, CountsBytesAndPackets) {
  sim::Simulation s;
  NicPort nic(&s, {});
  IoPacket p;
  p.size_bytes = 64;
  nic.Transmit(p);
  nic.Transmit(p);
  s.Run();
  EXPECT_EQ(nic.transmitted(), 2u);
  EXPECT_EQ(nic.bytes_transmitted(), 128u);
}

TEST(NicPortTest, NoSinkIsSafe) {
  sim::Simulation s;
  NicPort nic(&s, {});
  IoPacket p;
  nic.Transmit(p);
  s.Run();
  EXPECT_EQ(nic.transmitted(), 1u);
}

}  // namespace
}  // namespace taichi::hw
