#include "src/hw/hw_probe.h"

#include <gtest/gtest.h>

#include "src/sim/simulation.h"

namespace taichi::hw {
namespace {

class HwProbeTest : public ::testing::Test {
 protected:
  HwProbeTest() : apic_(&sim_, sim::Nanos(100)), probe_(&sim_, &apic_, {0, 1, 2, 3}) {
    apic_.RegisterHandler(1, [this](IrqVector v, ApicId) {
      if (v == IrqVector::kDpWorkload) {
        ++irq_hits_;
      }
    });
  }

  sim::Simulation sim_;
  Apic apic_;
  HwWorkloadProbe probe_;
  int irq_hits_ = 0;
};

TEST_F(HwProbeTest, PStateDoesNotRaiseIrq) {
  probe_.OnPacketArrival(1);
  sim_.Run();
  EXPECT_EQ(irq_hits_, 0);
  EXPECT_EQ(probe_.vstate_hits(), 0u);
}

TEST_F(HwProbeTest, VStateRaisesIrqOnce) {
  probe_.SetState(1, CpuProbeState::kVState);
  probe_.OnPacketArrival(1);
  probe_.OnPacketArrival(1);  // Second packet in the same episode: no new IRQ.
  sim_.Run();
  EXPECT_EQ(irq_hits_, 1);
  EXPECT_EQ(probe_.vstate_hits(), 2u);
  EXPECT_EQ(probe_.irqs_raised(), 1u);
}

TEST_F(HwProbeTest, ReArmsAfterPStateRoundTrip) {
  probe_.SetState(1, CpuProbeState::kVState);
  probe_.OnPacketArrival(1);
  probe_.SetState(1, CpuProbeState::kPState);  // Scheduler restored DP.
  probe_.SetState(1, CpuProbeState::kVState);  // Later yield.
  probe_.OnPacketArrival(1);
  sim_.Run();
  EXPECT_EQ(irq_hits_, 2);
}

TEST_F(HwProbeTest, DisabledProbeIsSilent) {
  probe_.set_enabled(false);
  probe_.SetState(1, CpuProbeState::kVState);
  probe_.OnPacketArrival(1);
  sim_.Run();
  EXPECT_EQ(irq_hits_, 0);
  EXPECT_EQ(probe_.vstate_hits(), 0u);
}

TEST_F(HwProbeTest, StatesAreIndependentPerCpu) {
  probe_.SetState(2, CpuProbeState::kVState);
  probe_.OnPacketArrival(1);  // CPU 1 still P-state.
  sim_.Run();
  EXPECT_EQ(irq_hits_, 0);
  EXPECT_EQ(probe_.state(2), CpuProbeState::kVState);
  EXPECT_EQ(probe_.state(1), CpuProbeState::kPState);
}

}  // namespace
}  // namespace taichi::hw
