// Tests for the Tai Chi facade, IPI orchestrator, and vCPU scheduler on a
// live kernel.
#include "src/taichi/taichi.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/os/behaviors.h"

namespace taichi::core {
namespace {

class TaiChiTest : public ::testing::Test {
 protected:
  TaiChiTest() {
    hw::MachineConfig mcfg;
    mcfg.num_cpus = 6;  // 4 DP + 2 CP.
    machine_ = std::make_unique<hw::Machine>(&sim_, mcfg);
    kernel_ = std::make_unique<os::Kernel>(&sim_, machine_.get(), os::KernelConfig{});
    TaiChiConfig cfg;
    cfg.dp_cpus = os::CpuSet::Range(0, 4);
    cfg.cp_cpus = os::CpuSet::Range(4, 6);
    cfg.num_vcpus = 4;
    taichi_ = std::make_unique<TaiChi>(kernel_.get(), cfg);
    sim_.RunFor(sim::Millis(1));  // vCPU bring-up.
  }

  sim::Simulation sim_;
  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<os::Kernel> kernel_;
  std::unique_ptr<TaiChi> taichi_;
};

TEST_F(TaiChiTest, VcpusComeOnlineAsNativeCpus) {
  EXPECT_EQ(taichi_->pool().size(), 4);
  for (const auto& v : taichi_->pool().vcpus()) {
    EXPECT_TRUE(kernel_->cpu_online(v.cpu));
    EXPECT_EQ(kernel_->cpu_kind(v.cpu), os::CpuKind::kVirtual);
    EXPECT_FALSE(kernel_->cpu_backed(v.cpu));
  }
}

TEST_F(TaiChiTest, CpTaskCpusCoverVcpusAndCpPcpus) {
  os::CpuSet cpus = taichi_->cp_task_cpus();
  EXPECT_EQ(cpus.count(), 6);  // 4 vCPUs + 2 CP pCPUs.
  EXPECT_TRUE(cpus.Test(4));
  EXPECT_TRUE(cpus.Test(5));
  for (const auto& v : taichi_->pool().vcpus()) {
    EXPECT_TRUE(cpus.Test(v.cpu));
  }
  EXPECT_FALSE(cpus.Test(0));  // DP pCPUs are never CP targets.
}

TEST_F(TaiChiTest, HwProbeInstalledIntoAccelerator) {
  EXPECT_EQ(machine_->accelerator().probe(), &machine_->probe());
  EXPECT_TRUE(machine_->probe().enabled());
}

TEST_F(TaiChiTest, TaskOnVcpuRunsViaIdleCpPcpuHosting) {
  // CP pCPUs busy? No — they are idle, so a vCPU-affined task triggers
  // kick -> idle CP pCPU hosts the vCPU.
  os::CpuId vcpu = taichi_->pool().vcpus()[0].cpu;
  os::Task* t = kernel_->Spawn("cp_task",
                               std::make_unique<os::ScriptBehavior>(std::vector<os::Action>{
                                   os::Action::Compute(sim::Millis(2))}),
                               os::CpuSet::Of({vcpu}));
  sim_.RunFor(sim::Millis(10));
  EXPECT_EQ(t->state(), os::TaskState::kExited);
  EXPECT_GT(taichi_->scheduler().switches(), 0u);
}

TEST_F(TaiChiTest, OrchestratorRoutesBootIpis) {
  // Boot IPIs for the 4 vCPUs went through the orchestrator.
  EXPECT_GE(taichi_->orchestrator().routed(), 4u);
}

TEST_F(TaiChiTest, SleepingVcpuWokenByIpi) {
  os::CpuId vcpu = taichi_->pool().vcpus()[1].cpu;
  EXPECT_EQ(taichi_->scheduler().vcpu_state(vcpu), VcpuScheduler::VcpuState::kSleeping);
  kernel_->Spawn("late_task",
                 std::make_unique<os::ScriptBehavior>(std::vector<os::Action>{
                     os::Action::Compute(sim::Micros(100))}),
                 os::CpuSet::Of({vcpu}));
  sim_.RunFor(sim::Millis(5));
  // Work got done: the wake IPI reached the sleeping vCPU through the
  // orchestrator and the scheduler placed it.
  EXPECT_GT(taichi_->orchestrator().sleeping_vcpu_wakes(), 0u);
}

TEST_F(TaiChiTest, IpiFromVcpuTriggersSourceExit) {
  // A task on a vCPU wakes a task pinned to a physical CPU; the wake IPI
  // crosses the virtualization boundary: VM-exit + reissue.
  os::CpuId vcpu = taichi_->pool().vcpus()[0].cpu;
  os::Task* sleeper = kernel_->Spawn(
      "sleeper",
      std::make_unique<os::ScriptBehavior>(std::vector<os::Action>{
          os::Action::Block(), os::Action::Compute(sim::Micros(10))}),
      os::CpuSet::Of({4}));
  sim_.RunFor(sim::Millis(2));
  ASSERT_EQ(sleeper->state(), os::TaskState::kBlocked);

  auto step = std::make_shared<int>(0);
  os::Task* waker = kernel_->Spawn(
      "waker",
      std::make_unique<os::LambdaBehavior>(
          [sleeper, step](os::Kernel& k, os::Task& self,
                          const os::ActionResult&) -> os::Action {
            switch ((*step)++) {
              case 0:
                return os::Action::Compute(sim::Micros(50));
              case 1:
                k.Wake(sleeper, self.cpu());
                return os::Action::Compute(sim::Micros(10));
              default:
                return os::Action::Exit();
            }
          }),
      os::CpuSet::Of({vcpu}));
  sim_.RunFor(sim::Millis(10));
  EXPECT_EQ(waker->state(), os::TaskState::kExited);
  EXPECT_EQ(sleeper->state(), os::TaskState::kExited);
  EXPECT_GE(taichi_->orchestrator().vcpu_source_exits(), 1u);
}

TEST_F(TaiChiTest, SchedulerStatsAccumulate) {
  for (int i = 0; i < 4; ++i) {
    kernel_->Spawn("w" + std::to_string(i),
                   std::make_unique<os::LoopBehavior>(
                       std::vector<os::Action>{os::Action::Compute(sim::Micros(200)),
                                               os::Action::Sleep(sim::Micros(100))},
                       /*iterations=*/200),
                   taichi_->cp_task_cpus());
  }
  sim_.RunFor(sim::Millis(100));
  EXPECT_GT(taichi_->scheduler().switches(), 0u);
  EXPECT_GT(kernel_->guest_entries(), 0u);
  EXPECT_EQ(kernel_->guest_entries(), kernel_->guest_exits());
}

}  // namespace
}  // namespace taichi::core
