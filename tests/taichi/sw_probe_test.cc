#include "src/taichi/sw_probe.h"

#include <gtest/gtest.h>

namespace taichi::core {
namespace {

class SwProbeTest : public ::testing::Test {
 protected:
  SwProbeTest() : probe_(config_) {
    probe_.RegisterDpService(0, [this] { return idle_; });
  }

  TaiChiConfig config_;
  SwWorkloadProbe probe_;
  bool idle_ = true;
};

TEST_F(SwProbeTest, InitialThreshold) {
  EXPECT_EQ(probe_.yield_threshold(0), config_.initial_yield_threshold);
  // Unregistered CPUs report the initial threshold too.
  EXPECT_EQ(probe_.yield_threshold(5), config_.initial_yield_threshold);
}

TEST_F(SwProbeTest, SustainedIdleHalvesDownToMin) {
  for (int i = 0; i < 20; ++i) {
    probe_.OnSustainedIdle(0);
  }
  EXPECT_EQ(probe_.yield_threshold(0), config_.min_yield_threshold);
}

TEST_F(SwProbeTest, FalsePositiveDoublesUpToMax) {
  for (int i = 0; i < 20; ++i) {
    probe_.OnFalsePositive(0);
  }
  EXPECT_EQ(probe_.yield_threshold(0), config_.max_yield_threshold);
}

TEST_F(SwProbeTest, AdaptationConverges) {
  // Alternating signals keep N within bounds.
  for (int i = 0; i < 100; ++i) {
    probe_.OnFalsePositive(0);
    probe_.OnSustainedIdle(0);
    EXPECT_GE(probe_.yield_threshold(0), config_.min_yield_threshold);
    EXPECT_LE(probe_.yield_threshold(0), config_.max_yield_threshold);
  }
}

TEST_F(SwProbeTest, AdaptationCanBeDisabled) {
  TaiChiConfig fixed = config_;
  fixed.adaptive_yield_threshold = false;
  SwWorkloadProbe probe(fixed);
  probe.RegisterDpService(0, [] { return true; });
  probe.OnFalsePositive(0);
  probe.OnSustainedIdle(0);
  EXPECT_EQ(probe.yield_threshold(0), fixed.initial_yield_threshold);
  EXPECT_EQ(probe.false_positives(), 1u);
  EXPECT_EQ(probe.sustained_idles(), 1u);
}

TEST_F(SwProbeTest, IsDpIdleReflectsCallback) {
  idle_ = true;
  EXPECT_TRUE(probe_.IsDpIdle(0));
  idle_ = false;
  EXPECT_FALSE(probe_.IsDpIdle(0));
  EXPECT_FALSE(probe_.IsDpIdle(3));  // No service registered.
}

TEST_F(SwProbeTest, HasDpService) {
  EXPECT_TRUE(probe_.HasDpService(0));
  EXPECT_FALSE(probe_.HasDpService(1));
}

TEST_F(SwProbeTest, PerCpuThresholdsAreIndependent) {
  probe_.RegisterDpService(1, [] { return true; });
  probe_.OnFalsePositive(0);
  EXPECT_GT(probe_.yield_threshold(0), probe_.yield_threshold(1));
}

}  // namespace
}  // namespace taichi::core
