// Tests for §8's on-demand instruction-level auditing.
#include "src/taichi/audit.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/os/behaviors.h"

namespace taichi::core {
namespace {

class AuditTest : public ::testing::Test {
 protected:
  AuditTest() {
    hw::MachineConfig mcfg;
    mcfg.num_cpus = 4;
    machine_ = std::make_unique<hw::Machine>(&sim_, mcfg);
    kernel_ = std::make_unique<os::Kernel>(&sim_, machine_.get(), os::KernelConfig{});
    TaiChiConfig cfg;
    cfg.dp_cpus = os::CpuSet::Range(0, 2);
    cfg.cp_cpus = os::CpuSet::Range(2, 4);
    cfg.num_vcpus = 2;
    taichi_ = std::make_unique<TaiChi>(kernel_.get(), cfg);
    sim_.RunFor(sim::Millis(1));
    audit_ = std::make_unique<AuditDomain>(kernel_.get(), taichi_.get());
  }

  os::Task* SpawnSyscaller(int iterations) {
    return kernel_->Spawn(
        "target",
        std::make_unique<os::LoopBehavior>(
            std::vector<os::Action>{os::Action::Compute(sim::Micros(100)),
                                    os::Action::KernelSection(sim::Micros(50))},
            iterations),
        os::CpuSet::Of({2}));
  }

  sim::Simulation sim_;
  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<os::Kernel> kernel_;
  std::unique_ptr<TaiChi> taichi_;
  std::unique_ptr<AuditDomain> audit_;
};

TEST_F(AuditTest, RecordsPrivilegedOpsOnlyWhileAudited) {
  os::Task* t = SpawnSyscaller(50);
  sim_.RunFor(sim::Millis(2));
  EXPECT_EQ(audit_->privileged_ops(), 0u);  // Not yet audited.

  audit_->StartAudit(t);
  EXPECT_TRUE(audit_->IsAudited(*t));
  sim_.RunFor(sim::Millis(3));
  uint64_t during = audit_->privileged_ops();
  EXPECT_GT(during, 0u);

  audit_->StopAudit(t);
  EXPECT_FALSE(audit_->IsAudited(*t));
  sim_.RunFor(sim::Millis(3));
  EXPECT_EQ(audit_->privileged_ops(), during);  // No records after stop.
}

TEST_F(AuditTest, MigratesIntoVcpuDomainAndBack) {
  os::Task* t = SpawnSyscaller(0);  // Run forever.
  sim_.RunFor(sim::Millis(2));
  EXPECT_EQ(t->cpu(), 2);

  audit_->StartAudit(t);
  sim_.RunFor(sim::Millis(5));
  EXPECT_TRUE(taichi_->vcpu_set().Test(t->cpu()))
      << "audited task must run in a vCPU context, was on " << t->cpu();

  audit_->StopAudit(t);
  sim_.RunFor(sim::Millis(5));
  EXPECT_EQ(t->cpu(), 2);  // Transparently migrated back.
}

TEST_F(AuditTest, RecordsCarryDurations) {
  os::Task* t = SpawnSyscaller(20);
  audit_->StartAudit(t);
  sim_.RunFor(sim::Millis(10));
  ASSERT_FALSE(audit_->records().empty());
  for (const AuditRecord& rec : audit_->records()) {
    EXPECT_EQ(rec.task, t->id());
    if (rec.op == os::Action::Type::kKernelSection) {
      EXPECT_EQ(rec.duration, sim::Micros(50));
    }
  }
}

TEST_F(AuditTest, AuditedTaskStillCompletes) {
  os::Task* t = SpawnSyscaller(30);
  audit_->StartAudit(t);
  sim_.RunFor(sim::Millis(50));
  EXPECT_EQ(t->state(), os::TaskState::kExited);
  // 30 iterations, each with one kernel section; lock ops not used here.
  uint64_t sections = 0;
  for (const AuditRecord& rec : audit_->records()) {
    if (rec.op == os::Action::Type::kKernelSection) {
      ++sections;
    }
  }
  EXPECT_GT(sections, 20u);  // Most iterations ran under audit.
}

TEST_F(AuditTest, DoubleStartAndStopAreIdempotent) {
  os::Task* t = SpawnSyscaller(0);
  audit_->StartAudit(t);
  audit_->StartAudit(t);
  EXPECT_EQ(audit_->audited_count(), 1u);
  audit_->StopAudit(t);
  audit_->StopAudit(t);
  EXPECT_EQ(audit_->audited_count(), 0u);
  sim_.RunFor(sim::Millis(5));
  EXPECT_EQ(t->cpu(), 2);  // Original affinity survived the double cycle.
}

}  // namespace
}  // namespace taichi::core
