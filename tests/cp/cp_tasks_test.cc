// Tests for the control-plane task models: profiles, synth_cp, device
// manager (VM startup) and monitors.
#include <gtest/gtest.h>

#include <memory>

#include "src/cp/cp_profiles.h"
#include "src/cp/device_manager.h"
#include "src/cp/monitor.h"
#include "src/cp/synth_cp.h"
#include "src/hw/machine.h"
#include "src/os/kernel.h"

namespace taichi::cp {
namespace {

class CpTest : public ::testing::Test {
 protected:
  CpTest() {
    hw::MachineConfig mcfg;
    mcfg.num_cpus = 4;
    machine_ = std::make_unique<hw::Machine>(&sim_, mcfg);
    kernel_ = std::make_unique<os::Kernel>(&sim_, machine_.get(), os::KernelConfig{});
  }

  sim::Simulation sim_;
  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<os::Kernel> kernel_;
};

TEST(RoutineSamplerTest, MatchesFig5Mixture) {
  CpWorkProfile profile;  // Defaults follow Fig. 5.
  sim::Rng rng(7);
  int total = 200000;
  int over_1ms = 0;
  int band_1_5 = 0;
  double max_ms = 0;
  for (int i = 0; i < total; ++i) {
    double ms = sim::ToMillis(SampleRoutineDuration(profile, rng));
    max_ms = std::max(max_ms, ms);
    if (ms >= 1.0) {
      ++over_1ms;
      if (ms < 5.0) {
        ++band_1_5;
      }
    }
  }
  // ~10% of routines are long; of those ~94.5% in 1-5 ms; max near 67 ms.
  EXPECT_NEAR(static_cast<double>(over_1ms) / total, 0.10, 0.02);
  EXPECT_NEAR(static_cast<double>(band_1_5) / over_1ms, 0.945, 0.02);
  EXPECT_GT(max_ms, 30.0);
  EXPECT_LE(max_ms, 67.0 + 1e-6);
}

TEST_F(CpTest, CpTaskRunsIterations) {
  CpWorkProfile profile;
  profile.user_compute_mean = sim::Micros(50);
  profile.short_routine_prob = 1.0;
  profile.short_max = sim::Micros(20);
  auto behavior = MakeCpTask(profile, /*iterations=*/10, 3);
  CpTaskBehavior* raw = behavior.get();
  os::Task* t = kernel_->Spawn("cp", std::move(behavior), os::CpuSet::Of({0}));
  sim_.RunFor(sim::Millis(50));
  EXPECT_EQ(t->state(), os::TaskState::kExited);
  EXPECT_EQ(raw->completed_iterations(), 10u);
}

TEST_F(CpTest, CpTaskUsesLockWhenConfigured) {
  os::KernelSpinlock lock("driver");
  CpWorkProfile profile;
  profile.user_compute_mean = sim::Micros(20);
  profile.short_routine_prob = 1.0;
  profile.short_max = sim::Micros(20);
  profile.lock = &lock;
  profile.lock_prob = 1.0;
  os::Task* t = kernel_->Spawn("cp", MakeCpTask(profile, 5, 3), os::CpuSet::Of({0}));
  sim_.RunFor(sim::Millis(50));
  EXPECT_EQ(t->state(), os::TaskState::kExited);
  EXPECT_EQ(lock.acquisitions(), 5u);
  EXPECT_FALSE(lock.held());
}

TEST_F(CpTest, SynthCpTaskDemandMatchesConfig) {
  SynthCpConfig cfg;
  cfg.task_demand = sim::Millis(50);
  SynthCpBenchmark bench(kernel_.get(), cfg, 7);
  bench.Launch(1, os::CpuSet::Of({0}));
  sim_.RunFor(sim::Millis(200));
  ASSERT_TRUE(bench.AllDone());
  // One task alone on a CPU: execution time ~ demand (plus small overheads).
  EXPECT_NEAR(bench.exec_time_ms().mean(), 50.0, 2.5);
}

TEST_F(CpTest, SynthCpConcurrencyQueues) {
  SynthCpBenchmark bench(kernel_.get(), SynthCpConfig{}, 7);
  bench.Launch(8, os::CpuSet::Of({0, 1}));  // 8 tasks, 2 CPUs.
  sim_.RunFor(sim::Seconds(2));
  ASSERT_TRUE(bench.AllDone());
  // Round-robin sharing: everyone takes ~4x as long as alone.
  EXPECT_GT(bench.exec_time_ms().mean(), 150.0);
  EXPECT_EQ(bench.done(), 8);
}

TEST_F(CpTest, VmStartupWorkflowCompletes) {
  DeviceManager dm(kernel_.get(), VmStartupConfig{}, 5);
  bool done = false;
  sim::Duration latency = 0;
  dm.StartVm(os::CpuSet::Of({0}), [&](sim::Duration d) {
    done = true;
    latency = d;
  });
  sim_.RunFor(sim::Seconds(1));
  EXPECT_TRUE(done);
  EXPECT_TRUE(dm.AllDone());
  // 6 devices x (1ms user + ~0.4ms kernel + 0.12ms coord) + parse + notify.
  EXPECT_GT(sim::ToMillis(latency), 5.0);
  EXPECT_LT(sim::ToMillis(latency), 20.0);
  EXPECT_EQ(dm.startup_ms().count(), 1u);
}

TEST_F(CpTest, VmStartupScalesWithDevices) {
  VmStartupConfig small;
  small.devices_per_vm = 4;
  VmStartupConfig large;
  large.devices_per_vm = 16;
  DeviceManager dm_small(kernel_.get(), small, 5);
  DeviceManager dm_large(kernel_.get(), large, 5);
  dm_small.StartVm(os::CpuSet::Of({0}));
  dm_large.StartVm(os::CpuSet::Of({1}));
  sim_.RunFor(sim::Seconds(1));
  ASSERT_TRUE(dm_small.AllDone());
  ASSERT_TRUE(dm_large.AllDone());
  EXPECT_GT(dm_large.startup_ms().mean(), dm_small.startup_ms().mean() * 2.5);
}

TEST_F(CpTest, ConcurrentStartupsContendOnDriverLocks) {
  VmStartupConfig cfg;
  cfg.lock_shards = 1;  // Worst case: one global driver lock.
  cfg.dev_kernel_min = sim::Millis(1);
  cfg.dev_kernel_max = sim::Millis(1);
  DeviceManager dm(kernel_.get(), cfg, 5);
  for (int i = 0; i < 4; ++i) {
    dm.StartVm(os::CpuSet::Of({i}));
  }
  sim_.RunFor(sim::Seconds(2));
  ASSERT_TRUE(dm.AllDone());
  // Serialized kernel sections push the average well beyond the solo time.
  DeviceManager solo(kernel_.get(), cfg, 6);
  solo.StartVm(os::CpuSet::Of({0}));
  sim_.RunFor(sim::Seconds(1));
  ASSERT_TRUE(solo.AllDone());
  EXPECT_GT(dm.startup_ms().mean(), solo.startup_ms().mean() * 1.5);
}

TEST_F(CpTest, MonitorFleetStaysResident) {
  MonitorFleetConfig cfg;
  cfg.count = 3;
  auto tasks = SpawnMonitorFleet(kernel_.get(), cfg, os::CpuSet::Of({0, 1}), nullptr, 11);
  ASSERT_EQ(tasks.size(), 3u);
  sim_.RunFor(sim::Millis(200));
  for (os::Task* t : tasks) {
    EXPECT_NE(t->state(), os::TaskState::kExited);
    EXPECT_GT(t->cpu_time(), 0u);
  }
}

}  // namespace
}  // namespace taichi::cp
