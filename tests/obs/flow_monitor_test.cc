// FlowMonitor: the bundled sketch facade. Pins the determinism contract
// (same seed + same stream -> byte-identical JSON), the fleet roll-up
// algebra (commutative merge, shard-then-merge totals equal to a direct
// run), heavy-hitter recall on skewed traffic, and metrics registration.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/flow_monitor.h"
#include "src/obs/metrics.h"
#include "src/obs/sketch/sketch_hash.h"

namespace taichi::obs {
namespace {

FlowKey Key(uint32_t i) {
  FlowKey k;
  k.src_ip = 0x0a000000u | (i & 0xffffffu);
  k.dst_ip = 0x0a800001u;
  k.src_port = static_cast<uint16_t>(1024 + i % 60000);
  k.dst_port = 443;
  k.proto = kProtoTcp;
  return k;
}

// Deterministic Zipf-ish stream: packet n belongs to flow rank
// floor(pow(n-hash-derived-uniform, skew) scaled), mirroring how the
// dp::OpenLoopSource synthesizes flow identity (counter-hash, no RNG).
uint32_t FlowOf(uint64_t n, uint32_t flows, double skew) {
  const uint64_t h = sketch::Mix64(n ^ 0x9e3779b97f4a7c15ULL);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  const double r = std::pow(static_cast<double>(flows), std::pow(u, skew));
  uint64_t rank = r < 1.0 ? 0 : static_cast<uint64_t>(r) - 1;
  if (rank >= flows) {
    rank = flows - 1;
  }
  return static_cast<uint32_t>(rank);
}

TEST(FlowMonitor, SameSeedSameStreamIsByteIdentical) {
  FlowMonitorConfig cfg;
  FlowMonitor a(cfg), b(cfg);
  for (uint64_t n = 0; n < 20000; ++n) {
    const FlowKey k = Key(FlowOf(n, 5000, 1.3));
    a.OnPacket(k, 64 + n % 1400);
    b.OnPacket(k, 64 + n % 1400);
  }
  EXPECT_EQ(a.ToJson(), b.ToJson());
  EXPECT_DOUBLE_EQ(a.DistinctFlows(), b.DistinctFlows());
}

TEST(FlowMonitor, MergeIsCommutative) {
  FlowMonitorConfig cfg;
  FlowMonitor a(cfg), b(cfg);
  for (uint64_t n = 0; n < 10000; ++n) {
    (n % 3 ? a : b).OnPacket(Key(FlowOf(n, 2000, 1.3)), 200);
  }
  FlowMonitor ab = a, ba = b;
  ASSERT_TRUE(ab.Merge(b));
  ASSERT_TRUE(ba.Merge(a));
  EXPECT_EQ(ab.ToJson(), ba.ToJson());
  EXPECT_EQ(ab.total_bytes(), ba.total_bytes());
  EXPECT_DOUBLE_EQ(ab.DistinctFlows(), ba.DistinctFlows());
}

TEST(FlowMonitor, ShardThenMergeMatchesDirect) {
  // Simulates the fleet roll-up: four "nodes" each see a slice of the
  // stream; their merged monitor must report the same exact totals as one
  // monitor that saw everything, the identical distinct-flow estimate
  // (register-max is exact), and per-flow estimates that never drop below
  // the true counts (conservative update makes merged vs direct cells
  // incomparable, but both stay upper bounds of the truth).
  FlowMonitorConfig cfg;
  FlowMonitor direct(cfg);
  std::vector<FlowMonitor> nodes(4, FlowMonitor(cfg));
  constexpr uint32_t kFlows = 8000;
  std::vector<uint64_t> truth(kFlows, 0);
  for (uint64_t n = 0; n < 40000; ++n) {
    const uint32_t f = FlowOf(n, kFlows, 1.3);
    const FlowKey k = Key(f);
    const uint32_t bytes = 64 + n % 1400;
    truth[f] += bytes;
    nodes[n % 4].OnPacket(k, bytes);
    direct.OnPacket(k, bytes);
  }
  FlowMonitor fleet(cfg);
  for (const FlowMonitor& node : nodes) {
    ASSERT_TRUE(fleet.Merge(node));
  }
  EXPECT_EQ(fleet.total_packets(), direct.total_packets());
  EXPECT_EQ(fleet.total_bytes(), direct.total_bytes());
  EXPECT_DOUBLE_EQ(fleet.DistinctFlows(), direct.DistinctFlows());
  for (uint32_t i = 0; i < 200; ++i) {
    EXPECT_GE(fleet.Query(Key(i)).bytes, truth[i]) << i;
    EXPECT_GE(direct.Query(Key(i)).bytes, truth[i]) << i;
  }
}

TEST(FlowMonitor, MergeRefusesIncompatibleConfigs) {
  FlowMonitorConfig cfg, other;
  other.seed = 0xdeadbeefULL;
  FlowMonitor a(cfg), b(other);
  a.OnPacket(Key(1), 100);
  const std::string before = a.ToJson();
  EXPECT_FALSE(a.Compatible(b));
  EXPECT_FALSE(a.Merge(b));
  EXPECT_EQ(a.ToJson(), before);
}

TEST(FlowMonitor, TopKRecallOnSkewedStream) {
  // 100k packets over 10k flows, Zipf-skewed. The true top flows by bytes
  // are known exactly (uniform packet size); the monitor must recover at
  // least 90% of the top 16 from constant space.
  FlowMonitorConfig cfg;
  FlowMonitor fm(cfg);
  constexpr uint32_t kFlows = 10000;
  std::vector<uint64_t> truth(kFlows, 0);
  for (uint64_t n = 0; n < 100000; ++n) {
    const uint32_t f = FlowOf(n, kFlows, 1.3);
    truth[f] += 1000;
    fm.OnPacket(Key(f), 1000);
  }
  std::vector<uint32_t> order(kFlows);
  for (uint32_t i = 0; i < kFlows; ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(),
            [&](uint32_t a, uint32_t b) { return truth[a] > truth[b]; });
  const auto top = fm.TopK(16);
  ASSERT_EQ(top.size(), 16u);
  int hits = 0;
  for (const auto& e : top) {
    for (size_t t = 0; t < 16; ++t) {
      if (e.key == Key(order[t])) {
        ++hits;
        break;
      }
    }
  }
  EXPECT_GE(hits, 15) << "top-16 recall below 0.9";
  // Reported byte counts are upper bounds with bounded error.
  for (const auto& e : top) {
    EXPECT_GE(e.bytes, e.error);
  }
}

TEST(FlowMonitor, RegistersAndUnregistersMetrics) {
  FlowMonitorConfig cfg;
  FlowMonitor fm(cfg);
  std::vector<bool> seen(50, false);
  for (uint64_t n = 0; n < 300; ++n) {
    const uint32_t f = FlowOf(n, 50, 1.3);
    seen[f] = true;
    fm.OnPacket(Key(f), 500);
  }
  // The skewed synthesizer does not necessarily hit every rank in 300
  // draws: compare against the stream's true distinct count.
  const double true_distinct =
      static_cast<double>(std::count(seen.begin(), seen.end(), true));
  MetricsRegistry reg;
  fm.RegisterMetrics(reg, "flows.dp.");
  const MetricsSnapshot snap = reg.Snapshot(0);
  const MetricSample* distinct = snap.Find("flows.dp.distinct_flows");
  ASSERT_NE(distinct, nullptr);
  EXPECT_NEAR(distinct->value, true_distinct, 3.0);
  const MetricSample* packets = snap.Find("flows.dp.total_packets");
  ASSERT_NE(packets, nullptr);
  EXPECT_EQ(packets->count, 300u);
  const MetricSample* bytes = snap.Find("flows.dp.total_bytes");
  ASSERT_NE(bytes, nullptr);
  EXPECT_EQ(bytes->count, 300u * 500u);
  ASSERT_NE(snap.Find("flows.dp.cms_epsilon"), nullptr);
  ASSERT_NE(snap.Find("flows.dp.heavy_evictions"), nullptr);
  reg.RemovePrefix("flows.dp.");
  EXPECT_EQ(reg.size(), 0u);
}

TEST(FlowMonitor, ToJsonNamesHeavyFlows) {
  FlowMonitor fm((FlowMonitorConfig{}));
  for (int i = 0; i < 10; ++i) {
    fm.OnPacket(Key(7), 1500);
  }
  const std::string json = fm.ToJson(4);
  EXPECT_NE(json.find("\"top\": ["), std::string::npos) << json;
  EXPECT_NE(json.find(Key(7).ToString()), std::string::npos) << json;
  EXPECT_NE(json.find("\"cms\": "), std::string::npos);
  EXPECT_NE(json.find("\"hll\": "), std::string::npos);
}

}  // namespace
}  // namespace taichi::obs
