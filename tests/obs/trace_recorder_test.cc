// TraceRecorder: ring-buffer semantics, Chrome JSON export and end-to-end
// trace determinism on the full testbed.
#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>

#include "src/exp/testbed.h"
#include "src/obs/observability.h"
#include "src/sim/time.h"

namespace taichi::obs {
namespace {

// ---- A minimal JSON well-formedness checker (no external deps). It walks
// the grammar and, as a side effect, counts "tid": values at event objects.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Parse() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == s_.size();
  }

  const std::map<long, int>& tid_counts() const { return tid_counts_; }

 private:
  bool Value() {
    if (pos_ >= s_.size()) {
      return false;
    }
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String(nullptr);
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number(nullptr);
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (!String(&key)) {
        return false;
      }
      SkipWs();
      if (Peek() != ':') {
        return false;
      }
      ++pos_;
      SkipWs();
      if (key == "tid") {
        double tid = 0;
        if (!Number(&tid)) {
          return false;
        }
        ++tid_counts_[static_cast<long>(tid)];
      } else if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String(std::string* out) {
    if (Peek() != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) {
          return false;
        }
      }
      if (out != nullptr) {
        out->push_back(s_[pos_]);
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) {
      return false;
    }
    ++pos_;  // closing '"'
    return true;
  }

  bool Number(double* out) {
    size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return false;
    }
    if (out != nullptr) {
      *out = std::stod(s_.substr(start, pos_ - start));
    }
    return true;
  }

  bool Literal(const char* lit) {
    size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) {
      return false;
    }
    pos_ += n;
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
  std::map<long, int> tid_counts_;
};

TEST(TraceRecorderTest, DisabledRecorderEmitsNothing) {
  TraceRecorder rec(16);
  EXPECT_FALSE(rec.enabled());
  rec.Instant(10, 0, TraceCategory::kSched, "x");
  rec.Begin(20, 1, TraceCategory::kVirt, "span");
  rec.End(30, 1);
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.total_emitted(), 0u);
}

TEST(TraceRecorderTest, RecordsAllPhases) {
  TraceRecorder rec(16);
  rec.set_enabled(true);
  rec.Instant(10, 2, TraceCategory::kIpi, "ipi_send", 7, 1);
  rec.Begin(20, 3, TraceCategory::kSched, "task_a", 5);
  rec.End(35, 3);
  rec.Complete(40, 12, 1001, TraceCategory::kAccel, "transfer", 99);

  std::vector<TraceEvent> events = rec.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].phase, 'i');
  EXPECT_EQ(events[0].ts, 10u);
  EXPECT_EQ(events[0].track, 2);
  EXPECT_EQ(events[0].name, "ipi_send");
  EXPECT_EQ(events[0].arg0, 7u);
  EXPECT_EQ(events[0].arg1, 1u);
  EXPECT_EQ(events[1].phase, 'B');
  EXPECT_EQ(events[2].phase, 'E');
  EXPECT_EQ(events[3].phase, 'X');
  EXPECT_EQ(events[3].dur, 12u);
  EXPECT_EQ(events[3].track, 1001);

  std::vector<TraceEvent> t3 = rec.EventsForTrack(3);
  ASSERT_EQ(t3.size(), 2u);
  EXPECT_EQ(t3[0].phase, 'B');
  EXPECT_EQ(t3[1].phase, 'E');
}

TEST(TraceRecorderTest, RingOverwritesOldestFirst) {
  TraceRecorder rec(4);
  rec.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    rec.Instant(i, 0, TraceCategory::kSched, "e", static_cast<uint64_t>(i));
  }
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.total_emitted(), 10u);
  EXPECT_EQ(rec.overwritten(), 6u);

  // The survivors are the newest four, oldest first.
  std::vector<TraceEvent> events = rec.Events();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].arg0, static_cast<uint64_t>(6 + i));
  }
}

TEST(TraceRecorderTest, ClearResetsBufferButKeepsTrackNames) {
  TraceRecorder rec(8);
  rec.set_enabled(true);
  rec.SetTrackName(0, "cpu0 (DP)");
  rec.Instant(1, 0, TraceCategory::kSched, "e");
  rec.Clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.total_emitted(), 0u);
  EXPECT_EQ(rec.track_names().at(0), "cpu0 (DP)");
}

TEST(TraceRecorderTest, ChromeJsonIsWellFormed) {
  TraceRecorder rec(64);
  rec.set_enabled(true);
  rec.SetTrackName(0, "cpu0 \"DP\"");  // Quotes must be escaped.
  rec.Instant(1500, 0, TraceCategory::kIrq, "irq", 32);
  rec.Begin(2000, 1, TraceCategory::kSched, "task", 4);
  rec.End(2750, 1);
  rec.Complete(3000, 500, 1000, TraceCategory::kAccel, "preprocess", 1, 2);

  std::string json = rec.ToChromeJson();
  JsonChecker checker(json);
  ASSERT_TRUE(checker.Parse()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // ts is exported in microseconds with ns precision: 1500 ns -> 1.500.
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":0.500"), std::string::npos);
  EXPECT_NE(json.find("cpu0 \\\"DP\\\""), std::string::npos);
}

TEST(TraceRecorderTest, WriteChromeJsonRoundTrip) {
  TraceRecorder rec(16);
  rec.set_enabled(true);
  rec.Instant(100, 0, TraceCategory::kDp, "dp_burst", 8, 512);
  std::string path = testing::TempDir() + "/trace_test.json";
  ASSERT_TRUE(rec.WriteChromeJson(path));
  std::ifstream f(path);
  std::string body((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  EXPECT_EQ(body, rec.ToChromeJson());
  std::remove(path.c_str());
}

// ---- End-to-end: a traced testbed run produces well-formed Chrome JSON
// with events on every simulated CPU track, and is bit-identical across
// same-seed runs.

std::string RunTracedTestbed(uint64_t seed) {
  exp::TestbedConfig cfg;
  cfg.mode = exp::Mode::kTaiChi;
  cfg.seed = seed;
  exp::Testbed bed(cfg);
  Observability obs;
  obs.trace.set_enabled(true);
  bed.AttachObservability(&obs);
  bed.StartBackgroundBurstyLoad(0.3, 256);
  bed.SpawnBackgroundCp();
  bed.device_manager().StartVm(bed.cp_task_cpus());
  bed.sim().RunFor(sim::Millis(20));
  return obs.trace.ToChromeJson();
}

TEST(TraceRecorderTest, TestbedTraceCoversEveryCpuTrack) {
  std::string json = RunTracedTestbed(42);
  JsonChecker checker(json);
  ASSERT_TRUE(checker.Parse());
  // Every physical CPU (tracks 0..11) must carry at least one event beyond
  // its metadata record (metadata also carries "tid", so require >= 2).
  for (long track = 0; track < 12; ++track) {
    auto it = checker.tid_counts().find(track);
    ASSERT_NE(it, checker.tid_counts().end()) << "no events on track " << track;
    EXPECT_GE(it->second, 2) << "only metadata on track " << track;
  }
  // vCPU tracks (12..19) fill in only when Tai Chi lends cycles; under 30%
  // bursty DP load with background CP pressure at least one must fire.
  int vcpu_events = 0;
  for (long track = 12; track < 20; ++track) {
    auto it = checker.tid_counts().find(track);
    if (it != checker.tid_counts().end() && it->second >= 2) {
      ++vcpu_events;
    }
  }
  EXPECT_GE(vcpu_events, 1);
  // Accelerator queue tracks carry the pipeline stages.
  EXPECT_TRUE(checker.tid_counts().contains(1000));
}

TEST(TraceRecorderTest, SameSeedRunsProduceIdenticalTraces) {
  std::string a = RunTracedTestbed(7);
  std::string b = RunTracedTestbed(7);
  EXPECT_EQ(a, b);
  std::string c = RunTracedTestbed(8);
  EXPECT_NE(a, c);  // Different seed actually changes the schedule.
}

}  // namespace
}  // namespace taichi::obs
