// MetricsRegistry: registration, snapshotting and JSON/CSV export.
#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace taichi::obs {
namespace {

TEST(MetricsRegistryTest, SnapshotReflectsLiveMetrics) {
  sim::Counter packets;
  sim::Summary latency;
  double load = 0.25;

  MetricsRegistry registry;
  registry.AddCounter("dp.packets", &packets);
  registry.AddSummary("dp.latency_us", &latency);
  registry.AddGauge("dp.load", [&load] { return load; });
  EXPECT_EQ(registry.size(), 3u);
  EXPECT_TRUE(registry.Has("dp.packets"));
  EXPECT_FALSE(registry.Has("dp.bytes"));

  packets.Inc(7);
  latency.Add(10.0);
  latency.Add(30.0);

  MetricsSnapshot snap = registry.Snapshot(sim::Micros(5));
  EXPECT_EQ(snap.at, sim::Micros(5));
  ASSERT_EQ(snap.samples.size(), 3u);

  const MetricSample* c = snap.Find("dp.packets");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind, MetricSample::Kind::kCounter);
  EXPECT_EQ(c->count, 7u);

  const MetricSample* s = snap.Find("dp.latency_us");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->kind, MetricSample::Kind::kSummary);
  EXPECT_EQ(s->count, 2u);
  EXPECT_DOUBLE_EQ(s->min, 10.0);
  EXPECT_DOUBLE_EQ(s->max, 30.0);
  EXPECT_DOUBLE_EQ(s->mean, 20.0);

  const MetricSample* g = snap.Find("dp.load");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->kind, MetricSample::Kind::kGauge);
  EXPECT_DOUBLE_EQ(g->value, 0.25);

  // The snapshot is a copy: later mutation does not affect it, but a new
  // snapshot sees the fresh values.
  packets.Inc(3);
  EXPECT_EQ(snap.Find("dp.packets")->count, 7u);
  EXPECT_EQ(registry.Snapshot(0).Find("dp.packets")->count, 10u);
}

TEST(MetricsRegistryTest, CounterFnAndHistogram) {
  sim::Counter a, b;
  a.Inc(2);
  b.Inc(5);
  sim::Histogram hist(0.0, 100.0, 4);
  hist.Add(10.0);   // bin 0.
  hist.Add(60.0);   // bin 2.
  hist.Add(-1.0);   // underflow.
  hist.Add(500.0);  // overflow.

  MetricsRegistry registry;
  registry.AddCounterFn("total", [&] { return a.value() + b.value(); });
  registry.AddHistogram("hist", &hist);

  MetricsSnapshot snap = registry.Snapshot(0);
  EXPECT_EQ(snap.Find("total")->count, 7u);

  const MetricSample* h = snap.Find("hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->kind, MetricSample::Kind::kHistogram);
  ASSERT_EQ(h->bins.size(), 4u);
  EXPECT_EQ(h->bins[0].count, 1u);
  EXPECT_EQ(h->bins[2].count, 1u);
  EXPECT_DOUBLE_EQ(h->bins[2].lo, 50.0);
  EXPECT_DOUBLE_EQ(h->bins[2].hi, 75.0);
  EXPECT_EQ(h->underflow, 1u);
  EXPECT_EQ(h->overflow, 1u);
}

TEST(MetricsRegistryTest, RemoveAndRemovePrefix) {
  sim::Counter c;
  MetricsRegistry registry;
  registry.AddCounter("a.x", &c);
  registry.AddCounter("a.y", &c);
  registry.AddCounter("b.x", &c);

  registry.Remove("a.x");
  EXPECT_FALSE(registry.Has("a.x"));
  EXPECT_EQ(registry.size(), 2u);

  registry.RemovePrefix("a.");
  EXPECT_FALSE(registry.Has("a.y"));
  EXPECT_TRUE(registry.Has("b.x"));
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistryTest, DuplicateRegistrationReplaces) {
  sim::Counter first, second;
  first.Inc(1);
  second.Inc(2);
  MetricsRegistry registry;
  registry.AddCounter("dup", &first);
  registry.AddCounter("dup", &second);  // Logs a TAICHI_ERROR, replaces.
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.Snapshot(0).Find("dup")->count, 2u);
}

TEST(MetricsRegistryTest, JsonExportContainsAllMetrics) {
  sim::Counter c;
  c.Inc(42);
  sim::Summary s;
  s.Add(3.5);
  MetricsRegistry registry;
  registry.AddCounter("kernel.ipis", &c);
  registry.AddSummary("lat", &s);

  std::string json = registry.Snapshot(sim::Millis(2)).ToJson();
  EXPECT_NE(json.find("\"at_ns\": 2000000"), std::string::npos);
  EXPECT_NE(json.find("\"kernel.ipis\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"counter\""), std::string::npos);
  EXPECT_NE(json.find("42"), std::string::npos);
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"summary\""), std::string::npos);
  // Balanced braces (cheap structural sanity; full parse happens in the
  // trace test's JSON checker).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(MetricsRegistryTest, CsvExportRoundTrip) {
  sim::Counter c;
  c.Inc(9);
  sim::Summary s;
  s.Add(1.0);
  s.Add(2.0);
  MetricsRegistry registry;
  registry.AddCounter("pkts", &c);
  registry.AddSummary("lat_us", &s);

  std::string csv = registry.Snapshot(0).ToCsv();
  std::istringstream lines(csv);
  std::string header, row1, row2;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_EQ(header, "name,kind,count,value,min,mean,max,p50,p90,p99,sum");
  ASSERT_TRUE(std::getline(lines, row1));
  ASSERT_TRUE(std::getline(lines, row2));
  EXPECT_EQ(row1.substr(0, row1.find(',')), "lat_us");  // Sorted by name.
  EXPECT_EQ(row2.substr(0, row2.find(',')), "pkts");
  EXPECT_NE(row2.find("counter,9"), std::string::npos);
}

TEST(MetricsRegistryTest, WriteFilePicksFormatByExtension) {
  sim::Counter c;
  c.Inc(1);
  MetricsRegistry registry;
  registry.AddCounter("c", &c);
  MetricsSnapshot snap = registry.Snapshot(0);

  std::string json_path = testing::TempDir() + "/metrics_test.json";
  std::string csv_path = testing::TempDir() + "/metrics_test.csv";
  ASSERT_TRUE(snap.WriteFile(json_path));
  ASSERT_TRUE(snap.WriteFile(csv_path));

  std::ifstream jf(json_path);
  std::string json((std::istreambuf_iterator<char>(jf)), std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);

  std::ifstream cf(csv_path);
  std::string first_line;
  ASSERT_TRUE(std::getline(cf, first_line));
  EXPECT_EQ(first_line.substr(0, 5), "name,");

  std::remove(json_path.c_str());
  std::remove(csv_path.c_str());
}

}  // namespace
}  // namespace taichi::obs
