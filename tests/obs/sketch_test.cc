// Sketch layer: count-min overestimate-only + conservative update, HLL
// error bounds, space-saving admission/eviction, and the merge algebra the
// fleet roll-up depends on (commutativity, node-then-fleet == direct where
// the structure guarantees it).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/obs/sketch/count_min.h"
#include "src/obs/sketch/hyperloglog.h"
#include "src/obs/sketch/space_saving.h"

namespace taichi::obs {
namespace {

using sketch::CountMinConfig;
using sketch::CountMinSketch;
using sketch::HashKey;
using sketch::HyperLogLog;
using sketch::HyperLogLogConfig;
using sketch::SpaceSaving;
using sketch::SpaceSavingConfig;

FlowKey Key(uint32_t i) {
  FlowKey k;
  k.src_ip = 0x0a000000u | (i & 0xffffffu);
  k.dst_ip = 0x0a800001u;
  k.src_port = static_cast<uint16_t>(1024 + i % 60000);
  k.dst_port = 443;
  k.proto = kProtoTcp;
  return k;
}

// --- Count-min -----------------------------------------------------------

TEST(CountMin, ExactWhenSparse) {
  CountMinSketch cms(CountMinConfig{});
  for (uint32_t i = 0; i < 100; ++i) {
    for (uint32_t r = 0; r <= i % 3; ++r) {
      cms.Update(Key(i), 100 + i);
    }
  }
  for (uint32_t i = 0; i < 100; ++i) {
    const auto est = cms.Query(Key(i));
    EXPECT_EQ(est.packets, i % 3 + 1) << i;
    EXPECT_EQ(est.bytes, static_cast<uint64_t>(i % 3 + 1) * (100 + i)) << i;
  }
  EXPECT_EQ(cms.total_packets(), 199u);  // 34*1 + 33*2 + 33*3.
}

TEST(CountMin, OverestimateOnlyUnderHeavyCollisions) {
  // Adversarial regime: far more keys than counters, so every cell is
  // polluted. The estimate must still never fall below the truth.
  CountMinConfig cfg;
  cfg.width = 64;
  cfg.depth = 2;
  CountMinSketch cms(cfg);
  constexpr uint32_t kKeys = 20000;
  for (uint32_t i = 0; i < kKeys; ++i) {
    cms.Update(Key(i), 64);
  }
  for (uint32_t i = 0; i < 500; ++i) {
    const auto est = cms.Query(Key(i));
    EXPECT_GE(est.packets, 1u) << i;
    EXPECT_GE(est.bytes, 64u) << i;
  }
  EXPECT_EQ(cms.total_packets(), kKeys);
  EXPECT_EQ(cms.total_bytes(), uint64_t{kKeys} * 64);
}

TEST(CountMin, SameSeedSameStreamIsByteIdentical) {
  CountMinSketch a((CountMinConfig{})), b((CountMinConfig{}));
  for (uint32_t i = 0; i < 5000; ++i) {
    a.Update(Key(i % 700), 64 + i % 9);
    b.Update(Key(i % 700), 64 + i % 9);
  }
  EXPECT_EQ(a.ToJson(), b.ToJson());
  for (uint32_t i = 0; i < 700; ++i) {
    EXPECT_EQ(a.Query(Key(i)).bytes, b.Query(Key(i)).bytes);
  }
}

TEST(CountMin, MergeCommutesAndUpperBoundsTruth) {
  // Conservative update is stream-order dependent, so a merge of shards is
  // not cell-comparable to one sketch that saw everything (shard cells can
  // be tighter) — but cell-wise addition must commute exactly, and both the
  // merged and the direct sketch must stay upper bounds of the truth.
  CountMinConfig cfg;
  cfg.width = 256;
  cfg.depth = 4;
  CountMinSketch a(cfg), b(cfg), direct(cfg);
  uint64_t truth[900] = {};
  for (uint32_t i = 0; i < 4000; ++i) {
    const uint32_t key = i % 900;
    truth[key] += 80;
    (key < 450 ? a : b).Update(Key(key), 80);
    direct.Update(Key(key), 80);
  }
  CountMinSketch ab = a, ba = b;
  ASSERT_TRUE(ab.Merge(b));
  ASSERT_TRUE(ba.Merge(a));
  EXPECT_EQ(ab.ToJson(), ba.ToJson());
  for (uint32_t key = 0; key < 900; ++key) {
    const auto x = ab.Query(Key(key));
    EXPECT_EQ(x.bytes, ba.Query(Key(key)).bytes) << key;
    EXPECT_GE(x.bytes, truth[key]) << key;
    EXPECT_GE(direct.Query(Key(key)).bytes, truth[key]) << key;
  }
  EXPECT_EQ(ab.total_packets(), direct.total_packets());
  EXPECT_EQ(ab.total_bytes(), direct.total_bytes());
}

TEST(CountMin, MergeRefusesIncompatibleShapes) {
  CountMinConfig narrow;
  narrow.width = 128;
  CountMinSketch a((CountMinConfig{})), b(narrow);
  a.Update(Key(1), 64);
  const std::string before = a.ToJson();
  EXPECT_FALSE(a.Merge(b));
  EXPECT_EQ(a.ToJson(), before);
}

// --- HyperLogLog ---------------------------------------------------------

TEST(Hll, ErrorBoundHoldsAtScale) {
  HyperLogLog hll(HyperLogLogConfig{});
  constexpr uint32_t kDistinct = 100000;
  for (uint32_t i = 0; i < kDistinct; ++i) {
    hll.Observe(Key(i));
  }
  const double est = hll.Estimate();
  // 3 sigma of the 1.04/sqrt(m) standard error.
  const double tolerance = 3.0 * hll.ErrorBound() * kDistinct;
  EXPECT_NEAR(est, kDistinct, tolerance);
}

TEST(Hll, SmallRangeUsesLinearCounting) {
  HyperLogLog hll(HyperLogLogConfig{});
  for (uint32_t i = 0; i < 100; ++i) {
    hll.Observe(Key(i));
  }
  EXPECT_NEAR(hll.Estimate(), 100.0, 5.0);
}

TEST(Hll, ReobservationIsNoOp) {
  HyperLogLog hll(HyperLogLogConfig{});
  for (int rep = 0; rep < 1000; ++rep) {
    hll.Observe(Key(7));
  }
  EXPECT_NEAR(hll.Estimate(), 1.0, 0.5);
}

TEST(Hll, NodeThenFleetMergeEqualsDirect) {
  // Register-wise max makes the merge *exactly* what a single estimator
  // would have built — the strongest form of the roll-up contract.
  HyperLogLog a((HyperLogLogConfig{})), b((HyperLogLogConfig{})),
      direct((HyperLogLogConfig{}));
  for (uint32_t i = 0; i < 30000; ++i) {
    (i % 2 ? a : b).Observe(Key(i % 20000));  // Shards overlap on purpose.
    direct.Observe(Key(i % 20000));
  }
  HyperLogLog ab = a, ba = b;
  ASSERT_TRUE(ab.Merge(b));
  ASSERT_TRUE(ba.Merge(a));
  EXPECT_EQ(ab.ToJson(), direct.ToJson());
  EXPECT_EQ(ba.ToJson(), direct.ToJson());
  EXPECT_DOUBLE_EQ(ab.Estimate(), direct.Estimate());
}

TEST(Hll, MergeRefusesIncompatiblePrecision) {
  HyperLogLogConfig small;
  small.precision = 8;
  HyperLogLog a((HyperLogLogConfig{})), b(small);
  EXPECT_FALSE(a.Merge(b));
}

// --- Space-saving --------------------------------------------------------

// Feeds one packet with a perfect estimate (est == running true count), the
// regime the admission filter sees when the CMS is uncollided.
void FeedExact(SpaceSaving& ss, const FlowKey& key, uint32_t bytes,
               uint64_t true_bytes, uint64_t true_packets) {
  ss.Update(key, HashKey(key, ss.seed()), bytes, true_bytes, true_packets);
}

TEST(SpaceSaving, ExactUnderCapacity) {
  SpaceSaving ss(SpaceSavingConfig{});
  for (uint32_t i = 0; i < 10; ++i) {
    uint64_t bytes = 0;
    for (uint32_t p = 0; p < (i + 1) * 3; ++p) {
      bytes += 100;
      FeedExact(ss, Key(i), 100, bytes, p + 1);
    }
  }
  EXPECT_EQ(ss.tracked(), 10u);
  EXPECT_EQ(ss.evictions(), 0u);
  const auto top = ss.TopK(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, Key(9));
  EXPECT_EQ(top[0].bytes, 3000u);
  EXPECT_EQ(top[0].packets, 30u);
  EXPECT_EQ(top[0].error, 0u);
  EXPECT_EQ(top[1].key, Key(8));
  EXPECT_EQ(top[2].key, Key(7));
}

TEST(SpaceSaving, ColdFlowsBounceOffFullTable) {
  SpaceSavingConfig cfg;
  cfg.capacity = 4;
  SpaceSaving ss(cfg);
  for (uint32_t i = 0; i < 4; ++i) {
    FeedExact(ss, Key(i), 1000, 1000, 1);
  }
  // A mouse flow whose estimate does not beat the minimum: no churn.
  FeedExact(ss, Key(100), 64, 64, 1);
  EXPECT_EQ(ss.tracked(), 4u);
  EXPECT_EQ(ss.evictions(), 0u);
  const auto top = ss.TopK(4);
  for (const auto& e : top) {
    EXPECT_NE(e.key, Key(100));
  }
  // An elephant with sketch evidence displaces the minimum, once.
  FeedExact(ss, Key(200), 500, 5000, 10);
  EXPECT_EQ(ss.evictions(), 1u);
  EXPECT_EQ(ss.TopK(1)[0].key, Key(200));
  EXPECT_EQ(ss.TopK(1)[0].bytes, 5000u);
  // Admission overcount is recorded: true count is within [bytes-error, bytes].
  EXPECT_EQ(ss.TopK(1)[0].error, 5000u - 500u);
}

TEST(SpaceSaving, MergeIsLosslessAndCommutativeWithoutEvictions) {
  SpaceSavingConfig cfg;
  cfg.capacity = 32;
  SpaceSaving a(cfg), b(cfg), direct(cfg);
  for (uint32_t i = 0; i < 8; ++i) {
    FeedExact(a, Key(i), 100 * (i + 1), 100 * (i + 1), 1);
    FeedExact(direct, Key(i), 100 * (i + 1), 100 * (i + 1), 1);
  }
  for (uint32_t i = 4; i < 12; ++i) {  // Overlaps keys 4..7 with a.
    FeedExact(b, Key(i), 50 * (i + 1), 50 * (i + 1), 1);
  }
  SpaceSaving ab = a, ba = b;
  ASSERT_TRUE(ab.Merge(b));
  ASSERT_TRUE(ba.Merge(a));
  const auto top_ab = ab.TopK(32), top_ba = ba.TopK(32);
  ASSERT_EQ(top_ab.size(), 12u);
  ASSERT_EQ(top_ba.size(), 12u);
  for (size_t i = 0; i < top_ab.size(); ++i) {
    EXPECT_EQ(top_ab[i].key, top_ba[i].key) << i;
    EXPECT_EQ(top_ab[i].bytes, top_ba[i].bytes) << i;
    EXPECT_EQ(top_ab[i].packets, top_ba[i].packets) << i;
  }
  // Shared keys sum: key 4 saw 500 in a and 250 in b.
  for (const auto& e : top_ab) {
    if (e.key == Key(4)) {
      EXPECT_EQ(e.bytes, 500u + 250u);
      EXPECT_EQ(e.packets, 2u);
    }
  }
  EXPECT_EQ(ab.evictions(), 0u);
}

TEST(SpaceSaving, MergeTruncatesToCapacityKeepingHeaviest) {
  SpaceSavingConfig cfg;
  cfg.capacity = 4;
  SpaceSaving a(cfg), b(cfg);
  for (uint32_t i = 0; i < 4; ++i) {
    FeedExact(a, Key(i), 1000 + i, 1000 + i, 1);
    FeedExact(b, Key(100 + i), 10 + i, 10 + i, 1);
  }
  ASSERT_TRUE(a.Merge(b));
  EXPECT_EQ(a.tracked(), 4u);
  EXPECT_GE(a.evictions(), 4u);  // The four light keys fell off.
  for (const auto& e : a.TopK(4)) {
    EXPECT_GE(e.bytes, 1000u);
  }
}

TEST(SpaceSaving, MergeRefusesIncompatibleCapacity) {
  SpaceSavingConfig big;
  big.capacity = 128;
  SpaceSaving a(SpaceSavingConfig{}), b(big);
  EXPECT_FALSE(a.Merge(b));
}

TEST(SpaceSaving, HeavyChurnKeepsIndexConsistent) {
  // Exercises eviction + backward-shift deletion under sustained churn with
  // rising estimates, then checks every surviving entry is still findable
  // (an update lands on it, not on a duplicate).
  SpaceSavingConfig cfg;
  cfg.capacity = 8;
  SpaceSaving ss(cfg);
  for (uint32_t round = 1; round <= 50; ++round) {
    for (uint32_t i = 0; i < 20; ++i) {
      const FlowKey k = Key(i);
      FeedExact(ss, k, 10, uint64_t{10} * round * (i + 1), round);
    }
  }
  EXPECT_EQ(ss.tracked(), 8u);
  const auto before = ss.TopK(8);
  // Updating an existing entry must mutate it in place.
  FeedExact(ss, before[0].key, 5, before[0].bytes + 5, before[0].packets + 1);
  const auto after = ss.TopK(8);
  EXPECT_EQ(after[0].key, before[0].key);
  EXPECT_EQ(after[0].bytes, before[0].bytes + 5);
  EXPECT_EQ(ss.tracked(), 8u);
}

}  // namespace
}  // namespace taichi::obs
