#include <gtest/gtest.h>

#include <memory>

#include "src/os/behaviors.h"
#include "src/virt/guest_exit_mux.h"
#include "src/virt/vcpu_pool.h"

namespace taichi::virt {
namespace {

class VirtTest : public ::testing::Test {
 protected:
  VirtTest() {
    hw::MachineConfig mcfg;
    mcfg.num_cpus = 2;
    machine_ = std::make_unique<hw::Machine>(&sim_, mcfg);
    kernel_ = std::make_unique<os::Kernel>(&sim_, machine_.get(), os::KernelConfig{});
  }

  sim::Simulation sim_;
  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<os::Kernel> kernel_;
};

TEST_F(VirtTest, PoolRegistersOfflineVcpusWithSyntheticApics) {
  VcpuPool pool(kernel_.get(), 3);
  EXPECT_EQ(pool.size(), 3);
  for (int i = 0; i < 3; ++i) {
    const VcpuInfo& v = pool.vcpus()[i];
    EXPECT_EQ(v.apic_id, kVcpuApicBase + static_cast<hw::ApicId>(i));
    EXPECT_EQ(kernel_->cpu_kind(v.cpu), os::CpuKind::kVirtual);
    EXPECT_FALSE(kernel_->cpu_online(v.cpu));
    EXPECT_TRUE(pool.contains(v.cpu));
  }
  EXPECT_FALSE(pool.contains(0));
  EXPECT_EQ(pool.cpu_set().count(), 3);
}

TEST_F(VirtTest, OnlineAllBootsEveryVcpu) {
  VcpuPool pool(kernel_.get(), 2);
  pool.OnlineAll();
  sim_.RunFor(sim::Millis(1));
  for (const VcpuInfo& v : pool.vcpus()) {
    EXPECT_TRUE(kernel_->cpu_online(v.cpu));
  }
}

class RecordingController : public GuestController {
 public:
  void OnGuestExit(os::CpuId pcpu, os::CpuId vcpu, const os::GuestExitInfo& info) override {
    exits.push_back(info.reason);
    last_vcpu = vcpu;
    kernel->ResumeHost(pcpu);
  }
  void OnGuestHalt(os::CpuId vcpu) override {
    ++halts;
    os::CpuId backer = kernel->backer_of(vcpu);
    if (backer != os::kInvalidCpu) {
      kernel->ExitGuest(backer, os::GuestExitReason::kHalt);
    }
  }
  os::Kernel* kernel = nullptr;
  std::vector<os::GuestExitReason> exits;
  os::CpuId last_vcpu = os::kInvalidCpu;
  int halts = 0;
};

TEST_F(VirtTest, MuxRoutesExitsToRegisteredController) {
  GuestExitMux mux(kernel_.get());
  VcpuPool pool(kernel_.get(), 2);
  pool.OnlineAll();
  sim_.RunFor(sim::Millis(1));

  RecordingController controller;
  controller.kernel = kernel_.get();
  os::CpuId v0 = pool.vcpus()[0].cpu;
  mux.Register(v0, &controller);

  kernel_->Spawn("w",
                 std::make_unique<os::LoopBehavior>(std::vector<os::Action>{
                     os::Action::Compute(sim::Millis(1))}),
                 os::CpuSet::Of({v0}));
  kernel_->EnterGuest(0, v0);
  sim_.RunFor(sim::Micros(100));
  kernel_->ExitGuest(0, os::GuestExitReason::kPreemptionTimer);
  sim_.RunFor(sim::Micros(100));
  ASSERT_EQ(controller.exits.size(), 1u);
  EXPECT_EQ(controller.exits[0], os::GuestExitReason::kPreemptionTimer);
  EXPECT_EQ(controller.last_vcpu, v0);
}

TEST_F(VirtTest, MuxDefaultsToResumeHostForUnregisteredVcpus) {
  GuestExitMux mux(kernel_.get());
  VcpuPool pool(kernel_.get(), 1);
  pool.OnlineAll();
  sim_.RunFor(sim::Millis(1));
  os::CpuId v = pool.vcpus()[0].cpu;

  os::Task* host = kernel_->Spawn("host",
                                  std::make_unique<os::ScriptBehavior>(std::vector<os::Action>{
                                      os::Action::Compute(sim::Millis(2))}),
                                  os::CpuSet::Of({0}));
  kernel_->Spawn("guest_w",
                 std::make_unique<os::LoopBehavior>(std::vector<os::Action>{
                     os::Action::Compute(sim::Millis(1))}),
                 os::CpuSet::Of({v}));
  sim_.RunFor(sim::Micros(100));
  kernel_->EnterGuest(0, v);
  sim_.RunFor(sim::Micros(200));
  kernel_->ExitGuest(0, os::GuestExitReason::kForced);
  sim_.RunFor(sim::Millis(5));
  // No controller registered: the host resumed and finished its work.
  EXPECT_EQ(host->state(), os::TaskState::kExited);
}

TEST_F(VirtTest, MuxHaltRouting) {
  GuestExitMux mux(kernel_.get());
  VcpuPool pool(kernel_.get(), 1);
  pool.OnlineAll();
  sim_.RunFor(sim::Millis(1));
  os::CpuId v = pool.vcpus()[0].cpu;

  RecordingController controller;
  controller.kernel = kernel_.get();
  mux.Register(v, &controller);
  kernel_->Spawn("short",
                 std::make_unique<os::ScriptBehavior>(std::vector<os::Action>{
                     os::Action::Compute(sim::Micros(50))}),
                 os::CpuSet::Of({v}));
  kernel_->EnterGuest(0, v);
  sim_.RunFor(sim::Millis(1));
  EXPECT_EQ(controller.halts, 1);  // Task finished; vCPU idled -> HLT.
  EXPECT_FALSE(kernel_->cpu_backed(v));
}

TEST_F(VirtTest, UnregisterStopsRouting) {
  GuestExitMux mux(kernel_.get());
  VcpuPool pool(kernel_.get(), 1);
  pool.OnlineAll();
  sim_.RunFor(sim::Millis(1));
  os::CpuId v = pool.vcpus()[0].cpu;
  RecordingController controller;
  controller.kernel = kernel_.get();
  mux.Register(v, &controller);
  mux.Unregister(v);

  kernel_->Spawn("w",
                 std::make_unique<os::LoopBehavior>(std::vector<os::Action>{
                     os::Action::Compute(sim::Millis(1))}),
                 os::CpuSet::Of({v}));
  kernel_->EnterGuest(0, v);
  sim_.RunFor(sim::Micros(100));
  kernel_->ExitGuest(0, os::GuestExitReason::kForced);
  sim_.RunFor(sim::Micros(100));
  EXPECT_TRUE(controller.exits.empty());
}

}  // namespace
}  // namespace taichi::virt
