// Fleet autopilot: hysteresis, the escalation ladder (enable -> migrate ->
// shed), outcome-judged backoff, §8 DP-boost hysteresis, crash evict /
// readmit / re-enable, and decision-log determinism.
//
// The SLO signal is driven through a hand-fed summary (like the SloMonitor
// tests): each "window" adds per-node latency samples and steps the cluster
// across one observation period, so every controller decision is a pure
// function of the fed values.
#include <gtest/gtest.h>

#include <initializer_list>
#include <string>
#include <vector>

#include "src/exp/testbed.h"
#include "src/fleet/autopilot.h"
#include "src/fleet/cluster.h"
#include "src/scenario/chaos.h"
#include "src/scenario/traffic_source.h"

namespace taichi {
namespace {

constexpr int kNodes = 4;
constexpr sim::Duration kWindow = sim::Millis(10);

// Records migrations and carries per-node shares; injects nothing.
class FakeSource : public scenario::TrafficSource {
 public:
  const char* name() const override { return "fake"; }
  void Start(fleet::Cluster&) override { running_ = true; }
  void Stop(fleet::Cluster&) override { running_ = false; }
  bool running() const override { return running_; }

  double VmShare(size_t node) const override { return shares_[node]; }
  bool MigrateVmShare(size_t from, size_t to, double units) override {
    if (shares_[from] < units) {
      return false;
    }
    shares_[from] -= units;
    shares_[to] += units;
    ++migrations_;
    return true;
  }

  std::vector<double> shares_ = std::vector<double>(kNodes, 2.0);
  int migrations_ = 0;

 private:
  bool running_ = false;
};

// Cluster + fed SLO metric + autopilot config tuned for 10 ms windows.
struct Harness {
  Harness() : cluster(ClusterCfg()) {
    for (size_t i = 0; i < cluster.size(); ++i) {
      cluster.observability(i).metrics.AddSummary("test.lat", &lat[i]);
    }
    cfg.slo.metric = "test.lat";
    cfg.slo.percentile = 50.0;
    cfg.slo.threshold = 100.0;
    cfg.slo.min_samples = 2;
    cfg.observe_every = kWindow;
    cfg.hysteresis_windows = 2;
    cfg.settle_windows = 0;
    cfg.cooldown_windows = 1;
    cfg.max_actions_per_window = 4;
  }

  static fleet::ClusterConfig ClusterCfg() {
    fleet::ClusterConfig c;
    c.num_nodes = kNodes;
    c.seed = 7;
    c.epoch = sim::Millis(2);
    return c;
  }

  // One observation window: feed each node's median, step the cluster.
  void Window(std::initializer_list<double> per_node) {
    size_t i = 0;
    for (double v : per_node) {
      lat[i].Add(v);
      lat[i].Add(v);
      ++i;
    }
    cluster.RunFor(kWindow);
  }

  fleet::Cluster cluster;
  sim::Summary lat[kNodes];
  FakeSource src;
  fleet::AutopilotConfig cfg;
};

TEST(Autopilot, BreachMustPersistHysteresisWindowsBeforeEnable) {
  Harness h;
  fleet::Autopilot ap(&h.cluster, &h.src, h.cfg);
  ap.Arm();

  h.Window({500, 10, 10, 10});
  EXPECT_EQ(ap.enables(), 0u) << "one breach window must not trigger";
  EXPECT_FALSE(h.cluster.node(0).taichi_enabled());

  h.Window({500, 10, 10, 10});
  EXPECT_EQ(ap.enables(), 1u);
  EXPECT_TRUE(h.cluster.node(0).taichi_enabled());
  EXPECT_FALSE(h.cluster.node(1).taichi_enabled());
  ASSERT_FALSE(ap.decisions().empty());
  EXPECT_EQ(ap.decisions()[0].act, fleet::Autopilot::Act::kEnable);
  EXPECT_EQ(ap.decisions()[0].node, 0);
}

TEST(Autopilot, MigrationMovesShareAndPlacerAccounting) {
  Harness h;
  fleet::Autopilot ap(&h.cluster, &h.src, h.cfg);
  ap.Arm();
  EXPECT_EQ(ap.placer().vms(0), 2 * h.cfg.unit_spec.vms);  // 2 seeded units.

  h.Window({500, 10, 10, 10});
  h.Window({500, 10, 10, 10});  // Enable node 0.
  // Improved-but-still-breaching keeps the backoff quiet (500 -> 300) while
  // hysteresis re-accumulates; the next rung on an enabled node is migrate.
  h.Window({300, 10, 10, 10});
  h.Window({300, 10, 10, 10});

  EXPECT_EQ(ap.migrations(), 1u);
  EXPECT_EQ(h.src.migrations_, 1);
  EXPECT_DOUBLE_EQ(h.src.shares_[0], 1.0);
  EXPECT_EQ(ap.placer().vms(0), 1 * h.cfg.unit_spec.vms);
  const fleet::Autopilot::Decision& d = ap.decisions().back();
  EXPECT_EQ(d.act, fleet::Autopilot::Act::kMigrate);
  EXPECT_EQ(d.node, 0);
  ASSERT_GE(d.target, 1);
  ASSERT_LE(d.target, 3);
  EXPECT_DOUBLE_EQ(h.src.shares_[static_cast<size_t>(d.target)], 3.0);
  EXPECT_EQ(ap.placer().vms(static_cast<size_t>(d.target)), 3 * h.cfg.unit_spec.vms);
}

TEST(Autopilot, UniformFleetBreachShedsInsteadOfMigrating) {
  Harness h;
  h.cfg.recover_windows = 1;
  fleet::Autopilot ap(&h.cluster, &h.src, h.cfg);
  ap.Arm();

  // Everyone breaches: windows 1-2 enable all four nodes, then the fleet
  // keeps drowning. Migration has no healthy majority to move toward, so the
  // ladder must fall through to one bounded shed step.
  for (int w = 0; w < 6; ++w) {
    h.Window({500, 500, 500, 500});
  }
  EXPECT_EQ(ap.enables(), 4u);
  EXPECT_EQ(ap.migrations(), 0u);
  EXPECT_GE(ap.sheds(), 1u);
  EXPECT_LE(ap.shed_factor(), 1.0 - h.cfg.shed_step);
  EXPECT_GE(ap.shed_factor(), h.cfg.shed_floor);

  // Healthy again: the shed steps are restored, one per qualifying window.
  for (int w = 0; w < 8; ++w) {
    h.Window({10, 10, 10, 10});
  }
  EXPECT_EQ(ap.restores(), ap.sheds());
  EXPECT_DOUBLE_EQ(ap.shed_factor(), 1.0);
}

TEST(Autopilot, FailedActionsBackOffExponentially) {
  Harness h;
  fleet::Autopilot ap(&h.cluster, &h.src, h.cfg);
  ap.Arm();

  // Node 0 never improves, whatever the controller does. Every judged
  // action must log a backoff and stretch the node's cooldown.
  for (int w = 0; w < 12; ++w) {
    h.Window({500, 10, 10, 10});
  }
  EXPECT_GE(ap.backoffs(), 2u);

  // Actions on node 0 (enable, then migrations) must space out: the gap
  // between consecutive remediations grows with the doubling cooldown.
  std::vector<sim::SimTime> acts;
  for (const fleet::Autopilot::Decision& d : ap.decisions()) {
    if (d.node == 0 && (d.act == fleet::Autopilot::Act::kEnable ||
                        d.act == fleet::Autopilot::Act::kMigrate)) {
      acts.push_back(d.at);
    }
  }
  ASSERT_GE(acts.size(), 3u);
  const sim::Duration gap1 = acts[1] - acts[0];
  const sim::Duration gap2 = acts[2] - acts[1];
  EXPECT_GT(gap2, gap1);
}

TEST(Autopilot, DpBoostEngagesOnUtilizationSpikeAndReverts) {
  Harness h;
  fleet::Autopilot ap(&h.cluster, &h.src, h.cfg);
  ap.Arm();

  exp::Testbed& bed = h.cluster.node(0);
  bed.EnableTaiChi();
  h.cluster.RunFor(sim::Millis(4));  // vCPU bring-up.

  // Steady DP load well above the on-threshold; two windows of hysteresis.
  bed.StartBackgroundLoad(bed.RateForUtilization(0.7, 1024), 1024,
                          dp::OpenLoopConfig::Process::kConstant);
  h.cluster.RunFor(sim::Millis(60));
  EXPECT_TRUE(bed.dp_boost());
  EXPECT_EQ(ap.boosts(), 1u);
  EXPECT_EQ(ap.reverts(), 0u);

  // Load gone: utilization collapses under the off-threshold and the boost
  // reverts after the same hysteresis.
  bed.StopBackgroundLoad();
  h.cluster.RunFor(sim::Millis(60));
  EXPECT_FALSE(bed.dp_boost());
  EXPECT_EQ(ap.reverts(), 1u);
}

TEST(Autopilot, CrashEvictsAndRestartReadmitsAndReenables) {
  Harness h;
  scenario::ChaosConfig ch;
  ch.script.push_back({sim::Millis(25), 1, scenario::ChaosAction::Kind::kCrash, 0, 0, 0});
  ch.script.push_back({sim::Millis(55), 1, scenario::ChaosAction::Kind::kRestart, 0, 0, 0});
  scenario::ChaosEngine chaos(&h.cluster, ch);
  fleet::Autopilot ap(&h.cluster, &h.src, h.cfg);
  chaos.AddListener(&h.src);
  chaos.AddListener(&ap);
  ap.Arm();
  chaos.Arm();

  // Node 1 earns Tai Chi first, so the restart has something to re-enable.
  h.Window({10, 500, 10, 10});
  h.Window({10, 500, 10, 10});
  EXPECT_TRUE(h.cluster.node(1).taichi_enabled());
  const int placed_before = ap.placer().vms(1);
  EXPECT_GT(placed_before, 0);

  h.cluster.RunFor(sim::Millis(10));  // The scripted crash fires.
  EXPECT_FALSE(h.cluster.alive(1));
  EXPECT_EQ(ap.evictions(), 1u);
  EXPECT_EQ(ap.placer().vms(1), 0) << "crash must release the node's units";

  h.cluster.RunFor(sim::Millis(40));  // The scripted restart fires.
  EXPECT_TRUE(h.cluster.alive(1));
  EXPECT_EQ(ap.readmits(), 1u);
  EXPECT_EQ(ap.placer().vms(1), placed_before) << "restart must readmit the units";
  EXPECT_TRUE(h.cluster.node(1).taichi_enabled()) << "restart must re-enable Tai Chi";

  chaos.Disarm();
}

TEST(Autopilot, MigrationNeverTargetsADeadNode) {
  Harness h;
  scenario::ChaosConfig ch;
  // Node 2 dies before any migration is possible and stays down.
  ch.script.push_back({sim::Millis(5), 2, scenario::ChaosAction::Kind::kCrash, 0, 0, 0});
  scenario::ChaosEngine chaos(&h.cluster, ch);
  fleet::Autopilot ap(&h.cluster, &h.src, h.cfg);
  chaos.AddListener(&h.src);
  chaos.AddListener(&ap);
  ap.Arm();
  chaos.Arm();

  for (int w = 0; w < 8; ++w) {
    h.Window({500, 10, 10, 10});
  }
  for (const fleet::Autopilot::Decision& d : ap.decisions()) {
    if (d.act == fleet::Autopilot::Act::kMigrate) {
      EXPECT_NE(d.target, 2) << "the dead node must never be a migration target";
    }
  }
  EXPECT_GE(ap.migrations(), 1u);

  chaos.Disarm();
}

TEST(Autopilot, DecisionLogIsIdenticalAcrossIdenticalRuns) {
  auto run = [] {
    Harness h;
    fleet::Autopilot ap(&h.cluster, &h.src, h.cfg);
    ap.Arm();
    h.Window({500, 10, 10, 10});
    h.Window({500, 10, 10, 10});
    h.Window({300, 10, 10, 10});
    h.Window({300, 10, 10, 10});
    for (int w = 0; w < 3; ++w) {
      h.Window({10, 10, 10, 10});
    }
    return ap.DecisionLogJson();
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_FALSE(a.empty());
  EXPECT_NE(a, "[]");
  EXPECT_EQ(a, b);
}

TEST(Autopilot, DisableAfterCalmReclaimsVcpus) {
  Harness h;
  h.cfg.disable_after_calm = 3;
  fleet::Autopilot ap(&h.cluster, &h.src, h.cfg);
  ap.Arm();

  h.Window({500, 10, 10, 10});
  h.Window({500, 10, 10, 10});
  EXPECT_TRUE(h.cluster.node(0).taichi_enabled());

  // Calm long enough: the controller hands the vCPU budget back.
  for (int w = 0; w < 6; ++w) {
    h.Window({10, 10, 10, 10});
  }
  EXPECT_EQ(ap.disables(), 1u);
  EXPECT_FALSE(h.cluster.node(0).taichi_enabled());
}

}  // namespace
}  // namespace taichi
