// Fleet layer: cluster determinism, placement policies, staged rollout,
// runtime enable/disable, and fleet metric aggregation.
#include <gtest/gtest.h>

#include "src/fleet/cluster.h"
#include "src/fleet/load_gen.h"
#include "src/fleet/placer.h"
#include "src/fleet/rollout.h"
#include "src/fleet/slo_monitor.h"

namespace taichi {
namespace {

fleet::ClusterConfig SmallCluster(int nodes, uint64_t seed) {
  fleet::ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.seed = seed;
  cfg.epoch = sim::Millis(2);
  return cfg;
}

// --- Placer --------------------------------------------------------------

TEST(Placer, RefusesBeyondCapacity) {
  fleet::NodeCapacity cap;
  cap.vm_slots = 4;
  fleet::Placer placer(1, cap, fleet::PlacePolicy::kLeastLoaded);

  fleet::WorkloadSpec spec;
  spec.tenant = "t";
  spec.vms = 3;
  EXPECT_TRUE(placer.Place(spec).admitted);

  fleet::Placement refused = placer.Place(spec);
  EXPECT_FALSE(refused.admitted);
  EXPECT_EQ(refused.node, -1);
  EXPECT_FALSE(refused.reason.empty());
  EXPECT_EQ(placer.admitted(), 1u);
  EXPECT_EQ(placer.refused(), 1u);
  EXPECT_EQ(placer.vms(0), 3);
}

TEST(Placer, RefusesOnDpAndCpDimensions) {
  fleet::NodeCapacity cap;
  cap.dp_util = 1.0;
  cap.cp_load = 2.0;
  fleet::Placer placer(1, cap, fleet::PlacePolicy::kRoundRobin);

  fleet::WorkloadSpec dp_hog;
  dp_hog.dp_util = 1.5;
  EXPECT_FALSE(placer.Place(dp_hog).admitted);

  fleet::WorkloadSpec cp_hog;
  cp_hog.cp_load = 3.0;
  EXPECT_FALSE(placer.Place(cp_hog).admitted);

  fleet::WorkloadSpec fits;
  fits.dp_util = 0.9;
  fits.cp_load = 1.9;
  EXPECT_TRUE(placer.Place(fits).admitted);
}

TEST(Placer, LeastLoadedBreaksTiesTowardLowestId) {
  fleet::Placer placer(3, fleet::NodeCapacity{}, fleet::PlacePolicy::kLeastLoaded);
  fleet::WorkloadSpec spec;
  spec.vms = 2;
  // All empty: node 0. Then 1 and 2 tie below 0: node 1. Then node 2.
  EXPECT_EQ(placer.Place(spec).node, 0);
  EXPECT_EQ(placer.Place(spec).node, 1);
  EXPECT_EQ(placer.Place(spec).node, 2);
  // All equal again: back to node 0.
  EXPECT_EQ(placer.Place(spec).node, 0);
}

TEST(Placer, RoundRobinRotatesAndSkipsFullNodes) {
  fleet::NodeCapacity cap;
  cap.vm_slots = 2;
  fleet::Placer placer(3, cap, fleet::PlacePolicy::kRoundRobin);
  fleet::WorkloadSpec spec;
  spec.vms = 2;  // Each placement fills its node.
  EXPECT_EQ(placer.Place(spec).node, 0);
  EXPECT_EQ(placer.Place(spec).node, 1);
  EXPECT_EQ(placer.Place(spec).node, 2);
  EXPECT_FALSE(placer.Place(spec).admitted);

  placer.Release(1, spec);
  EXPECT_EQ(placer.Place(spec).node, 1);
}

TEST(Placer, BinPackFillsHottestNodeFirst) {
  fleet::NodeCapacity cap;
  cap.vm_slots = 4;
  fleet::Placer placer(2, cap, fleet::PlacePolicy::kBinPack);
  fleet::WorkloadSpec spec;
  spec.vms = 2;
  EXPECT_EQ(placer.Place(spec).node, 0);
  // Node 0 is hotter and still fits: keep packing it.
  EXPECT_EQ(placer.Place(spec).node, 0);
  // Node 0 full: spill to node 1.
  EXPECT_EQ(placer.Place(spec).node, 1);
}

TEST(Placer, ReleaseRestoresCapacity) {
  fleet::Placer placer(2, fleet::NodeCapacity{}, fleet::PlacePolicy::kLeastLoaded);
  fleet::WorkloadSpec spec;
  spec.vms = 4;
  spec.dp_util = 0.5;
  spec.cp_load = 5.0;
  fleet::Placement p = placer.Place(spec);
  ASSERT_TRUE(p.admitted);
  EXPECT_GT(placer.LoadScore(static_cast<size_t>(p.node)), 0.0);
  placer.Release(p.node, spec);
  EXPECT_DOUBLE_EQ(placer.LoadScore(static_cast<size_t>(p.node)), 0.0);
  EXPECT_EQ(placer.vms(static_cast<size_t>(p.node)), 0);
}

TEST(Placer, ReleaseBelowZeroDies) {
  // Releasing a spec that was never admitted (double-release, migration
  // bookkeeping aimed at the wrong node) corrupts every later admission
  // decision — it must die loudly, not drift.
  fleet::Placer placer(2, fleet::NodeCapacity{}, fleet::PlacePolicy::kLeastLoaded);
  fleet::WorkloadSpec spec;
  spec.tenant = "ghost";
  spec.vms = 2;
  EXPECT_DEATH(placer.Release(0, spec), "below zero");
}

TEST(Placer, ReleaseAfterOneAdmissionDiesOnSecondRelease) {
  fleet::Placer placer(1, fleet::NodeCapacity{}, fleet::PlacePolicy::kLeastLoaded);
  fleet::WorkloadSpec spec;
  spec.vms = 3;
  ASSERT_TRUE(placer.Place(spec).admitted);
  placer.Release(0, spec);  // Legitimate.
  EXPECT_DEATH(placer.Release(0, spec), "below zero");
}

TEST(Placer, PlaceOnTargetsTheNodeOrRefuses) {
  fleet::NodeCapacity cap;
  cap.vm_slots = 4;
  fleet::Placer placer(3, cap, fleet::PlacePolicy::kLeastLoaded);
  fleet::WorkloadSpec spec;
  spec.vms = 3;

  // Targeted admission ignores the policy's own choice.
  fleet::Placement p = placer.PlaceOn(2, spec);
  ASSERT_TRUE(p.admitted);
  EXPECT_EQ(p.node, 2);
  EXPECT_EQ(placer.vms(2), 3);
  EXPECT_EQ(placer.vms(0), 0);

  // A full target refuses without touching the accounting, even while other
  // nodes still have room.
  fleet::Placement refused = placer.PlaceOn(2, spec);
  EXPECT_FALSE(refused.admitted);
  EXPECT_EQ(placer.vms(2), 3);
  EXPECT_TRUE(placer.Fits(0, spec));
  EXPECT_FALSE(placer.Fits(2, spec));
}

// --- Aggregation ---------------------------------------------------------

TEST(FleetAggregation, MergeSummariesIsExactOverUnion) {
  sim::Summary a, b;
  for (double v : {1.0, 2.0, 3.0}) {
    a.Add(v);
  }
  for (double v : {10.0, 20.0}) {
    b.Add(v);
  }
  sim::Summary merged = obs::MergeSummaries({&a, &b, nullptr});
  EXPECT_EQ(merged.count(), 5u);
  EXPECT_DOUBLE_EQ(merged.min(), 1.0);
  EXPECT_DOUBLE_EQ(merged.max(), 20.0);
  EXPECT_DOUBLE_EQ(merged.Percentile(50), 3.0);
  EXPECT_DOUBLE_EQ(merged.sum(), 36.0);
}

TEST(FleetAggregation, FindSummaryReturnsRegisteredSummariesOnly) {
  obs::MetricsRegistry registry;
  sim::Summary s;
  s.Add(4.2);
  registry.AddSummary("lat", &s);
  registry.AddGauge("g", [] { return 1.0; });
  ASSERT_NE(registry.FindSummary("lat"), nullptr);
  EXPECT_EQ(registry.FindSummary("lat")->count(), 1u);
  EXPECT_EQ(registry.FindSummary("g"), nullptr);
  EXPECT_EQ(registry.FindSummary("missing"), nullptr);
}

TEST(FleetAggregation, ClusterMergesNodeMetrics) {
  fleet::Cluster cluster(SmallCluster(2, 5));
  // Two startups on node 0, one on node 1.
  cluster.node(0).device_manager().StartVm(cluster.node(0).cp_task_cpus());
  cluster.node(0).device_manager().StartVm(cluster.node(0).cp_task_cpus());
  cluster.node(1).device_manager().StartVm(cluster.node(1).cp_task_cpus());
  cluster.RunFor(sim::Millis(100));
  ASSERT_TRUE(cluster.node(0).device_manager().AllDone());
  ASSERT_TRUE(cluster.node(1).device_manager().AllDone());

  sim::Summary fleet = cluster.MergeSummaryMetric("cp.vm_startup.latency_ms");
  EXPECT_EQ(fleet.count(), 3u);
  EXPECT_DOUBLE_EQ(fleet.sum(), cluster.node(0).device_manager().startup_ms().sum() +
                                    cluster.node(1).device_manager().startup_ms().sum());
}

TEST(LoadGen, DoubleStartDies) {
  // Starting a running LoadGen would stack a second set of arrival streams
  // on every node and silently double the offered load: TAICHI_ERROR +
  // assert, not a quiet no-op.
  fleet::Cluster cluster(SmallCluster(2, 7));
  fleet::LoadGenConfig lcfg;
  lcfg.seed = 7;
  fleet::LoadGen load(&cluster, lcfg);
  load.Start();
  EXPECT_DEATH(load.Start(), "Start called twice");
  load.Stop();
}

TEST(Cluster, FlowTelemetryFlowsThroughPacketPath) {
  // End-to-end: background traffic driven by the LoadGen must land in every
  // node's RX/DP flow sketches via the packet-path taps, and the per-node
  // monitors must roll up into one fleet monitor with exact total counts.
  fleet::Cluster cluster(SmallCluster(2, 7));
  fleet::LoadGenConfig lcfg;
  lcfg.seed = 7;
  lcfg.vm_arrivals = false;
  lcfg.flow_count = 64;
  fleet::LoadGen load(&cluster, lcfg);
  load.Start();
  cluster.RunFor(sim::Millis(20));
  load.Stop();

  uint64_t rx_sum = 0, dp_sum = 0;
  for (size_t i = 0; i < cluster.size(); ++i) {
    const exp::Testbed& bed = cluster.node(i);
    EXPECT_GT(bed.flow_rx().total_packets(), 0u) << "node " << i;
    EXPECT_GT(bed.flow_dp().total_packets(), 0u) << "node " << i;
    // Synthesized 5-tuples spread over many flows, not one blob.
    EXPECT_GT(bed.flow_dp().DistinctFlows(), 10.0) << "node " << i;
    EXPECT_FALSE(bed.flow_dp().TopK(1).empty()) << "node " << i;
    rx_sum += bed.flow_rx().total_packets();
    dp_sum += bed.flow_dp().total_packets();
    // The taps registered their gauges with the node's metrics registry.
    EXPECT_TRUE(cluster.observability(i).metrics.Has("flows.rx.total_packets"));
    EXPECT_TRUE(cluster.observability(i).metrics.Has("flows.dp.distinct_flows"));
    EXPECT_TRUE(cluster.observability(i).metrics.Has("flows.tx.total_bytes"));
  }
  EXPECT_EQ(cluster.MergedFlowMonitor(fleet::Cluster::FlowTap::kRx).total_packets(), rx_sum);
  EXPECT_EQ(cluster.MergedFlowMonitor(fleet::Cluster::FlowTap::kDp).total_packets(), dp_sum);
}

// --- SLO monitor ---------------------------------------------------------

class SloMonitorTest : public ::testing::Test {
 protected:
  SloMonitorTest() : cluster_(SmallCluster(3, 5)) {
    for (size_t i = 0; i < cluster_.size(); ++i) {
      cluster_.observability(i).metrics.AddSummary("test.lat", &lat_[i]);
    }
    cfg_.metric = "test.lat";
    cfg_.percentile = 50.0;
    cfg_.threshold = 100.0;
    cfg_.min_samples = 2;
  }

  fleet::Cluster cluster_;
  sim::Summary lat_[3];
  fleet::SloConfig cfg_;
};

TEST_F(SloMonitorTest, WindowsAdvancePerObserve) {
  fleet::SloMonitor monitor(&cluster_, cfg_);
  lat_[0].Add(10);
  lat_[0].Add(20);
  fleet::SloMonitor::Report r1 = monitor.Observe();
  EXPECT_EQ(r1.total_samples, 2u);
  EXPECT_DOUBLE_EQ(r1.fleet_value, 15.0);
  EXPECT_FALSE(r1.fleet_breach);

  // Only samples added after the first Observe count in the second.
  lat_[0].Add(500);
  lat_[1].Add(500);
  fleet::SloMonitor::Report r2 = monitor.Observe();
  EXPECT_EQ(r2.total_samples, 2u);
  EXPECT_DOUBLE_EQ(r2.fleet_value, 500.0);
  EXPECT_TRUE(r2.fleet_breach);

  // Empty window: no samples, no breach.
  fleet::SloMonitor::Report r3 = monitor.Observe();
  EXPECT_EQ(r3.total_samples, 0u);
  EXPECT_FALSE(r3.fleet_breach);
}

TEST_F(SloMonitorTest, SubsetRestrictsFleetAggregateNotNodeStats) {
  fleet::SloMonitor monitor(&cluster_, cfg_);
  lat_[0].Add(10);
  lat_[1].Add(1000);
  fleet::SloMonitor::Report r = monitor.Observe({0});
  EXPECT_EQ(r.total_samples, 1u);
  EXPECT_DOUBLE_EQ(r.fleet_value, 10.0);
  EXPECT_FALSE(r.fleet_breach);
  // Node 1's own stats are still evaluated.
  EXPECT_EQ(r.nodes[1].samples, 1u);
  EXPECT_TRUE(r.nodes[1].breach);
}

TEST_F(SloMonitorTest, SubsetObserveDoesNotConsumeOtherNodesWindows) {
  // Regression: Observe(subset) used to advance the window cursor of every
  // node, so samples landing on out-of-subset nodes between two subset
  // observations were silently lost to the next evaluation over those nodes.
  fleet::SloMonitor monitor(&cluster_, cfg_);
  lat_[0].Add(10);
  lat_[1].Add(500);  // Arrives while only node 0 is being watched.
  fleet::SloMonitor::Report r1 = monitor.Observe({0});
  EXPECT_EQ(r1.total_samples, 1u);
  EXPECT_DOUBLE_EQ(r1.fleet_value, 10.0);

  lat_[1].Add(600);
  // A later window over node 1 must still see BOTH of its samples.
  fleet::SloMonitor::Report r2 = monitor.Observe({1});
  EXPECT_EQ(r2.total_samples, 2u);
  EXPECT_EQ(r2.nodes[1].samples, 2u);
  EXPECT_DOUBLE_EQ(r2.fleet_value, 550.0);
  EXPECT_TRUE(r2.fleet_breach);

  // Node 1's window was consumed by r2; node 0's was consumed by r1.
  fleet::SloMonitor::Report r3 = monitor.Observe();
  EXPECT_EQ(r3.total_samples, 0u);
}

TEST_F(SloMonitorTest, InterleavedSubsetsThenFullObserveSeesEverything) {
  fleet::SloMonitor monitor(&cluster_, cfg_);
  lat_[0].Add(1);
  lat_[1].Add(2);
  lat_[2].Add(3);
  EXPECT_EQ(monitor.Observe({0}).total_samples, 1u);
  lat_[0].Add(4);
  EXPECT_EQ(monitor.Observe({1}).total_samples, 1u);
  // Full observe: node 0's post-first-observe sample + node 2's untouched
  // window, nothing double-counted.
  fleet::SloMonitor::Report full = monitor.Observe();
  EXPECT_EQ(full.total_samples, 2u);
  EXPECT_EQ(full.nodes[0].samples, 1u);
  EXPECT_EQ(full.nodes[1].samples, 0u);
  EXPECT_EQ(full.nodes[2].samples, 1u);
}

TEST_F(SloMonitorTest, HotspotReportNamesHeavyFlowsFromSketches) {
  cfg_.hotspot_factor = 2.0;
  cfg_.heavy_hitters = 2;
  fleet::SloMonitor monitor(&cluster_, cfg_);

  // Feed the DP-tap sketches directly (deterministic, no traffic needed):
  // an elephant flow concentrated on node 2, plus cross-node chatter that
  // only the merged fleet sketch can total up.
  auto flow = [](uint32_t i) {
    obs::FlowKey k;
    k.src_ip = 0xc0a80000u | i;
    k.dst_ip = 0x0a000001u;
    k.src_port = static_cast<uint16_t>(5000 + i);
    k.dst_port = 443;
    k.proto = obs::kProtoTcp;
    return k;
  };
  for (int p = 0; p < 100; ++p) {
    cluster_.node(2).flow_dp().OnPacket(flow(1), 1500);  // The elephant.
  }
  for (int p = 0; p < 30; ++p) {
    // Flow 2 is spread across all three nodes: no single node sees it as
    // dominant, but fleet-wide it outweighs everything except the elephant.
    for (size_t n = 0; n < cluster_.size(); ++n) {
      cluster_.node(n).flow_dp().OnPacket(flow(2), 1000);
    }
    cluster_.node(2).flow_dp().OnPacket(flow(3), 100);  // A mouse.
  }

  for (int i = 0; i < 4; ++i) {
    lat_[0].Add(10);
    lat_[1].Add(10);
    lat_[2].Add(90);  // Hotspot, as in DetectsHotspotsAndSuggestsRebalance.
  }
  fleet::SloMonitor::Report r = monitor.Observe();
  ASSERT_EQ(r.hotspots.size(), 1u);
  ASSERT_EQ(r.hotspots[0], 2);

  // Hotspot node 2: the elephant leads its heavy list with the exact
  // sketch-estimated bytes and its share of the node's DP bytes.
  ASSERT_EQ(r.nodes[2].heavy.size(), 2u);
  EXPECT_EQ(r.nodes[2].heavy[0].key, flow(1));
  EXPECT_EQ(r.nodes[2].heavy[0].bytes, 100u * 1500u);
  EXPECT_EQ(r.nodes[2].heavy[0].packets, 100u);
  const double node2_total = 100.0 * 1500 + 30.0 * 1000 + 30.0 * 100;
  EXPECT_NEAR(r.nodes[2].heavy[0].share, 100.0 * 1500 / node2_total, 1e-9);
  EXPECT_EQ(r.nodes[2].heavy[1].key, flow(2));
  // Non-hotspot nodes carry no flow attribution.
  EXPECT_TRUE(r.nodes[0].heavy.empty());
  EXPECT_TRUE(r.nodes[1].heavy.empty());

  // Fleet scope: merged across nodes, the spread-out flow 2 totals
  // 90 packets and ranks ahead of everything but the elephant.
  ASSERT_EQ(r.fleet_heavy.size(), 2u);
  EXPECT_EQ(r.fleet_heavy[0].key, flow(1));
  EXPECT_EQ(r.fleet_heavy[1].key, flow(2));
  EXPECT_EQ(r.fleet_heavy[1].bytes, 90u * 1000u);
  EXPECT_EQ(r.fleet_heavy[1].packets, 90u);
  EXPECT_GT(r.fleet_heavy[0].share, r.fleet_heavy[1].share);
}

TEST_F(SloMonitorTest, HeavyHittersZeroDisablesFlowAttribution) {
  cfg_.hotspot_factor = 2.0;
  cfg_.heavy_hitters = 0;
  fleet::SloMonitor monitor(&cluster_, cfg_);
  cluster_.node(2).flow_dp().OnPacket(obs::FlowKey{}, 1500);
  for (int i = 0; i < 4; ++i) {
    lat_[0].Add(10);
    lat_[1].Add(10);
    lat_[2].Add(90);
  }
  fleet::SloMonitor::Report r = monitor.Observe();
  ASSERT_EQ(r.hotspots.size(), 1u);
  EXPECT_TRUE(r.nodes[2].heavy.empty());
  EXPECT_TRUE(r.fleet_heavy.empty());
}

TEST_F(SloMonitorTest, DetectsHotspotsAndSuggestsRebalance) {
  cfg_.hotspot_factor = 2.0;
  fleet::SloMonitor monitor(&cluster_, cfg_);
  for (int i = 0; i < 4; ++i) {
    lat_[0].Add(10);
    lat_[1].Add(10);
    lat_[2].Add(90);  // Well above 2x the fleet median, below the SLO.
  }
  fleet::SloMonitor::Report r = monitor.Observe();
  ASSERT_EQ(r.hotspots.size(), 1u);
  EXPECT_EQ(r.hotspots[0], 2);
  EXPECT_TRUE(r.nodes[2].hotspot);

  fleet::Placer placer(3, fleet::NodeCapacity{}, fleet::PlacePolicy::kLeastLoaded);
  fleet::WorkloadSpec spec;
  spec.vms = 4;
  placer.Place(spec);  // Node 0 carries load; node 1 is the coolest.
  std::vector<fleet::SloMonitor::Move> moves = monitor.SuggestRebalance(placer);
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].from, 2);
  EXPECT_EQ(moves[0].to, 1);
}

TEST_F(SloMonitorTest, SuggestRebalanceIsDeterministic) {
  cfg_.hotspot_factor = 2.0;
  fleet::SloMonitor monitor(&cluster_, cfg_);
  // Two hotspots against a cool fleet median: the move list must come out
  // in the same stable (ascending hotspot) order every time it is asked.
  for (int i = 0; i < 20; ++i) {
    lat_[0].Add(10);  // The fleet median sits firmly at 10.
  }
  for (int i = 0; i < 4; ++i) {
    lat_[1].Add(50);
    lat_[2].Add(90);
  }
  monitor.Observe();
  fleet::Placer placer(3, fleet::NodeCapacity{}, fleet::PlacePolicy::kLeastLoaded);
  const std::vector<fleet::SloMonitor::Move> a = monitor.SuggestRebalance(placer);
  const std::vector<fleet::SloMonitor::Move> b = monitor.SuggestRebalance(placer);
  ASSERT_EQ(a.size(), 2u);  // Vacuity guard: both hotspots produced a move.
  ASSERT_EQ(b.size(), 2u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].from, b[i].from);
    EXPECT_EQ(a[i].to, b[i].to);
    EXPECT_EQ(a[i].to, 0) << "node 0 is the only non-hotspot target";
  }
}

TEST_F(SloMonitorTest, SuggestRebalanceNeverSuggestsAnUnfittableMove) {
  cfg_.hotspot_factor = 2.0;
  fleet::SloMonitor monitor(&cluster_, cfg_);
  for (int i = 0; i < 4; ++i) {
    lat_[0].Add(10);
    lat_[1].Add(10);
    lat_[2].Add(90);
  }
  monitor.Observe();
  // No node can hold the unit: the hotspot stays listed, the move list is
  // empty — a suggestion the placer would refuse is worse than none.
  fleet::NodeCapacity tiny;
  tiny.vm_slots = 1;
  fleet::Placer placer(3, tiny, fleet::PlacePolicy::kLeastLoaded);
  fleet::WorkloadSpec unit;
  unit.vms = 4;
  EXPECT_TRUE(monitor.SuggestRebalance(placer, unit).empty());
}

TEST_F(SloMonitorTest, SuggestRebalanceSkipsDeadTargets) {
  cfg_.hotspot_factor = 2.0;
  fleet::SloMonitor monitor(&cluster_, cfg_);
  for (int i = 0; i < 4; ++i) {
    lat_[0].Add(10);
    lat_[1].Add(10);
    lat_[2].Add(90);
  }
  monitor.Observe();
  fleet::Placer placer(3, fleet::NodeCapacity{}, fleet::PlacePolicy::kLeastLoaded);
  fleet::WorkloadSpec spec;
  spec.vms = 4;
  placer.Place(spec);  // Node 0 carries load; node 1 would be the coolest.
  cluster_.CrashNode(1);
  std::vector<fleet::SloMonitor::Move> moves = monitor.SuggestRebalance(placer);
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].from, 2);
  EXPECT_EQ(moves[0].to, 0) << "the dead node must not be a target";
}

// --- Cluster determinism -------------------------------------------------

TEST(Cluster, NodePrefixIsIndependentOfClusterSize) {
  struct NodeResult {
    sim::Duration dp_work;
    std::vector<double> startups;
  };
  auto drive = [](int nodes) {
    fleet::Cluster cluster(SmallCluster(nodes, 99));
    fleet::LoadGenConfig lcfg;
    lcfg.seed = 99;
    lcfg.vm_arrival_rate_per_sec = 150.0;
    fleet::LoadGen load(&cluster, lcfg);
    load.Start();
    cluster.RunFor(sim::Millis(60));
    load.Stop();
    std::vector<NodeResult> out;
    for (size_t i = 0; i < cluster.size(); ++i) {
      out.push_back({cluster.node(i).TotalDpWork(),
                     cluster.node(i).device_manager().startup_ms().samples()});
    }
    return out;
  };
  // Building the larger cluster must not change what the first nodes do.
  std::vector<NodeResult> small = drive(2);
  std::vector<NodeResult> large = drive(3);
  for (size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(small[i].dp_work, large[i].dp_work) << "node " << i;
    EXPECT_EQ(small[i].startups, large[i].startups) << "node " << i;
  }
}

TEST(Cluster, SameSeedRunsAreByteIdentical) {
  auto run = [] {
    fleet::ClusterConfig cfg = SmallCluster(2, 31);
    cfg.enable_trace = true;
    cfg.trace_capacity = 1 << 10;
    fleet::Cluster cluster(cfg);
    fleet::LoadGenConfig lcfg;
    lcfg.seed = 31;
    lcfg.vm_arrival_rate_per_sec = 150.0;
    fleet::LoadGen load(&cluster, lcfg);
    load.Start();
    cluster.RunFor(sim::Millis(40));
    load.Stop();
    std::string trace = cluster.MergedTraceJson();
    std::string metrics;
    for (size_t i = 0; i < cluster.size(); ++i) {
      metrics += cluster.observability(i).metrics.Snapshot(cluster.Now()).ToJson();
    }
    return std::pair(trace, metrics);
  };
  auto [trace1, metrics1] = run();
  auto [trace2, metrics2] = run();
  EXPECT_EQ(trace1, trace2);
  EXPECT_EQ(metrics1, metrics2);
}

// The tentpole contract: a parallel run is byte-identical to a serial run —
// metrics JSON, merged Chrome trace, and the rollout wave log. Each node
// owns its clock/Rng/observability, so thread count must not be observable
// in any output.
TEST(Cluster, ParallelRunIsByteIdenticalToSerial) {
  struct Output {
    std::string trace;
    std::string metrics;
    std::string wave_log;
  };
  auto run = [](int threads) {
    fleet::ClusterConfig cfg = SmallCluster(4, 23);
    cfg.enable_trace = true;
    cfg.trace_capacity = 1 << 10;
    cfg.threads = threads;
    fleet::Cluster cluster(cfg);

    fleet::LoadGenConfig lcfg;
    lcfg.seed = 23;
    lcfg.vm_arrival_rate_per_sec = 200.0;
    fleet::LoadGen load(&cluster, lcfg);
    load.Start();
    cluster.RunFor(sim::Millis(20));

    fleet::RolloutConfig rcfg;
    rcfg.waves = {1, 4};
    rcfg.settle = sim::Millis(10);
    rcfg.soak = sim::Millis(20);
    rcfg.slo.threshold = 1e9;
    rcfg.slo.min_samples = 1;
    fleet::Rollout rollout(&cluster, rcfg);
    rollout.Start();
    cluster.RunFor(sim::Millis(150));
    load.Stop();
    EXPECT_EQ(rollout.state(), fleet::Rollout::State::kDone);

    Output out;
    out.trace = cluster.MergedTraceJson();
    for (size_t i = 0; i < cluster.size(); ++i) {
      out.metrics += cluster.observability(i).metrics.Snapshot(cluster.Now()).ToJson();
    }
    for (const fleet::Rollout::Event& e : rollout.history()) {
      out.wave_log += std::to_string(e.at) + " " + e.what + "\n";
    }
    return out;
  };
  Output serial = run(1);
  Output parallel = run(4);
  EXPECT_EQ(serial.trace, parallel.trace);
  EXPECT_EQ(serial.metrics, parallel.metrics);
  EXPECT_EQ(serial.wave_log, parallel.wave_log);
  EXPECT_FALSE(serial.wave_log.empty());
}

TEST(Cluster, OversizedThreadCountClampsToNodes) {
  fleet::ClusterConfig cfg = SmallCluster(2, 7);
  cfg.threads = 64;  // More threads than nodes: clamp, don't spawn idlers.
  fleet::Cluster cluster(cfg);
  EXPECT_EQ(cluster.config().threads, 2);
  cluster.RunFor(sim::Millis(6));
  EXPECT_EQ(cluster.node(0).sim().Now(), cluster.Now());
  EXPECT_EQ(cluster.node(1).sim().Now(), cluster.Now());
}

TEST(Cluster, EpochHooksFireAtEveryBoundaryAndCanBeRemoved) {
  fleet::Cluster cluster(SmallCluster(2, 3));
  std::vector<sim::SimTime> fired;
  uint64_t id = cluster.AddEpochHook([&](sim::SimTime at) { fired.push_back(at); });
  const sim::SimTime start = cluster.Now();
  cluster.RunFor(sim::Millis(6));  // Three 2 ms epochs.
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0], start + sim::Millis(2));
  EXPECT_EQ(fired[2], start + sim::Millis(6));
  EXPECT_EQ(cluster.node(0).sim().Now(), cluster.Now());
  EXPECT_EQ(cluster.node(1).sim().Now(), cluster.Now());

  cluster.RemoveEpochHook(id);
  cluster.RunFor(sim::Millis(4));
  EXPECT_EQ(fired.size(), 3u);
}

TEST(Cluster, EpochBoundaryShrinksNodeEventPools) {
  fleet::Cluster cluster(SmallCluster(2, 3));
  sim::Simulation& sim = cluster.node(0).sim();
  // A burst of scheduled-then-cancelled work (a VM-startup storm's wake)
  // leaves the slot table mostly free; the next epoch boundary gives the
  // memory back.
  std::vector<sim::EventId> burst;
  for (int i = 0; i < 4096; ++i) {
    burst.push_back(sim.Schedule(sim::Seconds(10) + i, [] {}));
  }
  for (sim::EventId id : burst) {
    sim.Cancel(id);
  }
  const size_t before = sim.event_pool_slots();
  ASSERT_GE(before, 4096u);
  cluster.RunFor(sim::Millis(2));  // One epoch.
  EXPECT_LT(sim.event_pool_slots(), before);
}


// --- Score-indexed placement vs the linear-scan reference ----------------

// Brute-force reference: the exact scan Place() used before the score index.
int ReferencePlace(const fleet::Placer& p, const fleet::WorkloadSpec& spec) {
  int best = -1;
  double best_score = 0;
  for (size_t i = 0; i < p.size(); ++i) {
    if (!p.Fits(i, spec)) {
      continue;
    }
    const double score = p.LoadScore(i);
    const bool better =
        best < 0 || (p.policy() == fleet::PlacePolicy::kBinPack ? score > best_score
                                                                : score < best_score);
    if (better) {
      best = static_cast<int>(i);
      best_score = score;
    }
  }
  return best;
}

TEST(Placer, IndexedPlaceMatchesLinearScanUnderChurn) {
  // Randomized commit/release churn: every Place() decision must equal the
  // old O(n) scan's, including its lowest-id tie-breaks (fresh fleets are
  // all-ties, so the tie path is exercised from the first placement).
  for (fleet::PlacePolicy policy :
       {fleet::PlacePolicy::kLeastLoaded, fleet::PlacePolicy::kBinPack}) {
    fleet::NodeCapacity cap;
    cap.vm_slots = 8;
    cap.dp_util = 2.0;
    cap.cp_load = 16.0;
    fleet::Placer placer(13, cap, policy);
    std::vector<std::pair<int, fleet::WorkloadSpec>> admitted;
    uint64_t seed = 0x91aceULL;
    for (int round = 0; round < 400; ++round) {
      seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
      const uint64_t r = seed >> 16;
      if (r % 4 == 0 && !admitted.empty()) {
        const size_t victim = r % admitted.size();
        placer.Release(admitted[victim].first, admitted[victim].second);
        admitted[victim] = admitted.back();
        admitted.pop_back();
        continue;
      }
      fleet::WorkloadSpec spec;
      spec.tenant = "t" + std::to_string(round);
      spec.vms = 1 + static_cast<int>(r % 3);
      spec.dp_util = 0.05 * static_cast<double>(r % 7);
      spec.cp_load = 0.5 * static_cast<double>(r % 5);
      const int expect = ReferencePlace(placer, spec);
      const fleet::Placement got = placer.Place(spec);
      if (expect < 0) {
        EXPECT_FALSE(got.admitted) << fleet::ToString(policy) << " round " << round;
      } else {
        ASSERT_TRUE(got.admitted) << fleet::ToString(policy) << " round " << round;
        EXPECT_EQ(got.node, expect) << fleet::ToString(policy) << " round " << round;
        admitted.push_back({got.node, spec});
      }
    }
    EXPECT_GT(placer.admitted(), 100u);
  }
}

// --- Idle-node fast path -------------------------------------------------

TEST(Cluster, IdleFastPathIsByteIdenticalToEventLoop) {
  // Mostly idle fleet: sparse timers on two of four nodes, nothing on the
  // others. The fast path must land every node exactly where the event loop
  // would — same clocks, same fire times, same event counts.
  struct Output {
    std::vector<sim::SimTime> fires;
    std::vector<uint64_t> events;
    std::vector<sim::SimTime> clocks;
  };
  auto run = [](bool fast) {
    fleet::ClusterConfig cfg = SmallCluster(4, 11);
    cfg.idle_fast_path = fast;
    fleet::Cluster cluster(cfg);
    Output out;
    for (size_t node : {0u, 2u}) {
      sim::Simulation* sim = &cluster.node(node).sim();
      // 7 ms period against a 2 ms epoch: most epochs see no event at all.
      sim->ScheduleRepeating(sim::Millis(7), sim::Millis(7),
                             [&out, sim] { out.fires.push_back(sim->Now()); });
    }
    cluster.RunFor(sim::Millis(60));
    for (size_t i = 0; i < cluster.size(); ++i) {
      out.events.push_back(cluster.node(i).sim().events_executed());
      out.clocks.push_back(cluster.node(i).sim().Now());
    }
    return out;
  };
  Output fast = run(true);
  Output slow = run(false);
  EXPECT_EQ(fast.fires, slow.fires);
  EXPECT_EQ(fast.events, slow.events);
  EXPECT_EQ(fast.clocks, slow.clocks);
  ASSERT_EQ(fast.fires.size(), 16u);  // 2 nodes x 8 fires in 60 ms.
  for (size_t i = 0; i < fast.clocks.size(); ++i) {
    EXPECT_EQ(fast.clocks[i], sim::Millis(60));
  }
}

// --- Flow-aggregate load generation --------------------------------------

TEST(LoadGen, AggregateModeBuildsFleetDistinctFlowPopulations) {
  fleet::ClusterConfig cfg = SmallCluster(4, 17);
  fleet::Cluster cluster(cfg);
  fleet::LoadGenConfig lcfg;
  lcfg.seed = 17;
  lcfg.vm_arrivals = false;
  lcfg.spawn_monitors = false;
  lcfg.aggregate.enabled = true;
  lcfg.aggregate.users_per_node = 200.0;
  lcfg.aggregate.pps_per_user = 200.0;
  lcfg.aggregate.flows_per_user = 1.0;
  fleet::LoadGen load(&cluster, lcfg);
  load.Start();
  ASSERT_EQ(load.node_mixes().size(), cluster.size());
  uint64_t population = 0;
  for (const fleet::LoadGen::NodeMix& mix : load.node_mixes()) {
    EXPECT_GT(mix.pps, 0.0);
    EXPECT_GT(mix.util, 0.0);
    // ~200 flows per node, spread across the node's DP CPUs.
    EXPECT_NEAR(static_cast<double>(mix.flows), 200.0, 8.0);
    population += mix.flows;
  }
  cluster.RunFor(sim::Millis(120));
  load.Stop();
  // The merged RX sketch must see close to the full fleet population: the
  // per-node salts make every node's flows distinct, so the fleet count
  // scales with node count instead of aliasing onto one node's population.
  const double distinct =
      cluster.MergedFlowMonitor(fleet::Cluster::FlowTap::kRx).DistinctFlows();
  EXPECT_GT(distinct, 0.80 * static_cast<double>(population));
  EXPECT_LT(distinct, 1.10 * static_cast<double>(population));
}

TEST(LoadGen, AggregateModeParallelRunIsByteIdenticalToSerial) {
  auto run = [](int threads) {
    fleet::ClusterConfig cfg = SmallCluster(4, 29);
    cfg.threads = threads;
    fleet::Cluster cluster(cfg);
    fleet::LoadGenConfig lcfg;
    lcfg.seed = 29;
    lcfg.aggregate.enabled = true;
    lcfg.aggregate.users_per_node = 150.0;
    lcfg.aggregate.pps_per_user = 100.0;
    lcfg.vm_arrival_rate_per_sec = 100.0;
    fleet::LoadGen load(&cluster, lcfg);
    load.Start();
    cluster.RunFor(sim::Millis(60));
    load.Stop();
    std::string out = cluster.MergedFlowMonitor(fleet::Cluster::FlowTap::kRx).ToJson(8);
    for (size_t i = 0; i < cluster.size(); ++i) {
      out += cluster.observability(i).metrics.Snapshot(cluster.Now()).ToJson();
      out += std::to_string(cluster.node(i).sim().events_executed());
    }
    return out;
  };
  EXPECT_EQ(run(1), run(4));
}

// --- Calendar queue under the fleet --------------------------------------

TEST(Cluster, CalendarEngagedFleetRunIsByteIdenticalToHeapOnly) {
  // Force the calendar on at a tiny threshold and compare a full fleet run
  // against the heap-only build of the same universe: every metric, flow
  // sketch and event count must match byte for byte.
  auto run = [](size_t threshold) {
    fleet::ClusterConfig cfg = SmallCluster(3, 37);
    fleet::Cluster cluster(cfg);
    bool engaged = false;
    for (size_t i = 0; i < cluster.size(); ++i) {
      cluster.node(i).sim().SetCalendarEngageThreshold(threshold);
    }
    fleet::LoadGenConfig lcfg;
    lcfg.seed = 37;
    lcfg.vm_arrival_rate_per_sec = 150.0;
    fleet::LoadGen load(&cluster, lcfg);
    load.Start();
    cluster.RunFor(sim::Millis(60));
    load.Stop();
    std::string out = cluster.MergedFlowMonitor(fleet::Cluster::FlowTap::kDp).ToJson(8);
    for (size_t i = 0; i < cluster.size(); ++i) {
      out += cluster.observability(i).metrics.Snapshot(cluster.Now()).ToJson();
      out += std::to_string(cluster.node(i).sim().events_executed());
      engaged = engaged || cluster.node(i).sim().calendar_engages() > 0;
    }
    return std::pair(out, engaged);
  };
  auto [calendar_out, calendar_engaged] = run(32);
  auto [heap_out, heap_engaged] = run(0);
  EXPECT_TRUE(calendar_engaged);  // The tiny threshold must actually engage.
  EXPECT_FALSE(heap_engaged);
  EXPECT_EQ(calendar_out, heap_out);
}

// --- Runtime enable/disable and rollout ----------------------------------

TEST(RuntimeTaiChi, EnableDisableReenableQuiesces) {
  fleet::Cluster cluster(SmallCluster(1, 11));
  exp::Testbed& bed = cluster.node(0);
  EXPECT_FALSE(bed.taichi_enabled());

  bed.EnableTaiChi();
  cluster.RunFor(sim::Millis(5));
  EXPECT_TRUE(bed.taichi_enabled());
  ASSERT_NE(bed.taichi(), nullptr);

  // Workflows started while enabled complete on the widened CP set.
  bed.device_manager().StartVm(bed.cp_task_cpus());
  cluster.RunFor(sim::Millis(50));
  EXPECT_TRUE(bed.device_manager().AllDone());

  bed.DisableTaiChi();
  EXPECT_TRUE(bed.taichi_draining());
  cluster.RunFor(sim::Millis(20));
  EXPECT_FALSE(bed.taichi_enabled());
  EXPECT_FALSE(bed.taichi_draining());
  EXPECT_EQ(bed.taichi(), nullptr);

  // A second generation comes up cleanly after the first was destroyed.
  bed.EnableTaiChi();
  cluster.RunFor(sim::Millis(5));
  EXPECT_TRUE(bed.taichi_enabled());
  bed.device_manager().StartVm(bed.cp_task_cpus());
  cluster.RunFor(sim::Millis(50));
  EXPECT_TRUE(bed.device_manager().AllDone());
}

class RolloutTest : public ::testing::Test {
 protected:
  static fleet::Cluster MakeCluster() {
    fleet::ClusterConfig cfg = SmallCluster(2, 17);
    return fleet::Cluster(cfg);
  }

  static fleet::LoadGenConfig LoadCfg() {
    fleet::LoadGenConfig lcfg;
    lcfg.seed = 17;
    lcfg.vm_arrival_rate_per_sec = 200.0;
    return lcfg;
  }

  static fleet::RolloutConfig RolloutCfg(double threshold) {
    fleet::RolloutConfig rcfg;
    rcfg.waves = {1, 2};
    rcfg.settle = sim::Millis(10);
    rcfg.soak = sim::Millis(20);
    rcfg.slo.threshold = threshold;
    rcfg.slo.min_samples = 1;
    return rcfg;
  }
};

TEST_F(RolloutTest, ConvergesWhenSloHolds) {
  fleet::Cluster cluster = MakeCluster();
  fleet::LoadGen load(&cluster, LoadCfg());
  load.Start();
  cluster.RunFor(sim::Millis(20));

  fleet::Rollout rollout(&cluster, RolloutCfg(/*threshold=*/1e9));
  rollout.Start();
  EXPECT_EQ(rollout.state(), fleet::Rollout::State::kSoaking);
  cluster.RunFor(sim::Millis(200));
  load.Stop();

  EXPECT_EQ(rollout.state(), fleet::Rollout::State::kDone);
  EXPECT_EQ(rollout.enabled_nodes(), 2u);
  EXPECT_EQ(rollout.gate_reports().size(), 2u);
  EXPECT_TRUE(cluster.node(0).taichi_enabled());
  EXPECT_TRUE(cluster.node(1).taichi_enabled());
}

TEST_F(RolloutTest, RollsBackOnInjectedSloBreach) {
  fleet::Cluster cluster = MakeCluster();
  fleet::LoadGen load(&cluster, LoadCfg());
  load.Start();
  cluster.RunFor(sim::Millis(20));

  // An impossible SLO: the first completed startup breaches the gate.
  fleet::Rollout rollout(&cluster, RolloutCfg(/*threshold=*/1e-6));
  rollout.Start();
  EXPECT_TRUE(cluster.node(0).taichi_enabled());
  cluster.RunFor(sim::Millis(200));
  load.Stop();

  EXPECT_EQ(rollout.state(), fleet::Rollout::State::kRolledBack);
  EXPECT_EQ(rollout.enabled_nodes(), 0u);
  ASSERT_EQ(rollout.gate_reports().size(), 1u);
  EXPECT_TRUE(rollout.gate_reports()[0].fleet_breach);
  // The canary drained back to the baseline; node 1 was never touched.
  EXPECT_FALSE(cluster.node(0).taichi_enabled());
  EXPECT_FALSE(cluster.node(0).taichi_draining());
  EXPECT_EQ(cluster.node(0).taichi(), nullptr);
  EXPECT_FALSE(cluster.node(1).taichi_enabled());
}

}  // namespace
}  // namespace taichi
