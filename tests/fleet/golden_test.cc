// Byte-identity goldens: a small canonical fleet scenario whose metrics JSON
// and merged Chrome trace are pinned to files under tests/fleet/golden/.
//
// This is the regression net for the determinism contract (DESIGN.md §7):
// any change to event (time, seq) ordering, RNG draw order, slot recycling,
// or JSON formatting shows up as a byte diff against goldens produced before
// the change. Regenerate only for an *intentional* behavior change, with
//   TAICHI_REGEN_GOLDEN=1 build/tests/fleet_tests --gtest_filter='Golden.*'
// and review the diff in the commit.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/fleet/cluster.h"
#include "src/fleet/load_gen.h"

#ifndef TAICHI_GOLDEN_DIR
#define TAICHI_GOLDEN_DIR "tests/fleet/golden"
#endif

namespace taichi {
namespace {

struct Artifacts {
  std::string metrics;  // Concatenated per-node metrics JSON snapshots.
  std::string trace;    // Merged Chrome trace JSON.
};

// The scenario must not change between golden regenerations: 3 baseline
// nodes under the Fig. 3 load mix plus VM-startup arrivals, 30 ms, traced.
Artifacts RunCanonicalScenario() {
  fleet::ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.seed = 1234;
  cfg.epoch = sim::Millis(2);
  cfg.enable_trace = true;
  cfg.trace_capacity = 1 << 10;
  fleet::Cluster cluster(cfg);

  fleet::LoadGenConfig lcfg;
  lcfg.seed = 1234;
  lcfg.vm_arrival_rate_per_sec = 120.0;
  fleet::LoadGen load(&cluster, lcfg);
  load.Start();
  cluster.RunFor(sim::Millis(30));
  load.Stop();

  Artifacts out;
  out.trace = cluster.MergedTraceJson();
  for (size_t i = 0; i < cluster.size(); ++i) {
    out.metrics += cluster.observability(i).metrics.Snapshot(cluster.Now()).ToJson();
  }
  return out;
}

std::string GoldenPath(const char* name) {
  return std::string(TAICHI_GOLDEN_DIR) + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void CompareOrRegen(const char* name, const std::string& got) {
  const std::string path = GoldenPath(name);
  if (std::getenv("TAICHI_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    out << got;
    GTEST_FAIL() << "regenerated golden " << path << " (" << got.size()
                 << " bytes); rerun without TAICHI_REGEN_GOLDEN";
  }
  const std::string want = ReadFile(path);
  ASSERT_FALSE(want.empty()) << "missing golden " << path
                             << "; regenerate with TAICHI_REGEN_GOLDEN=1";
  // EXPECT_EQ on multi-MB strings prints unusable diffs; locate the first
  // divergence instead.
  if (got != want) {
    size_t i = 0;
    while (i < got.size() && i < want.size() && got[i] == want[i]) {
      ++i;
    }
    FAIL() << name << " diverges from golden at byte " << i << " (got "
           << got.size() << " bytes, want " << want.size() << "): ..."
           << got.substr(i > 40 ? i - 40 : 0, 80) << "... vs ..."
           << want.substr(i > 40 ? i - 40 : 0, 80) << "...";
  }
}

TEST(Golden, MetricsJsonMatchesPreChangeBytes) {
  CompareOrRegen("canonical_metrics.json", RunCanonicalScenario().metrics);
}

TEST(Golden, MergedTraceMatchesPreChangeBytes) {
  CompareOrRegen("canonical_trace.json", RunCanonicalScenario().trace);
}

}  // namespace
}  // namespace taichi
