#include <gtest/gtest.h>

#include <memory>

#include "src/apps/mysql_sim.h"
#include "src/apps/nginx_sim.h"

namespace taichi::apps {
namespace {

std::unique_ptr<exp::Testbed> Bed(uint64_t seed = 3) {
  exp::TestbedConfig cfg;
  cfg.mode = exp::Mode::kBaseline;
  cfg.seed = seed;
  return std::make_unique<exp::Testbed>(cfg);
}

TEST(MysqlSimTest, ProducesThroughputAndLatency) {
  auto bed = Bed();
  MysqlConfig cfg;
  cfg.threads = 64;
  MysqlSim mysql(bed.get(), cfg);
  MysqlResult r = mysql.Run(sim::Millis(80), sim::Millis(20));
  EXPECT_GT(r.avg_qps, 10000.0);
  EXPECT_GE(r.max_qps, r.avg_qps * 0.9);
  EXPECT_NEAR(r.avg_tps, r.avg_qps / cfg.queries_per_transaction, 1.0);
  // A query takes at least one network round trip plus server compute.
  EXPECT_GT(r.query_latency_us.mean(), 30.0);
}

TEST(MysqlSimTest, StorageQueriesAreSlower) {
  auto bed_io = Bed();
  MysqlConfig with_io;
  with_io.threads = 32;
  with_io.storage_io_prob = 1.0;
  MysqlResult io_result = MysqlSim(bed_io.get(), with_io).Run(sim::Millis(60), sim::Millis(20));

  auto bed_noio = Bed();
  MysqlConfig no_io;
  no_io.threads = 32;
  no_io.storage_io_prob = 0.0;
  MysqlResult mem_result =
      MysqlSim(bed_noio.get(), no_io).Run(sim::Millis(60), sim::Millis(20));

  EXPECT_GT(io_result.query_latency_us.mean(),
            mem_result.query_latency_us.mean() + 50.0);  // Backend latency visible.
  EXPECT_LT(io_result.avg_qps, mem_result.avg_qps);
}

TEST(NginxSimTest, LongConnectionsFasterThanShort) {
  auto bed_long = Bed();
  NginxConfig long_cfg;
  long_cfg.connections = 200;
  NginxResult long_result =
      NginxSim(bed_long.get(), long_cfg).Run(sim::Millis(60), sim::Millis(20));

  auto bed_short = Bed();
  NginxConfig short_cfg;
  short_cfg.connections = 200;
  short_cfg.short_connection = true;
  NginxResult short_result =
      NginxSim(bed_short.get(), short_cfg).Run(sim::Millis(60), sim::Millis(20));

  EXPECT_GT(long_result.requests_per_sec, short_result.requests_per_sec * 1.5);
  EXPECT_GT(short_result.request_latency_us.mean(), long_result.request_latency_us.mean());
}

TEST(NginxSimTest, HttpsShortPaysHandshake) {
  auto bed_http = Bed();
  NginxConfig http;
  http.connections = 200;
  http.short_connection = true;
  NginxResult http_result = NginxSim(bed_http.get(), http).Run(sim::Millis(60), sim::Millis(20));

  auto bed_https = Bed();
  NginxConfig https = http;
  https.https = true;
  NginxResult https_result =
      NginxSim(bed_https.get(), https).Run(sim::Millis(60), sim::Millis(20));

  EXPECT_LT(https_result.requests_per_sec, http_result.requests_per_sec);
}

TEST(NginxSimTest, HttpsLongAmortizesHandshake) {
  auto bed_http = Bed();
  NginxConfig http;
  http.connections = 200;
  NginxResult http_result = NginxSim(bed_http.get(), http).Run(sim::Millis(60), sim::Millis(20));

  auto bed_https = Bed();
  NginxConfig https = http;
  https.https = true;
  NginxResult https_result =
      NginxSim(bed_https.get(), https).Run(sim::Millis(60), sim::Millis(20));
  // Keep-alive HTTPS matches HTTP once established (no per-request TLS cost).
  EXPECT_NEAR(https_result.requests_per_sec / http_result.requests_per_sec, 1.0, 0.05);
}

}  // namespace
}  // namespace taichi::apps
