file(REMOVE_RECURSE
  "CMakeFiles/sec8_dp_boost.dir/sec8_dp_boost.cc.o"
  "CMakeFiles/sec8_dp_boost.dir/sec8_dp_boost.cc.o.d"
  "sec8_dp_boost"
  "sec8_dp_boost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec8_dp_boost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
