# Empty dependencies file for sec8_dp_boost.
# This may be replaced when dependencies are built.
