# Empty dependencies file for fig17_vm_startup.
# This may be replaced when dependencies are built.
