file(REMOVE_RECURSE
  "CMakeFiles/fig17_vm_startup.dir/fig17_vm_startup.cc.o"
  "CMakeFiles/fig17_vm_startup.dir/fig17_vm_startup.cc.o.d"
  "fig17_vm_startup"
  "fig17_vm_startup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_vm_startup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
