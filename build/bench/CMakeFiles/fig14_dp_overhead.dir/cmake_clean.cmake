file(REMOVE_RECURSE
  "CMakeFiles/fig14_dp_overhead.dir/fig14_dp_overhead.cc.o"
  "CMakeFiles/fig14_dp_overhead.dir/fig14_dp_overhead.cc.o.d"
  "fig14_dp_overhead"
  "fig14_dp_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_dp_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
