# Empty compiler generated dependencies file for fig14_dp_overhead.
# This may be replaced when dependencies are built.
