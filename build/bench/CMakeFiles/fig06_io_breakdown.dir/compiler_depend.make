# Empty compiler generated dependencies file for fig06_io_breakdown.
# This may be replaced when dependencies are built.
