file(REMOVE_RECURSE
  "CMakeFiles/fig06_io_breakdown.dir/fig06_io_breakdown.cc.o"
  "CMakeFiles/fig06_io_breakdown.dir/fig06_io_breakdown.cc.o.d"
  "fig06_io_breakdown"
  "fig06_io_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_io_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
