# Empty compiler generated dependencies file for fig02_motivation_density.
# This may be replaced when dependencies are built.
