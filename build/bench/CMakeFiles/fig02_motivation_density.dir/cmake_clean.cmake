file(REMOVE_RECURSE
  "CMakeFiles/fig02_motivation_density.dir/fig02_motivation_density.cc.o"
  "CMakeFiles/fig02_motivation_density.dir/fig02_motivation_density.cc.o.d"
  "fig02_motivation_density"
  "fig02_motivation_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_motivation_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
