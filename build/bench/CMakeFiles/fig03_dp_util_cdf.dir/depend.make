# Empty dependencies file for fig03_dp_util_cdf.
# This may be replaced when dependencies are built.
