file(REMOVE_RECURSE
  "CMakeFiles/fig03_dp_util_cdf.dir/fig03_dp_util_cdf.cc.o"
  "CMakeFiles/fig03_dp_util_cdf.dir/fig03_dp_util_cdf.cc.o.d"
  "fig03_dp_util_cdf"
  "fig03_dp_util_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_dp_util_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
