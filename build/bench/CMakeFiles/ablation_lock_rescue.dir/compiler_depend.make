# Empty compiler generated dependencies file for ablation_lock_rescue.
# This may be replaced when dependencies are built.
