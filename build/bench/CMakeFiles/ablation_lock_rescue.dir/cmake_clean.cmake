file(REMOVE_RECURSE
  "CMakeFiles/ablation_lock_rescue.dir/ablation_lock_rescue.cc.o"
  "CMakeFiles/ablation_lock_rescue.dir/ablation_lock_rescue.cc.o.d"
  "ablation_lock_rescue"
  "ablation_lock_rescue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lock_rescue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
