# Empty compiler generated dependencies file for tab02_virt_compare.
# This may be replaced when dependencies are built.
