file(REMOVE_RECURSE
  "CMakeFiles/tab02_virt_compare.dir/tab02_virt_compare.cc.o"
  "CMakeFiles/tab02_virt_compare.dir/tab02_virt_compare.cc.o.d"
  "tab02_virt_compare"
  "tab02_virt_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_virt_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
