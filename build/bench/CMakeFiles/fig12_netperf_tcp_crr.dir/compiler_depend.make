# Empty compiler generated dependencies file for fig12_netperf_tcp_crr.
# This may be replaced when dependencies are built.
