file(REMOVE_RECURSE
  "CMakeFiles/fig12_netperf_tcp_crr.dir/fig12_netperf_tcp_crr.cc.o"
  "CMakeFiles/fig12_netperf_tcp_crr.dir/fig12_netperf_tcp_crr.cc.o.d"
  "fig12_netperf_tcp_crr"
  "fig12_netperf_tcp_crr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_netperf_tcp_crr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
