# Empty compiler generated dependencies file for fig15_mysql.
# This may be replaced when dependencies are built.
