file(REMOVE_RECURSE
  "CMakeFiles/fig15_mysql.dir/fig15_mysql.cc.o"
  "CMakeFiles/fig15_mysql.dir/fig15_mysql.cc.o.d"
  "fig15_mysql"
  "fig15_mysql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_mysql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
