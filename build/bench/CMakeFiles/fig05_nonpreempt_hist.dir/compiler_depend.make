# Empty compiler generated dependencies file for fig05_nonpreempt_hist.
# This may be replaced when dependencies are built.
