file(REMOVE_RECURSE
  "CMakeFiles/fig05_nonpreempt_hist.dir/fig05_nonpreempt_hist.cc.o"
  "CMakeFiles/fig05_nonpreempt_hist.dir/fig05_nonpreempt_hist.cc.o.d"
  "fig05_nonpreempt_hist"
  "fig05_nonpreempt_hist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_nonpreempt_hist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
