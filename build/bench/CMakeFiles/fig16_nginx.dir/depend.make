# Empty dependencies file for fig16_nginx.
# This may be replaced when dependencies are built.
