file(REMOVE_RECURSE
  "CMakeFiles/fig16_nginx.dir/fig16_nginx.cc.o"
  "CMakeFiles/fig16_nginx.dir/fig16_nginx.cc.o.d"
  "fig16_nginx"
  "fig16_nginx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_nginx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
