# Empty compiler generated dependencies file for fig13_fio_iops.
# This may be replaced when dependencies are built.
