file(REMOVE_RECURSE
  "CMakeFiles/fig13_fio_iops.dir/fig13_fio_iops.cc.o"
  "CMakeFiles/fig13_fio_iops.dir/fig13_fio_iops.cc.o.d"
  "fig13_fio_iops"
  "fig13_fio_iops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_fio_iops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
