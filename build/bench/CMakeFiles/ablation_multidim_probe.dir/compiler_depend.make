# Empty compiler generated dependencies file for ablation_multidim_probe.
# This may be replaced when dependencies are built.
