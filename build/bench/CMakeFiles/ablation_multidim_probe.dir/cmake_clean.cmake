file(REMOVE_RECURSE
  "CMakeFiles/ablation_multidim_probe.dir/ablation_multidim_probe.cc.o"
  "CMakeFiles/ablation_multidim_probe.dir/ablation_multidim_probe.cc.o.d"
  "ablation_multidim_probe"
  "ablation_multidim_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multidim_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
