# Empty dependencies file for tab01_mechanism_compare.
# This may be replaced when dependencies are built.
