file(REMOVE_RECURSE
  "CMakeFiles/tab01_mechanism_compare.dir/tab01_mechanism_compare.cc.o"
  "CMakeFiles/tab01_mechanism_compare.dir/tab01_mechanism_compare.cc.o.d"
  "tab01_mechanism_compare"
  "tab01_mechanism_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_mechanism_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
