# Empty dependencies file for fig11_cp_concurrency.
# This may be replaced when dependencies are built.
