file(REMOVE_RECURSE
  "CMakeFiles/fig11_cp_concurrency.dir/fig11_cp_concurrency.cc.o"
  "CMakeFiles/fig11_cp_concurrency.dir/fig11_cp_concurrency.cc.o.d"
  "fig11_cp_concurrency"
  "fig11_cp_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_cp_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
