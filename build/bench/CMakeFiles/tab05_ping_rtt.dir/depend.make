# Empty dependencies file for tab05_ping_rtt.
# This may be replaced when dependencies are built.
