file(REMOVE_RECURSE
  "CMakeFiles/tab05_ping_rtt.dir/tab05_ping_rtt.cc.o"
  "CMakeFiles/tab05_ping_rtt.dir/tab05_ping_rtt.cc.o.d"
  "tab05_ping_rtt"
  "tab05_ping_rtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab05_ping_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
