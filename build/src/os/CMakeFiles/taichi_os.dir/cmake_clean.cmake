file(REMOVE_RECURSE
  "CMakeFiles/taichi_os.dir/cgroup.cc.o"
  "CMakeFiles/taichi_os.dir/cgroup.cc.o.d"
  "CMakeFiles/taichi_os.dir/kernel.cc.o"
  "CMakeFiles/taichi_os.dir/kernel.cc.o.d"
  "CMakeFiles/taichi_os.dir/types.cc.o"
  "CMakeFiles/taichi_os.dir/types.cc.o.d"
  "libtaichi_os.a"
  "libtaichi_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taichi_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
