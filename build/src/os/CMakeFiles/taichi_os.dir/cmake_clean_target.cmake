file(REMOVE_RECURSE
  "libtaichi_os.a"
)
