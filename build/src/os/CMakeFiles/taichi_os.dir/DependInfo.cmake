
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/cgroup.cc" "src/os/CMakeFiles/taichi_os.dir/cgroup.cc.o" "gcc" "src/os/CMakeFiles/taichi_os.dir/cgroup.cc.o.d"
  "/root/repo/src/os/kernel.cc" "src/os/CMakeFiles/taichi_os.dir/kernel.cc.o" "gcc" "src/os/CMakeFiles/taichi_os.dir/kernel.cc.o.d"
  "/root/repo/src/os/types.cc" "src/os/CMakeFiles/taichi_os.dir/types.cc.o" "gcc" "src/os/CMakeFiles/taichi_os.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/taichi_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/taichi_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
