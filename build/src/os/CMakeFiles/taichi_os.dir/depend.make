# Empty dependencies file for taichi_os.
# This may be replaced when dependencies are built.
