file(REMOVE_RECURSE
  "CMakeFiles/taichi_exp.dir/runners.cc.o"
  "CMakeFiles/taichi_exp.dir/runners.cc.o.d"
  "CMakeFiles/taichi_exp.dir/testbed.cc.o"
  "CMakeFiles/taichi_exp.dir/testbed.cc.o.d"
  "libtaichi_exp.a"
  "libtaichi_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taichi_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
