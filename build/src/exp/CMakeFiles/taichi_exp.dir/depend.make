# Empty dependencies file for taichi_exp.
# This may be replaced when dependencies are built.
