file(REMOVE_RECURSE
  "libtaichi_exp.a"
)
