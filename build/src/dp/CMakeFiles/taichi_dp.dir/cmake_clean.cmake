file(REMOVE_RECURSE
  "CMakeFiles/taichi_dp.dir/poll_service.cc.o"
  "CMakeFiles/taichi_dp.dir/poll_service.cc.o.d"
  "CMakeFiles/taichi_dp.dir/sources.cc.o"
  "CMakeFiles/taichi_dp.dir/sources.cc.o.d"
  "libtaichi_dp.a"
  "libtaichi_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taichi_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
