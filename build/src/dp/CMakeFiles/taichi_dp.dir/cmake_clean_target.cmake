file(REMOVE_RECURSE
  "libtaichi_dp.a"
)
