# Empty dependencies file for taichi_dp.
# This may be replaced when dependencies are built.
