file(REMOVE_RECURSE
  "CMakeFiles/taichi_hw.dir/accelerator.cc.o"
  "CMakeFiles/taichi_hw.dir/accelerator.cc.o.d"
  "CMakeFiles/taichi_hw.dir/apic.cc.o"
  "CMakeFiles/taichi_hw.dir/apic.cc.o.d"
  "CMakeFiles/taichi_hw.dir/hw_probe.cc.o"
  "CMakeFiles/taichi_hw.dir/hw_probe.cc.o.d"
  "CMakeFiles/taichi_hw.dir/machine.cc.o"
  "CMakeFiles/taichi_hw.dir/machine.cc.o.d"
  "CMakeFiles/taichi_hw.dir/nic_port.cc.o"
  "CMakeFiles/taichi_hw.dir/nic_port.cc.o.d"
  "libtaichi_hw.a"
  "libtaichi_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taichi_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
