file(REMOVE_RECURSE
  "libtaichi_hw.a"
)
