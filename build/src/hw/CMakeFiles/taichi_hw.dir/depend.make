# Empty dependencies file for taichi_hw.
# This may be replaced when dependencies are built.
