
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/accelerator.cc" "src/hw/CMakeFiles/taichi_hw.dir/accelerator.cc.o" "gcc" "src/hw/CMakeFiles/taichi_hw.dir/accelerator.cc.o.d"
  "/root/repo/src/hw/apic.cc" "src/hw/CMakeFiles/taichi_hw.dir/apic.cc.o" "gcc" "src/hw/CMakeFiles/taichi_hw.dir/apic.cc.o.d"
  "/root/repo/src/hw/hw_probe.cc" "src/hw/CMakeFiles/taichi_hw.dir/hw_probe.cc.o" "gcc" "src/hw/CMakeFiles/taichi_hw.dir/hw_probe.cc.o.d"
  "/root/repo/src/hw/machine.cc" "src/hw/CMakeFiles/taichi_hw.dir/machine.cc.o" "gcc" "src/hw/CMakeFiles/taichi_hw.dir/machine.cc.o.d"
  "/root/repo/src/hw/nic_port.cc" "src/hw/CMakeFiles/taichi_hw.dir/nic_port.cc.o" "gcc" "src/hw/CMakeFiles/taichi_hw.dir/nic_port.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/taichi_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
