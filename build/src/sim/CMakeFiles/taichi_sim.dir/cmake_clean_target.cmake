file(REMOVE_RECURSE
  "libtaichi_sim.a"
)
