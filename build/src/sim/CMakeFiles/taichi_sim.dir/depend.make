# Empty dependencies file for taichi_sim.
# This may be replaced when dependencies are built.
