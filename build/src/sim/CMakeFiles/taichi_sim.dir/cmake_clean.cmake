file(REMOVE_RECURSE
  "CMakeFiles/taichi_sim.dir/event_queue.cc.o"
  "CMakeFiles/taichi_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/taichi_sim.dir/logging.cc.o"
  "CMakeFiles/taichi_sim.dir/logging.cc.o.d"
  "CMakeFiles/taichi_sim.dir/random.cc.o"
  "CMakeFiles/taichi_sim.dir/random.cc.o.d"
  "CMakeFiles/taichi_sim.dir/simulation.cc.o"
  "CMakeFiles/taichi_sim.dir/simulation.cc.o.d"
  "CMakeFiles/taichi_sim.dir/stats.cc.o"
  "CMakeFiles/taichi_sim.dir/stats.cc.o.d"
  "CMakeFiles/taichi_sim.dir/table.cc.o"
  "CMakeFiles/taichi_sim.dir/table.cc.o.d"
  "CMakeFiles/taichi_sim.dir/time.cc.o"
  "CMakeFiles/taichi_sim.dir/time.cc.o.d"
  "libtaichi_sim.a"
  "libtaichi_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taichi_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
