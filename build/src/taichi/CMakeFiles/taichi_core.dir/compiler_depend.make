# Empty compiler generated dependencies file for taichi_core.
# This may be replaced when dependencies are built.
