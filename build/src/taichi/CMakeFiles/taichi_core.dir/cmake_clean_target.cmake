file(REMOVE_RECURSE
  "libtaichi_core.a"
)
