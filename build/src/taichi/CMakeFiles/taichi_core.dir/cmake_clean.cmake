file(REMOVE_RECURSE
  "CMakeFiles/taichi_core.dir/audit.cc.o"
  "CMakeFiles/taichi_core.dir/audit.cc.o.d"
  "CMakeFiles/taichi_core.dir/ipi_orchestrator.cc.o"
  "CMakeFiles/taichi_core.dir/ipi_orchestrator.cc.o.d"
  "CMakeFiles/taichi_core.dir/sw_probe.cc.o"
  "CMakeFiles/taichi_core.dir/sw_probe.cc.o.d"
  "CMakeFiles/taichi_core.dir/taichi.cc.o"
  "CMakeFiles/taichi_core.dir/taichi.cc.o.d"
  "CMakeFiles/taichi_core.dir/vcpu_scheduler.cc.o"
  "CMakeFiles/taichi_core.dir/vcpu_scheduler.cc.o.d"
  "libtaichi_core.a"
  "libtaichi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taichi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
