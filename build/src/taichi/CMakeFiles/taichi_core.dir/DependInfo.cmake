
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/taichi/audit.cc" "src/taichi/CMakeFiles/taichi_core.dir/audit.cc.o" "gcc" "src/taichi/CMakeFiles/taichi_core.dir/audit.cc.o.d"
  "/root/repo/src/taichi/ipi_orchestrator.cc" "src/taichi/CMakeFiles/taichi_core.dir/ipi_orchestrator.cc.o" "gcc" "src/taichi/CMakeFiles/taichi_core.dir/ipi_orchestrator.cc.o.d"
  "/root/repo/src/taichi/sw_probe.cc" "src/taichi/CMakeFiles/taichi_core.dir/sw_probe.cc.o" "gcc" "src/taichi/CMakeFiles/taichi_core.dir/sw_probe.cc.o.d"
  "/root/repo/src/taichi/taichi.cc" "src/taichi/CMakeFiles/taichi_core.dir/taichi.cc.o" "gcc" "src/taichi/CMakeFiles/taichi_core.dir/taichi.cc.o.d"
  "/root/repo/src/taichi/vcpu_scheduler.cc" "src/taichi/CMakeFiles/taichi_core.dir/vcpu_scheduler.cc.o" "gcc" "src/taichi/CMakeFiles/taichi_core.dir/vcpu_scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/virt/CMakeFiles/taichi_virt.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/taichi_os.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/taichi_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/taichi_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
