file(REMOVE_RECURSE
  "CMakeFiles/taichi_virt.dir/guest_exit_mux.cc.o"
  "CMakeFiles/taichi_virt.dir/guest_exit_mux.cc.o.d"
  "CMakeFiles/taichi_virt.dir/vcpu_pool.cc.o"
  "CMakeFiles/taichi_virt.dir/vcpu_pool.cc.o.d"
  "libtaichi_virt.a"
  "libtaichi_virt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taichi_virt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
