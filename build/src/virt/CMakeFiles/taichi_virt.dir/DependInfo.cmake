
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/virt/guest_exit_mux.cc" "src/virt/CMakeFiles/taichi_virt.dir/guest_exit_mux.cc.o" "gcc" "src/virt/CMakeFiles/taichi_virt.dir/guest_exit_mux.cc.o.d"
  "/root/repo/src/virt/vcpu_pool.cc" "src/virt/CMakeFiles/taichi_virt.dir/vcpu_pool.cc.o" "gcc" "src/virt/CMakeFiles/taichi_virt.dir/vcpu_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/taichi_os.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/taichi_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/taichi_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
