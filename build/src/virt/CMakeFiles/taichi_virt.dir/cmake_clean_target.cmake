file(REMOVE_RECURSE
  "libtaichi_virt.a"
)
