# Empty dependencies file for taichi_virt.
# This may be replaced when dependencies are built.
