file(REMOVE_RECURSE
  "libtaichi_cp.a"
)
