file(REMOVE_RECURSE
  "CMakeFiles/taichi_cp.dir/cp_profiles.cc.o"
  "CMakeFiles/taichi_cp.dir/cp_profiles.cc.o.d"
  "CMakeFiles/taichi_cp.dir/device_manager.cc.o"
  "CMakeFiles/taichi_cp.dir/device_manager.cc.o.d"
  "CMakeFiles/taichi_cp.dir/monitor.cc.o"
  "CMakeFiles/taichi_cp.dir/monitor.cc.o.d"
  "CMakeFiles/taichi_cp.dir/synth_cp.cc.o"
  "CMakeFiles/taichi_cp.dir/synth_cp.cc.o.d"
  "libtaichi_cp.a"
  "libtaichi_cp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taichi_cp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
