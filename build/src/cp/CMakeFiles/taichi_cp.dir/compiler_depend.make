# Empty compiler generated dependencies file for taichi_cp.
# This may be replaced when dependencies are built.
