
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cp/cp_profiles.cc" "src/cp/CMakeFiles/taichi_cp.dir/cp_profiles.cc.o" "gcc" "src/cp/CMakeFiles/taichi_cp.dir/cp_profiles.cc.o.d"
  "/root/repo/src/cp/device_manager.cc" "src/cp/CMakeFiles/taichi_cp.dir/device_manager.cc.o" "gcc" "src/cp/CMakeFiles/taichi_cp.dir/device_manager.cc.o.d"
  "/root/repo/src/cp/monitor.cc" "src/cp/CMakeFiles/taichi_cp.dir/monitor.cc.o" "gcc" "src/cp/CMakeFiles/taichi_cp.dir/monitor.cc.o.d"
  "/root/repo/src/cp/synth_cp.cc" "src/cp/CMakeFiles/taichi_cp.dir/synth_cp.cc.o" "gcc" "src/cp/CMakeFiles/taichi_cp.dir/synth_cp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/taichi_os.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/taichi_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/taichi_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
