# Empty compiler generated dependencies file for taichi_apps.
# This may be replaced when dependencies are built.
