file(REMOVE_RECURSE
  "CMakeFiles/taichi_apps.dir/mysql_sim.cc.o"
  "CMakeFiles/taichi_apps.dir/mysql_sim.cc.o.d"
  "CMakeFiles/taichi_apps.dir/nginx_sim.cc.o"
  "CMakeFiles/taichi_apps.dir/nginx_sim.cc.o.d"
  "libtaichi_apps.a"
  "libtaichi_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taichi_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
