file(REMOVE_RECURSE
  "libtaichi_apps.a"
)
