file(REMOVE_RECURSE
  "CMakeFiles/hw_tests.dir/hw/accelerator_test.cc.o"
  "CMakeFiles/hw_tests.dir/hw/accelerator_test.cc.o.d"
  "CMakeFiles/hw_tests.dir/hw/apic_test.cc.o"
  "CMakeFiles/hw_tests.dir/hw/apic_test.cc.o.d"
  "CMakeFiles/hw_tests.dir/hw/hw_probe_test.cc.o"
  "CMakeFiles/hw_tests.dir/hw/hw_probe_test.cc.o.d"
  "CMakeFiles/hw_tests.dir/hw/nic_port_test.cc.o"
  "CMakeFiles/hw_tests.dir/hw/nic_port_test.cc.o.d"
  "CMakeFiles/hw_tests.dir/hw/ring_test.cc.o"
  "CMakeFiles/hw_tests.dir/hw/ring_test.cc.o.d"
  "hw_tests"
  "hw_tests.pdb"
  "hw_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
