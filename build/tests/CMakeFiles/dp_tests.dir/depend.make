# Empty dependencies file for dp_tests.
# This may be replaced when dependencies are built.
