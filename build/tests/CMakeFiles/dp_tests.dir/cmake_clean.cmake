file(REMOVE_RECURSE
  "CMakeFiles/dp_tests.dir/dp/poll_service_test.cc.o"
  "CMakeFiles/dp_tests.dir/dp/poll_service_test.cc.o.d"
  "CMakeFiles/dp_tests.dir/dp/sources_test.cc.o"
  "CMakeFiles/dp_tests.dir/dp/sources_test.cc.o.d"
  "dp_tests"
  "dp_tests.pdb"
  "dp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
