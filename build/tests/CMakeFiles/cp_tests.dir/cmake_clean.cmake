file(REMOVE_RECURSE
  "CMakeFiles/cp_tests.dir/cp/cp_tasks_test.cc.o"
  "CMakeFiles/cp_tests.dir/cp/cp_tasks_test.cc.o.d"
  "cp_tests"
  "cp_tests.pdb"
  "cp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
