# Empty dependencies file for cp_tests.
# This may be replaced when dependencies are built.
