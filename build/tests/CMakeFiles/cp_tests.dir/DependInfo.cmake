
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cp/cp_tasks_test.cc" "tests/CMakeFiles/cp_tests.dir/cp/cp_tasks_test.cc.o" "gcc" "tests/CMakeFiles/cp_tests.dir/cp/cp_tasks_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/taichi_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/exp/CMakeFiles/taichi_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/cp/CMakeFiles/taichi_cp.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/taichi_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/taichi/CMakeFiles/taichi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/virt/CMakeFiles/taichi_virt.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/taichi_os.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/taichi_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/taichi_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
