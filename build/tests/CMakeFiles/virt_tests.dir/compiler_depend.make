# Empty compiler generated dependencies file for virt_tests.
# This may be replaced when dependencies are built.
