file(REMOVE_RECURSE
  "CMakeFiles/virt_tests.dir/virt/virt_test.cc.o"
  "CMakeFiles/virt_tests.dir/virt/virt_test.cc.o.d"
  "virt_tests"
  "virt_tests.pdb"
  "virt_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virt_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
