file(REMOVE_RECURSE
  "CMakeFiles/os_tests.dir/os/affinity_test.cc.o"
  "CMakeFiles/os_tests.dir/os/affinity_test.cc.o.d"
  "CMakeFiles/os_tests.dir/os/cgroup_test.cc.o"
  "CMakeFiles/os_tests.dir/os/cgroup_test.cc.o.d"
  "CMakeFiles/os_tests.dir/os/cpuset_test.cc.o"
  "CMakeFiles/os_tests.dir/os/cpuset_test.cc.o.d"
  "CMakeFiles/os_tests.dir/os/guest_mode_test.cc.o"
  "CMakeFiles/os_tests.dir/os/guest_mode_test.cc.o.d"
  "CMakeFiles/os_tests.dir/os/kernel_edge_test.cc.o"
  "CMakeFiles/os_tests.dir/os/kernel_edge_test.cc.o.d"
  "CMakeFiles/os_tests.dir/os/kernel_test.cc.o"
  "CMakeFiles/os_tests.dir/os/kernel_test.cc.o.d"
  "CMakeFiles/os_tests.dir/os/sched_property_test.cc.o"
  "CMakeFiles/os_tests.dir/os/sched_property_test.cc.o.d"
  "CMakeFiles/os_tests.dir/os/softirq_test.cc.o"
  "CMakeFiles/os_tests.dir/os/softirq_test.cc.o.d"
  "CMakeFiles/os_tests.dir/os/spinlock_test.cc.o"
  "CMakeFiles/os_tests.dir/os/spinlock_test.cc.o.d"
  "os_tests"
  "os_tests.pdb"
  "os_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
