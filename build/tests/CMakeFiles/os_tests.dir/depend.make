# Empty dependencies file for os_tests.
# This may be replaced when dependencies are built.
