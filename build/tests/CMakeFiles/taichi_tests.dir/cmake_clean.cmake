file(REMOVE_RECURSE
  "CMakeFiles/taichi_tests.dir/taichi/audit_test.cc.o"
  "CMakeFiles/taichi_tests.dir/taichi/audit_test.cc.o.d"
  "CMakeFiles/taichi_tests.dir/taichi/sw_probe_test.cc.o"
  "CMakeFiles/taichi_tests.dir/taichi/sw_probe_test.cc.o.d"
  "CMakeFiles/taichi_tests.dir/taichi/taichi_test.cc.o"
  "CMakeFiles/taichi_tests.dir/taichi/taichi_test.cc.o.d"
  "taichi_tests"
  "taichi_tests.pdb"
  "taichi_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taichi_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
