# Empty dependencies file for taichi_tests.
# This may be replaced when dependencies are built.
