# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/hw_tests[1]_include.cmake")
include("/root/repo/build/tests/os_tests[1]_include.cmake")
include("/root/repo/build/tests/taichi_tests[1]_include.cmake")
include("/root/repo/build/tests/virt_tests[1]_include.cmake")
include("/root/repo/build/tests/dp_tests[1]_include.cmake")
include("/root/repo/build/tests/cp_tests[1]_include.cmake")
include("/root/repo/build/tests/apps_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
