file(REMOVE_RECURSE
  "CMakeFiles/latency_spike_demo.dir/latency_spike_demo.cpp.o"
  "CMakeFiles/latency_spike_demo.dir/latency_spike_demo.cpp.o.d"
  "latency_spike_demo"
  "latency_spike_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_spike_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
