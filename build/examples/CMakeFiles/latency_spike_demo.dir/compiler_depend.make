# Empty compiler generated dependencies file for latency_spike_demo.
# This may be replaced when dependencies are built.
