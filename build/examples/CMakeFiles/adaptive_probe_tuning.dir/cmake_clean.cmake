file(REMOVE_RECURSE
  "CMakeFiles/adaptive_probe_tuning.dir/adaptive_probe_tuning.cpp.o"
  "CMakeFiles/adaptive_probe_tuning.dir/adaptive_probe_tuning.cpp.o.d"
  "adaptive_probe_tuning"
  "adaptive_probe_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_probe_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
