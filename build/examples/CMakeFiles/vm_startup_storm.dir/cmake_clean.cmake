file(REMOVE_RECURSE
  "CMakeFiles/vm_startup_storm.dir/vm_startup_storm.cpp.o"
  "CMakeFiles/vm_startup_storm.dir/vm_startup_storm.cpp.o.d"
  "vm_startup_storm"
  "vm_startup_storm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_startup_storm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
