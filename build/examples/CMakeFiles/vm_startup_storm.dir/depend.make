# Empty dependencies file for vm_startup_storm.
# This may be replaced when dependencies are built.
