#include "src/dp/sources.h"

#include <algorithm>
#include <cmath>

#include "src/obs/sketch/sketch_hash.h"

namespace taichi::dp {

OpenLoopSource::OpenLoopSource(sim::Simulation* sim, hw::Accelerator* accel, uint32_t queue,
                               OpenLoopConfig config, uint64_t seed)
    : sim_(sim), accel_(accel), queue_(queue), config_(config), rng_(seed) {}

void OpenLoopSource::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  if (config_.process == OpenLoopConfig::Process::kMmpp) {
    burst_state_ = false;
    state_until_ = sim_->Now() + rng_.ExpDuration(config_.calm_mean);
  }
  ScheduleNext();
}

double OpenLoopSource::CurrentRate() const {
  if (config_.process == OpenLoopConfig::Process::kMmpp && burst_state_) {
    return config_.rate_pps * config_.burst_multiplier;
  }
  return config_.rate_pps;
}

obs::FlowKey OpenLoopSource::MakeFlowKey(uint64_t packet_index) const {
  if (config_.attack_sources > 0) {
    // DDoS mode: few spoofed attackers, uniform share each, one victim.
    const uint64_t h = obs::sketch::Mix64(
        obs::sketch::Mix64(config_.flow ^ 0xddb05ULL) ^ packet_index);
    const uint64_t rank = h % config_.attack_sources;
    obs::FlowKey key;
    key.src_ip = kAttackSrcBase | static_cast<uint32_t>(rank & 0xffu);
    key.dst_ip = 0x0a800000u | static_cast<uint32_t>(config_.flow & 0xffffu);
    key.src_port = static_cast<uint16_t>(1024 + rank);
    key.dst_port = 53;  // The classic reflection/flood victim port.
    key.proto = obs::kProtoUdp;
    return key;
  }
  uint64_t rank = 0;
  if (config_.flow_count > 1) {
    // Counter-hash draw: uniform u from a mix of (source flow id, packet
    // index), mapped through rank = floor(N^(u^skew)) - 1 so rank 0 takes
    // the largest share and the tail thins out Zipf-style. No Rng draws.
    // The salt multiplies through a large odd constant so per-node streams
    // decorrelate; salt 0 contributes nothing and reproduces the unsalted
    // draw bit for bit.
    const uint64_t h = obs::sketch::Mix64(
        obs::sketch::Mix64(config_.flow ^ 0xf10f5ULL) ^
        (config_.flow_salt * 0x9e3779b97f4a7c15ULL) ^ packet_index);
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    const double n = static_cast<double>(config_.flow_count);
    const double r = std::pow(n, std::pow(u, config_.flow_skew));
    rank = std::min<uint64_t>(config_.flow_count - 1,
                              static_cast<uint64_t>(r) - 1);
  }
  obs::FlowKey key;
  key.src_ip = 0x0a000000u | static_cast<uint32_t>(rank & 0xffffffu);
  // Salted sources serve per-node endpoint blocks (32 sources per salt in
  // 23 bits of 10.128/9), so tuples from different nodes never collide
  // fleet-wide; salt 0 keeps the original per-source endpoint exactly.
  const uint32_t dst_low =
      config_.flow_salt == 0
          ? static_cast<uint32_t>(config_.flow & 0xffffu)
          : static_cast<uint32_t>(((config_.flow_salt << 5) + config_.flow) & 0x7fffffu);
  key.dst_ip = 0x0a800000u | dst_low;
  key.src_port = static_cast<uint16_t>(1024 + rank % 60000);
  key.dst_port = config_.kind == hw::IoKind::kNetTx ? 80 : 443;
  key.proto = config_.kind == hw::IoKind::kBlockIo ? obs::kProtoBlock
                                                   : obs::kProtoTcp;
  return key;
}

sim::Duration OpenLoopSource::NextGap() {
  const double gap_ns = 1e9 / CurrentRate();
  if (config_.process == OpenLoopConfig::Process::kConstant) {
    return std::max<sim::Duration>(1, static_cast<sim::Duration>(gap_ns));
  }
  return rng_.ExpDuration(std::max<sim::Duration>(1, static_cast<sim::Duration>(gap_ns)));
}

void OpenLoopSource::ScheduleNext() {
  if (!running_ || CurrentRate() <= 0) {
    return;
  }
  // One repeating event drives the whole arrival process: each firing
  // injects a packet and re-keys the event with the next (possibly
  // burst-state-dependent) gap, so the per-packet path builds no closures.
  // The gap draw stays after the injection, preserving the RNG draw order of
  // the schedule-per-packet pattern this replaces.
  const sim::Duration first = NextGap();
  event_ = sim_->ScheduleRepeating(first, first, [this] {
    if (!running_ || CurrentRate() <= 0) {
      sim_->Cancel(event_);
      event_ = sim::kInvalidEventId;
      return;
    }
    if (config_.process == OpenLoopConfig::Process::kMmpp && sim_->Now() >= state_until_) {
      burst_state_ = !burst_state_;
      state_until_ = sim_->Now() + rng_.ExpDuration(burst_state_ ? config_.burst_mean
                                                                 : config_.calm_mean);
    }
    hw::IoPacket pkt;
    pkt.id = next_id_++;
    pkt.kind = config_.kind;
    pkt.queue = queue_;
    pkt.size_bytes = config_.size_bytes;
    pkt.flow = config_.flow;
    pkt.flow_key = MakeFlowKey(pkt.id);
    pkt.user_tag = config_.user_tag;
    pkt.created = sim_->Now();
    injected_.Inc();
    accel_->Ingress(queue_, pkt);
    sim_->Reschedule(event_, NextGap());
  });
}

void OpenLoopSource::OnDelivered(const hw::IoPacket& pkt, sim::SimTime completed) {
  delivered_.Inc();
  delivered_bytes_.Inc(pkt.size_bytes);
  latency_us_.Add(sim::ToMicros(completed - pkt.created));
}

}  // namespace taichi::dp
