#include "src/dp/sources.h"

#include <algorithm>

namespace taichi::dp {

OpenLoopSource::OpenLoopSource(sim::Simulation* sim, hw::Accelerator* accel, uint32_t queue,
                               OpenLoopConfig config, uint64_t seed)
    : sim_(sim), accel_(accel), queue_(queue), config_(config), rng_(seed) {}

void OpenLoopSource::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  if (config_.process == OpenLoopConfig::Process::kMmpp) {
    burst_state_ = false;
    state_until_ = sim_->Now() + rng_.ExpDuration(config_.calm_mean);
  }
  ScheduleNext();
}

double OpenLoopSource::CurrentRate() const {
  if (config_.process == OpenLoopConfig::Process::kMmpp && burst_state_) {
    return config_.rate_pps * config_.burst_multiplier;
  }
  return config_.rate_pps;
}

sim::Duration OpenLoopSource::NextGap() {
  const double gap_ns = 1e9 / CurrentRate();
  if (config_.process == OpenLoopConfig::Process::kConstant) {
    return std::max<sim::Duration>(1, static_cast<sim::Duration>(gap_ns));
  }
  return rng_.ExpDuration(std::max<sim::Duration>(1, static_cast<sim::Duration>(gap_ns)));
}

void OpenLoopSource::ScheduleNext() {
  if (!running_ || CurrentRate() <= 0) {
    return;
  }
  // One repeating event drives the whole arrival process: each firing
  // injects a packet and re-keys the event with the next (possibly
  // burst-state-dependent) gap, so the per-packet path builds no closures.
  // The gap draw stays after the injection, preserving the RNG draw order of
  // the schedule-per-packet pattern this replaces.
  const sim::Duration first = NextGap();
  event_ = sim_->ScheduleRepeating(first, first, [this] {
    if (!running_ || CurrentRate() <= 0) {
      sim_->Cancel(event_);
      event_ = sim::kInvalidEventId;
      return;
    }
    if (config_.process == OpenLoopConfig::Process::kMmpp && sim_->Now() >= state_until_) {
      burst_state_ = !burst_state_;
      state_until_ = sim_->Now() + rng_.ExpDuration(burst_state_ ? config_.burst_mean
                                                                 : config_.calm_mean);
    }
    hw::IoPacket pkt;
    pkt.id = next_id_++;
    pkt.kind = config_.kind;
    pkt.queue = queue_;
    pkt.size_bytes = config_.size_bytes;
    pkt.flow = config_.flow;
    pkt.user_tag = config_.user_tag;
    pkt.created = sim_->Now();
    injected_.Inc();
    accel_->Ingress(queue_, pkt);
    sim_->Reschedule(event_, NextGap());
  });
}

void OpenLoopSource::OnDelivered(const hw::IoPacket& pkt, sim::SimTime completed) {
  delivered_.Inc();
  delivered_bytes_.Inc(pkt.size_bytes);
  latency_us_.Add(sim::ToMicros(completed - pkt.created));
}

}  // namespace taichi::dp
