// Open-loop traffic sources: Poisson, constant-rate and MMPP (bursty)
// arrival processes feeding accelerator queues. Closed-loop clients live in
// the experiment harness because they depend on end-to-end path wiring.
#ifndef SRC_DP_SOURCES_H_
#define SRC_DP_SOURCES_H_

#include <cstdint>

#include "src/hw/accelerator.h"
#include "src/sim/random.h"
#include "src/sim/simulation.h"
#include "src/sim/stats.h"

namespace taichi::dp {

// Spoofed-attacker source addresses live in TEST-NET-2 (198.51.100.0/24) so
// scenario assertions can recognize adversarial flows by prefix.
inline constexpr uint32_t kAttackSrcBase = 0xc6336400u;
inline constexpr uint32_t kAttackSrcMask = 0xffffff00u;

struct OpenLoopConfig {
  enum class Process : uint8_t { kPoisson, kConstant, kMmpp };

  double rate_pps = 100000;  // Mean rate (in the low state, for kMmpp).
  uint32_t size_bytes = 64;
  Process process = Process::kPoisson;
  hw::IoKind kind = hw::IoKind::kNetRx;
  uint64_t flow = 0;
  uint64_t user_tag = 0;  // Stamped on every generated packet.

  // Synthetic 5-tuple population for the sketch observability layer. Each
  // packet's FlowKey is drawn from `flow_count` distinct flows with a
  // Zipf-like skew (low ranks get most packets; higher `flow_skew` is more
  // skewed). The draw hashes the packet counter — it consumes NO Rng state
  // and injects NO timing, so enabling many flows changes telemetry only,
  // never the schedule. flow_count <= 1 pins the single key derived from
  // `flow`. RSS queueing still keys on `flow`, untouched.
  uint32_t flow_count = 1;
  double flow_skew = 1.3;

  // Fleet-scale flow identity: a nonzero salt gives this source a distinct
  // flow population (distinct hash stream AND distinct served endpoint), so
  // per-node salts make fleet-merged distinct-flow counts scale with node
  // count instead of every node re-emitting the same tuples. Same
  // counter-hash mechanism as flow_count: telemetry identity only — no Rng
  // state, no timing, and RSS queueing still keys on `flow`, untouched.
  // 0 (the default) emits byte-identical keys to the pre-salt scheme.
  uint64_t flow_salt = 0;

  // Adversarial flow identity: when > 0 the source emits a DDoS-shaped
  // population instead of the Zipf mix — `attack_sources` spoofed source IPs
  // in the TEST-NET-2 block (198.51.100.0/24) hammering one victim endpoint
  // over UDP, packets spread uniformly across the attackers (Zipf-busting:
  // every attacker flow is heavy). Same counter-hash mechanism: no Rng
  // state, no timing effect, telemetry identity only.
  uint32_t attack_sources = 0;

  // MMPP: alternating low/high states; the high state multiplies the rate.
  double burst_multiplier = 8.0;
  sim::Duration burst_mean = sim::Millis(2);
  sim::Duration calm_mean = sim::Millis(20);
};

class OpenLoopSource {
 public:
  OpenLoopSource(sim::Simulation* sim, hw::Accelerator* accel, uint32_t queue,
                 OpenLoopConfig config, uint64_t seed);

  void Start();
  void Stop() {
    running_ = false;
    if (event_ != sim::kInvalidEventId) {
      sim_->Cancel(event_);
      event_ = sim::kInvalidEventId;
    }
  }
  bool running() const { return running_; }
  void set_rate(double pps) { config_.rate_pps = pps; }

  // The experiment sink forwards per-packet completions here.
  void OnDelivered(const hw::IoPacket& pkt, sim::SimTime completed);

  uint64_t injected() const { return injected_.value(); }
  uint64_t delivered() const { return delivered_.value(); }
  uint64_t delivered_bytes() const { return delivered_bytes_.value(); }
  const sim::Summary& latency_us() const { return latency_us_; }

  // Registers as "<prefix>.*"; Testbed uses "src<i>".
  void RegisterMetrics(obs::MetricsRegistry& registry, const std::string& prefix) const {
    registry.AddCounter(prefix + ".injected", &injected_);
    registry.AddCounter(prefix + ".delivered", &delivered_);
    registry.AddCounter(prefix + ".delivered_bytes", &delivered_bytes_);
    registry.AddSummary(prefix + ".latency_us", &latency_us_);
  }

 private:
  void ScheduleNext();
  double CurrentRate() const;
  sim::Duration NextGap();
  obs::FlowKey MakeFlowKey(uint64_t packet_index) const;

  sim::Simulation* sim_;
  hw::Accelerator* accel_;
  uint32_t queue_;
  OpenLoopConfig config_;
  sim::Rng rng_;
  // The repeating arrival event; re-keyed with a fresh gap per packet.
  sim::EventId event_ = sim::kInvalidEventId;
  bool running_ = false;
  bool burst_state_ = false;
  sim::SimTime state_until_ = 0;
  uint64_t next_id_ = 1;
  sim::Counter injected_;
  sim::Counter delivered_;
  sim::Counter delivered_bytes_;
  sim::Summary latency_us_;
};

}  // namespace taichi::dp

#endif  // SRC_DP_SOURCES_H_
