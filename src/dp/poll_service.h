// A poll-mode data-plane service (DPDK/SPDK style).
//
// The service busy-polls its descriptor rings (rte_eth_rx_burst model),
// processes bursts with a calibrated per-packet cost, and — depending on the
// yield policy — either polls forever (static partitioning baseline), blocks
// when idle (naive co-scheduling), or reports idle cycles to Tai Chi's
// software workload probe exactly as the Fig. 9 loop does.
#ifndef SRC_DP_POLL_SERVICE_H_
#define SRC_DP_POLL_SERVICE_H_

#include <vector>

#include "src/hw/io_packet.h"
#include "src/hw/ring.h"
#include "src/obs/flow_monitor.h"
#include "src/os/behaviors.h"
#include "src/os/kernel.h"
#include "src/sim/inline_callback.h"
#include "src/sim/packet_pool.h"
#include "src/sim/stats.h"
#include "src/taichi/sw_probe.h"

namespace taichi::dp {

enum class YieldPolicy : uint8_t {
  kBusyPoll,     // Never yields: the production static-partition baseline.
  kBlockOnIdle,  // Sleeps on idle, woken by ring pushes: naive co-scheduling.
  kTaiChi,       // notify_idle_DP_CPU_cycles() after N empty polls (Fig. 9).
};

struct PollServiceConfig {
  sim::Duration empty_poll_cost = sim::Nanos(80);
  sim::Duration per_packet_base_cost = sim::Nanos(900);
  sim::Duration per_block_io_base_cost = sim::Micros(2);  // SPDK-style 4 KB op.
  double ns_per_byte = 0.05;  // Payload-proportional processing.
  uint32_t burst_size = 32;

  // Type-1 virtualization tax (Tai Chi-vDP): multiplies all DP work.
  double virt_work_tax = 0.0;

  // Cache/TLB pollution model (§6.5): after the CPU was taken away for at
  // least `pollution_gap_threshold`, the next `pollution_decay` worth of
  // work costs up to `pollution_max_factor` extra, decaying linearly.
  sim::Duration pollution_gap_threshold = sim::Micros(5);
  double pollution_max_factor = 0.35;
  sim::Duration pollution_decay = sim::Micros(40);

  // Empty polls before blocking under kBlockOnIdle.
  uint32_t block_threshold = 256;
};

class PollService : public os::Behavior {
 public:
  // Called once per completed burst with the batch of processed handles.
  // Ownership of the handles passes to the sink, which must eventually Free
  // each one; without a sink the service frees them itself.
  using BatchSink =
      sim::InlineFunction<void(const sim::PacketHandle* batch, size_t count,
                               sim::SimTime completed)>;

  PollService(os::CpuId cpu, PollServiceConfig config, YieldPolicy policy)
      : cpu_(cpu), config_(config), policy_(policy) {
    inflight_.reserve(config_.burst_size);
  }

  os::CpuId cpu() const { return cpu_; }
  YieldPolicy policy() const { return policy_; }
  void set_policy(YieldPolicy policy) { policy_ = policy; }
  void set_sink(BatchSink sink) { sink_ = std::move(sink); }

  // The arena the ring descriptors point into. Must be set before the first
  // dispatch (Testbed wires the owning Machine's pool); outlives the service.
  void set_pool(sim::PacketPool* pool) { pool_ = pool; }

  // Attaches a descriptor ring; pushes kick the service out of idle.
  void AttachRing(hw::DescriptorRing* ring);

  // Must be called once after the service task is spawned.
  void BindTask(os::Kernel* kernel, os::Task* task);
  os::Task* task() const { return task_; }

  // Registers with Tai Chi's software probe and switches to kTaiChi policy.
  void AttachTaiChiProbe(core::SwWorkloadProbe* probe);

  // Unregisters from the probe and reverts to `fallback` (staged-rollout
  // rollback path). No-op when no probe is attached.
  void DetachTaiChiProbe(YieldPolicy fallback = YieldPolicy::kBusyPoll);

  // True when every attached ring is empty.
  bool IsIdle() const;

  // os::Behavior:
  os::Action Next(os::Kernel& kernel, os::Task& task, const os::ActionResult& last) override;
  void OnScheduledIn(os::Kernel& kernel, os::Task& task) override;

  // --- Statistics ---
  uint64_t packets_processed() const { return packets_processed_.value(); }
  uint64_t bytes_processed() const { return bytes_processed_.value(); }
  sim::Duration work_time() const { return work_time_; }  // Useful work only.
  uint64_t yields() const { return yields_.value(); }
  // Time a descriptor sat in the ring before the service picked it up — the
  // latency-spike signal (queue delay includes any vCPU displacement).
  const sim::Summary& queue_delay_us() const { return queue_delay_us_; }

  void set_tracer(obs::TraceRecorder* tracer) { tracer_ = tracer; }

  // DP flow telemetry tap: every packet whose burst completed is recorded
  // (O(1), allocation-free). This is the tap SLO hotspot attribution reads —
  // it measures work the DP CPUs actually performed, not offered load. The
  // monitor must outlive the service.
  void set_flow_monitor(obs::FlowMonitor* monitor) { flow_monitor_ = monitor; }

  // Registers as "<prefix>.*"; Testbed uses "dp.svc<cpu>".
  void RegisterMetrics(obs::MetricsRegistry& registry, const std::string& prefix) const {
    registry.AddCounter(prefix + ".packets", &packets_processed_);
    registry.AddCounter(prefix + ".bytes", &bytes_processed_);
    registry.AddCounter(prefix + ".yields", &yields_);
    registry.AddGauge(prefix + ".work_time_us",
                      [this] { return sim::ToMicros(work_time_); });
    registry.AddSummary(prefix + ".queue_delay_us", &queue_delay_us_);
  }

 private:
  sim::Duration BatchCost(const sim::PacketHandle* batch, size_t count, sim::SimTime now);

  os::CpuId cpu_;
  PollServiceConfig config_;
  YieldPolicy policy_;
  BatchSink sink_;
  sim::PacketPool* pool_ = nullptr;
  std::vector<hw::DescriptorRing*> rings_;
  os::Kernel* kernel_ = nullptr;
  os::Task* task_ = nullptr;
  core::SwWorkloadProbe* probe_ = nullptr;
  obs::TraceRecorder* tracer_ = nullptr;
  obs::FlowMonitor* flow_monitor_ = nullptr;

  // The burst currently being processed (gathered in Next, delivered on the
  // following Next once the Compute completes). Reserved to burst_size at
  // construction; never reallocates on the hot path.
  std::vector<sim::PacketHandle> inflight_;
  // Round-robin gather cursor: which ring the next burst starts draining
  // from, so ring 0 cannot starve later rings under overload.
  size_t rr_cursor_ = 0;
  bool counting_done_ = false;  // Finished an empty-poll counting window.
  bool dispatched_once_ = false;
  sim::Duration last_guest_lent_ = 0;
  double pollution_credit_ = 0;
  // Remaining work (in ns of base cost) still subject to the pollution
  // surcharge. Kept in double so partial bursts decrement exactly by the
  // amount charged.
  double pollution_remaining_ = 0;

  sim::Counter packets_processed_;
  sim::Counter bytes_processed_;
  sim::Duration work_time_ = 0;
  sim::Counter yields_;
  sim::Summary queue_delay_us_;
};

}  // namespace taichi::dp

#endif  // SRC_DP_POLL_SERVICE_H_
