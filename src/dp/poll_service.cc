#include "src/dp/poll_service.h"

#include <algorithm>
#include <cassert>

namespace taichi::dp {

void PollService::AttachRing(hw::DescriptorRing* ring) {
  rings_.push_back(ring);
  ring->set_watcher([this] {
    if (kernel_ != nullptr && task_ != nullptr) {
      kernel_->KickTask(task_);
    }
  });
}

void PollService::BindTask(os::Kernel* kernel, os::Task* task) {
  kernel_ = kernel;
  task_ = task;
  last_guest_lent_ = kernel_->GetAccounting(cpu_).guest_lent;
}

void PollService::AttachTaiChiProbe(core::SwWorkloadProbe* probe) {
  probe_ = probe;
  policy_ = YieldPolicy::kTaiChi;
  probe_->RegisterDpService(cpu_, [this] { return IsIdle(); });
}

void PollService::DetachTaiChiProbe(YieldPolicy fallback) {
  if (probe_ == nullptr) {
    return;
  }
  probe_->UnregisterDpService(cpu_);
  probe_ = nullptr;
  policy_ = fallback;
  counting_done_ = false;
}

bool PollService::IsIdle() const {
  for (const hw::DescriptorRing* ring : rings_) {
    if (!ring->empty()) {
      return false;
    }
  }
  return true;
}

sim::Duration PollService::BatchCost(const sim::PacketHandle* batch, size_t count,
                                     sim::SimTime now) {
  double base_ns = 0;
  for (size_t i = 0; i < count; ++i) {
    const hw::IoPacket& pkt = pool_->Get(batch[i]);
    sim::Duration kind_base = pkt.kind == hw::IoKind::kBlockIo
                                  ? config_.per_block_io_base_cost
                                  : config_.per_packet_base_cost;
    base_ns += static_cast<double>(kind_base) + static_cast<double>(pkt.dp_cost_hint) +
               static_cast<double>(pkt.size_bytes) * config_.ns_per_byte;
    queue_delay_us_.Add(sim::ToMicros(now - pkt.ring_push));
  }
  base_ns *= 1.0 + config_.virt_work_tax;

  // Cache/TLB pollution surcharge after displacement: charge once, decrement
  // by exactly the amount charged so the credit decays to zero with no
  // truncation drift across bursts.
  double extra_ns = 0;
  if (pollution_remaining_ > 0) {
    const double charged = std::min(base_ns, pollution_remaining_);
    extra_ns = charged * pollution_credit_;
    pollution_remaining_ -= charged;
  }
  return static_cast<sim::Duration>(base_ns + extra_ns);
}

void PollService::OnScheduledIn(os::Kernel& /*kernel*/, os::Task& /*task*/) {
  // Another task ran on our CPU (naive co-scheduling or shared-CPU setups):
  // the working set is cold.
  if (dispatched_once_) {
    pollution_credit_ = config_.pollution_max_factor;
    pollution_remaining_ = static_cast<double>(config_.pollution_decay);
  }
  dispatched_once_ = true;
}

os::Action PollService::Next(os::Kernel& kernel, os::Task& /*task*/,
                             const os::ActionResult& last) {
  const sim::SimTime now = kernel.sim().Now();

  // Detect displacement by a vCPU since the last poll iteration.
  sim::Duration lent = kernel.GetAccounting(cpu_).guest_lent;
  if (lent > last_guest_lent_) {
    pollution_credit_ = config_.pollution_max_factor;
    pollution_remaining_ = static_cast<double>(config_.pollution_decay);
    last_guest_lent_ = lent;
  }

  // Deliver the batch whose processing just completed: account every packet,
  // then hand the whole batch to the sink in one call.
  if (!inflight_.empty() && last.type == os::Action::Type::kCompute) {
    uint64_t burst_bytes = 0;
    for (sim::PacketHandle h : inflight_) {
      const hw::IoPacket& pkt = pool_->Get(h);
      packets_processed_.Inc();
      bytes_processed_.Inc(pkt.size_bytes);
      burst_bytes += pkt.size_bytes;
      if (flow_monitor_ != nullptr) {
        flow_monitor_->OnPacket(pkt.flow_key, pkt.size_bytes);
      }
    }
    if (sink_) {
      sink_(inflight_.data(), inflight_.size(), now);
    } else {
      for (sim::PacketHandle h : inflight_) {
        pool_->Free(h);
      }
    }
    if (tracer_ != nullptr) {
      tracer_->Instant(now, cpu_, obs::TraceCategory::kDp, "dp_burst", inflight_.size(),
                       burst_bytes);
    }
    inflight_.clear();
  }

  // Gather the next burst across rings (rte_eth_rx_burst), starting from the
  // round-robin cursor so no ring can monopolize every burst under overload.
  const size_t nrings = rings_.size();
  if (nrings > 0) {
    const size_t start = rr_cursor_;
    inflight_.resize(config_.burst_size);  // Within reserved capacity.
    size_t filled = 0;
    for (size_t i = 0; i < nrings && filled < config_.burst_size; ++i) {
      hw::DescriptorRing* ring = rings_[(start + i) % nrings];
      filled += ring->PopBurst(config_.burst_size - filled, inflight_.data() + filled);
    }
    inflight_.resize(filled);
    if (filled > 0) {
      rr_cursor_ = (start + 1) % nrings;
      counting_done_ = false;
      sim::Duration cost = BatchCost(inflight_.data(), filled, now);
      work_time_ += cost;
      return os::Action::Compute(cost);
    }
  }

  // Ring empty: idle handling per policy (lines 6-14 of Fig. 9).
  switch (policy_) {
    case YieldPolicy::kBusyPoll:
      return os::Action::BusyPoll(0);  // Poll forever; ring pushes kick us.

    case YieldPolicy::kBlockOnIdle:
      if (last.type == os::Action::Type::kBusyPoll && last.busy_poll_timeout) {
        yields_.Inc();
        return os::Action::Block();  // Interrupt-mode idle; push wakes us.
      }
      return os::Action::BusyPoll(static_cast<sim::Duration>(config_.block_threshold) *
                                  config_.empty_poll_cost);

    case YieldPolicy::kTaiChi: {
      assert(probe_ != nullptr && "kTaiChi policy requires AttachTaiChiProbe");
      if (last.type == os::Action::Type::kBusyPoll && last.busy_poll_timeout &&
          !counting_done_) {
        // empty_polling_num exceeded the adaptive threshold: notify Tai Chi
        // (Fig. 9 line 14). The vCPU switch softirq will take the CPU from
        // inside the unbounded poll below.
        counting_done_ = true;
        yields_.Inc();
        if (tracer_ != nullptr) {
          tracer_->Instant(now, cpu_, obs::TraceCategory::kDp, "dp_yield");
        }
        probe_->NotifyIdleDpCpuCycles(cpu_);
        return os::Action::BusyPoll(0);
      }
      counting_done_ = false;
      uint32_t threshold = probe_->yield_threshold(cpu_);
      return os::Action::BusyPoll(static_cast<sim::Duration>(threshold) *
                                  config_.empty_poll_cost);
    }
  }
  return os::Action::BusyPoll(0);
}

}  // namespace taichi::dp
