#include "src/dp/poll_service.h"

#include <algorithm>
#include <cassert>
#include <iterator>

namespace taichi::dp {

void PollService::AttachRing(hw::DescriptorRing* ring) {
  rings_.push_back(ring);
  ring->set_watcher([this] {
    if (kernel_ != nullptr && task_ != nullptr) {
      kernel_->KickTask(task_);
    }
  });
}

void PollService::BindTask(os::Kernel* kernel, os::Task* task) {
  kernel_ = kernel;
  task_ = task;
  last_guest_lent_ = kernel_->GetAccounting(cpu_).guest_lent;
}

void PollService::AttachTaiChiProbe(core::SwWorkloadProbe* probe) {
  probe_ = probe;
  policy_ = YieldPolicy::kTaiChi;
  probe_->RegisterDpService(cpu_, [this] { return IsIdle(); });
}

void PollService::DetachTaiChiProbe(YieldPolicy fallback) {
  if (probe_ == nullptr) {
    return;
  }
  probe_->UnregisterDpService(cpu_);
  probe_ = nullptr;
  policy_ = fallback;
  counting_done_ = false;
}

bool PollService::IsIdle() const {
  for (const hw::DescriptorRing* ring : rings_) {
    if (!ring->empty()) {
      return false;
    }
  }
  return true;
}

sim::Duration PollService::BatchCost(const std::vector<hw::IoPacket>& batch,
                                     sim::SimTime now) {
  double base_ns = 0;
  for (const hw::IoPacket& pkt : batch) {
    sim::Duration kind_base = pkt.kind == hw::IoKind::kBlockIo
                                  ? config_.per_block_io_base_cost
                                  : config_.per_packet_base_cost;
    base_ns += static_cast<double>(kind_base) + static_cast<double>(pkt.dp_cost_hint) +
               static_cast<double>(pkt.size_bytes) * config_.ns_per_byte;
    queue_delay_us_.Add(sim::ToMicros(now - pkt.ring_push));
  }
  base_ns *= 1.0 + config_.virt_work_tax;

  // Cache/TLB pollution surcharge after displacement.
  double extra_ns = 0;
  if (pollution_remaining_ > 0) {
    double charged = std::min(base_ns, static_cast<double>(pollution_remaining_));
    extra_ns = charged * pollution_credit_;
    pollution_remaining_ -= static_cast<sim::Duration>(
        std::min(base_ns, static_cast<double>(pollution_remaining_)));
  }
  return static_cast<sim::Duration>(base_ns + extra_ns);
}

void PollService::OnScheduledIn(os::Kernel& /*kernel*/, os::Task& /*task*/) {
  // Another task ran on our CPU (naive co-scheduling or shared-CPU setups):
  // the working set is cold.
  if (dispatched_once_) {
    pollution_credit_ = config_.pollution_max_factor;
    pollution_remaining_ = config_.pollution_decay;
  }
  dispatched_once_ = true;
}

os::Action PollService::Next(os::Kernel& kernel, os::Task& /*task*/,
                             const os::ActionResult& last) {
  const sim::SimTime now = kernel.sim().Now();

  // Detect displacement by a vCPU since the last poll iteration.
  sim::Duration lent = kernel.GetAccounting(cpu_).guest_lent;
  if (lent > last_guest_lent_) {
    pollution_credit_ = config_.pollution_max_factor;
    pollution_remaining_ = config_.pollution_decay;
    last_guest_lent_ = lent;
  }

  // Deliver the batch whose processing just completed.
  if (!inflight_.empty() && last.type == os::Action::Type::kCompute) {
    uint64_t burst_bytes = 0;
    for (const hw::IoPacket& pkt : inflight_) {
      packets_processed_.Inc();
      bytes_processed_.Inc(pkt.size_bytes);
      burst_bytes += pkt.size_bytes;
      if (flow_monitor_ != nullptr) {
        flow_monitor_->OnPacket(pkt.flow_key, pkt.size_bytes);
      }
      if (sink_) {
        sink_(pkt, now);
      }
    }
    if (tracer_ != nullptr) {
      tracer_->Instant(now, cpu_, obs::TraceCategory::kDp, "dp_burst", inflight_.size(),
                       burst_bytes);
    }
    inflight_.clear();
  }

  // Gather the next burst across rings (rte_eth_rx_burst).
  std::vector<hw::IoPacket> batch;
  for (hw::DescriptorRing* ring : rings_) {
    if (batch.size() >= config_.burst_size) {
      break;
    }
    ring->PopBurst(config_.burst_size - batch.size(), std::back_inserter(batch));
  }

  if (!batch.empty()) {
    counting_done_ = false;
    sim::Duration cost = BatchCost(batch, now);
    work_time_ += cost;
    inflight_ = std::move(batch);
    return os::Action::Compute(cost);
  }

  // Ring empty: idle handling per policy (lines 6-14 of Fig. 9).
  switch (policy_) {
    case YieldPolicy::kBusyPoll:
      return os::Action::BusyPoll(0);  // Poll forever; ring pushes kick us.

    case YieldPolicy::kBlockOnIdle:
      if (last.type == os::Action::Type::kBusyPoll && last.busy_poll_timeout) {
        yields_.Inc();
        return os::Action::Block();  // Interrupt-mode idle; push wakes us.
      }
      return os::Action::BusyPoll(static_cast<sim::Duration>(config_.block_threshold) *
                                  config_.empty_poll_cost);

    case YieldPolicy::kTaiChi: {
      assert(probe_ != nullptr && "kTaiChi policy requires AttachTaiChiProbe");
      if (last.type == os::Action::Type::kBusyPoll && last.busy_poll_timeout &&
          !counting_done_) {
        // empty_polling_num exceeded the adaptive threshold: notify Tai Chi
        // (Fig. 9 line 14). The vCPU switch softirq will take the CPU from
        // inside the unbounded poll below.
        counting_done_ = true;
        yields_.Inc();
        if (tracer_ != nullptr) {
          tracer_->Instant(now, cpu_, obs::TraceCategory::kDp, "dp_yield");
        }
        probe_->NotifyIdleDpCpuCycles(cpu_);
        return os::Action::BusyPoll(0);
      }
      counting_done_ = false;
      uint32_t threshold = probe_->yield_threshold(cpu_);
      return os::Action::BusyPoll(static_cast<sim::Duration>(threshold) *
                                  config_.empty_poll_cost);
    }
  }
  return os::Action::BusyPoll(0);
}

}  // namespace taichi::dp
