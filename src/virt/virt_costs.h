// Cost models for the virtualization baselines of §3.4 / §6.3.
//
// Traditional type-1 (everything in the guest) and type-2 (QEMU+KVM guest
// for the control plane) are reproduced as configurations of these costs
// rather than full second kernels: the evaluation only exercises their
// resource and per-I/O taxes, which is what these constants encode. See
// DESIGN.md "Known deviations".
#ifndef SRC_VIRT_VIRT_COSTS_H_
#define SRC_VIRT_VIRT_COSTS_H_

#include "src/sim/time.h"

namespace taichi::virt {

// Type-1 ("Tai Chi-vDP"): identical to Tai Chi, but DP services execute in
// vCPU contexts. Nested page tables and VM-exits slow every unit of DP work.
struct Type1Costs {
  // Multiplier on DP packet-processing work (~NPT walks + exit amortization;
  // §6.3 reports 6-8% data-plane degradation).
  double dp_work_tax = 0.07;
  // Residual scheduling latency when a vCPU-hosted DP service resumes.
  sim::Duration resume_latency = sim::MicrosF(2.0);
};

// Type-2 (QEMU + KVM): the control plane lives in a separate guest OS.
struct Type2Costs {
  // Physical CPUs permanently consumed by device emulation plus the guest
  // OS itself, taken from the data-plane pool ("at least one dedicated CPU
  // for both device emulation and the guest OS", §3.4; two matches the
  // ~26% degradation of an 8-CPU data plane in §6.3).
  int dedicated_cpus = 2;
  // Native IPC between DP and CP breaks; every interaction becomes an RPC
  // through virtio/vsock emulation.
  sim::Duration ipc_to_rpc_penalty = sim::Micros(25);
  // Guest-side syscall/housekeeping slowdown for CP work.
  double cp_work_tax = 0.05;
};

}  // namespace taichi::virt

#endif  // SRC_VIRT_VIRT_COSTS_H_
