// Demultiplexes the kernel's single guest-exit/halt callback pair to
// per-vCPU controllers, so multiple virtualization users (e.g. Tai Chi's
// vCPU scheduler and an experiment-specific VMM) can coexist on one kernel.
#ifndef SRC_VIRT_GUEST_EXIT_MUX_H_
#define SRC_VIRT_GUEST_EXIT_MUX_H_

#include <unordered_map>

#include "src/os/kernel.h"

namespace taichi::virt {

class GuestController {
 public:
  virtual ~GuestController() = default;
  // The pCPU finished its VM-exit; the controller must either re-enter a
  // guest on `pcpu` or call Kernel::ResumeHost(pcpu).
  virtual void OnGuestExit(os::CpuId pcpu, os::CpuId vcpu, const os::GuestExitInfo& info) = 0;
  // The backed vCPU ran out of work (HLT in its idle loop).
  virtual void OnGuestHalt(os::CpuId vcpu) = 0;
};

class GuestExitMux {
 public:
  explicit GuestExitMux(os::Kernel* kernel);

  // Routes events for `vcpu` to `controller` (not owned).
  void Register(os::CpuId vcpu, GuestController* controller);
  void Unregister(os::CpuId vcpu);

  // Emits a "guest_exit" dispatch instant per routed exit.
  void set_tracer(obs::TraceRecorder* tracer) { tracer_ = tracer; }

 private:
  os::Kernel* kernel_;
  obs::TraceRecorder* tracer_ = nullptr;
  std::unordered_map<os::CpuId, GuestController*> controllers_;
};

}  // namespace taichi::virt

#endif  // SRC_VIRT_GUEST_EXIT_MUX_H_
