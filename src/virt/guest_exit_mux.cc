#include "src/virt/guest_exit_mux.h"

#include <cassert>

namespace taichi::virt {

GuestExitMux::GuestExitMux(os::Kernel* kernel) : kernel_(kernel) {
  kernel_->set_guest_exit_handler(
      [this](os::CpuId pcpu, os::CpuId vcpu, const os::GuestExitInfo& info) {
        if (tracer_ != nullptr) {
          tracer_->Instant(kernel_->sim().Now(), pcpu, obs::TraceCategory::kVirt, "guest_exit",
                           static_cast<uint64_t>(vcpu), static_cast<uint64_t>(info.reason));
        }
        auto it = controllers_.find(vcpu);
        if (it == controllers_.end()) {
          kernel_->ResumeHost(pcpu);
          return;
        }
        it->second->OnGuestExit(pcpu, vcpu, info);
      });
  kernel_->set_guest_halt_handler([this](os::CpuId vcpu) {
    auto it = controllers_.find(vcpu);
    if (it != controllers_.end()) {
      it->second->OnGuestHalt(vcpu);
    }
  });
}

void GuestExitMux::Register(os::CpuId vcpu, GuestController* controller) {
  assert(controller != nullptr);
  controllers_[vcpu] = controller;
}

void GuestExitMux::Unregister(os::CpuId vcpu) { controllers_.erase(vcpu); }

}  // namespace taichi::virt
