// A pool of virtual CPUs registered with the SmartNIC OS.
//
// The pool only owns identity (OS CpuId + synthetic LAPIC id, the vCPU
// metadata of Fig. 8a); scheduling policy lives in taichi::VcpuScheduler and
// execution mechanics in os::Kernel's guest mode.
#ifndef SRC_VIRT_VCPU_POOL_H_
#define SRC_VIRT_VCPU_POOL_H_

#include <vector>

#include "src/os/kernel.h"
#include "src/os/types.h"

namespace taichi::virt {

// Synthetic LAPIC ids for vCPUs start here, far above any physical CPU.
inline constexpr hw::ApicId kVcpuApicBase = 1000;

struct VcpuInfo {
  os::CpuId cpu = os::kInvalidCpu;
  hw::ApicId apic_id = hw::kInvalidApicId;
};

class VcpuPool {
 public:
  // Registers `count` virtual CPUs with the kernel. They start offline;
  // bring-up happens via Kernel::OnlineCpu, whose boot IPIs the installed
  // IPI router intercepts.
  VcpuPool(os::Kernel* kernel, int count, hw::ApicId apic_base = kVcpuApicBase);

  const std::vector<VcpuInfo>& vcpus() const { return vcpus_; }
  int size() const { return static_cast<int>(vcpus_.size()); }
  os::CpuSet cpu_set() const { return cpu_set_; }
  bool contains(os::CpuId cpu) const { return cpu_set_.Test(cpu); }

  // Requests bring-up of every vCPU in the pool.
  void OnlineAll();

 private:
  os::Kernel* kernel_;
  std::vector<VcpuInfo> vcpus_;
  os::CpuSet cpu_set_;
};

}  // namespace taichi::virt

#endif  // SRC_VIRT_VCPU_POOL_H_
