#include "src/virt/vcpu_pool.h"

namespace taichi::virt {

VcpuPool::VcpuPool(os::Kernel* kernel, int count, hw::ApicId apic_base) : kernel_(kernel) {
  vcpus_.reserve(count);
  for (int i = 0; i < count; ++i) {
    VcpuInfo info;
    info.apic_id = apic_base + static_cast<hw::ApicId>(i);
    info.cpu = kernel_->RegisterCpu(os::CpuKind::kVirtual, info.apic_id);
    cpu_set_.Set(info.cpu);
    vcpus_.push_back(info);
  }
}

void VcpuPool::OnlineAll() {
  for (const VcpuInfo& v : vcpus_) {
    kernel_->OnlineCpu(v.cpu);
  }
}

}  // namespace taichi::virt
