#include "src/scenario/scenario.h"

#include <algorithm>

#include "src/dp/sources.h"
#include "src/obs/json.h"
#include "src/sim/logging.h"

namespace taichi::scenario {

bool IsAttackFlow(const fleet::SloMonitor::HeavyFlow& flow) {
  return (flow.key.src_ip & dp::kAttackSrcMask) == dp::kAttackSrcBase;
}

std::string ScenarioVerdict::ToJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Field("scenario", scenario);
  w.Field("seed", seed);
  w.Field("nodes", nodes);
  w.Field("sim_ms", sim_ms);
  w.Field("pass", pass);
  w.Key("slo").BeginObject();
  w.Field("windows", static_cast<uint64_t>(windows));
  w.Field("breach_windows", static_cast<uint64_t>(breach_windows));
  w.Field("hotspot_windows", static_cast<uint64_t>(hotspot_windows));
  w.Field("attributed_windows", static_cast<uint64_t>(attributed_windows));
  w.Field("total_samples", static_cast<uint64_t>(total_samples));
  w.Field("worst_fleet_value_ms", worst_fleet_value);
  w.Field("last_fleet_value_ms", last_fleet_value);
  w.EndObject();
  w.Key("rx").BeginObject();
  w.Field("ring_drops", rx_ring_drops);
  w.Field("pool_drops", rx_pool_drops);
  w.Key("per_node_ring_drops").BeginArray();
  for (uint64_t d : node_rx_ring_drops) {
    w.Value(d);
  }
  w.EndArray();
  w.EndObject();
  w.Key("chaos").BeginObject();
  w.Field("crashes", crashes);
  w.Field("restarts", restarts);
  w.Field("stalls", stalls);
  w.Field("floods", floods);
  w.Field("storms", storms);
  w.Field("alive_at_end", static_cast<uint64_t>(alive_at_end));
  w.Field("pending_restarts", static_cast<uint64_t>(pending_restarts));
  w.EndObject();
  if (autopilot.engaged) {
    // Emitted only when the spec engaged an autopilot, so every legacy
    // scenario's verdict bytes (and the CI cmp gates over them) stand.
    const AutopilotStats& a = autopilot;
    w.Key("autopilot").BeginObject();
    w.Field("recovery_windows", static_cast<uint64_t>(a.recovery_windows));
    w.Field("max_breach_streak", static_cast<uint64_t>(a.max_breach_streak));
    w.Field("enables", a.enables);
    w.Field("disables", a.disables);
    w.Field("migrations", a.migrations);
    w.Field("dp_boosts", a.dp_boosts);
    w.Field("dp_reverts", a.dp_reverts);
    w.Field("sheds", a.sheds);
    w.Field("restores", a.restores);
    w.Field("evictions", a.evictions);
    w.Field("readmits", a.readmits);
    w.Field("backoffs", a.backoffs);
    w.Field("shed_factor", a.shed_factor);
    w.Field("enabled_nodes", a.enabled_nodes);
    w.Field("enabled_vcpus", a.enabled_vcpus);
    w.Field("static_vcpus", a.static_vcpus);
    w.Key("decisions").BeginArray();
    for (const fleet::Autopilot::Decision& d : a.decisions) {
      w.BeginObject()
          .Field("at_ms", sim::ToSeconds(d.at) * 1e3)
          .Field("action", fleet::ToString(d.act))
          .Field("node", d.node)
          .Field("target", d.target)
          .Field("value", d.value)
          .EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.Key("checks").BeginArray();
  for (const ScenarioCheck& c : checks) {
    w.BeginObject();
    w.Field("name", c.name);
    w.Field("pass", c.pass);
    w.Field("detail", c.detail);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str() + "\n";
}

ScenarioRunner::ScenarioRunner(ScenarioSpec spec) : spec_(std::move(spec)) {
  cluster_ = std::make_unique<fleet::Cluster>(spec_.cluster);
  source_ = spec_.make_source(*cluster_);
  monitor_ = std::make_unique<fleet::SloMonitor>(cluster_.get(), spec_.slo);
  if (spec_.use_chaos) {
    chaos_ = std::make_unique<ChaosEngine>(cluster_.get(), spec_.chaos);
    chaos_->AddListener(source_.get());
  }
  if (spec_.use_autopilot) {
    autopilot_ = std::make_unique<fleet::Autopilot>(cluster_.get(), source_.get(),
                                                    spec_.autopilot);
    if (chaos_ != nullptr) {
      // After the source: a restarted node's load is re-provisioned before
      // the autopilot re-enables Tai Chi on it.
      chaos_->AddListener(autopilot_.get());
    }
  }
}

void ScenarioRunner::AddListener(NodeLifecycleListener* listener) {
  extra_listeners_.push_back(listener);
  if (chaos_ != nullptr) {
    chaos_->AddListener(listener);
  }
}

ScenarioVerdict ScenarioRunner::Run() {
  ScenarioVerdict v;
  v.scenario = spec_.name;
  v.seed = spec_.cluster.seed;
  v.nodes = spec_.cluster.num_nodes;
  if (ran_) {
    TAICHI_ERROR(cluster_->Now(), "scenario: Run called twice");
    return v;
  }
  ran_ = true;

  source_->Start(*cluster_);
  if (chaos_ != nullptr) {
    chaos_->Arm();
  }
  if (autopilot_ != nullptr) {
    // Armed before warmup: the controller may need the warmup to converge
    // the fleet (enable Tai Chi where the shape demands it) pre-fault.
    autopilot_->Arm();
  }

  // Warmup: the queues fill, the sources reach steady state; the window
  // reset below throws these samples away.
  cluster_->RunFor(spec_.warmup);
  monitor_->Observe();

  // Observed phase: one SLO window per observe_every.
  const sim::Duration step = std::max<sim::Duration>(1, spec_.observe_every);
  sim::SimTime observed_end = cluster_->Now() + spec_.observed;
  while (cluster_->Now() < observed_end) {
    cluster_->RunFor(step);
    const fleet::SloMonitor::Report& report = window_reports_.emplace_back(monitor_->Observe());
    ++v.windows;
    v.total_samples += report.total_samples;
    if (report.total_samples > 0) {
      v.worst_fleet_value = std::max(v.worst_fleet_value, report.fleet_value);
      v.last_fleet_value = report.fleet_value;
    }
    if (report.fleet_breach) {
      ++v.breach_windows;
    }
    if (!report.hotspots.empty()) {
      ++v.hotspot_windows;
      bool attributed = false;
      for (const fleet::SloMonitor::HeavyFlow& f : report.fleet_heavy) {
        attributed = attributed || IsAttackFlow(f);
      }
      for (const fleet::SloMonitor::NodeStat& n : report.nodes) {
        for (const fleet::SloMonitor::HeavyFlow& f : n.heavy) {
          attributed = attributed || IsAttackFlow(f);
        }
      }
      if (attributed) {
        ++v.attributed_windows;
      }
    }
  }

  // Drain: no new faults, but queued auto-restarts still fire; give
  // stragglers a few extra epochs so the fleet ends whole.
  if (chaos_ != nullptr) {
    chaos_->Quiesce();
  }
  cluster_->RunFor(spec_.drain);
  for (int i = 0; chaos_ != nullptr && chaos_->pending_restarts() > 0 && i < 64; ++i) {
    cluster_->RunFor(spec_.cluster.epoch);
  }
  source_->Stop(*cluster_);
  if (chaos_ != nullptr) {
    chaos_->Disarm();
    v.crashes = chaos_->crashes();
    v.restarts = chaos_->restarts();
    v.stalls = chaos_->stalls();
    v.floods = chaos_->floods();
    v.storms = chaos_->storms();
    v.pending_restarts = chaos_->pending_restarts();
  }
  v.alive_at_end = cluster_->alive_count();
  v.sim_ms = sim::ToSeconds(cluster_->Now()) * 1e3;

  // RX shedding tallies. Without these the verdict can claim a flood was
  // survived while every victim ring silently overflowed — drops must be
  // first-class, not invisible.
  v.node_rx_ring_drops.assign(cluster_->size(), 0);
  for (size_t i = 0; i < cluster_->size(); ++i) {
    if (!cluster_->alive(i)) {
      continue;
    }
    const hw::Accelerator& accel = cluster_->node(i).machine().accelerator();
    v.node_rx_ring_drops[i] = accel.ring_drops();
    v.rx_ring_drops += accel.ring_drops();
    v.rx_pool_drops += accel.pool_drops();
  }

  if (autopilot_ != nullptr) {
    ScenarioVerdict::AutopilotStats& a = v.autopilot;
    a.engaged = true;
    // Recovery/streak over the observed windows: a window is unhealthy when
    // the fleet aggregate breached or any node breached the absolute
    // threshold on enough samples. (The relative hotspot flag is NOT part
    // of health: a node served by its static CP partition is always slower
    // than its Tai Chi siblings, yet can sit comfortably under the SLO.)
    // Recovery counts post-fault windows up to and INCLUDING the last
    // unhealthy one: the fleet has recovered only once it is healthy and
    // stays healthy through the end of the run. A transient healthy window
    // followed by relapse does not count.
    size_t streak = 0;
    bool past_fault = false;
    size_t post_fault = 0;
    size_t last_unhealthy = 0;
    for (const fleet::SloMonitor::Report& r : window_reports_) {
      bool node_breach = false;
      for (const fleet::SloMonitor::NodeStat& n : r.nodes) {
        node_breach = node_breach || (n.samples >= spec_.slo.min_samples && n.breach);
      }
      const bool unhealthy = r.fleet_breach || node_breach;
      streak = unhealthy ? streak + 1 : 0;
      a.max_breach_streak = std::max(a.max_breach_streak, streak);
      past_fault = past_fault || r.at > spec_.fault_at;
      if (past_fault) {
        ++post_fault;
        if (unhealthy) {
          last_unhealthy = post_fault;
        }
      }
    }
    // Still unhealthy in the final window: never recovered — score as one
    // worse than every window so any finite gate fails.
    a.recovery_windows =
        (post_fault > 0 && last_unhealthy == post_fault) ? v.windows + 1 : last_unhealthy;
    a.enables = autopilot_->enables();
    a.disables = autopilot_->disables();
    a.migrations = autopilot_->migrations();
    a.dp_boosts = autopilot_->boosts();
    a.dp_reverts = autopilot_->reverts();
    a.sheds = autopilot_->sheds();
    a.restores = autopilot_->restores();
    a.evictions = autopilot_->evictions();
    a.readmits = autopilot_->readmits();
    a.backoffs = autopilot_->backoffs();
    a.shed_factor = autopilot_->shed_factor();
    a.enabled_nodes = autopilot_->enabled_nodes();
    a.enabled_vcpus = autopilot_->enabled_vcpus();
    for (size_t i = 0; i < cluster_->size(); ++i) {
      if (cluster_->alive(i)) {
        const exp::TestbedConfig& cfg = cluster_->node(i).config();
        a.static_vcpus +=
            cfg.taichi.num_vcpus == 0 ? cfg.dp_cpu_count : cfg.taichi.num_vcpus;
      }
    }
    a.decisions = autopilot_->decisions();
    autopilot_->Disarm();
  }

  // Score the expectations.
  const ScenarioExpectations& e = spec_.expect;
  auto check = [&v](const std::string& name, bool pass, std::string detail) {
    v.checks.push_back({name, pass, std::move(detail)});
  };
  check("fleet_samples", v.total_samples >= e.min_fleet_samples,
        "want >= " + std::to_string(e.min_fleet_samples) + ", got " +
            std::to_string(v.total_samples));
  if (e.max_breach_windows != static_cast<size_t>(-1)) {
    check("breach_windows_max", v.breach_windows <= e.max_breach_windows,
          "want <= " + std::to_string(e.max_breach_windows) + ", got " +
              std::to_string(v.breach_windows));
  }
  if (e.min_breach_windows > 0) {
    check("breach_windows_min", v.breach_windows >= e.min_breach_windows,
          "want >= " + std::to_string(e.min_breach_windows) + ", got " +
              std::to_string(v.breach_windows));
  }
  if (e.min_hotspot_windows > 0) {
    check("hotspot_windows", v.hotspot_windows >= e.min_hotspot_windows,
          "want >= " + std::to_string(e.min_hotspot_windows) + ", got " +
              std::to_string(v.hotspot_windows));
  }
  if (e.require_attack_attribution) {
    check("attack_attributed", v.attributed_windows > 0,
          "want >= 1 window naming a " + std::string("198.51.100.x") +
              " flow, got " + std::to_string(v.attributed_windows));
  }
  if (e.require_crashes) {
    check("chaos_crashed", v.crashes > 0,
          "want >= 1 crash, got " + std::to_string(v.crashes));
  }
  if (e.min_rx_ring_drops > 0) {
    check("rx_ring_drops", v.rx_ring_drops >= e.min_rx_ring_drops,
          "want >= " + std::to_string(e.min_rx_ring_drops) + " shed at rx rings, got " +
              std::to_string(v.rx_ring_drops));
  }
  if (e.require_full_recovery) {
    check("full_recovery",
          v.alive_at_end == cluster_->size() && v.pending_restarts == 0,
          std::to_string(v.alive_at_end) + "/" + std::to_string(cluster_->size()) +
              " nodes up, " + std::to_string(v.pending_restarts) +
              " restarts pending");
  }
  if (v.autopilot.engaged) {
    const ScenarioVerdict::AutopilotStats& a = v.autopilot;
    if (e.max_recovery_windows != static_cast<size_t>(-1)) {
      check("recovery_windows", a.recovery_windows <= e.max_recovery_windows,
            "want <= " + std::to_string(e.max_recovery_windows) + " post-fault, got " +
                std::to_string(a.recovery_windows));
    }
    if (e.max_breach_streak != static_cast<size_t>(-1)) {
      check("breach_streak", a.max_breach_streak <= e.max_breach_streak,
            "want <= " + std::to_string(e.max_breach_streak) + " consecutive, got " +
                std::to_string(a.max_breach_streak));
    }
    if (e.require_fewer_taichi_cpus) {
      check("fewer_taichi_cpus",
            a.enabled_nodes >= 1 && a.enabled_vcpus < a.static_vcpus,
            std::to_string(a.enabled_vcpus) + " vCPUs on " +
                std::to_string(a.enabled_nodes) + " nodes vs " +
                std::to_string(a.static_vcpus) + " static");
    }
    if (e.require_shed_restored) {
      check("shed_restored", a.sheds > 0 && a.shed_factor >= 1.0 - 1e-9,
            std::to_string(a.sheds) + " sheds, " + std::to_string(a.restores) +
                " restores, factor " + std::to_string(a.shed_factor) + " at end");
    }
  }
  v.pass = true;
  for (const ScenarioCheck& c : v.checks) {
    v.pass = v.pass && c.pass;
  }
  return v;
}

}  // namespace taichi::scenario
