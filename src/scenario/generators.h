// Scripted traffic generators layered on the canonical Fig. 3 fleet mix.
//
// Each generator is a TrafficSource that wraps a fleet::LoadGen (the
// baseline production shape) and adds one adversarial or time-varying
// dimension on top:
//
//   DiurnalSource  the whole fleet breathes: a sinusoidal day/night curve
//                  scales both the DP packet rates and the VM-startup
//                  arrival rate between a trough and a peak factor.
//   IncastSource   periodic fan-in bursts: many synchronized senders hit
//                  one victim node at once, the classic partition/aggregate
//                  microburst that stresses ring depth and poll latency.
//   DdosSource     a volumetric flood from a handful of spoofed TEST-NET-2
//                  source IPs (dp::OpenLoopConfig::attack_sources) pinned at
//                  chosen victim nodes. Under Tai Chi the flood eats the DP
//                  idle the framework would otherwise donate, so the victim
//                  nodes' VM-startup p99 rises, the SLO monitor flags them
//                  as hotspots, and the sketch attribution names the
//                  attacker flows — the end-to-end detection story the
//                  scenario suite asserts.
//
// All extra per-node state (the attack/incast OpenLoopSources) is owned by
// the generator but driven by events inside the victim node's simulation,
// so nodes still never share mutable state and `--threads` stays
// byte-identical. Crash notifications drop the per-node objects (their
// simulation pointers die with the Testbed); restarts rebuild them.
#ifndef SRC_SCENARIO_GENERATORS_H_
#define SRC_SCENARIO_GENERATORS_H_

#include <memory>
#include <vector>

#include "src/fleet/load_gen.h"
#include "src/scenario/traffic_source.h"

namespace taichi::scenario {

// Owner ids (Testbed::Tag) for generator-injected packets. Distinct from the
// background owner so delivery-sink lookups drop them instead of corrupting
// the background sources' latency accounting.
inline constexpr uint16_t kIncastOwner = 0x10ca;
inline constexpr uint16_t kAttackOwner = 0xadd0;

// --- Diurnal -----------------------------------------------------------------

struct DiurnalConfig {
  fleet::LoadGenConfig load;
  sim::Duration period = sim::Millis(400);  // One simulated "day".
  double trough = 0.40;                     // Load factor at the bottom...
  double peak = 1.70;                       // ...and at the top of the day.
};

class DiurnalSource : public TrafficSource {
 public:
  explicit DiurnalSource(DiurnalConfig config) : config_(config) {}

  const char* name() const override { return "diurnal"; }
  void Start(fleet::Cluster& cluster) override;
  void Stop(fleet::Cluster& cluster) override;
  bool running() const override { return gen_ != nullptr && gen_->running(); }

  void OnNodeCrash(fleet::Cluster& cluster, size_t node) override;
  void OnNodeRestart(fleet::Cluster& cluster, size_t node) override;
  double VmShare(size_t node) const override { return gen_ ? gen_->VmShare(node) : 1.0; }
  bool MigrateVmShare(size_t from, size_t to, double units) override {
    return gen_ != nullptr && gen_->MigrateVmShare(from, to, units);
  }

  // The current day/night factor (for reports).
  double factor() const { return factor_; }

 private:
  void Modulate(fleet::Cluster& cluster, sim::SimTime now);

  DiurnalConfig config_;
  std::unique_ptr<fleet::LoadGen> gen_;
  double base_vm_rate_ = 0;
  sim::SimTime day_zero_ = 0;
  double factor_ = 1.0;
  uint64_t hook_id_ = 0;
};

// --- Incast ------------------------------------------------------------------

struct IncastConfig {
  fleet::LoadGenConfig load;
  int victim = 0;
  int fan_in = 24;               // Synchronized senders per burst.
  double per_sender_pps = 30000;  // Each sender's rate while bursting.
  uint32_t size_bytes = 1024;
  sim::Duration period = sim::Millis(40);
  sim::Duration burst = sim::Millis(4);
  sim::Duration start_after = sim::Millis(20);
  uint64_t flow_base = 0x10ca0000;
};

class IncastSource : public TrafficSource {
 public:
  explicit IncastSource(IncastConfig config) : config_(config) {}

  const char* name() const override { return "incast"; }
  void Start(fleet::Cluster& cluster) override;
  void Stop(fleet::Cluster& cluster) override;
  bool running() const override { return gen_ != nullptr && gen_->running(); }

  void OnNodeCrash(fleet::Cluster& cluster, size_t node) override;
  void OnNodeRestart(fleet::Cluster& cluster, size_t node) override;
  double VmShare(size_t node) const override { return gen_ ? gen_->VmShare(node) : 1.0; }
  bool MigrateVmShare(size_t from, size_t to, double units) override {
    return gen_ != nullptr && gen_->MigrateVmShare(from, to, units);
  }

  uint64_t bursts() const { return bursts_; }
  uint64_t incast_packets() const;

 private:
  void Build(fleet::Cluster& cluster);
  void ScheduleBurst(fleet::Cluster& cluster, sim::Duration delay);
  void BurstOn(fleet::Cluster& cluster);
  void BurstOff(fleet::Cluster& cluster);

  IncastConfig config_;
  std::unique_ptr<fleet::LoadGen> gen_;
  // Touched only by the victim node's thread once the run starts.
  std::vector<std::unique_ptr<dp::OpenLoopSource>> senders_;
  bool armed_ = false;
  uint64_t bursts_ = 0;
};

// --- DDoS --------------------------------------------------------------------

struct DdosConfig {
  fleet::LoadGenConfig load;
  std::vector<int> targets = {0, 1};  // Attacked node indices.
  uint32_t attackers = 12;            // Spoofed TEST-NET-2 source IPs.
  // Flood intensity per victim DP queue, as the DP utilization the flood
  // alone would consume. High enough and the donated idle Tai Chi feeds the
  // control plane with disappears on the victims.
  double utilization = 0.70;
  uint32_t size_bytes = 64;
  sim::Duration start_after = sim::Millis(40);
  sim::Duration duration = 0;  // 0 = flood until Stop().
  uint64_t flow_base = 0xdd05;  // One victim service endpoint.
};

class DdosSource : public TrafficSource {
 public:
  explicit DdosSource(DdosConfig config) : config_(std::move(config)) {}

  const char* name() const override { return "ddos"; }
  void Start(fleet::Cluster& cluster) override;
  void Stop(fleet::Cluster& cluster) override;
  bool running() const override { return gen_ != nullptr && gen_->running(); }

  void OnNodeCrash(fleet::Cluster& cluster, size_t node) override;
  void OnNodeRestart(fleet::Cluster& cluster, size_t node) override;
  double VmShare(size_t node) const override { return gen_ ? gen_->VmShare(node) : 1.0; }
  bool MigrateVmShare(size_t from, size_t to, double units) override {
    return gen_ != nullptr && gen_->MigrateVmShare(from, to, units);
  }

  // Packets the flood pushed into victim accelerators (all targets).
  uint64_t attack_packets() const;

 private:
  bool IsTarget(size_t node) const;
  void ArmNode(fleet::Cluster& cluster, size_t node, sim::Duration delay);

  DdosConfig config_;
  std::unique_ptr<fleet::LoadGen> gen_;
  // per_node_[i] holds node i's flood sources (empty for non-targets);
  // events driving them live inside node i's simulation.
  std::vector<std::vector<std::unique_ptr<dp::OpenLoopSource>>> per_node_;
};

// --- Surge -------------------------------------------------------------------

// Fleet-wide demand surge: the VM-startup arrival rate jumps by `factor`
// during [start, start + duration) and falls back afterwards — the
// "everyone deploys at once" overload the autopilot's graceful-degradation
// path is built for. Only the CP arrival rate moves; the DP background knob
// (ScaleBackgroundLoad) is deliberately left to the autopilot's shedding so
// the two never fight over the same dial.
struct SurgeConfig {
  fleet::LoadGenConfig load;
  sim::SimTime start = sim::Millis(500);  // Fleet-clock time the surge hits.
  sim::Duration duration = sim::Millis(700);
  double factor = 5.0;
};

class SurgeSource : public TrafficSource {
 public:
  explicit SurgeSource(SurgeConfig config) : config_(config) {}

  const char* name() const override { return "surge"; }
  void Start(fleet::Cluster& cluster) override;
  void Stop(fleet::Cluster& cluster) override;
  bool running() const override { return gen_ != nullptr && gen_->running(); }

  void OnNodeCrash(fleet::Cluster& cluster, size_t node) override;
  void OnNodeRestart(fleet::Cluster& cluster, size_t node) override;
  double VmShare(size_t node) const override { return gen_ ? gen_->VmShare(node) : 1.0; }
  bool MigrateVmShare(size_t from, size_t to, double units) override {
    return gen_ != nullptr && gen_->MigrateVmShare(from, to, units);
  }

  // The surge multiplier currently applied (for reports).
  double factor() const { return applied_; }

 private:
  void Modulate(sim::SimTime now);

  SurgeConfig config_;
  std::unique_ptr<fleet::LoadGen> gen_;
  double applied_ = 1.0;
  uint64_t hook_id_ = 0;
};

}  // namespace taichi::scenario

#endif  // SRC_SCENARIO_GENERATORS_H_
