// Compact binary packet-trace format ("TCPT"): the record/replay half of the
// scenario engine.
//
// A PacketTrace captures every packet entering every node's accelerator —
// the exact (time, node, queue, IoPacket) tuples at Ingress() call time —
// so any live run's offered load can be replayed byte-identically into a
// fresh cluster: the replayer re-issues the same Ingress() calls at the same
// simulated times, and because the simulator is deterministic, everything
// downstream (sketches, rings, DP service behavior for the same CP regime)
// follows. Re-recording a replay yields the original trace, byte for byte;
// that round trip is the format's correctness test.
//
// Wire layout (little-endian, no padding ambiguity — every field is written
// byte-wise):
//
//   header  (24 bytes): magic "TCPT" | u32 version (=1) | u32 node_count |
//                       u32 reserved (=0) | u64 record_count
//   records (64 bytes each, ascending (time, node, per-node arrival order)):
//       u64 time_ns | u64 id | u64 flow | u64 user_tag |
//       u32 dp_cost_hint | u32 size_bytes |
//       u32 src_ip | u32 dst_ip | u16 src_port | u16 dst_port |
//       u16 node | u16 queue | u8 kind | u8 proto | 6 zero bytes
//
// The fixed 64-byte stride keeps the format seekable and the files dense:
// one million packets is 61 MiB, and a record never allocates.
#ifndef SRC_SCENARIO_TRACE_FORMAT_H_
#define SRC_SCENARIO_TRACE_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/hw/io_packet.h"
#include "src/scenario/traffic_source.h"
#include "src/sim/time.h"

namespace taichi::fleet {
class Cluster;
}  // namespace taichi::fleet

namespace taichi::scenario {

inline constexpr uint32_t kPacketTraceMagic = 0x54504354u;  // "TCPT" LE.
inline constexpr uint32_t kPacketTraceVersion = 1;
inline constexpr size_t kPacketTraceHeaderBytes = 24;
inline constexpr size_t kPacketTraceRecordBytes = 64;

// One accelerator-ingress event, node-qualified.
struct PacketRecord {
  sim::SimTime time = 0;  // Ingress() call time in the node's simulation.
  uint16_t node = 0;
  uint16_t queue = 0;
  hw::IoPacket pkt;  // created/ring_push are derived at replay, not stored.

  bool operator==(const PacketRecord& other) const;
};

struct PacketTrace {
  uint32_t node_count = 0;
  std::vector<PacketRecord> records;

  std::string Serialize() const;
  // Strict parse: bad magic, version, truncation or nonzero pad bytes all
  // fail (returns false and leaves *out* untouched on failure).
  static bool Parse(std::string_view bytes, PacketTrace* out);

  bool WriteFile(const std::string& path) const;
  static bool ReadFile(const std::string& path, PacketTrace* out);
};

// Records every node's accelerator-ingress stream through the per-node raw
// taps. Buffers are per-node (nodes step on different threads inside an
// epoch; each buffer is only ever touched by its node's thread) and merged
// into one time-ordered trace by Finish(). Host-side object: it survives
// node crashes — a crashed node's packets stay in the trace up to the crash,
// and a restarted node's tap is re-installed via OnNodeRestart.
class PacketTraceRecorder : public NodeLifecycleListener {
 public:
  explicit PacketTraceRecorder(fleet::Cluster* cluster);
  ~PacketTraceRecorder();
  PacketTraceRecorder(const PacketTraceRecorder&) = delete;
  PacketTraceRecorder& operator=(const PacketTraceRecorder&) = delete;

  // Installs the ingress tap on every alive node. One recorder per cluster;
  // attaching a second would silently replace the first's taps.
  void Attach();
  // Clears the taps (crashed nodes' taps died with their Testbeds).
  void Detach();

  // Merges the per-node buffers into one trace ordered by
  // (time, node, per-node arrival order). The recorder keeps its buffers, so
  // Finish() may be called repeatedly as a run progresses.
  PacketTrace Finish() const;

  uint64_t recorded() const;

  void OnNodeCrash(fleet::Cluster& cluster, size_t node) override;
  void OnNodeRestart(fleet::Cluster& cluster, size_t node) override;

 private:
  void Tap(size_t node);

  fleet::Cluster* cluster_;
  bool attached_ = false;
  std::vector<std::vector<PacketRecord>> per_node_;
};

// Replays a PacketTrace as a TrafficSource: per node, one chained event
// walks the node's records in order and re-issues Ingress() at the recorded
// times. Records behind the fleet clock at Start() are skipped (counted in
// dropped_late()); a trace recorded from boot replays in full.
class PacketTraceReplayer : public TrafficSource {
 public:
  explicit PacketTraceReplayer(PacketTrace trace);

  const char* name() const override { return "trace-replay"; }
  void Start(fleet::Cluster& cluster) override;
  void Stop(fleet::Cluster& cluster) override;
  bool running() const override { return running_; }

  // A crashed node's pending injections die with its simulation; the cursor
  // then skips everything up to the restart point, mirroring the packets a
  // dead NIC never saw.
  void OnNodeCrash(fleet::Cluster& cluster, size_t node) override;
  void OnNodeRestart(fleet::Cluster& cluster, size_t node) override;

  uint64_t injected() const;
  uint64_t dropped_late() const;

 private:
  void ScheduleNext(fleet::Cluster& cluster, size_t node);
  void InjectRun(fleet::Cluster& cluster, size_t node);

  PacketTrace trace_;
  // Per-node index ranges into trace_.records (records are time-ordered;
  // each node's subsequence is extracted once at Start()). All mutable
  // per-node state — cursors and counters — is striped by node, because the
  // injection events run inside the node simulations, which step on
  // different threads within an epoch.
  std::vector<std::vector<size_t>> per_node_;
  std::vector<size_t> cursor_;
  std::vector<uint64_t> injected_per_node_;
  std::vector<uint64_t> dropped_per_node_;
  uint64_t dropped_unmapped_ = 0;  // Records for nodes this cluster lacks.
  bool running_ = false;
};

}  // namespace taichi::scenario

#endif  // SRC_SCENARIO_TRACE_FORMAT_H_
