// Chaos layer: scripted and seeded-random fault injection driven from the
// cluster's epoch hooks.
//
// Every action fires at an epoch boundary — after the barrier, on the fleet
// driver thread — which is precisely what makes chaos runs reproducible:
// the injection schedule is a function of (script, seed, epoch count) only,
// never of wall-clock or thread interleaving, so a chaos run is
// byte-identical across same-seed reruns AND across `--threads` values.
//
// Faults:
//   kCrash         power-loss a node (Cluster::CrashNode) — listeners are
//                  notified first, while the dying simulation still exists.
//   kRestart       reboot a crashed node (Cluster::RestartNode) — listeners
//                  are notified after the fresh Testbed is at the fleet
//                  clock, and re-provision their workload.
//   kAccelStall    freeze the accelerator pipeline (firmware hiccup).
//   kCpFlood       noisy neighbor: a pack of aggressive CP tasks.
//   kHotplugStorm  back-to-back stop_machine-style kernel sections.
//
// The random layer draws one Bernoulli per enabled fault kind per node per
// epoch from its own Rng — dead nodes consume draws too, so the stream
// never depends on fleet health history. Random crashes auto-restart after
// `down_time`, and never take the fleet below `min_alive` nodes.
#ifndef SRC_SCENARIO_CHAOS_H_
#define SRC_SCENARIO_CHAOS_H_

#include <cstdint>
#include <vector>

#include "src/scenario/traffic_source.h"
#include "src/sim/random.h"
#include "src/sim/time.h"

namespace taichi::exp {
class Testbed;
}  // namespace taichi::exp

namespace taichi::scenario {

struct ChaosAction {
  enum class Kind : uint8_t { kCrash, kRestart, kAccelStall, kCpFlood, kHotplugStorm };

  sim::SimTime at = 0;  // Fires at the first epoch boundary >= at.
  int node = 0;
  Kind kind = Kind::kCrash;
  sim::Duration duration = 0;  // Stall length / storm routine length.
  int count = 0;               // Flood task count / storm op count.
  uint64_t iterations = 0;     // Flood iterations per task (0 = forever).
};

const char* ToString(ChaosAction::Kind kind);

struct ChaosConfig {
  // Scripted faults (any order; the engine sorts by time, ties by position).
  std::vector<ChaosAction> script;

  // Seeded-random layer: per-node per-epoch probabilities (0 disables).
  double crash_prob = 0;
  sim::Duration down_time = sim::Millis(30);  // Random crashes auto-restart.
  double stall_prob = 0;
  sim::Duration stall_duration = sim::Micros(800);
  double flood_prob = 0;
  int flood_tasks = 3;
  uint64_t flood_iterations = 40;
  double storm_prob = 0;
  int storm_ops = 12;
  sim::Duration storm_routine = sim::Millis(2);

  uint64_t seed = 0x5eed;
  size_t min_alive = 1;  // Random crashes never go below this.
};

class ChaosEngine {
 public:
  struct Fired {
    sim::SimTime at = 0;
    ChaosAction::Kind kind = ChaosAction::Kind::kCrash;
    int node = 0;
  };

  ChaosEngine(fleet::Cluster* cluster, ChaosConfig config);
  ~ChaosEngine();
  ChaosEngine(const ChaosEngine&) = delete;
  ChaosEngine& operator=(const ChaosEngine&) = delete;

  // Lifecycle observers (traffic sources, trace recorder, rollout,
  // autopilot — every party that must see death and rebirth goes through
  // this one path). Crash order: listeners (in registration order), then the
  // crash; restart order: the reboot, then listeners in registration order —
  // so register load re-provisioners (the traffic source) before controllers
  // that re-enable Tai Chi (Rollout/Autopilot).
  void AddListener(NodeLifecycleListener* listener);

  // Registers the epoch hook. Arm/Disarm pair once per run.
  void Arm();
  void Disarm();
  // Stops injecting new faults but keeps the hook armed so already-queued
  // restarts still fire — the end-of-run drain path.
  void Quiesce() { quiesced_ = true; }

  const std::vector<Fired>& fired() const { return fired_; }
  int crashes() const { return crashes_; }
  int restarts() const { return restarts_; }
  int stalls() const { return stalls_; }
  int floods() const { return floods_; }
  int storms() const { return storms_; }
  // Crashed nodes whose restart has not fired yet.
  size_t pending_restarts() const { return pending_.size(); }

 private:
  void OnEpoch(sim::SimTime now);
  void Apply(const ChaosAction& action, sim::SimTime now);
  void Crash(size_t node, sim::SimTime now);
  void Restart(size_t node, sim::SimTime now);

  fleet::Cluster* cluster_;
  ChaosConfig config_;
  sim::Rng rng_;
  uint64_t hook_id_ = 0;
  size_t script_next_ = 0;               // Cursor into the sorted script.
  std::vector<ChaosAction> pending_;     // Auto-restarts, sorted by time.
  std::vector<Fired> fired_;
  bool quiesced_ = false;
  int crashes_ = 0;
  int restarts_ = 0;
  int stalls_ = 0;
  int floods_ = 0;
  int storms_ = 0;
  std::vector<NodeLifecycleListener*> listeners_;
};

}  // namespace taichi::scenario

#endif  // SRC_SCENARIO_CHAOS_H_
