// The scenario runner: one deterministic end-to-end experiment binding a
// fleet, a traffic source, an optional chaos layer and windowed SLO
// observation into a pass/fail verdict.
//
// A run has four phases:
//   warmup    the source ramps, windows are discarded;
//   observed  the SLO monitor samples every `observe_every` and the runner
//             tallies breach windows, hotspot windows and — when heavy-hitter
//             attribution names a flow from the spoofed TEST-NET-2 attack
//             range — attributed windows;
//   drain     chaos is quiesced (pending auto-restarts still fire) and the
//             fleet runs the churn out;
//   verdict   the tallies are scored against the scenario's expectations.
//
// The verdict JSON deliberately carries no thread count and no wall-clock:
// a scenario's report is a pure function of (spec, seed), so CI can `cmp`
// the bytes produced with --threads 1 against --threads 4.
#ifndef SRC_SCENARIO_SCENARIO_H_
#define SRC_SCENARIO_SCENARIO_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/fleet/autopilot.h"
#include "src/fleet/cluster.h"
#include "src/fleet/slo_monitor.h"
#include "src/scenario/chaos.h"
#include "src/scenario/traffic_source.h"

namespace taichi::scenario {

// What a scenario must show to pass. Window counts refer to the observed
// phase's SLO windows (one per `observe_every`).
struct ScenarioExpectations {
  // The observed phase must produce at least this many fleet SLO samples —
  // a verdict over a trickle of samples is noise, not a result.
  size_t min_fleet_samples = 50;
  // Fleet-p99-over-threshold windows: at most this many (healthy scenarios
  // pin this low; adversarial ones leave it unbounded)...
  size_t max_breach_windows = static_cast<size_t>(-1);
  // ...and at least this many (a flood that never hurt anyone is a test
  // bug, not a pass).
  size_t min_breach_windows = 0;
  // Windows in which at least one node was flagged as a hotspot.
  size_t min_hotspot_windows = 0;
  // Require >= 1 window whose hotspot heavy-hitter attribution named a flow
  // from the spoofed attack source range (dp::kAttackSrcBase) — the
  // end-to-end DDoS detection story.
  bool require_attack_attribution = false;
  // Chaos must actually have crashed something.
  bool require_crashes = false;
  // Every node is back up (and no restart is pending) after the drain.
  bool require_full_recovery = true;
  // The run must have shed at least this many packets at RX descriptor
  // rings (summed over alive nodes). Overload scenarios set this: a flood
  // that never overflowed a ring was absorbed, not survived.
  uint64_t min_rx_ring_drops = 0;

  // --- Autopilot expectations (scored only when the spec engages one) ---
  // A window is "unhealthy" when the fleet breaches or any node is a
  // hotspot. Counting observed windows after `fault_at`: the fleet must
  // reach its first healthy window within this many.
  size_t max_recovery_windows = static_cast<size_t>(-1);
  // Longest run of consecutive unhealthy observed windows — the gate for
  // recurring-fault scenarios where "recovered once" is meaningless.
  size_t max_breach_streak = static_cast<size_t>(-1);
  // The autopilot must end the run with Tai Chi on at least one node but
  // fewer total vCPUs than enabling the whole fleet statically would burn.
  bool require_fewer_taichi_cpus = false;
  // Graceful degradation must have fired AND been fully unwound by the end.
  bool require_shed_restored = false;
};

// A fully-specified scenario: cluster shape, traffic, chaos, SLO policy,
// phase durations and expectations. Built by the library (BuildScenario) or
// by hand in tests.
struct ScenarioSpec {
  std::string name;
  std::string description;
  fleet::ClusterConfig cluster;
  // Built at Run() time, after the cluster exists. Must not be null.
  std::function<std::unique_ptr<TrafficSource>(fleet::Cluster&)> make_source;
  // Chaos layer; engaged only when `use_chaos` is set.
  bool use_chaos = false;
  ChaosConfig chaos;
  // Self-healing controller; engaged only when `use_autopilot` is set. The
  // autopilot arms before warmup (it may converge the fleet pre-fault) and
  // registers for chaos lifecycle events after the traffic source.
  bool use_autopilot = false;
  fleet::AutopilotConfig autopilot;
  // Fleet-clock time the scenario's fault lands (flood opens, surge hits);
  // recovery windows are counted from here. 0 = from the first window.
  sim::SimTime fault_at = 0;
  fleet::SloConfig slo;
  sim::Duration warmup = sim::Millis(200);
  sim::Duration observed = sim::Millis(600);
  sim::Duration observe_every = sim::Millis(100);
  sim::Duration drain = sim::Millis(100);
  ScenarioExpectations expect;
};

// One scored expectation in the verdict.
struct ScenarioCheck {
  std::string name;
  bool pass = false;
  std::string detail;  // Human-readable "want X, got Y".
};

struct ScenarioVerdict {
  std::string scenario;
  uint64_t seed = 0;
  int nodes = 0;
  double sim_ms = 0;  // Fleet clock at the end of the run.

  // Observed-phase tallies.
  size_t windows = 0;
  size_t breach_windows = 0;
  size_t hotspot_windows = 0;
  size_t attributed_windows = 0;
  size_t total_samples = 0;
  double worst_fleet_value = 0;  // Max windowed fleet percentile.
  double last_fleet_value = 0;

  // RX shedding over the whole run, summed across nodes alive at the end
  // (a crashed-and-restarted node restarts its counters). Ring drops are
  // descriptor-ring overflow; pool drops are packet-arena exhaustion.
  uint64_t rx_ring_drops = 0;
  uint64_t rx_pool_drops = 0;
  std::vector<uint64_t> node_rx_ring_drops;  // Per node; 0 for dead nodes.

  // Chaos tallies (zero when chaos was off).
  int crashes = 0;
  int restarts = 0;
  int stalls = 0;
  int floods = 0;
  int storms = 0;
  size_t alive_at_end = 0;
  size_t pending_restarts = 0;

  // Autopilot tallies; serialized (and scored) only when `engaged` — a
  // non-autopilot scenario's verdict bytes are unchanged by this feature.
  struct AutopilotStats {
    bool engaged = false;
    size_t recovery_windows = 0;  // Post-fault windows to first healthy one.
    size_t max_breach_streak = 0;
    uint64_t enables = 0;
    uint64_t disables = 0;
    uint64_t migrations = 0;
    uint64_t dp_boosts = 0;
    uint64_t dp_reverts = 0;
    uint64_t sheds = 0;
    uint64_t restores = 0;
    uint64_t evictions = 0;
    uint64_t readmits = 0;
    uint64_t backoffs = 0;
    double shed_factor = 1.0;
    int enabled_nodes = 0;
    int enabled_vcpus = 0;
    int static_vcpus = 0;  // What enabling every node would cost.
    std::vector<fleet::Autopilot::Decision> decisions;
  };
  AutopilotStats autopilot;

  bool pass = false;
  std::vector<ScenarioCheck> checks;

  // Deterministic report: a pure function of (spec, seed) — no thread
  // count, no wall clock, byte-identical across --threads values.
  std::string ToJson() const;
};

// Returns true when a heavy flow's source sits in the spoofed attack range.
bool IsAttackFlow(const fleet::SloMonitor::HeavyFlow& flow);

class ScenarioRunner {
 public:
  explicit ScenarioRunner(ScenarioSpec spec);

  // Executes warmup -> observed -> drain and scores the verdict. Call once.
  ScenarioVerdict Run();

  // Valid after construction; the cluster outlives Run() so callers can
  // pull traces/flow sketches for sidecar outputs.
  fleet::Cluster& cluster() { return *cluster_; }
  TrafficSource* source() { return source_.get(); }
  ChaosEngine* chaos() { return chaos_.get(); }
  fleet::Autopilot* autopilot() { return autopilot_.get(); }
  const fleet::SloMonitor& monitor() const { return *monitor_; }
  // One SLO report per observed window, in order (valid after Run()).
  const std::vector<fleet::SloMonitor::Report>& window_reports() const {
    return window_reports_;
  }

  // Observers notified around every chaos crash/restart (e.g. the packet
  // trace recorder). Register before Run().
  void AddListener(NodeLifecycleListener* listener);

 private:
  ScenarioSpec spec_;
  std::unique_ptr<fleet::Cluster> cluster_;
  std::unique_ptr<TrafficSource> source_;
  std::unique_ptr<ChaosEngine> chaos_;
  std::unique_ptr<fleet::Autopilot> autopilot_;
  std::unique_ptr<fleet::SloMonitor> monitor_;
  std::vector<NodeLifecycleListener*> extra_listeners_;
  std::vector<fleet::SloMonitor::Report> window_reports_;
  bool ran_ = false;
};

}  // namespace taichi::scenario

#endif  // SRC_SCENARIO_SCENARIO_H_
