// The named-scenario library: canonical, seed-parameterized experiment
// definitions shared by bench/scenario_suite, bench/fleet_rollout
// (--scenario) and the scenario tests.
//
//   baseline     the Fig. 3 fleet mix on a Tai Chi fleet — must hold the SLO.
//   diurnal      the mix under a day/night load curve — must still hold it.
//   incast       periodic synchronized fan-in bursts at one victim node.
//   ddos         a spoofed-source volumetric flood at two victim nodes; the
//                SLO monitor must flag the victims as hotspots AND the
//                sketch attribution must name flows from the attack range.
//   crash-churn  seeded-random node crash/auto-restart churn under the mix;
//                every node must be back up at the end.
//   storm        accelerator stalls + CP floods + hotplug storms (no
//                crashes): the "everything is degraded" soak.
//
// The autopilot-* scenarios run a heterogeneous all-baseline fleet under the
// fleet::Autopilot controller (src/fleet/autopilot.h) and gate on recovery:
//
//   autopilot-ddos         hot/cool fleet converged by the autopilot, then a
//                          flood at an enabled hot node; the fleet p-tail
//                          must come back under the SLO within K windows
//                          with fewer Tai Chi vCPUs than enabling everyone.
//   autopilot-crash-churn  the same fleet under crash/auto-restart churn;
//                          evict/readmit/re-enable must bound the longest
//                          unhealthy streak.
//   autopilot-overload     a uniform fleet hit by a fleet-wide demand surge
//                          nothing can absorb: graceful degradation must
//                          shed background load and fully restore it after.
//
// Fig3DensityMix is the single definition of the paper's density-scaled
// load shape (Fig. 3 DP mix + §6.6 VM-arrival pressure); fleet_rollout and
// every scenario build on it instead of hand-rolling the tweak.
#ifndef SRC_SCENARIO_LIBRARY_H_
#define SRC_SCENARIO_LIBRARY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/fleet/load_gen.h"
#include "src/scenario/scenario.h"

namespace taichi::scenario {

// The canonical Fig. 3 mix at an instance-density multiple: the LoadGen
// shape plus the per-node Testbed tweak (devices per VM-startup workflow,
// background monitor count) that fleet_rollout §6.6 uses.
struct Fig3Mix {
  fleet::LoadGenConfig load;
  std::function<void(int, exp::TestbedConfig&)> tweak;
};
Fig3Mix Fig3DensityMix(int density);

// The baseline named source: the Fig. 3 mix and nothing else. Builds its
// LoadGen lazily so a spec can exist before its cluster does.
class Fig3Source : public TrafficSource {
 public:
  explicit Fig3Source(fleet::LoadGenConfig config) : config_(config) {}

  const char* name() const override { return "fig3-mix"; }
  void Start(fleet::Cluster& cluster) override;
  void Stop(fleet::Cluster& cluster) override;
  bool running() const override { return gen_ != nullptr && gen_->running(); }

  void OnNodeCrash(fleet::Cluster& cluster, size_t node) override;
  void OnNodeRestart(fleet::Cluster& cluster, size_t node) override;
  double VmShare(size_t node) const override { return gen_ ? gen_->VmShare(node) : 1.0; }
  bool MigrateVmShare(size_t from, size_t to, double units) override {
    return gen_ != nullptr && gen_->MigrateVmShare(from, to, units);
  }

 private:
  fleet::LoadGenConfig config_;
  std::unique_ptr<fleet::LoadGen> gen_;
};

// Runtime knobs a harness may override; scenario defaults fill the rest.
struct ScenarioOptions {
  int nodes = 12;
  int density = 4;
  uint64_t seed = 42;
  int threads = 1;
  // 0 = the scenario's default observed-phase length.
  sim::Duration observed = 0;
  bool enable_trace = false;
  // The autopilot-* scenarios run their controller by default; false runs
  // the same fleet, fault and clock without it — the static counterfactual
  // CI compares against (the breach must persist when nobody heals it).
  bool autopilot = true;
};

// Names accepted by BuildScenario, in presentation order.
const std::vector<std::string>& ScenarioNames();

// Builds the named scenario's full spec. Unknown names return a spec with
// an empty `name` (and a TAICHI_ERROR); callers must check.
ScenarioSpec BuildScenario(const std::string& name, const ScenarioOptions& opts);

}  // namespace taichi::scenario

#endif  // SRC_SCENARIO_LIBRARY_H_
