#include "src/scenario/chaos.h"

#include <algorithm>

#include "src/fleet/cluster.h"
#include "src/sim/logging.h"

namespace taichi::scenario {

const char* ToString(ChaosAction::Kind kind) {
  switch (kind) {
    case ChaosAction::Kind::kCrash:
      return "crash";
    case ChaosAction::Kind::kRestart:
      return "restart";
    case ChaosAction::Kind::kAccelStall:
      return "accel-stall";
    case ChaosAction::Kind::kCpFlood:
      return "cp-flood";
    case ChaosAction::Kind::kHotplugStorm:
      return "hotplug-storm";
  }
  return "?";
}

ChaosEngine::ChaosEngine(fleet::Cluster* cluster, ChaosConfig config)
    : cluster_(cluster), config_(std::move(config)), rng_(config_.seed) {
  std::stable_sort(config_.script.begin(), config_.script.end(),
                   [](const ChaosAction& a, const ChaosAction& b) { return a.at < b.at; });
}

ChaosEngine::~ChaosEngine() {
  if (hook_id_ != 0) {
    Disarm();
  }
}

void ChaosEngine::AddListener(NodeLifecycleListener* listener) {
  listeners_.push_back(listener);
}

void ChaosEngine::Arm() {
  if (hook_id_ != 0) {
    TAICHI_ERROR(cluster_->Now(), "chaos: Arm called twice");
    return;
  }
  hook_id_ = cluster_->AddEpochHook([this](sim::SimTime now) { OnEpoch(now); });
}

void ChaosEngine::Disarm() {
  if (hook_id_ != 0) {
    cluster_->RemoveEpochHook(hook_id_);
    hook_id_ = 0;
  }
}

void ChaosEngine::Crash(size_t node, sim::SimTime now) {
  if (!cluster_->alive(node)) {
    return;  // Scripted crash raced a random one; the node is already dark.
  }
  for (NodeLifecycleListener* l : listeners_) {
    l->OnNodeCrash(*cluster_, node);
  }
  cluster_->CrashNode(node);
  ++crashes_;
  fired_.push_back({now, ChaosAction::Kind::kCrash, static_cast<int>(node)});
}

void ChaosEngine::Restart(size_t node, sim::SimTime now) {
  if (cluster_->alive(node)) {
    return;
  }
  cluster_->RestartNode(node);
  ++restarts_;
  fired_.push_back({now, ChaosAction::Kind::kRestart, static_cast<int>(node)});
  for (NodeLifecycleListener* l : listeners_) {
    l->OnNodeRestart(*cluster_, node);
  }
}

void ChaosEngine::Apply(const ChaosAction& action, sim::SimTime now) {
  const size_t node = static_cast<size_t>(action.node);
  if (action.node < 0 || node >= cluster_->size()) {
    TAICHI_ERROR(now, "chaos: action %s targets nonexistent node %d",
                 ToString(action.kind), action.node);
    return;
  }
  switch (action.kind) {
    case ChaosAction::Kind::kCrash:
      Crash(node, now);
      return;
    case ChaosAction::Kind::kRestart:
      Restart(node, now);
      return;
    case ChaosAction::Kind::kAccelStall:
      if (cluster_->alive(node)) {
        cluster_->node(node).StallAccelerator(action.duration);
        ++stalls_;
        fired_.push_back({now, action.kind, action.node});
      }
      return;
    case ChaosAction::Kind::kCpFlood:
      if (cluster_->alive(node)) {
        cluster_->node(node).SpawnCpFlood(action.count, action.iterations,
                                          0xf100d ^ (static_cast<uint64_t>(floods_) << 8));
        ++floods_;
        fired_.push_back({now, action.kind, action.node});
      }
      return;
    case ChaosAction::Kind::kHotplugStorm:
      if (cluster_->alive(node)) {
        cluster_->node(node).SpawnHotplugStorm(action.count, action.duration,
                                               static_cast<uint64_t>(storms_));
        ++storms_;
        fired_.push_back({now, action.kind, action.node});
      }
      return;
  }
}

void ChaosEngine::OnEpoch(sim::SimTime now) {
  // 1) Queued auto-restarts, oldest first. These fire even when quiesced:
  //    the drain path must bring crashed nodes back, not strand them.
  while (!pending_.empty() && pending_.front().at <= now) {
    ChaosAction action = pending_.front();
    pending_.erase(pending_.begin());
    Apply(action, now);
  }
  if (quiesced_) {
    return;
  }
  // 2) Scripted actions due at this boundary, in script order.
  while (script_next_ < config_.script.size() && config_.script[script_next_].at <= now) {
    Apply(config_.script[script_next_], now);
    ++script_next_;
  }
  // 3) The seeded-random layer. The draw sequence is fixed — one draw per
  //    enabled kind per node per epoch, dead or alive — so the Rng stream
  //    never forks on fleet state and the whole run replays exactly.
  for (size_t i = 0; i < cluster_->size(); ++i) {
    if (config_.crash_prob > 0 && rng_.Bernoulli(config_.crash_prob)) {
      if (cluster_->alive(i) && cluster_->alive_count() > config_.min_alive) {
        Crash(i, now);
        ChaosAction restart;
        restart.at = now + config_.down_time;
        restart.node = static_cast<int>(i);
        restart.kind = ChaosAction::Kind::kRestart;
        pending_.push_back(restart);
      }
    }
    if (config_.stall_prob > 0 && rng_.Bernoulli(config_.stall_prob)) {
      ChaosAction a;
      a.node = static_cast<int>(i);
      a.kind = ChaosAction::Kind::kAccelStall;
      a.duration = config_.stall_duration;
      Apply(a, now);
    }
    if (config_.flood_prob > 0 && rng_.Bernoulli(config_.flood_prob)) {
      ChaosAction a;
      a.node = static_cast<int>(i);
      a.kind = ChaosAction::Kind::kCpFlood;
      a.count = config_.flood_tasks;
      a.iterations = config_.flood_iterations;
      Apply(a, now);
    }
    if (config_.storm_prob > 0 && rng_.Bernoulli(config_.storm_prob)) {
      ChaosAction a;
      a.node = static_cast<int>(i);
      a.kind = ChaosAction::Kind::kHotplugStorm;
      a.count = config_.storm_ops;
      a.duration = config_.storm_routine;
      Apply(a, now);
    }
  }
}

}  // namespace taichi::scenario
