#include "src/scenario/library.h"

#include <algorithm>

#include "src/scenario/generators.h"
#include "src/sim/logging.h"

namespace taichi::scenario {
namespace {

// The §6.6 SmartNIC-side VM-startup budget: the 160 ms product SLO minus
// the host-side instantiation that happens after the device workflow.
constexpr double kNicSloMs = 100.0;

fleet::ClusterConfig BaseCluster(const ScenarioOptions& opts, const Fig3Mix& mix) {
  fleet::ClusterConfig ccfg;
  ccfg.num_nodes = std::max(2, opts.nodes);
  ccfg.seed = opts.seed;
  ccfg.epoch = sim::Millis(5);
  ccfg.threads = opts.threads;
  ccfg.node.mode = exp::Mode::kTaiChi;
  ccfg.enable_trace = opts.enable_trace;
  ccfg.tweak = mix.tweak;
  return ccfg;
}

fleet::SloConfig BaseSlo() {
  fleet::SloConfig slo;
  slo.threshold = kNicSloMs;
  slo.percentile = 99.0;
  slo.min_samples = 20;
  slo.heavy_hitters = 4;
  return slo;
}

}  // namespace

Fig3Mix Fig3DensityMix(int density) {
  Fig3Mix mix;
  // 30 arrivals/s per density: the §6.6 pressure point where the static
  // 4-CPU control plane saturates but Tai Chi's donated DP cycles do not.
  mix.load.vm_arrival_rate_per_sec = 30.0 * density;
  mix.tweak = [density](int, exp::TestbedConfig& cfg) {
    cfg.vm_startup.devices_per_vm = 6 * density;
    cfg.monitors.count = 6 * density;
  };
  return mix;
}

void Fig3Source::Start(fleet::Cluster& cluster) {
  if (gen_ != nullptr) {
    TAICHI_ERROR(cluster.Now(), "fig3: Start called twice");
    return;
  }
  gen_ = std::make_unique<fleet::LoadGen>(&cluster, config_);
  gen_->Start();
}

void Fig3Source::Stop(fleet::Cluster& cluster) {
  (void)cluster;
  if (gen_ != nullptr) {
    gen_->Stop();
  }
}

void Fig3Source::OnNodeCrash(fleet::Cluster& cluster, size_t node) {
  if (gen_ != nullptr) {
    gen_->OnNodeCrash(cluster, node);
  }
}

void Fig3Source::OnNodeRestart(fleet::Cluster& cluster, size_t node) {
  if (gen_ != nullptr) {
    gen_->OnNodeRestart(cluster, node);
  }
}

const std::vector<std::string>& ScenarioNames() {
  static const std::vector<std::string> kNames = {
      "baseline",    "diurnal",        "incast",
      "ddos",        "crash-churn",    "storm",
      "autopilot-ddos", "autopilot-crash-churn", "autopilot-overload"};
  return kNames;
}

ScenarioSpec BuildScenario(const std::string& name, const ScenarioOptions& opts) {
  Fig3Mix mix = Fig3DensityMix(std::max(1, opts.density));
  // Every stream in the run keys off the one scenario seed; the load seed
  // is decorrelated from the cluster's node-seed stream by construction.
  mix.load.seed = 2024u ^ (opts.seed * 0x9e3779b97f4a7c15ULL);

  ScenarioSpec spec;
  spec.cluster = BaseCluster(opts, mix);
  spec.slo = BaseSlo();
  spec.warmup = sim::Millis(200);
  spec.observed = opts.observed > 0 ? opts.observed : sim::Millis(600);
  spec.observe_every = sim::Millis(100);
  spec.drain = sim::Millis(100);
  spec.expect.min_fleet_samples = 50;

  if (name == "baseline") {
    spec.name = "baseline";
    spec.description = "Fig. 3 mix on a Tai Chi fleet; the SLO must hold";
    const fleet::LoadGenConfig load = mix.load;
    spec.make_source = [load](fleet::Cluster&) -> std::unique_ptr<TrafficSource> {
      return std::make_unique<Fig3Source>(load);
    };
    spec.expect.max_breach_windows = 1;
    return spec;
  }
  if (name == "diurnal") {
    spec.name = "diurnal";
    spec.description = "day/night load curve over the mix; the SLO must hold";
    DiurnalConfig dcfg;
    dcfg.load = mix.load;
    dcfg.period = sim::Millis(400);
    dcfg.trough = 0.50;
    dcfg.peak = 1.40;
    spec.observed = opts.observed > 0 ? opts.observed : sim::Millis(800);
    spec.make_source = [dcfg](fleet::Cluster&) -> std::unique_ptr<TrafficSource> {
      return std::make_unique<DiurnalSource>(dcfg);
    };
    spec.expect.max_breach_windows = 2;
    return spec;
  }
  if (name == "incast") {
    spec.name = "incast";
    spec.description = "synchronized fan-in bursts at one victim node";
    IncastConfig icfg;
    icfg.load = mix.load;
    icfg.victim = 0;
    spec.make_source = [icfg](fleet::Cluster&) -> std::unique_ptr<TrafficSource> {
      return std::make_unique<IncastSource>(icfg);
    };
    spec.expect.max_breach_windows = 2;
    return spec;
  }
  if (name == "ddos") {
    spec.name = "ddos";
    spec.description =
        "spoofed-source flood at a victim node; hotspot + attack attribution";
    DdosConfig acfg;
    acfg.load = mix.load;
    // One victim at moderate intensity: the victim's tail rises while the
    // other nodes anchor the fleet percentile, which is exactly the contrast
    // the hotspot rule (node p99 > factor x fleet p99) keys on. Saturating
    // many nodes makes the victims BE the fleet tail and hides them.
    acfg.targets = {0};
    acfg.attackers = 12;
    acfg.utilization = 0.50;
    acfg.size_bytes = 512;
    // On before the observed phase starts, so every window sees the flood.
    acfg.start_after = sim::Millis(100);
    spec.make_source = [acfg](fleet::Cluster&) -> std::unique_ptr<TrafficSource> {
      return std::make_unique<DdosSource>(acfg);
    };
    // Wider windows: at 120 VM arrivals/s/node a 200 ms window holds ~24
    // samples per node, enough for the per-node hotspot rule to engage.
    spec.observed = opts.observed > 0 ? opts.observed : sim::Millis(800);
    spec.observe_every = sim::Millis(200);
    // Watch p90, not p99: the victim contributes < 10% of fleet samples, so
    // the fleet p90 stays anchored by the healthy nodes while the victim's
    // own p90 climbs — the contrast the hotspot rule needs. (The fleet p99
    // IS the victim's tail here, which would hide the hotspot entirely.)
    spec.slo.percentile = 90.0;
    spec.slo.min_samples = 10;  // The starved victim completes fewer per window.
    spec.slo.hotspot_factor = 1.3;
    spec.slo.heavy_hitters = 8;
    spec.expect.min_hotspot_windows = 1;
    spec.expect.require_attack_attribution = true;
    // The flood must visibly overflow the victim's descriptor ring: drops
    // are part of the verdict, not silent.
    spec.expect.min_rx_ring_drops = 1;
    return spec;
  }
  if (name == "crash-churn") {
    spec.name = "crash-churn";
    spec.description = "seeded-random crash/auto-restart churn under the mix";
    const fleet::LoadGenConfig load = mix.load;
    spec.make_source = [load](fleet::Cluster&) -> std::unique_ptr<TrafficSource> {
      return std::make_unique<Fig3Source>(load);
    };
    spec.use_chaos = true;
    spec.chaos.crash_prob = 0.004;
    spec.chaos.down_time = sim::Millis(30);
    spec.chaos.seed = 0x5eedull ^ opts.seed;
    spec.chaos.min_alive =
        std::max<size_t>(1, static_cast<size_t>(spec.cluster.num_nodes) / 2);
    spec.drain = sim::Millis(150);
    spec.expect.max_breach_windows = 3;
    spec.expect.require_crashes = true;
    spec.expect.require_full_recovery = true;
    return spec;
  }
  if (name == "storm") {
    spec.name = "storm";
    spec.description =
        "accelerator stalls + CP floods + hotplug storms, no crashes";
    const fleet::LoadGenConfig load = mix.load;
    spec.make_source = [load](fleet::Cluster&) -> std::unique_ptr<TrafficSource> {
      return std::make_unique<Fig3Source>(load);
    };
    spec.use_chaos = true;
    spec.chaos.stall_prob = 0.010;
    spec.chaos.stall_duration = sim::Micros(800);
    spec.chaos.flood_prob = 0.006;
    spec.chaos.storm_prob = 0.004;
    spec.chaos.seed = 0x5701ull ^ opts.seed;
    spec.expect.max_breach_windows = 3;
    return spec;
  }

  if (name == "autopilot-ddos" || name == "autopilot-crash-churn" ||
      name == "autopilot-overload") {
    // All autopilot scenarios start every node as BASELINE: which nodes run
    // Tai Chi (and when) is the controller's decision, and the verdict's
    // enabled_vcpus vs static_vcpus contrast is the point.
    spec.cluster.node.mode = exp::Mode::kBaseline;
    spec.use_autopilot = opts.autopilot;
    // The runner watches p90 in wide windows for the same reason ddos does:
    // one hurting node must stand out against a healthy-anchored fleet tail.
    spec.slo.percentile = 90.0;
    spec.slo.min_samples = 10;
    spec.slo.hotspot_factor = 1.3;
    spec.slo.heavy_hitters = 8;
    spec.observe_every = sim::Millis(200);

    // The controller's own (faster) observation loop.
    spec.autopilot.slo = spec.slo;
    spec.autopilot.slo.min_samples = 8;
    spec.autopilot.observe_every = sim::Millis(100);
    spec.autopilot.hysteresis_windows = 2;
    spec.autopilot.settle_windows = 1;
    spec.autopilot.cooldown_windows = 1;
    spec.autopilot.migrate_unit = 1.0;

    if (name == "autopilot-overload") {
      // Uniform density-2 fleet; a x5 fleet-wide VM-arrival surge nothing
      // can absorb. Migration has no target (everyone breaches), so the
      // ladder must fall through to shedding — and unwind it afterwards.
      spec.name = name;
      spec.description =
          "fleet-wide demand surge; shed background load, restore after";
      const Fig3Mix omix = Fig3DensityMix(2);
      SurgeConfig scfg;
      scfg.load = omix.load;
      scfg.load.seed = mix.load.seed;
      scfg.start = sim::Millis(1000);
      // Long and hard enough that even a fully-enabled Tai Chi fleet cannot
      // absorb it: the ladder must fall through migration (no target — every
      // node breaches) into shedding.
      scfg.duration = sim::Millis(1200);
      scfg.factor = 6.0;
      spec.cluster.tweak = omix.tweak;
      spec.make_source = [scfg](fleet::Cluster&) -> std::unique_ptr<TrafficSource> {
        return std::make_unique<SurgeSource>(scfg);
      };
      spec.autopilot.max_actions_per_window = 4;
      spec.fault_at = scfg.start;
      spec.warmup = sim::Millis(800);
      spec.observed = opts.observed > 0 ? opts.observed : sim::Millis(3200);
      spec.expect.min_breach_windows = opts.autopilot ? 1 : 4;
      if (opts.autopilot) {
        spec.expect.max_recovery_windows = 10;
        spec.expect.require_shed_restored = true;
      }
      return spec;
    }

    // The heterogeneous hot/cool fleet the other two share: 1/3 of the
    // nodes carry density-4 tenants (baseline cannot hold them: the §6.6
    // pressure point), the rest density-1 (baseline holds easily). Static
    // provisioning enables Tai Chi everywhere; the autopilot must find the
    // hot subset and leave the cool nodes' vCPU budget unspent.
    const int hot = std::max(1, spec.cluster.num_nodes / 3);
    const int hot_density = 4;
    fleet::LoadGenConfig load = Fig3DensityMix(1).load;
    load.seed = mix.load.seed;
    load.node_vm_scale.assign(static_cast<size_t>(spec.cluster.num_nodes), 1.0);
    for (int i = 0; i < hot; ++i) {
      load.node_vm_scale[static_cast<size_t>(i)] = hot_density;
    }
    spec.cluster.tweak = [hot, hot_density](int node, exp::TestbedConfig& cfg) {
      const int d = node < hot ? hot_density : 1;
      cfg.vm_startup.devices_per_vm = 6 * d;
      cfg.monitors.count = 6 * d;
    };
    // Long warmup: the controller needs it to converge (hysteresis, two
    // enables per window, settle) before the fault lands.
    spec.warmup = sim::Millis(1600);
    spec.observed = opts.observed > 0 ? opts.observed : sim::Millis(2400);

    if (name == "autopilot-ddos") {
      spec.name = name;
      spec.description =
          "flood at an autopilot-enabled hot node; migrate + boost back under SLO";
      DdosConfig acfg;
      acfg.load = load;
      acfg.targets = {0};
      acfg.attackers = 12;
      acfg.utilization = 0.50;
      acfg.size_bytes = 512;
      acfg.start_after = sim::Millis(1800);  // Just after the observed phase opens.
      spec.make_source = [acfg](fleet::Cluster&) -> std::unique_ptr<TrafficSource> {
        return std::make_unique<DdosSource>(acfg);
      };
      // A volumetric flood inflates DP "utilization" exactly when the CP
      // side is starving: handing the donated cores back (§8 boost) would
      // feed the attacker and pin the victim's CP onto its static partition.
      // Reserve the boost for genuine near-saturation.
      spec.autopilot.dp_boost_on = 0.85;
      spec.autopilot.dp_boost_off = 0.60;
      spec.fault_at = sim::Millis(1800);
      if (opts.autopilot) {
        spec.expect.min_hotspot_windows = 1;
        spec.expect.max_recovery_windows = 7;
        spec.expect.require_fewer_taichi_cpus = true;
      } else {
        // Untreated, the hot nodes drag the whole fleet under: nothing is a
        // relative outlier any more, everything just breaches.
        spec.expect.min_breach_windows = 6;
      }
      return spec;
    }

    // autopilot-crash-churn: the same hot/cool fleet under seeded random
    // crash/auto-restart churn. Faults recur, so the gate is the longest
    // unhealthy streak, not time-to-first-recovery.
    spec.name = name;
    spec.description =
        "crash churn on the hot/cool fleet; evict, readmit, re-enable";
    spec.make_source = [load](fleet::Cluster&) -> std::unique_ptr<TrafficSource> {
      return std::make_unique<Fig3Source>(load);
    };
    spec.use_chaos = true;
    spec.chaos.crash_prob = 0.004;
    spec.chaos.down_time = sim::Millis(30);
    spec.chaos.seed = 0x5eedull ^ opts.seed;
    spec.chaos.min_alive =
        std::max<size_t>(1, static_cast<size_t>(spec.cluster.num_nodes) / 2);
    spec.drain = sim::Millis(150);
    spec.expect.require_crashes = true;
    spec.expect.require_full_recovery = true;
    if (opts.autopilot) {
      spec.expect.max_breach_streak = 6;
      spec.expect.require_fewer_taichi_cpus = true;
    }
    return spec;
  }

  TAICHI_ERROR(0, "scenario: unknown scenario '%s'", name.c_str());
  spec.name.clear();
  spec.make_source = [](fleet::Cluster&) -> std::unique_ptr<TrafficSource> {
    return nullptr;
  };
  return spec;
}

}  // namespace taichi::scenario
