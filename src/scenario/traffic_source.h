// The pluggable traffic-source interface of the scenario engine.
//
// A TrafficSource owns everything that injects offered load into a
// fleet::Cluster — DP packet streams, CP workflow arrivals, or both — behind
// a uniform start/stop surface, so the scenario runner, the benches and the
// trace recorder can swap "the canonical Fig. 3 mix", "that mix under a
// diurnal curve", "a replayed production capture" or "a DDoS flood" without
// knowing how the packets are made.
//
// Lifecycle notifications: the chaos layer calls OnNodeCrash *before* it
// destroys a node's Testbed (the node's simulation is still valid, so a
// source may cancel events it scheduled there — afterwards every handle into
// that node is dead), and OnNodeRestart *after* the replacement Testbed is
// built and caught up to the fleet clock (the source re-provisions its load
// on the fresh node). Sources that never touch per-node state may ignore
// both. All calls happen at epoch boundaries on the fleet driver thread,
// like every other cross-node action — that is what keeps chaos runs
// byte-identical across `--threads` values.
#ifndef SRC_SCENARIO_TRAFFIC_SOURCE_H_
#define SRC_SCENARIO_TRAFFIC_SOURCE_H_

#include <cstddef>

namespace taichi::fleet {
class Cluster;
}  // namespace taichi::fleet

namespace taichi::scenario {

// Implemented by anything that must track node lifecycle (traffic sources,
// the packet-trace recorder). Kept separate so non-source observers can
// subscribe to the chaos engine too.
class NodeLifecycleListener {
 public:
  virtual ~NodeLifecycleListener() = default;

  // Node `node` is about to lose power; its Testbed (and simulation) is
  // still alive, but only for the duration of this call.
  virtual void OnNodeCrash(fleet::Cluster& cluster, size_t node) = 0;
  // Node `node` rebooted: a fresh Testbed sits at the fleet clock.
  virtual void OnNodeRestart(fleet::Cluster& cluster, size_t node) = 0;
};

class TrafficSource : public NodeLifecycleListener {
 public:
  // Stable identifier for reports and logs.
  virtual const char* name() const = 0;

  // Arms the source against the cluster (schedules its first events inside
  // the per-node simulations). Called once per run, at the current epoch
  // boundary; calling Start twice is a misuse.
  virtual void Start(fleet::Cluster& cluster) = 0;
  // Cuts off future injections; in-flight work drains as the cluster runs.
  virtual void Stop(fleet::Cluster& cluster) = 0;
  virtual bool running() const = 0;

  // Default: node lifecycle is irrelevant to this source.
  void OnNodeCrash(fleet::Cluster&, size_t) override {}
  void OnNodeRestart(fleet::Cluster&, size_t) override {}

  // --- Live migration (the fleet autopilot drives these) ---
  // Current VM-arrival share of `node`, in source share units (1.0 = the
  // configured base per-node rate). Sources that cannot migrate report 1.0.
  virtual double VmShare(size_t node) const {
    (void)node;
    return 1.0;
  }
  // Moves `units` of VM-arrival share from node `from` to node `to`,
  // effective at the next scheduled arrival. Returns false when the source
  // does not support migration or `from` holds less than `units` of share.
  virtual bool MigrateVmShare(size_t from, size_t to, double units) {
    (void)from;
    (void)to;
    (void)units;
    return false;
  }
};

}  // namespace taichi::scenario

#endif  // SRC_SCENARIO_TRAFFIC_SOURCE_H_
