#include "src/scenario/trace_format.h"

#include <algorithm>
#include <fstream>

#include "src/fleet/cluster.h"
#include "src/sim/logging.h"

namespace taichi::scenario {

namespace {

void PutU16(std::string& out, uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(std::string& out, uint32_t v) {
  PutU16(out, static_cast<uint16_t>(v & 0xffff));
  PutU16(out, static_cast<uint16_t>(v >> 16));
}

void PutU64(std::string& out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xffffffffu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint16_t GetU16(const unsigned char* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t GetU32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetU64(const unsigned char* p) {
  return static_cast<uint64_t>(GetU32(p)) | (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

}  // namespace

bool PacketRecord::operator==(const PacketRecord& other) const {
  return time == other.time && node == other.node && queue == other.queue &&
         pkt.id == other.pkt.id && pkt.kind == other.pkt.kind &&
         pkt.size_bytes == other.pkt.size_bytes && pkt.flow == other.pkt.flow &&
         pkt.user_tag == other.pkt.user_tag && pkt.dp_cost_hint == other.pkt.dp_cost_hint &&
         pkt.flow_key.src_ip == other.pkt.flow_key.src_ip &&
         pkt.flow_key.dst_ip == other.pkt.flow_key.dst_ip &&
         pkt.flow_key.src_port == other.pkt.flow_key.src_port &&
         pkt.flow_key.dst_port == other.pkt.flow_key.dst_port &&
         pkt.flow_key.proto == other.pkt.flow_key.proto;
}

std::string PacketTrace::Serialize() const {
  std::string out;
  out.reserve(kPacketTraceHeaderBytes + records.size() * kPacketTraceRecordBytes);
  PutU32(out, kPacketTraceMagic);
  PutU32(out, kPacketTraceVersion);
  PutU32(out, node_count);
  PutU32(out, 0);  // Reserved.
  PutU64(out, static_cast<uint64_t>(records.size()));
  for (const PacketRecord& r : records) {
    PutU64(out, static_cast<uint64_t>(r.time));
    PutU64(out, r.pkt.id);
    PutU64(out, r.pkt.flow);
    PutU64(out, r.pkt.user_tag);
    PutU32(out, r.pkt.dp_cost_hint);
    PutU32(out, r.pkt.size_bytes);
    PutU32(out, r.pkt.flow_key.src_ip);
    PutU32(out, r.pkt.flow_key.dst_ip);
    PutU16(out, r.pkt.flow_key.src_port);
    PutU16(out, r.pkt.flow_key.dst_port);
    PutU16(out, r.node);
    PutU16(out, r.queue);
    out.push_back(static_cast<char>(r.pkt.kind));
    out.push_back(static_cast<char>(r.pkt.flow_key.proto));
    PutU16(out, 0);  // Zero pad to the 64-byte stride, checked on parse.
    PutU32(out, 0);
  }
  return out;
}

bool PacketTrace::Parse(std::string_view bytes, PacketTrace* out) {
  if (bytes.size() < kPacketTraceHeaderBytes) {
    return false;
  }
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  if (GetU32(p) != kPacketTraceMagic || GetU32(p + 4) != kPacketTraceVersion ||
      GetU32(p + 12) != 0) {
    return false;
  }
  const uint32_t node_count = GetU32(p + 8);
  const uint64_t count = GetU64(p + 16);
  if (bytes.size() != kPacketTraceHeaderBytes + count * kPacketTraceRecordBytes) {
    return false;
  }
  PacketTrace trace;
  trace.node_count = node_count;
  trace.records.reserve(count);
  const unsigned char* r = p + kPacketTraceHeaderBytes;
  for (uint64_t i = 0; i < count; ++i, r += kPacketTraceRecordBytes) {
    PacketRecord rec;
    rec.time = static_cast<sim::SimTime>(GetU64(r));
    rec.pkt.id = GetU64(r + 8);
    rec.pkt.flow = GetU64(r + 16);
    rec.pkt.user_tag = GetU64(r + 24);
    rec.pkt.dp_cost_hint = GetU32(r + 32);
    rec.pkt.size_bytes = GetU32(r + 36);
    rec.pkt.flow_key.src_ip = GetU32(r + 40);
    rec.pkt.flow_key.dst_ip = GetU32(r + 44);
    rec.pkt.flow_key.src_port = GetU16(r + 48);
    rec.pkt.flow_key.dst_port = GetU16(r + 50);
    rec.node = GetU16(r + 52);
    rec.queue = GetU16(r + 54);
    if (r[56] > static_cast<unsigned char>(hw::IoKind::kBlockIo) || GetU16(r + 58) != 0 ||
        GetU32(r + 60) != 0) {
      return false;
    }
    rec.pkt.kind = static_cast<hw::IoKind>(r[56]);
    rec.pkt.flow_key.proto = r[57];
    rec.pkt.queue = rec.queue;
    trace.records.push_back(rec);
  }
  *out = std::move(trace);
  return true;
}

bool PacketTrace::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    TAICHI_ERROR(0, "trace_format: cannot open %s for writing", path.c_str());
    return false;
  }
  const std::string bytes = Serialize();
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return out.good();
}

bool PacketTrace::ReadFile(const std::string& path, PacketTrace* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    TAICHI_ERROR(0, "trace_format: cannot open %s", path.c_str());
    return false;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (!Parse(bytes, out)) {
    TAICHI_ERROR(0, "trace_format: %s is not a valid TCPT v%u trace", path.c_str(),
                 kPacketTraceVersion);
    return false;
  }
  return true;
}

// --- PacketTraceRecorder -----------------------------------------------------

PacketTraceRecorder::PacketTraceRecorder(fleet::Cluster* cluster)
    : cluster_(cluster), per_node_(cluster->size()) {}

PacketTraceRecorder::~PacketTraceRecorder() {
  if (attached_) {
    Detach();
  }
}

void PacketTraceRecorder::Tap(size_t node) {
  exp::Testbed& bed = cluster_->node(node);
  exp::Testbed* bedp = &bed;
  std::vector<PacketRecord>* buffer = &per_node_[node];
  bed.SetIngressTap([bedp, buffer, node](uint32_t queue, const hw::IoPacket& pkt) {
    PacketRecord rec;
    rec.time = bedp->sim().Now();
    rec.node = static_cast<uint16_t>(node);
    rec.queue = static_cast<uint16_t>(queue);
    rec.pkt = pkt;
    buffer->push_back(rec);
  });
}

void PacketTraceRecorder::Attach() {
  attached_ = true;
  for (size_t i = 0; i < cluster_->size(); ++i) {
    if (cluster_->alive(i)) {
      Tap(i);
    }
  }
}

void PacketTraceRecorder::Detach() {
  attached_ = false;
  for (size_t i = 0; i < cluster_->size(); ++i) {
    if (cluster_->alive(i)) {
      cluster_->node(i).SetIngressTap(nullptr);
    }
  }
}

void PacketTraceRecorder::OnNodeCrash(fleet::Cluster&, size_t) {
  // The tap dies with the Testbed; the buffer (everything recorded up to the
  // crash) is ours and stays.
}

void PacketTraceRecorder::OnNodeRestart(fleet::Cluster&, size_t node) {
  if (attached_) {
    Tap(node);
  }
}

uint64_t PacketTraceRecorder::recorded() const {
  uint64_t total = 0;
  for (const auto& buffer : per_node_) {
    total += buffer.size();
  }
  return total;
}

PacketTrace PacketTraceRecorder::Finish() const {
  PacketTrace trace;
  trace.node_count = static_cast<uint32_t>(cluster_->size());
  trace.records.reserve(recorded());
  for (const auto& buffer : per_node_) {
    trace.records.insert(trace.records.end(), buffer.begin(), buffer.end());
  }
  // Each per-node buffer is already time-ordered (sim time is monotonic);
  // the stable sort interleaves nodes by (time, node) while preserving each
  // node's arrival order within a timestamp.
  std::stable_sort(trace.records.begin(), trace.records.end(),
                   [](const PacketRecord& a, const PacketRecord& b) {
                     return a.time != b.time ? a.time < b.time : a.node < b.node;
                   });
  return trace;
}

// --- PacketTraceReplayer -----------------------------------------------------

PacketTraceReplayer::PacketTraceReplayer(PacketTrace trace) : trace_(std::move(trace)) {}

void PacketTraceReplayer::Start(fleet::Cluster& cluster) {
  if (running_) {
    TAICHI_ERROR(cluster.Now(), "trace_replay: Start called twice");
    return;
  }
  running_ = true;
  per_node_.assign(cluster.size(), {});
  cursor_.assign(cluster.size(), 0);
  injected_per_node_.assign(cluster.size(), 0);
  dropped_per_node_.assign(cluster.size(), 0);
  for (size_t i = 0; i < trace_.records.size(); ++i) {
    const size_t node = trace_.records[i].node;
    if (node < per_node_.size()) {
      per_node_[node].push_back(i);
    } else {
      ++dropped_unmapped_;  // Trace has more nodes than this cluster.
    }
  }
  for (size_t node = 0; node < cluster.size(); ++node) {
    if (cluster.alive(node)) {
      ScheduleNext(cluster, node);
    }
  }
}

void PacketTraceReplayer::ScheduleNext(fleet::Cluster& cluster, size_t node) {
  exp::Testbed& bed = cluster.node(node);
  const sim::SimTime now = bed.sim().Now();
  const std::vector<size_t>& ids = per_node_[node];
  size_t& cur = cursor_[node];
  // Records behind the node's clock can no longer be injected on time; a
  // replay started mid-trace (or a node that was down) skips them.
  while (cur < ids.size() && trace_.records[ids[cur]].time < now) {
    ++cur;
    ++dropped_per_node_[node];
  }
  if (cur >= ids.size()) {
    return;
  }
  fleet::Cluster* cl = &cluster;
  bed.sim().At(trace_.records[ids[cur]].time, [this, cl, node] { InjectRun(*cl, node); });
}

void PacketTraceReplayer::InjectRun(fleet::Cluster& cluster, size_t node) {
  if (!running_) {
    return;
  }
  exp::Testbed& bed = cluster.node(node);
  const sim::SimTime now = bed.sim().Now();
  const std::vector<size_t>& ids = per_node_[node];
  size_t& cur = cursor_[node];
  // All of this node's records at `now` go in, in recorded order.
  while (cur < ids.size() && trace_.records[ids[cur]].time == now) {
    const PacketRecord& rec = trace_.records[ids[cur]];
    hw::IoPacket pkt = rec.pkt;
    pkt.created = now;
    pkt.ring_push = 0;
    bed.machine().accelerator().Ingress(rec.queue, pkt);
    ++injected_per_node_[node];
    ++cur;
  }
  ScheduleNext(cluster, node);
}

void PacketTraceReplayer::Stop(fleet::Cluster& cluster) {
  if (!running_) {
    return;
  }
  running_ = false;
  // Pending per-node events check running_ when they fire; nothing to cancel
  // eagerly (and a crashed node's event already died with its simulation).
  (void)cluster;
}

void PacketTraceReplayer::OnNodeCrash(fleet::Cluster&, size_t) {
  // The chained injection event dies with the node's simulation; the cursor
  // stays where the crash caught it.
}

void PacketTraceReplayer::OnNodeRestart(fleet::Cluster& cluster, size_t node) {
  if (running_) {
    // Skips everything the dead NIC never saw, then resumes on time.
    ScheduleNext(cluster, node);
  }
}

uint64_t PacketTraceReplayer::injected() const {
  uint64_t total = 0;
  for (uint64_t n : injected_per_node_) {
    total += n;
  }
  return total;
}

uint64_t PacketTraceReplayer::dropped_late() const {
  uint64_t total = dropped_unmapped_;
  for (uint64_t n : dropped_per_node_) {
    total += n;
  }
  return total;
}

}  // namespace taichi::scenario
