#include "src/scenario/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/fleet/cluster.h"
#include "src/sim/logging.h"

namespace taichi::scenario {

// --- DiurnalSource -----------------------------------------------------------

void DiurnalSource::Start(fleet::Cluster& cluster) {
  if (gen_ != nullptr) {
    TAICHI_ERROR(cluster.Now(), "diurnal: Start called twice");
    return;
  }
  gen_ = std::make_unique<fleet::LoadGen>(&cluster, config_.load);
  gen_->Start();
  base_vm_rate_ = config_.load.vm_arrival_rate_per_sec;
  day_zero_ = cluster.Now();
  fleet::Cluster* cl = &cluster;
  hook_id_ = cluster.AddEpochHook([this, cl](sim::SimTime now) { Modulate(*cl, now); });
  Modulate(cluster, cluster.Now());
}

void DiurnalSource::Modulate(fleet::Cluster& cluster, sim::SimTime now) {
  const double mid = 0.5 * (config_.peak + config_.trough);
  const double amp = 0.5 * (config_.peak - config_.trough);
  const double t = static_cast<double>(now - day_zero_) /
                   static_cast<double>(std::max<sim::Duration>(1, config_.period));
  // The day starts at the midpoint heading into the peak.
  factor_ = mid + amp * std::sin(2.0 * 3.14159265358979323846 * t);
  gen_->set_vm_rate(base_vm_rate_ * factor_);
  for (size_t i = 0; i < cluster.size(); ++i) {
    if (cluster.alive(i)) {
      cluster.node(i).ScaleBackgroundLoad(factor_);
    }
  }
}

void DiurnalSource::Stop(fleet::Cluster& cluster) {
  if (gen_ == nullptr) {
    return;
  }
  if (hook_id_ != 0) {
    cluster.RemoveEpochHook(hook_id_);
    hook_id_ = 0;
  }
  gen_->Stop();
}

void DiurnalSource::OnNodeCrash(fleet::Cluster& cluster, size_t node) {
  if (gen_ != nullptr) {
    gen_->OnNodeCrash(cluster, node);
  }
}

void DiurnalSource::OnNodeRestart(fleet::Cluster& cluster, size_t node) {
  if (gen_ != nullptr) {
    gen_->OnNodeRestart(cluster, node);
    // The fresh node rejoins the day at the current point of the curve.
    cluster.node(node).ScaleBackgroundLoad(factor_);
  }
}

// --- IncastSource ------------------------------------------------------------

void IncastSource::Build(fleet::Cluster& cluster) {
  exp::Testbed& bed = cluster.node(static_cast<size_t>(config_.victim));
  const size_t queues = bed.machine().accelerator().queue_count();
  senders_.clear();
  senders_.reserve(static_cast<size_t>(config_.fan_in));
  for (int i = 0; i < config_.fan_in; ++i) {
    dp::OpenLoopConfig ocfg;
    ocfg.rate_pps = config_.per_sender_pps;
    ocfg.size_bytes = config_.size_bytes;
    // Synchronized senders: constant-rate, all switched on at the same
    // instant — the burst is the synchronization, not the process.
    ocfg.process = dp::OpenLoopConfig::Process::kConstant;
    ocfg.kind = hw::IoKind::kNetRx;
    ocfg.flow = config_.flow_base + static_cast<uint64_t>(i);
    ocfg.user_tag = exp::Testbed::Tag(kIncastOwner, static_cast<uint64_t>(i));
    const uint32_t queue = static_cast<uint32_t>(i % std::max<size_t>(1, queues));
    senders_.push_back(std::make_unique<dp::OpenLoopSource>(
        &bed.sim(), &bed.machine().accelerator(), queue, ocfg,
        config_.load.seed ^ (0x10ca0000ULL + static_cast<uint64_t>(i))));
  }
  armed_ = true;
}

void IncastSource::ScheduleBurst(fleet::Cluster& cluster, sim::Duration delay) {
  exp::Testbed& bed = cluster.node(static_cast<size_t>(config_.victim));
  fleet::Cluster* cl = &cluster;
  bed.sim().At(bed.sim().Now() + std::max<sim::Duration>(1, delay),
               [this, cl] { BurstOn(*cl); });
}

void IncastSource::BurstOn(fleet::Cluster& cluster) {
  if (!armed_) {
    return;
  }
  ++bursts_;
  for (auto& src : senders_) {
    src->Start();
  }
  exp::Testbed& bed = cluster.node(static_cast<size_t>(config_.victim));
  fleet::Cluster* cl = &cluster;
  bed.sim().At(bed.sim().Now() + std::max<sim::Duration>(1, config_.burst),
               [this, cl] { BurstOff(*cl); });
}

void IncastSource::BurstOff(fleet::Cluster& cluster) {
  if (!armed_) {
    return;
  }
  for (auto& src : senders_) {
    src->Stop();
  }
  ScheduleBurst(cluster, config_.period > config_.burst ? config_.period - config_.burst
                                                        : sim::Millis(1));
}

void IncastSource::Start(fleet::Cluster& cluster) {
  if (gen_ != nullptr) {
    TAICHI_ERROR(cluster.Now(), "incast: Start called twice");
    return;
  }
  gen_ = std::make_unique<fleet::LoadGen>(&cluster, config_.load);
  gen_->Start();
  const size_t victim = static_cast<size_t>(config_.victim);
  if (config_.victim < 0 || victim >= cluster.size()) {
    TAICHI_ERROR(cluster.Now(), "incast: victim %d is not a node", config_.victim);
    return;
  }
  Build(cluster);
  ScheduleBurst(cluster, config_.start_after);
}

void IncastSource::Stop(fleet::Cluster& cluster) {
  if (gen_ == nullptr) {
    return;
  }
  armed_ = false;
  const size_t victim = static_cast<size_t>(config_.victim);
  if (victim < cluster.size() && cluster.alive(victim)) {
    for (auto& src : senders_) {
      src->Stop();
    }
  }
  gen_->Stop();
}

void IncastSource::OnNodeCrash(fleet::Cluster& cluster, size_t node) {
  if (gen_ == nullptr) {
    return;
  }
  gen_->OnNodeCrash(cluster, node);
  if (node == static_cast<size_t>(config_.victim)) {
    // Sender objects hold pointers into the dying Testbed; the burst events
    // die with its simulation.
    armed_ = false;
    senders_.clear();
  }
}

void IncastSource::OnNodeRestart(fleet::Cluster& cluster, size_t node) {
  if (gen_ == nullptr) {
    return;
  }
  gen_->OnNodeRestart(cluster, node);
  if (node == static_cast<size_t>(config_.victim)) {
    Build(cluster);
    ScheduleBurst(cluster, config_.start_after);
  }
}

uint64_t IncastSource::incast_packets() const {
  uint64_t total = 0;
  for (const auto& src : senders_) {
    total += src->injected();
  }
  return total;
}

// --- DdosSource --------------------------------------------------------------

bool DdosSource::IsTarget(size_t node) const {
  for (int t : config_.targets) {
    if (t >= 0 && static_cast<size_t>(t) == node) {
      return true;
    }
  }
  return false;
}

void DdosSource::ArmNode(fleet::Cluster& cluster, size_t node, sim::Duration delay) {
  exp::Testbed& bed = cluster.node(node);
  const size_t queues = bed.machine().accelerator().queue_count();
  const double rate = bed.RateForUtilization(config_.utilization, config_.size_bytes);
  auto& sources = per_node_[node];
  sources.clear();
  for (size_t q = 0; q < queues; ++q) {
    dp::OpenLoopConfig ocfg;
    ocfg.rate_pps = rate;
    ocfg.size_bytes = config_.size_bytes;
    // Floods are relentless, not bursty: constant inter-arrival, which also
    // means the flood consumes no Rng state anywhere.
    ocfg.process = dp::OpenLoopConfig::Process::kConstant;
    ocfg.kind = hw::IoKind::kNetRx;
    ocfg.flow = config_.flow_base;  // One victim endpoint across all queues.
    ocfg.attack_sources = config_.attackers;
    ocfg.user_tag = exp::Testbed::Tag(kAttackOwner, static_cast<uint64_t>(q));
    sources.push_back(std::make_unique<dp::OpenLoopSource>(
        &bed.sim(), &bed.machine().accelerator(), static_cast<uint32_t>(q), ocfg,
        config_.load.seed ^ (0xdd050000ULL + node * 131 + q)));
  }
  // Switch-on (and optional switch-off) run inside the victim's simulation.
  std::vector<dp::OpenLoopSource*> raw;
  raw.reserve(sources.size());
  for (auto& src : sources) {
    raw.push_back(src.get());
  }
  const sim::SimTime start = bed.sim().Now() + std::max<sim::Duration>(1, delay);
  bed.sim().At(start, [raw] {
    for (dp::OpenLoopSource* src : raw) {
      src->Start();
    }
  });
  if (config_.duration > 0) {
    bed.sim().At(start + config_.duration, [raw] {
      for (dp::OpenLoopSource* src : raw) {
        src->Stop();
      }
    });
  }
}

void DdosSource::Start(fleet::Cluster& cluster) {
  if (gen_ != nullptr) {
    TAICHI_ERROR(cluster.Now(), "ddos: Start called twice");
    return;
  }
  gen_ = std::make_unique<fleet::LoadGen>(&cluster, config_.load);
  gen_->Start();
  per_node_.clear();
  per_node_.resize(cluster.size());
  for (int t : config_.targets) {
    if (t < 0 || static_cast<size_t>(t) >= cluster.size()) {
      TAICHI_ERROR(cluster.Now(), "ddos: target %d is not a node", t);
      continue;
    }
    if (cluster.alive(static_cast<size_t>(t))) {
      ArmNode(cluster, static_cast<size_t>(t), config_.start_after);
    }
  }
}

void DdosSource::Stop(fleet::Cluster& cluster) {
  if (gen_ == nullptr) {
    return;
  }
  for (size_t i = 0; i < per_node_.size(); ++i) {
    if (!cluster.alive(i)) {
      continue;
    }
    for (auto& src : per_node_[i]) {
      src->Stop();
    }
  }
  gen_->Stop();
}

void DdosSource::OnNodeCrash(fleet::Cluster& cluster, size_t node) {
  if (gen_ == nullptr) {
    return;
  }
  gen_->OnNodeCrash(cluster, node);
  if (node < per_node_.size()) {
    per_node_[node].clear();
  }
}

void DdosSource::OnNodeRestart(fleet::Cluster& cluster, size_t node) {
  if (gen_ == nullptr) {
    return;
  }
  gen_->OnNodeRestart(cluster, node);
  if (IsTarget(node)) {
    // The attacker does not care that the victim rebooted.
    ArmNode(cluster, node, config_.start_after);
  }
}

// --- SurgeSource -------------------------------------------------------------

void SurgeSource::Start(fleet::Cluster& cluster) {
  if (gen_ != nullptr) {
    TAICHI_ERROR(cluster.Now(), "surge: Start called twice");
    return;
  }
  gen_ = std::make_unique<fleet::LoadGen>(&cluster, config_.load);
  gen_->Start();
  applied_ = 1.0;
  hook_id_ = cluster.AddEpochHook([this](sim::SimTime now) { Modulate(now); });
}

void SurgeSource::Modulate(sim::SimTime now) {
  const double f =
      (now >= config_.start && now < config_.start + config_.duration) ? config_.factor : 1.0;
  if (f != applied_) {
    applied_ = f;
    gen_->set_vm_rate(config_.load.vm_arrival_rate_per_sec * f);
  }
}

void SurgeSource::Stop(fleet::Cluster& cluster) {
  if (gen_ == nullptr) {
    return;
  }
  if (hook_id_ != 0) {
    cluster.RemoveEpochHook(hook_id_);
    hook_id_ = 0;
  }
  gen_->Stop();
}

void SurgeSource::OnNodeCrash(fleet::Cluster& cluster, size_t node) {
  if (gen_ != nullptr) {
    gen_->OnNodeCrash(cluster, node);
  }
}

void SurgeSource::OnNodeRestart(fleet::Cluster& cluster, size_t node) {
  if (gen_ != nullptr) {
    gen_->OnNodeRestart(cluster, node);
  }
}

uint64_t DdosSource::attack_packets() const {
  uint64_t total = 0;
  for (const auto& sources : per_node_) {
    for (const auto& src : sources) {
      total += src->injected();
    }
  }
  return total;
}

}  // namespace taichi::scenario
