// Closed- and open-loop workload runners over a Testbed, reproducing the
// benchmark harnesses of Table 3: ping, netperf (stream/rr/crr), sockperf,
// fio, and the synth_cp / VM-startup control-plane drivers.
#ifndef SRC_EXP_RUNNERS_H_
#define SRC_EXP_RUNNERS_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/cp/synth_cp.h"
#include "src/exp/testbed.h"
#include "src/sim/stats.h"

namespace taichi::exp {

// --- ping: sequential ICMP echo through the full path (Table 5) ---
class PingRunner {
 public:
  explicit PingRunner(Testbed* bed, uint16_t owner = 10);
  // Sends `count` pings `interval` apart; returns the RTT summary in us.
  sim::Summary Run(int count, sim::Duration interval);

 private:
  Testbed* bed_;
  uint16_t owner_;
};

// --- request/response closed loops (netperf tcp_rr/tcp_crr, sockperf) ---
struct RrConfig {
  int connections = 64;
  uint32_t request_bytes = 64;
  uint32_t response_bytes = 64;
  // Round trips per counted transaction (1 = rr; 3 = connect/request/close
  // for crr and CPS-style benchmarks).
  int round_trips_per_txn = 1;
  // Extra DP work on the first packet of a transaction (flow-table setup).
  uint32_t setup_dp_cost_ns = 0;
  // Client think time between transactions (0 = back-to-back, fully
  // saturating). Nonzero values leave idle gaps on the data plane — the
  // regime where co-scheduling costs become visible.
  sim::Duration think_time_mean = 0;
};

struct RrResult {
  double txn_per_sec = 0;
  double rx_pps = 0;  // Packets received by the VM per second.
  double tx_pps = 0;  // Packets sent by the VM per second.
  sim::Summary txn_latency_us;
};

class RrRunner {
 public:
  RrRunner(Testbed* bed, RrConfig config, uint16_t owner = 11);
  ~RrRunner();
  RrResult Run(sim::Duration duration, sim::Duration warmup);

 private:
  struct Conn;
  void SendRequest(Conn& conn);

  Testbed* bed_;
  RrConfig config_;
  uint16_t owner_;
  std::vector<std::unique_ptr<Conn>> conns_;
  bool counting_ = false;
  uint64_t txns_ = 0;
  uint64_t rx_pkts_ = 0;
  uint64_t tx_pkts_ = 0;
  sim::Summary txn_latency_us_;
};

// --- open-loop streams (netperf udp_stream/tcp_stream) ---
struct StreamConfig {
  double per_cpu_offered_pps = 1.2e6;  // Offer above capacity to saturate.
  uint32_t size_bytes = 1400;
  bool tx_direction = false;  // false: wire->VM (rx); true: VM->wire (tx).
  int flows_per_cpu = 1;
  // Bursty (MMPP) offering: above-capacity bursts separated by near-idle
  // valleys, like real TCP traffic. The valleys are where Tai Chi donates
  // cycles — and burst onsets then pay probe-preemption + cache pollution.
  bool bursty = false;
  double burst_multiplier = 8.0;
  sim::Duration burst_mean = sim::Millis(2);
  sim::Duration calm_mean = sim::Millis(2);
};

struct StreamResult {
  double delivered_pps = 0;
  double delivered_gbps = 0;
  sim::Summary latency_us;
};

class StreamRunner {
 public:
  StreamRunner(Testbed* bed, StreamConfig config, uint16_t owner = 12);
  StreamResult Run(sim::Duration duration, sim::Duration warmup);

 private:
  Testbed* bed_;
  StreamConfig config_;
  uint16_t owner_;
};

// --- fio: closed-loop 4 KB block I/O (fio_rw, Table 3) ---
struct FioConfig {
  int threads = 16;
  int iodepth = 8;
  uint32_t block_bytes = 4096;
  sim::Duration backend_latency = sim::Micros(70);
};

struct FioResult {
  double iops = 0;
  double bw_mbps = 0;
  sim::Summary io_latency_us;
};

class FioRunner {
 public:
  FioRunner(Testbed* bed, FioConfig config, uint16_t owner = 13);
  FioResult Run(sim::Duration duration, sim::Duration warmup);

 private:
  void Issue(uint64_t slot);

  Testbed* bed_;
  FioConfig config_;
  uint16_t owner_;
  std::vector<sim::SimTime> issue_time_;
  bool counting_ = false;
  uint64_t completions_ = 0;
  sim::Summary io_latency_us_;
};

// --- synth_cp driver (Fig. 11) ---
struct SynthCpResult {
  sim::Summary exec_time_ms;
  sim::Duration makespan = 0;
};

// Launches `concurrency` synth_cp tasks with background DP load at
// `dp_utilization` (Fig. 11 holds it at the production p99 of ~30%).
SynthCpResult RunSynthCp(Testbed* bed, int concurrency, double dp_utilization,
                         cp::SynthCpConfig cp_config = {});

// --- VM startup storms (Fig. 2 / Fig. 17) ---
struct VmStartupResult {
  sim::Summary startup_ms;
};

// Starts `num_vms` VM-creation workflows with exponential inter-arrivals at
// `arrival_rate_per_sec`, with background DP load at `dp_utilization`.
VmStartupResult RunVmStartupStorm(Testbed* bed, int num_vms, double arrival_rate_per_sec,
                                  double dp_utilization);

}  // namespace taichi::exp

#endif  // SRC_EXP_RUNNERS_H_
