#include "src/exp/runners.h"

#include <algorithm>
#include <cassert>

namespace taichi::exp {

// ---- PingRunner ------------------------------------------------------------

PingRunner::PingRunner(Testbed* bed, uint16_t owner) : bed_(bed), owner_(owner) {}

sim::Summary PingRunner::Run(int count, sim::Duration interval) {
  sim::Summary rtt_us;
  auto state = std::make_shared<int>(0);  // Pings completed.
  std::unordered_map<uint64_t, sim::SimTime> sent_at;

  // VM side: reflect the echo request after the guest stack delay.
  bed_->RegisterVmSink(owner_, [this](const hw::IoPacket& pkt, sim::SimTime) {
    hw::IoPacket reply = pkt;
    reply.kind = hw::IoKind::kNetTx;
    reply.created = 0;
    bed_->sim().Schedule(bed_->VmStackDelay(),
                         [this, reply] { bed_->InjectFromVm(reply); });
  });

  auto send_ping = [this, &sent_at](uint64_t seq) {
    hw::IoPacket pkt;
    pkt.id = seq;
    pkt.kind = hw::IoKind::kNetRx;
    pkt.size_bytes = 64;
    pkt.flow = 0;
    pkt.user_tag = Testbed::Tag(owner_, seq);
    sent_at[seq] = bed_->sim().Now();
    bed_->InjectFromWire(pkt);
  };

  // Client side: record the RTT when the echo reply hits the wire sink.
  bed_->RegisterWireSink(owner_, [&](const hw::IoPacket& pkt, sim::SimTime now) {
    uint64_t seq = pkt.user_tag & 0xffffffffffffULL;
    auto it = sent_at.find(seq);
    if (it == sent_at.end()) {
      return;
    }
    rtt_us.Add(sim::ToMicros(now - it->second));
    sent_at.erase(it);
    ++*state;
  });

  for (int i = 0; i < count; ++i) {
    bed_->sim().Schedule(interval * static_cast<uint64_t>(i),
                         [send_ping, i] { send_ping(static_cast<uint64_t>(i)); });
  }
  // Run until all pings complete (with a generous deadline).
  sim::SimTime deadline =
      bed_->sim().Now() + interval * static_cast<uint64_t>(count) + sim::Seconds(2);
  while (*state < count && bed_->sim().Now() < deadline) {
    bed_->sim().RunFor(sim::Millis(10));
  }
  return rtt_us;
}

// ---- RrRunner ----------------------------------------------------------------

struct RrRunner::Conn {
  uint64_t id = 0;
  int round_trip = 0;           // Within the current transaction.
  sim::SimTime txn_start = 0;
  sim::Rng rng{0};
};

RrRunner::RrRunner(Testbed* bed, RrConfig config, uint16_t owner)
    : bed_(bed), config_(config), owner_(owner) {}

RrRunner::~RrRunner() = default;

void RrRunner::SendRequest(Conn& conn) {
  hw::IoPacket pkt;
  pkt.id = conn.id;
  pkt.kind = hw::IoKind::kNetRx;
  pkt.size_bytes = config_.request_bytes;
  pkt.flow = conn.id;
  pkt.user_tag = Testbed::Tag(owner_, conn.id);
  if (conn.round_trip == 0) {
    pkt.dp_cost_hint = config_.setup_dp_cost_ns;
    conn.txn_start = bed_->sim().Now();
  }
  bed_->InjectFromWire(pkt);
}

RrResult RrRunner::Run(sim::Duration duration, sim::Duration warmup) {
  conns_.clear();
  for (int i = 0; i < config_.connections; ++i) {
    auto conn = std::make_unique<Conn>();
    conn->id = static_cast<uint64_t>(i);
    conn->rng = sim::Rng(bed_->config().seed * 1315423911u + i);
    conns_.push_back(std::move(conn));
  }

  // VM side: respond to each request.
  bed_->RegisterVmSink(owner_, [this](const hw::IoPacket& pkt, sim::SimTime) {
    if (counting_) {
      ++rx_pkts_;
    }
    hw::IoPacket reply = pkt;
    reply.kind = hw::IoKind::kNetTx;
    reply.size_bytes = config_.response_bytes;
    reply.created = 0;
    reply.dp_cost_hint = 0;
    bed_->sim().Schedule(bed_->VmStackDelay(),
                         [this, reply] { bed_->InjectFromVm(reply); });
  });

  // Client side: a response completes a round trip.
  bed_->RegisterWireSink(owner_, [this](const hw::IoPacket& pkt, sim::SimTime now) {
    if (counting_) {
      ++tx_pkts_;
    }
    uint64_t cid = pkt.user_tag & 0xffffffffffffULL;
    Conn& conn = *conns_[cid];
    ++conn.round_trip;
    if (conn.round_trip >= config_.round_trips_per_txn) {
      if (counting_) {
        ++txns_;
        txn_latency_us_.Add(sim::ToMicros(now - conn.txn_start));
      }
      conn.round_trip = 0;
      if (config_.think_time_mean > 0) {
        Conn* c = &conn;
        bed_->sim().Schedule(conn.rng.ExpDuration(config_.think_time_mean),
                             [this, c] { SendRequest(*c); });
        return;
      }
    }
    SendRequest(conn);
  });

  for (auto& conn : conns_) {
    SendRequest(*conn);
  }
  bed_->sim().RunFor(warmup);
  counting_ = true;
  txns_ = 0;
  rx_pkts_ = 0;
  tx_pkts_ = 0;
  sim::SimTime t0 = bed_->sim().Now();
  bed_->sim().RunFor(duration);
  double secs = sim::ToSeconds(bed_->sim().Now() - t0);
  counting_ = false;

  RrResult result;
  result.txn_per_sec = static_cast<double>(txns_) / secs;
  result.rx_pps = static_cast<double>(rx_pkts_) / secs;
  result.tx_pps = static_cast<double>(tx_pkts_) / secs;
  result.txn_latency_us = txn_latency_us_;
  return result;
}

// ---- StreamRunner --------------------------------------------------------------

StreamRunner::StreamRunner(Testbed* bed, StreamConfig config, uint16_t owner)
    : bed_(bed), config_(config), owner_(owner) {}

StreamResult StreamRunner::Run(sim::Duration duration, sim::Duration warmup) {
  struct Counters {
    uint64_t delivered = 0;
    uint64_t bytes = 0;
    bool counting = false;
    sim::Summary latency_us;
  };
  auto counters = std::make_shared<Counters>();

  auto on_delivery = [counters](const hw::IoPacket& pkt, sim::SimTime now) {
    if (!counters->counting) {
      return;
    }
    ++counters->delivered;
    counters->bytes += pkt.size_bytes;
    counters->latency_us.Add(sim::ToMicros(now - pkt.created));
  };
  bed_->RegisterVmSink(owner_, on_delivery);
  bed_->RegisterWireSink(owner_, on_delivery);

  // One source per active DP CPU per flow.
  std::vector<std::unique_ptr<dp::OpenLoopSource>> sources;
  size_t n = bed_->active_dp_cpus().size();
  for (size_t i = 0; i < n; ++i) {
    for (int f = 0; f < config_.flows_per_cpu; ++f) {
      dp::OpenLoopConfig ocfg;
      ocfg.rate_pps = config_.per_cpu_offered_pps / config_.flows_per_cpu;
      ocfg.size_bytes = config_.size_bytes;
      ocfg.process = config_.bursty ? dp::OpenLoopConfig::Process::kMmpp
                                    : dp::OpenLoopConfig::Process::kPoisson;
      if (config_.bursty) {
        // rate_pps is the valley rate; bursts multiply it.
        ocfg.rate_pps /= config_.burst_multiplier;
        ocfg.burst_multiplier = config_.burst_multiplier;
        ocfg.burst_mean = config_.burst_mean;
        ocfg.calm_mean = config_.calm_mean;
      }
      ocfg.kind = config_.tx_direction ? hw::IoKind::kNetTx : hw::IoKind::kNetRx;
      ocfg.flow = i;
      ocfg.user_tag = Testbed::Tag(owner_, i);
      sources.push_back(std::make_unique<dp::OpenLoopSource>(
          &bed_->sim(), &bed_->machine().accelerator(), bed_->queue_for_flow(i), ocfg,
          bed_->config().seed * 131 + i * 7 + f));
      sources.back()->Start();
    }
  }

  bed_->sim().RunFor(warmup);
  counters->counting = true;
  sim::SimTime t0 = bed_->sim().Now();
  bed_->sim().RunFor(duration);
  double secs = sim::ToSeconds(bed_->sim().Now() - t0);
  counters->counting = false;
  for (auto& src : sources) {
    src->Stop();
  }

  StreamResult result;
  result.delivered_pps = static_cast<double>(counters->delivered) / secs;
  result.delivered_gbps = static_cast<double>(counters->bytes) * 8.0 / secs / 1e9;
  result.latency_us = counters->latency_us;
  return result;
}

// ---- FioRunner --------------------------------------------------------------------

FioRunner::FioRunner(Testbed* bed, FioConfig config, uint16_t owner)
    : bed_(bed), config_(config), owner_(owner) {}

void FioRunner::Issue(uint64_t slot) {
  issue_time_[slot] = bed_->sim().Now();
  hw::IoPacket pkt;
  pkt.id = slot;
  pkt.kind = hw::IoKind::kBlockIo;
  pkt.size_bytes = config_.block_bytes;
  pkt.flow = slot;  // Spread slots across DP CPUs.
  pkt.user_tag = Testbed::Tag(owner_, slot);  // Submit phase: bit 47 clear.
  bed_->InjectFromVm(pkt);
}

FioResult FioRunner::Run(sim::Duration duration, sim::Duration warmup) {
  const uint64_t slots =
      static_cast<uint64_t>(config_.threads) * static_cast<uint64_t>(config_.iodepth);
  issue_time_.assign(slots, 0);
  constexpr uint64_t kCompletionBit = 1ULL << 47;

  bed_->RegisterStorageSink(owner_, [this](const hw::IoPacket& pkt, sim::SimTime now) {
    uint64_t payload = pkt.user_tag & 0xffffffffffffULL;
    if ((payload & kCompletionBit) == 0) {
      // Submit half processed by the DP: the backend serves it, then the
      // completion descriptor re-enters the accelerator.
      hw::IoPacket completion = pkt;
      completion.user_tag |= kCompletionBit;
      completion.created = 0;
      bed_->sim().Schedule(config_.backend_latency,
                           [this, completion] { bed_->Inject(completion); });
      return;
    }
    uint64_t slot = payload & ~kCompletionBit;
    if (counting_) {
      ++completions_;
      io_latency_us_.Add(sim::ToMicros(now - issue_time_[slot]));
    }
    Issue(slot);
  });

  for (uint64_t slot = 0; slot < slots; ++slot) {
    Issue(slot);
  }
  bed_->sim().RunFor(warmup);
  counting_ = true;
  completions_ = 0;
  sim::SimTime t0 = bed_->sim().Now();
  bed_->sim().RunFor(duration);
  double secs = sim::ToSeconds(bed_->sim().Now() - t0);
  counting_ = false;

  FioResult result;
  result.iops = static_cast<double>(completions_) / secs;
  result.bw_mbps = result.iops * config_.block_bytes / 1e6;
  result.io_latency_us = io_latency_us_;
  return result;
}

// ---- synth_cp ------------------------------------------------------------------------

SynthCpResult RunSynthCp(Testbed* bed, int concurrency, double dp_utilization,
                         cp::SynthCpConfig cp_config) {
  bed->SpawnBackgroundCp();
  if (dp_utilization > 0) {
    bed->StartBackgroundBurstyLoad(dp_utilization, 512);
  }
  // Let the background settle.
  bed->sim().RunFor(sim::Millis(20));

  auto bench = std::make_unique<cp::SynthCpBenchmark>(&bed->kernel(), cp_config,
                                                      bed->config().seed ^ 0x51f7);
  sim::SimTime t0 = bed->sim().Now();
  bench->Launch(concurrency, bed->cp_task_cpus());
  sim::SimTime deadline = t0 + sim::Seconds(120);
  while (!bench->AllDone() && bed->sim().Now() < deadline) {
    bed->sim().RunFor(sim::Millis(20));
  }
  SynthCpResult result;
  result.exec_time_ms = bench->exec_time_ms();
  result.makespan = bed->sim().Now() - t0;
  bed->StopBackgroundLoad();
  return result;
}

// ---- VM startup storm -------------------------------------------------------------------

VmStartupResult RunVmStartupStorm(Testbed* bed, int num_vms, double arrival_rate_per_sec,
                                  double dp_utilization) {
  bed->SpawnBackgroundCp();
  if (dp_utilization > 0) {
    bed->StartBackgroundBurstyLoad(dp_utilization, 512);
  }
  bed->sim().RunFor(sim::Millis(20));

  sim::Rng arrivals(bed->config().seed ^ 0xa11);
  sim::SimTime at = bed->sim().Now();
  for (int i = 0; i < num_vms; ++i) {
    at += arrivals.ExpDuration(
        static_cast<sim::Duration>(1e9 / arrival_rate_per_sec));
    bed->sim().At(at, [bed] { bed->device_manager().StartVm(bed->cp_task_cpus()); });
  }
  sim::SimTime deadline = bed->sim().Now() + sim::Seconds(300);
  while ((bed->device_manager().started() < num_vms || !bed->device_manager().AllDone()) &&
         bed->sim().Now() < deadline) {
    bed->sim().RunFor(sim::Millis(50));
  }
  bed->StopBackgroundLoad();
  VmStartupResult result;
  result.startup_ms = bed->device_manager().startup_ms();
  return result;
}

}  // namespace taichi::exp
