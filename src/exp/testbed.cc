#include "src/exp/testbed.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "src/os/behaviors.h"
#include "src/sim/logging.h"

namespace taichi::exp {

namespace {
// Owner id reserved for background open-loop traffic.
constexpr uint16_t kBackgroundOwner = 1;
}  // namespace

const char* ToString(Mode mode) {
  switch (mode) {
    case Mode::kBaseline:
      return "baseline";
    case Mode::kNaiveCosched:
      return "naive-cosched";
    case Mode::kTaiChi:
      return "taichi";
    case Mode::kTaiChiNoHwProbe:
      return "taichi-no-hwprobe";
    case Mode::kTaiChiVdp:
      return "taichi-vdp";
    case Mode::kType2:
      return "type2-qemu-kvm";
  }
  return "?";
}

Testbed::Testbed(TestbedConfig config)
    : config_(config), sim_(config.seed), rng_(config.seed ^ 0x7a1c41),
      flow_rx_(config.flow_monitor), flow_dp_(config.flow_monitor),
      flow_tx_(config.flow_monitor) {
  hw::MachineConfig mcfg;
  mcfg.num_cpus = config_.total_cpus;
  mcfg.accelerator = config_.accelerator;
  mcfg.packet_pool_capacity = config_.packet_pool_capacity;
  machine_ = std::make_unique<hw::Machine>(&sim_, mcfg);
  kernel_ = std::make_unique<os::Kernel>(&sim_, machine_.get(), os::KernelConfig{});

  machine_->nic().set_flow_monitor(&flow_tx_);
  machine_->accelerator().set_flow_monitor(&flow_rx_);
  machine_->nic().set_sink([this](sim::PacketHandle h) {
    sim::PacketPool& pool = machine_->pool();
    const hw::IoPacket& pkt = pool.Get(h);
    auto it = wire_sinks_.find(OwnerOf(pkt.user_tag));
    if (it != wire_sinks_.end()) {
      it->second(pkt, sim_.Now());
    }
    pool.Free(h);
  });

  BuildTopology();

  const bool is_taichi = config_.mode == Mode::kTaiChi ||
                         config_.mode == Mode::kTaiChiNoHwProbe ||
                         config_.mode == Mode::kTaiChiVdp;
  if (is_taichi) {
    InstallTaiChi();
    // vCPU bring-up (boot IPIs + boot cost).
    sim_.RunFor(sim::Millis(1));
    cp_task_cpus_ = taichi_->cp_task_cpus();
  }

  BuildServices();

  cp::VmStartupConfig vmcfg = config_.vm_startup;
  if (config_.mode == Mode::kType2) {
    vmcfg.ipc_penalty = config_.type2.ipc_to_rpc_penalty;
  }
  device_manager_ = std::make_unique<cp::DeviceManager>(kernel_.get(), vmcfg,
                                                        config_.seed ^ 0xdeb1ce);
}

Testbed::~Testbed() = default;

void Testbed::InstallTaiChi() {
  core::TaiChiConfig tcfg = config_.taichi;
  tcfg.dp_cpus = dp_set_;
  tcfg.cp_cpus = cp_set_;
  if (tcfg.num_vcpus == 0) {
    tcfg.num_vcpus = config_.dp_cpu_count;
  }
  tcfg.hw_probe_enabled = config_.mode != Mode::kTaiChiNoHwProbe;
  // Every generation gets fresh CPU and APIC ids: retired vCPUs stay
  // registered with the kernel (there is no CPU unregistration, as on real
  // hardware), so an enable→disable→enable cycle must not collide.
  tcfg.vcpu_apic_base =
      static_cast<uint32_t>(virt::kVcpuApicBase) + taichi_generation_ * 64u;
  ++taichi_generation_;
  taichi_ = std::make_unique<core::TaiChi>(kernel_.get(), tcfg);
}

void Testbed::BuildTopology() {
  assert(config_.dp_cpu_count < static_cast<int>(config_.total_cpus));
  dp_set_ = os::CpuSet::Range(0, config_.dp_cpu_count);
  cp_set_ = os::CpuSet::Range(config_.dp_cpu_count, static_cast<int>(config_.total_cpus));

  int active_dp = config_.dp_cpu_count;
  if (config_.mode == Mode::kType2) {
    // QEMU device emulation + the guest OS permanently occupy DP CPUs.
    active_dp -= config_.type2.dedicated_cpus;
    assert(active_dp > 0);
    for (int i = active_dp; i < config_.dp_cpu_count; ++i) {
      kernel_->Spawn("qemu_emulation_" + std::to_string(i),
                     std::make_unique<os::LambdaBehavior>(
                         [](os::Kernel&, os::Task&, const os::ActionResult&) {
                           return os::Action::BusyPoll(0);
                         }),
                     os::CpuSet::Of({i}), os::Priority::kHigh);
    }
  }
  for (int i = 0; i < active_dp; ++i) {
    active_dp_cpus_.push_back(i);
  }

  switch (config_.mode) {
    case Mode::kBaseline:
    case Mode::kType2:
      cp_task_cpus_ = cp_set_;
      break;
    case Mode::kNaiveCosched:
      cp_task_cpus_ = dp_set_ | cp_set_;
      break;
    default:
      cp_task_cpus_ = cp_set_;  // Extended with vCPUs once Tai Chi is up.
      break;
  }
}

void Testbed::BuildServices() {
  const bool is_taichi = taichi_ != nullptr;
  for (os::CpuId cpu : active_dp_cpus_) {
    uint32_t queue = machine_->accelerator().AddQueue(static_cast<uint32_t>(cpu));
    queues_.push_back(queue);

    dp::PollServiceConfig scfg = config_.dp_service;
    if (config_.mode == Mode::kTaiChiVdp) {
      scfg.virt_work_tax = config_.type1.dp_work_tax;
    }
    dp::YieldPolicy policy = dp::YieldPolicy::kBusyPoll;
    if (config_.mode == Mode::kNaiveCosched) {
      policy = dp::YieldPolicy::kBlockOnIdle;
    }
    auto service = std::make_unique<dp::PollService>(cpu, scfg, policy);
    service->AttachRing(&machine_->accelerator().ring(queue));
    service->set_pool(&machine_->pool());
    service->set_flow_monitor(&flow_dp_);
    service->set_sink(
        [this](const sim::PacketHandle* batch, size_t count, sim::SimTime completed) {
          for (size_t i = 0; i < count; ++i) {
            DispatchFromDp(batch[i], completed);
          }
        });
    os::Task* task = kernel_->Spawn("dp_service_" + std::to_string(cpu),
                                    std::make_unique<os::BehaviorRef>(service.get()),
                                    os::CpuSet::Of({cpu}), os::Priority::kHigh);
    service->BindTask(kernel_.get(), task);
    services_.push_back(std::move(service));
    if (is_taichi) {
      WireServiceProbe(services_.size() - 1);
    }
  }
}

void Testbed::WireServiceProbe(size_t service_index) {
  dp::PollService* svc = services_[service_index].get();
  svc->AttachTaiChiProbe(&taichi_->sw_probe());
  if (config_.multi_dim_idle) {
    // §9: override the idle check with the multi-dimensional variant.
    const uint32_t queue = queues_[service_index];
    taichi_->sw_probe().RegisterDpService(
        svc->cpu(), [this, svc, queue] {
          return svc->IsIdle() && machine_->accelerator().in_flight(queue) == 0;
        });
  }
}

uint32_t Testbed::queue_for_flow(uint64_t flow) const {
  return queues_[flow % queues_.size()];
}

void Testbed::Inject(hw::IoPacket pkt) {
  pkt.queue = queue_for_flow(pkt.flow);
  if (pkt.created == 0) {
    pkt.created = sim_.Now();
  }
  machine_->accelerator().Ingress(pkt.queue, pkt);
}

// The wire / PCIe injection legs allocate the arena slot up front so the
// delay event captures only {this, handle}: small enough to stay inline in
// the event slot, and the packet is copied exactly once per traversal.
void Testbed::InjectFromWire(hw::IoPacket pkt) {
  pkt.queue = queue_for_flow(pkt.flow);
  if (pkt.created == 0) {
    pkt.created = sim_.Now();
  }
  const sim::PacketHandle h = machine_->pool().Alloc(pkt);
  if (h == sim::kInvalidPacketHandle) {
    machine_->accelerator().CountPoolDrop();
    return;
  }
  sim_.Schedule(config_.wire_latency, [this, h] { InjectHandle(h); });
}

void Testbed::InjectFromVm(hw::IoPacket pkt) {
  pkt.queue = queue_for_flow(pkt.flow);
  if (pkt.created == 0) {
    pkt.created = sim_.Now();
  }
  const sim::PacketHandle h = machine_->pool().Alloc(pkt);
  if (h == sim::kInvalidPacketHandle) {
    machine_->accelerator().CountPoolDrop();
    return;
  }
  sim_.Schedule(config_.pcie_dma_cost, [this, h] { InjectHandle(h); });
}

void Testbed::InjectHandle(sim::PacketHandle h) {
  const uint32_t queue = machine_->pool().Get(h).queue;
  machine_->accelerator().IngressHandle(queue, h);
}

void Testbed::DispatchFromDp(sim::PacketHandle h, sim::SimTime completed) {
  sim::PacketPool& pool = machine_->pool();
  const hw::IoPacket& pkt = pool.Get(h);
  switch (pkt.kind) {
    case hw::IoKind::kNetRx: {
      sim_.Schedule(config_.pcie_dma_cost, [this, h] {
        const hw::IoPacket& delivered = machine_->pool().Get(h);
        auto it = vm_sinks_.find(OwnerOf(delivered.user_tag));
        if (it != vm_sinks_.end()) {
          it->second(delivered, sim_.Now());
        }
        machine_->pool().Free(h);
      });
      return;
    }
    case hw::IoKind::kNetTx:
      machine_->nic().Transmit(h);  // The port owns the handle from here.
      return;
    case hw::IoKind::kBlockIo: {
      auto it = storage_sinks_.find(OwnerOf(pkt.user_tag));
      if (it != storage_sinks_.end()) {
        it->second(pkt, completed);
      }
      pool.Free(h);
      return;
    }
  }
}

sim::Duration Testbed::VmStackDelay() {
  return config_.vm_stack_base + rng_.UniformDuration(0, config_.vm_stack_jitter);
}

double Testbed::RateForUtilization(double utilization, uint32_t size_bytes) const {
  double per_packet_ns = static_cast<double>(config_.dp_service.per_packet_base_cost) +
                         size_bytes * config_.dp_service.ns_per_byte;
  return utilization * 1e9 / per_packet_ns;
}

void Testbed::StartBackgroundLoad(double per_cpu_rate_pps, uint32_t size_bytes,
                                  dp::OpenLoopConfig::Process process) {
  RegisterVmSink(kBackgroundOwner, [this](const hw::IoPacket& pkt, sim::SimTime t) {
    size_t idx = pkt.flow % background_.size();
    background_[idx]->OnDelivered(pkt, t);
  });
  for (size_t i = 0; i < active_dp_cpus_.size(); ++i) {
    dp::OpenLoopConfig ocfg;
    ocfg.rate_pps = per_cpu_rate_pps;
    ocfg.size_bytes = size_bytes;
    ocfg.process = process;
    ocfg.kind = hw::IoKind::kNetRx;
    ocfg.flow = i;
    ocfg.flow_count = config_.background_flow_count;
    ocfg.flow_skew = config_.background_flow_skew;
    ocfg.flow_salt = config_.background_flow_salt;
    ocfg.user_tag = Tag(kBackgroundOwner, i);
    auto src = std::make_unique<dp::OpenLoopSource>(&sim_, &machine_->accelerator(),
                                                    queues_[i], ocfg,
                                                    config_.seed * 77 + i);
    src->Start();
    if (obs_ != nullptr) {
      src->RegisterMetrics(obs_->metrics, "src" + std::to_string(background_.size()));
    }
    background_base_pps_.push_back(ocfg.rate_pps);
    background_.push_back(std::move(src));
  }
}

void Testbed::StartBackgroundBurstyLoad(double avg_utilization, uint32_t size_bytes) {
  StartBackgroundBurstyLoadPerCpu({avg_utilization}, size_bytes);
}

void Testbed::StartBackgroundBurstyLoadPerCpu(const std::vector<double>& utils,
                                              uint32_t size_bytes) {
  assert(!utils.empty());
  // On/off modulation: calm floor of ~1% utilization, bursts near peak; the
  // burst duty cycle is chosen per CPU to hit its requested average.
  constexpr double kCalmUtil = 0.01;
  constexpr double kBurstUtil = 0.90;
  RegisterVmSink(kBackgroundOwner, [this](const hw::IoPacket& pkt, sim::SimTime t) {
    size_t idx = pkt.flow % background_.size();
    background_[idx]->OnDelivered(pkt, t);
  });
  const sim::Duration burst_mean = sim::Millis(2);
  for (size_t i = 0; i < active_dp_cpus_.size(); ++i) {
    double util = utils[std::min(i, utils.size() - 1)];
    double duty = std::clamp((util - kCalmUtil) / (kBurstUtil - kCalmUtil), 0.0, 1.0);
    const sim::Duration calm_mean =
        duty > 0 ? static_cast<sim::Duration>(burst_mean * (1.0 - duty) / duty)
                 : sim::Seconds(1000);
    dp::OpenLoopConfig ocfg;
    ocfg.rate_pps = RateForUtilization(kCalmUtil, size_bytes);
    ocfg.size_bytes = size_bytes;
    ocfg.process = dp::OpenLoopConfig::Process::kMmpp;
    ocfg.burst_multiplier = kBurstUtil / kCalmUtil;
    ocfg.burst_mean = burst_mean;
    ocfg.calm_mean = calm_mean;
    ocfg.kind = hw::IoKind::kNetRx;
    ocfg.flow = i;
    ocfg.flow_count = config_.background_flow_count;
    ocfg.flow_skew = config_.background_flow_skew;
    ocfg.flow_salt = config_.background_flow_salt;
    ocfg.user_tag = Tag(kBackgroundOwner, i);
    auto src = std::make_unique<dp::OpenLoopSource>(&sim_, &machine_->accelerator(),
                                                    queues_[i], ocfg,
                                                    config_.seed * 91 + i);
    src->Start();
    if (obs_ != nullptr) {
      src->RegisterMetrics(obs_->metrics, "src" + std::to_string(background_.size()));
    }
    background_base_pps_.push_back(ocfg.rate_pps);
    background_.push_back(std::move(src));
  }
}

void Testbed::StopBackgroundLoad() {
  for (auto& src : background_) {
    src->Stop();
  }
}

void Testbed::ScaleBackgroundLoad(double factor) {
  for (size_t i = 0; i < background_.size(); ++i) {
    background_[i]->set_rate(background_base_pps_[i] * factor);
  }
}

sim::Duration Testbed::TotalDpWork() const {
  sim::Duration total = 0;
  for (const auto& service : services_) {
    total += service->work_time();
  }
  return total;
}

void Testbed::SpawnBackgroundCp() {
  if (!config_.spawn_monitors) {
    return;
  }
  std::vector<os::Task*> tasks = cp::SpawnMonitorFleet(kernel_.get(), config_.monitors,
                                                       cp_task_cpus_, &monitor_lock_,
                                                       config_.seed ^ 0x3a0b17);
  monitor_tasks_.insert(monitor_tasks_.end(), tasks.begin(), tasks.end());
}

void Testbed::StallAccelerator(sim::Duration duration) {
  machine_->accelerator().Stall(duration);
}

void Testbed::SetIngressTap(hw::Accelerator::IngressTap tap) {
  machine_->accelerator().set_ingress_tap(std::move(tap));
}

std::vector<os::Task*> Testbed::SpawnCpFlood(int count, uint64_t iterations, uint64_t salt) {
  std::vector<os::Task*> tasks;
  tasks.reserve(static_cast<size_t>(std::max(0, count)));
  for (int i = 0; i < count; ++i) {
    cp::CpWorkProfile profile;
    // Heavier than the monitor fleet: every iteration syscalls, and half the
    // routines grab the shared driver lock the monitors also use.
    profile.syscall_prob = 1.0;
    profile.short_routine_prob = 0.80;
    profile.lock_prob = 0.50;
    profile.lock = &monitor_lock_;
    const uint64_t seed = config_.seed ^ salt ^ (0x9e3779b97f4a7c15ULL * (i + 1));
    os::Task* task = kernel_->Spawn("cp_flood_" + std::to_string(i),
                                    cp::MakeCpTask(profile, iterations, seed), cp_task_cpus_);
    tasks.push_back(task);
  }
  return tasks;
}

os::Task* Testbed::SpawnHotplugStorm(int ops, sim::Duration routine, uint64_t salt) {
  std::vector<os::Action> script;
  script.reserve(static_cast<size_t>(std::max(0, ops)) * 2 + 1);
  for (int i = 0; i < ops; ++i) {
    // A sliver of user-space setup between ops keeps the task preemptible at
    // the op boundary — hotplug storms serialize on stop_machine, they do not
    // fuse into one giant section.
    script.push_back(os::Action::Compute(sim::Micros(20)));
    script.push_back(os::Action::KernelSection(routine));
  }
  script.push_back(os::Action::Exit());
  return kernel_->Spawn("hotplug_storm_" + std::to_string(salt),
                        std::make_unique<os::ScriptBehavior>(std::move(script)), cp_task_cpus_,
                        os::Priority::kHigh);
}

void Testbed::EnableTaiChi() {
  if (draining_) {
    // Re-enabling while the previous disable is still draining would install
    // a second framework on top of vCPUs the drain poll is about to destroy.
    // Callers must wait for taichi_draining() to clear (the autopilot does).
    TAICHI_ERROR(sim_.Now(), "testbed: EnableTaiChi while the previous disable "
                 "is still draining");
    assert(!draining_ && "EnableTaiChi during an in-flight DisableTaiChi drain");
    return;
  }
  if (taichi_ != nullptr) {
    TAICHI_ERROR(sim_.Now(), "testbed: EnableTaiChi while Tai Chi is already installed");
    return;
  }
  if (config_.mode != Mode::kBaseline) {
    TAICHI_ERROR(sim_.Now(), "testbed: runtime enable is only supported from mode "
                 "baseline, not %s", ToString(config_.mode));
    return;
  }
  int vcpus = config_.taichi.num_vcpus == 0 ? config_.dp_cpu_count : config_.taichi.num_vcpus;
  if (kernel_->num_cpus() + vcpus > 64) {
    TAICHI_ERROR(sim_.Now(), "testbed: out of CPU ids (%d registered, %d more wanted)",
                 kernel_->num_cpus(), vcpus);
    return;
  }
  InstallTaiChi();
  for (size_t i = 0; i < services_.size(); ++i) {
    WireServiceProbe(i);
  }
  cp_task_cpus_ = taichi_->cp_task_cpus();
  for (os::Task* task : monitor_tasks_) {
    if (task->state() != os::TaskState::kExited) {
      kernel_->SetTaskAffinity(task, cp_task_cpus_);
    }
  }
  if (obs_ != nullptr) {
    taichi_->AttachObservability(obs_);
  }
}

void Testbed::SetDpBoost(bool on) {
  if (on == dp_boost_) {
    return;
  }
  if (taichi_ == nullptr || draining_) {
    TAICHI_ERROR(sim_.Now(), "testbed: SetDpBoost needs an active Tai Chi");
    return;
  }
  if (on) {
    // §8 inverse repartitioning, runtime edition: pause donations so the DP
    // CPUs run undisturbed busy-poll at full throughput. CP tasks fall back
    // to the static CP partition; the vCPU pool idles out on its own (no
    // backed vCPU without runnable work). The framework stays installed so
    // reverting is cheap.
    for (auto& service : services_) {
      service->DetachTaiChiProbe(dp::YieldPolicy::kBusyPoll);
    }
    cp_task_cpus_ = cp_set_;
    const os::CpuSet vcpus = taichi_->vcpu_set();
    for (const auto& task : kernel_->tasks()) {
      if (task->state() == os::TaskState::kExited) {
        continue;
      }
      if (!(task->affinity() & vcpus).empty()) {
        kernel_->SetTaskAffinity(task.get(), cp_set_);
      }
    }
  } else {
    // Resume donations: re-attach the probes and widen the CP affinity back
    // onto the vCPU pool.
    for (size_t i = 0; i < services_.size(); ++i) {
      WireServiceProbe(i);
    }
    cp_task_cpus_ = taichi_->cp_task_cpus();
    for (os::Task* task : monitor_tasks_) {
      if (task->state() != os::TaskState::kExited) {
        kernel_->SetTaskAffinity(task, cp_task_cpus_);
      }
    }
  }
  dp_boost_ = on;
}

void Testbed::DisableTaiChi() {
  if (taichi_ == nullptr || draining_) {
    TAICHI_ERROR(sim_.Now(), "testbed: DisableTaiChi without an active Tai Chi");
    return;
  }
  // A disable supersedes any boost; from here the probes are detached and
  // cp_task_cpus_ narrowed regardless (re-detaching is a no-op).
  dp_boost_ = false;
  // Stop new donations, then pull every task off the vCPUs. Queued tasks
  // migrate immediately; tasks frozen inside a preempted vCPU migrate at
  // their next preemptible boundary, which requires the vCPU to keep getting
  // backed until then — hence the drain below runs with the scheduler alive.
  for (auto& service : services_) {
    service->DetachTaiChiProbe(dp::YieldPolicy::kBusyPoll);
  }
  cp_task_cpus_ = cp_set_;
  const os::CpuSet vcpus = taichi_->vcpu_set();
  for (const auto& task : kernel_->tasks()) {
    if (task->state() == os::TaskState::kExited) {
      continue;
    }
    if (!(task->affinity() & vcpus).empty()) {
      kernel_->SetTaskAffinity(task.get(), cp_set_);
    }
  }
  draining_ = true;
  ScheduleDrainCheck();
}

bool Testbed::TaiChiQuiesced() const {
  for (const virt::VcpuInfo& v : taichi_->pool().vcpus()) {
    if (kernel_->cpu_backed(v.cpu) || kernel_->runnable_count(v.cpu) > 0 ||
        kernel_->current_task(v.cpu) != nullptr) {
      return false;
    }
  }
  return true;
}

void Testbed::ScheduleDrainCheck() {
  // One repeating poll per drain; ends itself when the drain resolves.
  drain_event_ = sim_.ScheduleRepeating(sim::Micros(200), [this] {
    if (!draining_) {
      sim_.Cancel(drain_event_);
      drain_event_ = sim::kInvalidEventId;
      return;
    }
    if (TaiChiQuiesced()) {
      sim_.Cancel(drain_event_);
      drain_event_ = sim::kInvalidEventId;
      FinishDisableTaiChi();
    }
  });
}

void Testbed::FinishDisableTaiChi() {
  if (obs_ != nullptr) {
    // The next enable would re-register these names; deregister so the
    // registry never holds pointers into a destroyed framework.
    obs_->metrics.RemovePrefix("sched.");
    obs_->metrics.RemovePrefix("ipi.");
    obs_->metrics.RemovePrefix("sw_probe.");
  }
  taichi_.reset();
  draining_ = false;
}

void Testbed::AttachObservability(obs::Observability* obs) {
  obs_ = obs;
  obs::TraceRecorder* tracer = obs != nullptr ? &obs->trace : nullptr;
  kernel_->set_tracer(tracer);
  machine_->apic().set_tracer(tracer);
  machine_->accelerator().set_tracer(tracer);
  machine_->probe().set_tracer(tracer);
  for (auto& service : services_) {
    service->set_tracer(tracer);
  }
  if (taichi_ != nullptr) {
    taichi_->AttachObservability(obs);
  }
  if (obs == nullptr) {
    return;
  }
  kernel_->RegisterMetrics(obs->metrics);
  machine_->apic().RegisterMetrics(obs->metrics);
  machine_->accelerator().RegisterMetrics(obs->metrics);
  // Canonical per-node rx drop signals: descriptor-ring overflow and packet
  // arena exhaustion. Scenario verdicts read these to surface overload.
  obs->metrics.AddCounterFn("rx.ring_drops",
                            [this] { return machine_->accelerator().ring_drops(); });
  obs->metrics.AddCounterFn("rx.pool_drops",
                            [this] { return machine_->accelerator().pool_drops(); });
  machine_->probe().RegisterMetrics(obs->metrics);
  for (auto& service : services_) {
    service->RegisterMetrics(obs->metrics, "dp.svc" + std::to_string(service->cpu()));
  }
  for (size_t i = 0; i < background_.size(); ++i) {
    background_[i]->RegisterMetrics(obs->metrics, "src" + std::to_string(i));
  }
  device_manager_->RegisterMetrics(obs->metrics);
  monitor_lock_.RegisterMetrics(obs->metrics);
  flow_rx_.RegisterMetrics(obs->metrics, "flows.rx.");
  flow_dp_.RegisterMetrics(obs->metrics, "flows.dp.");
  flow_tx_.RegisterMetrics(obs->metrics, "flows.tx.");
}

}  // namespace taichi::exp
