// The experiment testbed: one SmartNIC node assembled per scheduling mode.
//
// Reproduces the Table 4 environment: a 12-CPU SmartNIC whose data plane
// (8 CPUs) runs poll-mode services fed by the programmable accelerator, and
// whose control plane (4 CPUs) runs device management, monitors and
// orchestration tasks. The mode selects the co-scheduling mechanism under
// test (§6.1/§6.3):
//
//   kBaseline        static partitioning (production SOTA baseline)
//   kNaiveCosched    CP tasks share DP CPUs through the OS scheduler
//   kTaiChi          the full framework
//   kTaiChiNoHwProbe Tai Chi without the hardware workload probe (§6.4)
//   kTaiChiVdp       type-1 emulation: DP in vCPU contexts (§6.3)
//   kType2           QEMU+KVM guest for CP: dedicated emulation CPUs (§6.3)
#ifndef SRC_EXP_TESTBED_H_
#define SRC_EXP_TESTBED_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/cp/device_manager.h"
#include "src/cp/monitor.h"
#include "src/dp/poll_service.h"
#include "src/dp/sources.h"
#include "src/hw/machine.h"
#include "src/obs/flow_monitor.h"
#include "src/obs/observability.h"
#include "src/os/kernel.h"
#include "src/sim/inline_callback.h"
#include "src/sim/packet_pool.h"
#include "src/sim/simulation.h"
#include "src/taichi/taichi.h"
#include "src/virt/virt_costs.h"

namespace taichi::exp {

enum class Mode : uint8_t {
  kBaseline,
  kNaiveCosched,
  kTaiChi,
  kTaiChiNoHwProbe,
  kTaiChiVdp,
  kType2,
};

const char* ToString(Mode mode);

struct TestbedConfig {
  Mode mode = Mode::kBaseline;
  uint32_t total_cpus = 12;  // Table 4.
  int dp_cpu_count = 8;      // Static partition: 8 DP + 4 CP (§6.1).
  uint64_t seed = 1;

  // Accelerator pipeline + descriptor-ring depth (scenarios shrink
  // ring_capacity to surface rx drops under overload).
  hw::AcceleratorConfig accelerator;
  // Slots in the node's packet arena; exhaustion sheds arrivals.
  size_t packet_pool_capacity = 65536;

  dp::PollServiceConfig dp_service;
  core::TaiChiConfig taichi;  // dp/cp/vcpu fields filled by the testbed.
  // §9 extension: the idle check also consults accelerator pipeline
  // occupancy (packet metadata), so a DP CPU never yields with work already
  // in flight toward it.
  bool multi_dim_idle = false;
  virt::Type1Costs type1;
  virt::Type2Costs type2;

  // Background control-plane load present on every node.
  bool spawn_monitors = true;
  cp::MonitorFleetConfig monitors;
  cp::VmStartupConfig vm_startup;

  // Sketch-based flow telemetry: one config shared by the node's three taps
  // (rx = accelerator ingress, dp = poll-service completions, tx = NIC
  // port). The seed inside must stay the fleet-wide default or per-node
  // monitors stop merging.
  obs::FlowMonitorConfig flow_monitor;
  // Flow-population synthesis for the background sources (OpenLoopConfig
  // pass-through): distinct flows per source and Zipf-like skew.
  uint32_t background_flow_count = 1;
  double background_flow_skew = 1.3;
  // Per-node flow-population salt (OpenLoopConfig::flow_salt pass-through):
  // the fleet layer sets a distinct salt per node so merged distinct-flow
  // counts scale with node count. 0 keeps flow keys byte-identical to the
  // unsalted scheme.
  uint64_t background_flow_salt = 0;

  // End-to-end path constants (calibrated so the baseline ping RTT lands
  // near Table 5's 26/30/38 us).
  sim::Duration wire_latency = sim::Micros(4);     // Client <-> NIC, one way.
  sim::Duration pcie_dma_cost = sim::MicrosF(0.9); // SmartNIC <-> host VM.
  sim::Duration vm_stack_base = sim::Micros(9);    // Guest network stack.
  sim::Duration vm_stack_jitter = sim::Micros(10); // Uniform [0, jitter).
};

class Testbed {
 public:
  // Delivery callback: the packet is read out of the node's arena for the
  // duration of the call; the testbed frees the slot after the sink returns.
  using Sink = sim::InlineFunction<void(const hw::IoPacket&, sim::SimTime)>;

  explicit Testbed(TestbedConfig config);
  ~Testbed();
  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  sim::Simulation& sim() { return sim_; }
  hw::Machine& machine() { return *machine_; }
  os::Kernel& kernel() { return *kernel_; }
  core::TaiChi* taichi() { return taichi_.get(); }
  cp::DeviceManager& device_manager() { return *device_manager_; }
  const TestbedConfig& config() const { return config_; }

  // --- Topology ---
  // DP CPUs actually running services (excludes type-2 emulation CPUs).
  const std::vector<os::CpuId>& active_dp_cpus() const { return active_dp_cpus_; }
  os::CpuSet dp_cpu_set() const { return dp_set_; }
  os::CpuSet cp_pcpu_set() const { return cp_set_; }
  // Where control-plane tasks are affined in this mode.
  os::CpuSet cp_task_cpus() const { return cp_task_cpus_; }
  dp::PollService& service(size_t i) { return *services_[i]; }
  size_t service_count() const { return services_.size(); }
  uint32_t queue_for_flow(uint64_t flow) const;

  // --- Packet injection (both directions pass the accelerator + DP) ---
  // From the external network: wire latency, then accelerator ingress.
  void InjectFromWire(hw::IoPacket pkt);
  // From the host VM: PCIe DMA, then accelerator ingress.
  void InjectFromVm(hw::IoPacket pkt);
  // Raw ingress at the accelerator (no extra leg).
  void Inject(hw::IoPacket pkt);

  // --- Delivery sinks, keyed by owner id (top 16 bits of user_tag) ---
  static constexpr int kOwnerShift = 48;
  static uint64_t Tag(uint16_t owner, uint64_t value) {
    return (static_cast<uint64_t>(owner) << kOwnerShift) | value;
  }
  static uint16_t OwnerOf(uint64_t tag) { return static_cast<uint16_t>(tag >> kOwnerShift); }

  // kNetRx packets reach the VM (after PCIe DMA); kNetTx packets reach the
  // wire (after NIC serialization + wire latency); kBlockIo packets complete
  // at the storage layer immediately after DP processing.
  void RegisterVmSink(uint16_t owner, Sink sink) { vm_sinks_[owner] = std::move(sink); }
  void RegisterWireSink(uint16_t owner, Sink sink) { wire_sinks_[owner] = std::move(sink); }
  void RegisterStorageSink(uint16_t owner, Sink sink) { storage_sinks_[owner] = std::move(sink); }

  // Draws the guest network-stack delay (base + uniform jitter).
  sim::Duration VmStackDelay();

  // --- Background DP load ---
  // Starts an open-loop source per active DP CPU, each at `per_cpu_rate_pps`.
  // `utilization` helpers convert between rate and expected CPU load.
  void StartBackgroundLoad(double per_cpu_rate_pps, uint32_t size_bytes,
                           dp::OpenLoopConfig::Process process);
  // Production-shaped traffic (§3.1): long quiet stretches punctuated by
  // near-peak bursts, averaging `avg_utilization` per DP CPU. This is the
  // regime where DP idle cycles are actually donatable.
  void StartBackgroundBurstyLoad(double avg_utilization, uint32_t size_bytes);
  // Same, with heterogeneous per-CPU average utilizations (fleet modeling,
  // Fig. 3). utils[i] drives active DP CPU i; missing entries reuse the last.
  void StartBackgroundBurstyLoadPerCpu(const std::vector<double>& utils,
                                       uint32_t size_bytes);
  void StopBackgroundLoad();
  // Scales every running background source relative to the rate it was
  // started with (diurnal load curves; factor 1.0 restores the baseline).
  // MMPP sources keep their duty cycle — the whole day breathes, the burst
  // shape does not change.
  void ScaleBackgroundLoad(double factor);
  double RateForUtilization(double utilization, uint32_t size_bytes) const;
  // Flow-population synthesis for background sources started after this call
  // (fleet::LoadGen pass-through). Telemetry-only: consumes no Rng state.
  void SetBackgroundFlows(uint32_t flow_count, double flow_skew,
                          uint64_t flow_salt = 0) {
    config_.background_flow_count = flow_count;
    config_.background_flow_skew = flow_skew;
    config_.background_flow_salt = flow_salt;
  }

  // Aggregate useful DP work time across services.
  sim::Duration TotalDpWork() const;

  // --- Flow telemetry (constant-space sketches, see src/obs/flow_monitor.h)
  // rx: every packet entering the accelerator; dp: every packet a poll
  // service finished processing; tx: every packet serialized onto the wire.
  // All three run unconditionally — the taps are O(1) and allocation-free —
  // and merge across nodes (fleet::Cluster::MergedFlowMonitor).
  obs::FlowMonitor& flow_rx() { return flow_rx_; }
  obs::FlowMonitor& flow_dp() { return flow_dp_; }
  obs::FlowMonitor& flow_tx() { return flow_tx_; }
  const obs::FlowMonitor& flow_rx() const { return flow_rx_; }
  const obs::FlowMonitor& flow_dp() const { return flow_dp_; }
  const obs::FlowMonitor& flow_tx() const { return flow_tx_; }

  // Spawns the standard background CP fleet (monitors) for this mode.
  void SpawnBackgroundCp();

  // --- Fault injection (the scenario chaos layer drives these) ---
  // Freezes the accelerator preprocessing pipeline: firmware hiccup / PCIe
  // backpressure. Arrivals queue behind the stall exactly as behind a burst.
  void StallAccelerator(sim::Duration duration);
  // Raw per-packet tap at accelerator ingress (the scenario trace recorder).
  // Null clears; costs one predictable branch per packet when unset.
  void SetIngressTap(hw::Accelerator::IngressTap tap);
  // Noisy neighbor: `count` aggressive CP tasks (Fig. 5 routine mixture,
  // contending the shared driver lock) affined to cp_task_cpus(); each runs
  // `iterations` profile iterations and exits (0 = forever).
  std::vector<os::Task*> SpawnCpFlood(int count, uint64_t iterations, uint64_t salt);
  // CPU-hotplug storm: one kHigh task issuing `ops` back-to-back
  // stop_machine-style non-preemptible kernel sections of `routine` each —
  // the pathological §2.3 CP behavior that starves everything co-located.
  os::Task* SpawnHotplugStorm(int ops, sim::Duration routine, uint64_t salt);

  // --- Runtime Tai Chi enable/disable (staged rollout, §6.6) ---
  // Installs Tai Chi on a node built as kBaseline: brings a fresh vCPU pool
  // online, attaches the software probe to every DP service, and re-affines
  // the background CP fleet to the widened cp_task_cpus(). vCPU bring-up
  // completes as simulated time advances (~1 ms); newly started CP work is
  // eligible for donated DP cycles immediately after.
  void EnableTaiChi();
  // Rolls Tai Chi back: detaches the probes (DP services return to busy
  // polling), re-affines every task off the vCPUs, then drains — the
  // framework is destroyed only once no vCPU is backed, queued-on or
  // running a task, a few hundred microseconds of simulated time later.
  void DisableTaiChi();
  bool taichi_enabled() const { return taichi_ != nullptr && !draining_; }
  // True between DisableTaiChi() and the completion of the vCPU drain.
  bool taichi_draining() const { return draining_; }

  // --- §8 inverse repartitioning at runtime (DP boost) ---
  // On: pauses idle-cycle donation — detaches the Tai Chi probes so every DP
  // CPU busy-polls at full throughput, and pulls CP tasks back to the static
  // CP partition. The framework stays installed (the vCPU pool simply idles),
  // so Off cheaply re-attaches the probes and widens CP affinity again.
  // Requires an active, non-draining Tai Chi; DisableTaiChi() clears it.
  void SetDpBoost(bool on);
  bool dp_boost() const { return dp_boost_; }

  // Wires the unified observability layer (metrics + tracer) through every
  // component of the node: kernel, interrupt fabric, accelerator, HW probe,
  // the Tai Chi core (if this mode runs it), poll services, traffic sources
  // and the CP workloads. Sources started after this call register
  // themselves as they are created. Pass nullptr to detach the tracer
  // (registered metrics stay registered). The Observability object must
  // outlive the testbed or a subsequent AttachObservability(nullptr).
  void AttachObservability(obs::Observability* obs);

 private:
  void BuildTopology();
  void BuildServices();
  void InstallTaiChi();
  void WireServiceProbe(size_t service_index);
  bool TaiChiQuiesced() const;
  void ScheduleDrainCheck();
  void FinishDisableTaiChi();
  void InjectHandle(sim::PacketHandle h);
  void DispatchFromDp(sim::PacketHandle h, sim::SimTime completed);

  TestbedConfig config_;
  sim::Simulation sim_;
  sim::Rng rng_;
  obs::FlowMonitor flow_rx_;
  obs::FlowMonitor flow_dp_;
  obs::FlowMonitor flow_tx_;
  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<os::Kernel> kernel_;
  std::unique_ptr<core::TaiChi> taichi_;
  std::unique_ptr<cp::DeviceManager> device_manager_;

  os::CpuSet dp_set_;
  os::CpuSet cp_set_;
  os::CpuSet cp_task_cpus_;
  std::vector<os::CpuId> active_dp_cpus_;
  std::vector<uint32_t> queues_;  // queue id per active DP CPU.
  std::vector<std::unique_ptr<dp::PollService>> services_;
  std::vector<std::unique_ptr<dp::OpenLoopSource>> background_;
  std::vector<double> background_base_pps_;  // Start-time rate per source.

  std::unordered_map<uint16_t, Sink> vm_sinks_;
  std::unordered_map<uint16_t, Sink> wire_sinks_;
  std::unordered_map<uint16_t, Sink> storage_sinks_;
  std::vector<os::Task*> monitor_tasks_;  // Long-lived background CP fleet.
  os::KernelSpinlock monitor_lock_{"monitor_log_lock"};
  obs::Observability* obs_ = nullptr;
  uint32_t taichi_generation_ = 0;
  bool draining_ = false;
  bool dp_boost_ = false;
  // Repeating 200 µs quiescence poll while a TaiChi disable drains.
  sim::EventId drain_event_ = sim::kInvalidEventId;
};

}  // namespace taichi::exp

#endif  // SRC_EXP_TESTBED_H_
