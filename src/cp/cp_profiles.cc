#include "src/cp/cp_profiles.h"

namespace taichi::cp {

sim::Duration SampleRoutineDuration(const CpWorkProfile& profile, sim::Rng& rng) {
  if (rng.Bernoulli(profile.short_routine_prob)) {
    return rng.UniformDuration(profile.short_min, profile.short_max);
  }
  double ms = rng.BoundedPareto(sim::ToMillis(profile.long_min),
                                sim::ToMillis(profile.long_max), profile.long_alpha);
  return sim::MillisF(ms);
}

os::Action CpTaskBehavior::Next(os::Kernel& /*kernel*/, os::Task& /*task*/,
                                const os::ActionResult& /*last*/) {
  switch (phase_) {
    case Phase::kUser: {
      // Decide this iteration's syscall up front.
      if (rng_.Bernoulli(profile_.syscall_prob)) {
        routine_len_ = SampleRoutineDuration(profile_, rng_);
        locked_routine_ = profile_.lock != nullptr && rng_.Bernoulli(profile_.lock_prob);
        phase_ = locked_routine_ ? Phase::kLockAcquire : Phase::kRoutine;
      } else {
        routine_len_ = 0;
        phase_ = Phase::kSleep;
      }
      return os::Action::Compute(rng_.ExpDuration(profile_.user_compute_mean));
    }
    case Phase::kLockAcquire:
      phase_ = Phase::kRoutine;
      return os::Action::LockAcquire(profile_.lock);
    case Phase::kRoutine:
      phase_ = locked_routine_ ? Phase::kLockRelease : Phase::kSleep;
      return os::Action::KernelSection(routine_len_);
    case Phase::kLockRelease:
      phase_ = Phase::kSleep;
      return os::Action::LockRelease(profile_.lock);
    case Phase::kSleep: {
      ++completed_;
      if (iterations_ != 0 && completed_ >= iterations_) {
        phase_ = Phase::kDone;
        return os::Action::Exit();
      }
      phase_ = Phase::kUser;
      if (profile_.sleep_mean > 0) {
        return os::Action::Sleep(rng_.ExpDuration(profile_.sleep_mean));
      }
      return os::Action::Yield();  // Fair sharing between iterations.
    }
    case Phase::kDone:
      return os::Action::Exit();
  }
  return os::Action::Exit();
}

std::unique_ptr<CpTaskBehavior> MakeCpTask(const CpWorkProfile& profile, uint64_t iterations,
                                           uint64_t seed) {
  return std::make_unique<CpTaskBehavior>(profile, iterations, seed);
}

}  // namespace taichi::cp
