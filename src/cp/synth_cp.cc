#include "src/cp/synth_cp.h"

#include <string>

#include "src/os/behaviors.h"

namespace taichi::cp {

// One synth_cp task: `iterations` rounds of user compute + kernel routine,
// sized so total demand matches the configuration.
class SynthCpBenchmark::TaskBody : public os::Behavior {
 public:
  TaskBody(SynthCpBenchmark* parent, uint64_t seed) : parent_(parent), rng_(seed) {
    const SynthCpConfig& cfg = parent_->config_;
    per_iter_ = cfg.task_demand / cfg.iterations;
    kernel_part_ = static_cast<sim::Duration>(per_iter_ * cfg.kernel_fraction);
    user_part_ = per_iter_ - kernel_part_;
  }

  os::Action Next(os::Kernel&, os::Task&, const os::ActionResult&) override {
    const SynthCpConfig& cfg = parent_->config_;
    switch (phase_) {
      case Phase::kUser:
        if (iter_ >= cfg.iterations) {
          return os::Action::Exit();
        }
        locked_ = rng_.Bernoulli(cfg.lock_prob);
        phase_ = locked_ ? Phase::kLock : Phase::kRoutine;
        // Jitter the split a little so tasks do not run in lockstep.
        return os::Action::Compute(rng_.UniformDuration(user_part_ * 9 / 10,
                                                        user_part_ * 11 / 10));
      case Phase::kLock:
        phase_ = Phase::kRoutine;
        return os::Action::LockAcquire(&parent_->driver_lock_);
      case Phase::kRoutine:
        phase_ = locked_ ? Phase::kUnlock : Phase::kNextIter;
        return os::Action::KernelSection(kernel_part_);
      case Phase::kUnlock:
        phase_ = Phase::kNextIter;
        return os::Action::LockRelease(&parent_->driver_lock_);
      case Phase::kNextIter:
        ++iter_;
        phase_ = Phase::kUser;
        return os::Action::Yield();
    }
    return os::Action::Exit();
  }

 private:
  enum class Phase : uint8_t { kUser, kLock, kRoutine, kUnlock, kNextIter };

  SynthCpBenchmark* parent_;
  sim::Rng rng_;
  sim::Duration per_iter_ = 0;
  sim::Duration kernel_part_ = 0;
  sim::Duration user_part_ = 0;
  int iter_ = 0;
  bool locked_ = false;
  Phase phase_ = Phase::kUser;
};

void SynthCpBenchmark::Launch(int concurrency, os::CpuSet cpus) {
  for (int i = 0; i < concurrency; ++i) {
    ++launched_;
    auto body = std::make_unique<TaskBody>(this, seed_ + launched_);
    os::Task* task = kernel_->Spawn("synth_cp_" + std::to_string(launched_), std::move(body),
                                    cpus, os::Priority::kNormal);
    (void)task;
  }
  // Completion is observed through the kernel's task-exit handler, which the
  // caller must chain to RecordExit; to keep the benchmark self-contained we
  // install it here (overwriting any previous handler).
  kernel_->set_task_exit_handler([this](os::Task& t) {
    if (t.name().rfind("synth_cp_", 0) == 0) {
      ++done_;
      exec_time_ms_.Add(sim::ToMillis(t.exited_at() - t.spawned_at()));
    }
  });
}

}  // namespace taichi::cp
