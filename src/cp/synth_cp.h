// The synth_cp benchmark (§6.1): synthetic CP tasks with a fixed total CPU
// demand (default 50 ms) that exercise non-preemptible kernel routines, with
// high-concurrency support for stress-testing the control plane.
#ifndef SRC_CP_SYNTH_CP_H_
#define SRC_CP_SYNTH_CP_H_

#include <memory>

#include "src/cp/cp_profiles.h"
#include "src/os/kernel.h"
#include "src/sim/stats.h"

namespace taichi::cp {

struct SynthCpConfig {
  // Total CPU demand per task.
  sim::Duration task_demand = sim::Millis(50);
  // Iterations the demand is split into (user compute + kernel routine each).
  int iterations = 20;
  // Fraction of each iteration spent in the non-preemptible kernel routine.
  double kernel_fraction = 0.3;
  // Probability a routine runs under the shared driver lock.
  double lock_prob = 0.3;
};

// Spawns and tracks synth_cp tasks; execution time = spawn to exit, the
// metric of Fig. 11.
class SynthCpBenchmark {
 public:
  SynthCpBenchmark(os::Kernel* kernel, SynthCpConfig config, uint64_t seed)
      : kernel_(kernel), config_(config), seed_(seed) {}

  // Launches `concurrency` tasks affined to `cpus`, spread evenly.
  void Launch(int concurrency, os::CpuSet cpus);

  bool AllDone() const { return done_ == launched_; }
  int launched() const { return launched_; }
  int done() const { return done_; }
  // Per-task wall execution times, in milliseconds.
  const sim::Summary& exec_time_ms() const { return exec_time_ms_; }

  os::KernelSpinlock& driver_lock() { return driver_lock_; }

  void RegisterMetrics(obs::MetricsRegistry& registry,
                       const std::string& prefix = "cp.synth") const {
    registry.AddGauge(prefix + ".launched", [this] { return static_cast<double>(launched_); });
    registry.AddGauge(prefix + ".done", [this] { return static_cast<double>(done_); });
    registry.AddSummary(prefix + ".exec_time_ms", &exec_time_ms_);
    driver_lock_.RegisterMetrics(registry);
  }

 private:
  class TaskBody;

  os::Kernel* kernel_;
  SynthCpConfig config_;
  uint64_t seed_;
  os::KernelSpinlock driver_lock_{"synth_cp_driver_lock"};
  int launched_ = 0;
  int done_ = 0;
  sim::Summary exec_time_ms_;
};

}  // namespace taichi::cp

#endif  // SRC_CP_SYNTH_CP_H_
