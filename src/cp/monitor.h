// Background control-plane load: performance monitors and CSP orchestration
// agents (§2.3) that periodically wake, collect metrics, write logs (kernel
// routines) and go back to sleep. These provide the steady CP load present
// on every production SmartNIC.
#ifndef SRC_CP_MONITOR_H_
#define SRC_CP_MONITOR_H_

#include <memory>
#include <vector>

#include "src/cp/cp_profiles.h"
#include "src/os/kernel.h"

namespace taichi::cp {

struct MonitorFleetConfig {
  int count = 6;
  // Wake period per monitor.
  sim::Duration period_mean = sim::Millis(5);
  // Work per wake: metric collection (user) + log flush (kernel routine).
  sim::Duration user_work_mean = sim::Micros(60);
  double long_routine_prob = 0.02;  // Occasional ms-scale log rotation/flush.
};

// Spawns `count` monitor tasks on `cpus`. Returns the spawned tasks.
std::vector<os::Task*> SpawnMonitorFleet(os::Kernel* kernel, const MonitorFleetConfig& config,
                                         os::CpuSet cpus, os::KernelSpinlock* shared_lock,
                                         uint64_t seed);

}  // namespace taichi::cp

#endif  // SRC_CP_MONITOR_H_
