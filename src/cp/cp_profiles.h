// Control-plane task behaviors.
//
// Production CP tasks (§2.3/§3.2) interleave user-space computation with
// syscalls that enter ms-scale non-preemptible kernel routines, frequently
// under driver spinlocks. The routine-duration sampler reproduces the Fig. 5
// shape: most long routines fall in the 1-5 ms band (94.5% of >1 ms
// occurrences) with a heavy tail out to ~67 ms.
#ifndef SRC_CP_CP_PROFILES_H_
#define SRC_CP_CP_PROFILES_H_

#include <memory>

#include "src/os/behaviors.h"
#include "src/os/spinlock.h"
#include "src/sim/random.h"
#include "src/sim/time.h"

namespace taichi::cp {

struct CpWorkProfile {
  // Per-iteration user-space compute (exponential around the mean).
  sim::Duration user_compute_mean = sim::Micros(400);

  // Probability that an iteration performs a syscall entering a
  // non-preemptible kernel routine.
  double syscall_prob = 1.0;

  // Routine duration mixture: with `short_routine_prob` a short routine
  // (uniform [short_min, short_max]); otherwise a long one drawn from a
  // bounded Pareto over [long_min, long_max] with tail index `long_alpha`.
  // alpha = 1.8 gives P(>5ms | >1ms) ~ 5.5%, matching Fig. 5.
  double short_routine_prob = 0.90;
  sim::Duration short_min = sim::Micros(5);
  sim::Duration short_max = sim::Micros(400);
  sim::Duration long_min = sim::Millis(1);
  sim::Duration long_max = sim::Millis(67);
  double long_alpha = 1.8;

  // Probability that a kernel routine runs under the shared driver lock.
  double lock_prob = 0.35;
  os::KernelSpinlock* lock = nullptr;

  // Optional inter-iteration sleep (0 = none); used by monitors.
  sim::Duration sleep_mean = 0;
};

// Samples one kernel-routine duration from the Fig. 5 mixture.
sim::Duration SampleRoutineDuration(const CpWorkProfile& profile, sim::Rng& rng);

// A CP task running `iterations` iterations of the profile (0 = forever).
class CpTaskBehavior : public os::Behavior {
 public:
  CpTaskBehavior(CpWorkProfile profile, uint64_t iterations, uint64_t seed)
      : profile_(profile), iterations_(iterations), rng_(seed) {}

  os::Action Next(os::Kernel& kernel, os::Task& task, const os::ActionResult& last) override;

  uint64_t completed_iterations() const { return completed_; }

 private:
  enum class Phase : uint8_t { kUser, kLockAcquire, kRoutine, kLockRelease, kSleep, kDone };

  CpWorkProfile profile_;
  uint64_t iterations_;
  sim::Rng rng_;
  uint64_t completed_ = 0;
  Phase phase_ = Phase::kUser;
  bool locked_routine_ = false;
  sim::Duration routine_len_ = 0;
};

// Convenience factory.
std::unique_ptr<CpTaskBehavior> MakeCpTask(const CpWorkProfile& profile, uint64_t iterations,
                                           uint64_t seed);

}  // namespace taichi::cp

#endif  // SRC_CP_CP_PROFILES_H_
