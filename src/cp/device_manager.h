// Device-management CP tasks and the VM startup workflow (§2.3, red path of
// Fig. 1c): cluster manager command -> parse -> per-device initialization
// under driver locks (non-preemptible kernel routines) -> coordinate with
// the data plane -> notify QEMU. VM startup latency is dominated by this
// workflow, which is why it is the paper's headline control-plane SLO.
#ifndef SRC_CP_DEVICE_MANAGER_H_
#define SRC_CP_DEVICE_MANAGER_H_

#include <functional>
#include <memory>

#include "src/os/kernel.h"
#include "src/sim/random.h"
#include "src/sim/stats.h"

namespace taichi::cp {

struct VmStartupConfig {
  // Devices provisioned per VM: NIC queues + block devices (Table 4 lists
  // one dual-queue virtio-net and four virtio-blk). Scaled by instance
  // density in the density experiments.
  int devices_per_vm = 6;
  sim::Duration parse_cost = sim::Micros(800);
  // Per-device init: user-space preparation plus a kernel routine under the
  // per-device-class driver lock.
  sim::Duration dev_user_cost = sim::Millis(1);
  sim::Duration dev_kernel_min = sim::Micros(200);
  sim::Duration dev_kernel_max = sim::Micros(600);
  // Driver locks are sharded by device class (virtio-net queues, virtio-blk
  // devices, ...): concurrent startups contend within a class only.
  int lock_shards = 4;
  // Data-plane coordination per device (ring/queue setup handshake).
  sim::Duration dp_coord_cost = sim::Micros(120);
  // Final QEMU notification (host IPC).
  sim::Duration qemu_notify_cost = sim::Micros(200);
  // Extra per-interaction penalty when DP-CP IPC is broken (type-2: every
  // native IPC becomes an RPC through the guest boundary).
  sim::Duration ipc_penalty = 0;
};

// Spawns VM-startup workflows and records their completion latency.
class DeviceManager {
 public:
  DeviceManager(os::Kernel* kernel, VmStartupConfig config, uint64_t seed);

  // Starts one VM-creation workflow on `cpus`. `done` (optional) fires with
  // the startup latency when the workflow completes.
  void StartVm(os::CpuSet cpus, std::function<void(sim::Duration)> done = nullptr);

  int started() const { return started_; }
  int completed() const { return completed_; }
  bool AllDone() const { return started_ == completed_; }
  // VM startup latencies, in milliseconds (Fig. 2 / Fig. 17 metric).
  const sim::Summary& startup_ms() const { return startup_ms_; }

  void RegisterMetrics(obs::MetricsRegistry& registry,
                       const std::string& prefix = "cp.vm_startup") const {
    registry.AddGauge(prefix + ".started", [this] { return static_cast<double>(started_); });
    registry.AddGauge(prefix + ".completed", [this] { return static_cast<double>(completed_); });
    registry.AddSummary(prefix + ".latency_ms", &startup_ms_);
    for (const auto& lock : driver_locks_) {
      lock->RegisterMetrics(registry);
    }
  }

  os::KernelSpinlock& driver_lock(int device_index);
  const VmStartupConfig& config() const { return config_; }

 private:
  class Workflow;

  os::Kernel* kernel_;
  VmStartupConfig config_;
  sim::Rng rng_;
  std::vector<std::unique_ptr<os::KernelSpinlock>> driver_locks_;
  int started_ = 0;
  int completed_ = 0;
  sim::Summary startup_ms_;
};

}  // namespace taichi::cp

#endif  // SRC_CP_DEVICE_MANAGER_H_
