#include "src/cp/device_manager.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/os/behaviors.h"

namespace taichi::cp {

DeviceManager::DeviceManager(os::Kernel* kernel, VmStartupConfig config, uint64_t seed)
    : kernel_(kernel), config_(config), rng_(seed) {
  for (int i = 0; i < std::max(1, config_.lock_shards); ++i) {
    driver_locks_.push_back(
        std::make_unique<os::KernelSpinlock>("driver_lock_" + std::to_string(i)));
  }
}

os::KernelSpinlock& DeviceManager::driver_lock(int device_index) {
  return *driver_locks_[device_index % driver_locks_.size()];
}

class DeviceManager::Workflow : public os::Behavior {
 public:
  Workflow(DeviceManager* parent, uint64_t seed,
           std::function<void(sim::Duration)> done)
      : parent_(parent), rng_(seed), done_(std::move(done)) {}

  os::Action Next(os::Kernel& kernel, os::Task& task, const os::ActionResult&) override {
    const VmStartupConfig& cfg = parent_->config_;
    switch (phase_) {
      case Phase::kParse:
        start_ = task.spawned_at();
        phase_ = Phase::kDevUser;
        return os::Action::Compute(cfg.parse_cost);
      case Phase::kDevUser:
        if (device_ >= cfg.devices_per_vm) {
          phase_ = Phase::kNotify;
          return os::Action::Compute(cfg.qemu_notify_cost + cfg.ipc_penalty);
        }
        phase_ = Phase::kDevLock;
        return os::Action::Compute(cfg.dev_user_cost);
      case Phase::kDevLock:
        phase_ = Phase::kDevKernel;
        return os::Action::LockAcquire(&parent_->driver_lock(device_));
      case Phase::kDevKernel:
        phase_ = Phase::kDevUnlock;
        return os::Action::KernelSection(
            rng_.UniformDuration(cfg.dev_kernel_min, cfg.dev_kernel_max));
      case Phase::kDevUnlock:
        phase_ = Phase::kDpCoord;
        return os::Action::LockRelease(&parent_->driver_lock(device_));
      case Phase::kDpCoord:
        ++device_;
        phase_ = Phase::kDevUser;
        // Queue/ring setup handshake with the data-plane service.
        return os::Action::Compute(cfg.dp_coord_cost + cfg.ipc_penalty);
      case Phase::kNotify: {
        sim::Duration latency = kernel.sim().Now() - start_;
        parent_->startup_ms_.Add(sim::ToMillis(latency));
        ++parent_->completed_;
        if (done_) {
          done_(latency);
        }
        return os::Action::Exit();
      }
    }
    return os::Action::Exit();
  }

 private:
  enum class Phase : uint8_t {
    kParse,
    kDevUser,
    kDevLock,
    kDevKernel,
    kDevUnlock,
    kDpCoord,
    kNotify,
  };

  DeviceManager* parent_;
  sim::Rng rng_;
  std::function<void(sim::Duration)> done_;
  sim::SimTime start_ = 0;
  int device_ = 0;
  Phase phase_ = Phase::kParse;
};

void DeviceManager::StartVm(os::CpuSet cpus, std::function<void(sim::Duration)> done) {
  ++started_;
  auto workflow = std::make_unique<Workflow>(this, rng_.Next(), std::move(done));
  kernel_->Spawn("vm_startup_" + std::to_string(started_), std::move(workflow), cpus,
                 os::Priority::kNormal);
}

}  // namespace taichi::cp
