#include "src/cp/monitor.h"

#include <string>

namespace taichi::cp {

std::vector<os::Task*> SpawnMonitorFleet(os::Kernel* kernel, const MonitorFleetConfig& config,
                                         os::CpuSet cpus, os::KernelSpinlock* shared_lock,
                                         uint64_t seed) {
  std::vector<os::Task*> tasks;
  for (int i = 0; i < config.count; ++i) {
    CpWorkProfile profile;
    profile.user_compute_mean = config.user_work_mean;
    profile.syscall_prob = 1.0;
    profile.short_routine_prob = 1.0 - config.long_routine_prob;
    profile.short_min = sim::Micros(3);
    profile.short_max = sim::Micros(50);
    profile.long_min = sim::Millis(1);
    profile.long_max = sim::Millis(15);
    profile.long_alpha = 1.8;
    profile.lock = shared_lock;
    profile.lock_prob = shared_lock != nullptr ? 0.2 : 0.0;
    profile.sleep_mean = config.period_mean;
    tasks.push_back(kernel->Spawn("monitor_" + std::to_string(i),
                                  MakeCpTask(profile, /*iterations=*/0, seed + i), cpus,
                                  os::Priority::kNormal));
  }
  return tasks;
}

}  // namespace taichi::cp
