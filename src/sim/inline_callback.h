// Move-only type-erased callables with inline storage, sized for the event
// queue's and the packet path's hot closures.
#ifndef SRC_SIM_INLINE_CALLBACK_H_
#define SRC_SIM_INLINE_CALLBACK_H_

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace taichi::sim {

// The closure type behind every scheduled event and every hot sink. Unlike
// std::function it is move-only (so captures can own resources) and its
// inline buffer is sized for the simulator's real captures — `this` plus a
// packet-pool handle plus a couple of ids — so the schedule → fire cycle and
// the per-burst sink dispatch never touch the allocator. libstdc++'s
// std::function spills to the heap past 16 bytes, which put one malloc/free
// pair on the critical path of nearly every simulated IRQ, poll tick, IPI
// and context switch.
//
// Storage layout: two function pointers (invoke, manage) plus the buffer.
// Trivially-copyable captures — the overwhelmingly common case: lambdas over
// pointers, ids and PODs — set manage == nullptr, making moves a memcpy and
// destruction a no-op, with no indirect call. Non-trivial captures get a
// manage thunk that move-constructs + destroys. Captures larger than the
// buffer fall back to a single heap box (the buffer then holds one pointer);
// a static_assert caps how large such a capture may get so an accidentally
// huge capture is a compile error, not a silent slow path.
template <typename Sig>
class InlineFunction;

template <typename R, typename... Args>
class InlineFunction<R(Args...)> {
 public:
  // Large enough for `this` + a 32-bit packet handle + a queue id + a
  // timestamp plus slack — the biggest capture on the per-packet and
  // per-event paths since the packet arena replaced by-value IoPacket
  // captures. Bench + tests assert the hot-path captures stay inline; bump
  // deliberately if a new hot capture outgrows it.
  static constexpr size_t kInlineBytes = 48;
  // Oversized captures heap-box, but past this they are almost certainly a
  // bug (accidentally capturing a container by value).
  static constexpr size_t kMaxCallableBytes = 1024;

  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT: mirror std::function.

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT: implicit, lambdas convert at call sites.
    static_assert(sizeof(D) <= kMaxCallableBytes,
                  "callback capture is implausibly large; capture by pointer");
    if constexpr (FitsInline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      invoke_ = [](void* p, Args... args) -> R {
        return (*static_cast<D*>(p))(std::forward<Args>(args)...);
      };
      if constexpr (!TriviallyManaged<D>()) {
        manage_ = &InlineManage<D>;
      }
    } else {
      Boxed(buf_) = new D(std::forward<F>(f));
      invoke_ = [](void* p, Args... args) -> R {
        return (*static_cast<D*>(Boxed(p)))(std::forward<Args>(args)...);
      };
      manage_ = &HeapManage<D>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { MoveFrom(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) noexcept {
    Reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  R operator()(Args... args) {
    return invoke_(buf_, std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

 private:
  using InvokeFn = R (*)(void*, Args...);
  // dst == nullptr: destroy src. Else: move-construct dst from src and
  // destroy src (one indirect call covers both move and destroy).
  using ManageFn = void (*)(void* dst, void* src);

  template <typename D>
  static constexpr bool FitsInline() {
    return sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }
  template <typename D>
  static constexpr bool TriviallyManaged() {
    return std::is_trivially_copyable_v<D> && std::is_trivially_destructible_v<D>;
  }

  // The heap-box pointer lives at the front of the buffer.
  static void*& Boxed(void* buf) { return *static_cast<void**>(buf); }

  template <typename D>
  static void InlineManage(void* dst, void* src) {
    D* s = static_cast<D*>(src);
    if (dst != nullptr) {
      ::new (dst) D(std::move(*s));
    }
    s->~D();
  }

  template <typename D>
  static void HeapManage(void* dst, void* src) {
    if (dst != nullptr) {
      Boxed(dst) = Boxed(src);  // Transfer the box; no reallocation.
    } else {
      delete static_cast<D*>(Boxed(src));
    }
  }

  void MoveFrom(InlineFunction& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (invoke_ != nullptr) {
      if (manage_ == nullptr) {
        // Trivial captures move as a fixed-size copy of the whole buffer;
        // the bytes past the capture are indeterminate but never read
        // through invoke_. GCC flags the dead tail bytes.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
        std::memcpy(buf_, other.buf_, kInlineBytes);
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
      } else {
        manage_(buf_, other.buf_);
      }
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  void Reset() noexcept {
    if (manage_ != nullptr) {
      manage_(nullptr, buf_);
    }
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
  alignas(std::max_align_t) std::byte buf_[kInlineBytes];
};

// The event queue's closure type. Every scheduled event is one of these.
using InlineCallback = InlineFunction<void()>;

// A non-owning view of a callable: two words, trivially copyable, nothing to
// allocate or destroy. This is the right parameter type for synchronous
// fan-out APIs (ThreadPool::ParallelFor and friends) where the callable
// outlives the call by construction — the std::function it replaces put a
// type-erasure allocation + atomic refcount churn on every epoch step. The
// referenced callable must stay alive for the duration of every invocation;
// do not store a FunctionRef.
template <typename Sig>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  FunctionRef() = default;

  template <typename F, typename D = std::remove_reference_t<F>,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, FunctionRef> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  FunctionRef(F&& f) noexcept  // NOLINT: implicit, lambdas convert at call sites.
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        invoke_([](void* obj, Args... args) -> R {
          return (*static_cast<D*>(obj))(std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return invoke_(obj_, std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

 private:
  void* obj_ = nullptr;
  R (*invoke_)(void*, Args...) = nullptr;
};

}  // namespace taichi::sim

#endif  // SRC_SIM_INLINE_CALLBACK_H_
