// Move-only type-erased callable with inline storage, sized for the event
// queue's hot path.
#ifndef SRC_SIM_INLINE_CALLBACK_H_
#define SRC_SIM_INLINE_CALLBACK_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace taichi::sim {

// The closure type behind every scheduled event. Unlike std::function it is
// move-only (so captures can own resources) and its inline buffer is sized
// for the simulator's real captures — `this` plus a copied IoPacket plus a
// couple of ids (~88 bytes) — so the schedule → fire cycle never touches the
// allocator. libstdc++'s std::function spills to the heap past 16 bytes,
// which put one malloc/free pair on the critical path of nearly every
// simulated IRQ, poll tick, IPI and context switch.
//
// Storage layout: two function pointers (invoke, manage) plus the buffer.
// Trivially-copyable captures — the overwhelmingly common case: lambdas over
// pointers, ids and PODs — set manage == nullptr, making moves a memcpy and
// destruction a no-op, with no indirect call. Non-trivial captures get a
// manage thunk that move-constructs + destroys. Captures larger than the
// buffer fall back to a single heap box (the buffer then holds one pointer);
// a static_assert caps how large such a capture may get so an accidentally
// huge capture is a compile error, not a silent slow path.
class InlineCallback {
 public:
  // Large enough for `this` + an hw::IoPacket (80 bytes with its FlowKey) +
  // two words, the biggest capture on a per-packet path. Bench + tests assert
  // the hot-path captures stay inline; bump deliberately if a new hot capture
  // outgrows it.
  static constexpr size_t kInlineBytes = 104;
  // Oversized captures heap-box, but past this they are almost certainly a
  // bug (accidentally capturing a container by value).
  static constexpr size_t kMaxCallableBytes = 1024;

  InlineCallback() noexcept = default;
  InlineCallback(std::nullptr_t) noexcept {}  // NOLINT: mirror std::function.

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineCallback> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineCallback(F&& f) {  // NOLINT: implicit, lambdas convert at call sites.
    static_assert(sizeof(D) <= kMaxCallableBytes,
                  "callback capture is implausibly large; capture by pointer");
    if constexpr (FitsInline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      invoke_ = [](void* p) { (*static_cast<D*>(p))(); };
      if constexpr (!TriviallyManaged<D>()) {
        manage_ = &InlineManage<D>;
      }
    } else {
      Boxed(buf_) = new D(std::forward<F>(f));
      invoke_ = [](void* p) { (*static_cast<D*>(Boxed(p)))(); };
      manage_ = &HeapManage<D>;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept { MoveFrom(other); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineCallback& operator=(std::nullptr_t) noexcept {
    Reset();
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { Reset(); }

  void operator()() { invoke_(buf_); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

 private:
  using InvokeFn = void (*)(void*);
  // dst == nullptr: destroy src. Else: move-construct dst from src and
  // destroy src (one indirect call covers both move and destroy).
  using ManageFn = void (*)(void* dst, void* src);

  template <typename D>
  static constexpr bool FitsInline() {
    return sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }
  template <typename D>
  static constexpr bool TriviallyManaged() {
    return std::is_trivially_copyable_v<D> && std::is_trivially_destructible_v<D>;
  }

  // The heap-box pointer lives at the front of the buffer.
  static void*& Boxed(void* buf) { return *static_cast<void**>(buf); }

  template <typename D>
  static void InlineManage(void* dst, void* src) {
    D* s = static_cast<D*>(src);
    if (dst != nullptr) {
      ::new (dst) D(std::move(*s));
    }
    s->~D();
  }

  template <typename D>
  static void HeapManage(void* dst, void* src) {
    if (dst != nullptr) {
      Boxed(dst) = Boxed(src);  // Transfer the box; no reallocation.
    } else {
      delete static_cast<D*>(Boxed(src));
    }
  }

  void MoveFrom(InlineCallback& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (invoke_ != nullptr) {
      if (manage_ == nullptr) {
        std::memcpy(buf_, other.buf_, kInlineBytes);
      } else {
        manage_(buf_, other.buf_);
      }
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  void Reset() noexcept {
    if (manage_ != nullptr) {
      manage_(nullptr, buf_);
    }
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
  alignas(std::max_align_t) std::byte buf_[kInlineBytes];
};

}  // namespace taichi::sim

#endif  // SRC_SIM_INLINE_CALLBACK_H_
