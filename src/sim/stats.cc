#include "src/sim/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace taichi::sim {

void Summary::Add(double sample) {
  samples_.push_back(sample);
  sum_ += sample;
  const double delta = sample - running_mean_;
  running_mean_ += delta / static_cast<double>(samples_.size());
  m2_ += delta * (sample - running_mean_);
  sorted_valid_ = false;
}

double Summary::min() const {
  assert(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  assert(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::mean() const {
  assert(!samples_.empty());
  return sum_ / static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  if (samples_.size() < 2) {
    return 0;
  }
  double var = m2_ / static_cast<double>(samples_.size() - 1);
  return var > 0 ? std::sqrt(var) : 0;
}

double Summary::mdev() const {
  if (samples_.empty()) {
    return 0;
  }
  double m = mean();
  double acc = 0;
  for (double s : samples_) {
    acc += std::fabs(s - m);
  }
  return acc / static_cast<double>(samples_.size());
}

void Summary::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

const std::vector<double>& Summary::SortedSamples() const {
  EnsureSorted();
  return sorted_;
}

double Summary::Percentile(double p) const {
  assert(!samples_.empty());
  EnsureSorted();
  p = std::clamp(p, 0.0, 100.0);
  if (sorted_.size() == 1) {
    return sorted_[0];
  }
  double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

void Summary::Clear() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
  sum_ = 0;
  running_mean_ = 0;
  m2_ = 0;
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::Add(double sample) {
  ++total_;
  if (sample < lo_) {
    ++underflow_;
  } else if (sample >= hi_) {
    ++overflow_;
  } else {
    size_t idx = static_cast<size_t>((sample - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);
    ++counts_[idx];
  }
}

double Histogram::bin_lo(size_t i) const { return lo_ + width_ * static_cast<double>(i); }
double Histogram::bin_hi(size_t i) const { return lo_ + width_ * static_cast<double>(i + 1); }

double CdfBuilder::FractionBelow(double x) const {
  const std::vector<double>& sorted = summary_.SortedSamples();
  if (sorted.empty()) {
    return 0;
  }
  const auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
  return static_cast<double>(it - sorted.begin()) / static_cast<double>(sorted.size());
}

}  // namespace taichi::sim
