#include "src/sim/event_queue.h"

#include <cassert>
#include <utility>

namespace taichi::sim {

EventId EventQueue::Schedule(SimTime when, std::function<void()> fn) {
  EventId id = next_id_++;
  heap_.push(Entry{when, id, std::move(fn)});
  pending_.insert(id);
  return id;
}

bool EventQueue::Cancel(EventId id) {
  // The heap entry is skipped lazily when it reaches the top.
  return pending_.erase(id) > 0;
}

void EventQueue::SkimCancelled() {
  while (!heap_.empty() && !pending_.contains(heap_.top().id)) {
    heap_.pop();
  }
}

SimTime EventQueue::NextTime() const {
  const_cast<EventQueue*>(this)->SkimCancelled();
  assert(!heap_.empty());
  return heap_.top().when;
}

EventQueue::Fired EventQueue::PopNext() {
  SkimCancelled();
  assert(!heap_.empty());
  // priority_queue::top() returns const&; the entry is moved out via the
  // usual const_cast idiom, then immediately popped.
  Entry& top = const_cast<Entry&>(heap_.top());
  Fired fired{top.when, top.id, std::move(top.fn)};
  pending_.erase(fired.id);
  heap_.pop();
  return fired;
}

}  // namespace taichi::sim
