#include "src/sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace taichi::sim {

EventId EventQueue::ScheduleSlot(SimTime when, Duration period, InlineCallback fn) {
  uint32_t slot;
  if (free_head_ != kNoFreeSlot) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNoFreeSlot;
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
    slots_.back().gen = gen_floor_;
  }
  Slot& s = slots_[slot];
  s.period = period;
  s.fn = std::move(fn);
  const unsigned __int128 key = MakeKey(when, next_seq_++);
  if (calendar_) {
    InsertEntry(key, slot);
  } else {
    PushHeap(key, slot);
    if (engage_threshold_ != 0 && heap_.size() >= engage_threshold_) {
      EngageCalendar();
    }
  }
  return MakeId(slot, s.gen);
}

size_t EventQueue::LiveSlotOf(EventId id) const {
  const size_t slot = (id & 0xffffffffu) - 1;  // id 0 wraps to SIZE_MAX.
  if (slot >= slots_.size()) {
    return slots_.size();
  }
  const Slot& s = slots_[slot];
  if (s.gen != static_cast<uint32_t>(id >> 32) || s.heap_pos == kNotInHeap) {
    return slots_.size();
  }
  return slot;
}

bool EventQueue::IsPending(EventId id) const { return LiveSlotOf(id) < slots_.size(); }

bool EventQueue::Reschedule(EventId id, SimTime when) {
  const size_t slot = LiveSlotOf(id);
  if (slot >= slots_.size()) {
    return false;
  }
  Slot& s = slots_[slot];
  if (!calendar_) {
    const size_t pos = s.heap_pos;
    // A fresh sequence number, exactly as Cancel + Schedule would have
    // assigned: the re-keyed event orders after everything already scheduled
    // at the same time. This is what keeps the conversion byte-identical.
    heap_[pos].key = MakeKey(when, next_seq_++);
    SiftUp(pos);
    SiftDown(slots_[slot].heap_pos);
    return true;
  }
  // Calendar mode: the new time may move the entry across the wheel/heap
  // boundary, so detach and re-route. Same fresh-seq ordering either way.
  if (s.wheel_bucket != kNotInBucket) {
    RemoveWheelEntry(static_cast<uint32_t>(slot));
  } else {
    RemoveFromHeap(s.heap_pos);
  }
  InsertEntry(MakeKey(when, next_seq_++), static_cast<uint32_t>(slot));
  return true;
}

bool EventQueue::Cancel(EventId id) {
  const size_t slot = LiveSlotOf(id);
  if (slot >= slots_.size()) {
    return false;
  }
  Slot& s = slots_[slot];
  if (s.wheel_bucket != kNotInBucket) {
    RemoveWheelEntry(static_cast<uint32_t>(slot));
  } else {
    RemoveFromHeap(s.heap_pos);
  }
  FreeSlot(static_cast<uint32_t>(slot));
  return true;
}

SimTime EventQueue::NextTime() const {
  assert(!empty());
  if (wheel_size_ > 0) {
    // Settle invariant: the cursor entry is live, sorted first, and — since
    // every heap entry is at or past the window end — the global minimum.
    return static_cast<SimTime>(buckets_[cursor_][cursor_pos_].key >> 64);
  }
  return heap_.front().when();
}

EventQueue::Fired EventQueue::PopNext() {
  assert(!empty());
  Fired fired;
  if (calendar_) {
    if (wheel_size_ == 0) {
      RotateWheel();
    }
    const HeapEntry e = buckets_[cursor_][cursor_pos_];
    Slot& s = slots_[e.slot];
    fired = Fired{static_cast<SimTime>(e.key >> 64), MakeId(e.slot, s.gen),
                  std::move(s.fn), s.period > 0};
    ++cursor_pos_;
    --wheel_size_;
    s.wheel_bucket = kNotInBucket;
    s.heap_pos = kNotInHeap;
    if (s.period > 0) {
      // Re-arm the same slot for the next firing; the callback is out with
      // the caller and comes back via RestoreRepeating().
      InsertEntry(MakeKey(fired.when + s.period, next_seq_++), e.slot);
    } else {
      FreeSlot(e.slot);
    }
    SettleCursor();
  } else {
    HeapEntry& e = heap_.front();
    const uint32_t slot = e.slot;
    Slot& s = slots_[slot];
    fired = Fired{e.when(), MakeId(slot, s.gen), std::move(s.fn), s.period > 0};
    if (s.period > 0) {
      // Re-key in place for the next firing; the callback is out with the
      // caller and comes back via RestoreRepeating(). The fresh seq puts the
      // next firing after events the callback schedules at the same time.
      e.key = MakeKey(e.when() + s.period, next_seq_++);
      SiftDownFromTop(0);
    } else {
      RemoveFromHeap(0);
      FreeSlot(slot);
    }
  }
  // Periodic high-water-mark check: after a burst drains, the next check
  // returns the dead tail of the slot table (and applies the calendar
  // disengage hysteresis). ShrinkToFit's own gates make this free in steady
  // state.
  if (++pops_since_shrink_check_ >= kAutoShrinkPopInterval) {
    pops_since_shrink_check_ = 0;
    ShrinkToFit();
  }
  return fired;
}

void EventQueue::RestoreRepeating(EventId id, InlineCallback fn) {
  const size_t slot = LiveSlotOf(id);
  if (slot >= slots_.size()) {
    return;  // Cancelled during its own callback; drop the cycle.
  }
  slots_[slot].fn = std::move(fn);
}

void EventQueue::set_calendar_engage_threshold(size_t threshold) {
  engage_threshold_ = threshold;
  if (calendar_ && threshold == 0) {
    DisengageCalendar();
  } else if (!calendar_ && threshold != 0 && size() >= threshold) {
    EngageCalendar();
  }
}

void EventQueue::ShrinkToFit() {
  // Hysteresis: once the standing population has collapsed well below the
  // engage point, fold the wheel back into the heap so a quiesced node pays
  // no calendar overhead.
  if (calendar_ && size() < engage_threshold_ / 4) {
    DisengageCalendar();
  }
  // Gate: only worth it when the table is large and mostly free.
  if (slots_.size() < kShrinkMinSlots || size() * 4 > slots_.size()) {
    return;
  }
  // Only trailing free slots can go: live slots must keep their index.
  size_t keep = slots_.size();
  while (keep > 0 && slots_[keep - 1].heap_pos == kNotInHeap) {
    --keep;
  }
  if (keep == slots_.size()) {
    return;
  }
  // Every id ever handed out for a dropped slot must stay dead, including
  // against slots regrown later at the same index.
  for (size_t i = keep; i < slots_.size(); ++i) {
    gen_floor_ = std::max(gen_floor_, slots_[i].gen + 1);
  }
  slots_.resize(keep);
  slots_.shrink_to_fit();
  heap_.shrink_to_fit();
  // Rebuild the free list over the surviving slots.
  free_head_ = kNoFreeSlot;
  for (size_t i = keep; i-- > 0;) {
    if (slots_[i].heap_pos == kNotInHeap) {
      slots_[i].next_free = free_head_;
      free_head_ = static_cast<uint32_t>(i);
    }
  }
}

void EventQueue::EngageCalendar() {
  assert(!calendar_);
  const size_t n = heap_.size();
  assert(n > 0);
  // Size the window from the standing population: the bucket count targets
  // ~4 entries per bucket, and the width spreads the 90th-percentile span
  // over the window so one far-out sentinel can't stretch buckets into
  // sorted-vector degeneracy (outliers just overflow into the heap).
  const size_t count = std::clamp(n / 4, kMinBuckets, kMaxBuckets);
  std::vector<SimTime> whens;
  whens.reserve(n);
  for (const HeapEntry& e : heap_) {
    whens.push_back(e.when());
  }
  const size_t p90 = (n * 9) / 10 < n ? (n * 9) / 10 : n - 1;
  std::nth_element(whens.begin(), whens.begin() + p90, whens.end());
  const SimTime t90 = whens[p90];
  const SimTime t_min = *std::min_element(whens.begin(), whens.begin() + p90 + 1);
  const SimTime span = t90 - t_min;
  bucket_width_ = std::max<Duration>(1, static_cast<Duration>(span / count));
  buckets_.assign(count, {});
  cursor_ = count;  // Empty wheel; the first PopNext rotates and fills it.
  cursor_pos_ = 0;
  cursor_sorted_ = false;
  wheel_size_ = 0;
  calendar_ = true;
  ++engages_;
}

void EventQueue::DisengageCalendar() {
  assert(calendar_);
  for (size_t b = cursor_; b < buckets_.size(); ++b) {
    std::vector<HeapEntry>& v = buckets_[b];
    for (size_t j = (b == cursor_ ? cursor_pos_ : 0); j < v.size(); ++j) {
      if (v[j].slot == kTombstoneSlot) {
        continue;
      }
      slots_[v[j].slot].wheel_bucket = kNotInBucket;
      PushHeap(v[j].key, v[j].slot);
    }
  }
  buckets_.clear();
  buckets_.shrink_to_fit();
  wheel_size_ = 0;
  cursor_ = 0;
  cursor_pos_ = 0;
  cursor_sorted_ = false;
  calendar_ = false;
}

void EventQueue::RotateWheel() {
  assert(calendar_ && wheel_size_ == 0 && !heap_.empty());
  const SimTime t = heap_.front().when();
  wheel_origin_ = t - (t % bucket_width_);
  const unsigned __int128 horizon =
      static_cast<unsigned __int128>(wheel_origin_) +
      static_cast<unsigned __int128>(bucket_width_) * buckets_.size();
  cursor_ = 0;
  cursor_pos_ = 0;
  cursor_sorted_ = false;
  // One linear partition pass: window entries scatter into buckets (unsorted
  // — buckets sort lazily when the cursor reaches them), the remainder
  // compacts in place and re-heapifies. O(n) total, no per-entry sifts.
  size_t keep = 0;
  for (size_t i = 0; i < heap_.size(); ++i) {
    const HeapEntry e = heap_[i];
    if (static_cast<unsigned __int128>(e.when()) < horizon) {
      const size_t idx =
          static_cast<size_t>((e.when() - wheel_origin_) / bucket_width_);
      Slot& s = slots_[e.slot];
      s.wheel_bucket = static_cast<uint32_t>(idx);
      s.heap_pos = static_cast<uint32_t>(buckets_[idx].size());
      buckets_[idx].push_back(e);
      ++wheel_size_;
    } else {
      heap_[keep] = e;
      slots_[e.slot].heap_pos = static_cast<uint32_t>(keep);
      ++keep;
    }
  }
  heap_.resize(keep);
  for (size_t i = keep; i-- > 0;) {
    SiftDown(i);
  }
  assert(wheel_size_ > 0);  // The heap minimum is always inside the window.
  SettleCursor();
}

void EventQueue::InsertEntry(unsigned __int128 key, uint32_t slot) {
  assert(calendar_);
  Slot& s = slots_[slot];
  const SimTime when = static_cast<SimTime>(key >> 64);
  size_t idx;
  if (cursor_ >= buckets_.size()) {
    idx = buckets_.size();  // Wheel drained; the next rotation re-windows.
  } else if (when < wheel_origin_) {
    idx = cursor_;  // Late insert (possible via raw Schedule): pops next.
  } else {
    const unsigned __int128 off =
        static_cast<unsigned __int128>(when - wheel_origin_) / bucket_width_;
    idx = off < buckets_.size() ? std::max(static_cast<size_t>(off), cursor_)
                                : buckets_.size();
  }
  if (idx >= buckets_.size()) {
    s.wheel_bucket = kNotInBucket;
    PushHeap(key, slot);
    return;
  }
  std::vector<HeapEntry>& b = buckets_[idx];
  s.wheel_bucket = static_cast<uint32_t>(idx);
  if (idx == cursor_ && cursor_sorted_) {
    // The cursor bucket is already sorted: keep it so with an ordered insert
    // over the undrained suffix, fixing the displaced entries' positions.
    const auto it = std::lower_bound(
        b.begin() + cursor_pos_, b.end(), key,
        [](const HeapEntry& e, unsigned __int128 k) { return e.key < k; });
    const size_t pos = static_cast<size_t>(it - b.begin());
    b.insert(it, HeapEntry{key, slot});
    s.heap_pos = static_cast<uint32_t>(pos);
    for (size_t j = pos + 1; j < b.size(); ++j) {
      if (b[j].slot != kTombstoneSlot) {
        slots_[b[j].slot].heap_pos = static_cast<uint32_t>(j);
      }
    }
  } else {
    s.heap_pos = static_cast<uint32_t>(b.size());
    b.push_back(HeapEntry{key, slot});
  }
  ++wheel_size_;
}

void EventQueue::RemoveWheelEntry(uint32_t slot) {
  Slot& s = slots_[slot];
  std::vector<HeapEntry>& b = buckets_[s.wheel_bucket];
  const size_t pos = s.heap_pos;
  if (s.wheel_bucket == cursor_ && cursor_sorted_) {
    // Keep the sorted bucket's order: tombstone in place (key retained so
    // binary search over the suffix stays valid); the cursor skips it.
    b[pos].slot = kTombstoneSlot;
  } else {
    // Unsorted buckets never hold tombstones: swap-remove.
    b[pos] = b.back();
    b.pop_back();
    if (pos < b.size()) {
      slots_[b[pos].slot].heap_pos = static_cast<uint32_t>(pos);
    }
  }
  s.wheel_bucket = kNotInBucket;
  s.heap_pos = kNotInHeap;
  --wheel_size_;
  SettleCursor();
}

void EventQueue::SettleCursor() {
  if (wheel_size_ == 0) {
    if (cursor_ < buckets_.size()) {
      buckets_[cursor_].clear();  // Drop the consumed/tombstoned tail.
    }
    cursor_ = buckets_.size();
    cursor_pos_ = 0;
    cursor_sorted_ = false;
    return;
  }
  for (;;) {
    std::vector<HeapEntry>& b = buckets_[cursor_];
    if (!cursor_sorted_) {
      // First touch of this bucket: order it by the full key. Unsorted
      // buckets hold no tombstones, so every entry gets a position.
      std::sort(b.begin(), b.end(),
                [](const HeapEntry& x, const HeapEntry& y) { return x.key < y.key; });
      for (size_t j = 0; j < b.size(); ++j) {
        slots_[b[j].slot].heap_pos = static_cast<uint32_t>(j);
      }
      cursor_pos_ = 0;
      cursor_sorted_ = true;
    }
    while (cursor_pos_ < b.size() && b[cursor_pos_].slot == kTombstoneSlot) {
      ++cursor_pos_;
    }
    if (cursor_pos_ < b.size()) {
      return;
    }
    // Drained: reclaim the bucket (clear keeps capacity for the next
    // rotation) and move on — wheel_size_ > 0 guarantees a live entry ahead.
    b.clear();
    ++cursor_;
    cursor_pos_ = 0;
    cursor_sorted_ = false;
    assert(cursor_ < buckets_.size());
  }
}

void EventQueue::PushHeap(unsigned __int128 key, uint32_t slot) {
  slots_[slot].heap_pos = static_cast<uint32_t>(heap_.size());
  heap_.push_back(HeapEntry{key, slot});
  SiftUp(heap_.size() - 1);
}

void EventQueue::SiftUp(size_t pos) {
  const HeapEntry entry = heap_[pos];
  while (pos > 0) {
    const size_t parent = (pos - 1) / 4;
    if (entry.key >= heap_[parent].key) {
      break;
    }
    heap_[pos] = heap_[parent];
    slots_[heap_[pos].slot].heap_pos = static_cast<uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = entry;
  slots_[entry.slot].heap_pos = static_cast<uint32_t>(pos);
}

void EventQueue::SiftDown(size_t pos) {
  const HeapEntry entry = heap_[pos];
  const size_t n = heap_.size();
  for (;;) {
    const size_t first_child = pos * 4 + 1;
    if (first_child >= n) {
      break;
    }
    const size_t last_child = first_child + 4 < n ? first_child + 4 : n;
    size_t best = first_child;
    for (size_t c = first_child + 1; c < last_child; ++c) {
      if (heap_[c].key < heap_[best].key) {
        best = c;
      }
    }
    if (heap_[best].key >= entry.key) {
      break;
    }
    heap_[pos] = heap_[best];
    slots_[heap_[pos].slot].heap_pos = static_cast<uint32_t>(pos);
    pos = best;
  }
  heap_[pos] = entry;
  slots_[entry.slot].heap_pos = static_cast<uint32_t>(pos);
}

void EventQueue::SiftDownFromTop(size_t pos) {
  const HeapEntry entry = heap_[pos];
  const size_t n = heap_.size();
  for (;;) {
    const size_t first_child = pos * 4 + 1;
    if (first_child >= n) {
      break;
    }
    const size_t last_child = first_child + 4 < n ? first_child + 4 : n;
    size_t best = first_child;
    for (size_t c = first_child + 1; c < last_child; ++c) {
      if (heap_[c].key < heap_[best].key) {
        best = c;
      }
    }
    heap_[pos] = heap_[best];
    slots_[heap_[pos].slot].heap_pos = static_cast<uint32_t>(pos);
    pos = best;
  }
  heap_[pos] = entry;
  slots_[entry.slot].heap_pos = static_cast<uint32_t>(pos);
  SiftUp(pos);
}

void EventQueue::RemoveFromHeap(size_t pos) {
  assert(pos < heap_.size());
  slots_[heap_[pos].slot].heap_pos = kNotInHeap;
  const HeapEntry moved = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) {
    return;
  }
  heap_[pos] = moved;
  slots_[moved.slot].heap_pos = static_cast<uint32_t>(pos);
  // `moved` came from the heap's bottom: it almost always sinks back down,
  // so take the compare-free path to a leaf and fix up from there.
  SiftDownFromTop(pos);
}

void EventQueue::FreeSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  assert(s.heap_pos == kNotInHeap);
  s.fn = nullptr;
  s.period = 0;
  ++s.gen;  // Invalidates every outstanding id for this slot.
  s.next_free = free_head_;
  free_head_ = slot;
}

}  // namespace taichi::sim
