#include "src/sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace taichi::sim {

EventId EventQueue::ScheduleSlot(SimTime when, Duration period, InlineCallback fn) {
  uint32_t slot;
  if (free_head_ != kNoFreeSlot) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNoFreeSlot;
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
    slots_.back().gen = gen_floor_;
  }
  Slot& s = slots_[slot];
  s.period = period;
  s.fn = std::move(fn);
  s.heap_pos = static_cast<uint32_t>(heap_.size());
  heap_.push_back(HeapEntry{MakeKey(when, next_seq_++), slot});
  SiftUp(heap_.size() - 1);
  return MakeId(slot, s.gen);
}

size_t EventQueue::LiveSlotOf(EventId id) const {
  const size_t slot = (id & 0xffffffffu) - 1;  // id 0 wraps to SIZE_MAX.
  if (slot >= slots_.size()) {
    return slots_.size();
  }
  const Slot& s = slots_[slot];
  if (s.gen != static_cast<uint32_t>(id >> 32) || s.heap_pos == kNotInHeap) {
    return slots_.size();
  }
  return slot;
}

bool EventQueue::IsPending(EventId id) const { return LiveSlotOf(id) < slots_.size(); }

bool EventQueue::Reschedule(EventId id, SimTime when) {
  const size_t slot = LiveSlotOf(id);
  if (slot >= slots_.size()) {
    return false;
  }
  Slot& s = slots_[slot];
  const size_t pos = s.heap_pos;
  // A fresh sequence number, exactly as Cancel + Schedule would have
  // assigned: the re-keyed event orders after everything already scheduled
  // at the same time. This is what keeps the conversion byte-identical.
  heap_[pos].key = MakeKey(when, next_seq_++);
  SiftUp(pos);
  SiftDown(slots_[slot].heap_pos);
  return true;
}

bool EventQueue::Cancel(EventId id) {
  const size_t slot = LiveSlotOf(id);
  if (slot >= slots_.size()) {
    return false;
  }
  RemoveFromHeap(slots_[slot].heap_pos);
  FreeSlot(static_cast<uint32_t>(slot));
  return true;
}

SimTime EventQueue::NextTime() const {
  assert(!heap_.empty());
  return heap_.front().when();
}

EventQueue::Fired EventQueue::PopNext() {
  assert(!heap_.empty());
  HeapEntry& e = heap_.front();
  const uint32_t slot = e.slot;
  Slot& s = slots_[slot];
  Fired fired{e.when(), MakeId(slot, s.gen), std::move(s.fn), s.period > 0};
  if (s.period > 0) {
    // Re-key in place for the next firing; the callback is out with the
    // caller and comes back via RestoreRepeating(). The fresh seq puts the
    // next firing after events the callback schedules at the same time.
    e.key = MakeKey(e.when() + s.period, next_seq_++);
    SiftDownFromTop(0);
  } else {
    RemoveFromHeap(0);
    FreeSlot(slot);
  }
  // Periodic high-water-mark check: after a burst drains, the next check
  // returns the dead tail of the slot table. ShrinkToFit's own gates make
  // this free in steady state.
  if (++pops_since_shrink_check_ >= kAutoShrinkPopInterval) {
    pops_since_shrink_check_ = 0;
    ShrinkToFit();
  }
  return fired;
}

void EventQueue::RestoreRepeating(EventId id, InlineCallback fn) {
  const size_t slot = LiveSlotOf(id);
  if (slot >= slots_.size()) {
    return;  // Cancelled during its own callback; drop the cycle.
  }
  slots_[slot].fn = std::move(fn);
}

void EventQueue::ShrinkToFit() {
  // Gate: only worth it when the table is large and mostly free.
  if (slots_.size() < kShrinkMinSlots || heap_.size() * 4 > slots_.size()) {
    return;
  }
  // Only trailing free slots can go: live slots must keep their index.
  size_t keep = slots_.size();
  while (keep > 0 && slots_[keep - 1].heap_pos == kNotInHeap) {
    --keep;
  }
  if (keep == slots_.size()) {
    return;
  }
  // Every id ever handed out for a dropped slot must stay dead, including
  // against slots regrown later at the same index.
  for (size_t i = keep; i < slots_.size(); ++i) {
    gen_floor_ = std::max(gen_floor_, slots_[i].gen + 1);
  }
  slots_.resize(keep);
  slots_.shrink_to_fit();
  heap_.shrink_to_fit();
  // Rebuild the free list over the surviving slots.
  free_head_ = kNoFreeSlot;
  for (size_t i = keep; i-- > 0;) {
    if (slots_[i].heap_pos == kNotInHeap) {
      slots_[i].next_free = free_head_;
      free_head_ = static_cast<uint32_t>(i);
    }
  }
}

void EventQueue::SiftUp(size_t pos) {
  const HeapEntry entry = heap_[pos];
  while (pos > 0) {
    const size_t parent = (pos - 1) / 4;
    if (entry.key >= heap_[parent].key) {
      break;
    }
    heap_[pos] = heap_[parent];
    slots_[heap_[pos].slot].heap_pos = static_cast<uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = entry;
  slots_[entry.slot].heap_pos = static_cast<uint32_t>(pos);
}

void EventQueue::SiftDown(size_t pos) {
  const HeapEntry entry = heap_[pos];
  const size_t n = heap_.size();
  for (;;) {
    const size_t first_child = pos * 4 + 1;
    if (first_child >= n) {
      break;
    }
    const size_t last_child = first_child + 4 < n ? first_child + 4 : n;
    size_t best = first_child;
    for (size_t c = first_child + 1; c < last_child; ++c) {
      if (heap_[c].key < heap_[best].key) {
        best = c;
      }
    }
    if (heap_[best].key >= entry.key) {
      break;
    }
    heap_[pos] = heap_[best];
    slots_[heap_[pos].slot].heap_pos = static_cast<uint32_t>(pos);
    pos = best;
  }
  heap_[pos] = entry;
  slots_[entry.slot].heap_pos = static_cast<uint32_t>(pos);
}

void EventQueue::SiftDownFromTop(size_t pos) {
  const HeapEntry entry = heap_[pos];
  const size_t n = heap_.size();
  for (;;) {
    const size_t first_child = pos * 4 + 1;
    if (first_child >= n) {
      break;
    }
    const size_t last_child = first_child + 4 < n ? first_child + 4 : n;
    size_t best = first_child;
    for (size_t c = first_child + 1; c < last_child; ++c) {
      if (heap_[c].key < heap_[best].key) {
        best = c;
      }
    }
    heap_[pos] = heap_[best];
    slots_[heap_[pos].slot].heap_pos = static_cast<uint32_t>(pos);
    pos = best;
  }
  heap_[pos] = entry;
  slots_[entry.slot].heap_pos = static_cast<uint32_t>(pos);
  SiftUp(pos);
}

void EventQueue::RemoveFromHeap(size_t pos) {
  assert(pos < heap_.size());
  slots_[heap_[pos].slot].heap_pos = kNotInHeap;
  const HeapEntry moved = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) {
    return;
  }
  heap_[pos] = moved;
  slots_[moved.slot].heap_pos = static_cast<uint32_t>(pos);
  // `moved` came from the heap's bottom: it almost always sinks back down,
  // so take the compare-free path to a leaf and fix up from there.
  SiftDownFromTop(pos);
}

void EventQueue::FreeSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  assert(s.heap_pos == kNotInHeap);
  s.fn = nullptr;
  s.period = 0;
  ++s.gen;  // Invalidates every outstanding id for this slot.
  s.next_free = free_head_;
  free_head_ = slot;
}

}  // namespace taichi::sim
