#include "src/sim/event_queue.h"

#include <cassert>
#include <utility>

namespace taichi::sim {

EventId EventQueue::Schedule(SimTime when, std::function<void()> fn) {
  uint32_t slot;
  if (free_head_ != kNoFreeSlot) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNoFreeSlot;
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.when = when;
  s.seq = next_seq_++;
  s.fn = std::move(fn);
  s.heap_pos = static_cast<uint32_t>(heap_.size());
  heap_.push_back(slot);
  SiftUp(heap_.size() - 1);
  return MakeId(slot, s.gen);
}

size_t EventQueue::LiveSlotOf(EventId id) const {
  const size_t slot = (id & 0xffffffffu) - 1;  // id 0 wraps to SIZE_MAX.
  if (slot >= slots_.size()) {
    return slots_.size();
  }
  const Slot& s = slots_[slot];
  if (s.gen != static_cast<uint32_t>(id >> 32) || s.heap_pos == kNotInHeap) {
    return slots_.size();
  }
  return slot;
}

bool EventQueue::IsPending(EventId id) const { return LiveSlotOf(id) < slots_.size(); }

bool EventQueue::Cancel(EventId id) {
  const size_t slot = LiveSlotOf(id);
  if (slot >= slots_.size()) {
    return false;
  }
  RemoveFromHeap(slots_[slot].heap_pos);
  FreeSlot(static_cast<uint32_t>(slot));
  return true;
}

SimTime EventQueue::NextTime() const {
  assert(!heap_.empty());
  return slots_[heap_.front()].when;
}

EventQueue::Fired EventQueue::PopNext() {
  assert(!heap_.empty());
  const uint32_t slot = heap_.front();
  Slot& s = slots_[slot];
  Fired fired{s.when, MakeId(slot, s.gen), std::move(s.fn)};
  RemoveFromHeap(0);
  FreeSlot(slot);
  return fired;
}

void EventQueue::SiftUp(size_t pos) {
  const uint32_t slot = heap_[pos];
  while (pos > 0) {
    const size_t parent = (pos - 1) / 4;
    if (!Earlier(slot, heap_[parent])) {
      break;
    }
    heap_[pos] = heap_[parent];
    slots_[heap_[pos]].heap_pos = static_cast<uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = slot;
  slots_[slot].heap_pos = static_cast<uint32_t>(pos);
}

void EventQueue::SiftDown(size_t pos) {
  const uint32_t slot = heap_[pos];
  const size_t n = heap_.size();
  for (;;) {
    const size_t first_child = pos * 4 + 1;
    if (first_child >= n) {
      break;
    }
    const size_t last_child = first_child + 4 < n ? first_child + 4 : n;
    size_t best = first_child;
    for (size_t c = first_child + 1; c < last_child; ++c) {
      if (Earlier(heap_[c], heap_[best])) {
        best = c;
      }
    }
    if (!Earlier(heap_[best], slot)) {
      break;
    }
    heap_[pos] = heap_[best];
    slots_[heap_[pos]].heap_pos = static_cast<uint32_t>(pos);
    pos = best;
  }
  heap_[pos] = slot;
  slots_[slot].heap_pos = static_cast<uint32_t>(pos);
}

void EventQueue::RemoveFromHeap(size_t pos) {
  assert(pos < heap_.size());
  slots_[heap_[pos]].heap_pos = kNotInHeap;
  const uint32_t moved = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) {
    return;
  }
  heap_[pos] = moved;
  slots_[moved].heap_pos = static_cast<uint32_t>(pos);
  SiftUp(pos);
  SiftDown(slots_[moved].heap_pos);
}

void EventQueue::FreeSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  assert(s.heap_pos == kNotInHeap);
  s.fn = nullptr;
  ++s.gen;  // Invalidates every outstanding id for this slot.
  s.next_free = free_head_;
  free_head_ = slot;
}

}  // namespace taichi::sim
