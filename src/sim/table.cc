#include "src/sim/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace taichi::sim {

std::string Table::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i >= widths.size()) {
        widths.resize(i + 1, 0);
      }
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::ostringstream os;
    for (size_t i = 0; i < widths.size(); ++i) {
      std::string cell = i < cells.size() ? cells[i] : "";
      os << (i == 0 ? "| " : " | ");
      os << cell << std::string(widths[i] - cell.size(), ' ');
    }
    os << " |\n";
    return os.str();
  };

  std::ostringstream os;
  os << render_row(header_);
  os << "|";
  for (size_t w : widths) {
    os << std::string(w + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) {
    os << render_row(row);
  }
  return os.str();
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string Table::Num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string Table::NumWithDelta(double v, double reference, int digits) {
  if (reference == 0) {
    return Num(v, digits);
  }
  double pct = (v / reference - 1.0) * 100.0;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*f (%+.2f%%)", digits, v, pct);
  return buf;
}

}  // namespace taichi::sim
