// A small fixed-size thread pool for stepping independent simulations in
// parallel (one node == one Simulation == one thread at a time).
//
// Determinism contract: ParallelFor(n, fn) runs fn(0..n-1) exactly once each
// and returns only after all of them finished (a full barrier). Which worker
// runs which index — and in what order — is unspecified, so fn(i) must touch
// only state owned by index i (plus immutable shared state). Under that
// contract a parallel run is byte-identical to a serial run: the pool adds
// concurrency, never nondeterminism. The fleet layer relies on this to keep
// same-seed cluster runs reproducible at any --threads value.
#ifndef SRC_SIM_THREAD_POOL_H_
#define SRC_SIM_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace taichi::sim {

class ThreadPool {
 public:
  // `threads` counts the calling thread: ThreadPool(4) spawns 3 workers and
  // ParallelFor runs on 4 threads total. threads <= 1 spawns nothing and
  // ParallelFor degenerates to an inline loop.
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  // Runs fn(i) for every i in [0, n) across the pool and blocks until all
  // calls returned. The calling thread participates. fn must not throw and
  // must not call ParallelFor reentrantly.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();
  // Work-steals indices off next_ until the current job is exhausted.
  void RunSlice(const std::function<void(size_t)>& fn, size_t n);

  int threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(size_t)>* job_ = nullptr;  // Guarded by mu_.
  size_t job_n_ = 0;                                  // Guarded by mu_.
  uint64_t job_gen_ = 0;                              // Guarded by mu_.
  size_t unfinished_ = 0;                             // Guarded by mu_.
  bool shutdown_ = false;                             // Guarded by mu_.
  std::atomic<size_t> next_{0};  // Index dispenser for the current job.
};

}  // namespace taichi::sim

#endif  // SRC_SIM_THREAD_POOL_H_
