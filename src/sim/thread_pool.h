// A small fixed-size thread pool for stepping independent simulations in
// parallel (one node == one Simulation == one thread at a time).
//
// Determinism contract: ParallelFor(n, fn) runs fn(0..n-1) exactly once each
// and returns only after all of them finished (a full barrier). Which worker
// runs which index — and in what order — is unspecified, so fn(i) must touch
// only state owned by index i (plus immutable shared state). Under that
// contract a parallel run is byte-identical to a serial run: the pool adds
// concurrency, never nondeterminism. The fleet layer relies on this to keep
// same-seed cluster runs reproducible at any --threads value.
//
// Dispatch is sharded: every participant (the caller plus each worker) owns
// the stripe of indices congruent to its id mod threads() and claims them
// off a per-participant cursor — its own cache line, uncontended in the
// common case. Only after its own stripe is dry does a participant steal
// from siblings' cursors, nearest first. That splits the barrier into two
// levels — drain-your-shard, then fleet-wide completion — and removes the
// single shared fetch_add that every claim bounced across sockets at
// 10k-node fleets.
#ifndef SRC_SIM_THREAD_POOL_H_
#define SRC_SIM_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/sim/inline_callback.h"

namespace taichi::sim {

class ThreadPool {
 public:
  // `threads` counts the calling thread: ThreadPool(4) spawns 3 workers and
  // ParallelFor runs on 4 threads total. threads <= 1 spawns nothing and
  // ParallelFor degenerates to an inline loop.
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  // Runs fn(i) for every i in [0, n) across the pool and blocks until all
  // calls returned. The calling thread participates. fn must not throw and
  // must not call ParallelFor reentrantly. fn is captured by reference only
  // for the duration of the call (FunctionRef): no allocation, no copy.
  void ParallelFor(size_t n, FunctionRef<void(size_t)> fn);

 private:
  // One claim cursor per participant, each on its own cache line so stripe
  // claims never false-share.
  struct alignas(64) ShardCursor {
    std::atomic<uint32_t> next{0};
  };

  // `self` is the participant id: the caller is 0, the k-th spawned worker
  // is k + 1.
  void WorkerLoop(int self);
  // Drains own stripe, then steals from siblings (level-1 of the barrier).
  void RunShards(FunctionRef<void(size_t)> fn, size_t n, int self);

  int threads_;
  std::vector<std::thread> workers_;
  std::unique_ptr<ShardCursor[]> cursors_;  // threads_ entries.

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  FunctionRef<void(size_t)> job_;  // Guarded by mu_.
  size_t job_n_ = 0;               // Guarded by mu_.
  uint64_t job_gen_ = 0;           // Guarded by mu_.
  size_t unfinished_ = 0;          // Guarded by mu_.
  bool shutdown_ = false;          // Guarded by mu_.
};

}  // namespace taichi::sim

#endif  // SRC_SIM_THREAD_POOL_H_
