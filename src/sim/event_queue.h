// A cancellable discrete-event queue ordered by (time, insertion sequence).
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <vector>

#include "src/sim/inline_callback.h"
#include "src/sim/time.h"

namespace taichi::sim {

// Identifies a scheduled event so it can be cancelled before it fires.
// Id 0 is never allocated and acts as "no event".
using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

// Min-heap of timed callbacks. Events at equal times fire in insertion order,
// which keeps simulations deterministic. Not thread-safe: each simulator
// instance is single-threaded by design (a fleet runs one queue per node).
//
// Layout: events live in recycled slots; the heap is a 4-ary min-heap whose
// entries carry their (time, sequence) key inline next to the slot index, so
// sift comparisons walk a contiguous 32-byte-stride array and never touch the
// slot table (whose entries are ~128 bytes once the callback buffer is
// inline — chasing keys through it was the dominant cache cost of the sift).
// An EventId packs (slot generation, slot index), so Cancel() and IsPending()
// are O(1) slot lookups — a stale id sees a bumped generation and misses —
// and cancellation removes the heap entry immediately instead of leaving a
// tombstone. Idle-poll fast-forwarding cancels and reschedules constantly, so
// the structure must not accumulate dead entries between pops. The 4-ary
// shape halves the tree depth of a binary heap and keeps the children of a
// node within two cache lines, which is where the sift time goes on the hot
// schedule/pop path.
//
// Calendar front-end: once the standing population passes an engage threshold
// (dense repeating timers at hyperscale — default 100k, see
// kDefaultCalendarEngageThreshold), the queue flips to a bucketed calendar in
// front of the heap. Near-term events live in a flat window of time buckets
// that a cursor drains left to right; a bucket is sorted by the full
// (time, seq) key only when the cursor reaches it, and everything past the
// window overflows into the existing heap. Because sequence numbers are
// globally unique, keys never tie, so the pop stream is the exact (time, seq)
// order the heap would have produced — engagement is invisible to event order
// and to every id-based operation (Cancel/Reschedule/IsPending work in both
// structures). The wheel disengages with hysteresis (size < threshold/4,
// checked on the auto-shrink cadence) so bursty populations don't thrash.
//
// The steady-state schedule → fire cycle is allocation-free: callbacks are
// InlineCallback (no per-closure heap spill), slots and heap entries recycle,
// standing timers can be re-keyed in place (Reschedule) or re-armed without
// callback reconstruction (ScheduleRepeating), and drained calendar buckets
// keep their capacity for the next rotation.
class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `fn` to run at absolute time `when`. Returns a handle usable
  // with Cancel() until the event has fired.
  EventId Schedule(SimTime when, InlineCallback fn) {
    return ScheduleSlot(when, 0, std::move(fn));
  }

  // Schedules `fn` at `first`, then every `period` after that, reusing one
  // slot and one callback forever: firing re-keys the slot in place (fresh
  // sequence number, time += period) instead of freeing + reallocating it.
  // The id stays valid across firings; Cancel() stops the repetition, and
  // Reschedule() (typically from inside the callback) overrides the next
  // firing time. Requires period > 0.
  EventId ScheduleRepeating(SimTime first, Duration period, InlineCallback fn) {
    return ScheduleSlot(first, period, std::move(fn));
  }

  // Re-keys a pending event to fire at `when` instead. In heap mode the
  // existing entry sifts in place: no slot free/alloc, no generation bump,
  // and the callback is untouched. The event receives a fresh sequence
  // number, so its order against other events at the same time is exactly as
  // if it had been cancelled and rescheduled. Returns false (and does
  // nothing) if `id` is not pending.
  bool Reschedule(EventId id, SimTime when);

  // Cancels a pending event. Cancelling an already-fired or already-cancelled
  // event is a harmless no-op. Returns true if the event was still pending.
  bool Cancel(EventId id);

  // True if `id` is scheduled and not yet fired or cancelled.
  bool IsPending(EventId id) const;

  bool empty() const { return heap_.empty() && wheel_size_ == 0; }
  size_t size() const { return heap_.size() + wheel_size_; }

  // Time of the earliest pending event. Only valid when !empty().
  SimTime NextTime() const;

  // Removes and returns the earliest pending event. Only valid when !empty().
  // For a repeating event the slot stays live, re-keyed to when + period with
  // a fresh sequence number; the callback is moved out for the caller to
  // invoke and must be handed back via RestoreRepeating() afterwards (the
  // slot cannot be borrowed from during the callback: nested schedules may
  // reallocate the slot table, and Cancel may free the slot mid-callback).
  struct Fired {
    SimTime when;
    EventId id;
    InlineCallback fn;
    bool repeating = false;
  };
  Fired PopNext();

  // Returns a repeating callback to its slot after invocation. A no-op if
  // the event was cancelled (or cancelled + slot reused) during its own
  // callback — the callback is then dropped on the floor, ending the cycle.
  void RestoreRepeating(EventId id, InlineCallback fn);

  // Releases slot-table memory after a burst: drops trailing free slots and
  // rebuilds the free list. Cheap no-op unless the table is mostly free
  // (pending ≪ capacity), so callers can invoke it at natural quiesce points
  // (the fleet layer does, between epochs). Live slots never move — their
  // ids stay valid — and ids of dropped slots can never alias future events:
  // regrown slots start at a generation floor above every dropped one.
  //
  // The queue also self-triggers this check every kAutoShrinkPopInterval
  // pops, so a long single-node run whose burst high-water mark has passed
  // returns slot memory without anyone calling ShrinkToFit() — the gates
  // above make the periodic check a two-compare no-op in steady state, and
  // shrinking is memory-only: event order and ids of live events are
  // untouched. The same cadence applies the calendar disengage hysteresis.
  void ShrinkToFit();
  static constexpr uint32_t kAutoShrinkPopInterval = 4096;

  // Standing-event count at which the calendar front-end engages. The
  // default is far above any single-node population the testbed produces, so
  // only dense fleet nodes (or benches/tests that lower it) ever flip.
  static constexpr size_t kDefaultCalendarEngageThreshold = 100000;

  // Sets the engage threshold; 0 disables the calendar entirely. Lowering it
  // below the current population engages immediately; setting 0 while
  // engaged migrates the wheel back into the heap. Pop order is unaffected
  // either way.
  void set_calendar_engage_threshold(size_t threshold);
  size_t calendar_engage_threshold() const { return engage_threshold_; }
  bool calendar_engaged() const { return calendar_; }
  // Times the calendar has engaged since construction (test/bench hook).
  uint64_t calendar_engages() const { return engages_; }

  // Total events scheduled since construction (fired, pending or cancelled).
  // A repeating event counts once per arming or firing, matching the
  // schedule-per-cycle pattern it replaces.
  uint64_t total_scheduled() const { return next_seq_ - 1; }

  // Current slot-table capacity (test/introspection hook for ShrinkToFit).
  size_t slot_count() const { return slots_.size(); }

 private:
  static constexpr uint32_t kNotInHeap = UINT32_MAX;
  static constexpr uint32_t kNoFreeSlot = UINT32_MAX;
  static constexpr uint32_t kNotInBucket = UINT32_MAX;
  // A cancelled entry in the already-sorted cursor bucket keeps its key for
  // ordering but points at no slot; the cursor skips it.
  static constexpr uint32_t kTombstoneSlot = UINT32_MAX;
  // ShrinkToFit leaves tables smaller than this alone: re-growing would cost
  // more than the held memory is worth.
  static constexpr size_t kShrinkMinSlots = 256;
  static constexpr size_t kMinBuckets = 1024;
  static constexpr size_t kMaxBuckets = 65536;

  // The (when, seq) key lives in the heap entry, not here: the sift loops
  // must not dereference this (large) struct per comparison.
  struct Slot {
    Duration period = 0;    // > 0: repeating; PopNext re-keys instead of freeing.
    InlineCallback fn;
    uint32_t gen = 0;            // Bumped on free; stale ids miss.
    // Position in the heap, or in the calendar bucket `wheel_bucket` when
    // that is set. kNotInHeap in both cases means "not pending".
    uint32_t heap_pos = kNotInHeap;
    uint32_t wheel_bucket = kNotInBucket;
    uint32_t next_free = kNoFreeSlot;
  };

  // The (time, sequence) key packed so one unsigned compare is the full
  // lexicographic order; seq is globally unique, so keys never tie and pop
  // order is independent of the heap's (or a bucket's) internal arrangement.
  struct HeapEntry {
    unsigned __int128 key;
    uint32_t slot;

    SimTime when() const { return static_cast<SimTime>(key >> 64); }
  };

  static unsigned __int128 MakeKey(SimTime when, uint64_t seq) {
    return (static_cast<unsigned __int128>(when) << 64) | seq;
  }

  static EventId MakeId(uint32_t slot, uint32_t gen) {
    // +1 keeps id 0 unallocated even for (slot 0, gen 0).
    return (static_cast<EventId>(gen) << 32) | (slot + 1);
  }
  // Returns the slot index for `id` if it refers to a live event, else
  // a value >= slots_.size().
  size_t LiveSlotOf(EventId id) const;

  EventId ScheduleSlot(SimTime when, Duration period, InlineCallback fn);

  void SiftUp(size_t pos);
  void SiftDown(size_t pos);
  // Pop-path variant: walks the hole to a leaf promoting the best child
  // (no per-level compare against the displaced entry), then sifts the entry
  // up from there. Pops always displace a near-maximal key — a re-keyed
  // repeating timer or the heap's last entry — so the sift-up is almost
  // always a single compare.
  void SiftDownFromTop(size_t pos);
  // Detaches the heap entry at `pos` (swap with last + sift both ways).
  void RemoveFromHeap(size_t pos);
  // Appends (key, slot) to the heap and restores the heap property.
  void PushHeap(unsigned __int128 key, uint32_t slot);
  // Returns the slot at `slot` to the free list and invalidates its id.
  void FreeSlot(uint32_t slot);

  // --- Calendar internals. All maintain the settle invariant: whenever
  // wheel_size_ > 0, cursor_ points at a sorted bucket whose entry at
  // cursor_pos_ is live and is the queue-wide minimum key. ---

  // Routes (key, slot) to the wheel window or the overflow heap.
  void InsertEntry(unsigned __int128 key, uint32_t slot);
  // Detaches a wheel-resident entry (tombstone in the sorted cursor bucket,
  // swap-remove elsewhere) without freeing the slot.
  void RemoveWheelEntry(uint32_t slot);
  // Re-establishes the settle invariant: skips tombstones, advances the
  // cursor over drained buckets (clearing them), sorts the bucket it lands
  // on. Collapses to cursor_ == bucket_count_ when the wheel is empty.
  void SettleCursor();
  // Opens the next window at the heap's minimum and migrates every heap
  // entry inside it into buckets, re-heapifying the remainder. Requires an
  // empty wheel and a non-empty heap.
  void RotateWheel();
  // Sizes the wheel from the current standing population and flips modes.
  void EngageCalendar();
  // Migrates the wheel back into the heap and frees bucket storage.
  void DisengageCalendar();

  std::vector<Slot> slots_;
  std::vector<HeapEntry> heap_;  // 4-ary min-heap by (when, seq).
  uint32_t free_head_ = kNoFreeSlot;
  // Slots created after a ShrinkToFit start at this generation, keeping every
  // id handed out for a dropped slot permanently dead.
  uint32_t gen_floor_ = 0;
  uint32_t pops_since_shrink_check_ = 0;
  uint64_t next_seq_ = 1;

  // Calendar state. buckets_ spans the flat, non-wrapping window
  // [wheel_origin_, wheel_origin_ + bucket_width_ * buckets_.size()); the
  // cursor drains it left to right and the window only moves (RotateWheel)
  // once the wheel is empty, so every heap entry is ≥ the window end while
  // anything is in the wheel — the global minimum is always at the cursor.
  bool calendar_ = false;
  size_t engage_threshold_ = kDefaultCalendarEngageThreshold;
  uint64_t engages_ = 0;
  std::vector<std::vector<HeapEntry>> buckets_;
  Duration bucket_width_ = 1;
  SimTime wheel_origin_ = 0;
  size_t cursor_ = 0;       // == buckets_.size() when the wheel is empty.
  size_t cursor_pos_ = 0;   // Next entry to pop within the cursor bucket.
  bool cursor_sorted_ = false;
  size_t wheel_size_ = 0;   // Live wheel entries (tombstones excluded).
};

}  // namespace taichi::sim

#endif  // SRC_SIM_EVENT_QUEUE_H_
