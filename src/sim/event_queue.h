// A cancellable discrete-event queue ordered by (time, insertion sequence).
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/sim/time.h"

namespace taichi::sim {

// Identifies a scheduled event so it can be cancelled before it fires.
// Id 0 is never allocated and acts as "no event".
using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

// Min-heap of timed callbacks. Events at equal times fire in insertion order,
// which keeps simulations deterministic. Not thread-safe: the whole simulator
// is single-threaded by design.
class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `fn` to run at absolute time `when`. Returns a handle usable
  // with Cancel() until the event has fired.
  EventId Schedule(SimTime when, std::function<void()> fn);

  // Cancels a pending event. Cancelling an already-fired or already-cancelled
  // event is a harmless no-op. Returns true if the event was still pending.
  bool Cancel(EventId id);

  // True if `id` is scheduled and not yet fired or cancelled.
  bool IsPending(EventId id) const { return pending_.contains(id); }

  bool empty() const { return pending_.empty(); }
  size_t size() const { return pending_.size(); }

  // Time of the earliest pending event. Only valid when !empty().
  SimTime NextTime() const;

  // Removes and returns the earliest pending event. Only valid when !empty().
  struct Fired {
    SimTime when;
    EventId id;
    std::function<void()> fn;
  };
  Fired PopNext();

  // Total events scheduled since construction (fired, pending or cancelled).
  uint64_t total_scheduled() const { return next_id_ - 1; }

 private:
  struct Entry {
    SimTime when;
    EventId id;  // Doubles as the insertion-order tiebreaker.
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.id > b.id;
    }
  };

  // Drops entries whose id is no longer pending (i.e. cancelled) off the
  // heap top.
  void SkimCancelled();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> pending_;
  EventId next_id_ = 1;
};

}  // namespace taichi::sim

#endif  // SRC_SIM_EVENT_QUEUE_H_
