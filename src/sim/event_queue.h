// A cancellable discrete-event queue ordered by (time, insertion sequence).
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/sim/time.h"

namespace taichi::sim {

// Identifies a scheduled event so it can be cancelled before it fires.
// Id 0 is never allocated and acts as "no event".
using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

// Min-heap of timed callbacks. Events at equal times fire in insertion order,
// which keeps simulations deterministic. Not thread-safe: each simulator
// instance is single-threaded by design (a fleet runs one queue per node).
//
// Layout: events live in recycled slots; the heap is a 4-ary min-heap of slot
// indices keyed by (time, sequence). An EventId packs (slot generation, slot
// index), so Cancel() and IsPending() are O(1) slot lookups — a stale id sees
// a bumped generation and misses — and cancellation removes the heap entry
// immediately instead of leaving a tombstone. Idle-poll fast-forwarding
// cancels and reschedules constantly, so the structure must not accumulate
// dead entries between pops. The 4-ary shape halves the tree depth of a
// binary heap and keeps children of a node in one cache line's worth of
// indices, which is where the sift time goes on the hot schedule/pop path.
class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `fn` to run at absolute time `when`. Returns a handle usable
  // with Cancel() until the event has fired.
  EventId Schedule(SimTime when, std::function<void()> fn);

  // Cancels a pending event. Cancelling an already-fired or already-cancelled
  // event is a harmless no-op. Returns true if the event was still pending.
  bool Cancel(EventId id);

  // True if `id` is scheduled and not yet fired or cancelled.
  bool IsPending(EventId id) const;

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  // Time of the earliest pending event. Only valid when !empty().
  SimTime NextTime() const;

  // Removes and returns the earliest pending event. Only valid when !empty().
  struct Fired {
    SimTime when;
    EventId id;
    std::function<void()> fn;
  };
  Fired PopNext();

  // Total events scheduled since construction (fired, pending or cancelled).
  uint64_t total_scheduled() const { return next_seq_ - 1; }

 private:
  static constexpr uint32_t kNotInHeap = UINT32_MAX;
  static constexpr uint32_t kNoFreeSlot = UINT32_MAX;

  struct Slot {
    SimTime when = 0;
    uint64_t seq = 0;  // Insertion-order tiebreaker at equal times.
    std::function<void()> fn;
    uint32_t gen = 0;            // Bumped on free; stale ids miss.
    uint32_t heap_pos = kNotInHeap;
    uint32_t next_free = kNoFreeSlot;
  };

  static EventId MakeId(uint32_t slot, uint32_t gen) {
    // +1 keeps id 0 unallocated even for (slot 0, gen 0).
    return (static_cast<EventId>(gen) << 32) | (slot + 1);
  }
  // Returns the slot index for `id` if it refers to a live event, else
  // a value >= slots_.size().
  size_t LiveSlotOf(EventId id) const;

  // (when, seq) lexicographic order between slots.
  bool Earlier(uint32_t a, uint32_t b) const {
    const Slot& sa = slots_[a];
    const Slot& sb = slots_[b];
    if (sa.when != sb.when) {
      return sa.when < sb.when;
    }
    return sa.seq < sb.seq;
  }

  void SiftUp(size_t pos);
  void SiftDown(size_t pos);
  // Detaches the heap entry at `pos` (swap with last + sift both ways).
  void RemoveFromHeap(size_t pos);
  // Returns the slot at `slot` to the free list and invalidates its id.
  void FreeSlot(uint32_t slot);

  std::vector<Slot> slots_;
  std::vector<uint32_t> heap_;  // Slot indices, 4-ary min-heap by (when, seq).
  uint32_t free_head_ = kNoFreeSlot;
  uint64_t next_seq_ = 1;
};

}  // namespace taichi::sim

#endif  // SRC_SIM_EVENT_QUEUE_H_
