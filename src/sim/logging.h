// Leveled logging with simulated-time prefixes.
//
// Logging is off by default (level kWarn) so tests and benches stay quiet;
// examples raise the level to narrate what the scheduler is doing.
#ifndef SRC_SIM_LOGGING_H_
#define SRC_SIM_LOGGING_H_

#include <cstdarg>
#include <cstdint>

#include "src/sim/time.h"

namespace taichi::sim {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
};

// Global log threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Pluggable log backend: receives each formatted message (no time prefix,
// no trailing newline) with its level and timestamp. The default sink writes
// "[<time>us LEVEL] message" to stderr. Sinks let embedders capture simulator
// diagnostics (test assertions on TAICHI_ERROR output, fleet harnesses
// collecting per-node logs) without touching stdio.
using LogSink = void (*)(LogLevel level, SimTime now, const char* message);

// Installs `sink` as the backend and returns the previous one; nullptr
// restores the default stderr sink. Not thread-safe: install before the
// simulation starts (fleet workers log only through their own node's data,
// but the sink pointer itself is global).
LogSink SetLogSink(LogSink sink);

// printf-style log statement stamped with `now`.
void Logf(LogLevel level, SimTime now, const char* fmt, ...) __attribute__((format(printf, 3, 4)));

}  // namespace taichi::sim

#define TAICHI_LOG(level, now, ...)                          \
  do {                                                       \
    if ((level) >= ::taichi::sim::GetLogLevel()) {           \
      ::taichi::sim::Logf((level), (now), __VA_ARGS__);      \
    }                                                        \
  } while (0)

#define TAICHI_TRACE(now, ...) TAICHI_LOG(::taichi::sim::LogLevel::kTrace, now, __VA_ARGS__)
#define TAICHI_DEBUG(now, ...) TAICHI_LOG(::taichi::sim::LogLevel::kDebug, now, __VA_ARGS__)
#define TAICHI_INFO(now, ...) TAICHI_LOG(::taichi::sim::LogLevel::kInfo, now, __VA_ARGS__)
#define TAICHI_WARN(now, ...) TAICHI_LOG(::taichi::sim::LogLevel::kWarn, now, __VA_ARGS__)
#define TAICHI_ERROR(now, ...) TAICHI_LOG(::taichi::sim::LogLevel::kError, now, __VA_ARGS__)

#endif  // SRC_SIM_LOGGING_H_
