// A minimal aligned ASCII table printer used by the benchmark harnesses to
// emit paper-style rows.
#ifndef SRC_SIM_TABLE_H_
#define SRC_SIM_TABLE_H_

#include <string>
#include <vector>

namespace taichi::sim {

class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  // Adds a row; missing trailing cells render empty, extra cells are kept.
  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  // Renders with column alignment and a separator under the header.
  std::string ToString() const;

  // Convenience: renders to stdout.
  void Print() const;

  // Formats a double with `digits` decimals.
  static std::string Num(double v, int digits = 2);
  // Formats a value and a "(+x.x%)" delta vs. a reference.
  static std::string NumWithDelta(double v, double reference, int digits = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace taichi::sim

#endif  // SRC_SIM_TABLE_H_
