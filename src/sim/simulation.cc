#include "src/sim/simulation.h"

#include <cassert>

namespace taichi::sim {

EventId Simulation::At(SimTime when, std::function<void()> fn) {
  assert(when >= now_ && "cannot schedule into the past");
  return queue_.Schedule(when, std::move(fn));
}

void Simulation::RunUntil(SimTime deadline) {
  const bool was_stepping = stepping_.exchange(true, std::memory_order_acquire);
  assert(!was_stepping && "Simulation stepped from two threads: cross-node state leak");
  (void)was_stepping;
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.NextTime() <= deadline) {
    EventQueue::Fired fired = queue_.PopNext();
    assert(fired.when >= now_ && "event queue went backwards");
    now_ = fired.when;
    ++events_executed_;
    fired.fn();
  }
  if (!stopped_ && now_ < deadline && deadline != std::numeric_limits<SimTime>::max()) {
    now_ = deadline;
  }
  stepping_.store(false, std::memory_order_release);
}

}  // namespace taichi::sim
