#include "src/sim/simulation.h"

#include <cassert>
#include <cinttypes>

#include "src/sim/logging.h"

namespace taichi::sim {

EventId Simulation::At(SimTime when, InlineCallback fn) {
  if (when < now_) {
    TAICHI_ERROR(now_, "Simulation::At: schedule into the past (when=%" PRIu64
                       " now=%" PRIu64 ")",
                 when, now_);
    assert(when >= now_ && "Simulation::At: cannot schedule into the past");
    when = now_;  // Without asserts: clamp rather than corrupt the heap order.
  }
  return queue_.Schedule(when, std::move(fn));
}

void Simulation::AdvanceIdleTo(SimTime t) {
  const bool was_stepping = stepping_.exchange(true, std::memory_order_acquire);
  assert(!was_stepping && "Simulation stepped from two threads: cross-node state leak");
  (void)was_stepping;
  assert(IdleUntil(t) && "AdvanceIdleTo on a node with due events");
  stopped_ = false;
  // Mirrors RunUntil's deadline landing exactly, so the fast path is
  // output-invariant: the clock moves, nothing else does.
  if (now_ < t && t != std::numeric_limits<SimTime>::max()) {
    now_ = t;
  }
  stepping_.store(false, std::memory_order_release);
}

void Simulation::RunUntil(SimTime deadline) {
  const bool was_stepping = stepping_.exchange(true, std::memory_order_acquire);
  assert(!was_stepping && "Simulation stepped from two threads: cross-node state leak");
  (void)was_stepping;
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.NextTime() <= deadline) {
    EventQueue::Fired fired = queue_.PopNext();
    assert(fired.when >= now_ && "event queue went backwards");
    now_ = fired.when;
    ++events_executed_;
    fired.fn();
    if (fired.repeating) {
      // Hand the callback back to its (re-keyed) slot. Dropped if the
      // callback cancelled itself.
      queue_.RestoreRepeating(fired.id, std::move(fired.fn));
    }
  }
  if (!stopped_ && now_ < deadline && deadline != std::numeric_limits<SimTime>::max()) {
    now_ = deadline;
  }
  stepping_.store(false, std::memory_order_release);
}

}  // namespace taichi::sim
