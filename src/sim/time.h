// Simulated time primitives.
//
// All simulated time in this project is kept as unsigned 64-bit nanoseconds.
// A uint64 nanosecond clock wraps after ~584 years of simulated time, far
// beyond any experiment in this repository.
#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace taichi::sim {

// A point in simulated time, in nanoseconds since simulation start.
using SimTime = uint64_t;

// A span of simulated time, in nanoseconds.
using Duration = uint64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1000;
inline constexpr Duration kMillisecond = 1000 * kMicrosecond;
inline constexpr Duration kSecond = 1000 * kMillisecond;

// Construction helpers. Arguments are interpreted in the named unit.
constexpr Duration Nanos(uint64_t n) { return n; }
constexpr Duration Micros(uint64_t n) { return n * kMicrosecond; }
constexpr Duration Millis(uint64_t n) { return n * kMillisecond; }
constexpr Duration Seconds(uint64_t n) { return n * kSecond; }

// Fractional constructors, useful for calibration constants such as 2.7 us.
constexpr Duration MicrosF(double us) { return static_cast<Duration>(us * 1e3); }
constexpr Duration MillisF(double ms) { return static_cast<Duration>(ms * 1e6); }
constexpr Duration SecondsF(double s) { return static_cast<Duration>(s * 1e9); }

// Conversions to floating-point values of the named unit.
constexpr double ToMicros(Duration d) { return static_cast<double>(d) / 1e3; }
constexpr double ToMillis(Duration d) { return static_cast<double>(d) / 1e6; }
constexpr double ToSeconds(Duration d) { return static_cast<double>(d) / 1e9; }

// Renders a duration with an auto-selected unit, e.g. "2.70us" or "67ms".
std::string FormatDuration(Duration d);

}  // namespace taichi::sim

#endif  // SRC_SIM_TIME_H_
