#include "src/sim/time.h"

#include <cstdio>

namespace taichi::sim {

std::string FormatDuration(Duration d) {
  char buf[64];
  if (d < kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%lluns", static_cast<unsigned long long>(d));
  } else if (d < kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.2fus", ToMicros(d));
  } else if (d < kSecond) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ToMillis(d));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", ToSeconds(d));
  }
  return buf;
}

}  // namespace taichi::sim
