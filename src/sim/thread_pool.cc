#include "src/sim/thread_pool.h"

namespace taichi::sim {

ThreadPool::ThreadPool(int threads) : threads_(threads < 1 ? 1 : threads) {
  workers_.reserve(static_cast<size_t>(threads_ - 1));
  for (int i = 1; i < threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

void ThreadPool::RunSlice(const std::function<void(size_t)>& fn, size_t n) {
  for (;;) {
    const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) {
      return;
    }
    fn(i);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_gen = 0;
  for (;;) {
    const std::function<void(size_t)>* fn;
    size_t n;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [this, seen_gen] { return shutdown_ || job_gen_ != seen_gen; });
      if (shutdown_) {
        return;
      }
      seen_gen = job_gen_;
      fn = job_;
      n = job_n_;
    }
    RunSlice(*fn, n);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--unfinished_ == 0) {
        done_cv_.notify_one();
      }
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (workers_.empty() || n <= 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_n_ = n;
    next_.store(0, std::memory_order_relaxed);
    unfinished_ = workers_.size();
    ++job_gen_;
  }
  start_cv_.notify_all();
  RunSlice(fn, n);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return unfinished_ == 0; });
  job_ = nullptr;
}

}  // namespace taichi::sim
