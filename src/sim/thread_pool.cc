#include "src/sim/thread_pool.h"

namespace taichi::sim {

ThreadPool::ThreadPool(int threads) : threads_(threads < 1 ? 1 : threads) {
  cursors_ = std::make_unique<ShardCursor[]>(static_cast<size_t>(threads_));
  workers_.reserve(static_cast<size_t>(threads_ - 1));
  for (int i = 1; i < threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

void ThreadPool::RunShards(FunctionRef<void(size_t)> fn, size_t n, int self) {
  const size_t stride = static_cast<size_t>(threads_);
  // d == 0: level-1 — drain the stripe this participant owns (indices
  // self, self + T, ...) off its private cursor. d > 0: the stripe is dry;
  // steal whole indices from the d-th neighbour's cursor. A claim that
  // lands past the stripe end is a bounded no-op (at most one per visitor
  // per queue), not a lost index.
  for (int d = 0; d < threads_; ++d) {
    const size_t q = static_cast<size_t>((self + d) % threads_);
    std::atomic<uint32_t>& cursor = cursors_[q].next;
    for (;;) {
      const size_t k = cursor.fetch_add(1, std::memory_order_relaxed);
      const size_t i = q + k * stride;
      if (i >= n) {
        break;
      }
      fn(i);
    }
  }
}

void ThreadPool::WorkerLoop(int self) {
  uint64_t seen_gen = 0;
  for (;;) {
    FunctionRef<void(size_t)> fn;
    size_t n;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [this, seen_gen] { return shutdown_ || job_gen_ != seen_gen; });
      if (shutdown_) {
        return;
      }
      seen_gen = job_gen_;
      fn = job_;
      n = job_n_;
    }
    RunShards(fn, n, self);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--unfinished_ == 0) {
        done_cv_.notify_one();
      }
    }
  }
}

void ThreadPool::ParallelFor(size_t n, FunctionRef<void(size_t)> fn) {
  if (workers_.empty() || n <= 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = fn;
    job_n_ = n;
    for (int i = 0; i < threads_; ++i) {
      cursors_[i].next.store(0, std::memory_order_relaxed);
    }
    unfinished_ = workers_.size();
    ++job_gen_;
  }
  start_cv_.notify_all();
  RunShards(fn, n, 0);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return unfinished_ == 0; });
  job_ = FunctionRef<void(size_t)>();
}

}  // namespace taichi::sim
