#include "src/sim/packet_pool.h"

#include <cstdlib>

#include "src/sim/logging.h"

namespace taichi::sim {

PacketPool::PacketPool(size_t capacity) {
  if (capacity == 0) capacity = 1;
  if (capacity > kMaxCapacity) capacity = kMaxCapacity;
  slots_.resize(capacity);
  free_.reserve(capacity);
  // LIFO: push descending so the first Alloc hands out slot 0. Freshly freed
  // slots are reused first, which keeps the working set cache-hot under
  // steady load.
  for (size_t i = capacity; i-- > 0;) {
    free_.push_back(static_cast<uint32_t>(i));
  }
}

PacketHandle PacketPool::Alloc(const hw::IoPacket& pkt) {
  if (free_.empty()) {
    ++exhausted_;
    return kInvalidPacketHandle;
  }
  uint32_t idx = free_.back();
  free_.pop_back();
  Slot& s = slots_[idx];
  s.pkt = pkt;
  return idx | (s.generation << kIndexBits);
}

void PacketPool::Free(PacketHandle h) {
  uint32_t idx = CheckedIndex(h);
  Slot& s = slots_[idx];
  // Bump the generation, skipping the value that would make a full-mask
  // handle collide with kInvalidPacketHandle for the last slot.
  s.generation = (s.generation + 1) & kGenerationMask;
  if (idx == kIndexMask && s.generation == kGenerationMask) {
    s.generation = 0;
  }
  free_.push_back(idx);
}

uint32_t PacketPool::CheckedIndex(PacketHandle h) const {
  uint32_t idx = IndexOf(h);
  if (h == kInvalidPacketHandle || idx >= slots_.size() ||
      GenerationOf(h) != slots_[idx].generation) {
    DieStale(h);
  }
  return idx;
}

void PacketPool::DieStale(PacketHandle h) const {
  TAICHI_ERROR(0, "PacketPool: stale or invalid handle 0x%08x (slot %u gen %u, pool gen %u)",
               h, IndexOf(h), GenerationOf(h),
               IndexOf(h) < slots_.size() ? slots_[IndexOf(h)].generation : 0u);
  std::abort();
}

}  // namespace taichi::sim
