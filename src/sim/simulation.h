// The simulation executor: a clock plus the event loop driving all models.
#ifndef SRC_SIM_SIMULATION_H_
#define SRC_SIM_SIMULATION_H_

#include <atomic>
#include <cstdint>
#include <limits>

#include "src/sim/event_queue.h"
#include "src/sim/random.h"
#include "src/sim/time.h"

namespace taichi::sim {

// Owns simulated time. Every model object holds a Simulation* and expresses
// all its timing through Schedule()/At(). Single-threaded and deterministic:
// two runs with the same seed produce identical event orders.
class Simulation {
 public:
  explicit Simulation(uint64_t seed = 1) : rng_(seed) {}
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime Now() const { return now_; }
  Rng& rng() { return rng_; }

  // Schedules `fn` to run `delay` nanoseconds from now.
  EventId Schedule(Duration delay, InlineCallback fn) {
    return queue_.Schedule(now_ + delay, std::move(fn));
  }

  // Schedules `fn` at an absolute time, which must not be in the past:
  // that is a model bug (an event computed its deadline from stale state),
  // reported via TAICHI_ERROR + assert and clamped to now.
  EventId At(SimTime when, InlineCallback fn);

  // Schedules `fn` at now + first_delay and then every `period` after, on a
  // single slot with a single callback: the standing-timer pattern (kernel
  // tick, poll loops, arrival processes) without rebuilding a closure every
  // cycle. The returned id stays valid across firings; Cancel() ends the
  // cycle and Reschedule() overrides the next firing (both safe from inside
  // the callback itself).
  EventId ScheduleRepeating(Duration first_delay, Duration period, InlineCallback fn) {
    return queue_.ScheduleRepeating(now_ + first_delay, period, std::move(fn));
  }
  EventId ScheduleRepeating(Duration period, InlineCallback fn) {
    return ScheduleRepeating(period, period, std::move(fn));
  }

  // Re-keys a pending event to fire `delay` from now, in place: no slot
  // churn, no callback reconstruction. Order-equivalent to Cancel + Schedule
  // of the same callback (the event gets a fresh sequence number). Returns
  // false if the event already fired or was cancelled.
  bool Reschedule(EventId id, Duration delay) {
    return queue_.Reschedule(id, now_ + delay);
  }

  bool Cancel(EventId id) { return queue_.Cancel(id); }
  bool IsPending(EventId id) const { return queue_.IsPending(id); }

  // Runs events until the queue is empty or Stop() is called.
  void Run() { RunUntil(std::numeric_limits<SimTime>::max()); }

  // Runs events with time <= deadline; the clock lands exactly on `deadline`
  // if the queue drained or the next event lies beyond it.
  void RunUntil(SimTime deadline);

  // Convenience for RunUntil(Now() + delta).
  void RunFor(Duration delta) { RunUntil(now_ + delta); }

  // Makes Run()/RunUntil() return after the current event completes.
  void Stop() { stopped_ = true; }

  // True when no pending event fires at or before `t`: the fleet layer's
  // idle-node test. A node that is idle for a whole epoch can have its clock
  // advanced by AdvanceIdleTo() without entering the event loop.
  bool IdleUntil(SimTime t) const {
    return queue_.empty() || queue_.NextTime() > t;
  }

  // Fast-forwards the clock of an idle node to `t` — exactly what
  // RunUntil(t) would do, minus the loop entry. Caller must have checked
  // IdleUntil(t); anything else is a model bug (asserted).
  void AdvanceIdleTo(SimTime t);

  // Releases event-pool memory after a burst; see EventQueue::ShrinkToFit.
  void ShrinkEventPool() { queue_.ShrinkToFit(); }

  uint64_t events_executed() const { return events_executed_; }
  size_t pending_events() const { return queue_.size(); }
  size_t event_pool_slots() const { return queue_.slot_count(); }

  // Calendar front-end controls; see EventQueue. The threshold only matters
  // for dense nodes (default engages at 100k standing events) — benches and
  // tests lower it to exercise the wheel.
  void SetCalendarEngageThreshold(size_t threshold) {
    queue_.set_calendar_engage_threshold(threshold);
  }
  bool calendar_engaged() const { return queue_.calendar_engaged(); }
  uint64_t calendar_engages() const { return queue_.calendar_engages(); }

 private:
  EventQueue queue_;
  Rng rng_;
  SimTime now_ = 0;
  bool stopped_ = false;
  uint64_t events_executed_ = 0;
  // Trips an assert if two threads ever step this Simulation concurrently.
  // The fleet layer steps one node per worker thread; everything a node's
  // events touch must hang off this Simulation, so concurrent entry here is
  // the signature of cross-node shared state. One exchange per RunUntil call
  // (not per event) — negligible.
  std::atomic<bool> stepping_{false};
};

}  // namespace taichi::sim

#endif  // SRC_SIM_SIMULATION_H_
