// Deterministic random number generation and the distributions used by the
// workload models.
#ifndef SRC_SIM_RANDOM_H_
#define SRC_SIM_RANDOM_H_

#include <cmath>
#include <cstdint>

#include "src/sim/time.h"

namespace taichi::sim {

// xoshiro256** generator: fast, high quality, and unlike std::mt19937_64 its
// output sequence is identical across standard library implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed);

  // Uniform on [0, 2^64).
  uint64_t Next();

  // Uniform on [0, 1).
  double NextDouble();

  // Uniform integer on [lo, hi] inclusive. Requires lo <= hi.
  uint64_t UniformInt(uint64_t lo, uint64_t hi);

  // Uniform real on [lo, hi).
  double Uniform(double lo, double hi);

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Exponential with the given mean (= 1/lambda).
  double Exponential(double mean);

  // Standard normal via Box-Muller, then scaled.
  double Normal(double mean, double stddev);

  // Log-normal parameterized by the *target* mean and sigma of the underlying
  // normal. Used for heavy-ish service time distributions.
  double LogNormal(double mean, double sigma);

  // Bounded Pareto on [lo, hi] with tail index alpha. Heavy-tailed durations
  // such as the non-preemptible routine lengths of Fig. 5 use this.
  double BoundedPareto(double lo, double hi, double alpha);

  // Duration helpers: nanosecond-rounded draws, never returning zero.
  Duration ExpDuration(Duration mean);
  Duration UniformDuration(Duration lo, Duration hi);

  // Forks an independent stream seeded from this one; handy for giving each
  // workload source its own stream while keeping global determinism.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace taichi::sim

#endif  // SRC_SIM_RANDOM_H_
