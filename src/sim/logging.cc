#include "src/sim/logging.h"

#include <cstdio>

namespace taichi::sim {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void DefaultSink(LogLevel level, SimTime now, const char* message) {
  std::fprintf(stderr, "[%12.3fus %s] %s\n", ToMicros(now), LevelName(level), message);
}

LogSink g_sink = &DefaultSink;

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

LogSink SetLogSink(LogSink sink) {
  LogSink previous = g_sink == &DefaultSink ? nullptr : g_sink;
  g_sink = sink != nullptr ? sink : &DefaultSink;
  return previous;
}

void Logf(LogLevel level, SimTime now, const char* fmt, ...) {
  if (level < g_level) {
    return;
  }
  // Format once into a stack buffer, then hand the line to the sink: the
  // backend sees exactly what stderr used to get, and the hot path stays
  // allocation-free. Over-long messages truncate rather than allocate.
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  g_sink(level, now, buf);
}

}  // namespace taichi::sim
