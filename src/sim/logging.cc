#include "src/sim/logging.h"

#include <cstdio>

namespace taichi::sim {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

void Logf(LogLevel level, SimTime now, const char* fmt, ...) {
  if (level < g_level) {
    return;
  }
  std::fprintf(stderr, "[%12.3fus %s] ", ToMicros(now), LevelName(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace taichi::sim
