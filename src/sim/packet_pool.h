// Fixed-slab packet arena with generation-tagged handles — the simulator's
// equivalent of a DPDK mbuf pool.
#ifndef SRC_SIM_PACKET_POOL_H_
#define SRC_SIM_PACKET_POOL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/hw/io_packet.h"

namespace taichi::sim {

// A packet's identity while it is in flight: 20 bits of slot index plus 12
// bits of generation. Rings, event captures and batch sinks move these 4-byte
// values instead of copying the ~80-byte IoPacket at every hop.
using PacketHandle = uint32_t;

// Returned by Alloc when the pool is exhausted; never a valid handle (the
// all-ones generation is skipped by the generation bump).
inline constexpr PacketHandle kInvalidPacketHandle = 0xffffffffu;

// Fixed-capacity arena of IoPacket slots with a LIFO free-list. One pool per
// simulated node, owned by hw::Machine, so parallel fleet epochs never share
// an arena and the serial-vs-parallel byte-identity contract holds trivially.
//
// Handles are generation-tagged: Free bumps the slot's 12-bit generation, so
// a stale handle (use-after-free) fails validation loudly instead of silently
// reading the slot's next tenant. Exhaustion is not fatal — Alloc returns
// kInvalidPacketHandle and counts it; the RX path treats that as a drop, the
// same way a real NIC sheds load when its mbuf pool runs dry.
//
// All storage is sized at construction; Alloc/Free/Get never allocate.
class PacketPool {
 public:
  static constexpr uint32_t kIndexBits = 20;
  static constexpr uint32_t kGenerationBits = 12;
  static constexpr uint32_t kMaxCapacity = 1u << kIndexBits;
  static constexpr uint32_t kIndexMask = kMaxCapacity - 1;
  static constexpr uint32_t kGenerationMask = (1u << kGenerationBits) - 1;

  explicit PacketPool(size_t capacity);

  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  // Takes a free slot, copies `pkt` into it and returns its handle, or
  // returns kInvalidPacketHandle (and counts the exhaustion) when no slot is
  // free.
  PacketHandle Alloc(const hw::IoPacket& pkt);

  // Returns the packet behind a live handle. A stale or malformed handle is
  // a use-after-free bug in the caller: logged via TAICHI_ERROR and fatal.
  hw::IoPacket& Get(PacketHandle h) { return slots_[CheckedIndex(h)].pkt; }
  const hw::IoPacket& Get(PacketHandle h) const {
    return slots_[CheckedIndex(h)].pkt;
  }

  // Returns the slot to the free-list and bumps its generation so every
  // outstanding copy of `h` goes stale.
  void Free(PacketHandle h);

  size_t capacity() const { return slots_.size(); }
  size_t in_use() const { return slots_.size() - free_.size(); }
  // Alloc calls that failed for want of a free slot.
  uint64_t exhausted() const { return exhausted_; }

  static constexpr uint32_t IndexOf(PacketHandle h) { return h & kIndexMask; }
  static constexpr uint32_t GenerationOf(PacketHandle h) {
    return (h >> kIndexBits) & kGenerationMask;
  }

 private:
  struct Slot {
    hw::IoPacket pkt;
    uint32_t generation = 0;
  };

  uint32_t CheckedIndex(PacketHandle h) const;
  [[noreturn]] void DieStale(PacketHandle h) const;

  std::vector<Slot> slots_;
  std::vector<uint32_t> free_;  // LIFO stack of free slot indices.
  uint64_t exhausted_ = 0;
};

}  // namespace taichi::sim

#endif  // SRC_SIM_PACKET_POOL_H_
