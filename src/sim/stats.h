// Measurement primitives: summaries, percentiles, histograms and CDFs.
#ifndef SRC_SIM_STATS_H_
#define SRC_SIM_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace taichi::sim {

// Accumulates samples and answers min/mean/max/stddev/mdev/percentile
// queries. Stores all samples; simulations here produce at most a few
// million samples per metric, which is cheap and keeps percentiles exact.
class Summary {
 public:
  void Add(double sample);

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double min() const;
  double max() const;
  double mean() const;
  double sum() const { return sum_; }
  double stddev() const;
  // Mean absolute deviation from the mean — ping's "mdev" statistic.
  double mdev() const;
  // p in [0, 100]; exact order statistic with linear interpolation.
  double Percentile(double p) const;

  const std::vector<double>& samples() const { return samples_; }
  // Sorted view of the samples, built lazily and shared with Percentile().
  const std::vector<double>& SortedSamples() const;
  void Clear();

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0;
  // Welford running moments: the sum-of-squares shortcut cancels
  // catastrophically when stddev << mean (e.g. microsecond jitter on
  // millisecond latencies), which is exactly what latency metrics look like.
  double running_mean_ = 0;
  double m2_ = 0;
};

// Fixed-bucket histogram over [lo, hi) with `bins` equal-width buckets plus
// underflow/overflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);

  void Add(double sample);

  size_t bins() const { return counts_.size(); }
  uint64_t bin_count(size_t i) const { return counts_[i]; }
  double bin_lo(size_t i) const;
  double bin_hi(size_t i) const;
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }
  uint64_t total() const { return total_; }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  uint64_t total_ = 0;
};

// Builds an empirical CDF: fraction of samples <= x for query points x.
class CdfBuilder {
 public:
  void Add(double sample) { summary_.Add(sample); }
  size_t count() const { return summary_.count(); }

  // Fraction (0..1) of samples with value <= x.
  double FractionBelow(double x) const;

  // Smallest sample value v such that FractionBelow(v) >= q (q in 0..1].
  double Quantile(double q) const { return summary_.Percentile(q * 100.0); }

 private:
  Summary summary_;
};

// A named monotonically increasing counter.
class Counter {
 public:
  void Inc(uint64_t by = 1) { value_ += by; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

}  // namespace taichi::sim

#endif  // SRC_SIM_STATS_H_
