#include "src/sim/random.h"

#include <algorithm>
#include <cassert>

namespace taichi::sim {
namespace {

constexpr uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, the canonical seeder for xoshiro.
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) {
    word = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::UniformInt(uint64_t lo, uint64_t hi) {
  assert(lo <= hi);
  const uint64_t span = hi - lo + 1;
  if (span == 0) {  // Full 64-bit range.
    return Next();
  }
  return lo + Next() % span;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Exponential(double mean) {
  double u = NextDouble();
  // Guard log(0).
  u = std::max(u, 1e-18);
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  // Box-Muller; one draw per call keeps the stream layout simple and
  // reproducible even when calls interleave with other distributions.
  double u1 = std::max(NextDouble(), 1e-18);
  double u2 = NextDouble();
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return mean + stddev * z;
}

double Rng::LogNormal(double mean, double sigma) {
  // Choose mu so the distribution's mean equals `mean`.
  double mu = std::log(mean) - sigma * sigma / 2.0;
  return std::exp(mu + sigma * Normal(0.0, 1.0));
}

double Rng::BoundedPareto(double lo, double hi, double alpha) {
  assert(lo > 0 && hi > lo && alpha > 0);
  double u = NextDouble();
  double la = std::pow(lo, alpha);
  double ha = std::pow(hi, alpha);
  double x = -(u * ha - u * la - ha) / (ha * la);
  return std::pow(1.0 / x, 1.0 / alpha);
}

Duration Rng::ExpDuration(Duration mean) {
  double d = Exponential(static_cast<double>(mean));
  return std::max<Duration>(1, static_cast<Duration>(d));
}

Duration Rng::UniformDuration(Duration lo, Duration hi) {
  return UniformInt(std::max<Duration>(lo, 1), std::max<Duration>(hi, 1));
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace taichi::sim
