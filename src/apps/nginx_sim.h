// Nginx-through-the-SmartNIC workload model (§6.5): wrk clients drive HTTP
// and HTTPS requests against an Nginx server in the host VM under high
// connection concurrency, in both keep-alive ("long") and
// connection-per-request ("short") regimes.
#ifndef SRC_APPS_NGINX_SIM_H_
#define SRC_APPS_NGINX_SIM_H_

#include "src/exp/testbed.h"
#include "src/sim/stats.h"

namespace taichi::apps {

struct NginxConfig {
  // Concurrent client connections. The paper uses 10,000; the simulation
  // default is scaled down (relative comparisons are concurrency-invariant
  // once the data plane saturates — see EXPERIMENTS.md).
  int connections = 1000;
  bool https = false;
  bool short_connection = false;  // New connection per request.
  uint32_t request_bytes = 256;
  uint32_t response_bytes = 4096;
  sim::Duration server_compute = sim::Micros(30);
  sim::Duration tls_handshake_compute = sim::Micros(150);
  uint32_t conn_setup_dp_cost_ns = 1200;  // Flow-table install in the DP.
};

struct NginxResult {
  double requests_per_sec = 0;
  sim::Summary request_latency_us;
};

class NginxSim {
 public:
  NginxSim(exp::Testbed* bed, NginxConfig config, uint16_t owner = 21);
  ~NginxSim();
  NginxResult Run(sim::Duration duration, sim::Duration warmup);

  void RegisterMetrics(obs::MetricsRegistry& registry,
                       const std::string& prefix = "app.nginx") const {
    registry.AddGauge(prefix + ".requests", [this] { return static_cast<double>(requests_); });
    registry.AddSummary(prefix + ".request_latency_us", &request_latency_us_);
  }

 private:
  struct Conn;
  void StartCycle(Conn& conn);
  void SendPacket(Conn& conn, bool setup);

  exp::Testbed* bed_;
  NginxConfig config_;
  uint16_t owner_;
  std::vector<std::unique_ptr<Conn>> conns_;
  sim::Rng rng_{0};
  bool counting_ = false;
  uint64_t requests_ = 0;
  sim::Summary request_latency_us_;
};

}  // namespace taichi::apps

#endif  // SRC_APPS_NGINX_SIM_H_
