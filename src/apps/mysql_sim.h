// MySQL-through-the-SmartNIC workload model (§6.5).
//
// 192 sysbench threads drive a closed loop against a MySQL server in the
// host VM. Each query crosses the SmartNIC data plane twice (request and
// result set), optionally touches storage through the DP, and spends a
// calibrated compute delay inside the VM (which the SmartNIC scheduler
// cannot influence — see DESIGN.md "Known deviations"). Metrics mirror the
// paper: average and peak queries/transactions per second.
#ifndef SRC_APPS_MYSQL_SIM_H_
#define SRC_APPS_MYSQL_SIM_H_

#include "src/exp/testbed.h"
#include "src/sim/stats.h"

namespace taichi::apps {

struct MysqlConfig {
  int threads = 192;  // sysbench thread count (§6.1).
  uint32_t request_bytes = 128;
  uint32_t response_bytes = 1024;
  sim::Duration server_compute_mean = sim::Micros(250);
  double storage_io_prob = 0.30;  // Fraction of queries touching disk.
  sim::Duration backend_latency = sim::Micros(70);
  int queries_per_transaction = 20;  // sysbench OLTP mix.
  // Window for the max_/avg_ per-second style statistics.
  sim::Duration sample_window = sim::Millis(20);
};

struct MysqlResult {
  double avg_qps = 0;
  double max_qps = 0;
  double avg_tps = 0;
  double max_tps = 0;
  sim::Summary query_latency_us;
};

class MysqlSim {
 public:
  MysqlSim(exp::Testbed* bed, MysqlConfig config, uint16_t owner = 20);
  MysqlResult Run(sim::Duration duration, sim::Duration warmup);

  void RegisterMetrics(obs::MetricsRegistry& registry,
                       const std::string& prefix = "app.mysql") const {
    registry.AddGauge(prefix + ".queries", [this] { return static_cast<double>(queries_); });
    registry.AddSummary(prefix + ".query_latency_us", &query_latency_us_);
  }

 private:
  void SendQuery(uint64_t thread);
  void FinishServerSide(uint64_t thread);

  exp::Testbed* bed_;
  MysqlConfig config_;
  uint16_t owner_;
  std::vector<sim::SimTime> issued_;
  sim::Rng rng_{0};
  bool counting_ = false;
  uint64_t queries_ = 0;
  std::vector<uint64_t> window_counts_;
  sim::SimTime window_start_ = 0;
  uint64_t window_queries_ = 0;
  sim::Summary query_latency_us_;
};

}  // namespace taichi::apps

#endif  // SRC_APPS_MYSQL_SIM_H_
