#include "src/apps/mysql_sim.h"

#include <algorithm>

namespace taichi::apps {

namespace {
constexpr uint64_t kIoBit = 1ULL << 47;
}

MysqlSim::MysqlSim(exp::Testbed* bed, MysqlConfig config, uint16_t owner)
    : bed_(bed), config_(config), owner_(owner), rng_(bed->config().seed ^ 0x5041) {}

void MysqlSim::SendQuery(uint64_t thread) {
  issued_[thread] = bed_->sim().Now();
  hw::IoPacket pkt;
  pkt.id = thread;
  pkt.kind = hw::IoKind::kNetRx;
  pkt.size_bytes = config_.request_bytes;
  pkt.flow = thread;
  pkt.user_tag = exp::Testbed::Tag(owner_, thread);
  bed_->InjectFromWire(pkt);
}

void MysqlSim::FinishServerSide(uint64_t thread) {
  hw::IoPacket resp;
  resp.id = thread;
  resp.kind = hw::IoKind::kNetTx;
  resp.size_bytes = config_.response_bytes;
  resp.flow = thread;
  resp.user_tag = exp::Testbed::Tag(owner_, thread);
  bed_->InjectFromVm(resp);
}

MysqlResult MysqlSim::Run(sim::Duration duration, sim::Duration warmup) {
  issued_.assign(config_.threads, 0);

  // Query arrives at the VM: server-side execution, optionally via storage.
  bed_->RegisterVmSink(owner_, [this](const hw::IoPacket& pkt, sim::SimTime) {
    uint64_t thread = pkt.user_tag & 0xffffffffffULL;
    sim::Duration compute = rng_.ExpDuration(config_.server_compute_mean);
    bool needs_io = rng_.Bernoulli(config_.storage_io_prob);
    bed_->sim().Schedule(compute, [this, thread, needs_io] {
      if (!needs_io) {
        FinishServerSide(thread);
        return;
      }
      hw::IoPacket io;
      io.id = thread;
      io.kind = hw::IoKind::kBlockIo;
      io.size_bytes = 4096;
      io.flow = thread;
      io.user_tag = exp::Testbed::Tag(owner_, thread);
      bed_->InjectFromVm(io);
    });
  });

  // Storage leg: submit processed by DP -> backend -> completion -> respond.
  bed_->RegisterStorageSink(owner_, [this](const hw::IoPacket& pkt, sim::SimTime) {
    uint64_t payload = pkt.user_tag & 0xffffffffffffULL;
    if ((payload & kIoBit) == 0) {
      hw::IoPacket completion = pkt;
      completion.user_tag |= kIoBit;
      completion.created = 0;
      bed_->sim().Schedule(config_.backend_latency,
                           [this, completion] { bed_->Inject(completion); });
      return;
    }
    FinishServerSide(payload & ~kIoBit & 0xffffffffffULL);
  });

  // Result set back at the client: count and issue the next query.
  bed_->RegisterWireSink(owner_, [this](const hw::IoPacket& pkt, sim::SimTime now) {
    uint64_t thread = pkt.user_tag & 0xffffffffffULL;
    if (counting_) {
      ++queries_;
      ++window_queries_;
      query_latency_us_.Add(sim::ToMicros(now - issued_[thread]));
      if (now - window_start_ >= config_.sample_window) {
        window_counts_.push_back(window_queries_);
        window_queries_ = 0;
        window_start_ = now;
      }
    }
    SendQuery(thread);
  });

  for (int t = 0; t < config_.threads; ++t) {
    SendQuery(static_cast<uint64_t>(t));
  }
  bed_->sim().RunFor(warmup);
  counting_ = true;
  window_start_ = bed_->sim().Now();
  sim::SimTime t0 = bed_->sim().Now();
  bed_->sim().RunFor(duration);
  double secs = sim::ToSeconds(bed_->sim().Now() - t0);
  counting_ = false;

  MysqlResult result;
  result.avg_qps = static_cast<double>(queries_) / secs;
  double max_window = 0;
  for (uint64_t w : window_counts_) {
    max_window = std::max(max_window, static_cast<double>(w));
  }
  result.max_qps = max_window / sim::ToSeconds(config_.sample_window);
  result.avg_tps = result.avg_qps / config_.queries_per_transaction;
  result.max_tps = result.max_qps / config_.queries_per_transaction;
  result.query_latency_us = query_latency_us_;
  return result;
}

}  // namespace taichi::apps
