#include "src/apps/nginx_sim.h"

namespace taichi::apps {

// One wrk connection's request cycle. A cycle is a sequence of round trips:
//   short HTTP : SYN handshake, request/response, FIN       (3 RTs)
//   long HTTP  : request/response                           (1 RT)
//   short HTTPS: SYN, TLS handshake, request/response, FIN  (4 RTs)
//   long HTTPS : request/response                           (1 RT)
struct NginxSim::Conn {
  uint64_t id = 0;
  int round_trip = 0;
  int total_round_trips = 1;
  sim::SimTime request_start = 0;
};

NginxSim::NginxSim(exp::Testbed* bed, NginxConfig config, uint16_t owner)
    : bed_(bed), config_(config), owner_(owner), rng_(bed->config().seed ^ 0x9618) {}

NginxSim::~NginxSim() = default;

void NginxSim::SendPacket(Conn& conn, bool setup) {
  hw::IoPacket pkt;
  pkt.id = conn.id;
  pkt.kind = hw::IoKind::kNetRx;
  pkt.size_bytes = config_.request_bytes;
  pkt.flow = conn.id;
  pkt.user_tag = exp::Testbed::Tag(owner_, conn.id);
  if (setup) {
    pkt.dp_cost_hint = config_.conn_setup_dp_cost_ns;
  }
  bed_->InjectFromWire(pkt);
}

void NginxSim::StartCycle(Conn& conn) {
  conn.round_trip = 0;
  int rts = 1;
  if (config_.short_connection) {
    rts += 2;  // SYN + FIN round trips.
    if (config_.https) {
      rts += 1;  // TLS handshake round trip.
    }
  }
  conn.total_round_trips = rts;
  conn.request_start = bed_->sim().Now();
  SendPacket(conn, /*setup=*/config_.short_connection);
}

NginxResult NginxSim::Run(sim::Duration duration, sim::Duration warmup) {
  conns_.clear();
  for (int i = 0; i < config_.connections; ++i) {
    auto conn = std::make_unique<Conn>();
    conn->id = static_cast<uint64_t>(i);
    conns_.push_back(std::move(conn));
  }

  // Server side: compute (plus TLS work on the handshake leg) and respond.
  bed_->RegisterVmSink(owner_, [this](const hw::IoPacket& pkt, sim::SimTime) {
    uint64_t cid = pkt.user_tag & 0xffffffffffffULL;
    Conn& conn = *conns_[cid];
    sim::Duration compute = config_.server_compute;
    bool handshake_leg = config_.short_connection && config_.https && conn.round_trip == 1;
    if (handshake_leg) {
      compute += config_.tls_handshake_compute;
    }
    hw::IoPacket resp = pkt;
    resp.kind = hw::IoKind::kNetTx;
    // Only the payload round trip carries the full response body.
    bool payload_leg = conn.round_trip == conn.total_round_trips - 1 -
                           (config_.short_connection ? 1 : 0) ||
                       !config_.short_connection;
    resp.size_bytes = payload_leg ? config_.response_bytes : 64;
    resp.created = 0;
    resp.dp_cost_hint = 0;
    bed_->sim().Schedule(compute, [this, resp] { bed_->InjectFromVm(resp); });
  });

  bed_->RegisterWireSink(owner_, [this](const hw::IoPacket& pkt, sim::SimTime now) {
    uint64_t cid = pkt.user_tag & 0xffffffffffffULL;
    Conn& conn = *conns_[cid];
    ++conn.round_trip;
    if (conn.round_trip >= conn.total_round_trips) {
      if (counting_) {
        ++requests_;
        request_latency_us_.Add(sim::ToMicros(now - conn.request_start));
      }
      StartCycle(conn);
      return;
    }
    SendPacket(conn, /*setup=*/false);
  });

  for (auto& conn : conns_) {
    StartCycle(*conn);
  }
  bed_->sim().RunFor(warmup);
  counting_ = true;
  requests_ = 0;
  sim::SimTime t0 = bed_->sim().Now();
  bed_->sim().RunFor(duration);
  double secs = sim::ToSeconds(bed_->sim().Now() - t0);
  counting_ = false;

  NginxResult result;
  result.requests_per_sec = static_cast<double>(requests_) / secs;
  result.request_latency_us = request_latency_us_;
  return result;
}

}  // namespace taichi::apps
