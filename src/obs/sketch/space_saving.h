// Space-saving heavy-hitter tracker: a fixed-capacity table of candidate
// flows ordered by estimated byte count, fed through a count-min admission
// filter. Constant space, allocation-free after construction, O(log capacity)
// worst case per update (capacity is a small constant, so effectively O(1)).
//
// The classic space-saving algorithm evicts the minimum entry on every miss
// once the table is full, which at millions of distinct flows turns every
// mouse flow into an eviction. Here the caller supplies the flow's current
// count-min estimate with each update: a miss only displaces the minimum
// entry when the estimate exceeds it (the HeavyKeeper/TopK pattern), so cold
// flows bounce off the filter in O(1) and the table churns only when a flow
// has sketch-evidence of being heavy. The inserted count is the count-min
// estimate — an overestimate — and the displaced minimum is recorded as the
// entry's `error`, preserving space-saving's invariant that true counts lie
// in [count - error, count].
//
// Merge semantics (fleet roll-up): counts of keys present in both tables
// add; keys present in one carry over; the union is then cut back to
// capacity keeping the largest byte counts, ties broken by key order. The
// operation is commutative, and it is exact (lossless, equal to a
// direct single-table run) whenever no table ever evicted — the regime the
// merge-algebra tests pin.
#ifndef SRC_OBS_SKETCH_SPACE_SAVING_H_
#define SRC_OBS_SKETCH_SPACE_SAVING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/sketch/sketch_hash.h"

namespace taichi::obs::sketch {

struct SpaceSavingConfig {
  uint32_t capacity = 64;  // Tracked candidates; report top-K from these.
  uint64_t seed = 0x7a1c5eedULL;
};

class SpaceSaving {
 public:
  struct Entry {
    FlowKey key;
    uint64_t bytes = 0;    // Estimated byte count (upper bound).
    uint64_t packets = 0;  // Estimated packet count (upper bound).
    uint64_t error = 0;    // Max overcount baked into `bytes` at admission.
  };

  explicit SpaceSaving(SpaceSavingConfig config);

  // Records `bytes` for `key`. `est_bytes`/`est_packets` are the flow's
  // current count-min estimates (including this packet); they seed the entry
  // on admission and gate eviction. Allocation-free.
  void Update(const FlowKey& key, const HashPair& h, uint32_t bytes,
              uint64_t est_bytes, uint64_t est_packets);

  // The top `k` tracked flows by bytes, descending, ties by key order.
  // Control-plane only (allocates the result vector).
  std::vector<Entry> TopK(size_t k) const;

  size_t tracked() const { return live_; }
  uint32_t capacity() const { return config_.capacity; }
  uint64_t seed() const { return seed_; }
  // Total misses that displaced a live entry — when zero, the table is an
  // exact per-flow account of every key it admitted (merge is lossless).
  uint64_t evictions() const { return evictions_; }

  bool Compatible(const SpaceSaving& other) const {
    return seed_ == other.seed_ && config_.capacity == other.config_.capacity;
  }

  // Union-and-truncate as described above. `other` must share
  // (seed, capacity); on mismatch the merge is refused with a TAICHI_ERROR
  // and *this is unchanged.
  bool Merge(const SpaceSaving& other);

 private:
  static constexpr uint32_t kEmpty = UINT32_MAX;

  // Entries live in heap order: entries_[0] is the minimum by (bytes, key).
  // index_ is open-addressed (linear probing, backward-shift deletion) from
  // key hash to entry position, kept in sync with every sift.
  bool HeapLess(const Entry& a, const Entry& b) const;
  void SiftUp(size_t pos);
  void SiftDown(size_t pos);
  void IndexInsert(const FlowKey& key, uint32_t pos);
  void IndexErase(const FlowKey& key);
  uint32_t* IndexFind(const FlowKey& key);
  size_t IndexSlot(const FlowKey& key) const;
  void Rebuild(std::vector<Entry> entries);

  SpaceSavingConfig config_;
  uint64_t seed_;
  std::vector<Entry> entries_;  // Min-heap by (bytes, key); first live_ used.
  size_t live_ = 0;
  std::vector<FlowKey> index_keys_;  // Open-addressed: key per slot.
  std::vector<uint32_t> index_pos_;  // Entry position per slot, kEmpty if free.
  uint64_t index_mask_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace taichi::obs::sketch

#endif  // SRC_OBS_SKETCH_SPACE_SAVING_H_
