#include "src/obs/sketch/count_min.h"

#include <algorithm>
#include <cmath>

#include "src/obs/json.h"
#include "src/sim/logging.h"

namespace taichi::obs::sketch {

namespace {

uint32_t RoundUpPow2(uint32_t v) {
  uint32_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

}  // namespace

CountMinSketch::CountMinSketch(CountMinConfig config) : config_(config) {
  if (config_.width < 2) {
    TAICHI_ERROR(0, "cms: width %u is degenerate, clamping to 2", config_.width);
    config_.width = 2;
  }
  if (config_.depth < 1) {
    TAICHI_ERROR(0, "cms: depth %u is degenerate, clamping to 1", config_.depth);
    config_.depth = 1;
  }
  seed_ = DeriveSeed(config_.seed, /*tag=*/0xc35);
  width_ = RoundUpPow2(config_.width);
  mask_ = width_ - 1;
  cells_.resize(static_cast<size_t>(width_) * config_.depth);
}

void CountMinSketch::Update(const HashPair& h, uint32_t bytes) {
  // Conservative update: read the current minima, then raise only the cells
  // that sit at (or below) minimum + increment. Cells inflated by other
  // flows are left alone, which is what keeps the overestimate small.
  uint64_t min_packets = UINT64_MAX;
  uint64_t min_bytes = UINT64_MAX;
  for (uint32_t row = 0; row < config_.depth; ++row) {
    const Cell& c = cells_[CellIndex(h, row)];
    min_packets = std::min(min_packets, c.packets);
    min_bytes = std::min(min_bytes, c.bytes);
  }
  const uint64_t target_packets = min_packets + 1;
  const uint64_t target_bytes = min_bytes + bytes;
  for (uint32_t row = 0; row < config_.depth; ++row) {
    Cell& c = cells_[CellIndex(h, row)];
    c.packets = std::max(c.packets, target_packets);
    c.bytes = std::max(c.bytes, target_bytes);
  }
  ++total_packets_;
  total_bytes_ += bytes;
}

CountMinSketch::Estimate CountMinSketch::Query(const HashPair& h) const {
  Estimate est{UINT64_MAX, UINT64_MAX};
  for (uint32_t row = 0; row < config_.depth; ++row) {
    const Cell& c = cells_[CellIndex(h, row)];
    est.packets = std::min(est.packets, c.packets);
    est.bytes = std::min(est.bytes, c.bytes);
  }
  return est;
}

bool CountMinSketch::Merge(const CountMinSketch& other) {
  if (!Compatible(other)) {
    TAICHI_ERROR(0, "cms: merge of incompatible sketches (w %u/%u d %u/%u)",
                 width_, other.width_, config_.depth, other.config_.depth);
    return false;
  }
  for (size_t i = 0; i < cells_.size(); ++i) {
    cells_[i].packets += other.cells_[i].packets;
    cells_[i].bytes += other.cells_[i].bytes;
  }
  total_packets_ += other.total_packets_;
  total_bytes_ += other.total_bytes_;
  return true;
}

double CountMinSketch::epsilon() const {
  return std::exp(1.0) / static_cast<double>(width_);
}

std::string CountMinSketch::ToJson() const {
  std::string out = "{";
  out += "\"width\": " + std::to_string(width_);
  out += ", \"depth\": " + std::to_string(config_.depth);
  out += ", \"total_packets\": " + std::to_string(total_packets_);
  out += ", \"total_bytes\": " + std::to_string(total_bytes_);
  out += ", \"epsilon\": " + JsonNum(epsilon());
  out += "}";
  return out;
}

}  // namespace taichi::obs::sketch
