#include "src/obs/sketch/space_saving.h"

#include <algorithm>

#include "src/sim/logging.h"

namespace taichi::obs::sketch {

namespace {

uint64_t RoundUpPow2(uint64_t v) {
  uint64_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

// Descending by bytes, ascending by key on ties — the report order.
bool ReportGreater(const SpaceSaving::Entry& a, const SpaceSaving::Entry& b) {
  if (a.bytes != b.bytes) {
    return a.bytes > b.bytes;
  }
  return a.key < b.key;
}

}  // namespace

SpaceSaving::SpaceSaving(SpaceSavingConfig config) : config_(config) {
  if (config_.capacity < 1) {
    TAICHI_ERROR(0, "space_saving: capacity %u is degenerate, clamping to 1",
                 config_.capacity);
    config_.capacity = 1;
  }
  seed_ = DeriveSeed(config_.seed, /*tag=*/0x707);
  entries_.resize(config_.capacity);
  // 4x slack keeps linear probes short at full occupancy.
  const uint64_t slots = RoundUpPow2(uint64_t{4} * config_.capacity);
  index_keys_.resize(slots);
  index_pos_.assign(slots, kEmpty);
  index_mask_ = slots - 1;
}

bool SpaceSaving::HeapLess(const Entry& a, const Entry& b) const {
  if (a.bytes != b.bytes) {
    return a.bytes < b.bytes;
  }
  return a.key < b.key;
}

size_t SpaceSaving::IndexSlot(const FlowKey& key) const {
  return static_cast<size_t>(HashKey(key, seed_).h2 & index_mask_);
}

uint32_t* SpaceSaving::IndexFind(const FlowKey& key) {
  size_t slot = IndexSlot(key);
  while (index_pos_[slot] != kEmpty) {
    if (index_keys_[slot] == key) {
      return &index_pos_[slot];
    }
    slot = (slot + 1) & index_mask_;
  }
  return nullptr;
}

void SpaceSaving::IndexInsert(const FlowKey& key, uint32_t pos) {
  size_t slot = IndexSlot(key);
  while (index_pos_[slot] != kEmpty) {
    slot = (slot + 1) & index_mask_;
  }
  index_keys_[slot] = key;
  index_pos_[slot] = pos;
}

void SpaceSaving::IndexErase(const FlowKey& key) {
  size_t slot = IndexSlot(key);
  while (index_pos_[slot] != kEmpty && !(index_keys_[slot] == key)) {
    slot = (slot + 1) & index_mask_;
  }
  if (index_pos_[slot] == kEmpty) {
    return;  // Not present (cannot happen for live entries).
  }
  // Backward-shift deletion keeps probe chains unbroken without tombstones.
  size_t hole = slot;
  index_pos_[hole] = kEmpty;
  size_t j = hole;
  for (;;) {
    j = (j + 1) & index_mask_;
    if (index_pos_[j] == kEmpty) {
      return;
    }
    const size_t ideal = IndexSlot(index_keys_[j]);
    // Move j into the hole unless j's probe chain starts after the hole
    // (cyclic interval check: ideal in (hole, j] means it must stay).
    const bool stays = hole <= j ? (ideal > hole && ideal <= j)
                                 : (ideal > hole || ideal <= j);
    if (!stays) {
      index_keys_[hole] = index_keys_[j];
      index_pos_[hole] = index_pos_[j];
      index_pos_[j] = kEmpty;
      hole = j;
    }
  }
}

void SpaceSaving::SiftUp(size_t pos) {
  while (pos > 0) {
    const size_t parent = (pos - 1) / 2;
    if (!HeapLess(entries_[pos], entries_[parent])) {
      break;
    }
    std::swap(entries_[pos], entries_[parent]);
    *IndexFind(entries_[pos].key) = static_cast<uint32_t>(pos);
    *IndexFind(entries_[parent].key) = static_cast<uint32_t>(parent);
    pos = parent;
  }
}

void SpaceSaving::SiftDown(size_t pos) {
  for (;;) {
    const size_t l = pos * 2 + 1;
    if (l >= live_) {
      break;
    }
    size_t best = l;
    const size_t r = l + 1;
    if (r < live_ && HeapLess(entries_[r], entries_[l])) {
      best = r;
    }
    if (!HeapLess(entries_[best], entries_[pos])) {
      break;
    }
    std::swap(entries_[pos], entries_[best]);
    *IndexFind(entries_[pos].key) = static_cast<uint32_t>(pos);
    *IndexFind(entries_[best].key) = static_cast<uint32_t>(best);
    pos = best;
  }
}

void SpaceSaving::Update(const FlowKey& key, const HashPair& /*h*/, uint32_t bytes,
                         uint64_t est_bytes, uint64_t est_packets) {
  if (uint32_t* pos = IndexFind(key); pos != nullptr) {
    Entry& e = entries_[*pos];
    e.bytes += bytes;
    e.packets += 1;
    SiftDown(*pos);  // Counts only grow: the entry can only move down.
    return;
  }
  if (live_ < config_.capacity) {
    const size_t pos = live_++;
    entries_[pos] = Entry{key, est_bytes, est_packets, est_bytes - bytes};
    IndexInsert(key, static_cast<uint32_t>(pos));
    SiftUp(pos);
    return;
  }
  // Full table: admit only with sketch-evidence of outweighing the current
  // minimum — the O(1) bounce that keeps mouse flows off the eviction path.
  Entry& min = entries_[0];
  if (est_bytes <= min.bytes) {
    return;
  }
  ++evictions_;
  IndexErase(min.key);
  min = Entry{key, est_bytes, est_packets, est_bytes - bytes};
  IndexInsert(key, 0);
  SiftDown(0);
}

std::vector<SpaceSaving::Entry> SpaceSaving::TopK(size_t k) const {
  std::vector<Entry> out(entries_.begin(), entries_.begin() + live_);
  std::sort(out.begin(), out.end(), ReportGreater);
  if (out.size() > k) {
    out.resize(k);
  }
  return out;
}

void SpaceSaving::Rebuild(std::vector<Entry> entries) {
  std::fill(index_pos_.begin(), index_pos_.end(), kEmpty);
  live_ = 0;
  for (Entry& e : entries) {
    const size_t pos = live_++;
    entries_[pos] = e;
    IndexInsert(e.key, static_cast<uint32_t>(pos));
    SiftUp(pos);
  }
}

bool SpaceSaving::Merge(const SpaceSaving& other) {
  if (!Compatible(other)) {
    TAICHI_ERROR(0, "space_saving: merge of incompatible tables (cap %u/%u)",
                 config_.capacity, other.config_.capacity);
    return false;
  }
  // Union the live sets (control plane: allocation is fine here).
  std::vector<Entry> merged(entries_.begin(), entries_.begin() + live_);
  for (size_t i = 0; i < other.live_; ++i) {
    const Entry& oe = other.entries_[i];
    bool found = false;
    for (Entry& e : merged) {
      if (e.key == oe.key) {
        e.bytes += oe.bytes;
        e.packets += oe.packets;
        e.error += oe.error;
        found = true;
        break;
      }
    }
    if (!found) {
      merged.push_back(oe);
    }
  }
  std::sort(merged.begin(), merged.end(), ReportGreater);
  evictions_ += other.evictions_;
  if (merged.size() > config_.capacity) {
    evictions_ += merged.size() - config_.capacity;
    merged.resize(config_.capacity);
  }
  Rebuild(std::move(merged));
  return true;
}

}  // namespace taichi::obs::sketch
