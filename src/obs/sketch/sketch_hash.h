// Seeded 64-bit mixing hashes shared by every sketch. Deterministic across
// platforms and standard libraries (no std::hash, no wall clock): the same
// seed always produces the same hash family, which is what makes per-node
// sketches mergeable into fleet scope.
#ifndef SRC_OBS_SKETCH_SKETCH_HASH_H_
#define SRC_OBS_SKETCH_SKETCH_HASH_H_

#include <cstdint>

#include "src/obs/flow_key.h"

namespace taichi::obs::sketch {

// splitmix64 finalizer: full-avalanche bijective mix.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Two independent 64-bit hashes of a flow key under `seed`. Every sketch
// derives its row/register/bucket indices from this pair via the
// Kirsch-Mitzenmacher construction h_i = h1 + i * h2, so one key costs two
// mixes regardless of sketch depth.
struct HashPair {
  uint64_t h1;
  uint64_t h2;
};

inline HashPair HashKey(const FlowKey& key, uint64_t seed) {
  const uint64_t a = Mix64(key.PackHi() ^ seed);
  const uint64_t b = Mix64(key.PackLo() ^ Mix64(seed ^ 0xd6e8feb86659fd93ULL) ^ a);
  return {a, b | 1};  // Odd h2: h1 + i*h2 never collapses across rows.
}

// Derives a stable sub-seed for sketch component `tag` from a base seed —
// the "sim::Rng-derived keys" pattern: one user-visible seed fans out into
// independent hash families for CMS, HLL and the heavy-hitter index.
inline uint64_t DeriveSeed(uint64_t base, uint64_t tag) {
  return Mix64(base ^ Mix64(tag));
}

}  // namespace taichi::obs::sketch

#endif  // SRC_OBS_SKETCH_SKETCH_HASH_H_
