// HyperLogLog distinct-flow estimator: 2^precision one-byte registers, each
// holding the maximum leading-zero rank seen in its substream. Constant
// space, O(1) allocation-free updates, and mergeable by register-wise max —
// merging per-node estimators yields exactly the estimator a single fleet
// run would have built, so distinct-flow counts compose across nodes with
// no double counting.
//
// Standard error is ~1.04/sqrt(2^precision) (p=12 -> ~1.6%); the small-range
// regime falls back to linear counting over empty registers, as in the
// original paper.
#ifndef SRC_OBS_SKETCH_HYPERLOGLOG_H_
#define SRC_OBS_SKETCH_HYPERLOGLOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/sketch/sketch_hash.h"

namespace taichi::obs::sketch {

struct HyperLogLogConfig {
  uint32_t precision = 12;  // 2^p registers; clamped to [4, 18].
  uint64_t seed = 0x7a1c5eedULL;
};

class HyperLogLog {
 public:
  explicit HyperLogLog(HyperLogLogConfig config);

  // Observes one flow key. O(1), allocation-free; re-observing a key is a
  // no-op by construction.
  void Observe(const FlowKey& key) { Observe(HashKey(key, seed_)); }
  void Observe(const HashPair& h);

  // The distinct-count estimate with small-range linear counting correction.
  double Estimate() const;

  // Relative standard error of Estimate(): 1.04 / sqrt(register count).
  double ErrorBound() const;

  // Register-wise max. `other` must share (seed, precision); on mismatch the
  // merge is refused with a TAICHI_ERROR and *this is unchanged.
  bool Merge(const HyperLogLog& other);

  uint32_t precision() const { return config_.precision; }
  uint64_t seed() const { return seed_; }
  bool Compatible(const HyperLogLog& other) const {
    return seed_ == other.seed_ && config_.precision == other.config_.precision;
  }

  // Deterministic JSON: precision, estimate, error bound.
  std::string ToJson() const;

 private:
  HyperLogLogConfig config_;
  uint64_t seed_;
  std::vector<uint8_t> registers_;  // 2^precision entries.
};

}  // namespace taichi::obs::sketch

#endif  // SRC_OBS_SKETCH_HYPERLOGLOG_H_
