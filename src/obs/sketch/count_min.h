// Count-min sketch over flow keys, counting packets and bytes per flow in
// constant space: depth hash rows of width counters each, point queries
// answered by the minimum cell across rows.
//
// Properties the flow observability layer leans on:
//   - Overestimate-only: an estimate is never below the true count. The
//     update is *conservative* (only cells equal to the current minimum
//     advance), which empirically cuts the overestimate by 2-10x on skewed
//     traffic without giving up the one-sided error guarantee.
//   - Mergeable: two sketches built with the same (seed, width, depth) merge
//     by cell-wise addition, and the merged sketch upper-bounds the union
//     stream exactly as if it had seen every packet itself — per-node
//     sketches roll up to fleet scope the way MergeSummaries does for exact
//     summaries.
//   - Deterministic: the hash family comes from the seed alone, so same-seed
//     runs are byte-identical and cross-node merges line up cell for cell.
//   - Error bound: with width w and total stream mass L1, any estimate
//     exceeds the truth by more than (e/w)*L1 with probability < e^-depth.
//
// The update path is allocation-free and O(depth): all storage is laid out
// at construction.
#ifndef SRC_OBS_SKETCH_COUNT_MIN_H_
#define SRC_OBS_SKETCH_COUNT_MIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/sketch/sketch_hash.h"

namespace taichi::obs::sketch {

struct CountMinConfig {
  uint32_t width = 4096;  // Counters per row; rounded up to a power of two.
  uint32_t depth = 4;     // Hash rows.
  uint64_t seed = 0x7a1c5eedULL;
};

class CountMinSketch {
 public:
  struct Estimate {
    uint64_t packets = 0;
    uint64_t bytes = 0;
  };

  explicit CountMinSketch(CountMinConfig config);

  // Counts one packet of `bytes` for `key`. O(depth), allocation-free.
  void Update(const FlowKey& key, uint32_t bytes) { Update(HashKey(key, seed_), bytes); }
  // Hash-reuse variant for callers that already computed the key's pair.
  void Update(const HashPair& h, uint32_t bytes);

  // Point query: an upper bound on the flow's true packet/byte counts.
  Estimate Query(const FlowKey& key) const { return Query(HashKey(key, seed_)); }
  Estimate Query(const HashPair& h) const;

  // Cell-wise addition. `other` must share (seed, width, depth); on mismatch
  // the merge is refused with a TAICHI_ERROR and *this is unchanged.
  bool Merge(const CountMinSketch& other);

  // Exact totals of the observed stream (not estimates).
  uint64_t total_packets() const { return total_packets_; }
  uint64_t total_bytes() const { return total_bytes_; }

  // (e / width): multiply by the stream's L1 mass for the additive error
  // ceiling that holds with probability 1 - e^-depth.
  double epsilon() const;
  uint32_t width() const { return width_; }
  uint32_t depth() const { return config_.depth; }
  uint64_t seed() const { return seed_; }

  bool Compatible(const CountMinSketch& other) const {
    return seed_ == other.seed_ && width_ == other.width_ &&
           config_.depth == other.config_.depth;
  }

  // Deterministic JSON: config, totals and error bound (not the cell arrays).
  std::string ToJson() const;

 private:
  struct Cell {
    uint64_t packets = 0;
    uint64_t bytes = 0;
  };

  size_t CellIndex(const HashPair& h, uint32_t row) const {
    return static_cast<size_t>(row) * width_ +
           static_cast<size_t>((h.h1 + row * h.h2) & mask_);
  }

  CountMinConfig config_;
  uint64_t seed_;
  uint32_t width_;   // Power of two.
  uint64_t mask_;    // width_ - 1.
  std::vector<Cell> cells_;  // depth rows of width cells, row-major.
  uint64_t total_packets_ = 0;
  uint64_t total_bytes_ = 0;
};

}  // namespace taichi::obs::sketch

#endif  // SRC_OBS_SKETCH_COUNT_MIN_H_
