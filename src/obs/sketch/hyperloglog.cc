#include "src/obs/sketch/hyperloglog.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "src/obs/json.h"
#include "src/sim/logging.h"

namespace taichi::obs::sketch {

HyperLogLog::HyperLogLog(HyperLogLogConfig config) : config_(config) {
  if (config_.precision < 4 || config_.precision > 18) {
    TAICHI_ERROR(0, "hll: precision %u out of [4, 18], clamping", config_.precision);
    config_.precision = std::clamp<uint32_t>(config_.precision, 4, 18);
  }
  seed_ = DeriveSeed(config_.seed, /*tag=*/0x411);
  registers_.resize(size_t{1} << config_.precision, 0);
}

void HyperLogLog::Observe(const HashPair& h) {
  // Top p bits select the register; the rank is 1 + leading zeros of the
  // remaining 64-p bits (capped by the hash width, which never binds at
  // realistic cardinalities).
  const int p = static_cast<int>(config_.precision);
  const size_t reg = static_cast<size_t>(h.h1 >> (64 - p));
  const uint64_t rest = h.h1 << p;  // The low 64-p bits, top-aligned.
  const int lz = rest == 0 ? 64 - p : std::countl_zero(rest);
  const uint8_t rank = static_cast<uint8_t>(std::min(64 - p, lz + 1));
  registers_[reg] = std::max(registers_[reg], rank);
}

double HyperLogLog::Estimate() const {
  const double m = static_cast<double>(registers_.size());
  // Bias-corrected harmonic mean (alpha_m from the HLL paper).
  const double alpha = 0.7213 / (1.0 + 1.079 / m);
  double inv_sum = 0;
  size_t zeros = 0;
  for (uint8_t r : registers_) {
    inv_sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) {
      ++zeros;
    }
  }
  const double raw = alpha * m * m / inv_sum;
  if (raw <= 2.5 * m && zeros > 0) {
    // Small-range correction: linear counting over empty registers.
    return m * std::log(m / static_cast<double>(zeros));
  }
  return raw;
}

double HyperLogLog::ErrorBound() const {
  return 1.04 / std::sqrt(static_cast<double>(registers_.size()));
}

bool HyperLogLog::Merge(const HyperLogLog& other) {
  if (!Compatible(other)) {
    TAICHI_ERROR(0, "hll: merge of incompatible estimators (p %u/%u)",
                 config_.precision, other.config_.precision);
    return false;
  }
  for (size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
  return true;
}

std::string HyperLogLog::ToJson() const {
  std::string out = "{";
  out += "\"precision\": " + std::to_string(config_.precision);
  out += ", \"estimate\": " + JsonNum(Estimate());
  out += ", \"error_bound\": " + JsonNum(ErrorBound());
  out += "}";
  return out;
}

}  // namespace taichi::obs::sketch
