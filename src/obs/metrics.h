// Central metrics registry: every component registers its named
// counters/gauges/summaries/histograms here, and the registry can be
// snapshotted at any simulated time and exported as JSON or CSV.
//
// The registry does not own metric storage — components keep their metric
// members (so their existing accessors stay cheap) and register *pointers*.
// A registered pointer must stay valid until the metric is removed or the
// registry is destroyed; in practice the registry is built next to the
// simulation objects and snapshotted before teardown.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace taichi::obs {

// One exported metric value, flattened for serialization.
struct MetricSample {
  enum class Kind : uint8_t { kCounter, kGauge, kSummary, kHistogram };

  struct Bin {
    double lo = 0;
    double hi = 0;
    uint64_t count = 0;
  };

  std::string name;
  Kind kind = Kind::kCounter;
  uint64_t count = 0;  // Counter value, or sample count for summaries.
  double value = 0;    // Gauge value.
  // Summary statistics (valid when kind == kSummary and count > 0).
  double min = 0, mean = 0, max = 0, p50 = 0, p90 = 0, p99 = 0, sum = 0;
  // Histogram buckets (valid when kind == kHistogram).
  std::vector<Bin> bins;
  uint64_t underflow = 0, overflow = 0;
};

const char* ToString(MetricSample::Kind kind);

// A point-in-time copy of every registered metric.
struct MetricsSnapshot {
  sim::SimTime at = 0;
  std::vector<MetricSample> samples;  // Sorted by name.

  const MetricSample* Find(const std::string& name) const;
  std::string ToJson() const;
  std::string ToCsv() const;
  // Serializes to `path` in the format implied by the extension (".csv" for
  // CSV, JSON otherwise). Returns false (and logs a TAICHI_ERROR) on failure.
  bool WriteFile(const std::string& path) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registration. Re-registering an existing name is a misuse (it usually
  // means two components picked the same prefix); the registry logs a
  // TAICHI_ERROR and replaces the previous entry.
  void AddCounter(const std::string& name, const sim::Counter* counter);
  // Derived counters (e.g. sums over sub-objects) register a callback.
  void AddCounterFn(const std::string& name, std::function<uint64_t()> fn);
  void AddGauge(const std::string& name, std::function<double()> fn);
  void AddSummary(const std::string& name, const sim::Summary* summary);
  void AddHistogram(const std::string& name, const sim::Histogram* histogram);

  // Deregistration, for components that die before the registry.
  void Remove(const std::string& name);
  void RemovePrefix(const std::string& prefix);
  // Drops every registration. For host-side registries that outlive their
  // simulated node (a fleet node crash destroys the Testbed and everything
  // registered from it); the registry must never keep pointers into freed
  // components, and a restarted node re-registers from scratch.
  void Clear() { metrics_.clear(); }

  bool Has(const std::string& name) const { return metrics_.contains(name); }
  size_t size() const { return metrics_.size(); }

  // The registered summary under `name`, or nullptr if `name` is absent or
  // not a summary. Fleet aggregation reads per-node summaries through this.
  const sim::Summary* FindSummary(const std::string& name) const;

  MetricsSnapshot Snapshot(sim::SimTime at) const;

 private:
  struct Entry {
    MetricSample::Kind kind = MetricSample::Kind::kCounter;
    const sim::Counter* counter = nullptr;
    const sim::Summary* summary = nullptr;
    const sim::Histogram* histogram = nullptr;
    std::function<uint64_t()> counter_fn;
    std::function<double()> gauge_fn;
  };

  void Add(const std::string& name, Entry entry);

  std::map<std::string, Entry> metrics_;  // Ordered: exports are sorted.
};

// --- Fleet aggregation -------------------------------------------------------

// Merges the raw samples of several per-node summaries into one summary, so
// fleet-level percentiles are exact order statistics over the union rather
// than an approximation from per-node percentiles. Null entries are skipped.
sim::Summary MergeSummaries(const std::vector<const sim::Summary*>& parts);

}  // namespace taichi::obs

#endif  // SRC_OBS_METRICS_H_
