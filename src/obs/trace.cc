#include "src/obs/trace.h"

#include <cstdio>
#include <functional>

#include "src/obs/json.h"
#include "src/sim/logging.h"

namespace taichi::obs {

const char* ToString(TraceCategory category) {
  switch (category) {
    case TraceCategory::kSched:
      return "sched";
    case TraceCategory::kIrq:
      return "irq";
    case TraceCategory::kIpi:
      return "ipi";
    case TraceCategory::kVirt:
      return "virt";
    case TraceCategory::kProbe:
      return "probe";
    case TraceCategory::kLock:
      return "lock";
    case TraceCategory::kDp:
      return "dp";
    case TraceCategory::kAccel:
      return "accel";
  }
  return "?";
}

TraceRecorder::TraceRecorder(size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) {
    TAICHI_ERROR(0, "trace: capacity 0 is invalid, clamping to 1");
    capacity_ = 1;
  }
  ring_.reserve(capacity_ < 4096 ? capacity_ : 4096);
}

void TraceRecorder::Push(char phase, sim::SimTime ts, sim::Duration dur, int32_t track,
                         TraceCategory category, const char* name, uint64_t arg0, uint64_t arg1) {
  TraceEvent e;
  e.ts = ts;
  e.dur = dur;
  e.arg0 = arg0;
  e.arg1 = arg1;
  e.track = track;
  e.category = category;
  e.phase = phase;
  e.name = name;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
  } else {
    ring_[next_] = std::move(e);
    next_ = (next_ + 1) % capacity_;
  }
  ++total_;
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<TraceEvent> TraceRecorder::EventsForTrack(int32_t track) const {
  std::vector<TraceEvent> out;
  for (size_t i = 0; i < ring_.size(); ++i) {
    const TraceEvent& e = ring_[(next_ + i) % ring_.size()];
    if (e.track == track) {
      out.push_back(e);
    }
  }
  return out;
}

void TraceRecorder::Clear() {
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

void TraceRecorder::AppendChromeProcess(std::string& out, int pid,
                                        const std::string& process_name, bool& first) const {
  char buf[256];
  auto sep = [&out, &first] {
    if (first) {
      first = false;
    } else {
      out += ",\n";
    }
  };

  // Metadata: process name plus one named thread lane per track. Tracks that
  // carried events but were never named get a default lane name.
  sep();
  std::snprintf(buf, sizeof(buf),
                "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":\"process_name\","
                "\"args\":{\"name\":\"%s\"}}",
                pid, JsonEscape(process_name).c_str());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                ",\n{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":\"process_sort_index\","
                "\"args\":{\"sort_index\":%d}}",
                pid, pid);
  out += buf;
  std::map<int32_t, std::string> lanes = track_names_;
  for (size_t i = 0; i < ring_.size(); ++i) {
    const int32_t t = ring_[i].track;
    if (!lanes.contains(t)) {
      std::snprintf(buf, sizeof(buf), t >= kAccelTrackBase ? "accel q%d" : "cpu%d",
                    t >= kAccelTrackBase ? t - kAccelTrackBase : t);
      lanes[t] = buf;
    }
  }
  for (const auto& [track, name] : lanes) {
    std::snprintf(buf, sizeof(buf),
                  ",\n{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\","
                  "\"args\":{\"name\":\"%s\"}}",
                  pid, track, JsonEscape(name).c_str());
    out += buf;
    // Chrome sorts lanes by tid by default, but pin the order explicitly so
    // accelerator queues always render below the CPUs.
    std::snprintf(buf, sizeof(buf),
                  ",\n{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_sort_index\","
                  "\"args\":{\"sort_index\":%d}}",
                  pid, track, track);
    out += buf;
  }

  for (const TraceEvent& e : Events()) {
    std::snprintf(buf, sizeof(buf), ",\n{\"ph\":\"%c\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f",
                  e.phase, pid, e.track, static_cast<double>(e.ts) / 1000.0);
    out += buf;
    if (e.phase == 'X') {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f", static_cast<double>(e.dur) / 1000.0);
      out += buf;
    }
    if (e.phase != 'E') {
      std::snprintf(buf, sizeof(buf), ",\"cat\":\"%s\",\"name\":\"%s\"", ToString(e.category),
                    JsonEscape(e.name).c_str());
      out += buf;
      if (e.phase == 'i') {
        out += ",\"s\":\"t\"";  // Instant scope: thread.
      }
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"a0\":%llu,\"a1\":%llu}",
                    static_cast<unsigned long long>(e.arg0),
                    static_cast<unsigned long long>(e.arg1));
      out += buf;
    }
    out += "}";
  }
}

namespace {

std::string WrapTraceEvents(const std::function<void(std::string&, bool&)>& body) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  body(out, first);
  out += "\n]}\n";
  return out;
}

bool WriteTraceFile(const std::string& body, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    TAICHI_ERROR(0, "trace: cannot open '%s' for writing", path.c_str());
    return false;
  }
  size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (written != body.size()) {
    TAICHI_ERROR(0, "trace: short write to '%s'", path.c_str());
    return false;
  }
  return true;
}

}  // namespace

std::string TraceRecorder::ToChromeJson() const {
  return WrapTraceEvents([this](std::string& out, bool& first) {
    AppendChromeProcess(out, 0, "taichi-smartnic-sim", first);
  });
}

bool TraceRecorder::WriteChromeJson(const std::string& path) const {
  return WriteTraceFile(ToChromeJson(), path);
}

std::string MergedChromeJson(const std::vector<TraceProcess>& processes) {
  return WrapTraceEvents([&processes](std::string& out, bool& first) {
    for (size_t i = 0; i < processes.size(); ++i) {
      if (processes[i].recorder == nullptr) {
        TAICHI_ERROR(0, "trace: merged export skipping null recorder '%s'",
                     processes[i].name.c_str());
        continue;
      }
      processes[i].recorder->AppendChromeProcess(out, static_cast<int>(i), processes[i].name,
                                                 first);
    }
  });
}

bool WriteMergedChromeJson(const std::vector<TraceProcess>& processes,
                           const std::string& path) {
  return WriteTraceFile(MergedChromeJson(processes), path);
}

}  // namespace taichi::obs
