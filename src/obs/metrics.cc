#include "src/obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <utility>

#include "src/obs/json.h"
#include "src/sim/logging.h"

namespace taichi::obs {
namespace {

// Numbers in exports: plain, locale-independent, finite (shared formatter).
std::string Num(double v) { return JsonNum(v); }
std::string Num(uint64_t v) { return JsonNum(v); }

}  // namespace

const char* ToString(MetricSample::Kind kind) {
  switch (kind) {
    case MetricSample::Kind::kCounter:
      return "counter";
    case MetricSample::Kind::kGauge:
      return "gauge";
    case MetricSample::Kind::kSummary:
      return "summary";
    case MetricSample::Kind::kHistogram:
      return "histogram";
  }
  return "?";
}

// ---- MetricsRegistry ---------------------------------------------------------

void MetricsRegistry::Add(const std::string& name, Entry entry) {
  auto [it, inserted] = metrics_.try_emplace(name, std::move(entry));
  if (!inserted) {
    TAICHI_ERROR(0, "metrics: duplicate registration of '%s' replaces the previous metric",
                 name.c_str());
    it->second = std::move(entry);
  }
}

void MetricsRegistry::AddCounter(const std::string& name, const sim::Counter* counter) {
  Entry e;
  e.kind = MetricSample::Kind::kCounter;
  e.counter = counter;
  Add(name, std::move(e));
}

void MetricsRegistry::AddCounterFn(const std::string& name, std::function<uint64_t()> fn) {
  Entry e;
  e.kind = MetricSample::Kind::kCounter;
  e.counter_fn = std::move(fn);
  Add(name, std::move(e));
}

void MetricsRegistry::AddGauge(const std::string& name, std::function<double()> fn) {
  Entry e;
  e.kind = MetricSample::Kind::kGauge;
  e.gauge_fn = std::move(fn);
  Add(name, std::move(e));
}

void MetricsRegistry::AddSummary(const std::string& name, const sim::Summary* summary) {
  Entry e;
  e.kind = MetricSample::Kind::kSummary;
  e.summary = summary;
  Add(name, std::move(e));
}

void MetricsRegistry::AddHistogram(const std::string& name, const sim::Histogram* histogram) {
  Entry e;
  e.kind = MetricSample::Kind::kHistogram;
  e.histogram = histogram;
  Add(name, std::move(e));
}

void MetricsRegistry::Remove(const std::string& name) { metrics_.erase(name); }

const sim::Summary* MetricsRegistry::FindSummary(const std::string& name) const {
  auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.kind != MetricSample::Kind::kSummary) {
    return nullptr;
  }
  return it->second.summary;
}

void MetricsRegistry::RemovePrefix(const std::string& prefix) {
  for (auto it = metrics_.lower_bound(prefix); it != metrics_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    it = metrics_.erase(it);
  }
}

MetricsSnapshot MetricsRegistry::Snapshot(sim::SimTime at) const {
  MetricsSnapshot snap;
  snap.at = at;
  snap.samples.reserve(metrics_.size());
  for (const auto& [name, entry] : metrics_) {
    MetricSample s;
    s.name = name;
    s.kind = entry.kind;
    switch (entry.kind) {
      case MetricSample::Kind::kCounter:
        s.count = entry.counter != nullptr ? entry.counter->value() : entry.counter_fn();
        break;
      case MetricSample::Kind::kGauge:
        s.value = entry.gauge_fn();
        break;
      case MetricSample::Kind::kSummary: {
        const sim::Summary& sum = *entry.summary;
        s.count = sum.count();
        if (!sum.empty()) {
          s.min = sum.min();
          s.mean = sum.mean();
          s.max = sum.max();
          s.p50 = sum.Percentile(50);
          s.p90 = sum.Percentile(90);
          s.p99 = sum.Percentile(99);
          s.sum = sum.sum();
        }
        break;
      }
      case MetricSample::Kind::kHistogram: {
        const sim::Histogram& h = *entry.histogram;
        s.count = h.total();
        s.bins.reserve(h.bins());
        for (size_t i = 0; i < h.bins(); ++i) {
          s.bins.push_back({h.bin_lo(i), h.bin_hi(i), h.bin_count(i)});
        }
        s.underflow = h.underflow();
        s.overflow = h.overflow();
        break;
      }
    }
    snap.samples.push_back(std::move(s));
  }
  return snap;
}

// ---- MetricsSnapshot ---------------------------------------------------------

const MetricSample* MetricsSnapshot::Find(const std::string& name) const {
  for (const MetricSample& s : samples) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"at_ns\": " + Num(static_cast<uint64_t>(at)) +
                    ",\n  \"metrics\": {\n";
  for (size_t i = 0; i < samples.size(); ++i) {
    const MetricSample& s = samples[i];
    out += "    \"" + JsonEscape(s.name) + "\": {\"kind\": \"";
    out += ToString(s.kind);
    out += "\"";
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        out += ", \"value\": " + Num(s.count);
        break;
      case MetricSample::Kind::kGauge:
        out += ", \"value\": " + Num(s.value);
        break;
      case MetricSample::Kind::kSummary:
        out += ", \"count\": " + Num(s.count) + ", \"min\": " + Num(s.min) +
               ", \"mean\": " + Num(s.mean) + ", \"max\": " + Num(s.max) +
               ", \"p50\": " + Num(s.p50) + ", \"p90\": " + Num(s.p90) +
               ", \"p99\": " + Num(s.p99) + ", \"sum\": " + Num(s.sum);
        break;
      case MetricSample::Kind::kHistogram: {
        out += ", \"count\": " + Num(s.count) + ", \"underflow\": " + Num(s.underflow) +
               ", \"overflow\": " + Num(s.overflow) + ", \"bins\": [";
        for (size_t b = 0; b < s.bins.size(); ++b) {
          out += (b == 0 ? "" : ", ");
          out += "[" + Num(s.bins[b].lo) + ", " + Num(s.bins[b].hi) + ", " +
                 Num(s.bins[b].count) + "]";
        }
        out += "]";
        break;
      }
    }
    out += "}";
    out += (i + 1 < samples.size()) ? ",\n" : "\n";
  }
  out += "  }\n}\n";
  return out;
}

std::string MetricsSnapshot::ToCsv() const {
  std::string out = "name,kind,count,value,min,mean,max,p50,p90,p99,sum\n";
  for (const MetricSample& s : samples) {
    out += s.name;
    out += ',';
    out += ToString(s.kind);
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        out += "," + Num(s.count) + ",,,,,,,,";
        break;
      case MetricSample::Kind::kGauge:
        out += ",," + Num(s.value) + ",,,,,,,";
        break;
      case MetricSample::Kind::kSummary:
        out += "," + Num(s.count) + ",," + Num(s.min) + "," + Num(s.mean) + "," + Num(s.max) +
               "," + Num(s.p50) + "," + Num(s.p90) + "," + Num(s.p99) + "," + Num(s.sum);
        break;
      case MetricSample::Kind::kHistogram:
        // Bucket detail is a JSON-side concern; CSV keeps the total only.
        out += "," + Num(s.count) + ",,,,,,,,";
        break;
    }
    out += '\n';
  }
  return out;
}

sim::Summary MergeSummaries(const std::vector<const sim::Summary*>& parts) {
  sim::Summary merged;
  for (const sim::Summary* part : parts) {
    if (part == nullptr) {
      continue;
    }
    for (double sample : part->samples()) {
      merged.Add(sample);
    }
  }
  return merged;
}

bool MetricsSnapshot::WriteFile(const std::string& path) const {
  const bool csv = path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  std::string body = csv ? ToCsv() : ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    TAICHI_ERROR(at, "metrics: cannot open '%s' for writing", path.c_str());
    return false;
  }
  size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (written != body.size()) {
    TAICHI_ERROR(at, "metrics: short write to '%s'", path.c_str());
    return false;
  }
  return true;
}

}  // namespace taichi::obs
