#include "src/obs/flow_key.h"

#include <cstdio>

namespace taichi::obs {

std::string FlowKey::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u:%u->%u.%u.%u.%u:%u/%u",
                src_ip >> 24, (src_ip >> 16) & 0xff, (src_ip >> 8) & 0xff,
                src_ip & 0xff, src_port, dst_ip >> 24, (dst_ip >> 16) & 0xff,
                (dst_ip >> 8) & 0xff, dst_ip & 0xff, dst_port, proto);
  return buf;
}

}  // namespace taichi::obs
