// The 5-tuple flow identity carried by every hw::IoPacket and consumed by
// the sketch-based flow observability layer (obs::FlowMonitor).
//
// Lives in obs (not hw) because the sketches are the consumers and hw
// already depends on obs; the struct is deliberately plain-old-data so a
// packet copy stays a memcpy. Storage workloads reuse the tuple with proto
// kProtoBlock and (volume, namespace) packed into the address fields.
#ifndef SRC_OBS_FLOW_KEY_H_
#define SRC_OBS_FLOW_KEY_H_

#include <cstdint>
#include <string>

namespace taichi::obs {

struct FlowKey {
  uint32_t src_ip = 0;
  uint32_t dst_ip = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint8_t proto = 0;

  bool operator==(const FlowKey&) const = default;

  // The tuple packed into two words: every hash/compare in the sketch layer
  // works on these, never on the struct bytes (padding must not leak in).
  uint64_t PackHi() const {
    return (static_cast<uint64_t>(src_ip) << 32) | dst_ip;
  }
  uint64_t PackLo() const {
    return (static_cast<uint64_t>(src_port) << 24) |
           (static_cast<uint64_t>(dst_port) << 8) | proto;
  }

  // Total order for deterministic tie-breaks and sorted exports.
  bool operator<(const FlowKey& o) const {
    if (PackHi() != o.PackHi()) {
      return PackHi() < o.PackHi();
    }
    return PackLo() < o.PackLo();
  }

  // "10.0.0.1:80->10.0.0.2:443/6", the form reports and JSON exports use.
  std::string ToString() const;
};

inline constexpr uint8_t kProtoTcp = 6;
inline constexpr uint8_t kProtoUdp = 17;
// Storage I/O "flows" (block requests keyed by volume) reuse the tuple.
inline constexpr uint8_t kProtoBlock = 254;

}  // namespace taichi::obs

#endif  // SRC_OBS_FLOW_KEY_H_
