#include "src/obs/json.h"

#include <cstdio>

namespace taichi::obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonQuote(const std::string& s) { return "\"" + JsonEscape(s) + "\""; }

}  // namespace taichi::obs
