#include "src/obs/json.h"

#include <cmath>
#include <cstdio>

namespace taichi::obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonQuote(const std::string& s) { return "\"" + JsonEscape(s) + "\""; }

std::string JsonNum(double v) {
  if (!std::isfinite(v)) {
    return "0";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string JsonNum(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace taichi::obs
