// Nanosecond event tracer: a bounded ring-buffer flight recorder of
// simulation events (context switches, IPIs, VM entries/exits, probe
// firings, lock operations, DP poll activity, accelerator pipeline stages),
// organized into per-CPU tracks and exportable as Chrome trace-event JSON
// (load the file in chrome://tracing or https://ui.perfetto.dev).
//
// Recording is off by default. Every emit site is guarded so that a disabled
// recorder costs exactly one predictable branch; components additionally
// null-check their recorder pointer, so unwired components pay one branch
// too.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace taichi::obs {

// Event category, exported as the Chrome "cat" field (filterable in the UI).
enum class TraceCategory : uint8_t {
  kSched,  // Task scheduled in/out of a CPU.
  kIrq,    // Interrupt and softirq activity.
  kIpi,    // Inter-processor interrupts (send, receive, orchestrator paths).
  kVirt,   // VM entries/exits and guest episodes.
  kProbe,  // HW/SW workload probe firings.
  kLock,   // Kernel spinlock acquire/contend/release.
  kDp,     // Data-plane poll loop activity.
  kAccel,  // Accelerator pipeline stages.
};

const char* ToString(TraceCategory category);

// Tracks 0..N-1 are CPUs (physical and virtual, matching os::CpuId). Tracks
// at kAccelTrackBase+q carry accelerator queue q's pipeline stages.
inline constexpr int32_t kAccelTrackBase = 1000;

struct TraceEvent {
  sim::SimTime ts = 0;     // Nanoseconds of simulated time.
  sim::Duration dur = 0;   // For complete ('X') events.
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
  int32_t track = 0;
  TraceCategory category = TraceCategory::kSched;
  char phase = 'i';        // Chrome phase: 'B', 'E', 'X' or 'i'.
  std::string name;
};

class TraceRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  explicit TraceRecorder(size_t capacity = kDefaultCapacity);
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Recording gate. All emit paths reduce to one branch while disabled.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // --- Emission (callers pass the current simulated time) ---

  // A point event ("ph":"i").
  void Instant(sim::SimTime now, int32_t track, TraceCategory category, const char* name,
               uint64_t arg0 = 0, uint64_t arg1 = 0) {
    if (!enabled_) {
      return;
    }
    Push('i', now, 0, track, category, name, arg0, arg1);
  }

  // A duration-begin event ("ph":"B"); pair with End on the same track.
  void Begin(sim::SimTime now, int32_t track, TraceCategory category, const char* name,
             uint64_t arg0 = 0) {
    if (!enabled_) {
      return;
    }
    Push('B', now, 0, track, category, name, arg0, 0);
  }

  void End(sim::SimTime now, int32_t track) {
    if (!enabled_) {
      return;
    }
    Push('E', now, 0, track, TraceCategory::kSched, "", 0, 0);
  }

  // A complete event ("ph":"X") spanning [start, start+dur).
  void Complete(sim::SimTime start, sim::Duration dur, int32_t track, TraceCategory category,
                const char* name, uint64_t arg0 = 0, uint64_t arg1 = 0) {
    if (!enabled_) {
      return;
    }
    Push('X', start, dur, track, category, name, arg0, arg1);
  }

  // --- Track metadata ---

  // Names the Chrome thread lane for `track` (e.g. "pCPU 3 (DP)").
  void SetTrackName(int32_t track, std::string name) { track_names_[track] = std::move(name); }
  const std::map<int32_t, std::string>& track_names() const { return track_names_; }

  // --- Inspection ---

  size_t capacity() const { return capacity_; }
  size_t size() const { return ring_.size(); }
  // Total events ever emitted; total_emitted() - size() were overwritten.
  uint64_t total_emitted() const { return total_; }
  uint64_t overwritten() const { return total_ - ring_.size(); }

  // Buffered events, oldest first.
  std::vector<TraceEvent> Events() const;
  // Events buffered for one track, oldest first.
  std::vector<TraceEvent> EventsForTrack(int32_t track) const;

  void Clear();

  // --- Export ---

  // Chrome trace-event JSON object ({"traceEvents": [...]}); timestamps are
  // exported in microseconds with nanosecond precision.
  std::string ToChromeJson() const;
  // Returns false (and logs a TAICHI_ERROR) if the file cannot be written.
  bool WriteChromeJson(const std::string& path) const;

  // Appends this recorder's metadata + events as Chrome process `pid` named
  // `process_name` to `out`. `first` tracks comma placement across calls so
  // several recorders can share one traceEvents array (fleet merge).
  void AppendChromeProcess(std::string& out, int pid, const std::string& process_name,
                           bool& first) const;

 private:
  void Push(char phase, sim::SimTime ts, sim::Duration dur, int32_t track,
            TraceCategory category, const char* name, uint64_t arg0, uint64_t arg1);

  size_t capacity_;
  bool enabled_ = false;
  std::vector<TraceEvent> ring_;
  size_t next_ = 0;      // Overwrite cursor once the ring is full.
  uint64_t total_ = 0;
  std::map<int32_t, std::string> track_names_;
};

// --- Fleet merge -----------------------------------------------------------

// One simulation node's recorder for a merged fleet trace.
struct TraceProcess {
  std::string name;  // Chrome process name, e.g. "node03".
  const TraceRecorder* recorder = nullptr;
};

// Merges several recorders into one Chrome trace: each recorder becomes its
// own process track group (pid = list index, labeled with its name), with
// the usual per-CPU / per-accel-queue thread lanes inside. All nodes share
// one simulated clock, so events line up across processes in the viewer.
std::string MergedChromeJson(const std::vector<TraceProcess>& processes);
// Returns false (and logs a TAICHI_ERROR) if the file cannot be written.
bool WriteMergedChromeJson(const std::vector<TraceProcess>& processes,
                           const std::string& path);

}  // namespace taichi::obs

#endif  // SRC_OBS_TRACE_H_
