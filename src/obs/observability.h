// The unified observability context: one metrics registry plus one trace
// recorder, created by whoever assembles a simulation and threaded through
// the components (Kernel::set_tracer, TaiChi::AttachObservability,
// Testbed::AttachObservability, per-component RegisterMetrics).
#ifndef SRC_OBS_OBSERVABILITY_H_
#define SRC_OBS_OBSERVABILITY_H_

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace taichi::obs {

struct Observability {
  explicit Observability(size_t trace_capacity = TraceRecorder::kDefaultCapacity)
      : trace(trace_capacity) {}

  MetricsRegistry metrics;
  TraceRecorder trace;
};

}  // namespace taichi::obs

#endif  // SRC_OBS_OBSERVABILITY_H_
