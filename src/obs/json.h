// Shared JSON string handling for every exporter in the tree (metrics
// snapshots, Chrome traces, bench reports). One escaping routine means one
// definition of "valid JSON string" — the bench harnesses used to ship their
// own quoting that missed control characters.
#ifndef SRC_OBS_JSON_H_
#define SRC_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <vector>

namespace taichi::obs {

// Escapes `s` for use inside a JSON string literal: quotes, backslashes,
// and control characters (newline/tab named, the rest as \u00xx).
std::string JsonEscape(const std::string& s);

// JsonEscape() wrapped in double quotes — a complete JSON string token.
std::string JsonQuote(const std::string& s);

// Numbers in exports: plain, locale-independent, finite ("%.9g"; non-finite
// values render as 0). One formatter means one definition of a JSON number
// across metrics snapshots, sketch exports and bench reports.
std::string JsonNum(double v);
std::string JsonNum(uint64_t v);

// Minimal streaming JSON writer for composite deterministic exports
// (scenario verdicts, chaos histories): tracks nesting and comma placement
// so multi-level reports build valid JSON without hand-managed separators.
// All numbers route through JsonNum, so output bytes are reproducible.
class JsonWriter {
 public:
  JsonWriter& BeginObject() { return Open('{'); }
  JsonWriter& EndObject() { return Close('}'); }
  JsonWriter& BeginArray() { return Open('['); }
  JsonWriter& EndArray() { return Close(']'); }

  // Object member key; must be followed by a value or Begin*().
  JsonWriter& Key(const std::string& k) {
    Sep();
    out_ += JsonQuote(k);
    out_ += ':';
    pending_value_ = true;
    return *this;
  }

  JsonWriter& Value(const std::string& v) { return Raw(JsonQuote(v)); }
  JsonWriter& Value(const char* v) { return Raw(JsonQuote(v)); }
  JsonWriter& Value(double v) { return Raw(JsonNum(v)); }
  JsonWriter& Value(uint64_t v) { return Raw(JsonNum(v)); }
  JsonWriter& Value(int64_t v) {
    return Raw(v < 0 ? "-" + JsonNum(static_cast<uint64_t>(-v))
                     : JsonNum(static_cast<uint64_t>(v)));
  }
  JsonWriter& Value(int v) { return Value(static_cast<int64_t>(v)); }
  JsonWriter& Value(bool v) { return Raw(v ? "true" : "false"); }

  // Key(k).Value(v) in one call.
  template <typename T>
  JsonWriter& Field(const std::string& k, const T& v) {
    return Key(k).Value(v);
  }

  // The document built so far; valid JSON once every Begin has its End.
  const std::string& str() const { return out_; }

 private:
  JsonWriter& Open(char c) {
    Sep();
    out_ += c;
    comma_.push_back(false);
    return *this;
  }
  JsonWriter& Close(char c) {
    out_ += c;
    comma_.pop_back();
    if (!comma_.empty()) {
      comma_.back() = true;
    }
    return *this;
  }
  JsonWriter& Raw(const std::string& token) {
    Sep();
    out_ += token;
    if (!comma_.empty()) {
      comma_.back() = true;
    }
    return *this;
  }
  void Sep() {
    if (pending_value_) {
      pending_value_ = false;  // Key already emitted the separator.
      return;
    }
    if (!comma_.empty() && comma_.back()) {
      out_ += ',';
      comma_.back() = false;
    }
  }

  std::string out_;
  std::vector<bool> comma_;  // Per depth: "next element needs a comma".
  bool pending_value_ = false;
};

}  // namespace taichi::obs

#endif  // SRC_OBS_JSON_H_
