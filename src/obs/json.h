// Shared JSON string handling for every exporter in the tree (metrics
// snapshots, Chrome traces, bench reports). One escaping routine means one
// definition of "valid JSON string" — the bench harnesses used to ship their
// own quoting that missed control characters.
#ifndef SRC_OBS_JSON_H_
#define SRC_OBS_JSON_H_

#include <string>

namespace taichi::obs {

// Escapes `s` for use inside a JSON string literal: quotes, backslashes,
// and control characters (newline/tab named, the rest as \u00xx).
std::string JsonEscape(const std::string& s);

// JsonEscape() wrapped in double quotes — a complete JSON string token.
std::string JsonQuote(const std::string& s);

// Numbers in exports: plain, locale-independent, finite ("%.9g"; non-finite
// values render as 0). One formatter means one definition of a JSON number
// across metrics snapshots, sketch exports and bench reports.
std::string JsonNum(double v);
std::string JsonNum(uint64_t v);

}  // namespace taichi::obs

#endif  // SRC_OBS_JSON_H_
