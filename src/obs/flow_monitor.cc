#include "src/obs/flow_monitor.h"

#include "src/obs/json.h"
#include "src/obs/metrics.h"

namespace taichi::obs {

namespace {

sketch::CountMinConfig CmsConfig(const FlowMonitorConfig& c) {
  return {.width = c.cms_width, .depth = c.cms_depth, .seed = c.seed};
}

sketch::HyperLogLogConfig HllConfig(const FlowMonitorConfig& c) {
  return {.precision = c.hll_precision, .seed = c.seed};
}

sketch::SpaceSavingConfig TopkConfig(const FlowMonitorConfig& c) {
  return {.capacity = c.topk_capacity, .seed = c.seed};
}

}  // namespace

FlowMonitor::FlowMonitor(const FlowMonitorConfig& config)
    : cms_(CmsConfig(config)), hll_(HllConfig(config)), topk_(TopkConfig(config)) {}

void FlowMonitor::OnPacket(const FlowKey& key, uint32_t bytes) {
  const sketch::HashPair h = sketch::HashKey(key, cms_.seed());
  cms_.Update(h, bytes);
  const sketch::CountMinSketch::Estimate est = cms_.Query(h);
  topk_.Update(key, h, bytes, est.bytes, est.packets);
  hll_.Observe(key);
}

bool FlowMonitor::Merge(const FlowMonitor& other) {
  if (!Compatible(other)) {
    return false;  // Sub-sketch Merge would log; refuse atomically up front.
  }
  bool ok = cms_.Merge(other.cms_);
  ok = hll_.Merge(other.hll_) && ok;
  ok = topk_.Merge(other.topk_) && ok;
  return ok;
}

void FlowMonitor::RegisterMetrics(MetricsRegistry& registry,
                                  const std::string& prefix) const {
  registry.AddGauge(prefix + "distinct_flows", [this] { return DistinctFlows(); });
  registry.AddCounterFn(prefix + "total_packets", [this] { return total_packets(); });
  registry.AddCounterFn(prefix + "total_bytes", [this] { return total_bytes(); });
  registry.AddGauge(prefix + "cms_epsilon", [this] { return cms_.epsilon(); });
  registry.AddCounterFn(prefix + "heavy_evictions",
                        [this] { return topk_.evictions(); });
}

std::string FlowMonitor::ToJson(size_t k) const {
  std::string out = "{";
  out += "\"cms\": " + cms_.ToJson();
  out += ", \"hll\": " + hll_.ToJson();
  out += ", \"top\": [";
  const std::vector<sketch::SpaceSaving::Entry> top = topk_.TopK(k);
  for (size_t i = 0; i < top.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    const sketch::SpaceSaving::Entry& e = top[i];
    out += "{\"flow\": " + JsonQuote(e.key.ToString());
    out += ", \"bytes\": " + std::to_string(e.bytes);
    out += ", \"packets\": " + std::to_string(e.packets);
    out += ", \"error\": " + std::to_string(e.error);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace taichi::obs
