// FlowMonitor: per-flow telemetry at millions of flows in constant space.
// Bundles the three sketches — count-min (per-flow packet/byte estimates),
// HyperLogLog (distinct-flow count) and a space-saving table (top-K heavy
// hitters, admission-filtered by the count-min estimates) — behind one
// O(1), allocation-free OnPacket() hook that the packet path calls per
// RX/DP/TX event.
//
// Monitors built from the same FlowMonitorConfig share hash families
// (seeds are fixed config constants, NOT per-node simulation seeds), so
// per-node monitors merge into a fleet monitor the same way MergeSummaries
// rolls up exact summaries: count-min cells add, HLL registers max, the
// heavy-hitter tables union-and-truncate. The fleet::SloMonitor hotspot
// reports read the merged result to name the flows behind each breach.
#ifndef SRC_OBS_FLOW_MONITOR_H_
#define SRC_OBS_FLOW_MONITOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/flow_key.h"
#include "src/obs/sketch/count_min.h"
#include "src/obs/sketch/hyperloglog.h"
#include "src/obs/sketch/space_saving.h"

namespace taichi::obs {

class MetricsRegistry;

struct FlowMonitorConfig {
  uint32_t cms_width = 4096;     // Count-min counters per row.
  uint32_t cms_depth = 4;        // Count-min hash rows.
  uint32_t hll_precision = 12;   // 2^p HLL registers (~1.6% error at 12).
  uint32_t topk_capacity = 64;   // Heavy-hitter candidates tracked.
  // Hash-family seed. Fleet-wide constant by design: every node must use the
  // same value or per-node monitors stop being mergeable. Do NOT derive this
  // from a per-node simulation seed.
  uint64_t seed = 0x7a1c5eedULL;
};

class FlowMonitor {
 public:
  explicit FlowMonitor(const FlowMonitorConfig& config);

  // Records one packet. O(cms_depth + log topk_capacity), allocation-free:
  // the flow key is hashed once and the pair reused across the count-min
  // update, the point query feeding the heavy-hitter filter, and the table
  // update itself.
  void OnPacket(const FlowKey& key, uint32_t bytes);

  // Estimators.
  double DistinctFlows() const { return hll_.Estimate(); }
  uint64_t total_packets() const { return cms_.total_packets(); }
  uint64_t total_bytes() const { return cms_.total_bytes(); }
  std::vector<sketch::SpaceSaving::Entry> TopK(size_t k) const {
    return topk_.TopK(k);
  }
  sketch::CountMinSketch::Estimate Query(const FlowKey& key) const {
    return cms_.Query(key);
  }

  const sketch::CountMinSketch& cms() const { return cms_; }
  const sketch::HyperLogLog& hll() const { return hll_; }
  const sketch::SpaceSaving& topk() const { return topk_; }

  bool Compatible(const FlowMonitor& other) const {
    return cms_.Compatible(other.cms_) && hll_.Compatible(other.hll_) &&
           topk_.Compatible(other.topk_);
  }

  // Folds `other` into this monitor (fleet roll-up). All three sketches must
  // be compatible; on mismatch nothing is merged and false is returned.
  bool Merge(const FlowMonitor& other);

  // Registers gauges under `prefix.` (e.g. "node0.flows.dp."):
  // distinct_flows, total_packets, total_bytes, cms_epsilon,
  // heavy_evictions. Pointers registered outlive via `this` — deregister
  // with registry.RemovePrefix(prefix) before the monitor dies.
  void RegisterMetrics(MetricsRegistry& registry, const std::string& prefix) const;

  // Deterministic JSON: cms/hll configs + totals, and the top `k` heavy
  // hitters sorted by bytes descending then key order.
  std::string ToJson(size_t k = 16) const;

 private:
  sketch::CountMinSketch cms_;
  sketch::HyperLogLog hll_;
  sketch::SpaceSaving topk_;
};

}  // namespace taichi::obs

#endif  // SRC_OBS_FLOW_MONITOR_H_
