// The programmable I/O hardware accelerator (§2.2/§3.4): every I/O request
// entering the SmartNIC is preprocessed (payload handling, 2.7 us) and then
// transferred to the memory shared with the owning DP service (0.5 us). The
// sum is the "I/O preprocessing window" that Tai Chi uses to hide vCPU
// scheduling latency (Observation 4 / Fig. 6).
#ifndef SRC_HW_ACCELERATOR_H_
#define SRC_HW_ACCELERATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/hw/hw_probe.h"
#include "src/hw/io_packet.h"
#include "src/hw/ring.h"
#include "src/obs/flow_monitor.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/inline_callback.h"
#include "src/sim/packet_pool.h"
#include "src/sim/simulation.h"
#include "src/sim/stats.h"

namespace taichi::hw {

struct AcceleratorConfig {
  sim::Duration preprocess_latency = sim::MicrosF(2.7);  // Stage 2 in Fig. 6.
  sim::Duration transfer_latency = sim::MicrosF(0.5);    // Stage 3 in Fig. 6.
  // Pipeline initiation interval per queue: a new packet can start
  // preprocessing this long after the previous one on the same queue.
  sim::Duration per_packet_gap = sim::Nanos(120);
  // Depth of each queue's descriptor ring; pushes beyond it are rx drops.
  size_t ring_capacity = 4096;
};

class Accelerator {
 public:
  Accelerator(sim::Simulation* sim, AcceleratorConfig config)
      : sim_(sim), config_(config) {}

  // The arena packets live in while crossing the NIC. Must be set (by the
  // owning Machine) before any Ingress call; outlives the accelerator.
  void set_pool(sim::PacketPool* pool) { pool_ = pool; }
  sim::PacketPool* pool() const { return pool_; }

  // Declares an eNIC queue whose descriptors are consumed by the DP service
  // running on data-plane CPU `dest_cpu`. Returns the queue id.
  uint32_t AddQueue(uint32_t dest_cpu);

  DescriptorRing& ring(uint32_t queue) { return *queues_[queue].ring; }
  uint32_t dest_cpu(uint32_t queue) const { return queues_[queue].dest_cpu; }
  size_t queue_count() const { return queues_.size(); }

  // Re-homes a queue to a different DP CPU (used by the §8 dynamic
  // repartition experiment).
  void SetDestCpu(uint32_t queue, uint32_t dest_cpu) { queues_[queue].dest_cpu = dest_cpu; }

  // Installs the hardware workload probe "firmware" (the paper's ~30-line
  // accelerator modification). Null uninstalls it.
  void set_probe(HwWorkloadProbe* probe) { probe_ = probe; }
  HwWorkloadProbe* probe() const { return probe_; }

  // RX flow telemetry tap: every ingressed packet is recorded (O(1),
  // allocation-free) before entering the pipeline — the "offered load" view,
  // as opposed to the poll services' "work performed" view. The monitor must
  // outlive the accelerator.
  void set_flow_monitor(obs::FlowMonitor* monitor) { flow_monitor_ = monitor; }

  // Raw ingress tap, fired for every packet at Ingress() call time before
  // any pipeline effect. The scenario trace recorder uses it to capture a
  // replayable per-node arrival stream; unset (the default) costs one
  // predictable branch per packet. The tap must not inject new traffic.
  using IngressTap = sim::InlineFunction<void(uint32_t queue, const IoPacket& pkt)>;
  void set_ingress_tap(IngressTap tap) { ingress_tap_ = std::move(tap); }

  // Fault injection: freezes the preprocessing pipeline for `duration` —
  // every queue's next admission slot is pushed past now + duration, so
  // arriving packets queue up behind the stall exactly as behind a burst.
  // Models firmware hiccups / PCIe backpressure for the chaos layer.
  void Stall(sim::Duration duration);
  uint64_t stalls() const { return stalls_; }

  // A packet enters the SmartNIC bound for `queue`. Allocates an arena slot
  // for it (an exhausted pool is an rx drop, like a NIC out of mbufs) and
  // walks the handle path below.
  void Ingress(uint32_t queue, const IoPacket& pkt);

  // The zero-copy path: the caller already owns `h` in this node's pool;
  // ownership passes to the accelerator, which frees it if the descriptor
  // ring overflows at publish time.
  void IngressHandle(uint32_t queue, sim::PacketHandle h);

  uint64_t packets_ingressed() const { return ingressed_.value(); }
  uint64_t packets_published() const { return published_.value(); }
  uint64_t ring_drops() const;
  // Arrivals shed because the packet arena was exhausted.
  uint64_t pool_drops() const { return pool_drops_.value(); }
  // Accounts an arrival shed before reaching Ingress because the arena was
  // exhausted (callers that allocate at the injection boundary, e.g. the
  // testbed's wire/PCIe legs, report their failed Allocs here so all rx
  // shedding lands in one place).
  void CountPoolDrop() {
    ingressed_.Inc();
    pool_drops_.Inc();
  }

  // Pipeline-stage spans land on per-queue tracks at obs::kAccelTrackBase+q.
  void set_tracer(obs::TraceRecorder* tracer);

  void RegisterMetrics(obs::MetricsRegistry& registry, const std::string& prefix = "accel") const;

  // Packets currently inside the preprocessing pipeline for `queue` —
  // packet metadata the §9 extension exposes to the software probe so DP
  // CPUs do not yield with work already in flight toward them.
  uint32_t in_flight(uint32_t queue) const { return queues_[queue].in_flight; }

  // Observed per-packet accelerator residency (for the Fig. 6 breakdown).
  const sim::Summary& residency_us() const { return residency_us_; }

 private:
  struct Queue {
    uint32_t dest_cpu = 0;
    std::unique_ptr<DescriptorRing> ring;
    sim::SimTime next_free = 0;  // Earliest time the next packet may start stage 2.
    uint32_t in_flight = 0;      // Packets inside the pipeline right now.
  };

  sim::Simulation* sim_;
  AcceleratorConfig config_;
  sim::PacketPool* pool_ = nullptr;
  std::vector<Queue> queues_;
  HwWorkloadProbe* probe_ = nullptr;
  obs::TraceRecorder* tracer_ = nullptr;
  obs::FlowMonitor* flow_monitor_ = nullptr;
  IngressTap ingress_tap_;
  sim::Counter ingressed_;
  sim::Counter published_;
  sim::Counter pool_drops_;
  uint64_t stalls_ = 0;
  sim::Summary residency_us_;
};

}  // namespace taichi::hw

#endif  // SRC_HW_ACCELERATOR_H_
