#include "src/hw/machine.h"

namespace taichi::hw {

Machine::Machine(sim::Simulation* sim, MachineConfig config)
    : sim_(sim), config_(config) {
  pool_ = std::make_unique<sim::PacketPool>(config_.packet_pool_capacity);
  apic_ = std::make_unique<Apic>(sim_, config_.ipi_delivery_latency);
  accelerator_ = std::make_unique<Accelerator>(sim_, config_.accelerator);
  accelerator_->set_pool(pool_.get());
  nic_ = std::make_unique<NicPort>(sim_, config_.nic);
  nic_->set_pool(pool_.get());

  std::vector<ApicId> dp_apics(config_.num_cpus);
  for (uint32_t i = 0; i < config_.num_cpus; ++i) {
    dp_apics[i] = cpu_apic_id(i);
  }
  probe_ = std::make_unique<HwWorkloadProbe>(sim_, apic_.get(), std::move(dp_apics));
}

}  // namespace taichi::hw
