#include "src/hw/hw_probe.h"

#include <cassert>

#include "src/sim/logging.h"

namespace taichi::hw {

HwWorkloadProbe::HwWorkloadProbe(sim::Simulation* sim, Apic* apic, std::vector<ApicId> apic_ids)
    : sim_(sim),
      apic_(apic),
      apic_ids_(std::move(apic_ids)),
      states_(apic_ids_.size(), CpuProbeState::kPState),
      irq_inflight_(apic_ids_.size(), false) {}

void HwWorkloadProbe::SetState(uint32_t cpu, CpuProbeState state) {
  assert(cpu < states_.size());
  states_[cpu] = state;
  if (state == CpuProbeState::kPState) {
    irq_inflight_[cpu] = false;
  }
}

void HwWorkloadProbe::OnPacketArrival(uint32_t cpu) {
  assert(cpu < states_.size());
  if (!enabled_ || states_[cpu] != CpuProbeState::kVState) {
    return;
  }
  vstate_hits_.Inc();
  if (irq_inflight_[cpu]) {
    return;  // Already signalled for this V-state episode.
  }
  irq_inflight_[cpu] = true;
  irqs_raised_.Inc();
  if (tracer_ != nullptr) {
    tracer_->Instant(sim_->Now(), static_cast<int32_t>(cpu), obs::TraceCategory::kProbe,
                     "hw_probe_irq", cpu);
  }
  TAICHI_TRACE(sim_->Now(), "hw-probe: V-state hit on dp cpu %u, raising IRQ", cpu);
  apic_->Send(kInvalidApicId, apic_ids_[cpu], IrqVector::kDpWorkload);
}

}  // namespace taichi::hw
