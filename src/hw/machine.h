// The SmartNIC system-on-chip: general-purpose CPUs, the interrupt fabric,
// the programmable I/O accelerator with its workload probe, and the physical
// network port. Mirrors the Table 4 SmartNIC (12 CPUs, 200 Gb/s).
#ifndef SRC_HW_MACHINE_H_
#define SRC_HW_MACHINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/hw/accelerator.h"
#include "src/hw/apic.h"
#include "src/hw/hw_probe.h"
#include "src/hw/nic_port.h"
#include "src/sim/packet_pool.h"
#include "src/sim/simulation.h"

namespace taichi::hw {

struct MachineConfig {
  uint32_t num_cpus = 12;  // Table 4: "CPU: 12 CPU".
  sim::Duration ipi_delivery_latency = sim::Nanos(400);
  AcceleratorConfig accelerator;
  NicPortConfig nic;
  // Slots in the node's packet arena (~80 B each). Sized so sustained
  // overload fills the descriptor rings first: ring drops, not pool
  // exhaustion, are the designed shedding point.
  size_t packet_pool_capacity = 65536;
};

class Machine {
 public:
  Machine(sim::Simulation* sim, MachineConfig config);

  sim::Simulation* sim() { return sim_; }
  const MachineConfig& config() const { return config_; }
  uint32_t num_cpus() const { return config_.num_cpus; }

  // Physical CPU i has LAPIC id i.
  ApicId cpu_apic_id(uint32_t cpu) const { return cpu; }

  Apic& apic() { return *apic_; }
  Accelerator& accelerator() { return *accelerator_; }
  NicPort& nic() { return *nic_; }

  // The node's packet arena: every in-flight packet on this machine lives in
  // one of its slots, addressed by sim::PacketHandle.
  sim::PacketPool& pool() { return *pool_; }
  const sim::PacketPool& pool() const { return *pool_; }

  // The hardware workload probe is instantiated with the machine (it is part
  // of the accelerator silicon) but only consulted once installed into the
  // accelerator via Accelerator::set_probe().
  HwWorkloadProbe& probe() { return *probe_; }

 private:
  sim::Simulation* sim_;
  MachineConfig config_;
  std::unique_ptr<sim::PacketPool> pool_;
  std::unique_ptr<Apic> apic_;
  std::unique_ptr<Accelerator> accelerator_;
  std::unique_ptr<HwWorkloadProbe> probe_;
  std::unique_ptr<NicPort> nic_;
};

}  // namespace taichi::hw

#endif  // SRC_HW_MACHINE_H_
