// The unit of I/O moved through the SmartNIC: a network packet or a storage
// request descriptor. Shared between the accelerator (hw) and the data-plane
// services (dp).
#ifndef SRC_HW_IO_PACKET_H_
#define SRC_HW_IO_PACKET_H_

#include <cstdint>

#include "src/obs/flow_key.h"
#include "src/sim/time.h"

namespace taichi::hw {

enum class IoKind : uint8_t {
  kNetRx,    // Packet from the wire toward a VM.
  kNetTx,    // Packet from a VM toward the wire.
  kBlockIo,  // Storage request (read or write) from a VM.
};

struct IoPacket {
  uint64_t id = 0;
  IoKind kind = IoKind::kNetRx;
  uint32_t queue = 0;          // eNIC queue the packet belongs to.
  uint32_t size_bytes = 64;    // Wire size for nets, block size for storage.
  uint64_t flow = 0;           // Flow/connection identity for RSS-style hashing.
  obs::FlowKey flow_key;       // 5-tuple identity for the sketch telemetry taps.
  sim::SimTime created = 0;    // When the request entered the SmartNIC domain.
  sim::SimTime ring_push = 0;  // When the accelerator published it to the DP ring.
  uint64_t user_tag = 0;       // Opaque cookie for the workload that issued it.
  uint32_t dp_cost_hint = 0;   // Extra DP processing (ns): flow setup, crypto, etc.
};

}  // namespace taichi::hw

#endif  // SRC_HW_IO_PACKET_H_
