// The hardware workload probe (§4.3): a CPU-state table kept inside the
// programmable I/O accelerator, updated by the vCPU scheduler, consulted
// before each packet's preprocessing. When the destination CPU is running a
// vCPU (V-state), the probe asynchronously raises an IRQ so the vCPU can be
// preempted while the packet is still inside the preprocessing window.
#ifndef SRC_HW_HW_PROBE_H_
#define SRC_HW_HW_PROBE_H_

#include <cstdint>
#include <vector>

#include "src/hw/apic.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/simulation.h"

namespace taichi::hw {

enum class CpuProbeState : uint8_t {
  kPState,  // Physical context: DP service running natively; IRQ masked.
  kVState,  // Virtual context: a vCPU occupies the CPU; IRQ on packet arrival.
};

class HwWorkloadProbe {
 public:
  // `apic_ids[i]` is the LAPIC id the probe signals for data-plane CPU i.
  HwWorkloadProbe(sim::Simulation* sim, Apic* apic, std::vector<ApicId> apic_ids);

  // Enables/disables the probe logic entirely ("Tai Chi w/o HW probe").
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // State updates performed by the vCPU scheduler (steps 4/5 in Fig. 7b).
  void SetState(uint32_t cpu, CpuProbeState state);
  CpuProbeState state(uint32_t cpu) const { return states_[cpu]; }

  // Called by the accelerator before preprocessing a packet destined to
  // `cpu`. Fires the IRQ at most once per V-state episode: after firing, the
  // line stays armed-off until the scheduler flips the CPU back to P-state
  // and a later yield re-enters V-state.
  void OnPacketArrival(uint32_t cpu);

  uint64_t irqs_raised() const { return irqs_raised_.value(); }
  uint64_t vstate_hits() const { return vstate_hits_.value(); }

  void set_tracer(obs::TraceRecorder* tracer) { tracer_ = tracer; }

  void RegisterMetrics(obs::MetricsRegistry& registry,
                       const std::string& prefix = "hw_probe") const {
    registry.AddCounter(prefix + ".irqs_raised", &irqs_raised_);
    registry.AddCounter(prefix + ".vstate_hits", &vstate_hits_);
  }

 private:
  sim::Simulation* sim_;
  Apic* apic_;
  std::vector<ApicId> apic_ids_;
  std::vector<CpuProbeState> states_;
  std::vector<bool> irq_inflight_;
  obs::TraceRecorder* tracer_ = nullptr;
  bool enabled_ = true;
  sim::Counter irqs_raised_;
  sim::Counter vstate_hits_;
};

}  // namespace taichi::hw

#endif  // SRC_HW_HW_PROBE_H_
