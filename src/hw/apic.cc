#include "src/hw/apic.h"

namespace taichi::hw {

void Apic::Send(ApicId from, ApicId to, IrqVector vector) {
  sent_.Inc();
  sim_->Schedule(delivery_latency_, [this, from, to, vector] {
    auto it = handlers_.find(to);
    if (it == handlers_.end()) {
      dropped_.Inc();
      return;
    }
    if (tracer_ != nullptr) {
      tracer_->Instant(sim_->Now(), static_cast<int32_t>(to), obs::TraceCategory::kIrq,
                       "irq_deliver", static_cast<uint64_t>(vector), from);
    }
    it->second(vector, from);
  });
}

}  // namespace taichi::hw
