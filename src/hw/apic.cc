#include "src/hw/apic.h"

namespace taichi::hw {

void Apic::Send(ApicId from, ApicId to, IrqVector vector) {
  ++sent_;
  sim_->Schedule(delivery_latency_, [this, from, to, vector] {
    auto it = handlers_.find(to);
    if (it == handlers_.end()) {
      ++dropped_;
      return;
    }
    it->second(vector, from);
  });
}

}  // namespace taichi::hw
