#include "src/hw/nic_port.h"

#include <algorithm>

namespace taichi::hw {

sim::Duration NicPort::SerializationDelay(uint32_t bytes) const {
  const double ns = static_cast<double>(bytes) * 8.0 / config_.bandwidth_gbps;
  return std::max<sim::Duration>(1, static_cast<sim::Duration>(ns));
}

void NicPort::Transmit(sim::PacketHandle h) {
  const IoPacket& pkt = pool_->Get(h);
  const sim::SimTime start = std::max(sim_->Now(), link_free_);
  const sim::SimTime done = start + SerializationDelay(pkt.size_bytes);
  link_free_ = done;
  ++transmitted_;
  bytes_ += pkt.size_bytes;
  if (flow_monitor_ != nullptr) {
    flow_monitor_->OnPacket(pkt.flow_key, pkt.size_bytes);
  }
  if (!sink_) {
    pool_->Free(h);
    return;
  }
  sim_->At(done + config_.wire_latency, [this, h] { sink_(h); });
}

}  // namespace taichi::hw
