#include "src/hw/accelerator.h"

#include <algorithm>
#include <cassert>

namespace taichi::hw {

uint32_t Accelerator::AddQueue(uint32_t dest_cpu) {
  Queue q;
  q.dest_cpu = dest_cpu;
  q.ring = std::make_unique<DescriptorRing>(config_.ring_capacity);
  queues_.push_back(std::move(q));
  uint32_t id = static_cast<uint32_t>(queues_.size() - 1);
  if (tracer_ != nullptr) {
    tracer_->SetTrackName(obs::kAccelTrackBase + static_cast<int32_t>(id),
                          "accel q" + std::to_string(id));
  }
  return id;
}

void Accelerator::set_tracer(obs::TraceRecorder* tracer) {
  tracer_ = tracer;
  if (tracer_ == nullptr) {
    return;
  }
  for (size_t q = 0; q < queues_.size(); ++q) {
    tracer_->SetTrackName(obs::kAccelTrackBase + static_cast<int32_t>(q),
                          "accel q" + std::to_string(q));
  }
}

void Accelerator::RegisterMetrics(obs::MetricsRegistry& registry,
                                  const std::string& prefix) const {
  registry.AddCounter(prefix + ".ingressed", &ingressed_);
  registry.AddCounter(prefix + ".published", &published_);
  registry.AddCounterFn(prefix + ".ring_drops", [this] { return ring_drops(); });
  registry.AddCounter(prefix + ".pool_drops", &pool_drops_);
  registry.AddSummary(prefix + ".residency_us", &residency_us_);
}

void Accelerator::Stall(sim::Duration duration) {
  if (duration <= 0) {
    return;
  }
  ++stalls_;
  const sim::SimTime resume = sim_->Now() + duration;
  for (Queue& q : queues_) {
    q.next_free = std::max(q.next_free, resume);
  }
}

void Accelerator::Ingress(uint32_t queue, const IoPacket& pkt) {
  assert(pool_ != nullptr && "Accelerator::Ingress requires a PacketPool");
  const sim::PacketHandle h = pool_->Alloc(pkt);
  if (h == sim::kInvalidPacketHandle) {
    // Arena exhausted: the NIC has nowhere to put the payload, so the
    // arrival is shed before it enters the pipeline — still offered load.
    CountPoolDrop();
    return;
  }
  IngressHandle(queue, h);
}

void Accelerator::IngressHandle(uint32_t queue, sim::PacketHandle h) {
  assert(queue < queues_.size());
  Queue& q = queues_[queue];
  const IoPacket& pkt = pool_->Get(h);
  ingressed_.Inc();
  if (ingress_tap_) {
    ingress_tap_(queue, pkt);
  }
  if (flow_monitor_ != nullptr) {
    flow_monitor_->OnPacket(pkt.flow_key, pkt.size_bytes);
  }

  // Step 1 of the probe (Fig. 10): before preprocessing starts, look up the
  // destination CPU's state and raise the preemption IRQ if it is V-state.
  if (probe_ != nullptr) {
    probe_->OnPacketArrival(q.dest_cpu);
  }

  const sim::SimTime now = sim_->Now();
  const sim::SimTime start = std::max(now, q.next_free);
  q.next_free = start + config_.per_packet_gap;
  ++q.in_flight;
  const sim::SimTime publish =
      start + config_.preprocess_latency + config_.transfer_latency;
  if (tracer_ != nullptr) {
    // The pipeline is deterministic, so both stage spans can be emitted now
    // (trace timestamps may lie in the simulated future).
    const int32_t track = obs::kAccelTrackBase + static_cast<int32_t>(queue);
    tracer_->Complete(start, config_.preprocess_latency, track, obs::TraceCategory::kAccel,
                      "preprocess", pkt.id, q.dest_cpu);
    tracer_->Complete(start + config_.preprocess_latency, config_.transfer_latency, track,
                      obs::TraceCategory::kAccel, "transfer", pkt.id, q.dest_cpu);
  }

  sim_->At(publish, [this, queue, h, now] {
    Queue& dst = queues_[queue];
    --dst.in_flight;
    IoPacket& slot = pool_->Get(h);
    slot.ring_push = sim_->Now();
    residency_us_.Add(sim::ToMicros(slot.ring_push - now));
    if (dst.ring->Push(h)) {
      published_.Inc();
    } else {
      pool_->Free(h);  // Ring overflow: the descriptor is gone, reclaim the slot.
    }
    // Re-check the CPU state at publish: the destination CPU may have been
    // yielded to a vCPU while this packet sat in the preprocessing pipeline,
    // in which case the ingress-time check saw P-state and raised nothing.
    if (probe_ != nullptr) {
      probe_->OnPacketArrival(dst.dest_cpu);
    }
  });
}

uint64_t Accelerator::ring_drops() const {
  uint64_t drops = 0;
  for (const auto& q : queues_) {
    drops += q.ring->drops();
  }
  return drops;
}

}  // namespace taichi::hw
