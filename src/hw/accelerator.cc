#include "src/hw/accelerator.h"

#include <algorithm>
#include <cassert>

namespace taichi::hw {

uint32_t Accelerator::AddQueue(uint32_t dest_cpu) {
  Queue q;
  q.dest_cpu = dest_cpu;
  q.ring = std::make_unique<DescriptorRing>();
  queues_.push_back(std::move(q));
  return static_cast<uint32_t>(queues_.size() - 1);
}

void Accelerator::Ingress(uint32_t queue, IoPacket pkt) {
  assert(queue < queues_.size());
  Queue& q = queues_[queue];
  ++ingressed_;

  // Step 1 of the probe (Fig. 10): before preprocessing starts, look up the
  // destination CPU's state and raise the preemption IRQ if it is V-state.
  if (probe_ != nullptr) {
    probe_->OnPacketArrival(q.dest_cpu);
  }

  const sim::SimTime now = sim_->Now();
  const sim::SimTime start = std::max(now, q.next_free);
  q.next_free = start + config_.per_packet_gap;
  ++q.in_flight;
  const sim::SimTime publish =
      start + config_.preprocess_latency + config_.transfer_latency;

  sim_->At(publish, [this, queue, pkt, now]() mutable {
    Queue& dst = queues_[queue];
    --dst.in_flight;
    pkt.ring_push = sim_->Now();
    residency_us_.Add(sim::ToMicros(pkt.ring_push - now));
    if (dst.ring->Push(pkt)) {
      ++published_;
    }
    // Re-check the CPU state at publish: the destination CPU may have been
    // yielded to a vCPU while this packet sat in the preprocessing pipeline,
    // in which case the ingress-time check saw P-state and raised nothing.
    if (probe_ != nullptr) {
      probe_->OnPacketArrival(dst.dest_cpu);
    }
  });
}

uint64_t Accelerator::ring_drops() const {
  uint64_t drops = 0;
  for (const auto& q : queues_) {
    drops += q.ring->drops();
  }
  return drops;
}

}  // namespace taichi::hw
