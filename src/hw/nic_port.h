// The physical NIC port: serialization delay from link bandwidth plus a wire
// propagation latency, delivering to an arbitrary sink (the test peer).
#ifndef SRC_HW_NIC_PORT_H_
#define SRC_HW_NIC_PORT_H_

#include <utility>

#include "src/hw/io_packet.h"
#include "src/obs/flow_monitor.h"
#include "src/sim/inline_callback.h"
#include "src/sim/packet_pool.h"
#include "src/sim/simulation.h"

namespace taichi::hw {

struct NicPortConfig {
  double bandwidth_gbps = 200.0;               // Table 4: 200 Gb/s max.
  sim::Duration wire_latency = sim::Micros(2);  // One-way to the test peer.
};

class NicPort {
 public:
  // Receives ownership of the transmitted packet's handle once it has fully
  // crossed the wire; the sink must eventually Free it.
  using Sink = sim::InlineFunction<void(sim::PacketHandle)>;

  NicPort(sim::Simulation* sim, NicPortConfig config) : sim_(sim), config_(config) {}

  // The arena the transmitted handles live in. Set by the owning Machine
  // before traffic flows; outlives the port.
  void set_pool(sim::PacketPool* pool) { pool_ = pool; }

  void set_sink(Sink sink) { sink_ = std::move(sink); }

  // TX flow telemetry tap: every transmitted packet is recorded (O(1),
  // allocation-free) before serialization. The monitor must outlive the port.
  void set_flow_monitor(obs::FlowMonitor* monitor) { flow_monitor_ = monitor; }

  // Transmits a packet, taking ownership of its handle; the sink receives it
  // after serialization on the link plus wire latency. Back-to-back packets
  // queue behind each other. Without a sink the packet leaves the simulated
  // world and its slot is reclaimed immediately.
  void Transmit(sim::PacketHandle h);

  uint64_t transmitted() const { return transmitted_; }
  uint64_t bytes_transmitted() const { return bytes_; }

 private:
  sim::Duration SerializationDelay(uint32_t bytes) const;

  sim::Simulation* sim_;
  NicPortConfig config_;
  sim::PacketPool* pool_ = nullptr;
  Sink sink_;
  obs::FlowMonitor* flow_monitor_ = nullptr;
  sim::SimTime link_free_ = 0;
  uint64_t transmitted_ = 0;
  uint64_t bytes_ = 0;
};

}  // namespace taichi::hw

#endif  // SRC_HW_NIC_PORT_H_
