// The physical NIC port: serialization delay from link bandwidth plus a wire
// propagation latency, delivering to an arbitrary sink (the test peer).
#ifndef SRC_HW_NIC_PORT_H_
#define SRC_HW_NIC_PORT_H_

#include <functional>

#include "src/hw/io_packet.h"
#include "src/obs/flow_monitor.h"
#include "src/sim/simulation.h"

namespace taichi::hw {

struct NicPortConfig {
  double bandwidth_gbps = 200.0;               // Table 4: 200 Gb/s max.
  sim::Duration wire_latency = sim::Micros(2);  // One-way to the test peer.
};

class NicPort {
 public:
  using Sink = std::function<void(const IoPacket&)>;

  NicPort(sim::Simulation* sim, NicPortConfig config) : sim_(sim), config_(config) {}

  void set_sink(Sink sink) { sink_ = std::move(sink); }

  // TX flow telemetry tap: every transmitted packet is recorded (O(1),
  // allocation-free) before serialization. The monitor must outlive the port.
  void set_flow_monitor(obs::FlowMonitor* monitor) { flow_monitor_ = monitor; }

  // Transmits a packet; it reaches the sink after serialization on the link
  // plus wire latency. Back-to-back packets queue behind each other.
  void Transmit(const IoPacket& pkt);

  uint64_t transmitted() const { return transmitted_; }
  uint64_t bytes_transmitted() const { return bytes_; }

 private:
  sim::Duration SerializationDelay(uint32_t bytes) const;

  sim::Simulation* sim_;
  NicPortConfig config_;
  Sink sink_;
  obs::FlowMonitor* flow_monitor_ = nullptr;
  sim::SimTime link_free_ = 0;
  uint64_t transmitted_ = 0;
  uint64_t bytes_ = 0;
};

}  // namespace taichi::hw

#endif  // SRC_HW_NIC_PORT_H_
