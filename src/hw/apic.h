// Interrupt controller model: delivers IPIs and device IRQs to per-APIC-id
// handlers with a small delivery latency.
#ifndef SRC_HW_APIC_H_
#define SRC_HW_APIC_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/simulation.h"
#include "src/sim/stats.h"

namespace taichi::hw {

using ApicId = uint32_t;
inline constexpr ApicId kInvalidApicId = 0xffffffff;

// Interrupt vectors used across the repository. The exact values are
// arbitrary; they only key dispatch tables.
enum class IrqVector : int {
  kTimer = 32,
  kResched = 33,       // Kernel rescheduling IPI.
  kFunctionCall = 34,  // smp_call_function-style IPI.
  kBoot = 35,          // INIT/SIPI-style CPU bring-up sequence.
  kDpWorkload = 48,    // Raised by the hardware workload probe (V-state hit).
  kCustomBase = 64,
};

// Delivers interrupts to registered handlers. Delivery is asynchronous with
// a fixed hardware latency, matching MSR-triggered x2apic IPIs.
class Apic {
 public:
  using Handler = std::function<void(IrqVector vector, ApicId from)>;

  Apic(sim::Simulation* sim, sim::Duration delivery_latency)
      : sim_(sim), delivery_latency_(delivery_latency) {}

  // Registers/replaces the interrupt handler for an APIC id.
  void RegisterHandler(ApicId id, Handler handler) { handlers_[id] = std::move(handler); }
  void UnregisterHandler(ApicId id) { handlers_.erase(id); }
  bool HasHandler(ApicId id) const { return handlers_.contains(id); }

  // Sends an interrupt to `to`. Delivered `delivery_latency` later; silently
  // dropped if no handler is registered at delivery time (masked/offline
  // CPU), like real hardware writing to a missing LAPIC.
  void Send(ApicId from, ApicId to, IrqVector vector);

  uint64_t sent_count() const { return sent_.value(); }
  uint64_t dropped_count() const { return dropped_.value(); }
  sim::Duration delivery_latency() const { return delivery_latency_; }

  // Emits an instant event on track `to` (APIC ids coincide with physical
  // CPU ids) for every delivered interrupt.
  void set_tracer(obs::TraceRecorder* tracer) { tracer_ = tracer; }

  void RegisterMetrics(obs::MetricsRegistry& registry, const std::string& prefix = "apic") const {
    registry.AddCounter(prefix + ".sent", &sent_);
    registry.AddCounter(prefix + ".dropped", &dropped_);
  }

 private:
  sim::Simulation* sim_;
  sim::Duration delivery_latency_;
  std::unordered_map<ApicId, Handler> handlers_;
  obs::TraceRecorder* tracer_ = nullptr;
  sim::Counter sent_;
  sim::Counter dropped_;
};

}  // namespace taichi::hw

#endif  // SRC_HW_APIC_H_
