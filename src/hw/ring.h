// A descriptor ring in the memory shared between the accelerator and a
// data-plane service, with a watcher hook so poll-mode consumers can be
// fast-forwarded to the next arrival instead of simulating each empty poll.
#ifndef SRC_HW_RING_H_
#define SRC_HW_RING_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/sim/inline_callback.h"
#include "src/sim/packet_pool.h"

namespace taichi::hw {

// Carries 4-byte sim::PacketHandle descriptors, not packets — the payload
// stays in the node's PacketPool, exactly as a real rx ring carries mbuf
// pointers into a shared arena. Storage is a power-of-two circular buffer
// sized once at construction; Push/PopBurst never allocate.
class DescriptorRing {
 public:
  explicit DescriptorRing(size_t capacity = 4096) {
    size_t pow2 = 1;
    while (pow2 < capacity) pow2 <<= 1;
    slots_.resize(pow2);
    mask_ = pow2 - 1;
    capacity_ = capacity;
  }

  // Pushes a descriptor. Returns false (drop) when the ring is full, which
  // mirrors rx-ring overflow behaviour under overload. On a drop the caller
  // still owns the handle and must return it to the pool.
  bool Push(sim::PacketHandle h) {
    if (size() >= capacity_) {
      ++drops_;
      return false;
    }
    slots_[tail_ & mask_] = h;
    ++tail_;
    if (watcher_) {
      watcher_();
    }
    return true;
  }

  // Pops up to `max` descriptors into `out`; returns the count — the model of
  // rte_eth_rx_burst(). Ownership of the popped handles passes to the caller.
  size_t PopBurst(size_t max, sim::PacketHandle* out) {
    size_t n = 0;
    while (n < max && head_ != tail_) {
      out[n++] = slots_[head_ & mask_];
      ++head_;
    }
    return n;
  }

  bool empty() const { return head_ == tail_; }
  size_t size() const { return static_cast<size_t>(tail_ - head_); }
  size_t capacity() const { return capacity_; }
  uint64_t drops() const { return drops_; }

  // Invoked on every Push. Used by poll services to wake from idle
  // fast-forward; must not pop synchronously from inside the callback.
  void set_watcher(sim::InlineCallback watcher) { watcher_ = std::move(watcher); }

 private:
  std::vector<sim::PacketHandle> slots_;
  uint64_t head_ = 0;   // Next slot to pop.
  uint64_t tail_ = 0;   // Next slot to fill.
  size_t mask_ = 0;
  size_t capacity_ = 0;
  sim::InlineCallback watcher_;
  uint64_t drops_ = 0;
};

}  // namespace taichi::hw

#endif  // SRC_HW_RING_H_
