// A descriptor ring in the memory shared between the accelerator and a
// data-plane service, with a watcher hook so poll-mode consumers can be
// fast-forwarded to the next arrival instead of simulating each empty poll.
#ifndef SRC_HW_RING_H_
#define SRC_HW_RING_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <utility>

#include "src/hw/io_packet.h"

namespace taichi::hw {

class DescriptorRing {
 public:
  explicit DescriptorRing(size_t capacity = 4096) : capacity_(capacity) {}

  // Pushes a descriptor. Returns false (drop) when the ring is full, which
  // mirrors rx-ring overflow behaviour under overload.
  bool Push(const IoPacket& pkt) {
    if (entries_.size() >= capacity_) {
      ++drops_;
      return false;
    }
    entries_.push_back(pkt);
    if (watcher_) {
      watcher_();
    }
    return true;
  }

  // Pops up to `max` descriptors into `out`; returns the count — the model of
  // rte_eth_rx_burst().
  template <typename OutIt>
  size_t PopBurst(size_t max, OutIt out) {
    size_t n = 0;
    while (n < max && !entries_.empty()) {
      *out++ = entries_.front();
      entries_.pop_front();
      ++n;
    }
    return n;
  }

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t drops() const { return drops_; }

  // Invoked on every Push. Used by poll services to wake from idle
  // fast-forward; must not pop synchronously from inside the callback.
  void set_watcher(std::function<void()> watcher) { watcher_ = std::move(watcher); }

 private:
  size_t capacity_;
  std::deque<IoPacket> entries_;
  std::function<void()> watcher_;
  uint64_t drops_ = 0;
};

}  // namespace taichi::hw

#endif  // SRC_HW_RING_H_
