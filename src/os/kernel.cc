#include "src/os/kernel.h"

#include <algorithm>
#include <cassert>

#include "src/sim/logging.h"

namespace taichi::os {
namespace {

hw::IrqVector VectorFor(IpiType type) {
  switch (type) {
    case IpiType::kResched:
      return hw::IrqVector::kResched;
    case IpiType::kBoot:
      return hw::IrqVector::kBoot;
    case IpiType::kFunctionCall:
      return hw::IrqVector::kFunctionCall;
  }
  return hw::IrqVector::kResched;
}

IpiType TypeForVector(hw::IrqVector v) {
  switch (v) {
    case hw::IrqVector::kResched:
      return IpiType::kResched;
    case hw::IrqVector::kBoot:
      return IpiType::kBoot;
    default:
      return IpiType::kFunctionCall;
  }
}

}  // namespace

Kernel::Kernel(sim::Simulation* sim, hw::Machine* machine, KernelConfig config)
    : sim_(sim), machine_(machine), config_(config) {
  // The machine's physical CPUs boot with the kernel.
  for (uint32_t i = 0; i < machine_->num_cpus(); ++i) {
    CpuId id = RegisterCpu(CpuKind::kPhysical, machine_->cpu_apic_id(i));
    OsCpu& c = cpu(id);
    c.online = true;
    c.backed = true;
    c.last_account = sim_->Now();
  }
}

Kernel::~Kernel() {
  for (auto& c : cpus_) {
    if (c->kind == CpuKind::kPhysical) {
      machine_->apic().UnregisterHandler(c->apic_id);
    }
  }
}

CpuId Kernel::RegisterCpu(CpuKind kind, hw::ApicId apic_id) {
  auto c = std::make_unique<OsCpu>();
  c->id = static_cast<CpuId>(cpus_.size());
  c->apic_id = apic_id;
  c->kind = kind;
  CpuId id = c->id;
  cpus_.push_back(std::move(c));
  if (tracer_ != nullptr) {
    tracer_->SetTrackName(id, (kind == CpuKind::kVirtual ? "vcpu" : "cpu") + std::to_string(id));
  }
  if (kind == CpuKind::kPhysical) {
    machine_->apic().RegisterHandler(
        apic_id, [this, id](hw::IrqVector vector, hw::ApicId from) {
          OnHwInterrupt(id, vector, from);
        });
  }
  return id;
}

void Kernel::set_tracer(obs::TraceRecorder* tracer) {
  tracer_ = tracer;
  if (tracer_ == nullptr) {
    return;
  }
  for (const auto& c : cpus_) {
    tracer_->SetTrackName(
        c->id, (c->kind == CpuKind::kVirtual ? "vcpu" : "cpu") + std::to_string(c->id));
  }
}

void Kernel::RegisterMetrics(obs::MetricsRegistry& registry, const std::string& prefix) const {
  registry.AddCounter(prefix + ".context_switches", &context_switches_);
  registry.AddCounter(prefix + ".guest_entries", &guest_entries_);
  registry.AddCounter(prefix + ".guest_exits", &guest_exits_);
  registry.AddCounter(prefix + ".ipis_sent", &ipis_sent_);
  registry.AddCounter(prefix + ".softirqs_run", &softirqs_run_);
  registry.AddCounter(prefix + ".steals", &steals_);
}

void Kernel::OnlineCpu(CpuId id) {
  if (cpu(id).online) {
    return;
  }
  SendIpi(kInvalidCpu, id, IpiType::kBoot);
}

void Kernel::MarkCpuOnline(CpuId id) {
  OsCpu& c = cpu(id);
  if (c.online) {
    return;
  }
  c.online = true;
  c.last_account = sim_->Now();
  if (c.kind == CpuKind::kPhysical) {
    c.backed = true;
    Dispatch(id);
  }
  // Virtual CPUs stay unbacked until the vCPU scheduler places them.
}

size_t Kernel::runnable_count(CpuId id) const {
  const OsCpu& c = cpu(id);
  size_t n = 0;
  for (const auto& q : c.rq) {
    n += q.size();
  }
  return n;
}

bool Kernel::CpuIdle(CpuId id) const {
  const OsCpu& c = cpu(id);
  return c.online && c.current == nullptr && runnable_count(id) == 0 &&
         c.guest == kInvalidCpu;
}

bool Kernel::CpuInNonPreemptibleContext(CpuId id) const {
  const Task* t = cpu(id).current;
  return t != nullptr && t->non_preemptible();
}

bool Kernel::CpuHasWork(CpuId id) const {
  const OsCpu& c = cpu(id);
  return c.current != nullptr || runnable_count(id) > 0 || !c.pending_ipis.empty();
}

CpuAccounting Kernel::GetAccounting(CpuId id) {
  Account(cpu(id));
  return cpu(id).acct;
}

// ---- Tasks ----------------------------------------------------------------

Task* Kernel::Spawn(std::string name, std::unique_ptr<Behavior> behavior, CpuSet affinity,
                    Priority priority) {
  assert(!affinity.empty());
  auto owned = std::make_unique<Task>(next_task_id_++, std::move(name), priority, affinity,
                                      std::move(behavior));
  Task* t = owned.get();
  tasks_.push_back(std::move(owned));
  t->spawned_at_ = sim_->Now();
  t->state_ = TaskState::kRunnable;
  EnqueueAndKick(t, kInvalidCpu);
  return t;
}

void Kernel::Wake(Task* t, CpuId from) {
  if (t->state_ != TaskState::kSleeping && t->state_ != TaskState::kBlocked) {
    return;  // Already runnable/running; double wakes are no-ops.
  }
  t->state_ = TaskState::kRunnable;
  EnqueueAndKick(t, from);
}

void Kernel::SetTaskAffinity(Task* t, CpuSet affinity) {
  assert(!affinity.empty());
  t->affinity_ = affinity;
  switch (t->state_) {
    case TaskState::kRunnable: {
      if (affinity.Test(t->cpu_)) {
        return;  // Current queue is still legal.
      }
      // Remove from its run queue and re-place.
      OsCpu& c = cpu(t->cpu_);
      for (auto& q : c.rq) {
        for (auto it = q.begin(); it != q.end(); ++it) {
          if (*it == t) {
            q.erase(it);
            EnqueueAndKick(t, kInvalidCpu);
            return;
          }
        }
      }
      return;
    }
    case TaskState::kRunning: {
      if (affinity.Test(t->cpu_)) {
        return;
      }
      // Migrate at the next preemptible boundary: requeue onto a legal CPU.
      OsCpu& c = cpu(t->cpu_);
      if (c.current == t && CpuExecuting(c) && !t->non_preemptible()) {
        CpuId old_cpu = c.id;
        Account(c);
        FreezeSegment(c);
        t->state_ = TaskState::kRunnable;
        c.current = nullptr;
        if (tracer_ != nullptr) {
          tracer_->End(sim_->Now(), old_cpu);
        }
        EnqueueAndKick(t, kInvalidCpu);
        StartNext(old_cpu);
      } else {
        c.need_resched = true;  // Picked up when preemption re-enables.
      }
      return;
    }
    default:
      return;  // Sleeping/blocked tasks are placed by the next wake.
  }
}

void Kernel::KickTask(Task* t) {
  if (t->state_ == TaskState::kRunning && t->has_pending_ &&
      t->pending_.type == Action::Type::kBusyPoll) {
    OsCpu& c = cpu(t->cpu_);
    if (c.current == t && CpuExecuting(c) && c.seg_event != sim::kInvalidEventId) {
      sim_->Cancel(c.seg_event);
      c.seg_event = sim::kInvalidEventId;
      // Account the partial poll time.
      sim::Duration elapsed = sim_->Now() - c.seg_start;
      t->remaining_ = std::min(t->remaining_, elapsed);
      CompleteSegment(t->cpu_, /*busy_poll_timeout=*/false);
    } else if (c.current == t && CpuExecuting(c) && c.seg_event == sim::kInvalidEventId) {
      // Unbounded poll: complete immediately.
      t->remaining_ = 0;
      CompleteSegment(t->cpu_, /*busy_poll_timeout=*/false);
    } else {
      // Frozen (lent/unbacked CPU): mark the poll done so the behavior
      // re-evaluates on resume.
      t->has_pending_ = false;
      t->action_begun_ = false;
      t->last_result_ = {Action::Type::kBusyPoll, false};
    }
    return;
  }
  Wake(t);
}

sim::Duration Kernel::TaskCpuTime(const Task& t) const {
  sim::Duration total = t.cpu_time_;
  if (t.state_ == TaskState::kRunning && t.cpu_ != kInvalidCpu) {
    const OsCpu& c = cpu(t.cpu_);
    if (c.current == &t && c.seg_event != sim::kInvalidEventId) {
      sim::Duration elapsed = sim_->Now() - c.seg_start;
      total += std::min(elapsed, t.remaining_);
    }
  }
  return total;
}

void Kernel::EnqueueTask(Task* t, CpuId id) {
  OsCpu& c = cpu(id);
  t->cpu_ = id;
  c.rq[static_cast<int>(t->priority_)].push_back(t);
}

CpuId Kernel::ChooseCpuFor(const Task& t) const {
  CpuId best = kInvalidCpu;
  size_t best_load = SIZE_MAX;
  for (CpuId id = 0; id < num_cpus(); ++id) {
    if (!t.affinity().Test(id) || !cpu(id).online) {
      continue;
    }
    size_t load = runnable_count(id) + (cpu(id).current != nullptr ? 1 : 0);
    if (load == 0) {
      return id;  // Idle CPU: take the first one for determinism.
    }
    if (load < best_load) {
      best_load = load;
      best = id;
    }
  }
  assert(best != kInvalidCpu && "no online CPU in task affinity");
  return best;
}

void Kernel::EnqueueAndKick(Task* t, CpuId from) {
  CpuId id = ChooseCpuFor(*t);
  EnqueueTask(t, id);
  OsCpu& c = cpu(id);
  bool need_kick = false;
  if (!c.backed || c.mode != CpuMode::kHost) {
    need_kick = true;  // Sleeping vCPU or lent pCPU: the router must act.
  } else if (c.current == nullptr) {
    need_kick = true;  // Idle CPU.
  } else if (static_cast<int>(t->priority_) > static_cast<int>(c.current->priority_)) {
    need_kick = true;  // Wake preemption.
  }
  if (need_kick) {
    SendIpi(from, id, IpiType::kResched);
  }
}

// ---- IPIs ------------------------------------------------------------------

void Kernel::SendIpi(CpuId from, CpuId to, IpiType type) {
  ipis_sent_.Inc();
  if (tracer_ != nullptr) {
    tracer_->Instant(sim_->Now(), from == kInvalidCpu ? to : from, obs::TraceCategory::kIpi,
                     "ipi_send", static_cast<uint64_t>(to), static_cast<uint64_t>(type));
  }
  if (router_ != nullptr) {
    router_->Route(from, to, type);
  } else {
    RouteDefault(from, to, type);
  }
}

void Kernel::RouteDefault(CpuId from, CpuId to, IpiType type) {
  OsCpu& dst = cpu(to);
  if (dst.kind == CpuKind::kPhysical) {
    hw::ApicId from_apic =
        from == kInvalidCpu ? hw::kInvalidApicId : cpu(from).apic_id;
    machine_->apic().Send(from_apic, dst.apic_id, VectorFor(type));
  } else {
    // No orchestrator installed: deliver functionally with the same latency.
    sim_->Schedule(machine_->apic().delivery_latency(),
                   [this, to, type] { HandleIpiAt(to, type); });
  }
}

void Kernel::HandleIpiAt(CpuId id, IpiType type) {
  OsCpu& c = cpu(id);
  if (tracer_ != nullptr) {
    tracer_->Instant(sim_->Now(), id, obs::TraceCategory::kIpi, "ipi_recv",
                     static_cast<uint64_t>(type));
  }
  switch (type) {
    case IpiType::kBoot:
      if (!c.online) {
        sim_->Schedule(config_.boot_cost, [this, id] { MarkCpuOnline(id); });
      }
      return;
    case IpiType::kFunctionCall:
      return;
    case IpiType::kResched:
      break;
  }
  if (!c.online) {
    return;
  }
  if (!CpuExecuting(c)) {
    // Unbacked vCPU or lent/transitioning pCPU: remember the intent; the
    // resume paths re-dispatch.
    c.pending_ipis.push_back(type);
    return;
  }
  if (c.current == nullptr) {
    Dispatch(id);
    return;
  }
  Task* t = c.current;
  if (HigherPriorityWaiting(c, t->priority_)) {
    if (!t->non_preemptible()) {
      RequeueCurrent(id);
      StartNext(id);
    } else {
      c.need_resched = true;
    }
  }
}

void Kernel::OnHwInterrupt(CpuId id, hw::IrqVector vector, hw::ApicId /*from*/) {
  OsCpu& c = cpu(id);
  if (tracer_ != nullptr) {
    tracer_->Instant(sim_->Now(), id, obs::TraceCategory::kIrq, "irq",
                     static_cast<uint64_t>(vector));
  }
  if (!c.online) {
    if (vector == hw::IrqVector::kBoot) {
      sim_->Schedule(config_.boot_cost, [this, id] { MarkCpuOnline(id); });
    }
    return;
  }
  switch (c.mode) {
    case CpuMode::kTransition:
      c.pending_irqs.push_back(vector);
      return;
    case CpuMode::kGuest:
      // Any external interrupt forces a VM-exit (§3.4: vCPU contexts can be
      // interrupted at any time).
      c.pending_irqs.push_back(vector);
      ExitGuest(id, GuestExitReason::kExternalInterrupt, vector);
      return;
    case CpuMode::kHost:
      HandleIrqHost(id, vector);
      return;
  }
}

void Kernel::HandleIrqHost(CpuId id, hw::IrqVector vector) {
  switch (vector) {
    case hw::IrqVector::kResched:
    case hw::IrqVector::kBoot:
    case hw::IrqVector::kFunctionCall:
      HandleIpiAt(id, TypeForVector(vector));
      return;
    default:
      // kDpWorkload in host mode is masked/spurious by design (the probe's
      // P-state check makes this rare); other vectors are ignored.
      return;
  }
}

// ---- Softirqs ---------------------------------------------------------------

void Kernel::RegisterSoftirq(int nr, std::function<void(CpuId)> handler) {
  assert(nr >= 0 && nr < kNumSoftirqs);
  softirq_handlers_[nr] = std::move(handler);
}

void Kernel::RaiseSoftirq(CpuId id, int nr) {
  assert(nr >= 0 && nr < kNumSoftirqs);
  OsCpu& c = cpu(id);
  c.pending_softirqs |= 1u << nr;
  sim_->Schedule(config_.softirq_latency, [this, id] { TryRunSoftirqs(id); });
}

void Kernel::TryRunSoftirqs(CpuId id) {
  OsCpu& c = cpu(id);
  if (c.pending_softirqs == 0 || !CpuExecuting(c)) {
    return;  // Retried when the CPU resumes host execution.
  }
  if (c.current != nullptr && c.current->non_preemptible()) {
    return;  // Retried at the next preemptible boundary.
  }
  FreezeSegment(c);
  while (c.pending_softirqs != 0) {
    int nr = __builtin_ctz(c.pending_softirqs);
    c.pending_softirqs &= ~(1u << nr);
    softirqs_run_.Inc();
    if (tracer_ != nullptr) {
      tracer_->Instant(sim_->Now(), id, obs::TraceCategory::kIrq, "softirq",
                       static_cast<uint64_t>(nr));
    }
    if (softirq_handlers_[nr]) {
      softirq_handlers_[nr](id);
    }
    if (!CpuExecuting(c)) {
      return;  // The handler lent this CPU to a vCPU (Tai Chi switch).
    }
  }
  if (c.current != nullptr) {
    ResumeSegment(id);
  } else {
    Dispatch(id);
  }
}

// ---- Scheduling core ---------------------------------------------------------

bool Kernel::HigherPriorityWaiting(const OsCpu& c, Priority prio) const {
  for (int p = static_cast<int>(prio) + 1; p < kNumPriorities; ++p) {
    if (!c.rq[p].empty()) {
      return true;
    }
  }
  return false;
}

bool Kernel::SameOrHigherWaiting(const OsCpu& c, Priority prio) const {
  for (int p = static_cast<int>(prio); p < kNumPriorities; ++p) {
    if (!c.rq[p].empty()) {
      return true;
    }
  }
  return false;
}

void Kernel::Dispatch(CpuId id) {
  OsCpu& c = cpu(id);
  if (!CpuExecuting(c)) {
    return;
  }
  if (c.current != nullptr) {
    return;  // Already running something.
  }
  StartNext(id);
}

Task* Kernel::PickNext(OsCpu& c) {
  for (int p = kNumPriorities - 1; p >= 0; --p) {
    if (!c.rq[p].empty()) {
      Task* t = c.rq[p].front();
      c.rq[p].pop_front();
      return t;
    }
  }
  return nullptr;
}

bool Kernel::TrySteal(CpuId id) {
  // Pull a runnable task from the most loaded CPU that allows it here.
  CpuId donor = kInvalidCpu;
  size_t donor_load = 0;
  for (CpuId other = 0; other < num_cpus(); ++other) {
    if (other == id || !cpu(other).online) {
      continue;
    }
    size_t load = runnable_count(other);
    if (load <= donor_load) {
      continue;
    }
    // Check it has at least one stealable task.
    for (int p = kNumPriorities - 1; p >= 0; --p) {
      for (Task* t : cpu(other).rq[p]) {
        if (t->affinity().Test(id)) {
          donor = other;
          donor_load = load;
          goto next_donor;
        }
      }
    }
  next_donor:;
  }
  if (donor == kInvalidCpu) {
    return false;
  }
  OsCpu& d = cpu(donor);
  for (int p = kNumPriorities - 1; p >= 0; --p) {
    for (auto it = d.rq[p].begin(); it != d.rq[p].end(); ++it) {
      if ((*it)->affinity().Test(id)) {
        Task* t = *it;
        d.rq[p].erase(it);
        EnqueueTask(t, id);
        steals_.Inc();
        return true;
      }
    }
  }
  return false;
}

void Kernel::StartNext(CpuId id) {
  OsCpu& c = cpu(id);
  assert(c.current == nullptr);
  Account(c);
  Task* t = PickNext(c);
  if (t == nullptr && TrySteal(id)) {
    t = PickNext(c);
  }
  if (t == nullptr) {
    StopTick(id);
    if (c.kind == CpuKind::kVirtual && guest_halt_handler_) {
      // The vCPU's idle loop executes HLT; the controller typically exits
      // guest mode and marks the vCPU sleeping.
      guest_halt_handler_(id);
    } else if (c.kind == CpuKind::kPhysical && idle_handler_) {
      idle_handler_(id);
    }
    return;
  }
  c.current = t;
  t->state_ = TaskState::kRunning;
  t->cpu_ = id;
  t->ran_in_slice_ = 0;
  context_switches_.Inc();
  if (tracer_ != nullptr) {
    tracer_->Begin(sim_->Now(), id, obs::TraceCategory::kSched, t->name().c_str(), t->id());
  }
  c.pending_switch_cost = config_.context_switch_cost;
  StartTick(id);
  t->behavior().OnScheduledIn(*this, *t);
  ExecuteCurrent(id);
}

void Kernel::RequeueCurrent(CpuId id) {
  OsCpu& c = cpu(id);
  Task* t = c.current;
  assert(t != nullptr);
  Account(c);
  FreezeSegment(c);
  t->state_ = TaskState::kRunnable;
  c.current = nullptr;
  if (tracer_ != nullptr) {
    tracer_->End(sim_->Now(), id);
  }
  if (!t->affinity().Test(id)) {
    // Affinity changed while running here: migrate to a legal CPU.
    EnqueueAndKick(t, kInvalidCpu);
    return;
  }
  c.rq[static_cast<int>(t->priority_)].push_back(t);
}

void Kernel::FreezeSegment(OsCpu& c) {
  Task* t = c.current;
  if (t == nullptr) {
    return;
  }
  if (c.seg_event != sim::kInvalidEventId) {
    sim_->Cancel(c.seg_event);
    c.seg_event = sim::kInvalidEventId;
    sim::Duration elapsed = sim_->Now() - c.seg_start;
    sim::Duration used = std::min(elapsed, t->remaining_);
    t->cpu_time_ += used;
    t->remaining_ -= used;
  }
  if (t->has_pending_ && t->pending_.type == Action::Type::kBusyPoll) {
    // Polls restart from scratch on resume; the behavior re-checks its ring.
    t->has_pending_ = false;
    t->action_begun_ = false;
    t->last_result_ = {Action::Type::kBusyPoll, false};
  }
}

void Kernel::ResumeSegment(CpuId id) {
  OsCpu& c = cpu(id);
  Task* t = c.current;
  assert(t != nullptr && CpuExecuting(c));
  StartTick(id);
  if (!t->has_pending_ || !t->action_begun_) {
    // Either a fresh boundary, or an action whose begin-side-effects never
    // ran before the freeze: ExecuteCurrent handles both.
    ExecuteCurrent(id);
    return;
  }
  switch (t->pending_.type) {
    case Action::Type::kCompute:
    case Action::Type::kKernelSection:
    case Action::Type::kLockRelease: {
      c.seg_start = sim_->Now();
      c.seg_event = sim_->Schedule(t->remaining_, [this, id] {
        cpu(id).seg_event = sim::kInvalidEventId;
        CompleteSegment(id, false);
      });
      return;
    }
    case Action::Type::kLockAcquire:
      if (!t->spinning_) {
        // Lock was granted while we were frozen; finish the acquire cost.
        c.seg_start = sim_->Now();
        c.seg_event = sim_->Schedule(t->remaining_, [this, id] {
          cpu(id).seg_event = sim::kInvalidEventId;
          CompleteSegment(id, false);
        });
      }
      // Else: still spinning; the grant path will complete us.
      return;
    default:
      // kBusyPoll is discarded at freeze; others never stay pending.
      ExecuteCurrent(id);
      return;
  }
}

bool Kernel::MaybePreemptAtBoundary(CpuId id) {
  OsCpu& c = cpu(id);
  Task* t = c.current;
  if (t == nullptr || t->non_preemptible()) {
    return false;
  }
  if (!t->affinity().Test(id)) {
    // Affinity changed while running here: migrate at this boundary.
    c.need_resched = false;
    RequeueCurrent(id);
    StartNext(id);
    return true;
  }
  bool should = false;
  if (HigherPriorityWaiting(c, t->priority_)) {
    should = true;
  } else if (c.need_resched && SameOrHigherWaiting(c, t->priority_)) {
    should = true;
  }
  if (!should) {
    c.need_resched = false;
    return false;
  }
  c.need_resched = false;
  RequeueCurrent(id);
  StartNext(id);
  return true;
}

void Kernel::ExecuteCurrent(CpuId id) {
  OsCpu& c = cpu(id);
  Task* t = c.current;
  assert(t != nullptr);
  if (!CpuExecuting(c)) {
    return;
  }
  bool fresh;
  if (!t->has_pending_) {
    // Action boundary: bottom halves and preemption run here.
    if (c.pending_softirqs != 0 && !t->non_preemptible()) {
      TryRunSoftirqs(id);  // Re-enters ExecuteCurrent when appropriate.
      return;
    }
    if (MaybePreemptAtBoundary(id)) {
      return;
    }
    Action a = t->behavior().Next(*this, *t, t->last_result_);
    if (action_tracer_) {
      action_tracer_(*t, a);
    }
    t->pending_ = a;
    t->has_pending_ = true;
    t->action_begun_ = false;
    t->remaining_ = a.duration;
    // The behavior may have triggered a synchronous VM-exit of this very CPU
    // (e.g. a wake whose IPI the orchestrator intercepted because this is a
    // vCPU source). The pending action then waits for the next resume.
    if (!CpuExecuting(c) || c.current != t) {
      return;
    }
    // Unbounded busy polls must stay event-free; the switch cost is dropped
    // there (a poll restart after a switch is negligible anyway).
    if (a.type != Action::Type::kBusyPoll || a.duration > 0) {
      t->remaining_ += c.pending_switch_cost;
    }
    c.pending_switch_cost = 0;
  }
  fresh = !t->action_begun_;
  t->action_begun_ = true;
  const Action& a = t->pending_;
  auto schedule_end = [&](sim::Duration d) {
    c.seg_start = sim_->Now();
    bool timeout = a.type == Action::Type::kBusyPoll;
    c.seg_event = sim_->Schedule(d, [this, id, timeout] {
      cpu(id).seg_event = sim::kInvalidEventId;
      CompleteSegment(id, timeout);
    });
  };
  switch (a.type) {
    case Action::Type::kCompute:
      schedule_end(t->remaining_);
      return;
    case Action::Type::kKernelSection:
      if (fresh) {
        NonPreemptEnter(t);
      }
      schedule_end(t->remaining_);
      return;
    case Action::Type::kLockAcquire:
      if (fresh) {
        t->remaining_ += config_.lock_op_cost;
        NonPreemptEnter(t);
        BeginLockAcquire(id, t, a.lock);
      }
      return;
    case Action::Type::kLockRelease:
      if (fresh) {
        t->remaining_ += config_.lock_op_cost;
      }
      schedule_end(t->remaining_);
      return;
    case Action::Type::kSleep: {
      Task* sleeper = t;
      sleeper->has_pending_ = false;
      sleeper->action_begun_ = false;
      sleeper->last_result_ = {Action::Type::kSleep, false};
      sleeper->state_ = TaskState::kSleeping;
      Account(c);
      c.current = nullptr;
      if (tracer_ != nullptr) {
        tracer_->End(sim_->Now(), id);
      }
      sim_->Schedule(a.duration, [this, sleeper] {
        if (sleeper->state_ == TaskState::kSleeping) {
          Wake(sleeper);
        }
      });
      StartNext(id);
      return;
    }
    case Action::Type::kBlock:
      t->has_pending_ = false;
      t->action_begun_ = false;
      t->last_result_ = {Action::Type::kBlock, false};
      t->state_ = TaskState::kBlocked;
      Account(c);
      c.current = nullptr;
      if (tracer_ != nullptr) {
        tracer_->End(sim_->Now(), id);
      }
      StartNext(id);
      return;
    case Action::Type::kYield:
      t->has_pending_ = false;
      t->action_begun_ = false;
      t->last_result_ = {Action::Type::kYield, false};
      RequeueCurrent(id);
      StartNext(id);
      return;
    case Action::Type::kBusyPoll:
      if (t->remaining_ > 0) {
        schedule_end(t->remaining_);
      }
      // Unbounded polls park here until KickTask or a freeze.
      return;
    case Action::Type::kExit:
      TaskExited(id);
      return;
    case Action::Type::kNone:
      assert(false && "behavior returned kNone");
      return;
  }
}

void Kernel::CompleteSegment(CpuId id, bool busy_poll_timeout) {
  OsCpu& c = cpu(id);
  Task* t = c.current;
  assert(t != nullptr && t->has_pending_);
  t->cpu_time_ += t->remaining_;
  t->remaining_ = 0;
  Action a = t->pending_;
  t->has_pending_ = false;
  t->action_begun_ = false;
  t->last_result_ = {a.type, busy_poll_timeout};
  switch (a.type) {
    case Action::Type::kKernelSection:
      NonPreemptExit(t);
      break;
    case Action::Type::kLockRelease:
      BeginLockRelease(id, t, a.lock);
      break;
    default:
      break;
  }
  ExecuteCurrent(id);
}

void Kernel::TaskExited(CpuId id) {
  OsCpu& c = cpu(id);
  Task* t = c.current;
  assert(t != nullptr);
  t->state_ = TaskState::kExited;
  t->exited_at_ = sim_->Now();
  t->has_pending_ = false;
  t->action_begun_ = false;
  assert(t->non_preempt_depth_ == 0 && "task exited inside a kernel section");
  Account(c);
  c.current = nullptr;
  if (tracer_ != nullptr) {
    tracer_->End(sim_->Now(), id);
  }
  if (task_exit_handler_) {
    task_exit_handler_(*t);
  }
  StartNext(id);
}

// ---- Ticks -------------------------------------------------------------------

void Kernel::StartTick(CpuId id) {
  OsCpu& c = cpu(id);
  if (c.tick_event != sim::kInvalidEventId) {
    return;
  }
  // One repeating event per CPU: firing re-keys the slot instead of
  // rebuilding the closure every tick_period.
  c.tick_event = sim_->ScheduleRepeating(config_.tick_period, [this, id] { Tick(id); });
}

void Kernel::StopTick(CpuId id) {
  OsCpu& c = cpu(id);
  if (c.tick_event != sim::kInvalidEventId) {
    sim_->Cancel(c.tick_event);
    c.tick_event = sim::kInvalidEventId;
  }
}

void Kernel::Tick(CpuId id) {
  OsCpu& c = cpu(id);
  if (!CpuExecuting(c)) {
    StopTick(id);  // Restarted on resume.
    return;
  }
  Account(c);
  Task* t = c.current;
  if (t == nullptr) {
    StopTick(id);  // Idle CPUs do not tick.
    return;
  }
  // The repeating tick_event has already re-keyed itself to now + tick_period.
  t->ran_in_slice_ += config_.tick_period;
  if (t->ran_in_slice_ >= config_.sched_slice && SameOrHigherWaiting(c, t->priority_)) {
    if (!t->non_preemptible()) {
      RequeueCurrent(id);
      StartNext(id);
    } else {
      c.need_resched = true;
    }
  }
}

// ---- Locks -------------------------------------------------------------------

void Kernel::BeginLockAcquire(CpuId id, Task* t, KernelSpinlock* lock) {
  assert(lock != nullptr);
  OsCpu& c = cpu(id);
  if (lock->holder_ == nullptr) {
    lock->holder_ = t;
    lock->held_since_ = sim_->Now();
    lock->acquisitions_.Inc();
    ++t->locks_held_;
    if (tracer_ != nullptr) {
      tracer_->Instant(sim_->Now(), id, obs::TraceCategory::kLock, "lock_acquire", t->id());
    }
    // The acquire cost runs as a timed segment.
    c.seg_start = sim_->Now();
    c.seg_event = sim_->Schedule(t->remaining_, [this, id] {
      cpu(id).seg_event = sim::kInvalidEventId;
      CompleteSegment(id, false);
    });
    return;
  }
  lock->contentions_.Inc();
  if (tracer_ != nullptr) {
    tracer_->Instant(sim_->Now(), id, obs::TraceCategory::kLock, "lock_contend", t->id());
  }
  t->spinning_ = true;
  t->waiting_lock_ = lock;
  t->spin_since_ = sim_->Now();
  lock->waiters_.push_back(t);
  // No completion event: the task spins (burning CPU, non-preemptible) until
  // the release path grants it the lock.
}

void Kernel::FinishLockAcquire(Task* t, KernelSpinlock* lock) {
  t->spinning_ = false;
  t->waiting_lock_ = nullptr;
  t->lock_spin_time_ += sim_->Now() - t->spin_since_;
  lock->holder_ = t;
  lock->held_since_ = sim_->Now();
  lock->acquisitions_.Inc();
  ++t->locks_held_;
  if (tracer_ != nullptr) {
    tracer_->Instant(sim_->Now(), t->cpu_, obs::TraceCategory::kLock, "lock_acquire", t->id());
  }
  // Finish the acquire action; if the waiter's CPU is currently executing it,
  // schedule the residual acquire cost, otherwise leave it pending for
  // ResumeSegment.
  OsCpu& c = cpu(t->cpu_);
  t->remaining_ = config_.lock_op_cost;
  if (c.current == t && CpuExecuting(c)) {
    c.seg_start = sim_->Now();
    CpuId id = t->cpu_;
    c.seg_event = sim_->Schedule(t->remaining_, [this, id] {
      cpu(id).seg_event = sim::kInvalidEventId;
      CompleteSegment(id, false);
    });
  }
}

void Kernel::BeginLockRelease(CpuId id, Task* t, KernelSpinlock* lock) {
  assert(lock != nullptr && lock->holder_ == t);
  lock->hold_time_us_.Add(sim::ToMicros(sim_->Now() - lock->held_since_));
  if (tracer_ != nullptr) {
    tracer_->Instant(sim_->Now(), id, obs::TraceCategory::kLock, "lock_release", t->id());
  }
  lock->holder_ = nullptr;
  --t->locks_held_;
  NonPreemptExit(t);
  if (!lock->waiters_.empty()) {
    Task* next = lock->waiters_.front();
    lock->waiters_.pop_front();
    FinishLockAcquire(next, lock);
  }
}

void Kernel::NonPreemptEnter(Task* t) {
  if (t->non_preempt_depth_++ == 0) {
    t->non_preempt_since_ = sim_->Now();
  }
}

void Kernel::NonPreemptExit(Task* t) {
  assert(t->non_preempt_depth_ > 0);
  if (--t->non_preempt_depth_ == 0 && nonpreempt_tracer_) {
    nonpreempt_tracer_(*t, sim_->Now() - t->non_preempt_since_);
  }
}

// ---- Guest mode ---------------------------------------------------------------

void Kernel::EnterGuest(CpuId pcpu, CpuId vcpu) {
  OsCpu& p = cpu(pcpu);
  OsCpu& v = cpu(vcpu);
  assert(p.kind == CpuKind::kPhysical && p.online && p.backed);
  assert(p.mode == CpuMode::kHost && p.guest == kInvalidCpu);
  assert(v.kind == CpuKind::kVirtual && v.online && !v.backed);
  (void)v;
  Account(p);
  FreezeSegment(p);
  StopTick(pcpu);
  p.mode = CpuMode::kTransition;
  guest_entries_.Inc();
  if (tracer_ != nullptr) {
    tracer_->Instant(sim_->Now(), pcpu, obs::TraceCategory::kVirt, "vm_entry",
                     static_cast<uint64_t>(vcpu));
    // The guest span on the pCPU track covers entry transition + guest
    // execution + exit transition; it closes in ExitGuest's completion.
    tracer_->Begin(sim_->Now(), pcpu, obs::TraceCategory::kVirt, "guest",
                   static_cast<uint64_t>(vcpu));
  }
  sim_->Schedule(config_.guest.entry_cost, [this, pcpu, vcpu] {
    OsCpu& pc = cpu(pcpu);
    OsCpu& vc = cpu(vcpu);
    Account(pc);
    pc.mode = CpuMode::kGuest;
    pc.guest = vcpu;
    vc.backed = true;
    vc.backer = pcpu;
    vc.last_account = sim_->Now();
    // Posted interrupts pended while the vCPU slept take effect now.
    vc.pending_ipis.clear();
    if (tracer_ != nullptr && vc.current != nullptr) {
      // Re-open the frozen task's span on the vCPU track for this backed
      // episode (ExitGuest closed it when the episode ended).
      tracer_->Begin(sim_->Now(), vcpu, obs::TraceCategory::kSched, vc.current->name().c_str(),
                     vc.current->id());
    }
    if (!pc.pending_irqs.empty()) {
      // An interrupt raced the entry: exit immediately.
      hw::IrqVector vec = pc.pending_irqs.front();
      ExitGuest(pcpu, GuestExitReason::kExternalInterrupt, vec);
      return;
    }
    if (vc.current != nullptr) {
      ResumeSegment(vcpu);
    } else {
      Dispatch(vcpu);
    }
    // Deferred bottom halves on the vCPU run once it executes a boundary.
  });
}

void Kernel::ExitGuest(CpuId pcpu, GuestExitReason reason, hw::IrqVector vector) {
  OsCpu& p = cpu(pcpu);
  assert(p.mode == CpuMode::kGuest && p.guest != kInvalidCpu);
  CpuId vcpu = p.guest;
  OsCpu& v = cpu(vcpu);
  Account(p);
  Account(v);
  if (tracer_ != nullptr) {
    if (v.current != nullptr) {
      tracer_->End(sim_->Now(), vcpu);  // Close this backed episode's span.
    }
    tracer_->Instant(sim_->Now(), pcpu, obs::TraceCategory::kVirt, "vm_exit",
                     static_cast<uint64_t>(reason), static_cast<uint64_t>(vector));
  }
  FreezeSegment(v);
  (void)v;
  StopTick(vcpu);
  v.backed = false;
  v.backer = kInvalidCpu;
  p.guest = kInvalidCpu;
  p.mode = CpuMode::kTransition;
  guest_exits_.Inc();
  GuestExitInfo info{reason, vector};
  sim_->Schedule(config_.guest.exit_cost, [this, pcpu, vcpu, info] {
    OsCpu& pc = cpu(pcpu);
    Account(pc);
    pc.mode = CpuMode::kHost;
    if (tracer_ != nullptr) {
      tracer_->End(sim_->Now(), pcpu);  // Close the guest span.
    }
    // Pending interrupts become deferred rescheduling intents; the resume
    // path honours them.
    for (hw::IrqVector vec : pc.pending_irqs) {
      if (vec == hw::IrqVector::kResched) {
        pc.need_resched = true;
      }
    }
    pc.pending_irqs.clear();
    if (guest_exit_handler_) {
      guest_exit_handler_(pcpu, vcpu, info);
    } else {
      ResumeHost(pcpu);
    }
  });
}

void Kernel::ResumeHost(CpuId pcpu) {
  OsCpu& p = cpu(pcpu);
  assert(p.kind == CpuKind::kPhysical && p.mode == CpuMode::kHost &&
         p.guest == kInvalidCpu);
  for (IpiType type : p.pending_ipis) {
    if (type == IpiType::kResched) {
      p.need_resched = true;
    }
  }
  p.pending_ipis.clear();
  if (p.current == nullptr) {
    Dispatch(pcpu);
    if (p.pending_softirqs != 0) {
      TryRunSoftirqs(pcpu);
    }
    return;
  }
  Task* t = p.current;
  if (!t->non_preemptible() &&
      (HigherPriorityWaiting(p, t->priority_) ||
       (p.need_resched && SameOrHigherWaiting(p, t->priority_)))) {
    p.need_resched = false;
    RequeueCurrent(pcpu);
    StartNext(pcpu);
    return;
  }
  ResumeSegment(pcpu);
  if (p.pending_softirqs != 0) {
    TryRunSoftirqs(pcpu);
  }
}

// ---- Accounting -----------------------------------------------------------------

void Kernel::Account(OsCpu& c) {
  sim::SimTime now = sim_->Now();
  if (!c.online || (c.kind == CpuKind::kVirtual && !c.backed)) {
    c.last_account = now;
    return;
  }
  sim::Duration delta = now - c.last_account;
  c.last_account = now;
  if (delta == 0) {
    return;
  }
  if (c.mode == CpuMode::kGuest) {
    c.acct.guest_lent += delta;
  } else if (c.mode == CpuMode::kTransition || c.current != nullptr) {
    c.acct.busy += delta;
  } else {
    c.acct.idle += delta;
  }
}

}  // namespace taichi::os
