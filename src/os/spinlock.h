// Kernel spinlock model. Acquiring (or spinning on) a kernel spinlock
// disables preemption, which is exactly the non-preemptible-routine problem
// of §3.2: a CP task holding one cannot be descheduled by the OS.
#ifndef SRC_OS_SPINLOCK_H_
#define SRC_OS_SPINLOCK_H_

#include <deque>
#include <string>

#include "src/obs/metrics.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace taichi::os {

class Task;

class KernelSpinlock {
 public:
  explicit KernelSpinlock(std::string name = "lock") : name_(std::move(name)) {}
  KernelSpinlock(const KernelSpinlock&) = delete;
  KernelSpinlock& operator=(const KernelSpinlock&) = delete;

  const std::string& name() const { return name_; }
  Task* holder() const { return holder_; }
  bool held() const { return holder_ != nullptr; }
  size_t waiter_count() const { return waiters_.size(); }

  uint64_t acquisitions() const { return acquisitions_.value(); }
  uint64_t contentions() const { return contentions_.value(); }
  const sim::Summary& hold_time_us() const { return hold_time_us_; }

  // Registers this lock's metrics as "lock.<name>.*".
  void RegisterMetrics(obs::MetricsRegistry& registry) const {
    const std::string prefix = "lock." + name_;
    registry.AddCounter(prefix + ".acquisitions", &acquisitions_);
    registry.AddCounter(prefix + ".contentions", &contentions_);
    registry.AddSummary(prefix + ".hold_time_us", &hold_time_us_);
  }

 private:
  friend class Kernel;

  std::string name_;
  Task* holder_ = nullptr;
  std::deque<Task*> waiters_;  // FIFO hand-off among spinning tasks.
  sim::SimTime held_since_ = 0;
  sim::Counter acquisitions_;
  sim::Counter contentions_;
  sim::Summary hold_time_us_;
};

}  // namespace taichi::os

#endif  // SRC_OS_SPINLOCK_H_
