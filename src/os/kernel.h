// The SmartNIC operating system kernel.
//
// Models the parts of Linux that Tai Chi interacts with: per-CPU run queues
// with round-robin scheduling and timer ticks, non-preemptible kernel
// routines and spinlocks, softirqs, IPI dispatch (with a pluggable router —
// the hook Tai Chi's unified IPI orchestrator installs), CPU hotplug, and a
// guest execution mode in which a physical CPU lends itself to a virtual CPU
// (the mechanics underneath hybrid virtualization, §4).
//
// The kernel treats virtual CPUs exactly like physical ones — run queues,
// ticks, affinity — except that they only make progress while "backed" by a
// physical CPU. That asymmetry is the paper's "small yet delicate
// modification in the OS".
#ifndef SRC_OS_KERNEL_H_
#define SRC_OS_KERNEL_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/hw/machine.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/os/spinlock.h"
#include "src/os/task.h"
#include "src/os/types.h"
#include "src/sim/simulation.h"
#include "src/sim/stats.h"

namespace taichi::os {

// Virtualization transition costs. exit_cost + restore path is the "2 us
// scheduling latency" of §3.4 paid whenever a vCPU relinquishes a CPU.
struct GuestCosts {
  sim::Duration entry_cost = sim::MicrosF(1.5);  // pCPU -> vCPU (VM-entry path).
  sim::Duration exit_cost = sim::MicrosF(2.0);   // vCPU -> pCPU (VM-exit + restore).
  sim::Duration ipi_reissue_cost = sim::Nanos(300);
};

struct KernelConfig {
  sim::Duration tick_period = sim::Millis(1);
  sim::Duration sched_slice = sim::Millis(3);
  sim::Duration context_switch_cost = sim::MicrosF(1.2);
  sim::Duration lock_op_cost = sim::Nanos(120);
  sim::Duration softirq_latency = sim::Nanos(300);
  sim::Duration boot_cost = sim::Micros(50);
  GuestCosts guest;
};

// Per-CPU time accounting.
struct CpuAccounting {
  sim::Duration busy = 0;        // Running a task (includes switch overheads).
  sim::Duration idle = 0;        // Nothing runnable.
  sim::Duration guest_lent = 0;  // Physical CPU lent to a vCPU.
};

struct GuestExitInfo {
  GuestExitReason reason = GuestExitReason::kForced;
  hw::IrqVector vector = hw::IrqVector::kTimer;  // Valid for kExternalInterrupt.
};

// Interposition point for all IPIs (the kernel's x2apic_send_IPI). Tai Chi
// replaces the default router with its unified IPI orchestrator.
class IpiRouter {
 public:
  virtual ~IpiRouter() = default;
  virtual void Route(CpuId from, CpuId to, IpiType type) = 0;
};

class Kernel {
 public:
  Kernel(sim::Simulation* sim, hw::Machine* machine, KernelConfig config = {});
  ~Kernel();
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  sim::Simulation& sim() { return *sim_; }
  hw::Machine& machine() { return *machine_; }
  const KernelConfig& config() const { return config_; }

  // ---- CPU management -------------------------------------------------

  // Registers an additional CPU (hotplug); it starts offline and unbacked.
  // Virtual CPUs get synthetic APIC ids above the physical range.
  CpuId RegisterCpu(CpuKind kind, hw::ApicId apic_id);

  // Requests bring-up of an offline CPU by sending a boot IPI through the
  // router; the CPU comes online boot_cost later (or when the router's owner
  // calls MarkCpuOnline).
  void OnlineCpu(CpuId cpu);

  // Completes bring-up. Exposed for IPI routers that intercept boot IPIs.
  void MarkCpuOnline(CpuId cpu);

  int num_cpus() const { return static_cast<int>(cpus_.size()); }
  CpuKind cpu_kind(CpuId cpu) const { return cpus_[cpu]->kind; }
  hw::ApicId cpu_apic(CpuId cpu) const { return cpus_[cpu]->apic_id; }
  bool cpu_online(CpuId cpu) const { return cpus_[cpu]->online; }
  bool cpu_backed(CpuId cpu) const { return cpus_[cpu]->backed; }
  CpuId guest_of(CpuId pcpu) const { return cpus_[pcpu]->guest; }
  CpuId backer_of(CpuId vcpu) const { return cpus_[vcpu]->backer; }
  Task* current_task(CpuId cpu) const { return cpus_[cpu]->current; }
  size_t runnable_count(CpuId cpu) const;
  bool CpuIdle(CpuId cpu) const;
  // True if the CPU's current task is inside a non-preemptible routine or
  // holds a kernel lock — the lock-context test for safe CP-to-DP scheduling.
  bool CpuInNonPreemptibleContext(CpuId cpu) const;
  // True when the CPU is executing natively (not lent to a guest and not in
  // a VM-entry/exit transition).
  bool CpuInHostMode(CpuId cpu) const { return cpus_[cpu]->mode == CpuMode::kHost; }
  // Runnable work exists on this CPU (queued or current).
  bool CpuHasWork(CpuId cpu) const;

  CpuAccounting GetAccounting(CpuId cpu);

  // ---- Tasks ----------------------------------------------------------

  Task* Spawn(std::string name, std::unique_ptr<Behavior> behavior, CpuSet affinity,
              Priority priority = Priority::kNormal);
  void Wake(Task* task, CpuId from = kInvalidCpu);
  // Live affinity change (sched_setaffinity): a queued task migrates to an
  // allowed CPU immediately; a running task on a now-forbidden CPU migrates
  // at its next preemptible boundary. Used by cgroup re-binding and the
  // §8 audit-domain feature.
  void SetTaskAffinity(Task* task, CpuSet affinity);
  // Ends a kBusyPoll early (work arrived) or wakes a blocked task. The
  // standard kick data-plane rings use.
  void KickTask(Task* task);
  const std::vector<std::unique_ptr<Task>>& tasks() const { return tasks_; }

  // Task::cpu_time() is only settled at segment boundaries; this adds the
  // currently in-flight portion, giving an instantaneously correct value.
  sim::Duration TaskCpuTime(const Task& task) const;

  // ---- IPIs -----------------------------------------------------------

  // All IPI emission funnels through here and then the installed router.
  void SendIpi(CpuId from, CpuId to, IpiType type);
  // Installs a custom router (nullptr restores the default). Not owned.
  void set_ipi_router(IpiRouter* router) { router_ = router; }
  // The default physical delivery path: an MSR write to the LAPIC.
  void RouteDefault(CpuId from, CpuId to, IpiType type);
  // Handles an IPI as if it arrived at `cpu` (used by routers that bypass
  // the hardware APIC, e.g. posted-interrupt injection into a vCPU).
  void HandleIpiAt(CpuId cpu, IpiType type);

  // ---- Softirqs ---------------------------------------------------------

  static constexpr int kNumSoftirqs = 8;
  void RegisterSoftirq(int nr, std::function<void(CpuId)> handler);
  void RaiseSoftirq(CpuId cpu, int nr);

  // ---- Guest mode (hybrid virtualization mechanics) ---------------------

  // Lends physical CPU `pcpu` to virtual CPU `vcpu`. The pCPU's current task
  // is frozen in place; after entry_cost the vCPU starts executing. Must be
  // called with pcpu online, in host mode, and vcpu online and unbacked.
  void EnterGuest(CpuId pcpu, CpuId vcpu);

  // Forces pcpu out of guest mode. After exit_cost the guest-exit handler
  // runs and must either re-enter a guest or call ResumeHost().
  void ExitGuest(CpuId pcpu, GuestExitReason reason,
                 hw::IrqVector vector = hw::IrqVector::kTimer);

  // Resumes native execution on a pCPU after a guest exit.
  void ResumeHost(CpuId pcpu);

  using GuestExitHandler = std::function<void(CpuId pcpu, CpuId vcpu, const GuestExitInfo&)>;
  using GuestHaltHandler = std::function<void(CpuId vcpu)>;
  void set_guest_exit_handler(GuestExitHandler h) { guest_exit_handler_ = std::move(h); }
  // Invoked when a backed vCPU runs out of work (its idle loop would HLT).
  void set_guest_halt_handler(GuestHaltHandler h) { guest_halt_handler_ = std::move(h); }
  // Invoked when a physical CPU finds nothing to run (after attempting to
  // steal); lets a vCPU scheduler donate the idle CPU to a vCPU.
  using IdleHandler = std::function<void(CpuId pcpu)>;
  void set_idle_handler(IdleHandler h) { idle_handler_ = std::move(h); }

  // ---- Instrumentation ---------------------------------------------------

  // Called with (task, wall duration) when a task leaves a non-preemptible
  // episode — data for the Fig. 5 distribution.
  using NonPreemptTracer = std::function<void(const Task&, sim::Duration)>;
  void set_nonpreempt_tracer(NonPreemptTracer t) { nonpreempt_tracer_ = std::move(t); }
  // Called for every fresh action a task begins — the instruction-level
  // telemetry hook behind §8's on-demand auditing.
  using ActionTracer = std::function<void(const Task&, const Action&)>;
  void set_action_tracer(ActionTracer t) { action_tracer_ = std::move(t); }
  using TaskExitHandler = std::function<void(Task&)>;
  void set_task_exit_handler(TaskExitHandler h) { task_exit_handler_ = std::move(h); }

  uint64_t context_switches() const { return context_switches_.value(); }
  uint64_t guest_entries() const { return guest_entries_.value(); }
  uint64_t guest_exits() const { return guest_exits_.value(); }
  uint64_t ipis_sent() const { return ipis_sent_.value(); }
  uint64_t softirqs_run() const { return softirqs_run_.value(); }
  uint64_t steals() const { return steals_.value(); }

  // Attaches a trace recorder (nullptr detaches). Every known CPU gets a
  // default track name ("cpuN"/"vcpuN"); callers can rename tracks after.
  void set_tracer(obs::TraceRecorder* tracer);
  obs::TraceRecorder* tracer() const { return tracer_; }

  // Registers the kernel's counters as "<prefix>.*".
  void RegisterMetrics(obs::MetricsRegistry& registry, const std::string& prefix = "kernel") const;

 private:
  enum class CpuMode : uint8_t { kHost, kGuest, kTransition };

  struct OsCpu {
    CpuId id = kInvalidCpu;
    hw::ApicId apic_id = hw::kInvalidApicId;
    CpuKind kind = CpuKind::kPhysical;
    bool online = false;
    bool backed = false;

    Task* current = nullptr;
    std::array<std::deque<Task*>, kNumPriorities> rq;

    // Execution continuation state. seg_event is whatever single event drives
    // this CPU forward (segment completion, lock grant, switch delay).
    sim::EventId seg_event = sim::kInvalidEventId;
    sim::SimTime seg_start = 0;
    bool need_resched = false;
    sim::Duration pending_switch_cost = 0;

    // Guest-lending state.
    CpuMode mode = CpuMode::kHost;
    CpuId guest = kInvalidCpu;   // pCPU only: vCPU currently hosted.
    CpuId backer = kInvalidCpu;  // vCPU only: pCPU hosting us.
    std::vector<hw::IrqVector> pending_irqs;
    std::vector<IpiType> pending_ipis;  // vCPU: posted while unbacked.

    sim::EventId tick_event = sim::kInvalidEventId;
    uint32_t pending_softirqs = 0;

    CpuAccounting acct;
    sim::SimTime last_account = 0;
  };

  OsCpu& cpu(CpuId id) { return *cpus_[id]; }
  const OsCpu& cpu(CpuId id) const { return *cpus_[id]; }

  // True when code can execute natively on this CPU right now.
  bool CpuExecuting(const OsCpu& c) const {
    return c.online && c.backed && c.mode == CpuMode::kHost;
  }

  // Scheduling core.
  void Dispatch(CpuId cpu);
  void StartNext(CpuId cpu);
  void ExecuteCurrent(CpuId cpu);
  void CompleteSegment(CpuId cpu, bool busy_poll_timeout);
  void RequeueCurrent(CpuId cpu);
  void FreezeSegment(OsCpu& c);
  void ResumeSegment(CpuId cpu);
  bool MaybePreemptAtBoundary(CpuId cpu);
  bool HigherPriorityWaiting(const OsCpu& c, Priority prio) const;
  bool SameOrHigherWaiting(const OsCpu& c, Priority prio) const;
  Task* PickNext(OsCpu& c);
  bool TrySteal(CpuId cpu);
  void EnqueueTask(Task* task, CpuId cpu);
  CpuId ChooseCpuFor(const Task& task) const;
  void EnqueueAndKick(Task* task, CpuId from);
  void TaskExited(CpuId cpu);

  // Ticks.
  void StartTick(CpuId cpu);
  void StopTick(CpuId cpu);
  void Tick(CpuId cpu);

  // Actions.
  void BeginLockAcquire(CpuId cpu, Task* t, KernelSpinlock* lock);
  void FinishLockAcquire(Task* t, KernelSpinlock* lock);
  void BeginLockRelease(CpuId cpu, Task* t, KernelSpinlock* lock);
  void NonPreemptEnter(Task* t);
  void NonPreemptExit(Task* t);

  // Interrupts & softirqs.
  void OnHwInterrupt(CpuId cpu, hw::IrqVector vector, hw::ApicId from);
  void HandleIrqHost(CpuId cpu, hw::IrqVector vector);
  void TryRunSoftirqs(CpuId cpu);

  // Accounting.
  void Account(OsCpu& c);

  sim::Simulation* sim_;
  hw::Machine* machine_;
  KernelConfig config_;
  std::vector<std::unique_ptr<OsCpu>> cpus_;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::array<std::function<void(CpuId)>, kNumSoftirqs> softirq_handlers_;

  IpiRouter* router_ = nullptr;
  GuestExitHandler guest_exit_handler_;
  GuestHaltHandler guest_halt_handler_;
  IdleHandler idle_handler_;
  NonPreemptTracer nonpreempt_tracer_;
  ActionTracer action_tracer_;
  TaskExitHandler task_exit_handler_;

  obs::TraceRecorder* tracer_ = nullptr;

  TaskId next_task_id_ = 1;
  sim::Counter context_switches_;
  sim::Counter guest_entries_;
  sim::Counter guest_exits_;
  sim::Counter ipis_sent_;
  sim::Counter softirqs_run_;
  sim::Counter steals_;
};

}  // namespace taichi::os

#endif  // SRC_OS_KERNEL_H_
