// cpuset-cgroup-style task grouping: the deployment mechanism of §5 ("CP
// tasks are deployed by binding them to vCPUs and CP-dedicated physical
// CPUs through standard CPU affinity configuration (e.g., cgroup)").
//
// A CpuGroup holds a cpuset; member tasks inherit it, and changing the
// group's cpuset live-rebinds every member — which is exactly how Tai Chi
// rolls out (and rolls back) without touching task code.
#ifndef SRC_OS_CGROUP_H_
#define SRC_OS_CGROUP_H_

#include <string>
#include <vector>

#include "src/os/kernel.h"

namespace taichi::os {

class CpuGroup {
 public:
  CpuGroup(Kernel* kernel, std::string name, CpuSet cpus)
      : kernel_(kernel), name_(std::move(name)), cpus_(cpus) {}

  const std::string& name() const { return name_; }
  const CpuSet& cpus() const { return cpus_; }
  size_t size() const { return members_.size(); }
  const std::vector<Task*>& members() const { return members_; }

  // Adds a task: its affinity becomes the group's cpuset.
  void Attach(Task* task);

  // Removes a task, restoring the affinity it had before Attach.
  void Detach(Task* task);

  // Rebinds the whole group to a new cpuset (live migration of members).
  void SetCpus(CpuSet cpus);

  // Convenience: spawn a task directly into the group.
  Task* Spawn(std::string task_name, std::unique_ptr<Behavior> behavior,
              Priority priority = Priority::kNormal);

 private:
  Kernel* kernel_;
  std::string name_;
  CpuSet cpus_;
  std::vector<Task*> members_;
  std::vector<CpuSet> saved_affinity_;
};

}  // namespace taichi::os

#endif  // SRC_OS_CGROUP_H_
