// Shared OS-layer vocabulary: CPU ids, priorities, affinity sets, IPI types
// and guest-mode exit reasons.
#ifndef SRC_OS_TYPES_H_
#define SRC_OS_TYPES_H_

#include <cstdint>
#include <initializer_list>
#include <string>

#include "src/sim/time.h"

namespace taichi::os {

using CpuId = int32_t;
inline constexpr CpuId kInvalidCpu = -1;

using TaskId = uint64_t;

enum class CpuKind : uint8_t {
  kPhysical,  // Backed by silicon at all times.
  kVirtual,   // A Tai Chi vCPU: backed only while placed on a physical CPU.
};

// Scheduling classes. Higher value preempts lower (at preemptible points).
enum class Priority : uint8_t {
  kLow = 0,
  kNormal = 1,
  kHigh = 2,
};
inline constexpr int kNumPriorities = 3;

// Inter-processor interrupt types the kernel emits. These are routed through
// the pluggable IpiRouter so Tai Chi can interpose (§4.2).
enum class IpiType : uint8_t {
  kResched,       // Wake/reschedule the destination CPU.
  kBoot,          // INIT/SIPI bring-up for an offline CPU.
  kFunctionCall,  // smp_call_function-style cross call.
};

// Why a physical CPU left guest mode (VM-exit).
enum class GuestExitReason : uint8_t {
  kExternalInterrupt,  // A hardware IRQ targeted the physical CPU.
  kHalt,               // The vCPU ran out of work and executed HLT.
  kIpiSend,            // The guest attempted to send an IPI (source intercept).
  kPreemptionTimer,    // The vCPU time slice expired.
  kForced,             // The controller forced the exit for its own reasons.
};

const char* ToString(GuestExitReason reason);

// CPU affinity mask over up to 64 CPUs — ample for a SmartNIC plus vCPUs.
class CpuSet {
 public:
  constexpr CpuSet() = default;
  constexpr explicit CpuSet(uint64_t bits) : bits_(bits) {}

  static constexpr CpuSet All(int n) {
    return CpuSet(n >= 64 ? ~0ULL : ((1ULL << n) - 1));
  }
  static constexpr CpuSet Range(int lo, int hi_exclusive) {
    uint64_t bits = 0;
    for (int i = lo; i < hi_exclusive; ++i) {
      bits |= 1ULL << i;
    }
    return CpuSet(bits);
  }
  static CpuSet Of(std::initializer_list<CpuId> ids) {
    CpuSet s;
    for (CpuId id : ids) {
      s.Set(id);
    }
    return s;
  }

  void Set(CpuId id) { bits_ |= 1ULL << id; }
  void Clear(CpuId id) { bits_ &= ~(1ULL << id); }
  constexpr bool Test(CpuId id) const { return (bits_ >> id) & 1; }
  constexpr bool empty() const { return bits_ == 0; }
  constexpr int count() const { return __builtin_popcountll(bits_); }
  constexpr uint64_t bits() const { return bits_; }

  constexpr CpuSet operator|(CpuSet other) const { return CpuSet(bits_ | other.bits_); }
  constexpr CpuSet operator&(CpuSet other) const { return CpuSet(bits_ & other.bits_); }
  constexpr bool operator==(const CpuSet&) const = default;

  std::string ToString() const;

 private:
  uint64_t bits_ = 0;
};

}  // namespace taichi::os

#endif  // SRC_OS_TYPES_H_
