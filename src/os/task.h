// Tasks and their programs.
//
// A Task is a schedulable thread. Its code is a Behavior: a state machine the
// kernel drives by repeatedly asking for the next Action (compute for X ns,
// enter a non-preemptible kernel routine, take a spinlock, sleep, ...). This
// models real workloads at the granularity that matters for scheduling while
// staying fully deterministic.
#ifndef SRC_OS_TASK_H_
#define SRC_OS_TASK_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/os/types.h"
#include "src/sim/time.h"

namespace taichi::os {

class Kernel;
class KernelSpinlock;
class Task;

// One scheduling-relevant step of a task's program.
struct Action {
  enum class Type : uint8_t {
    kNone,           // Sentinel: "no previous action" on the first Next() call.
    kCompute,        // Preemptible user-space computation.
    kKernelSection,  // Non-preemptible kernel routine of a fixed duration.
    kLockAcquire,    // Acquire a kernel spinlock (spins non-preemptibly if held).
    kLockRelease,    // Release a held kernel spinlock.
    kSleep,          // Block for a fixed duration.
    kBlock,          // Block until Kernel::Wake().
    kYield,          // Voluntarily go to the back of the run queue.
    kBusyPoll,       // Burn CPU polling; ends early via Kernel::KickBusyPoll()
                     // or after `duration` if duration > 0 (0 = unbounded).
    kExit,           // Terminate the task.
  };

  Type type = Type::kNone;
  sim::Duration duration = 0;
  KernelSpinlock* lock = nullptr;

  static Action Compute(sim::Duration d) { return {Type::kCompute, d, nullptr}; }
  static Action KernelSection(sim::Duration d) { return {Type::kKernelSection, d, nullptr}; }
  static Action LockAcquire(KernelSpinlock* l) { return {Type::kLockAcquire, 0, l}; }
  static Action LockRelease(KernelSpinlock* l) { return {Type::kLockRelease, 0, l}; }
  static Action Sleep(sim::Duration d) { return {Type::kSleep, d, nullptr}; }
  static Action Block() { return {Type::kBlock, 0, nullptr}; }
  static Action Yield() { return {Type::kYield, 0, nullptr}; }
  static Action BusyPoll(sim::Duration max = 0) { return {Type::kBusyPoll, max, nullptr}; }
  static Action Exit() { return {Type::kExit, 0, nullptr}; }
};

// What the previous action was and how it ended; handed to Behavior::Next.
struct ActionResult {
  Action::Type type = Action::Type::kNone;
  // For kBusyPoll: true if the poll ran to its duration bound, false if it
  // was kicked because work arrived.
  bool busy_poll_timeout = false;
};

// A task's program. Next() is called when the task starts and after each
// action completes; it must eventually return kExit, kSleep, kBlock, kYield
// or kBusyPoll for long-lived services so other tasks can run.
class Behavior {
 public:
  virtual ~Behavior() = default;
  virtual Action Next(Kernel& kernel, Task& task, const ActionResult& last) = 0;
  // Invoked when the task starts running on a CPU after not running (fresh
  // dispatch or migration), letting services re-home per-CPU state.
  virtual void OnScheduledIn(Kernel& /*kernel*/, Task& /*task*/) {}
};

enum class TaskState : uint8_t {
  kRunnable,  // In a run queue.
  kRunning,   // Current on some CPU (possibly an unbacked vCPU).
  kSleeping,  // Timed sleep.
  kBlocked,   // Waiting for Kernel::Wake.
  kExited,
};

// Scheduler-visible task control block.
class Task {
 public:
  Task(TaskId id, std::string name, Priority priority, CpuSet affinity,
       std::unique_ptr<Behavior> behavior)
      : id_(id),
        name_(std::move(name)),
        priority_(priority),
        affinity_(affinity),
        behavior_(std::move(behavior)) {}

  TaskId id() const { return id_; }
  const std::string& name() const { return name_; }
  Priority priority() const { return priority_; }
  void set_priority(Priority p) { priority_ = p; }
  const CpuSet& affinity() const { return affinity_; }
  void set_affinity(CpuSet a) { affinity_ = a; }
  Behavior& behavior() { return *behavior_; }

  TaskState state() const { return state_; }
  CpuId cpu() const { return cpu_; }

  // True while the task must not be task-preempted: inside a kernel section,
  // holding or spinning on a kernel spinlock.
  bool non_preemptible() const { return non_preempt_depth_ > 0; }
  int locks_held() const { return locks_held_; }
  bool spinning() const { return spinning_; }

  // Statistics.
  sim::SimTime spawned_at() const { return spawned_at_; }
  sim::SimTime exited_at() const { return exited_at_; }
  sim::Duration cpu_time() const { return cpu_time_; }
  sim::Duration lock_spin_time() const { return lock_spin_time_; }

 private:
  friend class Kernel;
  friend class KernelSpinlock;

  TaskId id_;
  std::string name_;
  Priority priority_;
  CpuSet affinity_;
  std::unique_ptr<Behavior> behavior_;

  TaskState state_ = TaskState::kRunnable;
  CpuId cpu_ = kInvalidCpu;

  // Pending action execution state (supports freeze/resume).
  Action pending_{};
  bool has_pending_ = false;
  // True once the action's begin-side-effects (lock reservation, preemption
  // disabling) have run; guards against repeating them on resume.
  bool action_begun_ = false;
  sim::Duration remaining_ = 0;
  ActionResult last_result_{};

  // Non-preemptibility bookkeeping.
  int non_preempt_depth_ = 0;
  int locks_held_ = 0;
  bool spinning_ = false;
  KernelSpinlock* waiting_lock_ = nullptr;
  sim::SimTime non_preempt_since_ = 0;

  // Accounting.
  sim::SimTime spawned_at_ = 0;
  sim::SimTime exited_at_ = 0;
  sim::Duration cpu_time_ = 0;
  sim::Duration lock_spin_time_ = 0;
  sim::SimTime spin_since_ = 0;
  sim::Duration ran_in_slice_ = 0;
};

}  // namespace taichi::os

#endif  // SRC_OS_TASK_H_
