#include "src/os/types.h"

namespace taichi::os {

const char* ToString(GuestExitReason reason) {
  switch (reason) {
    case GuestExitReason::kExternalInterrupt:
      return "external-interrupt";
    case GuestExitReason::kHalt:
      return "halt";
    case GuestExitReason::kIpiSend:
      return "ipi-send";
    case GuestExitReason::kPreemptionTimer:
      return "preemption-timer";
    case GuestExitReason::kForced:
      return "forced";
  }
  return "?";
}

std::string CpuSet::ToString() const {
  std::string out = "{";
  bool first = true;
  for (int i = 0; i < 64; ++i) {
    if (Test(i)) {
      if (!first) {
        out += ",";
      }
      out += std::to_string(i);
      first = false;
    }
  }
  out += "}";
  return out;
}

}  // namespace taichi::os
