// Reusable Behavior building blocks for tests, examples and workload models.
#ifndef SRC_OS_BEHAVIORS_H_
#define SRC_OS_BEHAVIORS_H_

#include <functional>
#include <utility>
#include <vector>

#include "src/os/task.h"

namespace taichi::os {

// Runs a fixed list of actions once, then exits.
class ScriptBehavior : public Behavior {
 public:
  explicit ScriptBehavior(std::vector<Action> script) : script_(std::move(script)) {}

  Action Next(Kernel&, Task&, const ActionResult&) override {
    if (index_ >= script_.size()) {
      return Action::Exit();
    }
    return script_[index_++];
  }

 private:
  std::vector<Action> script_;
  size_t index_ = 0;
};

// Repeats a fixed list of actions forever (or `iterations` times).
class LoopBehavior : public Behavior {
 public:
  LoopBehavior(std::vector<Action> body, uint64_t iterations = 0)
      : body_(std::move(body)), iterations_(iterations) {}

  Action Next(Kernel&, Task&, const ActionResult&) override {
    if (index_ >= body_.size()) {
      index_ = 0;
      ++completed_;
      if (iterations_ != 0 && completed_ >= iterations_) {
        return Action::Exit();
      }
    }
    return body_[index_++];
  }

  uint64_t completed() const { return completed_; }

 private:
  std::vector<Action> body_;
  uint64_t iterations_;
  size_t index_ = 0;
  uint64_t completed_ = 0;
};

// Non-owning adapter: lets an externally owned object (e.g. a long-lived
// data-plane service) act as a task's behavior. The target must outlive the
// task.
class BehaviorRef : public Behavior {
 public:
  explicit BehaviorRef(Behavior* target) : target_(target) {}

  Action Next(Kernel& kernel, Task& task, const ActionResult& last) override {
    return target_->Next(kernel, task, last);
  }
  void OnScheduledIn(Kernel& kernel, Task& task) override {
    target_->OnScheduledIn(kernel, task);
  }

 private:
  Behavior* target_;
};

// Delegates to a callable; the most flexible form for bespoke state machines.
class LambdaBehavior : public Behavior {
 public:
  using Fn = std::function<Action(Kernel&, Task&, const ActionResult&)>;
  explicit LambdaBehavior(Fn fn) : fn_(std::move(fn)) {}

  Action Next(Kernel& kernel, Task& task, const ActionResult& last) override {
    return fn_(kernel, task, last);
  }

 private:
  Fn fn_;
};

}  // namespace taichi::os

#endif  // SRC_OS_BEHAVIORS_H_
