#include "src/os/cgroup.h"

#include <algorithm>
#include <cassert>

namespace taichi::os {

void CpuGroup::Attach(Task* task) {
  assert(std::find(members_.begin(), members_.end(), task) == members_.end());
  members_.push_back(task);
  saved_affinity_.push_back(task->affinity());
  kernel_->SetTaskAffinity(task, cpus_);
}

void CpuGroup::Detach(Task* task) {
  auto it = std::find(members_.begin(), members_.end(), task);
  if (it == members_.end()) {
    return;
  }
  size_t idx = static_cast<size_t>(it - members_.begin());
  kernel_->SetTaskAffinity(task, saved_affinity_[idx]);
  members_.erase(it);
  saved_affinity_.erase(saved_affinity_.begin() + static_cast<long>(idx));
}

void CpuGroup::SetCpus(CpuSet cpus) {
  cpus_ = cpus;
  for (Task* task : members_) {
    if (task->state() != TaskState::kExited) {
      kernel_->SetTaskAffinity(task, cpus_);
    }
  }
}

Task* CpuGroup::Spawn(std::string task_name, std::unique_ptr<Behavior> behavior,
                      Priority priority) {
  Task* task = kernel_->Spawn(std::move(task_name), std::move(behavior), cpus_, priority);
  members_.push_back(task);
  saved_affinity_.push_back(cpus_);
  return task;
}

}  // namespace taichi::os
