#include "src/fleet/placer.h"

#include <cassert>

#include "src/sim/logging.h"

namespace taichi::fleet {

const char* ToString(PlacePolicy policy) {
  switch (policy) {
    case PlacePolicy::kRoundRobin:
      return "round-robin";
    case PlacePolicy::kLeastLoaded:
      return "least-loaded";
    case PlacePolicy::kBinPack:
      return "bin-pack";
  }
  return "?";
}

Placer::Placer(size_t num_nodes, NodeCapacity capacity, PlacePolicy policy)
    : capacity_(capacity), policy_(policy), loads_(num_nodes),
      by_score_(ScoreOrder{policy == PlacePolicy::kBinPack}) {
  if (num_nodes == 0) {
    TAICHI_ERROR(0, "placer: zero nodes is invalid, clamping to 1");
    loads_.resize(1);
  }
  if (policy_ != PlacePolicy::kRoundRobin) {
    for (size_t i = 0; i < loads_.size(); ++i) {
      by_score_.emplace(LoadScore(i), static_cast<uint32_t>(i));
    }
  }
}

bool Placer::Fits(size_t node, const WorkloadSpec& spec) const {
  if (node >= loads_.size()) {
    return false;
  }
  const Load& l = loads_[node];
  return l.vms + spec.vms <= capacity_.vm_slots &&
         l.dp_util + spec.dp_util <= capacity_.dp_util &&
         l.cp_load + spec.cp_load <= capacity_.cp_load;
}

double Placer::LoadScore(size_t node) const {
  const Load& l = loads_[node];
  double score = 0.0;
  if (capacity_.vm_slots > 0) {
    score = static_cast<double>(l.vms) / capacity_.vm_slots;
  }
  if (capacity_.dp_util > 0 && l.dp_util / capacity_.dp_util > score) {
    score = l.dp_util / capacity_.dp_util;
  }
  if (capacity_.cp_load > 0 && l.cp_load / capacity_.cp_load > score) {
    score = l.cp_load / capacity_.cp_load;
  }
  return score;
}

void Placer::ReindexNode(size_t node, double old_score) {
  if (policy_ == PlacePolicy::kRoundRobin) {
    return;
  }
  by_score_.erase({old_score, static_cast<uint32_t>(node)});
  by_score_.emplace(LoadScore(node), static_cast<uint32_t>(node));
}

void Placer::Commit(size_t node, const WorkloadSpec& spec) {
  const double old_score = LoadScore(node);
  loads_[node].vms += spec.vms;
  loads_[node].dp_util += spec.dp_util;
  loads_[node].cp_load += spec.cp_load;
  ++admitted_;
  ReindexNode(node, old_score);
}

Placement Placer::Place(const WorkloadSpec& spec) {
  Placement out;
  int chosen = -1;
  switch (policy_) {
    case PlacePolicy::kRoundRobin: {
      for (size_t i = 0; i < loads_.size(); ++i) {
        const size_t node = (cursor_ + i) % loads_.size();
        if (Fits(node, spec)) {
          chosen = static_cast<int>(node);
          cursor_ = (node + 1) % loads_.size();
          break;
        }
      }
      break;
    }
    case PlacePolicy::kLeastLoaded:
    case PlacePolicy::kBinPack: {
      // The index already holds the policy's preference order (coldest-first
      // for spread, hottest-first for consolidation, lowest id on ties):
      // take the first node with room. Only full nodes are skipped, so the
      // probe count is 1 + however many preferred nodes are at capacity.
      for (const auto& [score, node] : by_score_) {
        (void)score;
        if (Fits(node, spec)) {
          chosen = static_cast<int>(node);
          break;
        }
      }
      break;
    }
  }
  if (chosen < 0) {
    ++refused_;
    out.reason = "no node with capacity for tenant '" + spec.tenant + "'";
    return out;
  }
  Commit(static_cast<size_t>(chosen), spec);
  out.admitted = true;
  out.node = chosen;
  return out;
}

Placement Placer::PlaceOn(int node, const WorkloadSpec& spec) {
  Placement out;
  if (node < 0 || static_cast<size_t>(node) >= loads_.size()) {
    TAICHI_ERROR(0, "placer: PlaceOn invalid node %d", node);
    ++refused_;
    out.reason = "invalid node";
    return out;
  }
  if (!Fits(static_cast<size_t>(node), spec)) {
    ++refused_;
    out.reason = "node lacks capacity for tenant '" + spec.tenant + "'";
    return out;
  }
  Commit(static_cast<size_t>(node), spec);
  out.admitted = true;
  out.node = node;
  return out;
}

void Placer::Release(int node, const WorkloadSpec& spec) {
  if (node < 0 || static_cast<size_t>(node) >= loads_.size()) {
    TAICHI_ERROR(0, "placer: release on invalid node %d", node);
    return;
  }
  const double old_score = LoadScore(static_cast<size_t>(node));
  Load& l = loads_[static_cast<size_t>(node)];
  l.vms -= spec.vms;
  l.dp_util -= spec.dp_util;
  l.cp_load -= spec.cp_load;
  if (l.vms < 0 || l.dp_util < -1e-9 || l.cp_load < -1e-9) {
    // Releasing capacity that was never admitted here (double-release, or a
    // Release/PlaceOn pair aimed at the wrong node) silently corrupts every
    // future admission decision — fail loudly instead of clamping it away.
    TAICHI_ERROR(0, "placer: node %d released below zero (tenant '%s')", node,
                 spec.tenant.c_str());
    assert(false && "Placer::Release below zero: spec was never admitted on this node");
    l.vms = l.vms < 0 ? 0 : l.vms;
    l.dp_util = l.dp_util < 0 ? 0 : l.dp_util;
    l.cp_load = l.cp_load < 0 ? 0 : l.cp_load;
  }
  ReindexNode(static_cast<size_t>(node), old_score);
}

}  // namespace taichi::fleet
