// Fleet workload generator: drives every cluster node with the production
// load shape the paper measures.
//
// Data plane: each (node, CPU) gets an average utilization drawn from the
// Fig. 3 fleet mix (lognormal, median ~9%, thin tail into the low 30s) and
// bursty MMPP traffic at that level. Control plane: the standard background
// monitor fleet plus a Poisson stream of VM-startup workflows (Fig. 17's
// density regime), scheduled inside each node's own simulation so the whole
// fleet stays deterministic.
//
// LoadGen is the canonical scenario::TrafficSource: the scenario engine
// (and anything else that swaps traffic shapes) drives it through that
// interface, and the chaos layer's node-lifecycle notifications let it
// survive crash/restart churn — a rebooted node gets fresh utilization
// draws and a fresh arrival stream from the same per-node RNG.
#ifndef SRC_FLEET_LOAD_GEN_H_
#define SRC_FLEET_LOAD_GEN_H_

#include <vector>

#include "src/fleet/cluster.h"
#include "src/scenario/traffic_source.h"
#include "src/sim/random.h"

namespace taichi::fleet {

struct LoadGenConfig {
  // Fig. 3 fleet heterogeneity: LogNormal(median, sigma), clamped.
  double util_median = 0.095;
  double util_sigma = 0.50;
  double util_min = 0.005;
  double util_max = 0.85;
  uint32_t pkt_bytes = 512;
  // Flow population per source for the sketch telemetry (Zipf-like skew).
  // Telemetry-only: flow synthesis consumes no Rng state and no sim time.
  uint32_t flow_count = 256;
  double flow_skew = 1.3;

  // Poisson VM-startup arrivals per node (50/s at 1x density, §6.6).
  bool vm_arrivals = true;
  double vm_arrival_rate_per_sec = 50.0;
  // Per-node VM-arrival share: node i's effective rate is
  // vm_arrival_rate_per_sec * node_vm_scale[i] (missing entries = 1.0).
  // This is the heterogeneous-fleet knob and the unit the autopilot's live
  // migration moves between nodes (see MigrateVmShare).
  std::vector<double> node_vm_scale;

  // Spawn the standard background CP monitor fleet on each node.
  bool spawn_monitors = true;

  uint64_t seed = 2024;

  // --- Flow-aggregate user modeling (hyperscale fleets) ---
  //
  // Off (the default), each DP CPU draws its own Fig. 3 utilization and the
  // flow population repeats across nodes — fine at 12 nodes, wrong at 10k:
  // per-connection realism isn't affordable and fleet distinct-flow counts
  // must scale with the fleet. On, the users behind a node collapse into
  // per-node arrival-mix state: one aggregate packet rate
  // (users_per_node × pps_per_user, modulated by a per-node LogNormal(1.0,
  // util_sigma) factor for Fig. 3 heterogeneity) spread across the node's
  // DP CPUs, and a per-node flow population (users_per_node × flows_per_user
  // Zipf-keyed flows, salted per node so fleet-merged sketches see the true
  // aggregate). O(1) state per node regardless of user count; flow synthesis
  // stays counter-hashed (telemetry-only, no Rng, no timing).
  struct AggregateUsers {
    bool enabled = false;
    double users_per_node = 1000.0;
    double pps_per_user = 40.0;    // Mean offered packets/s per user.
    double flows_per_user = 1.0;   // Distinct 5-tuples per user.
    // Clamp on the per-node LogNormal modulation factor.
    double mod_min = 0.25;
    double mod_max = 4.0;
  };
  AggregateUsers aggregate;
};

class LoadGen : public scenario::TrafficSource {
 public:
  LoadGen(Cluster* cluster, LoadGenConfig config);

  // Starts DP load + CP arrivals on every node. Calling Start on a running
  // generator is a hard misuse — the second call would stack a second MMPP
  // source set on every DP CPU and silently double the offered load, so it
  // logs a TAICHI_ERROR and fails an assert (in every build type).
  void Start();
  // Stops the DP sources and cuts off future VM arrivals; in-flight VM
  // workflows still complete as the cluster advances.
  void Stop();

  bool running() const override { return running_; }
  // The drawn per-CPU utilizations, node-major (inspection / reporting).
  // A restarted node's entry reflects its newest incarnation's draws.
  // In aggregate mode every CPU of a node shares one entry.
  const std::vector<std::vector<double>>& node_utils() const { return node_utils_; }

  // Aggregate-mode per-node mix (empty when aggregate.enabled is false).
  struct NodeMix {
    double pps = 0;        // Aggregate offered packets/s across the node.
    uint32_t flows = 0;    // Distinct flows in the node's population.
    double util = 0;       // Resulting per-CPU average utilization.
  };
  const std::vector<NodeMix>& node_mixes() const { return node_mixes_; }

  // Scales future VM-startup arrivals (diurnal curves); effective from the
  // next arrival. Values <= 0 park arrivals on nodes whose next arrival
  // fires after the change; raising the rate re-arms parked nodes.
  void set_vm_rate(double per_sec);
  double vm_rate() const { return config_.vm_arrival_rate_per_sec; }

  // --- scenario::TrafficSource ---
  const char* name() const override { return "fig3-mix"; }
  void Start(Cluster& cluster) override;
  void Stop(Cluster& cluster) override;
  // The arrival event died with the crashed node's simulation; drop the
  // stale handle so a later Stop() cannot cancel into the replacement sim.
  void OnNodeCrash(Cluster& cluster, size_t node) override;
  // Re-provisions the freshly booted node: new utilization draws, new MMPP
  // sources, monitors and a new arrival stream — all from the node's own
  // RNG, further along the same deterministic sequence.
  void OnNodeRestart(Cluster& cluster, size_t node) override;
  // Per-node VM share (live migration): VmShare reads the current scale,
  // MigrateVmShare moves `units` of it between nodes, re-arming a parked
  // arrival stream on a node whose share rises from zero.
  double VmShare(size_t node) const override;
  bool MigrateVmShare(size_t from, size_t to, double units) override;

 private:
  void StartNode(size_t node);
  void ScheduleArrival(size_t node);
  // Effective arrival rate for `node` (base rate x per-node share).
  double NodeVmRate(size_t node) const {
    return config_.vm_arrival_rate_per_sec * vm_scale_[node];
  }
  // Restarts a parked arrival stream if the node's effective rate is
  // positive again (after set_vm_rate or MigrateVmShare raised it).
  void ReArmArrivals(size_t node);

  Cluster* cluster_;
  LoadGenConfig config_;
  std::vector<sim::Rng> arrival_rngs_;  // One independent stream per node.
  // One repeating arrival event per node, re-keyed with a fresh exponential
  // gap after each arrival (no per-arrival closure rebuild).
  std::vector<sim::EventId> arrival_events_;
  std::vector<std::vector<double>> node_utils_;
  std::vector<NodeMix> node_mixes_;  // Aggregate mode only.
  std::vector<double> vm_scale_;  // Current per-node share (migration moves it).
  bool running_ = false;
};

}  // namespace taichi::fleet

#endif  // SRC_FLEET_LOAD_GEN_H_
