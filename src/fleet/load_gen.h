// Fleet workload generator: drives every cluster node with the production
// load shape the paper measures.
//
// Data plane: each (node, CPU) gets an average utilization drawn from the
// Fig. 3 fleet mix (lognormal, median ~9%, thin tail into the low 30s) and
// bursty MMPP traffic at that level. Control plane: the standard background
// monitor fleet plus a Poisson stream of VM-startup workflows (Fig. 17's
// density regime), scheduled inside each node's own simulation so the whole
// fleet stays deterministic.
#ifndef SRC_FLEET_LOAD_GEN_H_
#define SRC_FLEET_LOAD_GEN_H_

#include <vector>

#include "src/fleet/cluster.h"
#include "src/sim/random.h"

namespace taichi::fleet {

struct LoadGenConfig {
  // Fig. 3 fleet heterogeneity: LogNormal(median, sigma), clamped.
  double util_median = 0.095;
  double util_sigma = 0.50;
  double util_min = 0.005;
  double util_max = 0.85;
  uint32_t pkt_bytes = 512;
  // Flow population per source for the sketch telemetry (Zipf-like skew).
  // Telemetry-only: flow synthesis consumes no Rng state and no sim time.
  uint32_t flow_count = 256;
  double flow_skew = 1.3;

  // Poisson VM-startup arrivals per node (50/s at 1x density, §6.6).
  bool vm_arrivals = true;
  double vm_arrival_rate_per_sec = 50.0;

  // Spawn the standard background CP monitor fleet on each node.
  bool spawn_monitors = true;

  uint64_t seed = 2024;
};

class LoadGen {
 public:
  LoadGen(Cluster* cluster, LoadGenConfig config);

  // Starts DP load + CP arrivals on every node. Idempotent-hostile on
  // purpose: call once per run.
  void Start();
  // Stops the DP sources and cuts off future VM arrivals; in-flight VM
  // workflows still complete as the cluster advances.
  void Stop();

  bool running() const { return running_; }
  // The drawn per-CPU utilizations, node-major (inspection / reporting).
  const std::vector<std::vector<double>>& node_utils() const { return node_utils_; }

 private:
  void ScheduleArrival(size_t node);

  Cluster* cluster_;
  LoadGenConfig config_;
  std::vector<sim::Rng> arrival_rngs_;  // One independent stream per node.
  // One repeating arrival event per node, re-keyed with a fresh exponential
  // gap after each arrival (no per-arrival closure rebuild).
  std::vector<sim::EventId> arrival_events_;
  std::vector<std::vector<double>> node_utils_;
  bool running_ = false;
};

}  // namespace taichi::fleet

#endif  // SRC_FLEET_LOAD_GEN_H_
