#include "src/fleet/rollout.h"

#include <algorithm>
#include <utility>

#include "src/sim/logging.h"

namespace taichi::fleet {

Rollout::Rollout(Cluster* cluster, RolloutConfig config)
    : cluster_(cluster), config_(std::move(config)), monitor_(cluster, config_.slo) {
  const int n = static_cast<int>(cluster_->size());
  if (config_.waves.empty()) {
    // Canary -> quarter -> full, deduplicated for small clusters.
    for (int w : {1, std::max(2, n / 4), n}) {
      if (config_.waves.empty() || w > config_.waves.back()) {
        config_.waves.push_back(std::min(w, n));
      }
    }
  }
  for (int& w : config_.waves) {
    if (w < 1 || w > n) {
      TAICHI_ERROR(0, "rollout: wave target %d clamped to cluster size %d", w, n);
      w = std::clamp(w, 1, n);
    }
  }
  if (!std::is_sorted(config_.waves.begin(), config_.waves.end())) {
    TAICHI_ERROR(0, "rollout: wave targets must be non-decreasing; sorting");
    std::sort(config_.waves.begin(), config_.waves.end());
  }
}

Rollout::~Rollout() {
  if (hook_id_ != 0) {
    cluster_->RemoveEpochHook(hook_id_);
  }
}

void Rollout::Start() {
  if (state_ != State::kIdle) {
    TAICHI_ERROR(cluster_->Now(), "rollout: Start on a rollout already in state %d",
                 static_cast<int>(state_));
    return;
  }
  hook_id_ = cluster_->AddEpochHook([this](sim::SimTime now) { OnEpoch(now); });
  BeginWave(0, cluster_->Now());
}

std::vector<int> Rollout::EnabledIds() const {
  std::vector<int> ids;
  ids.reserve(enabled_);
  for (size_t i = 0; i < enabled_; ++i) {
    ids.push_back(static_cast<int>(i));
  }
  return ids;
}

void Rollout::BeginWave(size_t wave, sim::SimTime now) {
  wave_ = wave;
  const size_t target = static_cast<size_t>(config_.waves[wave]);
  for (size_t i = enabled_; i < target; ++i) {
    if (!cluster_->alive(i)) {
      // A crashed node cannot take the wave; it reboots into baseline and a
      // later wave (or operator action) picks it up.
      Note(now, "wave " + std::to_string(wave) + ": node " + std::to_string(i) +
                    " is down, skipping enable");
      continue;
    }
    cluster_->node(i).EnableTaiChi();
  }
  enabled_ = target;
  state_ = State::kSoaking;
  settle_until_ = now + config_.settle;
  measuring_ = false;
  Note(now, "wave " + std::to_string(wave) + ": " + std::to_string(target) +
                "/" + std::to_string(cluster_->size()) + " nodes on Tai Chi");
}

void Rollout::OnEpoch(sim::SimTime now) {
  if (state_ != State::kSoaking) {
    return;
  }
  if (!measuring_) {
    if (now < settle_until_) {
      return;
    }
    // Backlog drained; open the gate window on post-settle samples only.
    monitor_.Observe(EnabledIds());
    measuring_ = true;
    gate_at_ = now + config_.soak;
    return;
  }
  if (now < gate_at_) {
    return;
  }
  SloMonitor::Report report = monitor_.Observe(EnabledIds());
  if (report.total_samples < config_.slo.min_samples) {
    // Not enough signal to judge the wave; keep soaking.
    gate_at_ = now + config_.soak;
    return;
  }
  gate_reports_.push_back(report);
  if (report.fleet_breach) {
    Note(now, "wave " + std::to_string(wave_) + " gate: p" +
                  std::to_string(static_cast<int>(config_.slo.percentile)) + " " +
                  std::to_string(report.fleet_value) + " breaches SLO " +
                  std::to_string(config_.slo.threshold) + " -> rollback");
    Rollback(now);
    return;
  }
  Note(now, "wave " + std::to_string(wave_) + " gate: p" +
                std::to_string(static_cast<int>(config_.slo.percentile)) + " " +
                std::to_string(report.fleet_value) + " within SLO");
  if (wave_ + 1 < config_.waves.size()) {
    BeginWave(wave_ + 1, now);
  } else {
    state_ = State::kDone;
    cluster_->RemoveEpochHook(hook_id_);
    hook_id_ = 0;
    Note(now, "rollout complete: " + std::to_string(enabled_) + " nodes on Tai Chi");
  }
}

void Rollout::OnNodeCrash(Cluster& cluster, size_t node) {
  if (node < enabled_ && state_ != State::kRolledBack) {
    Note(cluster.Now(), "node " + std::to_string(node) + " crashed inside the enabled set");
  }
}

void Rollout::OnNodeRestart(Cluster& cluster, size_t node) {
  if (node >= enabled_ || state_ == State::kRolledBack || state_ == State::kIdle) {
    return;  // Outside the enabled set (or nothing to rejoin): stays baseline.
  }
  if (!cluster.alive(node)) {
    return;
  }
  cluster.node(node).EnableTaiChi();
  Note(cluster.Now(), "node " + std::to_string(node) + " restarted, Tai Chi re-enabled");
}

void Rollout::Rollback(sim::SimTime now) {
  for (size_t i = 0; i < enabled_; ++i) {
    if (cluster_->alive(i) && cluster_->node(i).taichi_enabled()) {
      cluster_->node(i).DisableTaiChi();
    }
  }
  enabled_ = 0;
  state_ = State::kRolledBack;
  cluster_->RemoveEpochHook(hook_id_);
  hook_id_ = 0;
  Note(now, "rolled back: all nodes returned to baseline");
}

void Rollout::Note(sim::SimTime at, std::string what) {
  history_.push_back({at, std::move(what)});
}

}  // namespace taichi::fleet
