// Staged Tai Chi rollout across a cluster, mirroring the §6.6 deployment
// story: enable the framework on a canary slice first, soak it against the
// VM-startup SLO, then widen wave by wave until the whole fleet runs Tai
// Chi — or roll everything back the moment the SLO regresses.
//
// The rollout drives Testbed::EnableTaiChi/DisableTaiChi at epoch
// boundaries through a cluster epoch hook, and gates each wave on a
// windowed SloMonitor check over the currently-enabled nodes.
#ifndef SRC_FLEET_ROLLOUT_H_
#define SRC_FLEET_ROLLOUT_H_

#include <string>
#include <vector>

#include "src/fleet/cluster.h"
#include "src/fleet/slo_monitor.h"
#include "src/scenario/traffic_source.h"

namespace taichi::fleet {

struct RolloutConfig {
  // Cumulative node counts per wave; empty selects the canonical
  // canary -> quarter -> full ladder for the cluster size.
  std::vector<int> waves;
  // Settle time after enabling a wave before the gate window opens: the
  // nodes drain whatever workflow backlog they accumulated pre-enable, so
  // the gate judges the new regime rather than old queueing debt.
  sim::Duration settle = sim::Millis(100);
  // Minimum measurement window per wave before its SLO gate may pass or
  // fail. A gate with fewer than slo.min_samples keeps soaking.
  sim::Duration soak = sim::Millis(200);
  SloConfig slo;
};

// A NodeLifecycleListener so chaos-driven death and rebirth flow through the
// same path every other lifecycle observer uses (ChaosEngine::AddListener):
// a node inside the enabled set that reboots comes back as baseline hardware,
// and the rollout re-enables Tai Chi on it at the restart boundary.
class Rollout : public scenario::NodeLifecycleListener {
 public:
  enum class State : uint8_t { kIdle, kSoaking, kDone, kRolledBack };

  struct Event {
    sim::SimTime at = 0;
    std::string what;
  };

  Rollout(Cluster* cluster, RolloutConfig config);
  ~Rollout();
  Rollout(const Rollout&) = delete;
  Rollout& operator=(const Rollout&) = delete;

  // Enables the first wave immediately and begins gating at epoch
  // boundaries. One rollout per object: calling Start twice is a misuse.
  void Start();

  // --- scenario::NodeLifecycleListener (register via ChaosEngine) ---
  // A crash inside the enabled set is only noted; the node's Tai Chi died
  // with its Testbed.
  void OnNodeCrash(Cluster& cluster, size_t node) override;
  // A restarted node that belongs to the enabled set rejoins its wave:
  // the fresh baseline Testbed gets Tai Chi re-enabled immediately.
  void OnNodeRestart(Cluster& cluster, size_t node) override;

  State state() const { return state_; }
  size_t wave() const { return wave_; }
  size_t enabled_nodes() const { return enabled_; }
  const std::vector<int>& waves() const { return config_.waves; }
  const std::vector<Event>& history() const { return history_; }
  // The SLO gate decisions, one per wave soak that reached a verdict.
  const std::vector<SloMonitor::Report>& gate_reports() const { return gate_reports_; }

 private:
  void OnEpoch(sim::SimTime now);
  void BeginWave(size_t wave, sim::SimTime now);
  void Rollback(sim::SimTime now);
  void Note(sim::SimTime at, std::string what);
  std::vector<int> EnabledIds() const;

  Cluster* cluster_;
  RolloutConfig config_;
  SloMonitor monitor_;
  State state_ = State::kIdle;
  size_t wave_ = 0;
  size_t enabled_ = 0;  // Nodes [0, enabled_) run Tai Chi.
  sim::SimTime settle_until_ = 0;
  bool measuring_ = false;  // Window reset done; gate pending.
  sim::SimTime gate_at_ = 0;
  uint64_t hook_id_ = 0;
  std::vector<Event> history_;
  std::vector<SloMonitor::Report> gate_reports_;
};

}  // namespace taichi::fleet

#endif  // SRC_FLEET_ROLLOUT_H_
