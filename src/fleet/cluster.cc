#include "src/fleet/cluster.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "src/sim/logging.h"
#include "src/sim/random.h"

namespace taichi::fleet {

Cluster::Cluster(ClusterConfig config) : config_(std::move(config)) {
  if (config_.num_nodes <= 0) {
    TAICHI_ERROR(0, "fleet: cluster with %d nodes is invalid, clamping to 1",
                 config_.num_nodes);
    config_.num_nodes = 1;
  }
  if (config_.epoch <= 0) {
    TAICHI_ERROR(0, "fleet: epoch must be positive, defaulting to 5 ms");
    config_.epoch = sim::Millis(5);
  }
  if (config_.threads < 1) {
    TAICHI_ERROR(0, "fleet: %d threads is invalid, running serial", config_.threads);
    config_.threads = 1;
  }
  // More threads than nodes would only idle; the clamp also keeps the
  // serial/parallel split below an exact num_nodes partition.
  config_.threads = std::min(config_.threads, config_.num_nodes);
  if (config_.threads > 1) {
    pool_ = std::make_unique<sim::ThreadPool>(config_.threads);
  }
  // Per-node seeds come from one sequential stream, so node i gets the same
  // seed regardless of how many nodes follow it — a 4-node cluster is a
  // prefix of the 12-node cluster with the same fleet seed.
  sim::Rng seeder(config_.seed);
  nodes_.reserve(static_cast<size_t>(config_.num_nodes));
  for (int i = 0; i < config_.num_nodes; ++i) {
    auto node = std::make_unique<Node>(config_.trace_capacity);
    char name[16];
    std::snprintf(name, sizeof(name), "node%02d", i);
    node->name = name;

    exp::TestbedConfig cfg = config_.node;
    if (config_.tweak) {
      config_.tweak(i, cfg);
    }
    node->seed = seeder.Next();
    cfg.seed = node->seed;
    node->bed = std::make_unique<exp::Testbed>(std::move(cfg));
    node->obs.trace.set_enabled(config_.enable_trace);
    node->bed->AttachObservability(&node->obs);
    nodes_.push_back(std::move(node));
  }
  // Testbed construction settles each node at the same boot offset; the
  // fleet clock starts there so the first epoch has normal length.
  now_ = nodes_.front()->bed->sim().Now();
}

void Cluster::StepNode(size_t i, sim::SimTime next) {
  // Crashed nodes have no Testbed to step; their slot just idles until a
  // restart. The skip is the same branch on every thread count.
  exp::Testbed* bed = nodes_[i]->bed.get();
  if (bed == nullptr) {
    return;
  }
  sim::Simulation& sim = bed->sim();
  // Idle-node fast path: nothing due this epoch means the event loop would
  // only move the clock — do just that. At hyperscale most nodes are idle
  // most epochs, and skipping the loop (and the shrink check, which such a
  // node cannot need) is where sharded stepping's headroom comes from.
  if (config_.idle_fast_path && sim.IdleUntil(next)) {
    sim.AdvanceIdleTo(next);
    return;
  }
  sim.RunUntil(next);
  // The epoch boundary is each node's natural quiesce point: give back
  // event-pool memory still held from a burst (e.g. a VM-startup storm).
  // Cheap no-op unless pending ≪ capacity; runs on the node's own worker,
  // so the queue is only ever touched by its owner.
  sim.ShrinkEventPool();
}

void Cluster::RunUntil(sim::SimTime deadline) {
  while (now_ < deadline) {
    const sim::SimTime next = now_ + config_.epoch < deadline ? now_ + config_.epoch : deadline;
    // Nodes are independent inside an epoch (each event touches only its own
    // Testbed), so they can step concurrently. ParallelFor is a barrier:
    // every node reaches `next` before any hook observes the fleet, exactly
    // as in the serial loop — same outputs, byte for byte. Nodes are grouped
    // into contiguous shards (several per worker, so one hot node doesn't
    // serialize its whole stripe behind it) claimed off the pool's
    // per-worker cursors.
    if (pool_) {
      // Enough shards that stealing can rebalance around hot nodes, few
      // enough that per-shard overhead stays invisible at 10k nodes.
      constexpr size_t kShardsPerWorker = 8;
      const size_t n = nodes_.size();
      const size_t shards =
          std::min(n, static_cast<size_t>(config_.threads) * kShardsPerWorker);
      pool_->ParallelFor(shards, [this, next, n, shards](size_t s) {
        const size_t begin = s * n / shards;
        const size_t end = (s + 1) * n / shards;
        for (size_t i = begin; i < end; ++i) {
          StepNode(i, next);
        }
      });
    } else {
      for (size_t i = 0; i < nodes_.size(); ++i) {
        StepNode(i, next);
      }
    }
    now_ = next;
    // Hooks may add or remove hooks (a rollout deregisters itself when it
    // finishes), so fire against a snapshot of the current ids.
    std::vector<uint64_t> ids;
    ids.reserve(hooks_.size());
    for (const auto& [id, hook] : hooks_) {
      (void)hook;
      ids.push_back(id);
    }
    for (uint64_t id : ids) {
      auto it = hooks_.find(id);
      if (it != hooks_.end()) {
        it->second(now_);
      }
    }
  }
}

size_t Cluster::alive_count() const {
  size_t n = 0;
  for (const auto& node : nodes_) {
    n += node->bed != nullptr ? 1 : 0;
  }
  return n;
}

void Cluster::CrashNode(size_t i) {
  Node& node = *nodes_[i];
  if (node.bed == nullptr) {
    TAICHI_ERROR(now_, "fleet: CrashNode(%s) but the node is already down",
                 node.name.c_str());
    return;
  }
  // Power loss: the Testbed and everything inside it (events, tasks, vCPUs,
  // in-flight packets, sketches) is gone. The host-side Observability is the
  // flight recorder and stays — but every registered metric pointer aims into
  // the freed Testbed, so the registry drops all registrations.
  node.bed.reset();
  node.obs.metrics.Clear();
}

exp::Testbed* Cluster::RestartNode(size_t i) {
  Node& node = *nodes_[i];
  if (node.bed != nullptr) {
    TAICHI_ERROR(now_, "fleet: RestartNode(%s) but the node is already up",
                 node.name.c_str());
    return node.bed.get();
  }
  ++node.incarnation;
  exp::TestbedConfig cfg = config_.node;
  if (config_.tweak) {
    config_.tweak(static_cast<int>(i), cfg);
  }
  // A reboot is a fresh random universe, deterministically derived from the
  // node's first-boot seed and which life this is.
  cfg.seed = node.seed ^ (0x9e3779b97f4a7c15ULL * node.incarnation);
  node.bed = std::make_unique<exp::Testbed>(std::move(cfg));
  // Boot settles off-camera: catch the fresh sim up to the fleet clock
  // before re-attaching observability, so the merged trace and metric
  // snapshots never see events behind Now(). The node lands exactly on the
  // epoch boundary, same as every live node.
  node.bed->sim().RunUntil(now_);
  node.obs.trace.set_enabled(config_.enable_trace);
  node.bed->AttachObservability(&node.obs);
  return node.bed.get();
}

uint64_t Cluster::AddEpochHook(EpochHook hook) {
  const uint64_t id = next_hook_id_++;
  hooks_.emplace(id, std::move(hook));
  return id;
}

void Cluster::RemoveEpochHook(uint64_t id) { hooks_.erase(id); }

sim::Summary Cluster::MergeSummaryMetric(const std::string& metric) const {
  std::vector<const sim::Summary*> parts;
  parts.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    parts.push_back(node->obs.metrics.FindSummary(metric));
  }
  return obs::MergeSummaries(parts);
}

obs::FlowMonitor Cluster::MergedFlowMonitor(FlowTap tap) const {
  obs::FlowMonitor fleet(config_.node.flow_monitor);
  for (const auto& node : nodes_) {
    if (node->bed == nullptr) {
      continue;  // A crashed node's sketches died with its DRAM.
    }
    const exp::Testbed& bed = *node->bed;
    switch (tap) {
      case FlowTap::kRx:
        fleet.Merge(bed.flow_rx());
        break;
      case FlowTap::kDp:
        fleet.Merge(bed.flow_dp());
        break;
      case FlowTap::kTx:
        fleet.Merge(bed.flow_tx());
        break;
    }
  }
  return fleet;
}

std::string Cluster::MergedTraceJson() const {
  std::vector<obs::TraceProcess> processes;
  processes.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    processes.push_back({node->name, &node->obs.trace});
  }
  return obs::MergedChromeJson(processes);
}

bool Cluster::WriteMergedTrace(const std::string& path) const {
  std::vector<obs::TraceProcess> processes;
  processes.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    processes.push_back({node->name, &node->obs.trace});
  }
  return obs::WriteMergedChromeJson(processes, path);
}

}  // namespace taichi::fleet
