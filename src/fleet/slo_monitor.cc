#include "src/fleet/slo_monitor.h"

#include <algorithm>

#include "src/sim/logging.h"

namespace taichi::fleet {

SloMonitor::SloMonitor(Cluster* cluster, SloConfig config)
    : cluster_(cluster), config_(std::move(config)), cursor_(cluster->size(), 0) {
  if (config_.percentile < 0 || config_.percentile > 100) {
    TAICHI_ERROR(0, "slo: percentile %.1f out of range, using p99", config_.percentile);
    config_.percentile = 99.0;
  }
}

SloMonitor::Report SloMonitor::Evaluate(const std::vector<int>& subset, bool windowed,
                                        std::vector<size_t>* cursors) const {
  Report report;
  report.at = cluster_->Now();
  report.nodes.resize(cluster_->size());

  std::vector<bool> in_subset(cluster_->size(), subset.empty());
  for (int id : subset) {
    if (id >= 0 && static_cast<size_t>(id) < in_subset.size()) {
      in_subset[static_cast<size_t>(id)] = true;
    }
  }

  sim::Summary fleet;
  for (size_t i = 0; i < cluster_->size(); ++i) {
    const sim::Summary* metric = cluster_->observability(i).metrics.FindSummary(config_.metric);
    NodeStat& stat = report.nodes[i];
    if (metric == nullptr) {
      continue;
    }
    const std::vector<double>& samples = metric->samples();
    size_t begin = windowed ? (*cursors)[i] : 0;
    if (begin > samples.size()) {
      // The node's summary was cleared/re-registered; restart the window.
      begin = 0;
    }
    sim::Summary window;
    for (size_t s = begin; s < samples.size(); ++s) {
      window.Add(samples[s]);
      if (in_subset[i]) {
        fleet.Add(samples[s]);
      }
    }
    // Only the evaluated subset consumes its window. A node outside the
    // subset keeps its cursor, so a later Observe() over a different subset
    // still sees every sample that arrived in between instead of silently
    // dropping them.
    if (windowed && in_subset[i]) {
      (*cursors)[i] = samples.size();
    }
    stat.samples = window.count();
    if (!window.empty()) {
      stat.value = window.Percentile(config_.percentile);
      stat.breach = stat.value > config_.threshold;
    }
    if (in_subset[i]) {
      report.total_samples += window.count();
    }
  }

  if (!fleet.empty()) {
    report.fleet_value = fleet.Percentile(config_.percentile);
    report.fleet_breach = report.fleet_value > config_.threshold;
  }
  for (size_t i = 0; i < report.nodes.size(); ++i) {
    NodeStat& stat = report.nodes[i];
    if (report.fleet_value > 0 && stat.samples >= config_.min_samples &&
        stat.value > config_.hotspot_factor * report.fleet_value) {
      stat.hotspot = true;
      report.hotspots.push_back(static_cast<int>(i));
    }
  }
  AttributeHeavyFlows(&report);
  return report;
}

void SloMonitor::AttributeHeavyFlows(Report* report) const {
  if (config_.heavy_hitters == 0 || report->hotspots.empty()) {
    return;
  }
  // Per hotspot node: who is burning that node's DP cycles. Everything here
  // comes out of the constant-space sketches — there is no exact per-flow
  // table anywhere on the packet path.
  for (int id : report->hotspots) {
    if (!cluster_->alive(static_cast<size_t>(id))) {
      continue;  // Crashed mid-window: its DP sketch died with the Testbed.
    }
    const obs::FlowMonitor& mon = cluster_->node(static_cast<size_t>(id)).flow_dp();
    const double total = static_cast<double>(mon.total_bytes());
    for (const auto& e : mon.TopK(config_.heavy_hitters)) {
      report->nodes[static_cast<size_t>(id)].heavy.push_back(
          {e.key, e.bytes, e.packets,
           total > 0 ? static_cast<double>(e.bytes) / total : 0.0});
    }
  }
  // Fleet scope: the same question over the merged sketch, catching flows
  // whose load is spread across nodes.
  const obs::FlowMonitor fleet = cluster_->MergedFlowMonitor(Cluster::FlowTap::kDp);
  const double fleet_total = static_cast<double>(fleet.total_bytes());
  for (const auto& e : fleet.TopK(config_.heavy_hitters)) {
    report->fleet_heavy.push_back(
        {e.key, e.bytes, e.packets,
         fleet_total > 0 ? static_cast<double>(e.bytes) / fleet_total : 0.0});
  }
}

SloMonitor::Report SloMonitor::Observe(const std::vector<int>& subset) {
  last_ = Evaluate(subset, /*windowed=*/true, &cursor_);
  return last_;
}

SloMonitor::Report SloMonitor::Cumulative() const {
  return Evaluate({}, /*windowed=*/false, nullptr);
}

int SloMonitor::CoolestTarget(const Placer& placer, const WorkloadSpec& unit,
                              int exclude) const {
  int coolest = -1;
  double best = 0.0;
  for (size_t i = 0; i < placer.size() && i < last_.nodes.size(); ++i) {
    if (static_cast<int>(i) == exclude || last_.nodes[i].hotspot || last_.nodes[i].breach) {
      continue;  // Never aim a move at a node that is itself suffering.
    }
    if (i < cluster_->size() && !cluster_->alive(i)) {
      continue;  // Dead nodes take no traffic.
    }
    if (!placer.Fits(i, unit)) {
      continue;  // The placer would refuse the admission anyway.
    }
    const double score = placer.LoadScore(i);
    // Strict < keeps the tie-break at the lowest node id: deterministic
    // across reruns and thread counts.
    if (coolest < 0 || score < best) {
      coolest = static_cast<int>(i);
      best = score;
    }
  }
  return coolest;
}

std::vector<SloMonitor::Move> SloMonitor::SuggestRebalance(const Placer& placer,
                                                           const WorkloadSpec& unit) const {
  std::vector<Move> moves;
  if (placer.size() != cluster_->size()) {
    TAICHI_ERROR(cluster_->Now(), "slo: placer tracks %zu nodes but the cluster has %zu",
                 placer.size(), cluster_->size());
    return moves;
  }
  // last_.hotspots is ascending, so the move list order is stable too.
  for (int hot : last_.hotspots) {
    const int coolest = CoolestTarget(placer, unit, hot);
    if (coolest >= 0) {
      moves.push_back({hot, coolest});
    }
  }
  return moves;
}

}  // namespace taichi::fleet
