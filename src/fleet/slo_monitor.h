// Fleet SLO monitoring: aggregates one summary metric (default: the VM
// startup latency that is the paper's headline CP SLO) across every node
// into exact fleet percentiles, flags breaches and hotspot nodes, and
// suggests rebalancing moves against a Placer's accounting.
//
// Observation is windowed: each Observe() evaluates only the samples that
// arrived since the previous Observe(), which is what a rollout gate needs
// (old pre-wave samples must not dilute a fresh regression).
#ifndef SRC_FLEET_SLO_MONITOR_H_
#define SRC_FLEET_SLO_MONITOR_H_

#include <string>
#include <vector>

#include "src/fleet/cluster.h"
#include "src/fleet/placer.h"

namespace taichi::fleet {

struct SloConfig {
  // Name of a summary registered in each node's MetricsRegistry.
  std::string metric = "cp.vm_startup.latency_ms";
  double percentile = 99.0;
  // SLO ceiling in the metric's unit. Default: the 160 ms VM-startup SLO.
  double threshold = 160.0;
  // A node is a hotspot when its windowed percentile exceeds the fleet
  // value by this factor (with at least min_samples in the window).
  double hotspot_factor = 1.5;
  size_t min_samples = 5;
  // Flows named per hotspot node (and fleet-wide) in the report, read from
  // the DP-tap flow sketches — never an exact per-flow map. 0 disables.
  size_t heavy_hitters = 4;
};

class SloMonitor {
 public:
  // A heavy flow behind a hotspot: sketch-estimated bytes at the DP tap and
  // the flow's share of that scope's total DP bytes.
  struct HeavyFlow {
    obs::FlowKey key;
    uint64_t bytes = 0;
    uint64_t packets = 0;
    double share = 0.0;
  };

  struct NodeStat {
    size_t samples = 0;   // Window sample count.
    double value = 0.0;   // Windowed percentile (0 when samples == 0).
    bool breach = false;
    bool hotspot = false;
    // Hotspot nodes only: the top flows on this node's DP tap — who is
    // actually burning the DP cycles behind the breach.
    std::vector<HeavyFlow> heavy;
  };

  struct Report {
    sim::SimTime at = 0;
    size_t total_samples = 0;  // Across the evaluated node set.
    double fleet_value = 0.0;  // Percentile over the merged window.
    bool fleet_breach = false;
    std::vector<NodeStat> nodes;  // One entry per cluster node, always.
    std::vector<int> hotspots;    // Node ids, ascending.
    // When any hotspot fired: top flows over the *merged* fleet DP sketch
    // (Cluster::MergedFlowMonitor), for cross-node offenders.
    std::vector<HeavyFlow> fleet_heavy;
  };

  struct Move {
    int from = -1;
    int to = -1;
  };

  SloMonitor(Cluster* cluster, SloConfig config);

  // Evaluates the window since the previous Observe() (first call: since the
  // start of the run) and advances the window — but only for the evaluated
  // nodes: a node outside `subset` keeps its cursor so no sample is ever
  // skipped by an Observe() that wasn't looking at it. The fleet aggregate
  // covers `subset` node ids when given, all nodes otherwise; per-node stats
  // are always computed for every node (over its current, unconsumed window).
  Report Observe(const std::vector<int>& subset = {});
  // Same evaluation over all samples ever recorded; does not move the window.
  Report Cumulative() const;

  const Report& last() const { return last_; }
  const SloConfig& config() const { return config_; }

  // For each hotspot in the last report, proposes moving load to the
  // coolest non-hotspot node by the placer's accounting. Advice only — the
  // caller applies it via Placer::Release/PlaceOn and its load drivers.
  // Targets are restricted to nodes that are alive, not themselves
  // breaching, and where `unit` (the workload quantum a move would carry)
  // passes Placer::Fits — no move is ever suggested that the placer would
  // refuse. Ordering is deterministic: hotspots ascending, coolest target
  // with the lowest node id on ties.
  std::vector<Move> SuggestRebalance(const Placer& placer,
                                     const WorkloadSpec& unit = WorkloadSpec{}) const;

  // The coolest viable migration target for load leaving `exclude`, by the
  // last report: alive, not a hotspot, not breaching, and with room for
  // `unit` per the placer. -1 when nothing qualifies.
  int CoolestTarget(const Placer& placer, const WorkloadSpec& unit, int exclude) const;

 private:
  Report Evaluate(const std::vector<int>& subset, bool windowed,
                  std::vector<size_t>* cursors) const;
  void AttributeHeavyFlows(Report* report) const;

  Cluster* cluster_;
  SloConfig config_;
  std::vector<size_t> cursor_;  // Per-node samples already consumed.
  Report last_;
};

}  // namespace taichi::fleet

#endif  // SRC_FLEET_SLO_MONITOR_H_
