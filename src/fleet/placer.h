// Workload placement: admits tenant workloads (VM bundles with DP traffic
// and CP management demand) against per-node capacity.
//
// The placer is pure accounting — it decides *where* a workload lands and
// whether it fits; driving the node's actual load (traffic sources, VM
// startup storms) is the caller's job (see fleet::LoadGen). Keeping it
// side-effect-free makes every policy decision unit-testable and replayable.
#ifndef SRC_FLEET_PLACER_H_
#define SRC_FLEET_PLACER_H_

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace taichi::fleet {

enum class PlacePolicy : uint8_t {
  kRoundRobin,   // Rotate through nodes, skipping ones that don't fit.
  kLeastLoaded,  // Spread: lowest load score wins (ties: lowest node id).
  kBinPack,      // Consolidate: highest load score that still fits wins.
};

const char* ToString(PlacePolicy policy);

// One tenant workload unit: a bundle of VMs plus the data-plane utilization
// and control-plane management load they bring to the node hosting them.
struct WorkloadSpec {
  std::string tenant;
  int vms = 1;
  double dp_util = 0.0;  // Sum of DP CPU-fractions (1.0 = one full DP CPU).
  double cp_load = 0.0;  // CP management work units (monitor-equivalents).
};

// Per-node admission limits. The DP ceiling defaults to the donatable
// headroom of 8 DP CPUs at the Fig. 3 p99 provisioning point (~32.5% per
// CPU): beyond it a node can no longer absorb its tenants' bursts.
struct NodeCapacity {
  int vm_slots = 32;
  double dp_util = 8 * 0.325;
  double cp_load = 48.0;
};

struct Placement {
  bool admitted = false;
  int node = -1;
  std::string reason;  // Why admission failed (empty when admitted).
};

class Placer {
 public:
  Placer(size_t num_nodes, NodeCapacity capacity, PlacePolicy policy);

  // Picks a node for `spec` per the policy and commits the accounting, or
  // refuses when no node can hold it.
  Placement Place(const WorkloadSpec& spec);
  // Commits `spec` onto a specific node (targeted admission, e.g. a
  // rebalancing move landing on a chosen target). Refuses when it does not
  // fit — never overcommits.
  Placement PlaceOn(int node, const WorkloadSpec& spec);
  // Reverses a prior placement (tenant teardown, rebalancing). Releasing a
  // spec that was never admitted on `node` (double-release, wrong node) is a
  // caller bug: it corrupts capacity accounting, so it errors and asserts.
  void Release(int node, const WorkloadSpec& spec);

  // Would `spec` fit on `node` right now? False for out-of-range nodes.
  bool Fits(size_t node, const WorkloadSpec& spec) const;

  size_t size() const { return loads_.size(); }
  PlacePolicy policy() const { return policy_; }
  const NodeCapacity& capacity() const { return capacity_; }

  int vms(size_t node) const { return loads_[node].vms; }
  double dp_util(size_t node) const { return loads_[node].dp_util; }
  double cp_load(size_t node) const { return loads_[node].cp_load; }
  // Fractional load: the most constrained dimension (0 = empty, 1 = full).
  double LoadScore(size_t node) const;

  uint64_t admitted() const { return admitted_; }
  uint64_t refused() const { return refused_; }

 private:
  void Commit(size_t node, const WorkloadSpec& spec);
  // Re-seats `node` in the score index after its load changed; `old_score`
  // is its LoadScore before the change (the exact double that was inserted).
  void ReindexNode(size_t node, double old_score);

  struct Load {
    int vms = 0;
    double dp_util = 0.0;
    double cp_load = 0.0;
  };

  // Score-ordered node index for the scanning policies: least-loaded probes
  // ascending, bin-pack descending, ties in both break toward the lowest
  // node id (the id is part of the key, so the order is total and matches
  // the old linear scan's explicit tie-break exactly). Place() walks it in
  // preference order and takes the first node that fits — O(log n) per
  // load change and O(1 + skipped) per placement instead of the O(n) full
  // scan, which autopilot migration churn turned quadratic at 10k nodes.
  struct ScoreOrder {
    bool descending = false;
    bool operator()(const std::pair<double, uint32_t>& a,
                    const std::pair<double, uint32_t>& b) const {
      if (a.first != b.first) {
        return descending ? a.first > b.first : a.first < b.first;
      }
      return a.second < b.second;
    }
  };

  NodeCapacity capacity_;
  PlacePolicy policy_;
  std::vector<Load> loads_;
  std::set<std::pair<double, uint32_t>, ScoreOrder> by_score_;  // Empty for RR.
  size_t cursor_ = 0;  // Round-robin position.
  uint64_t admitted_ = 0;
  uint64_t refused_ = 0;
};

}  // namespace taichi::fleet

#endif  // SRC_FLEET_PLACER_H_
