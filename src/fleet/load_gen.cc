#include "src/fleet/load_gen.h"

#include <algorithm>
#include <cassert>

#include "src/sim/logging.h"

namespace taichi::fleet {

LoadGen::LoadGen(Cluster* cluster, LoadGenConfig config)
    : cluster_(cluster), config_(config) {
  // One sequential seed stream, like the cluster's: node i's draws do not
  // depend on how many nodes exist.
  sim::Rng seeder(config_.seed);
  arrival_rngs_.reserve(cluster_->size());
  for (size_t i = 0; i < cluster_->size(); ++i) {
    arrival_rngs_.emplace_back(seeder.Next());
  }
  vm_scale_.assign(cluster_->size(), 1.0);
  for (size_t i = 0; i < config_.node_vm_scale.size() && i < vm_scale_.size(); ++i) {
    vm_scale_[i] = std::max(0.0, config_.node_vm_scale[i]);
  }
}

void LoadGen::Start() {
  if (running_) {
    TAICHI_ERROR(cluster_->Now(), "load_gen: Start called twice — this would stack a "
                 "second source set on every DP CPU");
    assert(!running_ && "LoadGen::Start called twice");
    return;
  }
  running_ = true;
  node_utils_.assign(cluster_->size(), {});
  node_mixes_.assign(config_.aggregate.enabled ? cluster_->size() : 0, NodeMix{});
  arrival_events_.assign(cluster_->size(), sim::kInvalidEventId);
  for (size_t i = 0; i < cluster_->size(); ++i) {
    StartNode(i);
  }
}

void LoadGen::StartNode(size_t node) {
  exp::Testbed& bed = cluster_->node(node);
  std::vector<double>& utils = node_utils_[node];
  utils.clear();
  if (config_.aggregate.enabled) {
    // Flow-aggregate path: the node's user population folds into one
    // aggregate rate + one flow count, modulated per node (one draw from the
    // same RNG the arrival stream uses — the node stays a function of its
    // one stream). The per-node salt (node + 1: never the 0 sentinel) keys a
    // fleet-distinct flow population.
    const LoadGenConfig::AggregateUsers& agg = config_.aggregate;
    const double mod = std::clamp(arrival_rngs_[node].LogNormal(1.0, config_.util_sigma),
                                  agg.mod_min, agg.mod_max);
    const double node_pps = agg.users_per_node * agg.pps_per_user * mod;
    const size_t cpus = bed.active_dp_cpus().size();
    const double full_rate = bed.RateForUtilization(1.0, config_.pkt_bytes);
    const double util = std::clamp(node_pps / (static_cast<double>(cpus) * full_rate),
                                   config_.util_min, config_.util_max);
    const double node_flows = agg.users_per_node * agg.flows_per_user;
    const uint32_t per_src_flows = static_cast<uint32_t>(
        std::max(1.0, node_flows / static_cast<double>(cpus)));
    utils.assign(1, util);  // One shared level: Testbed broadcasts per CPU.
    node_mixes_[node] = NodeMix{node_pps,
                                static_cast<uint32_t>(per_src_flows * cpus), util};
    bed.SetBackgroundFlows(per_src_flows, config_.flow_skew, node + 1);
  } else {
    // Per-CPU averages come from the arrival stream's sibling draws so the
    // whole node is a function of its one RNG.
    for (size_t c = 0; c < bed.active_dp_cpus().size(); ++c) {
      utils.push_back(std::clamp(
          arrival_rngs_[node].LogNormal(config_.util_median, config_.util_sigma),
          config_.util_min, config_.util_max));
    }
    bed.SetBackgroundFlows(config_.flow_count, config_.flow_skew);
  }
  bed.StartBackgroundBurstyLoadPerCpu(utils, config_.pkt_bytes);
  if (config_.spawn_monitors) {
    bed.SpawnBackgroundCp();
  }
  if (config_.vm_arrivals && NodeVmRate(node) > 0) {
    ScheduleArrival(node);
  }
}

void LoadGen::ScheduleArrival(size_t node) {
  exp::Testbed& bed = cluster_->node(node);
  const sim::Duration gap = arrival_rngs_[node].ExpDuration(
      static_cast<sim::Duration>(1e9 / NodeVmRate(node)));
  // One repeating event per node for the whole run; each arrival re-keys it
  // with the next exponential gap instead of building a fresh closure. The
  // RNG draw stays *after* StartVm, matching the draw order (and therefore
  // the byte-exact trajectory) of the schedule-per-arrival pattern this
  // replaces.
  arrival_events_[node] = bed.sim().ScheduleRepeating(gap, gap, [this, node] {
    exp::Testbed& b = cluster_->node(node);
    // cp_task_cpus() is read at arrival time: workflows started after a
    // rollout wave land on the vCPUs, earlier ones stay where they began.
    b.device_manager().StartVm(b.cp_task_cpus());
    // The effective rate (global rate x per-node share) is re-read per
    // arrival so set_vm_rate and MigrateVmShare take effect on the next gap.
    // A rate dropped to <= 0 parks the event; ReArmArrivals restarts it.
    if (NodeVmRate(node) <= 0) {
      b.sim().Cancel(arrival_events_[node]);
      arrival_events_[node] = sim::kInvalidEventId;
      return;
    }
    const sim::Duration next = arrival_rngs_[node].ExpDuration(
        static_cast<sim::Duration>(1e9 / NodeVmRate(node)));
    b.sim().Reschedule(arrival_events_[node], next);
  });
}

void LoadGen::ReArmArrivals(size_t node) {
  if (!running_ || !config_.vm_arrivals || node >= arrival_events_.size()) {
    return;
  }
  if (!cluster_->alive(node) || arrival_events_[node] != sim::kInvalidEventId) {
    return;  // Dead nodes re-arm via OnNodeRestart; live streams keep going.
  }
  if (NodeVmRate(node) > 0) {
    ScheduleArrival(node);
  }
}

void LoadGen::set_vm_rate(double per_sec) {
  const bool raised = per_sec > config_.vm_arrival_rate_per_sec;
  config_.vm_arrival_rate_per_sec = per_sec;
  if (raised) {
    for (size_t i = 0; i < cluster_->size(); ++i) {
      ReArmArrivals(i);
    }
  }
}

double LoadGen::VmShare(size_t node) const {
  return node < vm_scale_.size() ? vm_scale_[node] : 1.0;
}

bool LoadGen::MigrateVmShare(size_t from, size_t to, double units) {
  if (from >= vm_scale_.size() || to >= vm_scale_.size() || from == to || units <= 0) {
    return false;
  }
  if (vm_scale_[from] + 1e-9 < units) {
    return false;  // Cannot move more share than the node holds.
  }
  vm_scale_[from] -= units;
  vm_scale_[to] += units;
  if (running_) {
    // The donor parks itself at its next arrival if its share hit zero; the
    // recipient may have been parked at zero share and needs a fresh stream.
    ReArmArrivals(to);
  }
  return true;
}

void LoadGen::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  for (size_t i = 0; i < cluster_->size(); ++i) {
    if (!cluster_->alive(i)) {
      continue;  // Its sources and arrival event died with the Testbed.
    }
    cluster_->node(i).StopBackgroundLoad();
    if (i < arrival_events_.size() && arrival_events_[i] != sim::kInvalidEventId) {
      cluster_->node(i).sim().Cancel(arrival_events_[i]);
      arrival_events_[i] = sim::kInvalidEventId;
    }
  }
}

void LoadGen::Start(Cluster& cluster) {
  assert(&cluster == cluster_ && "LoadGen is bound to one cluster");
  (void)cluster;
  Start();
}

void LoadGen::Stop(Cluster& cluster) {
  assert(&cluster == cluster_ && "LoadGen is bound to one cluster");
  (void)cluster;
  Stop();
}

void LoadGen::OnNodeCrash(Cluster&, size_t node) {
  if (node < arrival_events_.size()) {
    arrival_events_[node] = sim::kInvalidEventId;
  }
}

void LoadGen::OnNodeRestart(Cluster&, size_t node) {
  if (!running_) {
    return;
  }
  StartNode(node);
}

}  // namespace taichi::fleet
