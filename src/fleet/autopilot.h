// Closed-loop fleet autopilot: the controller that finally *acts* on what
// SloMonitor reports.
//
// An epoch-hook state machine that observes the fleet SLO in fixed windows
// and drives four remediation mechanisms, in escalation order per breaching
// node:
//
//   1. Enable Tai Chi — a breaching baseline node gets the framework turned
//      on (donated DP idle absorbs the CP backlog). Under calm, the reverse
//      (optional `disable_after_calm`) reclaims the vCPU overhead again, so
//      steady state runs Tai Chi only where the load demands it — the
//      "fewer CPUs than static placement" end state.
//   2. Live migration — a breaching node that already runs Tai Chi sheds one
//      unit of VM-arrival share to the coolest viable target
//      (SloMonitor::CoolestTarget honors Placer::Fits, aliveness and the
//      target's own SLO), executed as Placer Release/PlaceOn plus
//      TrafficSource::MigrateVmShare.
//   3. §8 inverse repartitioning — per-node DP-utilization hysteresis
//      triggers Testbed::SetDpBoost when the data plane spikes (donations
//      pause, DP runs undisturbed) and reverts when it subsides.
//   4. Graceful degradation — when the fleet breaches and no move fits
//      anywhere (fleet-wide overload / DDoS), shed background DP load via
//      ScaleBackgroundLoad in bounded steps down to a floor, restoring one
//      step at a time once the fleet has been healthy for `recover_windows`.
//
// Stability machinery: a breach must persist `hysteresis_windows` before the
// controller touches the node; every action opens a global settle period and
// a per-node cooldown; an action that does not improve the node's windowed
// percentile doubles that node's cooldown exponentially (capped) so the
// controller backs off instead of flapping. Chaos-killed nodes are evicted
// from the placer's accounting and re-admitted (and re-enabled, if they ran
// Tai Chi) on restart via the shared NodeLifecycleListener path.
//
// Determinism contract: every decision is a pure function of the SLO
// reports, the placer accounting and the fixed config — stable orderings,
// no wall clock, all mutation at epoch boundaries on the fleet driver
// thread. The decision log (and therefore the verdict JSON embedding it) is
// byte-identical across `--threads` values.
#ifndef SRC_FLEET_AUTOPILOT_H_
#define SRC_FLEET_AUTOPILOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fleet/cluster.h"
#include "src/fleet/placer.h"
#include "src/fleet/slo_monitor.h"
#include "src/scenario/traffic_source.h"

namespace taichi::fleet {

struct AutopilotConfig {
  // The SLO being defended; the autopilot runs its own SloMonitor (window
  // cursors are per-monitor, so it coexists with a scenario runner's).
  SloConfig slo;
  sim::Duration observe_every = sim::Millis(100);

  // --- Stability ---
  int hysteresis_windows = 2;   // Breach persistence before acting on a node.
  int settle_windows = 1;       // Global quiet windows after any action.
  int cooldown_windows = 2;     // Per-node base cooldown between actions.
  int max_backoff_exp = 4;      // Cooldown scales by 2^fail_streak up to this.
  // An action "improved" its node when the next judged window is not
  // breaching, or its percentile dropped by at least this fraction.
  double min_improvement = 0.05;
  int max_actions_per_window = 2;

  // --- Live migration ---
  // The migration quantum: one unit of TrafficSource VM share, carried in
  // the placer's books as `unit_spec`.
  double migrate_unit = 1.0;
  WorkloadSpec unit_spec{"vm-share", 2, 0.0, 8.0};
  NodeCapacity capacity;

  // --- §8 inverse repartitioning (DP boost) ---
  // Windowed DP utilization (busy fraction per active DP CPU) thresholds;
  // on/off gap is the hysteresis band.
  double dp_boost_on = 0.45;
  double dp_boost_off = 0.25;

  // --- Graceful degradation ---
  double shed_step = 0.25;   // Background-load fraction removed per shed.
  double shed_floor = 0.25;  // Never scale background below this factor.
  int recover_windows = 2;   // Healthy persistence before restoring a step.

  // Calm windows (no breach, enough samples) before a Tai Chi-enabled node
  // is disabled again to reclaim its vCPU overhead. 0 = never disable.
  int disable_after_calm = 0;
};

class Autopilot : public scenario::NodeLifecycleListener {
 public:
  // What the controller did and why — the verdict JSON embeds this log.
  enum class Act : uint8_t {
    kEnable,    // EnableTaiChi on a breaching baseline node.
    kDisable,   // DisableTaiChi on a long-calm node (reclaim vCPUs).
    kMigrate,   // One unit of VM share moved node -> target.
    kDpBoost,   // SetDpBoost(true): DP spike, donations paused.
    kDpRevert,  // SetDpBoost(false): spike subsided.
    kShed,      // Background load shed one step fleet-wide.
    kRestore,   // One shed step restored.
    kEvict,     // Crash: node's units released from the placer.
    kReadmit,   // Restart: units re-admitted (Tai Chi re-enabled if it ran).
    kBackoff,   // A judged action did not improve; cooldown doubled.
  };

  struct Decision {
    sim::SimTime at = 0;
    Act act = Act::kEnable;
    int node = -1;    // -1 for fleet-scope actions (shed/restore).
    int target = -1;  // Migration target; -1 otherwise.
    double value = 0.0;  // Context: node percentile, DP util or shed factor.
  };

  // `source` provides VmShare/MigrateVmShare (may be nullptr: migration is
  // then skipped and the escalation goes straight to shedding).
  Autopilot(Cluster* cluster, scenario::TrafficSource* source, AutopilotConfig config);
  ~Autopilot();
  Autopilot(const Autopilot&) = delete;
  Autopilot& operator=(const Autopilot&) = delete;

  // Seeds the placer from the source's current VM shares and registers the
  // epoch hook. Call after the source has Start()ed (shares exist then);
  // Arm/Disarm pair once per run. To observe chaos, also register the
  // autopilot with ChaosEngine::AddListener — after the traffic source, so
  // restarts re-provision load before Tai Chi is re-enabled.
  void Arm();
  void Disarm();
  bool armed() const { return hook_id_ != 0; }

  // --- scenario::NodeLifecycleListener ---
  void OnNodeCrash(Cluster& cluster, size_t node) override;
  void OnNodeRestart(Cluster& cluster, size_t node) override;

  // --- Inspection / reporting ---
  const std::vector<Decision>& decisions() const { return decisions_; }
  // The decision log as a JSON array (deterministic bytes; see header note).
  std::string DecisionLogJson() const;
  // Registers autopilot.* counters/gauges (fleet-scope registry).
  void RegisterMetrics(obs::MetricsRegistry& registry);

  size_t windows() const { return window_; }
  double shed_factor() const { return shed_factor_; }
  int healthy_streak() const { return healthy_streak_; }
  // Nodes currently running Tai Chi / their total vCPU count.
  int enabled_nodes() const;
  int enabled_vcpus() const;
  const Placer& placer() const { return placer_; }
  const SloMonitor& monitor() const { return monitor_; }

  uint64_t enables() const { return enables_; }
  uint64_t disables() const { return disables_; }
  uint64_t migrations() const { return migrations_; }
  uint64_t boosts() const { return boosts_; }
  uint64_t reverts() const { return reverts_; }
  uint64_t sheds() const { return sheds_; }
  uint64_t restores() const { return restores_; }
  uint64_t evictions() const { return evictions_; }
  uint64_t readmits() const { return readmits_; }
  uint64_t backoffs() const { return backoffs_; }

 private:
  // Pending outcome judgment for the last action on a node.
  struct Judge {
    bool active = false;
    size_t at_window = 0;  // Window index when the verdict is read.
    double value_then = 0.0;
  };

  void OnEpoch(sim::SimTime now);
  void OnWindow(sim::SimTime now);
  void JudgePending(const SloMonitor::Report& report, sim::SimTime now);
  void UpdateDpBoost(const std::vector<double>& util, sim::SimTime now);
  int Remediate(const SloMonitor::Report& report, sim::SimTime now);
  void Recover(const SloMonitor::Report& report, sim::SimTime now);
  void ApplyShed();
  void NoteAction(size_t node, const SloMonitor::Report& report);
  void Log(sim::SimTime at, Act act, int node, int target, double value);
  double DpUtilization(size_t node, sim::Duration elapsed);

  Cluster* cluster_;
  scenario::TrafficSource* source_;
  AutopilotConfig config_;
  SloMonitor monitor_;
  Placer placer_;

  uint64_t hook_id_ = 0;
  sim::SimTime next_observe_ = 0;
  sim::SimTime last_window_at_ = 0;
  size_t window_ = 0;            // Windows observed so far.
  size_t settle_until_ = 0;      // Window index remedies resume at.
  double shed_factor_ = 1.0;
  int healthy_streak_ = 0;

  // Per-node controller state.
  std::vector<int> breach_streak_;
  std::vector<int> calm_streak_;
  std::vector<int> fail_streak_;        // Consecutive non-improving actions.
  std::vector<size_t> cooldown_until_;  // Window index per node.
  std::vector<int> units_;              // Whole migrate_units in the placer's books.
  std::vector<int> boost_hi_streak_;
  std::vector<int> boost_lo_streak_;
  std::vector<bool> was_enabled_;       // Tai Chi state at crash time.
  std::vector<sim::Duration> prev_dp_work_;
  std::vector<Judge> judge_;

  std::vector<Decision> decisions_;
  uint64_t enables_ = 0;
  uint64_t disables_ = 0;
  uint64_t migrations_ = 0;
  uint64_t boosts_ = 0;
  uint64_t reverts_ = 0;
  uint64_t sheds_ = 0;
  uint64_t restores_ = 0;
  uint64_t evictions_ = 0;
  uint64_t readmits_ = 0;
  uint64_t backoffs_ = 0;
};

const char* ToString(Autopilot::Act act);

}  // namespace taichi::fleet

#endif  // SRC_FLEET_AUTOPILOT_H_
