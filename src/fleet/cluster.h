// The fleet layer's root object: N independent SmartNIC nodes advanced in
// lockstep inside one deterministic simulation run.
//
// Each node is a full exp::Testbed (its own Simulation, Machine, Kernel,
// services and CP fleet) with its own obs::Observability. The cluster
// advances every node's clock through fixed-size epochs, so cross-node
// control actions (placement, rollout waves, SLO checks) happen only at
// epoch boundaries and the whole run stays reproducible: same seed, same
// node count, same byte-identical outputs.
//
// Within an epoch the nodes are embarrassingly parallel — everything a
// node's events touch (clock, Rng, kernel, metrics, tracer) hangs off its
// own Testbed — so `threads > 1` steps them on a thread pool and barriers
// before firing epoch hooks. The determinism contract is hard: parallel
// runs are byte-identical to serial runs (metrics JSON, merged Chrome
// trace, rollout wave log), because thread count changes only which wall
// clock stepped a node, never what the node computed. Hooks always run on
// the caller's thread, after the barrier, in registration order.
#ifndef SRC_FLEET_CLUSTER_H_
#define SRC_FLEET_CLUSTER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/exp/testbed.h"
#include "src/obs/observability.h"
#include "src/sim/thread_pool.h"

namespace taichi::fleet {

struct ClusterConfig {
  int num_nodes = 12;
  uint64_t seed = 1;
  // Template for every node; `tweak` (node index, config) customizes
  // per-node settings before the per-node seed is applied.
  exp::TestbedConfig node;
  std::function<void(int, exp::TestbedConfig&)> tweak;
  // Lockstep granularity: cross-node actions are quantized to this.
  sim::Duration epoch = sim::Millis(5);
  // Worker threads stepping nodes within an epoch (1 = serial). Output is
  // byte-identical at any value; pick min(num_nodes, hardware cores).
  int threads = 1;
  // Tracing is opt-in per the usual rule (one predictable branch when off).
  bool enable_trace = false;
  size_t trace_capacity = obs::TraceRecorder::kDefaultCapacity;
  // Idle-node fast path: a node with no event due inside the epoch gets its
  // clock advanced without entering the event loop — at 10k mostly-idle
  // nodes that is most of the per-epoch work. Output-invariant (the fast
  // path does exactly what the event loop would: move the clock); the knob
  // exists so the regression test can compare both paths byte for byte.
  bool idle_fast_path = true;
};

class Cluster {
 public:
  using EpochHook = std::function<void(sim::SimTime)>;

  explicit Cluster(ClusterConfig config);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  size_t size() const { return nodes_.size(); }
  exp::Testbed& node(size_t i) { return *nodes_[i]->bed; }
  const exp::Testbed& node(size_t i) const { return *nodes_[i]->bed; }
  // False between CrashNode(i) and RestartNode(i); node(i) is then invalid.
  bool alive(size_t i) const { return nodes_[i]->bed != nullptr; }
  size_t alive_count() const;
  // Boot count: 1 after construction, +1 per RestartNode. Sources use it to
  // recognize stale per-node handles (an event id from a previous life).
  uint32_t incarnation(size_t i) const { return nodes_[i]->incarnation; }
  obs::Observability& observability(size_t i) { return nodes_[i]->obs; }
  const obs::Observability& observability(size_t i) const { return nodes_[i]->obs; }
  const std::string& node_name(size_t i) const { return nodes_[i]->name; }
  const ClusterConfig& config() const { return config_; }

  // The fleet clock: the epoch boundary every node has reached. Individual
  // node clocks are exactly here between Run* calls.
  sim::SimTime Now() const { return now_; }

  // Advances all nodes in lockstep epochs until the fleet clock reaches
  // `deadline` (rounded up to a whole epoch). Epoch hooks fire at each
  // boundary after every node has arrived, in registration order.
  void RunUntil(sim::SimTime deadline);
  void RunFor(sim::Duration delta) { RunUntil(now_ + delta); }

  // Hooks run at every epoch boundary; returns an id for RemoveEpochHook.
  uint64_t AddEpochHook(EpochHook hook);
  void RemoveEpochHook(uint64_t id);

  // --- Node lifecycle (chaos layer) ---
  //
  // CrashNode destroys node i's Testbed outright — every queued event, task,
  // in-flight packet and vCPU dies with it, exactly like power loss. The
  // host-side Observability survives as the flight recorder (trace events up
  // to the crash, SLO samples), but the metrics registry is cleared: its
  // pointers aim into the freed Testbed. The node's in-Testbed flow sketches
  // are lost with it, as a real node's DRAM would be.
  //
  // RestartNode boots a fresh Testbed in the slot with a seed derived from
  // the node's original seed and its incarnation count (a reboot is a new
  // random universe, but a deterministic one), then advances the fresh sim
  // to the fleet clock BEFORE re-attaching observability — boot settles
  // off-camera and the merged trace never sees events behind `Now()`. The
  // caller re-provisions workload (background load, CP fleet, sources) after
  // this returns; the scenario chaos engine does exactly that.
  //
  // Both are only legal between Run* calls (epoch boundaries), like every
  // other cross-node action.
  void CrashNode(size_t i);
  exp::Testbed* RestartNode(size_t i);

  // --- Fleet aggregation ---

  // Merges the summary registered under `metric` on every node into one
  // fleet summary (exact percentiles over the union of samples). Nodes
  // without the metric contribute nothing.
  sim::Summary MergeSummaryMetric(const std::string& metric) const;

  // Rolls every node's flow monitor for one tap (rx/dp/tx) into a single
  // fleet-scope monitor: count-min cells add, HLL registers max, heavy-hitter
  // tables union — so fleet distinct-flow counts and top-K come from the
  // sketches alone, never an exact per-flow map. Nodes share sketch configs
  // by construction; a tweak that broke that is refused per-sketch with a
  // TAICHI_ERROR.
  enum class FlowTap : uint8_t { kRx, kDp, kTx };
  obs::FlowMonitor MergedFlowMonitor(FlowTap tap) const;

  // One Chrome trace with a process track group per node (pid = node index,
  // named after the node). All nodes share the simulated clock, so events
  // line up across processes in the viewer.
  std::string MergedTraceJson() const;
  bool WriteMergedTrace(const std::string& path) const;

 private:
  // Steps node i to the epoch boundary `next` (or fast-forwards it when
  // idle). Runs on whichever worker owns the node's shard this epoch.
  void StepNode(size_t i, sim::SimTime next);

  struct Node {
    std::string name;
    obs::Observability obs;
    std::unique_ptr<exp::Testbed> bed;
    uint64_t seed = 0;         // First-boot seed from the cluster stream.
    uint32_t incarnation = 1;  // Boot count; bumped by RestartNode.

    explicit Node(size_t trace_capacity) : obs(trace_capacity) {}
  };

  ClusterConfig config_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<sim::ThreadPool> pool_;  // Only when config_.threads > 1.
  sim::SimTime now_ = 0;
  std::map<uint64_t, EpochHook> hooks_;  // Ordered: deterministic firing.
  uint64_t next_hook_id_ = 1;
};

}  // namespace taichi::fleet

#endif  // SRC_FLEET_CLUSTER_H_
