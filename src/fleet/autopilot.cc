#include "src/fleet/autopilot.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/exp/testbed.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/sim/logging.h"

namespace taichi::fleet {

const char* ToString(Autopilot::Act act) {
  switch (act) {
    case Autopilot::Act::kEnable:
      return "enable";
    case Autopilot::Act::kDisable:
      return "disable";
    case Autopilot::Act::kMigrate:
      return "migrate";
    case Autopilot::Act::kDpBoost:
      return "dp_boost";
    case Autopilot::Act::kDpRevert:
      return "dp_revert";
    case Autopilot::Act::kShed:
      return "shed";
    case Autopilot::Act::kRestore:
      return "restore";
    case Autopilot::Act::kEvict:
      return "evict";
    case Autopilot::Act::kReadmit:
      return "readmit";
    case Autopilot::Act::kBackoff:
      return "backoff";
  }
  return "?";
}

Autopilot::Autopilot(Cluster* cluster, scenario::TrafficSource* source, AutopilotConfig config)
    : cluster_(cluster),
      source_(source),
      config_(std::move(config)),
      monitor_(cluster, config_.slo),
      placer_(cluster->size(), config_.capacity, PlacePolicy::kLeastLoaded) {}

Autopilot::~Autopilot() { Disarm(); }

void Autopilot::Arm() {
  if (hook_id_ != 0) {
    TAICHI_ERROR(cluster_->Now(), "autopilot: Arm on an already-armed autopilot");
    return;
  }
  const size_t n = cluster_->size();
  breach_streak_.assign(n, 0);
  calm_streak_.assign(n, 0);
  fail_streak_.assign(n, 0);
  cooldown_until_.assign(n, 0);
  units_.assign(n, 0);
  boost_hi_streak_.assign(n, 0);
  boost_lo_streak_.assign(n, 0);
  was_enabled_.assign(n, false);
  prev_dp_work_.assign(n, 0);
  judge_.assign(n, Judge{});
  window_ = 0;
  settle_until_ = 0;
  healthy_streak_ = 0;

  // Seed the placer's books from the source's current VM shares: one
  // unit_spec per migrate_unit of share, so Fits() sees what each node is
  // actually carrying before any move is considered.
  placer_ = Placer(n, config_.capacity, PlacePolicy::kLeastLoaded);
  for (size_t i = 0; i < n; ++i) {
    const double share = source_ != nullptr ? source_->VmShare(i) : 1.0;
    const int want = config_.migrate_unit > 0
                         ? static_cast<int>(std::llround(share / config_.migrate_unit))
                         : 0;
    for (int u = 0; u < want; ++u) {
      if (!placer_.PlaceOn(static_cast<int>(i), config_.unit_spec).admitted) {
        TAICHI_ERROR(cluster_->Now(),
                     "autopilot: node %zu share %g exceeds capacity at unit %d", i, share, u);
        break;
      }
      ++units_[i];
    }
    if (cluster_->alive(i)) {
      prev_dp_work_[i] = cluster_->node(i).TotalDpWork();
    }
  }

  last_window_at_ = cluster_->Now();
  next_observe_ = last_window_at_ + config_.observe_every;
  monitor_.Observe();  // Reset cursors: window 1 sees only post-Arm samples.
  hook_id_ = cluster_->AddEpochHook([this](sim::SimTime now) { OnEpoch(now); });
}

void Autopilot::Disarm() {
  if (hook_id_ != 0) {
    cluster_->RemoveEpochHook(hook_id_);
    hook_id_ = 0;
  }
}

void Autopilot::OnEpoch(sim::SimTime now) {
  if (now < next_observe_) {
    return;
  }
  OnWindow(now);
  next_observe_ = now + config_.observe_every;
}

void Autopilot::OnWindow(sim::SimTime now) {
  ++window_;
  const SloMonitor::Report report = monitor_.Observe();
  const sim::Duration elapsed = now - last_window_at_;
  last_window_at_ = now;

  const size_t n = cluster_->size();
  std::vector<double> util(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    if (cluster_->alive(i)) {
      util[i] = DpUtilization(i, elapsed);
    }
  }

  for (size_t i = 0; i < n && i < report.nodes.size(); ++i) {
    if (!cluster_->alive(i)) {
      breach_streak_[i] = 0;
      calm_streak_[i] = 0;
      continue;
    }
    const SloMonitor::NodeStat& s = report.nodes[i];
    if (s.samples >= config_.slo.min_samples && s.breach) {
      ++breach_streak_[i];
      calm_streak_[i] = 0;
    } else {
      breach_streak_[i] = 0;
      if (s.samples >= config_.slo.min_samples) {
        ++calm_streak_[i];
      }
    }
  }
  if (!report.fleet_breach && report.hotspots.empty()) {
    ++healthy_streak_;
  } else {
    healthy_streak_ = 0;
  }

  JudgePending(report, now);
  UpdateDpBoost(util, now);
  const int actions = Remediate(report, now);
  if (actions == 0) {
    Recover(report, now);
  }
}

// Reads the verdict on each node's last action: if the node is still
// breaching and its percentile did not drop by min_improvement, the action
// failed — double that node's cooldown (capped) so a remedy that is not
// working is retried less and less often instead of hammered.
void Autopilot::JudgePending(const SloMonitor::Report& report, sim::SimTime now) {
  for (size_t i = 0; i < judge_.size() && i < report.nodes.size(); ++i) {
    Judge& j = judge_[i];
    if (!j.active || window_ < j.at_window) {
      continue;
    }
    j.active = false;
    if (!cluster_->alive(i)) {
      continue;  // Crash already reset this node's controller state.
    }
    const SloMonitor::NodeStat& s = report.nodes[i];
    const bool still_breaching = s.samples >= config_.slo.min_samples && s.breach;
    const bool improved =
        !still_breaching || s.value <= j.value_then * (1.0 - config_.min_improvement);
    if (improved) {
      fail_streak_[i] = 0;
      continue;
    }
    fail_streak_[i] = std::min(fail_streak_[i] + 1, config_.max_backoff_exp);
    cooldown_until_[i] =
        window_ + (static_cast<size_t>(config_.cooldown_windows) << fail_streak_[i]);
    ++backoffs_;
    Log(now, Act::kBackoff, static_cast<int>(i), -1, s.value);
  }
}

// §8 inverse repartitioning: per-node DP-utilization hysteresis around the
// on/off band. Boost pauses donation (Testbed::SetDpBoost) while the data
// plane spikes; the revert threshold sits well below the trigger so the
// controller cannot chatter across a noisy boundary.
void Autopilot::UpdateDpBoost(const std::vector<double>& util, sim::SimTime now) {
  for (size_t i = 0; i < util.size(); ++i) {
    if (!cluster_->alive(i)) {
      boost_hi_streak_[i] = 0;
      boost_lo_streak_[i] = 0;
      continue;
    }
    exp::Testbed& bed = cluster_->node(i);
    if (!bed.taichi_enabled()) {
      boost_hi_streak_[i] = 0;
      boost_lo_streak_[i] = 0;
      continue;
    }
    if (!bed.dp_boost()) {
      boost_lo_streak_[i] = 0;
      boost_hi_streak_[i] = util[i] >= config_.dp_boost_on ? boost_hi_streak_[i] + 1 : 0;
      if (boost_hi_streak_[i] >= config_.hysteresis_windows) {
        bed.SetDpBoost(true);
        boost_hi_streak_[i] = 0;
        ++boosts_;
        Log(now, Act::kDpBoost, static_cast<int>(i), -1, util[i]);
      }
    } else {
      boost_hi_streak_[i] = 0;
      boost_lo_streak_[i] = util[i] <= config_.dp_boost_off ? boost_lo_streak_[i] + 1 : 0;
      if (boost_lo_streak_[i] >= config_.hysteresis_windows) {
        bed.SetDpBoost(false);
        boost_lo_streak_[i] = 0;
        ++reverts_;
        Log(now, Act::kDpRevert, static_cast<int>(i), -1, util[i]);
      }
    }
  }
}

// The escalation ladder, hottest node first: enable Tai Chi -> migrate one
// unit of VM share to the coolest viable target -> shed background load
// fleet-wide (once per window, only while the whole fleet breaches).
int Autopilot::Remediate(const SloMonitor::Report& report, sim::SimTime now) {
  if (window_ < settle_until_) {
    return 0;
  }
  struct Cand {
    int node;
    double value;
  };
  std::vector<Cand> cands;
  for (size_t i = 0; i < report.nodes.size() && i < breach_streak_.size(); ++i) {
    if (!cluster_->alive(i) || breach_streak_[i] < config_.hysteresis_windows ||
        window_ < cooldown_until_[i]) {
      continue;
    }
    cands.push_back({static_cast<int>(i), report.nodes[i].value});
  }
  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    if (a.value != b.value) {
      return a.value > b.value;
    }
    return a.node < b.node;
  });

  // Is the fleet lopsided (one suffering node against a mostly-healthy
  // fleet — migration has real targets) or uniformly drowning (any "cool"
  // target is one stale window from hot — only shedding helps)?
  int breaching_nodes = 0;
  int healthy_nodes = 0;
  for (size_t i = 0; i < report.nodes.size(); ++i) {
    if (!cluster_->alive(i) || report.nodes[i].samples < config_.slo.min_samples) {
      continue;
    }
    (report.nodes[i].breach ? breaching_nodes : healthy_nodes) += 1;
  }
  const bool lopsided = healthy_nodes > breaching_nodes;

  int actions = 0;
  bool shed_this_window = false;
  for (const Cand& c : cands) {
    if (actions >= config_.max_actions_per_window) {
      break;
    }
    const size_t i = static_cast<size_t>(c.node);
    exp::Testbed& bed = cluster_->node(i);
    if (bed.taichi_draining()) {
      continue;  // Mid-drain: no lever is safe to pull until it settles.
    }
    if (!bed.taichi_enabled()) {
      bed.EnableTaiChi();
      ++enables_;
      Log(now, Act::kEnable, c.node, -1, c.value);
      NoteAction(i, report);
      ++actions;
      continue;
    }
    if (lopsided && source_ != nullptr && units_[i] > 0) {
      const int target = monitor_.CoolestTarget(placer_, config_.unit_spec, c.node);
      if (target >= 0 && source_->MigrateVmShare(i, static_cast<size_t>(target),
                                                 config_.migrate_unit)) {
        placer_.Release(c.node, config_.unit_spec);
        placer_.PlaceOn(target, config_.unit_spec);
        --units_[i];
        ++units_[static_cast<size_t>(target)];
        ++migrations_;
        Log(now, Act::kMigrate, c.node, target, c.value);
        NoteAction(i, report);
        ++actions;
        continue;
      }
    }
    // Nothing node-local left and nowhere to move the load: if the whole
    // fleet is breaching, degrade gracefully — one bounded shed step.
    if (report.fleet_breach && !shed_this_window &&
        shed_factor_ - config_.shed_step >= config_.shed_floor - 1e-9) {
      shed_factor_ -= config_.shed_step;
      ApplyShed();
      shed_this_window = true;
      ++sheds_;
      Log(now, Act::kShed, -1, -1, shed_factor_);
      NoteAction(i, report);
      ++actions;
    }
  }
  if (actions > 0) {
    settle_until_ = window_ + static_cast<size_t>(config_.settle_windows);
  }
  return actions;
}

// The unwind path, one step per qualifying window: restore shed background
// load first; only once nothing is shed, optionally disable Tai Chi on
// long-calm nodes to reclaim their vCPU overhead.
void Autopilot::Recover(const SloMonitor::Report& report, sim::SimTime now) {
  if (healthy_streak_ < config_.recover_windows) {
    return;
  }
  if (shed_factor_ < 1.0 - 1e-9) {
    shed_factor_ = std::min(1.0, shed_factor_ + config_.shed_step);
    ApplyShed();
    ++restores_;
    Log(now, Act::kRestore, -1, -1, shed_factor_);
    healthy_streak_ = 0;
    return;
  }
  if (config_.disable_after_calm <= 0) {
    return;
  }
  for (size_t i = 0; i < cluster_->size(); ++i) {
    if (!cluster_->alive(i) || calm_streak_[i] < config_.disable_after_calm) {
      continue;
    }
    exp::Testbed& bed = cluster_->node(i);
    if (!bed.taichi_enabled() || bed.taichi_draining()) {
      continue;
    }
    const double value = i < report.nodes.size() ? report.nodes[i].value : 0.0;
    bed.DisableTaiChi();
    ++disables_;
    Log(now, Act::kDisable, static_cast<int>(i), -1, value);
    calm_streak_[i] = 0;
    healthy_streak_ = 0;
    return;  // One disable per window: watch the SLO before the next.
  }
}

void Autopilot::ApplyShed() {
  for (size_t i = 0; i < cluster_->size(); ++i) {
    if (cluster_->alive(i)) {
      cluster_->node(i).ScaleBackgroundLoad(shed_factor_);
    }
  }
}

void Autopilot::NoteAction(size_t node, const SloMonitor::Report& report) {
  breach_streak_[node] = 0;  // Re-accumulate hysteresis before the next act.
  cooldown_until_[node] =
      window_ + (static_cast<size_t>(config_.cooldown_windows) << fail_streak_[node]);
  Judge& j = judge_[node];
  j.active = true;
  j.at_window = window_ + static_cast<size_t>(config_.settle_windows) + 1;
  j.value_then = node < report.nodes.size() ? report.nodes[node].value : 0.0;
}

void Autopilot::Log(sim::SimTime at, Act act, int node, int target, double value) {
  decisions_.push_back({at, act, node, target, value});
}

double Autopilot::DpUtilization(size_t node, sim::Duration elapsed) {
  exp::Testbed& bed = cluster_->node(node);
  const sim::Duration work = bed.TotalDpWork();
  const sim::Duration delta = work - prev_dp_work_[node];
  prev_dp_work_[node] = work;
  const size_t cpus = bed.active_dp_cpus().size();
  if (cpus == 0 || elapsed <= 0 || delta <= 0) {
    return 0.0;
  }
  return sim::ToSeconds(delta) / (static_cast<double>(cpus) * sim::ToSeconds(elapsed));
}

void Autopilot::OnNodeCrash(Cluster& cluster, size_t node) {
  if (hook_id_ == 0 || node >= units_.size()) {
    return;
  }
  // Listeners run before the Testbed is torn down, so the Tai Chi state is
  // still readable. A node crashed mid-drain wanted Tai Chi off: it stays
  // baseline on restart.
  was_enabled_[node] = cluster.node(node).taichi_enabled();
  for (int u = 0; u < units_[node]; ++u) {
    placer_.Release(static_cast<int>(node), config_.unit_spec);
  }
  breach_streak_[node] = 0;
  calm_streak_[node] = 0;
  fail_streak_[node] = 0;
  boost_hi_streak_[node] = 0;
  boost_lo_streak_[node] = 0;
  judge_[node].active = false;
  prev_dp_work_[node] = 0;
  ++evictions_;
  Log(cluster.Now(), Act::kEvict, static_cast<int>(node), -1,
      static_cast<double>(units_[node]));
}

void Autopilot::OnNodeRestart(Cluster& cluster, size_t node) {
  if (hook_id_ == 0 || node >= units_.size() || !cluster.alive(node)) {
    return;
  }
  // Registration order puts the traffic source before the autopilot, so the
  // node's load is already re-provisioned by the time this runs.
  int readmitted = 0;
  for (int u = 0; u < units_[node]; ++u) {
    if (!placer_.PlaceOn(static_cast<int>(node), config_.unit_spec).admitted) {
      break;  // Cannot happen on a freshly-released node; stay consistent.
    }
    ++readmitted;
  }
  units_[node] = readmitted;
  prev_dp_work_[node] = 0;  // Fresh Testbed: DP-work counter restarts at zero.
  ++readmits_;
  Log(cluster.Now(), Act::kReadmit, static_cast<int>(node), -1,
      static_cast<double>(readmitted));
  if (was_enabled_[node]) {
    cluster.node(node).EnableTaiChi();
    ++enables_;
    Log(cluster.Now(), Act::kEnable, static_cast<int>(node), -1, 0.0);
  }
  if (shed_factor_ < 1.0 - 1e-9) {
    cluster.node(node).ScaleBackgroundLoad(shed_factor_);
  }
}

int Autopilot::enabled_nodes() const {
  int count = 0;
  for (size_t i = 0; i < cluster_->size(); ++i) {
    if (cluster_->alive(i) && cluster_->node(i).taichi_enabled()) {
      ++count;
    }
  }
  return count;
}

int Autopilot::enabled_vcpus() const {
  int total = 0;
  for (size_t i = 0; i < cluster_->size(); ++i) {
    if (!cluster_->alive(i) || !cluster_->node(i).taichi_enabled()) {
      continue;
    }
    const exp::TestbedConfig& cfg = cluster_->node(i).config();
    total += cfg.taichi.num_vcpus == 0 ? cfg.dp_cpu_count : cfg.taichi.num_vcpus;
  }
  return total;
}

std::string Autopilot::DecisionLogJson() const {
  obs::JsonWriter w;
  w.BeginArray();
  for (const Decision& d : decisions_) {
    w.BeginObject()
        .Field("at_ms", sim::ToSeconds(d.at) * 1e3)
        .Field("action", ToString(d.act))
        .Field("node", d.node)
        .Field("target", d.target)
        .Field("value", d.value)
        .EndObject();
  }
  w.EndArray();
  return w.str();
}

void Autopilot::RegisterMetrics(obs::MetricsRegistry& registry) {
  registry.AddCounterFn("autopilot.windows", [this] { return static_cast<uint64_t>(window_); });
  registry.AddCounterFn("autopilot.decisions",
                        [this] { return static_cast<uint64_t>(decisions_.size()); });
  registry.AddCounterFn("autopilot.enables", [this] { return enables_; });
  registry.AddCounterFn("autopilot.disables", [this] { return disables_; });
  registry.AddCounterFn("autopilot.migrations", [this] { return migrations_; });
  registry.AddCounterFn("autopilot.dp_boosts", [this] { return boosts_; });
  registry.AddCounterFn("autopilot.dp_reverts", [this] { return reverts_; });
  registry.AddCounterFn("autopilot.sheds", [this] { return sheds_; });
  registry.AddCounterFn("autopilot.restores", [this] { return restores_; });
  registry.AddCounterFn("autopilot.evictions", [this] { return evictions_; });
  registry.AddCounterFn("autopilot.readmits", [this] { return readmits_; });
  registry.AddCounterFn("autopilot.backoffs", [this] { return backoffs_; });
  registry.AddGauge("autopilot.shed_factor", [this] { return shed_factor_; });
  registry.AddGauge("autopilot.enabled_nodes",
                    [this] { return static_cast<double>(enabled_nodes()); });
  registry.AddGauge("autopilot.enabled_vcpus",
                    [this] { return static_cast<double>(enabled_vcpus()); });
}

}  // namespace taichi::fleet
