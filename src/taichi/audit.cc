#include "src/taichi/audit.h"

namespace taichi::core {

namespace {

bool IsPrivileged(os::Action::Type type) {
  switch (type) {
    case os::Action::Type::kKernelSection:
    case os::Action::Type::kLockAcquire:
    case os::Action::Type::kLockRelease:
      return true;
    default:
      return false;
  }
}

}  // namespace

AuditDomain::AuditDomain(os::Kernel* kernel, TaiChi* taichi)
    : kernel_(kernel), taichi_(taichi) {
  kernel_->set_action_tracer([this](const os::Task& task, const os::Action& action) {
    if (!IsPrivileged(action.type) || !original_.contains(task.id())) {
      return;
    }
    ++privileged_ops_;
    records_.push_back(
        {task.id(), action.type, kernel_->sim().Now(), action.duration});
  });
}

AuditDomain::~AuditDomain() { kernel_->set_action_tracer(nullptr); }

void AuditDomain::StartAudit(os::Task* task) {
  if (original_.contains(task->id())) {
    return;
  }
  original_[task->id()] = task->affinity();
  // Audited tasks run only in vCPU contexts where every privileged
  // operation sits behind a VM-exit boundary.
  kernel_->SetTaskAffinity(task, taichi_->vcpu_set());
}

void AuditDomain::StopAudit(os::Task* task) {
  auto it = original_.find(task->id());
  if (it == original_.end()) {
    return;
  }
  kernel_->SetTaskAffinity(task, it->second);
  original_.erase(it);
}

}  // namespace taichi::core
