// The vCPU scheduler (§4.1): softirq-based context switching between pCPUs
// and vCPUs, a round-robin runnable vCPU queue, adaptive time slices, and
// lock-context-safe rescheduling of preempted vCPUs.
#ifndef SRC_TAICHI_VCPU_SCHEDULER_H_
#define SRC_TAICHI_VCPU_SCHEDULER_H_

#include <deque>
#include <unordered_map>
#include <vector>

#include "src/hw/hw_probe.h"
#include "src/os/kernel.h"
#include "src/sim/stats.h"
#include "src/taichi/config.h"
#include "src/taichi/sw_probe.h"
#include "src/virt/guest_exit_mux.h"
#include "src/virt/vcpu_pool.h"

namespace taichi::core {

class IpiOrchestrator;

class VcpuScheduler : public virt::GuestController {
 public:
  VcpuScheduler(os::Kernel* kernel, virt::VcpuPool* pool, virt::GuestExitMux* mux,
                SwWorkloadProbe* sw_probe, hw::HwWorkloadProbe* hw_probe,
                const TaiChiConfig& config);
  // Uninstalls the switch softirq and the idle handler and cancels armed
  // slice timers. Destroy only after the vCPUs have quiesced (no backed or
  // runnable vCPU) — Testbed::DisableTaiChi drains before tearing down.
  ~VcpuScheduler() override;

  void set_orchestrator(IpiOrchestrator* orchestrator) { orchestrator_ = orchestrator; }

  // --- Events from the probes and orchestrator ---

  // The software probe found idle cycles on a DP pCPU: raise the switch
  // softirq there (DP-to-CP scheduling, Fig. 7b steps 1-5).
  void OnDpIdle(os::CpuId dp_pcpu);

  // An IPI targeted a vCPU that is not currently backed: mark it runnable
  // and place it if a DP CPU already offered idle cycles.
  void OnVcpuKicked(os::CpuId vcpu);

  // A physical CPU went idle; idle dedicated CP pCPUs host runnable vCPUs.
  void OnCpuIdle(os::CpuId pcpu);

  // --- virt::GuestController ---
  void OnGuestExit(os::CpuId pcpu, os::CpuId vcpu, const os::GuestExitInfo& info) override;
  void OnGuestHalt(os::CpuId vcpu) override;

  // --- Introspection ---
  enum class VcpuState : uint8_t { kSleeping, kRunnable, kRunning };
  VcpuState vcpu_state(os::CpuId vcpu) const { return vcpus_.at(vcpu).state; }
  sim::Duration current_slice(os::CpuId pcpu) const;
  uint64_t switches() const { return switches_.value(); }
  uint64_t probe_preemptions() const { return probe_preemptions_.value(); }
  uint64_t slice_expirations() const { return slice_expirations_.value(); }
  uint64_t halts() const { return halts_.value(); }
  uint64_t lock_rescues() const { return lock_rescues_.value(); }
  const sim::Summary& guest_episode_us() const { return guest_episode_us_; }

  void set_tracer(obs::TraceRecorder* tracer) { tracer_ = tracer; }

  void RegisterMetrics(obs::MetricsRegistry& registry, const std::string& prefix = "sched") const {
    registry.AddCounter(prefix + ".switches", &switches_);
    registry.AddCounter(prefix + ".probe_preemptions", &probe_preemptions_);
    registry.AddCounter(prefix + ".slice_expirations", &slice_expirations_);
    registry.AddCounter(prefix + ".halts", &halts_);
    registry.AddCounter(prefix + ".lock_rescues", &lock_rescues_);
    registry.AddSummary(prefix + ".guest_episode_us", &guest_episode_us_);
  }

 private:
  struct VcpuRecord {
    VcpuState state = VcpuState::kSleeping;
  };
  struct PcpuRecord {
    sim::Duration slice = 0;
    sim::EventId slice_timer = sim::kInvalidEventId;
    bool offering = false;  // Notified idle but no runnable vCPU was available.
    sim::SimTime guest_since = 0;
  };

  bool IsDpCpu(os::CpuId cpu) const { return config_.dp_cpus.Test(cpu); }
  bool IsCpCpu(os::CpuId cpu) const { return config_.cp_cpus.Test(cpu); }

  // The softirq handler body: picks a runnable vCPU and VM-enters it.
  void DoSwitch(os::CpuId pcpu);
  // Places `vcpu` on `pcpu` and arms the preemption timer.
  void Enter(os::CpuId pcpu, os::CpuId vcpu, sim::Duration slice);
  void ArmSliceTimer(os::CpuId pcpu, sim::Duration slice);
  void CancelSliceTimer(os::CpuId pcpu);
  os::CpuId PickRunnableVcpu();
  void MarkRunnable(os::CpuId vcpu);
  // Safe CP-to-DP scheduling in lock context (§4.1): continue a preempted,
  // lock-holding vCPU elsewhere so waiters cannot deadlock.
  void RescueLockedVcpu(os::CpuId vcpu, os::CpuId exclude_pcpu);

  os::Kernel* kernel_;
  virt::VcpuPool* pool_;
  SwWorkloadProbe* sw_probe_;
  hw::HwWorkloadProbe* hw_probe_;
  IpiOrchestrator* orchestrator_ = nullptr;
  obs::TraceRecorder* tracer_ = nullptr;
  TaiChiConfig config_;

  std::unordered_map<os::CpuId, VcpuRecord> vcpus_;
  std::unordered_map<os::CpuId, PcpuRecord> pcpus_;
  std::deque<os::CpuId> runnable_;  // Round-robin queue of runnable vCPUs.
  size_t rescue_rr_ = 0;            // Round-robin cursor over CP pCPUs.

  sim::Counter switches_;
  sim::Counter probe_preemptions_;
  sim::Counter slice_expirations_;
  sim::Counter halts_;
  sim::Counter lock_rescues_;
  sim::Summary guest_episode_us_;
};

}  // namespace taichi::core

#endif  // SRC_TAICHI_VCPU_SCHEDULER_H_
