// The Tai Chi framework facade: wires the vCPU pool, the unified IPI
// orchestrator, the software/hardware workload probes and the vCPU
// scheduler onto an existing SmartNIC OS + machine, then brings the vCPUs
// online as native CPUs.
//
// Typical use:
//
//   core::TaiChiConfig cfg;
//   cfg.dp_cpus = os::CpuSet::Range(0, 8);
//   cfg.cp_cpus = os::CpuSet::Range(8, 12);
//   core::TaiChi taichi(&kernel, cfg);
//   sim.RunFor(sim::Millis(1));               // vCPU bring-up.
//   // CP tasks: affine to taichi.cp_task_cpus() — vCPUs + CP pCPUs.
//   // DP services: register with taichi.sw_probe() and call
//   // NotifyIdleDpCpuCycles() from their poll loops (Fig. 9).
#ifndef SRC_TAICHI_TAICHI_H_
#define SRC_TAICHI_TAICHI_H_

#include <memory>

#include "src/obs/observability.h"
#include "src/os/kernel.h"
#include "src/taichi/config.h"
#include "src/taichi/ipi_orchestrator.h"
#include "src/taichi/sw_probe.h"
#include "src/taichi/vcpu_scheduler.h"
#include "src/virt/guest_exit_mux.h"
#include "src/virt/vcpu_pool.h"

namespace taichi::core {

class TaiChi {
 public:
  // Installs Tai Chi onto `kernel`. The hardware workload probe is wired
  // into the machine's accelerator unless config.hw_probe_enabled is false.
  // Run the simulation briefly after construction to complete vCPU bring-up.
  TaiChi(os::Kernel* kernel, TaiChiConfig config);
  TaiChi(const TaiChi&) = delete;
  TaiChi& operator=(const TaiChi&) = delete;
  ~TaiChi();

  const TaiChiConfig& config() const { return config_; }
  virt::VcpuPool& pool() { return *pool_; }
  SwWorkloadProbe& sw_probe() { return *sw_probe_; }
  VcpuScheduler& scheduler() { return *scheduler_; }
  IpiOrchestrator& orchestrator() { return *orchestrator_; }

  // CPU set the control-plane tasks should be affined to: all vCPUs plus
  // the dedicated CP pCPUs (§5: standard cgroup/affinity configuration).
  os::CpuSet cp_task_cpus() const { return pool_->cpu_set() | config_.cp_cpus; }
  os::CpuSet vcpu_set() const { return pool_->cpu_set(); }

  // Wires the four core components (scheduler, orchestrator, SW probe, exit
  // mux) into `obs`. The kernel/machine side is wired by whoever owns them
  // (exp::Testbed does both), so metrics register exactly once.
  void AttachObservability(obs::Observability* obs);

 private:
  os::Kernel* kernel_;
  TaiChiConfig config_;
  std::unique_ptr<virt::GuestExitMux> mux_;
  std::unique_ptr<virt::VcpuPool> pool_;
  std::unique_ptr<IpiOrchestrator> orchestrator_;
  std::unique_ptr<SwWorkloadProbe> sw_probe_;
  std::unique_ptr<VcpuScheduler> scheduler_;
};

}  // namespace taichi::core

#endif  // SRC_TAICHI_TAICHI_H_
