#include "src/taichi/vcpu_scheduler.h"

#include <algorithm>
#include <cassert>

#include "src/sim/logging.h"
#include "src/taichi/ipi_orchestrator.h"

namespace taichi::core {

VcpuScheduler::VcpuScheduler(os::Kernel* kernel, virt::VcpuPool* pool,
                             virt::GuestExitMux* mux, SwWorkloadProbe* sw_probe,
                             hw::HwWorkloadProbe* hw_probe, const TaiChiConfig& config)
    : kernel_(kernel),
      pool_(pool),
      sw_probe_(sw_probe),
      hw_probe_(hw_probe),
      config_(config) {
  for (const virt::VcpuInfo& v : pool_->vcpus()) {
    vcpus_[v.cpu] = VcpuRecord{};
    mux->Register(v.cpu, this);
  }
  auto init_pcpu = [this](os::CpuId cpu) {
    PcpuRecord rec;
    rec.slice = config_.initial_slice;
    pcpus_[cpu] = rec;
  };
  for (os::CpuId cpu = 0; cpu < kernel_->num_cpus(); ++cpu) {
    if (config_.dp_cpus.Test(cpu) || config_.cp_cpus.Test(cpu)) {
      init_pcpu(cpu);
    }
  }
  kernel_->RegisterSoftirq(kVcpuSwitchSoftirq, [this](os::CpuId cpu) { DoSwitch(cpu); });
  sw_probe_->set_scheduler(this);
  if (config_.host_vcpus_on_idle_cp_cpus) {
    kernel_->set_idle_handler([this](os::CpuId pcpu) { OnCpuIdle(pcpu); });
  }
}

VcpuScheduler::~VcpuScheduler() {
  for (auto& [pcpu, rec] : pcpus_) {
    (void)rec;
    CancelSliceTimer(pcpu);
  }
  kernel_->RegisterSoftirq(kVcpuSwitchSoftirq, nullptr);
  if (config_.host_vcpus_on_idle_cp_cpus) {
    kernel_->set_idle_handler(nullptr);
  }
  sw_probe_->set_scheduler(nullptr);
}

void VcpuScheduler::OnCpuIdle(os::CpuId pcpu) {
  // An idle dedicated CP pCPU can host a runnable vCPU directly; a native
  // wake on this pCPU reclaims it via the IPI-induced VM-exit.
  if (!IsCpCpu(pcpu) || runnable_.empty()) {
    return;
  }
  if (kernel_->guest_of(pcpu) != os::kInvalidCpu || !kernel_->CpuInHostMode(pcpu) ||
      !kernel_->CpuIdle(pcpu)) {
    return;
  }
  os::CpuId vcpu = PickRunnableVcpu();
  if (vcpu == os::kInvalidCpu) {
    return;
  }
  Enter(pcpu, vcpu, config_.max_slice);
}

sim::Duration VcpuScheduler::current_slice(os::CpuId pcpu) const {
  auto it = pcpus_.find(pcpu);
  return it != pcpus_.end() ? it->second.slice : config_.initial_slice;
}

void VcpuScheduler::OnDpIdle(os::CpuId dp_pcpu) {
  auto it = pcpus_.find(dp_pcpu);
  if (it == pcpus_.end()) {
    return;
  }
  if (kernel_->guest_of(dp_pcpu) != os::kInvalidCpu || !kernel_->CpuInHostMode(dp_pcpu)) {
    return;  // Already lent or transitioning.
  }
  if (runnable_.empty()) {
    // Remember the offer: when a vCPU is kicked awake it can use this CPU.
    it->second.offering = true;
    return;
  }
  kernel_->RaiseSoftirq(dp_pcpu, kVcpuSwitchSoftirq);
}

void VcpuScheduler::MarkRunnable(os::CpuId vcpu) {
  VcpuRecord& rec = vcpus_.at(vcpu);
  if (rec.state != VcpuState::kSleeping) {
    return;
  }
  rec.state = VcpuState::kRunnable;
  runnable_.push_back(vcpu);
}

void VcpuScheduler::OnVcpuKicked(os::CpuId vcpu) {
  MarkRunnable(vcpu);
  // An idle dedicated CP pCPU can host the kicked vCPU immediately.
  if (config_.host_vcpus_on_idle_cp_cpus) {
    for (os::CpuId cpu = 0; cpu < kernel_->num_cpus(); ++cpu) {
      if (IsCpCpu(cpu) && kernel_->CpuIdle(cpu) && kernel_->CpuInHostMode(cpu)) {
        OnCpuIdle(cpu);
        if (runnable_.empty()) {
          return;
        }
      }
    }
  }
  // Use an outstanding idle offer, if any.
  for (auto& [pcpu, rec] : pcpus_) {
    if (!rec.offering) {
      continue;
    }
    if (kernel_->guest_of(pcpu) != os::kInvalidCpu || !kernel_->CpuInHostMode(pcpu)) {
      rec.offering = false;
      continue;
    }
    if (IsDpCpu(pcpu) && sw_probe_->HasDpService(pcpu) && !sw_probe_->IsDpIdle(pcpu)) {
      rec.offering = false;  // Stale offer: work arrived meanwhile.
      continue;
    }
    rec.offering = false;
    kernel_->RaiseSoftirq(pcpu, kVcpuSwitchSoftirq);
    return;
  }
}

os::CpuId VcpuScheduler::PickRunnableVcpu() {
  while (!runnable_.empty()) {
    os::CpuId v = runnable_.front();
    runnable_.pop_front();
    VcpuRecord& rec = vcpus_.at(v);
    if (rec.state != VcpuState::kRunnable) {
      continue;  // Raced with another placement.
    }
    if (!kernel_->CpuHasWork(v)) {
      rec.state = VcpuState::kSleeping;  // Spurious kick; nothing to run.
      continue;
    }
    return v;
  }
  return os::kInvalidCpu;
}

void VcpuScheduler::DoSwitch(os::CpuId pcpu) {
  PcpuRecord& rec = pcpus_.at(pcpu);
  rec.offering = false;
  if (kernel_->guest_of(pcpu) != os::kInvalidCpu || !kernel_->CpuInHostMode(pcpu)) {
    return;
  }
  if (IsDpCpu(pcpu) && sw_probe_->HasDpService(pcpu) && !sw_probe_->IsDpIdle(pcpu)) {
    return;  // Work arrived between the notification and the softirq.
  }
  os::CpuId vcpu = PickRunnableVcpu();
  if (vcpu == os::kInvalidCpu) {
    rec.offering = true;
    return;
  }
  Enter(pcpu, vcpu, rec.slice);
}

void VcpuScheduler::Enter(os::CpuId pcpu, os::CpuId vcpu, sim::Duration slice) {
  switches_.Inc();
  if (tracer_ != nullptr) {
    tracer_->Instant(kernel_->sim().Now(), pcpu, obs::TraceCategory::kVirt, "vcpu_place",
                     static_cast<uint64_t>(vcpu), static_cast<uint64_t>(slice));
  }
  VcpuRecord& vr = vcpus_.at(vcpu);
  vr.state = VcpuState::kRunning;
  PcpuRecord& pr = pcpus_.at(pcpu);
  pr.guest_since = kernel_->sim().Now();
  // Publish V-state to the hardware probe before entry so packets arriving
  // during the VM-entry window already trigger preemption IRQs (Fig. 7b,
  // step 5).
  if (static_cast<uint32_t>(pcpu) < kernel_->machine().num_cpus()) {
    hw_probe_->SetState(pcpu, hw::CpuProbeState::kVState);
  }
  kernel_->EnterGuest(pcpu, vcpu);
  ArmSliceTimer(pcpu, slice + kernel_->config().guest.entry_cost);
}

void VcpuScheduler::ArmSliceTimer(os::CpuId pcpu, sim::Duration slice) {
  PcpuRecord& rec = pcpus_.at(pcpu);
  // Guest re-entry re-arms constantly (the idle-poll fast-forward pattern);
  // re-key the standing timer in place instead of paying Cancel + Schedule's
  // slot churn and closure rebuild. The callback is per-pCPU state only, so
  // the one already in the slot is exactly the one a fresh Schedule would
  // build. Order-identical: Reschedule assigns the same fresh seq the old
  // Schedule would have.
  if (rec.slice_timer != sim::kInvalidEventId &&
      kernel_->sim().Reschedule(rec.slice_timer, slice)) {
    return;
  }
  rec.slice_timer = kernel_->sim().Schedule(slice, [this, pcpu] {
    pcpus_.at(pcpu).slice_timer = sim::kInvalidEventId;
    if (kernel_->guest_of(pcpu) != os::kInvalidCpu) {
      kernel_->ExitGuest(pcpu, os::GuestExitReason::kPreemptionTimer);
    }
  });
}

void VcpuScheduler::CancelSliceTimer(os::CpuId pcpu) {
  PcpuRecord& rec = pcpus_.at(pcpu);
  if (rec.slice_timer != sim::kInvalidEventId) {
    kernel_->sim().Cancel(rec.slice_timer);
    rec.slice_timer = sim::kInvalidEventId;
  }
}

void VcpuScheduler::OnGuestExit(os::CpuId pcpu, os::CpuId vcpu,
                                const os::GuestExitInfo& info) {
  // The slice timer is deliberately NOT cancelled here: every path below
  // either re-enters a guest (Enter → ArmSliceTimer re-keys the standing
  // timer in place) or resumes the host via resume_host below (which
  // cancels). Nothing in between observes the timer's pending state.
  PcpuRecord& pr = pcpus_.at(pcpu);
  guest_episode_us_.Add(sim::ToMicros(kernel_->sim().Now() - pr.guest_since));
  if (static_cast<uint32_t>(pcpu) < kernel_->machine().num_cpus()) {
    hw_probe_->SetState(pcpu, hw::CpuProbeState::kPState);
  }
  VcpuRecord& vr = vcpus_.at(vcpu);
  vr.state = VcpuState::kSleeping;  // Reclassified below.

  auto requeue_or_sleep = [&] {
    if (kernel_->CpuHasWork(vcpu)) {
      vr.state = VcpuState::kRunnable;
      runnable_.push_back(vcpu);
    } else {
      vr.state = VcpuState::kSleeping;
    }
  };

  // Giving the pCPU back to the host ends the arm/re-arm cycle, so the
  // standing slice timer must die here.
  auto resume_host = [&] {
    CancelSliceTimer(pcpu);
    kernel_->ResumeHost(pcpu);
  };

  // Dedicated CP pCPUs host vCPUs for lock-context rescues and while idle.
  // Keep a lock-holding vCPU there until it leaves its non-preemptible
  // context; otherwise return to the host (whose idle path re-hosts the
  // next runnable vCPU automatically).
  if (IsCpCpu(pcpu)) {
    if (info.reason == os::GuestExitReason::kIpiSend && orchestrator_ != nullptr) {
      orchestrator_->FlushPendingFrom(vcpu);
    }
    if (config_.safe_lock_rescheduling && kernel_->CpuInNonPreemptibleContext(vcpu) &&
        kernel_->CpuInHostMode(pcpu) && info.reason != os::GuestExitReason::kHalt) {
      Enter(pcpu, vcpu, config_.rescue_slice);
      return;
    }
    requeue_or_sleep();
    resume_host();
    return;
  }

  switch (info.reason) {
    case os::GuestExitReason::kPreemptionTimer: {
      slice_expirations_.Inc();
      // Sustained DP idleness: grow the slice and lower the yield threshold.
      if (config_.adaptive_slice) {
        pr.slice = std::min(pr.slice * 2, config_.max_slice);
      }
      sw_probe_->OnSustainedIdle(pcpu);
      requeue_or_sleep();
      // Assume idleness persists: rotate to the next runnable vCPU.
      os::CpuId next = os::kInvalidCpu;
      if (!IsDpCpu(pcpu) || !sw_probe_->HasDpService(pcpu) || sw_probe_->IsDpIdle(pcpu)) {
        next = PickRunnableVcpu();
      }
      if (next != os::kInvalidCpu) {
        Enter(pcpu, next, pr.slice);
      } else {
        resume_host();
      }
      return;
    }
    case os::GuestExitReason::kHalt: {
      halts_.Inc();
      requeue_or_sleep();
      os::CpuId next = os::kInvalidCpu;
      if (!IsDpCpu(pcpu) || !sw_probe_->HasDpService(pcpu) || sw_probe_->IsDpIdle(pcpu)) {
        next = PickRunnableVcpu();
      }
      if (next != os::kInvalidCpu) {
        Enter(pcpu, next, pr.slice);
      } else {
        resume_host();
      }
      return;
    }
    case os::GuestExitReason::kExternalInterrupt: {
      if (info.vector == hw::IrqVector::kDpWorkload) {
        probe_preemptions_.Inc();
        if (config_.adaptive_slice) {
          pr.slice = config_.initial_slice;
        }
        // Only a *quick* preemption means the yield was a false positive; a
        // long episode cut short by new traffic was a productive donation
        // and counts as evidence of sustained idleness for the threshold.
        sim::Duration episode = kernel_->sim().Now() - pr.guest_since;
        if (episode < config_.false_positive_window) {
          sw_probe_->OnFalsePositive(pcpu);
        } else if (episode >= config_.initial_slice) {
          sw_probe_->OnSustainedIdle(pcpu);
        }
      }
      bool rescued = false;
      if (config_.safe_lock_rescheduling && kernel_->CpuInNonPreemptibleContext(vcpu)) {
        RescueLockedVcpu(vcpu, pcpu);
        rescued = true;
      }
      if (!rescued) {
        requeue_or_sleep();
      }
      resume_host();
      return;
    }
    case os::GuestExitReason::kIpiSend: {
      if (orchestrator_ != nullptr) {
        orchestrator_->FlushPendingFrom(vcpu);
      }
      // Continue the same vCPU if it still has work and DP is still idle.
      if (kernel_->CpuHasWork(vcpu) &&
          (!sw_probe_->HasDpService(pcpu) || sw_probe_->IsDpIdle(pcpu))) {
        Enter(pcpu, vcpu, pr.slice);
      } else {
        requeue_or_sleep();
        resume_host();
      }
      return;
    }
    case os::GuestExitReason::kForced: {
      requeue_or_sleep();
      resume_host();
      return;
    }
  }
}

void VcpuScheduler::OnGuestHalt(os::CpuId vcpu) {
  os::CpuId backer = kernel_->backer_of(vcpu);
  if (backer == os::kInvalidCpu) {
    return;
  }
  kernel_->ExitGuest(backer, os::GuestExitReason::kHalt);
}

void VcpuScheduler::RescueLockedVcpu(os::CpuId vcpu, os::CpuId exclude_pcpu) {
  VcpuRecord& vr = vcpus_.at(vcpu);
  // Another placement may have picked it up during a retry window.
  if (vr.state == VcpuState::kRunning || !kernel_->CpuInNonPreemptibleContext(vcpu)) {
    if (vr.state != VcpuState::kRunning) {
      MarkRunnable(vcpu);
    }
    return;
  }
  lock_rescues_.Inc();
  // First choice: an idle DP pCPU (probability of none free is ~P^N, §4.1).
  for (os::CpuId cpu = 0; cpu < kernel_->num_cpus(); ++cpu) {
    if (!IsDpCpu(cpu) || cpu == exclude_pcpu) {
      continue;
    }
    if (kernel_->guest_of(cpu) != os::kInvalidCpu || !kernel_->CpuInHostMode(cpu)) {
      continue;
    }
    if (!sw_probe_->HasDpService(cpu) || !sw_probe_->IsDpIdle(cpu)) {
      continue;
    }
    Enter(cpu, vcpu, config_.initial_slice);
    return;
  }
  // Fallback: a dedicated CP pCPU, round-robin.
  std::vector<os::CpuId> cp_cpus;
  for (os::CpuId cpu = 0; cpu < kernel_->num_cpus(); ++cpu) {
    if (IsCpCpu(cpu)) {
      cp_cpus.push_back(cpu);
    }
  }
  for (size_t i = 0; i < cp_cpus.size(); ++i) {
    os::CpuId cpu = cp_cpus[(rescue_rr_ + i) % cp_cpus.size()];
    if (kernel_->guest_of(cpu) != os::kInvalidCpu || !kernel_->CpuInHostMode(cpu)) {
      continue;
    }
    if (kernel_->CpuInNonPreemptibleContext(cpu)) {
      continue;  // Host task is itself inside a kernel routine; try another.
    }
    rescue_rr_ = (rescue_rr_ + i + 1) % cp_cpus.size();
    Enter(cpu, vcpu, config_.rescue_slice);
    return;
  }
  // Nothing can host the rescue right now; retry shortly. The vCPU stays
  // runnable so a regular placement can also pick it up.
  MarkRunnable(vcpu);
  kernel_->sim().Schedule(config_.rescue_retry_delay, [this, vcpu] {
    VcpuRecord& rec = vcpus_.at(vcpu);
    if (rec.state == VcpuState::kRunning) {
      return;
    }
    if (kernel_->CpuInNonPreemptibleContext(vcpu)) {
      rec.state = VcpuState::kSleeping;  // Take it out of the queue logically.
      RescueLockedVcpu(vcpu, os::kInvalidCpu);
    }
  });
}

}  // namespace taichi::core
