// Tunables for the Tai Chi scheduling framework (§4).
#ifndef SRC_TAICHI_CONFIG_H_
#define SRC_TAICHI_CONFIG_H_

#include "src/os/types.h"
#include "src/sim/time.h"

namespace taichi::core {

// The softirq number reserved for pCPU-to-vCPU context switching (§4.1).
inline constexpr int kVcpuSwitchSoftirq = 1;

struct TaiChiConfig {
  // CPU partitioning: data-plane pCPUs, dedicated control-plane pCPUs.
  os::CpuSet dp_cpus;
  os::CpuSet cp_cpus;

  // Number of vCPUs to provision (typically one per DP pCPU so every idle
  // data-plane CPU can host one).
  int num_vcpus = 8;

  // Synthetic LAPIC id of the first vCPU. A fresh Tai Chi generation on the
  // same kernel (staged-rollout re-enable after a rollback) must pick a
  // disjoint range, since retired vCPU ids stay registered with the OS.
  uint32_t vcpu_apic_base = 1000;  // virt::kVcpuApicBase.

  // Adaptive vCPU time slice (§4.1): starts at `initial_slice`, doubles on
  // slice-expiry VM-exits up to `max_slice`, resets on hardware-probe exits.
  // The cap bounds the worst-case DP delay when the hardware probe is
  // unavailable (a packet can wait out the full remaining slice).
  sim::Duration initial_slice = sim::Micros(50);
  sim::Duration max_slice = sim::Micros(200);

  // Adaptive empty-poll yield threshold N (§4.3): halved on sustained-idle
  // exits (more cycles donated), doubled on false-positive yields.
  uint32_t initial_yield_threshold = 256;
  uint32_t min_yield_threshold = 32;
  uint32_t max_yield_threshold = 8192;
  // A hardware-probe preemption counts as a false-positive yield only when
  // the vCPU episode was shorter than this: the idleness was misjudged. A
  // long episode cut short by traffic was still a productive donation.
  sim::Duration false_positive_window = sim::Micros(15);

  // Idle dedicated CP pCPUs also host runnable vCPUs (tasks frozen inside a
  // preempted vCPU are invisible to task-level load balancing, so the vCPU
  // itself must be given CPU time). A native wake on the pCPU reclaims it
  // through the usual IPI-induced VM-exit.
  bool host_vcpus_on_idle_cp_cpus = true;

  // Feature toggles for ablations and the Table 5 / §6.4 experiments.
  bool hw_probe_enabled = true;
  bool adaptive_slice = true;
  bool adaptive_yield_threshold = true;
  bool safe_lock_rescheduling = true;

  // Slice used when a lock-holding vCPU is rescued onto a CP pCPU (§4.1).
  sim::Duration rescue_slice = sim::Micros(50);
  // Retry delay when no pCPU can host a rescue right now.
  sim::Duration rescue_retry_delay = sim::Micros(10);
};

}  // namespace taichi::core

#endif  // SRC_TAICHI_CONFIG_H_
