// The unified IPI orchestrator (§4.2): intercepts every IPI the kernel
// emits and routes it across the virtualization boundary.
//
//   Source phase: an IPI sent from a running vCPU first VM-exits that vCPU
//   (reason kIpiSend); the vCPU scheduler then asks the orchestrator to
//   reissue the pending IPI before re-entering the guest.
//
//   Destination phase: pCPU targets get real LAPIC MSR writes; running
//   vCPU targets get posted-interrupt injection; sleeping vCPU targets are
//   woken first (via the vCPU scheduler) and the interrupt is pended.
//
// Boot IPIs to vCPUs complete CPU hotplug (Fig. 8a), making vCPUs appear as
// native CPUs that tasks can be affined to with zero code modifications.
#ifndef SRC_TAICHI_IPI_ORCHESTRATOR_H_
#define SRC_TAICHI_IPI_ORCHESTRATOR_H_

#include <deque>
#include <unordered_map>

#include "src/os/kernel.h"
#include "src/sim/simulation.h"

namespace taichi::core {

class VcpuScheduler;

class IpiOrchestrator : public os::IpiRouter {
 public:
  explicit IpiOrchestrator(os::Kernel* kernel) : kernel_(kernel) {
    kernel_->set_ipi_router(this);
  }
  ~IpiOrchestrator() override { kernel_->set_ipi_router(nullptr); }

  void set_scheduler(VcpuScheduler* scheduler) { scheduler_ = scheduler; }

  // os::IpiRouter:
  void Route(os::CpuId from, os::CpuId to, os::IpiType type) override;

  // Reissues IPIs that were pending when `vcpu` VM-exited with kIpiSend.
  // Called by the vCPU scheduler from its exit handler.
  void FlushPendingFrom(os::CpuId vcpu);
  bool HasPendingFrom(os::CpuId vcpu) const { return pending_reissue_.contains(vcpu); }

  uint64_t routed() const { return routed_.value(); }
  uint64_t vcpu_source_exits() const { return vcpu_source_exits_.value(); }
  uint64_t posted_injections() const { return posted_injections_.value(); }
  uint64_t sleeping_vcpu_wakes() const { return sleeping_vcpu_wakes_.value(); }

  void set_tracer(obs::TraceRecorder* tracer) { tracer_ = tracer; }

  void RegisterMetrics(obs::MetricsRegistry& registry, const std::string& prefix = "ipi") const {
    registry.AddCounter(prefix + ".routed", &routed_);
    registry.AddCounter(prefix + ".vcpu_source_exits", &vcpu_source_exits_);
    registry.AddCounter(prefix + ".posted_injections", &posted_injections_);
    registry.AddCounter(prefix + ".sleeping_vcpu_wakes", &sleeping_vcpu_wakes_);
  }

 private:
  struct PendingIpi {
    os::CpuId to;
    os::IpiType type;
  };

  void Deliver(os::CpuId from, os::CpuId to, os::IpiType type);

  os::Kernel* kernel_;
  VcpuScheduler* scheduler_ = nullptr;
  obs::TraceRecorder* tracer_ = nullptr;
  std::unordered_map<os::CpuId, std::deque<PendingIpi>> pending_reissue_;
  sim::Counter routed_;
  sim::Counter vcpu_source_exits_;
  sim::Counter posted_injections_;
  sim::Counter sleeping_vcpu_wakes_;
};

}  // namespace taichi::core

#endif  // SRC_TAICHI_IPI_ORCHESTRATOR_H_
