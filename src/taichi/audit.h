// On-demand instruction-level auditing (§8).
//
// Hybrid virtualization gives every task a potential vCPU context; auditing
// a task means migrating it (via plain affinity, no code changes) into a
// vCPU "auditing domain" where privileged operations — syscalls entering
// kernel routines, lock acquisitions — are trapped and logged on each
// VM-exit boundary. Ending the audit transparently migrates the task back
// to its original CPUs, leaving zero steady-state overhead.
#ifndef SRC_TAICHI_AUDIT_H_
#define SRC_TAICHI_AUDIT_H_

#include <unordered_map>
#include <vector>

#include "src/os/kernel.h"
#include "src/taichi/taichi.h"

namespace taichi::core {

struct AuditRecord {
  os::TaskId task = 0;
  os::Action::Type op = os::Action::Type::kNone;
  sim::SimTime when = 0;
  sim::Duration duration = 0;  // For kernel sections: the routine length.
};

class AuditDomain {
 public:
  // The domain audits on the framework's vCPUs (any subset works; using the
  // full pool keeps audited tasks schedulable under load).
  AuditDomain(os::Kernel* kernel, TaiChi* taichi);
  ~AuditDomain();

  // Migrates `task` into the auditing domain. Privileged operations are
  // recorded until StopAudit.
  void StartAudit(os::Task* task);

  // Ends the audit and restores the task's original affinity.
  void StopAudit(os::Task* task);

  bool IsAudited(const os::Task& task) const { return original_.contains(task.id()); }
  size_t audited_count() const { return original_.size(); }
  const std::vector<AuditRecord>& records() const { return records_; }
  uint64_t privileged_ops() const { return privileged_ops_; }

 private:
  os::Kernel* kernel_;
  TaiChi* taichi_;
  std::unordered_map<os::TaskId, os::CpuSet> original_;
  std::vector<AuditRecord> records_;
  uint64_t privileged_ops_ = 0;
};

}  // namespace taichi::core

#endif  // SRC_TAICHI_AUDIT_H_
