#include "src/taichi/taichi.h"

namespace taichi::core {

TaiChi::TaiChi(os::Kernel* kernel, TaiChiConfig config)
    : kernel_(kernel), config_(config) {
  mux_ = std::make_unique<virt::GuestExitMux>(kernel_);
  pool_ = std::make_unique<virt::VcpuPool>(kernel_, config_.num_vcpus,
                                           static_cast<hw::ApicId>(config_.vcpu_apic_base));
  orchestrator_ = std::make_unique<IpiOrchestrator>(kernel_);
  sw_probe_ = std::make_unique<SwWorkloadProbe>(config_);
  scheduler_ = std::make_unique<VcpuScheduler>(kernel_, pool_.get(), mux_.get(),
                                               sw_probe_.get(), &kernel_->machine().probe(),
                                               config_);
  scheduler_->set_orchestrator(orchestrator_.get());
  orchestrator_->set_scheduler(scheduler_.get());

  // Install the ~30-line hardware probe firmware into the accelerator.
  hw::HwWorkloadProbe& probe = kernel_->machine().probe();
  probe.set_enabled(config_.hw_probe_enabled);
  kernel_->machine().accelerator().set_probe(&probe);

  // Bring the vCPUs online: boot IPIs flow through the orchestrator.
  pool_->OnlineAll();
}

void TaiChi::AttachObservability(obs::Observability* obs) {
  obs::TraceRecorder* tracer = obs != nullptr ? &obs->trace : nullptr;
  scheduler_->set_tracer(tracer);
  orchestrator_->set_tracer(tracer);
  sw_probe_->set_tracer(tracer, &kernel_->sim());
  mux_->set_tracer(tracer);
  if (obs != nullptr) {
    scheduler_->RegisterMetrics(obs->metrics);
    orchestrator_->RegisterMetrics(obs->metrics);
    sw_probe_->RegisterMetrics(obs->metrics);
  }
}

TaiChi::~TaiChi() {
  kernel_->machine().accelerator().set_probe(nullptr);
  kernel_->set_guest_exit_handler(nullptr);
  kernel_->set_guest_halt_handler(nullptr);
}

}  // namespace taichi::core
