#include "src/taichi/sw_probe.h"

#include <algorithm>
#include <cassert>

#include "src/taichi/vcpu_scheduler.h"

namespace taichi::core {

void SwWorkloadProbe::RegisterDpService(os::CpuId dp_cpu, std::function<bool()> is_idle) {
  ServiceState state;
  state.is_idle = std::move(is_idle);
  state.threshold = config_.initial_yield_threshold;
  services_[dp_cpu] = std::move(state);
}

void SwWorkloadProbe::NotifyIdleDpCpuCycles(os::CpuId dp_cpu) {
  notifications_.Inc();
  if (tracer_ != nullptr && sim_ != nullptr) {
    tracer_->Instant(sim_->Now(), dp_cpu, obs::TraceCategory::kProbe, "sw_probe_notify",
                     yield_threshold(dp_cpu));
  }
  if (scheduler_ != nullptr) {
    scheduler_->OnDpIdle(dp_cpu);
  }
}

uint32_t SwWorkloadProbe::yield_threshold(os::CpuId dp_cpu) const {
  auto it = services_.find(dp_cpu);
  return it != services_.end() ? it->second.threshold : config_.initial_yield_threshold;
}

void SwWorkloadProbe::OnSustainedIdle(os::CpuId dp_cpu) {
  sustained_idles_.Inc();
  if (!config_.adaptive_yield_threshold) {
    return;
  }
  auto it = services_.find(dp_cpu);
  if (it != services_.end()) {
    it->second.threshold = std::max(it->second.threshold / 2, config_.min_yield_threshold);
  }
}

void SwWorkloadProbe::OnFalsePositive(os::CpuId dp_cpu) {
  false_positives_.Inc();
  if (!config_.adaptive_yield_threshold) {
    return;
  }
  auto it = services_.find(dp_cpu);
  if (it != services_.end()) {
    it->second.threshold = std::min(it->second.threshold * 2, config_.max_yield_threshold);
  }
}

bool SwWorkloadProbe::IsDpIdle(os::CpuId dp_cpu) const {
  auto it = services_.find(dp_cpu);
  if (it == services_.end() || !it->second.is_idle) {
    return false;
  }
  return it->second.is_idle();
}

}  // namespace taichi::core
