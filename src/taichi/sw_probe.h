// The software workload probe (§4.3): data-plane services report consecutive
// empty polls; once the adaptive threshold N is crossed the probe notifies
// the vCPU scheduler that a DP CPU has idle cycles to donate. N adapts on
// VM-exit reasons — halved on sustained idleness, doubled on false-positive
// yields (hardware-probe preemptions).
#ifndef SRC_TAICHI_SW_PROBE_H_
#define SRC_TAICHI_SW_PROBE_H_

#include <functional>
#include <unordered_map>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/os/types.h"
#include "src/sim/simulation.h"
#include "src/taichi/config.h"

namespace taichi::core {

class VcpuScheduler;

class SwWorkloadProbe {
 public:
  explicit SwWorkloadProbe(const TaiChiConfig& config) : config_(config) {}

  void set_scheduler(VcpuScheduler* scheduler) { scheduler_ = scheduler; }

  // Registers the DP service polling on `dp_cpu`. `is_idle` must return
  // true when the service has no pending work (all rings empty); the vCPU
  // scheduler consults it before switching contexts onto that CPU.
  void RegisterDpService(os::CpuId dp_cpu, std::function<bool()> is_idle);

  // Removes the registration for `dp_cpu` (staged-rollout rollback: the
  // service returns to plain busy-polling and stops donating cycles).
  void UnregisterDpService(os::CpuId dp_cpu) { services_.erase(dp_cpu); }

  // The paper's notify_idle_DP_CPU_cycles() API (Fig. 9, line 14): the DP
  // service on `dp_cpu` observed N consecutive empty polls.
  void NotifyIdleDpCpuCycles(os::CpuId dp_cpu);

  // Current empty-poll threshold for the service on `dp_cpu`.
  uint32_t yield_threshold(os::CpuId dp_cpu) const;

  // Adaptation callbacks, invoked by the vCPU scheduler from its VM-exit
  // handler (§4.3).
  void OnSustainedIdle(os::CpuId dp_cpu);   // Slice-expiry exit: N /= 2.
  void OnFalsePositive(os::CpuId dp_cpu);   // HW-probe preemption: N *= 2.

  bool IsDpIdle(os::CpuId dp_cpu) const;
  bool HasDpService(os::CpuId dp_cpu) const { return services_.contains(dp_cpu); }

  uint64_t notifications() const { return notifications_.value(); }
  uint64_t false_positives() const { return false_positives_.value(); }
  uint64_t sustained_idles() const { return sustained_idles_.value(); }

  // The probe has no simulation handle of its own, so the tracer setter
  // takes one for event timestamps.
  void set_tracer(obs::TraceRecorder* tracer, sim::Simulation* sim) {
    tracer_ = tracer;
    sim_ = sim;
  }

  void RegisterMetrics(obs::MetricsRegistry& registry,
                       const std::string& prefix = "sw_probe") const {
    registry.AddCounter(prefix + ".notifications", &notifications_);
    registry.AddCounter(prefix + ".false_positives", &false_positives_);
    registry.AddCounter(prefix + ".sustained_idles", &sustained_idles_);
  }

 private:
  struct ServiceState {
    std::function<bool()> is_idle;
    uint32_t threshold = 0;
  };

  const TaiChiConfig& config_;
  VcpuScheduler* scheduler_ = nullptr;
  obs::TraceRecorder* tracer_ = nullptr;
  sim::Simulation* sim_ = nullptr;
  std::unordered_map<os::CpuId, ServiceState> services_;
  sim::Counter notifications_;
  sim::Counter false_positives_;
  sim::Counter sustained_idles_;
};

}  // namespace taichi::core

#endif  // SRC_TAICHI_SW_PROBE_H_
