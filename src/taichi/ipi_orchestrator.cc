#include "src/taichi/ipi_orchestrator.h"

#include "src/taichi/vcpu_scheduler.h"

namespace taichi::core {

void IpiOrchestrator::Route(os::CpuId from, os::CpuId to, os::IpiType type) {
  routed_.Inc();
  // Source phase (Fig. 8b): an IPI emitted from code running in a vCPU
  // context cannot reach the LAPIC directly; trigger a VM-exit and let the
  // vCPU scheduler reissue it.
  if (from != os::kInvalidCpu && kernel_->cpu_kind(from) == os::CpuKind::kVirtual &&
      kernel_->cpu_backed(from)) {
    auto& pending = pending_reissue_[from];
    pending.push_back({to, type});
    if (pending.size() == 1) {
      vcpu_source_exits_.Inc();
      if (tracer_ != nullptr) {
        tracer_->Instant(kernel_->sim().Now(), from, obs::TraceCategory::kIpi, "ipi_src_exit",
                         static_cast<uint64_t>(to), static_cast<uint64_t>(type));
      }
      os::CpuId backer = kernel_->backer_of(from);
      kernel_->ExitGuest(backer, os::GuestExitReason::kIpiSend);
    }
    return;
  }
  Deliver(from, to, type);
}

void IpiOrchestrator::Deliver(os::CpuId from, os::CpuId to, os::IpiType type) {
  // Destination phase.
  if (kernel_->cpu_kind(to) == os::CpuKind::kPhysical) {
    // "IPIs are delivered via low-level MSR writes": the real LAPIC path.
    os::CpuId phys_from =
        (from != os::kInvalidCpu && kernel_->cpu_kind(from) == os::CpuKind::kPhysical)
            ? from
            : os::kInvalidCpu;
    kernel_->RouteDefault(phys_from, to, type);
    return;
  }

  // Virtual destination.
  if (type == os::IpiType::kBoot) {
    // vCPU bring-up (Fig. 8a): the boot IPI sequence initializes the vCPU
    // and brings it online as a native CPU.
    if (!kernel_->cpu_online(to)) {
      kernel_->sim().Schedule(kernel_->config().boot_cost,
                              [this, to] { kernel_->MarkCpuOnline(to); });
    }
    return;
  }
  if (kernel_->cpu_backed(to)) {
    // Running/backed vCPU: inject directly (posted interrupt).
    posted_injections_.Inc();
    if (tracer_ != nullptr) {
      tracer_->Instant(kernel_->sim().Now(), to, obs::TraceCategory::kIpi, "ipi_posted",
                       static_cast<uint64_t>(type));
    }
    kernel_->sim().Schedule(kernel_->machine().apic().delivery_latency(),
                            [this, to, type] { kernel_->HandleIpiAt(to, type); });
    return;
  }
  // Sleeping or runnable-but-unplaced vCPU: pend the interrupt and wake the
  // vCPU through the scheduler.
  sleeping_vcpu_wakes_.Inc();
  if (tracer_ != nullptr) {
    tracer_->Instant(kernel_->sim().Now(), to, obs::TraceCategory::kIpi, "ipi_wake_vcpu",
                     static_cast<uint64_t>(type));
  }
  kernel_->HandleIpiAt(to, type);
  if (scheduler_ != nullptr) {
    scheduler_->OnVcpuKicked(to);
  }
}

void IpiOrchestrator::FlushPendingFrom(os::CpuId vcpu) {
  auto it = pending_reissue_.find(vcpu);
  if (it == pending_reissue_.end()) {
    return;
  }
  std::deque<PendingIpi> pending = std::move(it->second);
  pending_reissue_.erase(it);
  for (const PendingIpi& ipi : pending) {
    Deliver(vcpu, ipi.to, ipi.type);
  }
}

}  // namespace taichi::core
