// §9 future-work ablation: multi-dimensional DP idle assessment. The
// baseline software probe judges idleness from empty-poll counts alone; the
// extension also consults accelerator pipeline occupancy (packet metadata),
// refusing to yield while packets are in flight toward the CPU. That
// removes exactly the yields that would be preempted microseconds later.
#include "bench/common.h"

using namespace taichi;

int main() {
  bench::PrintHeader("Ablation (§9)", "multi-dimensional idle assessment on/off");

  sim::Table t({"Idle assessment", "ping avg (us)", "ping max (us)",
                "probe preemptions", "false-positive yields", "switches"});
  for (bool multi : {false, true}) {
    auto bed = bench::MakeTestbed(exp::Mode::kTaiChi, 42, [&](exp::TestbedConfig& cfg) {
      cfg.multi_dim_idle = multi;
      bench::CpPressure(cfg);
    });
    bed->SpawnBackgroundCp();
    // Steady moderate traffic: enough in-flight packets for the check to
    // matter, enough idleness for donation to continue.
    bed->StartBackgroundLoad(bed->RateForUtilization(0.15, 512), 512,
                             dp::OpenLoopConfig::Process::kPoisson);
    bed->sim().RunFor(sim::Millis(5));
    exp::PingRunner ping(bed.get());
    sim::Summary rtt = ping.Run(1000, sim::Micros(500));
    const auto& sched = bed->taichi()->scheduler();
    t.AddRow({multi ? "empty-polls + accel in-flight" : "empty-polls only",
              sim::Table::Num(rtt.mean(), 1), sim::Table::Num(rtt.max(), 1),
              std::to_string(sched.probe_preemptions()),
              std::to_string(bed->taichi()->sw_probe().false_positives()),
              std::to_string(sched.switches())});
  }
  t.Print();
  std::printf("\n§9: consulting accelerator packet metadata gives 'a multi-dimensional\n"
              "assessment of DP CPU idle status and more precise relinquishment'.\n");
  return 0;
}
