// Table 2: traditional type-1 / type-2 virtualization vs Tai Chi's hybrid
// virtualization. Static properties come from the architecture; DP
// performance is measured with the tcp_crr harness of Fig. 12.
#include "bench/common.h"

using namespace taichi;

namespace {

double MeasureCps(exp::Mode mode) {
  auto bed = bench::MakeTestbed(mode);
  bed->SpawnBackgroundCp();
  bed->sim().RunFor(sim::Millis(2));
  exp::RrConfig rcfg;
  rcfg.connections = 256;
  rcfg.round_trips_per_txn = 3;
  rcfg.setup_dp_cost_ns = 1500;
  exp::RrRunner rr(bed.get(), rcfg);
  return rr.Run(sim::Millis(60), sim::Millis(20)).txn_per_sec;
}

}  // namespace

int main() {
  bench::PrintHeader("Table 2", "type-1 vs type-2 vs Tai Chi hybrid virtualization");

  double base = MeasureCps(exp::Mode::kBaseline);
  double type1 = MeasureCps(exp::Mode::kTaiChiVdp);
  double type2 = MeasureCps(exp::Mode::kType2);
  double taichi = MeasureCps(exp::Mode::kTaiChi);

  sim::Table t({"Property", "Type-1 (Xen)", "Type-2 (QEMU+KVM)", "Tai Chi"});
  t.AddRow({"DP residency", "Guest OS", "SmartNIC OS", "SmartNIC OS"});
  t.AddRow({"DP performance (CPS vs static)", bench::Pct(type1, base),
            bench::Pct(type2, base), bench::Pct(taichi, base)});
  t.AddRow({"CP residency (vCPU)", "Guest OS", "Guest OS", "SmartNIC OS"});
  t.AddRow({"OS count", "1", "2", "1"});
  t.AddRow({"DP-CP IPC", "Native", "Broken (RPC)", "Native"});
  t.Print();
  std::printf("\npaper: type-1 low DP perf (virtualization tax), type-2 medium\n"
              "(dedicated CPUs + 2us scheduling latency), Tai Chi high (native)\n");
  return 0;
}
