// Figure 14: data-plane performance of Tai Chi normalized to the baseline
// across the netperf and sockperf suites. Paper: average overhead 0.6%,
// peaking at 1.92% (tcp_stream avg_tx_pps); sockperf udp latencies within
// noise of baseline.
#include "bench/common.h"

using namespace taichi;

namespace {

struct Cell {
  std::string benchmark;
  std::string metric;
  double base = 0;
  double taichi = 0;
};

std::unique_ptr<exp::Testbed> Bed(exp::Mode mode) {
  auto bed = bench::MakeTestbed(mode, 42, bench::CpPressure);
  bed->SpawnBackgroundCp();
  bed->sim().RunFor(sim::Millis(2));
  return bed;
}

}  // namespace

int main() {
  bench::PrintHeader("Figure 14",
                     "normalized DP performance: netperf + sockperf, Tai Chi vs baseline");
  std::vector<Cell> cells;

  // netperf udp_stream: 64 concurrent "connections" (flows), bandwidth.
  for (int pass = 0; pass < 2; ++pass) {
    exp::Mode mode = pass == 0 ? exp::Mode::kBaseline : exp::Mode::kTaiChi;
    auto bed = Bed(mode);
    exp::StreamConfig scfg;
    scfg.per_cpu_offered_pps = 1.6e6;  // Burst peaks well above capacity.
    scfg.size_bytes = 1400;
    scfg.flows_per_cpu = 8;  // 64 flows over 8 CPUs.
    scfg.bursty = true;
    exp::StreamRunner stream(bed.get(), scfg);
    exp::StreamResult r = stream.Run(sim::Millis(60), sim::Millis(20));
    if (pass == 0) {
      cells.push_back({"udp_stream", "avg_rx_bw (Gb/s)", r.delivered_gbps, 0});
    } else {
      cells.back().taichi = r.delivered_gbps;
    }
  }

  // netperf tcp_stream: RX and TX pps (bidirectional streams).
  for (int pass = 0; pass < 2; ++pass) {
    exp::Mode mode = pass == 0 ? exp::Mode::kBaseline : exp::Mode::kTaiChi;
    double rx, tx;
    {
      auto bed = Bed(mode);
      exp::StreamConfig scfg;
      scfg.per_cpu_offered_pps = 1.6e6;
      scfg.size_bytes = 1400;
      scfg.flows_per_cpu = 8;
      scfg.bursty = true;
      exp::StreamRunner rx_stream(bed.get(), scfg);
      rx = rx_stream.Run(sim::Millis(60), sim::Millis(20)).delivered_pps;
    }
    {
      auto bed = Bed(mode);
      exp::StreamConfig scfg;
      scfg.per_cpu_offered_pps = 1.6e6;
      scfg.size_bytes = 1400;
      scfg.flows_per_cpu = 8;
      scfg.bursty = true;
      scfg.tx_direction = true;
      exp::StreamRunner tx_stream(bed.get(), scfg);
      tx = tx_stream.Run(sim::Millis(60), sim::Millis(20)).delivered_pps;
    }
    if (pass == 0) {
      cells.push_back({"tcp_stream", "avg_rx_pps", rx, 0});
      cells.push_back({"tcp_stream", "avg_tx_pps", tx, 0});
    } else {
      cells[cells.size() - 2].taichi = rx;
      cells[cells.size() - 1].taichi = tx;
    }
  }

  // netperf tcp_rr: 1024 connections, long-lived request/response.
  for (int pass = 0; pass < 2; ++pass) {
    exp::Mode mode = pass == 0 ? exp::Mode::kBaseline : exp::Mode::kTaiChi;
    auto bed = Bed(mode);
    exp::RrConfig rcfg;
    rcfg.connections = 1024;
    rcfg.think_time_mean = sim::Micros(300);
    exp::RrRunner rr(bed.get(), rcfg);
    exp::RrResult r = rr.Run(sim::Millis(60), sim::Millis(20));
    if (pass == 0) {
      cells.push_back({"tcp_rr", "avg_rx_pps", r.rx_pps, 0});
      cells.push_back({"tcp_rr", "avg_tx_pps", r.tx_pps, 0});
    } else {
      cells[cells.size() - 2].taichi = r.rx_pps;
      cells[cells.size() - 1].taichi = r.tx_pps;
    }
  }

  // sockperf tcp: short connections, 1024 concurrent -> CPS + pps.
  for (int pass = 0; pass < 2; ++pass) {
    exp::Mode mode = pass == 0 ? exp::Mode::kBaseline : exp::Mode::kTaiChi;
    auto bed = Bed(mode);
    exp::RrConfig rcfg;
    rcfg.connections = 1024;
    rcfg.round_trips_per_txn = 3;
    rcfg.setup_dp_cost_ns = 1500;
    rcfg.think_time_mean = sim::Micros(500);
    exp::RrRunner rr(bed.get(), rcfg);
    exp::RrResult r = rr.Run(sim::Millis(60), sim::Millis(20));
    if (pass == 0) {
      cells.push_back({"sockperf tcp", "CPS", r.txn_per_sec, 0});
      cells.push_back({"sockperf tcp", "avg_rx_pps", r.rx_pps, 0});
    } else {
      cells[cells.size() - 2].taichi = r.txn_per_sec;
      cells[cells.size() - 1].taichi = r.rx_pps;
    }
  }

  // sockperf udp: lightly loaded latency percentiles (lower is better; the
  // normalization below inverts them so >100% still means "worse").
  for (int pass = 0; pass < 2; ++pass) {
    exp::Mode mode = pass == 0 ? exp::Mode::kBaseline : exp::Mode::kTaiChi;
    auto bed = Bed(mode);
    exp::RrConfig rcfg;
    rcfg.connections = 8;  // Lightly loaded latency probe.
    exp::RrRunner rr(bed.get(), rcfg);
    exp::RrResult r = rr.Run(sim::Millis(60), sim::Millis(20));
    double avg = r.txn_latency_us.mean();
    double p99 = r.txn_latency_us.Percentile(99);
    double p999 = r.txn_latency_us.Percentile(99.9);
    if (pass == 0) {
      cells.push_back({"sockperf udp", "udp_avg_lat (us)", avg, 0});
      cells.push_back({"sockperf udp", "udp_p99_lat (us)", p99, 0});
      cells.push_back({"sockperf udp", "udp_p999_lat (us)", p999, 0});
    } else {
      cells[cells.size() - 3].taichi = avg;
      cells[cells.size() - 2].taichi = p99;
      cells[cells.size() - 1].taichi = p999;
    }
  }

  sim::Table t({"Benchmark", "Metric", "Baseline", "Tai Chi", "Overhead"});
  double worst = 0;
  double sum = 0;
  int throughput_cells = 0;
  for (const Cell& c : cells) {
    bool latency_metric = c.metric.find("lat") != std::string::npos;
    double overhead_pct = latency_metric ? (c.taichi / c.base - 1.0) * 100.0
                                         : (1.0 - c.taichi / c.base) * 100.0;
    if (!latency_metric) {
      worst = std::max(worst, overhead_pct);
      sum += overhead_pct;
      ++throughput_cells;
    }
    t.AddRow({c.benchmark, c.metric, sim::Table::Num(c.base, 1),
              sim::Table::Num(c.taichi, 1), sim::Table::Num(overhead_pct, 2) + "%"});
  }
  t.Print();
  std::printf("\nthroughput overhead: avg %.2f%%, peak %.2f%%\n",
              throughput_cells ? sum / throughput_cells : 0.0, worst);
  std::printf("paper: average 0.6%%, peak 1.92%% (tcp_stream avg_tx_pps)\n");
  return 0;
}
