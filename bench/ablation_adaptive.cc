// Ablation: the adaptive vCPU time slice (§4.1) and the adaptive empty-poll
// yield threshold (§4.3). Fixed-slice configurations pay more VM-exits for
// the same donated time; fixed-threshold configurations either waste idle
// cycles (large N) or trigger false-positive yields (small N).
#include "bench/common.h"

using namespace taichi;

namespace {

struct Config {
  const char* name;
  bool adaptive_slice;
  bool adaptive_threshold;
};

}  // namespace

int main() {
  bench::PrintHeader("Ablation", "adaptive slice / adaptive yield threshold");

  const std::vector<Config> kConfigs = {
      {"both adaptive (Tai Chi)", true, true},
      {"fixed slice", false, true},
      {"fixed threshold", true, false},
      {"both fixed", false, false},
  };

  sim::Table t({"Configuration", "synth_cp avg (ms)", "VM exits", "exits/donated-ms",
                "false-positive yields"});
  for (const Config& config : kConfigs) {
    auto bed = bench::MakeTestbed(exp::Mode::kTaiChi, 42, [&](exp::TestbedConfig& cfg) {
      cfg.taichi.adaptive_slice = config.adaptive_slice;
      cfg.taichi.adaptive_yield_threshold = config.adaptive_threshold;
    });
    exp::SynthCpResult r = exp::RunSynthCp(bed.get(), 16, /*dp_utilization=*/0.30);
    const auto& sched = bed->taichi()->scheduler();
    uint64_t exits = sched.slice_expirations() + sched.probe_preemptions() + sched.halts();
    double donated_ms =
        sched.guest_episode_us().count() > 0
            ? sched.guest_episode_us().sum() / 1000.0
            : 0.0;
    t.AddRow({config.name, sim::Table::Num(r.exec_time_ms.mean(), 1),
              std::to_string(exits),
              sim::Table::Num(donated_ms > 0 ? exits / donated_ms : 0, 2),
              std::to_string(bed->taichi()->sw_probe().false_positives())});
  }
  t.Print();
  std::printf("\nDesign claim (§4.1/§4.3): adaptation minimizes costly VM-exits while\n"
              "keeping CP progress; fixed settings trade one for the other.\n");
  return 0;
}
