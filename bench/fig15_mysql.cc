// Figure 15: MySQL performance (192 sysbench threads) with and without
// Tai Chi. Paper: 1.56% average overhead, peaking at 1.63% (avg query
// throughput).
#include "bench/common.h"
#include "src/apps/mysql_sim.h"

using namespace taichi;

int main() {
  bench::PrintHeader("Figure 15", "MySQL (sysbench, 192 threads): Tai Chi vs baseline");

  auto run = [](exp::Mode mode) {
    auto bed = bench::MakeTestbed(mode, 42, bench::CpPressure);
    bed->SpawnBackgroundCp();
    bed->sim().RunFor(sim::Millis(2));
    apps::MysqlSim mysql(bed.get(), apps::MysqlConfig{});
    return mysql.Run(sim::Millis(200), sim::Millis(50));
  };
  apps::MysqlResult base = run(exp::Mode::kBaseline);
  apps::MysqlResult taichi = run(exp::Mode::kTaiChi);

  sim::Table t({"Metric", "Baseline", "Tai Chi", "Overhead"});
  auto row = [&](const char* name, double b, double v) {
    t.AddRow({name, sim::Table::Num(b, 0), sim::Table::Num(v, 0),
              sim::Table::Num((1.0 - v / b) * 100.0, 2) + "%"});
  };
  row("avg_query (qps)", base.avg_qps, taichi.avg_qps);
  row("max_query (qps)", base.max_qps, taichi.max_qps);
  row("avg_trans (tps)", base.avg_tps, taichi.avg_tps);
  row("max_trans (tps)", base.max_tps, taichi.max_tps);
  t.Print();
  std::printf("\nquery latency: baseline %.1f us, taichi %.1f us\n",
              base.query_latency_us.mean(), taichi.query_latency_us.mean());
  std::printf("paper: 1.56%% average overhead (peak 1.63%%)\n");
  return 0;
}
