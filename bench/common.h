// Shared helpers for the per-figure/table benchmark harnesses.
#ifndef BENCH_COMMON_H_
#define BENCH_COMMON_H_

#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/exp/runners.h"
#include "src/exp/testbed.h"
#include "src/obs/json.h"
#include "src/sim/logging.h"
#include "src/sim/table.h"

namespace taichi::bench {

inline std::unique_ptr<exp::Testbed> MakeTestbed(
    exp::Mode mode, uint64_t seed = 42,
    const std::function<void(exp::TestbedConfig&)>& tweak = nullptr) {
  exp::TestbedConfig cfg;
  cfg.mode = mode;
  cfg.seed = seed;
  if (tweak) {
    tweak(cfg);
  }
  return std::make_unique<exp::Testbed>(std::move(cfg));
}

// Sustained control-plane pressure: a busy monitor/agent fleet that keeps
// runnable vCPUs contending for idle DP cycles throughout a benchmark. The
// §6.5 overheads are the cost of this donation actually happening.
inline void CpPressure(exp::TestbedConfig& cfg) {
  cfg.monitors.count = 12;
  cfg.monitors.period_mean = sim::Micros(300);
  cfg.monitors.user_work_mean = sim::Micros(60);
}

inline void PrintHeader(const char* id, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("==============================================================\n");
}

inline std::string Pct(double value, double reference) {
  if (reference == 0) {
    return "n/a";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.2f%%", (value / reference - 1.0) * 100.0);
  return buf;
}

// Machine-readable bench output. Every harness constructs one of these with
// its argv; when the user passed `--json <path>`, key/value pairs recorded
// via Config()/Metric() are written to `path` as
//   {"bench": "<name>", "config": {...}, "metrics": {...}}
// on Write() (call it last in main). Without --json this is all a no-op, so
// the human-readable tables stay the default. Values are emitted in
// insertion order and deterministically formatted: same seed, same bytes.
class JsonReport {
 public:
  JsonReport(std::string bench_name, int argc, char** argv)
      : bench_(std::move(bench_name)) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--json") {
        path_ = argv[i + 1];
        break;
      }
    }
  }

  // Sidecar report with an explicit path (empty = disabled). Used for
  // host-dependent measurements (wall clock, thread count) that must stay
  // out of the deterministic main report.
  JsonReport(std::string bench_name, std::string path)
      : bench_(std::move(bench_name)), path_(std::move(path)) {}

  bool requested() const { return !path_.empty(); }

  void Config(const std::string& key, const std::string& value) {
    config_.emplace_back(key, Quote(value));
  }
  void Config(const std::string& key, double value) { config_.emplace_back(key, Num(value)); }
  void Config(const std::string& key, int64_t value) {
    config_.emplace_back(key, std::to_string(value));
  }
  void Config(const std::string& key, bool value) {
    config_.emplace_back(key, value ? "true" : "false");
  }

  void Metric(const std::string& key, double value) { metrics_.emplace_back(key, Num(value)); }
  void Metric(const std::string& key, int64_t value) {
    metrics_.emplace_back(key, std::to_string(value));
  }
  // Flattens a latency summary into <key>.{count,mean,p50,p90,p99,max}.
  void Metric(const std::string& key, const sim::Summary& summary) {
    Metric(key + ".count", static_cast<int64_t>(summary.count()));
    if (summary.empty()) {
      return;
    }
    Metric(key + ".mean", summary.mean());
    Metric(key + ".p50", summary.Percentile(50));
    Metric(key + ".p90", summary.Percentile(90));
    Metric(key + ".p99", summary.Percentile(99));
    Metric(key + ".max", summary.max());
  }

  // Writes the report if --json was given. Returns false only on I/O error.
  bool Write() const {
    if (path_.empty()) {
      return true;
    }
    std::string out = "{\n  \"bench\": " + Quote(bench_) + ",\n";
    AppendSection(out, "config", config_);
    out += ",\n";
    AppendSection(out, "metrics", metrics_);
    out += "\n}\n";
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      TAICHI_ERROR(0, "bench: cannot open '%s' for writing", path_.c_str());
      return false;
    }
    size_t written = std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    if (written != out.size()) {
      TAICHI_ERROR(0, "bench: short write to '%s'", path_.c_str());
      return false;
    }
    return true;
  }

 private:
  using Entries = std::vector<std::pair<std::string, std::string>>;

  static std::string Num(double v) {
    if (!std::isfinite(v)) {
      return "0";
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
  }

  // Shared with the metric/trace exporters: the old hand-rolled quoting here
  // left control characters unescaped, producing invalid JSON.
  static std::string Quote(const std::string& s) { return obs::JsonQuote(s); }

  static void AppendSection(std::string& out, const char* name, const Entries& entries) {
    out += "  \"";
    out += name;
    out += "\": {";
    for (size_t i = 0; i < entries.size(); ++i) {
      out += i == 0 ? "\n" : ",\n";
      out += "    " + Quote(entries[i].first) + ": " + entries[i].second;
    }
    out += entries.empty() ? "}" : "\n  }";
  }

  std::string bench_;
  std::string path_;
  Entries config_;
  Entries metrics_;
};

}  // namespace taichi::bench

#endif  // BENCH_COMMON_H_
