// Shared helpers for the per-figure/table benchmark harnesses.
#ifndef BENCH_COMMON_H_
#define BENCH_COMMON_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/exp/runners.h"
#include "src/exp/testbed.h"
#include "src/sim/table.h"

namespace taichi::bench {

inline std::unique_ptr<exp::Testbed> MakeTestbed(
    exp::Mode mode, uint64_t seed = 42,
    const std::function<void(exp::TestbedConfig&)>& tweak = nullptr) {
  exp::TestbedConfig cfg;
  cfg.mode = mode;
  cfg.seed = seed;
  if (tweak) {
    tweak(cfg);
  }
  return std::make_unique<exp::Testbed>(std::move(cfg));
}

// Sustained control-plane pressure: a busy monitor/agent fleet that keeps
// runnable vCPUs contending for idle DP cycles throughout a benchmark. The
// §6.5 overheads are the cost of this donation actually happening.
inline void CpPressure(exp::TestbedConfig& cfg) {
  cfg.monitors.count = 12;
  cfg.monitors.period_mean = sim::Micros(300);
  cfg.monitors.user_work_mean = sim::Micros(60);
}

inline void PrintHeader(const char* id, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("==============================================================\n");
}

inline std::string Pct(double value, double reference) {
  if (reference == 0) {
    return "n/a";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.2f%%", (value / reference - 1.0) * 100.0);
  return buf;
}

}  // namespace taichi::bench

#endif  // BENCH_COMMON_H_
