// Ablation: safe CP-to-DP scheduling in lock context (§4.1). With the
// rescue disabled, a vCPU preempted while holding the shared driver lock
// can strand every spinning waiter; with it enabled, the vCPU continues on
// an idle DP pCPU or a dedicated CP pCPU and forward progress is
// guaranteed.
#include "bench/common.h"

using namespace taichi;

int main() {
  bench::PrintHeader("Ablation", "lock-context safe rescheduling on/off");

  sim::Table t({"Configuration", "tasks done (of 24)", "avg exec (ms)", "max exec (ms)",
                "lock rescues"});
  for (bool rescue : {true, false}) {
    auto bed = bench::MakeTestbed(exp::Mode::kTaiChi, 42, [&](exp::TestbedConfig& cfg) {
      cfg.taichi.safe_lock_rescheduling = rescue;
    });
    // Lock-heavy synth_cp under bursty DP traffic: probe preemptions land
    // while the driver lock is held.
    cp::SynthCpConfig scfg;
    scfg.lock_prob = 0.8;
    scfg.kernel_fraction = 0.5;

    bed->SpawnBackgroundCp();
    bed->StartBackgroundBurstyLoad(0.35, 512);
    bed->sim().RunFor(sim::Millis(20));
    auto bench_cp = std::make_unique<cp::SynthCpBenchmark>(&bed->kernel(), scfg, 7);
    bench_cp->Launch(24, bed->cp_task_cpus());
    sim::SimTime deadline = bed->sim().Now() + sim::Seconds(4);
    while (!bench_cp->AllDone() && bed->sim().Now() < deadline) {
      bed->sim().RunFor(sim::Millis(20));
    }
    double avg = bench_cp->done() > 0 ? bench_cp->exec_time_ms().mean() : -1;
    double mx = bench_cp->done() > 0 ? bench_cp->exec_time_ms().max() : -1;
    t.AddRow({rescue ? "rescue on (Tai Chi)" : "rescue off",
              std::to_string(bench_cp->done()), sim::Table::Num(avg, 1),
              sim::Table::Num(mx, 1),
              std::to_string(bed->taichi()->scheduler().lock_rescues())});
  }
  t.Print();
  std::printf("\nDesign claim (§4.1): rescue guarantees forward progress for\n"
              "lock-holding vCPUs; disabling it risks stalls/hangs under preemption.\n");
  return 0;
}
